package repro

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cbqt"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/transform"
)

// benchOptimizeTable2 times CBQT optimization of the Table 2 query under
// exhaustive search with the given §3.4 switches.
func benchOptimizeTable2(b *testing.B, db *storage.DB, reuse, cutoff bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		q, err := qtree.BindSQL(bench.Table2Query, db.Catalog)
		if err != nil {
			b.Fatal(err)
		}
		opts := cbqt.DefaultOptions()
		opts.Strategy = cbqt.StrategyExhaustive
		opts.AnnotationReuse = reuse
		opts.CostCutoff = cutoff
		opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
		o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
		if _, err := o.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}
