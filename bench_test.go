// Package repro's root-level benchmarks regenerate every table and figure
// of the paper's evaluation (Section 4). Each benchmark prints the
// corresponding report; run with:
//
//	go test -bench=. -benchmem
//
// The workload sizes here are trimmed so the full suite completes in
// minutes; cmd/benchrunner runs the same experiments at larger scale.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cbqt"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/transform"
)

var (
	benchDBOnce sync.Once
	benchDB     *storage.DB
)

func sharedDB() *storage.DB {
	benchDBOnce.Do(func() {
		benchDB = bench.NewBenchDB(1)
	})
	return benchDB
}

// BenchmarkFigure2CBQT reproduces Figure 2: total run time of cost-based
// transformation decisions versus the pre-CBQT heuristic decisions, as a
// function of the top N% most expensive queries.
func BenchmarkFigure2CBQT(b *testing.B) {
	db := sharedDB()
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure2(context.Background(), db, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkFigure3Unnesting reproduces Figure 3: unnesting disabled versus
// cost-based unnesting.
func BenchmarkFigure3Unnesting(b *testing.B) {
	db := sharedDB()
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure3(context.Background(), db, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkFigure4JPPD reproduces Figure 4: join predicate pushdown
// disabled versus cost-based JPPD.
func BenchmarkFigure4JPPD(b *testing.B) {
	db := sharedDB()
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure4(context.Background(), db, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkGroupByPlacement reproduces the Section 4.3 experiment:
// group-by placement off versus on.
func BenchmarkGroupByPlacement(b *testing.B) {
	db := sharedDB()
	for i := 0; i < b.N; i++ {
		r, err := bench.GroupByPlacementExp(context.Background(), db, 6, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkTable1AnnotationReuse reproduces Table 1: query blocks optimized
// with and without reuse of query sub-tree cost annotations.
func BenchmarkTable1AnnotationReuse(b *testing.B) {
	db := sharedDB()
	for i := 0; i < b.N; i++ {
		r, err := bench.Table1(db)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable1(r))
		}
	}
}

// BenchmarkTable2SearchStrategies reproduces Table 2: optimization time
// and state counts of the four state-space search strategies on a query
// with three base tables and four unnestable three-table subqueries.
func BenchmarkTable2SearchStrategies(b *testing.B) {
	db := sharedDB()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(db)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable2(rows))
		}
	}
}

// BenchmarkAblationAnnotationReuse measures the optimization-time effect of
// the §3.4.2 annotation reuse alone (Table 2's query, exhaustive search).
func BenchmarkAblationAnnotationReuse(b *testing.B) {
	db := sharedDB()
	b.Run("reuse=off", func(b *testing.B) {
		benchOptimizeTable2(b, db, false, false)
	})
	b.Run("reuse=on", func(b *testing.B) {
		benchOptimizeTable2(b, db, true, false)
	})
}

// BenchmarkAblationCostCutoff measures the §3.4.1 cost cut-off effect.
func BenchmarkAblationCostCutoff(b *testing.B) {
	db := sharedDB()
	b.Run("cutoff=off", func(b *testing.B) {
		benchOptimizeTable2(b, db, true, false)
	})
	b.Run("cutoff=on", func(b *testing.B) {
		benchOptimizeTable2(b, db, true, true)
	})
}

// BenchmarkAblationInterleaving measures what interleaving view merging
// with unnesting (§3.3.1) buys: the chosen plan cost with and without the
// interleaved variant on a Q1-family query.
func BenchmarkAblationInterleaving(b *testing.B) {
	db := sharedDB()
	// Selective outer filter plus an unindexed correlation column: TIS is
	// slow, the plain unnested view aggregates the whole join, and only
	// the interleaved unnest+merge form aggregates the few joined rows.
	src := `
SELECT e1.employee_name FROM employees e1
WHERE e1.emp_id BETWEEN 100 AND 130 AND
  e1.salary > (SELECT AVG(jb.min_salary) FROM job_history j, jobs jb
               WHERE j.job_id = jb.job_id AND j.dept_id = e1.dept_id)`
	run := func(b *testing.B, noInterleave bool) {
		var cost float64
		for i := 0; i < b.N; i++ {
			q, err := qtree.BindSQL(src, db.Catalog)
			if err != nil {
				b.Fatal(err)
			}
			opts := cbqt.DefaultOptions()
			opts.Strategy = cbqt.StrategyExhaustive
			opts.Rules = []transform.Rule{&transform.UnnestSubquery{NoInterleave: noInterleave}}
			o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
			res, err := o.Optimize(q)
			if err != nil {
				b.Fatal(err)
			}
			cost = res.Plan.Cost.Total
		}
		b.ReportMetric(cost, "plan-cost")
	}
	b.Run("interleave=off", func(b *testing.B) { run(b, true) })
	b.Run("interleave=on", func(b *testing.B) { run(b, false) })
}

// BenchmarkParallelSearch measures the parallel state-evaluation engine on
// the Table 2 query under exhaustive search: one worker (the sequential
// baseline) versus a worker pool. The chosen transformed query and plan
// cost must be identical at every parallelism level; only the wall-clock
// optimization time may change.
func BenchmarkParallelSearch(b *testing.B) {
	db := sharedDB()
	var baseSQL string
	var baseCost float64
	levels := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		levels = append(levels, p)
	}
	for _, par := range levels {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				q, err := qtree.BindSQL(bench.Table2Query, db.Catalog)
				if err != nil {
					b.Fatal(err)
				}
				opts := cbqt.DefaultOptions()
				opts.Strategy = cbqt.StrategyExhaustive
				opts.Parallelism = par
				opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
				o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
				res, err := o.Optimize(q)
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Plan.Cost.Total
				if baseSQL == "" {
					baseSQL, baseCost = res.Query.SQL(), cost
				} else if got := res.Query.SQL(); got != baseSQL || cost != baseCost {
					b.Fatalf("workers=%d chose a different outcome: cost %v vs %v", par, cost, baseCost)
				}
			}
			b.ReportMetric(cost, "plan-cost")
		})
	}
}

// BenchmarkSmallDBEndToEnd runs the tiny-scale smoke version of every
// figure so the full paper pipeline is exercised even in -short
// environments.
func BenchmarkSmallDBEndToEnd(b *testing.B) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(context.Background(), db, 2, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.Figure3(context.Background(), db, 2, 1); err != nil {
			b.Fatal(err)
		}
		if _, err := bench.Figure4(context.Background(), db, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}
