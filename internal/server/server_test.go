package server

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cbqt"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/obsv"
	"repro/internal/plancache"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

// startServer brings up a server on a loopback listener and returns its
// address plus a shutdown func.
func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = testkit.NewDB(testkit.SmallSizes(), 1)
	}
	if cfg.Registry == nil {
		cfg.Registry = obsv.NewRegistry()
	}
	srv := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return srv, l.Addr().String(), stop
}

// rowStrings renders rows the way the cbqt differential tests do: datums
// joined with "|", sorted, so order-insensitive comparison is exact.
func rowStrings(rows [][]datum.Datum) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func equalStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const paramQuery = `SELECT e.EMPLOYEE_NAME, e.SALARY FROM employees e
	WHERE e.DEPT_ID = :d AND e.SALARY > :minsal
	AND EXISTS (SELECT 1 FROM departments d2 WHERE d2.DEPT_ID = e.DEPT_ID AND d2.BUDGET > :b)`

func TestPrepareBindExecuteFetch(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	_, addr, stop := startServer(t, Config{DB: db})
	defer stop()

	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stmt, err := cli.Prepare(paramQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantParams := []string{"D", "MINSAL", "B"}
	if !equalStrs(stmt.Params, wantParams) {
		t.Fatalf("params = %v, want %v", stmt.Params, wantParams)
	}

	// Bind by name (mixed case), then execute and page with a tiny batch.
	if err := stmt.Bind(Named("d", datum.NewInt(10)), Named("B", datum.NewFloat(0))); err != nil {
		t.Fatal(err)
	}
	if err := stmt.Execute(Named("minsal", datum.NewFloat(0))); err != nil {
		t.Fatal(err)
	}
	var got [][]datum.Datum
	for {
		batch, done, err := stmt.Fetch(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) > 2 {
			t.Fatalf("fetch(2) returned %d rows", len(batch))
		}
		got = append(got, batch...)
		if done {
			break
		}
	}
	if len(got) != stmt.RowCount {
		t.Fatalf("fetched %d rows, execute reported %d", len(got), stmt.RowCount)
	}

	// Reference: same query inline with literals substituted via params.
	q, err := qtree.BindSQL(paramQuery, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	o := &cbqt.Optimizer{Cat: db.Catalog, Opts: cbqt.DefaultOptions()}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	binds := []datum.Datum{datum.NewInt(10), datum.NewFloat(0), datum.NewFloat(0)}
	ref, err := exec.RunParams(context.Background(), db, res.Plan, binds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Rows) == 0 {
		t.Fatal("reference query returned no rows; test is vacuous")
	}
	refRows := make([][]datum.Datum, len(ref.Rows))
	for i, r := range ref.Rows {
		refRows[i] = r
	}
	if !equalStrs(rowStrings(got), rowStrings(refRows)) {
		t.Fatalf("server rows differ from in-process rows:\n%v\nvs\n%v",
			rowStrings(got), rowStrings(refRows))
	}

	// Same statement, different binds: cached plan, different rows.
	if err := stmt.Execute(Named("d", datum.NewInt(20)), Named("minsal", datum.NewFloat(0)), Named("b", datum.NewFloat(0))); err != nil {
		t.Fatal(err)
	}
	if !stmt.Cached {
		t.Fatal("second execute of the same text should hit the plan cache")
	}
}

func TestExecuteErrors(t *testing.T) {
	_, addr, stop := startServer(t, Config{})
	defer stop()
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Prepare("SELEC nonsense"); err == nil {
		t.Fatal("parse error should fail prepare")
	}
	if _, err := cli.Prepare("SELECT x FROM no_such_table"); err == nil {
		t.Fatal("bind error should fail prepare")
	}
	stmt, err := cli.Prepare("SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d")
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Execute(); err == nil || !strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("executing with unbound parameters: err = %v", err)
	}
	if err := stmt.Bind(Named("nope", datum.NewInt(1))); err == nil {
		t.Fatal("binding an unknown name should fail")
	}
	// The session must survive all of the above errors.
	if err := stmt.Execute(Named("d", datum.NewInt(10))); err != nil {
		t.Fatalf("session did not survive request errors: %v", err)
	}
}

func TestOneShotQueryAndPositionalBinds(t *testing.T) {
	_, addr, stop := startServer(t, Config{})
	defer stop()
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rows, err := cli.Query("SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = ? AND e.SALARY > ?",
		Positional(datum.NewInt(10)), Positional(datum.NewFloat(0)))
	if err != nil {
		t.Fatal(err)
	}
	named, err := cli.Query("SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d AND e.SALARY > :s",
		Named("d", datum.NewInt(10)), Named("s", datum.NewFloat(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || !equalStrs(rowStrings(rows), rowStrings(named)) {
		t.Fatalf("positional (%d rows) and named (%d rows) results differ", len(rows), len(named))
	}
}

// TestSharedCacheAcrossSessions proves the tentpole's amortization claim:
// two sessions running the same text trigger exactly one optimizer run.
func TestSharedCacheAcrossSessions(t *testing.T) {
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{Registry: reg})
	defer stop()

	c1, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Different literal layout, same normalized text.
	sqlA := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"
	sqlB := "select  E.emp_id  from EMPLOYEES e where E.DEPT_ID  =  :D -- c"
	if _, err := c1.Query(sqlA, Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Query(sqlB, Named("d", datum.NewInt(20))); err != nil {
		t.Fatal(err)
	}
	if misses := reg.CounterValue(plancache.MetricMisses); misses != 1 {
		t.Fatalf("plan cache misses = %d across two sessions, want 1", misses)
	}
	if q := reg.CounterValue("cbqt.queries"); q != 1 {
		t.Fatalf("optimizer ran %d times for one distinct query", q)
	}
}

// TestAnalyzeInvalidatesCachedPlans is the stats-version regression test:
// a cached plan must not survive ANALYZE, and the new plan must see the
// new statistics.
func TestAnalyzeInvalidatesCachedPlans(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{DB: db, Registry: reg})
	defer stop()
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	sql := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"
	stmt, err := cli.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Execute(Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if stmt.Cached {
		t.Fatal("first execute cannot be cached")
	}
	before := stmt.RowCount
	if err := stmt.Execute(Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if !stmt.Cached {
		t.Fatal("second execute should be cached")
	}

	// Grow the table the cached plan scans, then ANALYZE it. The version
	// bump must force a re-optimize AND the new execution must see the
	// appended rows (the cached cursor is not stale data).
	emp := db.Table("EMPLOYEES")
	n := len(emp.Rows)
	for i := 0; i < 5; i++ {
		emp.MustAppend(datum.NewInt(int64(100000+i)), datum.NewString(fmt.Sprintf("NEW_%d", i)),
			datum.NewInt(10), datum.NewFloat(5000), datum.Null, datum.NewInt(1),
			datum.NewString("2024-01-01"))
	}
	if err := cli.Analyze("employees"); err != nil {
		t.Fatal(err)
	}
	if inv := reg.CounterValue(plancache.MetricInvalidations); inv == 0 {
		t.Fatal("ANALYZE invalidated no cached plans")
	}
	if err := stmt.Execute(Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if stmt.Cached {
		t.Fatal("execute after ANALYZE reused a stale cached plan")
	}
	if stmt.RowCount != before+5 {
		t.Fatalf("post-ANALYZE execution saw %d rows, want %d (stats or index stale)", stmt.RowCount, before+5)
	}
	if got := len(emp.Rows); got != n+5 {
		t.Fatalf("table has %d rows, want %d", got, n+5)
	}
}

// TestGracefulDrain checks the shutdown contract: in-flight cursors can be
// fetched to completion while new statements are refused.
func TestGracefulDrain(t *testing.T) {
	srv, addr, _ := startServer(t, Config{})
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}

	stmt, err := cli.Prepare("SELECT e.EMP_ID FROM employees e WHERE e.SALARY > :s")
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Execute(Named("s", datum.NewFloat(0))); err != nil {
		t.Fatal(err)
	}
	if stmt.RowCount < 3 {
		t.Fatalf("want a multi-batch cursor, got %d rows", stmt.RowCount)
	}
	// Partially drain the cursor, then start shutdown.
	if _, _, err := stmt.Fetch(1); err != nil {
		t.Fatal(err)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused...
	if _, err := cli.Prepare("SELECT 1 FROM employees e"); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("prepare during drain: err = %v, want draining", err)
	}
	// ...but the open cursor drains to completion.
	var got int
	for {
		batch, done, err := stmt.Fetch(1)
		if err != nil {
			t.Fatalf("fetch during drain: %v", err)
		}
		got += len(batch)
		if done {
			break
		}
	}
	if got != stmt.RowCount-1 {
		t.Fatalf("drained %d rows during shutdown, want %d", got, stmt.RowCount-1)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	// New connections are refused after drain.
	if _, err := Dial(addr, nil); err == nil {
		t.Fatal("dial after shutdown should fail")
	}
}

func TestShutdownDeadlineSeversSessions(t *testing.T) {
	srv, addr, _ := startServer(t, Config{})
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// The idle session never closes; Shutdown must sever it at the
	// deadline and report the forced close.
	if err := srv.Shutdown(ctx); err == nil || !strings.Contains(err.Error(), "severed") {
		t.Fatalf("shutdown past deadline: err = %v", err)
	}
}

// TestConcurrentSessionsRace is the stress test: many sessions over real
// TCP hammer a small set of distinct queries under -race. Singleflight
// must keep optimizer runs at the distinct-query count, and every session
// must see correct rows throughout.
func TestConcurrentSessionsRace(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{DB: db, Registry: reg})
	defer stop()

	queries := []string{
		"SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d",
		"SELECT e.EMPLOYEE_NAME FROM employees e WHERE e.SALARY > :s AND e.DEPT_ID = :d",
		paramQuery,
		"SELECT d.DEPARTMENT_NAME FROM departments d WHERE d.BUDGET > :b",
	}
	const sessions = 16
	const iters = 8

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cli, err := Dial(addr, nil)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for j := 0; j < iters; j++ {
				sql := queries[(id+j)%len(queries)]
				stmt, err := cli.Prepare(sql)
				if err != nil {
					errs <- fmt.Errorf("session %d: prepare: %w", id, err)
					return
				}
				binds := []BindValue{
					Named("d", datum.NewInt(int64(10*(1+(id+j)%5)))),
					Named("s", datum.NewFloat(float64(1000*j))),
					Named("b", datum.NewFloat(0)),
					Named("minsal", datum.NewFloat(0)),
				}
				// Only bind the names this statement declares.
				var use []BindValue
				for _, b := range binds {
					for _, p := range stmt.Params {
						if strings.EqualFold(b.Name, p) {
							use = append(use, b)
						}
					}
				}
				if err := stmt.Execute(use...); err != nil {
					errs <- fmt.Errorf("session %d: execute: %w", id, err)
					return
				}
				rows, err := stmt.FetchAll()
				if err != nil {
					errs <- fmt.Errorf("session %d: fetch: %w", id, err)
					return
				}
				if len(rows) != stmt.RowCount {
					errs <- fmt.Errorf("session %d: fetched %d rows, want %d", id, len(rows), stmt.RowCount)
					return
				}
				if err := stmt.Close(); err != nil {
					errs <- fmt.Errorf("session %d: close stmt: %w", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Singleflight + cache: the optimizer ran at most once per distinct
	// query text, despite 16 sessions × 8 executes.
	if runs := reg.CounterValue("cbqt.queries"); runs > int64(len(queries)) {
		t.Fatalf("optimizer ran %d times for %d distinct queries", runs, len(queries))
	}
	total := reg.CounterValue(MetricQueries)
	if want := int64(sessions * iters); total != want {
		t.Fatalf("server executed %d queries, want %d", total, want)
	}
	if reg.CounterValue(plancache.MetricHits)+reg.CounterValue(plancache.MetricCoalesced) == 0 {
		t.Fatal("no plan sharing observed across 16 sessions")
	}
}

// TestCacheOffOptimizesEveryTime covers the benchmark baseline mode.
func TestCacheOffOptimizesEveryTime(t *testing.T) {
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{Registry: reg, CacheOff: true})
	defer stop()
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sql := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"
	for i := 0; i < 3; i++ {
		stmt, err := cli.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		if err := stmt.Execute(Named("d", datum.NewInt(10))); err != nil {
			t.Fatal(err)
		}
		if stmt.Cached {
			t.Fatal("cache-off server reported a cached plan")
		}
	}
	if q := reg.CounterValue("cbqt.queries"); q != 3 {
		t.Fatalf("optimizer ran %d times with cache off, want 3", q)
	}
}

func TestSessionOptionsStrategy(t *testing.T) {
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{Registry: reg})
	defer stop()

	// Two sessions with different strategies must not share plans (the
	// strategy is a cache-key dimension), and an unknown strategy fails
	// the hello.
	a, err := Dial(addr, &SessionOptions{Strategy: "exhaustive"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, &SessionOptions{Strategy: "linear"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sql := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"
	if _, err := a.Query(sql, Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Query(sql, Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if misses := reg.CounterValue(plancache.MetricMisses); misses != 2 {
		t.Fatalf("different strategies shared a plan: misses = %d, want 2", misses)
	}
	if _, err := Dial(addr, &SessionOptions{Strategy: "quantum"}); err == nil {
		t.Fatal("unknown strategy should fail hello")
	}
}

func TestSessionOptionsCheck(t *testing.T) {
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{Registry: reg})
	defer stop()

	// A checked session and an unchecked one must not share plans: the
	// checker setting is a cache-key dimension, so a statement that asked
	// for verification is never satisfied by a plan cached without it.
	on, off := true, false
	a, err := Dial(addr, &SessionOptions{Check: &on})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, &SessionOptions{Check: &off})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sql := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"
	if _, err := a.Query(sql, Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Query(sql, Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if misses := reg.CounterValue(plancache.MetricMisses); misses != 2 {
		t.Fatalf("checked and unchecked sessions shared a plan: misses = %d, want 2", misses)
	}
	// A second checked session shares the checked plan.
	c, err := Dial(addr, &SessionOptions{Check: &on})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(sql, Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	if misses := reg.CounterValue(plancache.MetricMisses); misses != 2 {
		t.Fatalf("second checked session missed the cache: misses = %d, want 2", misses)
	}
}

func TestMetricsVerb(t *testing.T) {
	_, addr, stop := startServer(t, Config{})
	defer stop()
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Query("SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d", Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}
	m, sess, err := cli.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m[MetricQueries] != 1 {
		t.Fatalf("server.queries = %d, want 1", m[MetricQueries])
	}
	if sess == nil || sess.Executes != 1 || sess.Fetches == 0 {
		t.Fatalf("session stats = %+v", sess)
	}
}
