package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cbqt"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/qtree"
	"repro/internal/sql"
)

// cachedPlan is the value stored in the shared plan cache: the physical
// plan plus everything a session needs to execute it without re-binding.
// Mutation statements cache too: dml carries the bound statement and plan
// holds its locating/source query's physical plan (nil for the
// INSERT ... VALUES form, which has no read query).
type cachedPlan struct {
	plan   *optimizer.Plan
	params []string // parameter names in ordinal order
	sql    string   // transformed query text
	dml    *qtree.DMLStmt
}

// stmt is one prepared statement within a session.
type stmt struct {
	id     int64
	sql    string
	norm   string   // normalized cache-key text
	params []string // parameter names from prepare-time binding
	binds  []datum.Datum
	bound  []bool
	// cursor is the materialized result of the last execute; fetch pages it.
	cursor [][]datum.Datum
	pos    int
	open   bool
}

// session serves one connection. Frames are read by a dedicated reader
// goroutine (readLoop) so a peer that vanishes mid-request cancels the
// session context — and with it the in-flight optimize/execute — instead
// of burning optimizer states for a closed socket. Dispatch and response
// writes stay on the session goroutine; only Shutdown touches the
// connection from outside (to sever it).
type session struct {
	srv  *Server
	id   int64
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	ctx    context.Context
	cancel context.CancelFunc
	// done is closed when the dispatch loop exits, releasing a readLoop
	// blocked on delivering a frame.
	done chan struct{}

	opts     cbqt.Options
	strategy string // plan-cache strategy fingerprint

	stmts    map[int64]*stmt
	nextStmt int64

	prepared  atomic.Int64
	executes  atomic.Int64
	cacheHits atomic.Int64
	fetches   atomic.Int64
	rowsSent  atomic.Int64
	shed      atomic.Int64
	deadlines atomic.Int64
}

func newSession(s *Server, id int64, conn net.Conn) *session {
	ctx, cancel := context.WithCancel(context.Background())
	return &session{
		srv:      s,
		id:       id,
		conn:     conn,
		r:        bufio.NewReader(conn),
		w:        bufio.NewWriter(conn),
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		opts:     s.opts,
		strategy: strategyFingerprint(s.opts),
		stmts:    map[int64]*stmt{},
	}
}

// frameMsg is one reader-goroutine delivery: a request or a terminal read
// error, never both.
type frameMsg struct {
	req Request
	err error
}

// run is the session's request loop: one frame in, one frame out, until
// the peer closes, sends the close verb, a wire error occurs, or the idle
// timeout reaps the session.
func (ss *session) run() {
	defer func() {
		ss.cancel()
		close(ss.done)
		ss.conn.Close()
		ss.srv.unregister(ss.id)
	}()
	frames := make(chan frameMsg)
	go ss.readLoop(frames)

	var idleC <-chan time.Time
	var idle *time.Timer
	if d := ss.srv.idleTimeout; d > 0 {
		idle = time.NewTimer(d)
		defer idle.Stop()
		idleC = idle.C
	}
	for {
		var fm frameMsg
		select {
		case fm = <-frames:
		case <-idleC:
			// The peer sent nothing — not even a heartbeat — for the
			// whole idle window: reap the session so a dead client
			// cannot pin cursors through a graceful drain.
			ss.srv.idleReaped.Inc()
			return
		}
		if fm.err != nil {
			if !errors.Is(fm.err, io.EOF) && !errors.Is(fm.err, net.ErrClosed) {
				ss.srv.errorsCtr.Inc()
			}
			return
		}
		resp := ss.dispatch(&fm.req)
		if err := ss.writeResponse(resp); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				ss.srv.writeTimeouts.Inc()
			}
			ss.srv.errorsCtr.Inc()
			return
		}
		if fm.req.Verb == VerbClose {
			return
		}
		if idle != nil {
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(ss.srv.idleTimeout)
		}
	}
}

// readLoop owns the connection's read side. A read error — the peer reset,
// vanished, or sent garbage — cancels the session context first, so any
// optimize or execute in flight on the dispatch goroutine stops at its
// next cancellation poll, then delivers the error to the dispatch loop.
func (ss *session) readLoop(frames chan<- frameMsg) {
	for {
		var req Request
		if err := ReadFrame(ss.r, &req); err != nil {
			ss.cancel()
			select {
			case frames <- frameMsg{err: err}:
			case <-ss.done:
			}
			return
		}
		select {
		case frames <- frameMsg{req: req}:
		case <-ss.done:
			return
		}
	}
}

// writeResponse sends one frame under the server's write deadline, so a
// peer that stops reading severs its own session instead of blocking the
// writer (and a graceful drain behind it) forever.
func (ss *session) writeResponse(resp *Response) error {
	if d := ss.srv.writeTimeout; d > 0 {
		ss.conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := WriteFrame(ss.w, resp); err != nil {
		return err
	}
	if err := ss.w.Flush(); err != nil {
		return err
	}
	if ss.srv.writeTimeout > 0 {
		ss.conn.SetWriteDeadline(time.Time{})
	}
	return nil
}

func (ss *session) dispatch(req *Request) *Response {
	var resp *Response
	var err error
	switch req.Verb {
	case VerbHello:
		resp, err = ss.hello(req)
	case VerbPrepare:
		resp, err = ss.prepare(req)
	case VerbBind:
		resp, err = ss.bind(req)
	case VerbExecute:
		resp, err = ss.execute(req)
	case VerbFetch:
		resp, err = ss.fetch(req)
	case VerbCloseStmt:
		resp, err = ss.closeStmt(req)
	case VerbAnalyze:
		resp, err = ss.analyze(req)
	case VerbMetrics:
		resp, err = ss.metrics(req)
	case VerbPing:
		ss.srv.pings.Inc()
		resp = &Response{}
	case VerbClose:
		resp = &Response{}
	default:
		err = fmt.Errorf("server: unknown verb %q", req.Verb)
	}
	if err != nil {
		ss.srv.errorsCtr.Inc()
		code := codeOf(err)
		switch code {
		case CodeOverloaded:
			ss.shed.Add(1)
		case CodeDeadline:
			ss.deadlines.Add(1)
			ss.srv.deadlinesCtr.Inc()
		}
		// A typed error's text would double its code ("OVERLOADED:
		// OVERLOADED: ...") once the client re-wraps the frame; send the
		// bare message.
		msg := err.Error()
		var we *Error
		if errors.As(err, &we) {
			msg = we.Msg
		}
		return &Response{Error: msg, Code: code}
	}
	resp.OK = true
	return resp
}

func (ss *session) hello(req *Request) (*Response, error) {
	opts, fp, err := ss.srv.sessionOpts(req.Options)
	if err != nil {
		return nil, err
	}
	ss.opts = opts
	ss.strategy = fp
	return &Response{Stmt: ss.id}, nil
}

func (ss *session) prepare(req *Request) (*Response, error) {
	if ss.srv.Draining() {
		return nil, ErrDraining
	}
	st, err := ss.newStmt(req.SQL)
	if err != nil {
		return nil, err
	}
	ss.stmts[st.id] = st
	ss.prepared.Add(1)
	return &Response{Stmt: st.id, Params: st.params}, nil
}

// newStmt parses and binds the text once to discover its parameters. The
// throwaway tree also surfaces syntax and semantic errors at prepare time.
// Queries and mutations both prepare here; the statement kind is resolved
// again at plan time from the cached entry.
func (ss *session) newStmt(src string) (*stmt, error) {
	parsed, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	bound, err := qtree.BindStatement(parsed, ss.srv.db.Catalog)
	if err != nil {
		return nil, err
	}
	var params []string
	switch v := bound.(type) {
	case *qtree.Query:
		params = v.Params
	case *qtree.DMLStmt:
		params = v.Params
	}
	ss.nextStmt++
	return &stmt{
		id:     ss.nextStmt,
		sql:    src,
		norm:   plancache.Normalize(src),
		params: params,
		binds:  make([]datum.Datum, len(params)),
		bound:  make([]bool, len(params)),
	}, nil
}

func (ss *session) lookup(id int64) (*stmt, error) {
	st, ok := ss.stmts[id]
	if !ok {
		return nil, fmt.Errorf("server: no prepared statement %d", id)
	}
	return st, nil
}

// applyBinds sets parameter values on st: named values match parameters
// case-insensitively, unnamed values fill ordinals left to right.
func applyBinds(st *stmt, binds []BindValue) error {
	next := 0
	for _, b := range binds {
		d, err := b.Value.Decode()
		if err != nil {
			return err
		}
		ord := -1
		if b.Name == "" {
			for next < len(st.params) && st.bound[next] {
				next++
			}
			if next >= len(st.params) {
				return fmt.Errorf("server: too many positional binds (%d parameters)", len(st.params))
			}
			ord = next
		} else {
			want := strings.ToUpper(b.Name)
			for i, n := range st.params {
				if n == want {
					ord = i
					break
				}
			}
			if ord < 0 {
				return fmt.Errorf("server: no parameter :%s (have %s)", b.Name, strings.Join(st.params, ", "))
			}
		}
		st.binds[ord] = d
		st.bound[ord] = true
	}
	return nil
}

func (ss *session) bind(req *Request) (*Response, error) {
	st, err := ss.lookup(req.Stmt)
	if err != nil {
		return nil, err
	}
	if err := applyBinds(st, req.Binds); err != nil {
		return nil, err
	}
	return &Response{Stmt: st.id}, nil
}

func (ss *session) execute(req *Request) (*Response, error) {
	if ss.srv.Draining() {
		return nil, ErrDraining
	}
	st := (*stmt)(nil)
	var err error
	if req.Stmt != 0 {
		if st, err = ss.lookup(req.Stmt); err != nil {
			return nil, err
		}
	} else {
		// One-shot execute: implicit prepare, not retained after the
		// cursor is materialized below.
		if st, err = ss.newStmt(req.SQL); err != nil {
			return nil, err
		}
		ss.nextStmt-- // id not consumed
		st.id = 0
	}
	if err := applyBinds(st, req.Binds); err != nil {
		return nil, err
	}
	missing := []string{}
	for i, ok := range st.bound {
		if !ok {
			missing = append(missing, ":"+st.params[i])
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("server: unbound parameters %s", strings.Join(missing, ", "))
	}

	// The client-supplied deadline bounds the whole optimize+execute span:
	// it rides into the optimizer's budget tracker (which degrades the
	// search when it nears) and the executor's cancellation polling.
	ctx := ss.ctx
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}

	// Admission control gates the expensive span. Shed requests cost the
	// server nothing but this typed response.
	release, err := ss.srv.adm.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	cp, cached, err := ss.plan(ctx, st)
	if err != nil {
		return nil, err
	}
	if len(cp.params) != len(st.binds) {
		return nil, fmt.Errorf("server: plan expects %d parameters, statement has %d", len(cp.params), len(st.binds))
	}

	// Every statement executes against its own MVCC snapshot: reads see
	// one consistent version of every table for the whole run, and writers
	// commit concurrently without blocking anyone (the old DDL RWMutex is
	// gone — ANALYZE and index builds read snapshots like everything else).
	affected := 0
	if cp.dml != nil {
		dres, err := exec.RunDML(ctx, ss.srv.db, cp.dml, cp.plan, st.binds, exec.Options{})
		if err != nil {
			return nil, err
		}
		affected = dres.Affected
		st.cursor = nil
	} else {
		res, err := exec.RunParams(ctx, ss.srv.db, cp.plan, st.binds)
		if err != nil {
			return nil, err
		}
		st.cursor = make([][]datum.Datum, len(res.Rows))
		for i, r := range res.Rows {
			st.cursor[i] = r
		}
	}
	st.pos = 0
	st.open = true
	if st.id == 0 {
		// One-shot statements live at id 0 so the client can fetch the
		// cursor; the next one-shot replaces it.
		ss.stmts[0] = st
	}
	ss.executes.Add(1)
	ss.srv.queries.Inc()
	if cached {
		ss.cacheHits.Add(1)
	}
	return &Response{Stmt: st.id, SQL: cp.sql, Cached: cached, RowCount: len(st.cursor), Affected: affected, Params: cp.params}, nil
}

// plan resolves the statement's physical plan through the shared cache
// (or optimizes directly when the cache is off). The catalog stats version
// in the key is an atomic read: an ANALYZE racing this lookup may cache a
// plan one stats generation newer than its key says — still a correct
// plan (statistics only steer cost), and the next Invalidate sweeps it.
// The data version deliberately stays out of the key: snapshots keep a
// cached plan correct under any amount of concurrent write churn.
func (ss *session) plan(ctx context.Context, st *stmt) (*cachedPlan, bool, error) {
	key := plancache.Key{
		SQL:      st.norm,
		Strategy: ss.strategy,
		Version:  ss.srv.db.Catalog.Version(),
	}
	if ss.srv.cache == nil {
		cp, err := ss.optimize(ctx, st.sql)
		return cp, false, err
	}
	// Coalesced waiters share the computing caller's context: if that
	// caller's deadline degrades or fails the optimization, the error is
	// returned to every waiter and nothing is cached.
	v, shared, err := ss.srv.cache.GetOrCompute(key, func() (any, error) {
		return ss.optimize(ctx, st.sql)
	})
	if err != nil {
		return nil, false, err
	}
	cp, ok := v.(*cachedPlan)
	if !ok {
		return nil, false, fmt.Errorf("server: plan cache holds %T for %q, want *cachedPlan", v, st.norm)
	}
	return cp, shared, nil
}

// optimize runs the full parse → bind → CBQT pipeline for one statement.
// Mutations go through the same pipeline: their locating/source query is
// an ordinary bound query that the cost-based transformer plans like any
// SELECT, so an UPDATE's subquery predicate gets unnested exactly as it
// would in a read. A request whose deadline expires mid-search fails here
// with the context error rather than returning the degraded plan: the
// query could not make its deadline anyway, and a plan degraded by one
// caller's deadline must never be cached for everyone else.
func (ss *session) optimize(ctx context.Context, src string) (*cachedPlan, error) {
	parsed, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	bound, err := qtree.BindStatement(parsed, ss.srv.db.Catalog)
	if err != nil {
		return nil, err
	}
	switch v := bound.(type) {
	case *qtree.Query:
		res, err := ss.runCBQT(ctx, v)
		if err != nil {
			return nil, err
		}
		return &cachedPlan{plan: res.Plan, params: res.Query.Params, sql: res.Query.SQL()}, nil
	case *qtree.DMLStmt:
		// Mutations run the same optimizer entry the checker arms: the DML
		// contract (ROWID locating query, target arity/types) is validated
		// around the read query's search, so a malformed statement fails
		// here instead of addressing arbitrary rows in the executor.
		cp := &cachedPlan{params: v.Params, sql: src, dml: v}
		res, err := ss.runCBQTDML(ctx, v)
		if err != nil {
			return nil, err
		}
		if res.Plan != nil {
			cp.plan = res.Plan
			cp.sql = res.Query.SQL()
		}
		return cp, nil
	}
	return nil, fmt.Errorf("server: unknown bound statement %T", bound)
}

func (ss *session) runCBQT(ctx context.Context, q *qtree.Query) (*cbqt.Result, error) {
	o := &cbqt.Optimizer{Cat: ss.srv.db.Catalog, Opts: ss.opts}
	res, err := o.OptimizeContext(ctx, q)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ss.srv.adm.observe(res.Stats.MemoStateBytes)
	return res, nil
}

func (ss *session) runCBQTDML(ctx context.Context, stmt *qtree.DMLStmt) (*cbqt.Result, error) {
	o := &cbqt.Optimizer{Cat: ss.srv.db.Catalog, Opts: ss.opts}
	res, err := o.OptimizeDML(ctx, stmt)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ss.srv.adm.observe(res.Stats.MemoStateBytes)
	return res, nil
}

func (ss *session) fetch(req *Request) (*Response, error) {
	st, err := ss.lookup(req.Stmt)
	if err != nil {
		return nil, err
	}
	if !st.open {
		return nil, fmt.Errorf("server: statement %d has no open cursor", st.id)
	}
	n := req.MaxRows
	if n <= 0 {
		n = DefaultFetchRows
	}
	end := st.pos + n
	if end > len(st.cursor) {
		end = len(st.cursor)
	}
	batch := make([][]WireDatum, 0, end-st.pos)
	for _, row := range st.cursor[st.pos:end] {
		batch = append(batch, EncodeRow(row))
	}
	st.pos = end
	done := st.pos >= len(st.cursor)
	ss.fetches.Add(1)
	ss.rowsSent.Add(int64(len(batch)))
	ss.srv.fetches.Inc()
	ss.srv.rowsSent.Add(int64(len(batch)))
	return &Response{Stmt: st.id, Rows: batch, Done: done}, nil
}

func (ss *session) closeStmt(req *Request) (*Response, error) {
	st, err := ss.lookup(req.Stmt)
	if err != nil {
		return nil, err
	}
	delete(ss.stmts, st.id)
	return &Response{Stmt: st.id}, nil
}

// analyze re-collects statistics and sweeps now-stale plans from the
// shared cache. No lock: ANALYZE reads its own MVCC snapshot and publishes
// stats atomically, so concurrent queries and writers never wait on it.
func (ss *session) analyze(req *Request) (*Response, error) {
	if ss.srv.Draining() {
		return nil, ErrDraining
	}
	if err := ss.srv.db.AnalyzeTable(req.Table); err != nil {
		return nil, err
	}
	version := ss.srv.db.Catalog.Version()
	if ss.srv.cache != nil {
		ss.srv.cache.Invalidate(version)
	}
	return &Response{}, nil
}

func (ss *session) metrics(*Request) (*Response, error) {
	snap := ss.srv.reg.Snapshot()
	m := make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
	for k, v := range snap.Counters {
		m[k] = v
	}
	for k, v := range snap.Gauges {
		m[k] = v
	}
	return &Response{Metrics: m, Session: ss.stats()}, nil
}

func (ss *session) stats() *SessionStats {
	return &SessionStats{
		ID:        ss.id,
		Prepared:  ss.prepared.Load(),
		Executes:  ss.executes.Load(),
		CacheHits: ss.cacheHits.Load(),
		Fetches:   ss.fetches.Load(),
		RowsSent:  ss.rowsSent.Load(),
		Shed:      ss.shed.Load(),
		Deadlines: ss.deadlines.Load(),
	}
}
