package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cbqt"
	"repro/internal/obsv"
	"repro/internal/plancache"
	"repro/internal/storage"
)

// Server metric names published to the registry.
const (
	MetricSessionsOpened = "server.sessions.opened"
	MetricSessionsClosed = "server.sessions.closed"
	MetricSessionsActive = "server.sessions.active"
	MetricQueries        = "server.queries"
	MetricFetches        = "server.fetches"
	MetricRowsSent       = "server.rows_sent"
	MetricErrors         = "server.errors"
)

// DefaultFetchRows is the fetch batch size when the client asks for <= 0.
const DefaultFetchRows = 256

// ErrDraining rejects new work while the server shuts down; in-flight
// cursors may still be fetched to completion.
var ErrDraining = errors.New("server: draining: no new statements accepted")

// Config assembles a Server.
type Config struct {
	// DB is the shared database. Every statement — reads, writes, ANALYZE
	// — executes against its own MVCC snapshot, so nothing serializes
	// against anything: writers commit while readers scan older versions.
	DB *storage.DB
	// Opts is the base optimizer configuration; sessions refine strategy
	// and budget per connection. Opts.Metrics is overridden with Registry.
	Opts cbqt.Options
	// Registry receives server, session, plan-cache and optimizer counters.
	// Nil allocates a private registry.
	Registry *obsv.Registry
	// CacheOff disables the shared plan cache: every execute optimizes.
	// Used by benchmarks to measure the cache's amortization.
	CacheOff bool
	// CacheMaxEntries bounds the plan cache (<= 0: plancache default).
	CacheMaxEntries int

	// MaxInflight bounds concurrent optimize+execute spans across all
	// sessions (<= 0: unlimited, admission control off). Requests beyond
	// the bound wait in a bounded queue; requests beyond the queue are
	// shed with a typed retryable OVERLOADED error.
	MaxInflight int
	// MaxQueue bounds requests waiting for an inflight slot (<= 0 with
	// MaxInflight set: no queue, saturated requests shed immediately).
	MaxQueue int
	// QueueWait bounds how long a queued request waits before it is shed
	// (<= 0: DefaultQueueWait).
	QueueWait time.Duration
	// MemHighWaterBytes sheds new optimize spans once the reserved
	// per-query optimizer-memory estimate (an EWMA of cbqt
	// Stats.MemoStateBytes across completed optimizations) would cross
	// this mark (<= 0: off). Only meaningful with MaxInflight set.
	MemHighWaterBytes int64
	// IdleTimeout reaps sessions that send no frame for this long (<= 0:
	// never). Heartbeat ping frames reset the timer, so a deliberately
	// idle client can hold its session — and its cursors — alive, while a
	// dead peer cannot pin a graceful drain.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (<= 0: none). A peer that
	// stops reading mid-fetch trips it and the session is severed instead
	// of wedging the drain.
	WriteTimeout time.Duration
}

// Server owns the listener, the shared plan cache and the session set.
type Server struct {
	db    *storage.DB
	opts  cbqt.Options
	reg   *obsv.Registry
	cache *plancache.Cache // nil when the cache is off
	adm   *admission       // nil when admission control is off

	idleTimeout  time.Duration
	writeTimeout time.Duration

	mu        sync.Mutex
	listener  net.Listener
	sessions  map[int64]*session
	nextSess  int64
	draining  bool
	done      chan struct{} // closed when the last session ends after drain
	accepting sync.WaitGroup

	sessionsOpened *obsv.Counter
	sessionsClosed *obsv.Counter
	sessionsActive *obsv.Gauge
	queries        *obsv.Counter
	fetches        *obsv.Counter
	rowsSent       *obsv.Counter
	errorsCtr      *obsv.Counter
	deadlinesCtr   *obsv.Counter
	idleReaped     *obsv.Counter
	writeTimeouts  *obsv.Counter
	pings          *obsv.Counter
}

// New creates a server over the given database.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	opts := cfg.Opts
	opts.Metrics = reg
	s := &Server{
		db:           cfg.DB,
		opts:         opts,
		reg:          reg,
		adm:          newAdmission(cfg, reg),
		idleTimeout:  cfg.IdleTimeout,
		writeTimeout: cfg.WriteTimeout,
		sessions:     map[int64]*session{},
		done:         make(chan struct{}),

		sessionsOpened: reg.Counter(MetricSessionsOpened),
		sessionsClosed: reg.Counter(MetricSessionsClosed),
		sessionsActive: reg.Gauge(MetricSessionsActive),
		queries:        reg.Counter(MetricQueries),
		fetches:        reg.Counter(MetricFetches),
		rowsSent:       reg.Counter(MetricRowsSent),
		errorsCtr:      reg.Counter(MetricErrors),
		deadlinesCtr:   reg.Counter(MetricDeadlineExceeded),
		idleReaped:     reg.Counter(MetricIdleReaped),
		writeTimeouts:  reg.Counter(MetricWriteTimeouts),
		pings:          reg.Counter(MetricPings),
	}
	if !cfg.CacheOff {
		s.cache = plancache.New(cfg.CacheMaxEntries, reg)
	}
	return s
}

// Registry exposes the server's metric registry.
func (s *Server) Registry() *obsv.Registry { return s.reg }

// Serve accepts connections on l until Shutdown (or a fatal listener
// error). Each connection runs as one session on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil // listener closed by Shutdown
			}
			return err
		}
		sess := s.register(conn)
		if sess == nil {
			conn.Close() // drain began between Accept and register
			continue
		}
		s.accepting.Add(1)
		go func() {
			defer s.accepting.Done()
			sess.run()
		}()
	}
}

func (s *Server) register(conn net.Conn) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	s.nextSess++
	sess := newSession(s, s.nextSess, conn)
	s.sessions[sess.id] = sess
	s.sessionsOpened.Inc()
	s.sessionsActive.Set(int64(len(s.sessions)))
	return sess
}

func (s *Server) unregister(id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[id]; !ok {
		return
	}
	delete(s.sessions, id)
	s.sessionsClosed.Inc()
	s.sessionsActive.Set(int64(len(s.sessions)))
	if s.draining && len(s.sessions) == 0 {
		select {
		case <-s.done:
		default:
			close(s.done)
		}
	}
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server gracefully: the listener stops accepting, new
// statements are rejected with ErrDraining, but sessions keep their open
// cursors and may fetch them to completion. When every session has closed
// — or ctx expires — remaining connections are severed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.draining = true
	l := s.listener
	empty := len(s.sessions) == 0
	if empty {
		close(s.done)
	}
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}

	var err error
	select {
	case <-s.done:
	case <-ctx.Done():
		err = fmt.Errorf("server: shutdown deadline: %d sessions severed", s.severAll())
	}
	s.accepting.Wait()
	return err
}

// severAll force-closes every remaining session connection.
func (s *Server) severAll() int {
	s.mu.Lock()
	var conns []net.Conn
	for _, sess := range s.sessions {
		conns = append(conns, sess.conn)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// sessionOpts refines the base optimizer options with one session's hello.
func (s *Server) sessionOpts(so *SessionOptions) (cbqt.Options, string, error) {
	opts := s.opts
	if so != nil {
		if so.Strategy != "" {
			st, err := parseStrategy(so.Strategy)
			if err != nil {
				return opts, "", err
			}
			opts.Strategy = st
		}
		opts.Budget = cbqt.Budget{
			Timeout:     time.Duration(so.TimeoutMS) * time.Millisecond,
			MaxStates:   so.MaxStates,
			MaxMemBytes: so.MaxMemBytes,
		}
		if so.Check != nil {
			opts.Check = *so.Check
		}
	}
	return opts, strategyFingerprint(opts), nil
}

func parseStrategy(name string) (cbqt.Strategy, error) {
	for _, st := range []cbqt.Strategy{
		cbqt.StrategyAuto, cbqt.StrategyExhaustive, cbqt.StrategyIterative,
		cbqt.StrategyLinear, cbqt.StrategyTwoPass,
	} {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("server: unknown strategy %q", name)
}

// strategyFingerprint renders the plan-affecting optimizer options as the
// plan-cache key's strategy dimension: sessions searching differently (or
// under budgets that can degrade the search differently) never share
// plans.
func strategyFingerprint(opts cbqt.Options) string {
	fp := opts.Strategy.String()
	if b := opts.Budget; b.Timeout != 0 || b.MaxStates != 0 || b.MaxMemBytes != 0 {
		fp = fmt.Sprintf("%s|t=%s,s=%d,m=%d", fp, b.Timeout, b.MaxStates, b.MaxMemBytes)
	}
	if opts.Check {
		fp += "|check"
	}
	return fp
}
