package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cbqt"
	"repro/internal/datum"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/testkit"
)

// slowOpts makes every optimization take at least d: the heuristics fault
// site fires at least once per optimize. Combined with CacheOff this turns
// each execute into a d-long span, which is how these tests create real
// contention on the admission gate.
func slowOpts(d time.Duration) cbqt.Options {
	opts := cbqt.DefaultOptions()
	opts.Faults = faultinject.New(faultinject.Fault{
		Site: "heuristics", Kind: faultinject.KindDelay, Delay: d,
	})
	return opts
}

// slowStates delays every transformation-state evaluation by d, so a
// deadline-bounded search reliably expires mid-search under the full
// (DefaultOptions) strategy while an unbounded one still finishes.
func slowStates(d time.Duration) cbqt.Options {
	opts := cbqt.DefaultOptions()
	opts.Faults = faultinject.New(faultinject.Fault{
		Site: "state:*", Kind: faultinject.KindDelay, Delay: d,
	})
	return opts
}

// heavyQuery is a Table 2-shaped query (several unnestable subqueries):
// unlike a single flat EXISTS — which the heuristic pass absorbs — it
// drives the cost-based state search, so state:* fault sites fire and
// MemoStateBytes is nonzero.
const heavyQuery = `
SELECT e.employee_name, d.department_name
FROM employees e, departments d
WHERE e.dept_id = d.dept_id AND
  e.emp_id NOT IN (SELECT j.emp_id FROM job_history j, jobs jb
                   WHERE j.job_id = jb.job_id AND j.start_date > '20020101') AND
  EXISTS (SELECT 1 FROM sales s, departments d3
          WHERE s.dept_id = d3.dept_id AND s.emp_id = e.emp_id) AND
  NOT EXISTS (SELECT 1 FROM sales s2, jobs jb2, employees e4
              WHERE s2.emp_id = e4.emp_id AND e4.job_id = jb2.job_id AND s2.dept_id = e.dept_id AND s2.amount > 990)`

// TestAdmissionShedsWhenSaturated: with one inflight slot and no queue,
// concurrent executes beyond the slot are shed immediately with the typed,
// retryable OVERLOADED error — the server never queues unboundedly.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	testkit.LeakCheck(t)
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{
		Registry: reg, CacheOff: true, Opts: slowOpts(400 * time.Millisecond),
		MaxInflight: 1, MaxQueue: 0,
	})
	defer stop()

	sql := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"
	run := func() error {
		cli, err := Dial(addr, nil)
		if err != nil {
			return err
		}
		defer cli.Close()
		_, err = cli.Query(sql, Named("d", datum.NewInt(10)))
		return err
	}

	first := make(chan error, 1)
	go func() { first <- run() }()
	time.Sleep(150 * time.Millisecond) // the first query now holds the slot

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) { defer wg.Done(); errs[i] = run() }(i)
	}
	wg.Wait()
	if err := <-first; err != nil {
		t.Fatalf("the admitted query failed: %v", err)
	}
	sheds := 0
	for _, err := range errs {
		if err == nil {
			continue // squeezed in after the first released its slot
		}
		var se *Error
		if !errors.As(err, &se) || se.Code != CodeOverloaded {
			t.Fatalf("saturated execute failed untyped: %v", err)
		}
		if !IsRetryable(err) {
			t.Fatalf("OVERLOADED must be retryable: %v", err)
		}
		sheds++
	}
	if sheds == 0 {
		t.Fatal("no concurrent request was shed at MaxInflight=1, MaxQueue=0")
	}
	if got := reg.CounterValue(MetricShedQueue); got == 0 {
		t.Fatal("server.shed.queue_full did not count the sheds")
	}
	if reg.CounterValue(MetricShed) < int64(sheds) {
		t.Fatalf("server.shed = %d, want >= %d", reg.CounterValue(MetricShed), sheds)
	}
}

// TestQueueWaitShed: a request that queues but cannot get a slot within
// QueueWait is shed with OVERLOADED rather than waiting forever.
func TestQueueWaitShed(t *testing.T) {
	testkit.LeakCheck(t)
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{
		Registry: reg, CacheOff: true, Opts: slowOpts(600 * time.Millisecond),
		MaxInflight: 1, MaxQueue: 4, QueueWait: 50 * time.Millisecond,
	})
	defer stop()

	sql := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"
	first := make(chan error, 1)
	go func() {
		cli, err := Dial(addr, nil)
		if err != nil {
			first <- err
			return
		}
		defer cli.Close()
		_, err = cli.Query(sql, Named("d", datum.NewInt(10)))
		first <- err
	}()
	time.Sleep(150 * time.Millisecond)

	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	_, err = cli.Query(sql, Named("d", datum.NewInt(20)))
	waited := time.Since(start)
	if ErrorCode(err) != CodeOverloaded {
		t.Fatalf("queued past QueueWait: err = %v, want OVERLOADED", err)
	}
	if waited >= 400*time.Millisecond {
		t.Fatalf("shed took %v; the 50ms QueueWait did not bound the queue time", waited)
	}
	if reg.CounterValue(MetricShedWait) == 0 {
		t.Fatal("server.shed.queue_wait did not count the timed-out waiter")
	}
	if err := <-first; err != nil {
		t.Fatalf("slot-holding query failed: %v", err)
	}
}

// TestMemoryPressureShed: once the EWMA per-query memory estimate is primed,
// a span that would push reserved+estimated past the high-water mark is
// shed — but a span starting on an idle gate is always admitted, so the
// server recovers instead of wedging.
func TestMemoryPressureShed(t *testing.T) {
	testkit.LeakCheck(t)
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{
		Registry: reg, CacheOff: true, Opts: slowOpts(300 * time.Millisecond),
		MaxInflight: 4, MemHighWaterBytes: 1,
	})
	defer stop()

	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Prime the estimate: the first query runs on a cold gate (estimate 0).
	// heavyQuery's state search is what makes MemoStateBytes nonzero.
	if _, err := cli.Query(heavyQuery); err != nil {
		t.Fatal(err)
	}
	if reg.GaugeValue(MetricMemEstimated) <= 0 {
		t.Fatal("completed optimization did not feed the memory estimate")
	}

	// Hold the gate with one admitted span, then collide with it.
	holder := make(chan error, 1)
	go func() {
		h, err := Dial(addr, nil)
		if err != nil {
			holder <- err
			return
		}
		defer h.Close()
		_, err = h.Query(heavyQuery)
		holder <- err
	}()
	time.Sleep(150 * time.Millisecond)
	_, err = cli.Query(heavyQuery)
	if ErrorCode(err) != CodeOverloaded {
		t.Fatalf("concurrent query over the high-water mark: err = %v, want OVERLOADED", err)
	}
	if reg.CounterValue(MetricShedMem) == 0 {
		t.Fatal("server.shed.mem_pressure did not count the shed")
	}
	if err := <-holder; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}
	// Idle gate again: the same query is admitted even though the estimate
	// still exceeds the high-water mark (no permanent lockout).
	if _, err := cli.Query(heavyQuery); err != nil {
		t.Fatalf("idle-gate query after pressure: %v", err)
	}
}

// rawSession is a bare wire-protocol peer for tests that need exact control
// over frames (no client-side deadlines or retries in the way).
type rawSession struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func rawDial(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	rs := &rawSession{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if resp := rs.call(t, &Request{Verb: VerbHello}); !resp.OK {
		t.Fatalf("hello: %s", resp.Error)
	}
	return rs
}

// close ends the session politely so a graceful server drain need not wait
// for the test's connection (net.Conn close alone races the drain).
func (rs *rawSession) close() {
	WriteFrame(rs.w, &Request{Verb: VerbClose})
	rs.w.Flush()
	rs.conn.Close()
}

func (rs *rawSession) send(t *testing.T, req *Request) {
	t.Helper()
	if err := WriteFrame(rs.w, req); err != nil {
		t.Fatal(err)
	}
	if err := rs.w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func (rs *rawSession) call(t *testing.T, req *Request) *Response {
	t.Helper()
	rs.send(t, req)
	var resp Response
	if err := ReadFrame(rs.r, &resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

// TestDeadlinePropagation: the client's deadline rides the wire into the
// optimizer's budget, the span fails with a typed DEADLINE error, and —
// critically — the deadline-degraded optimization is never cached: the next
// caller optimizes fresh.
func TestDeadlinePropagation(t *testing.T) {
	testkit.LeakCheck(t)
	reg := obsv.NewRegistry()
	// Every transformation-state evaluation sleeps 60ms, so a 20ms deadline
	// always expires mid-search while an unbounded caller still finishes.
	_, addr, stop := startServer(t, Config{Registry: reg, Opts: slowStates(60 * time.Millisecond)})
	defer stop()

	rs := rawDial(t, addr)
	defer rs.close()
	req := &Request{Verb: VerbExecute, SQL: heavyQuery}

	withDeadline := *req
	withDeadline.DeadlineMS = 20
	resp := rs.call(t, &withDeadline)
	if resp.OK || resp.Code != CodeDeadline {
		t.Fatalf("execute with a 20ms deadline: OK=%v code=%q err=%q, want DEADLINE", resp.OK, resp.Code, resp.Error)
	}
	if reg.CounterValue(MetricDeadlineExceeded) == 0 {
		t.Fatal("server.deadline_exceeded did not count the expiry")
	}

	// The failed, deadline-bounded optimization must not have poisoned the
	// shared cache: the next (unbounded) execute optimizes fresh...
	resp = rs.call(t, req)
	if !resp.OK {
		t.Fatalf("unbounded execute after deadline failure: %s", resp.Error)
	}
	if resp.Cached {
		t.Fatal("a deadline-degraded optimization was served from the plan cache")
	}
	// ...and only then is the full-quality plan shared.
	resp = rs.call(t, req)
	if !resp.OK || !resp.Cached {
		t.Fatalf("third execute: OK=%v Cached=%v, want cached plan", resp.OK, resp.Cached)
	}
}

// TestClientDeadlineCancelsQuery covers the client half of deadline
// propagation: a QueryContext past its budget fails with a typed DEADLINE
// error instead of hanging.
func TestClientDeadlineCancelsQuery(t *testing.T) {
	testkit.LeakCheck(t)
	_, addr, stop := startServer(t, Config{Opts: slowStates(60 * time.Millisecond), CacheOff: true})
	defer stop()

	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.QueryContext(ctx, heavyQuery)
	if ErrorCode(err) != CodeDeadline {
		t.Fatalf("expired QueryContext: err = %v, want DEADLINE", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline-bounded query took %v to fail", d)
	}
}

// TestIdleReapAndHeartbeat: a silent session is reaped at IdleTimeout, but
// heartbeat pings keep a deliberately idle session — and its cursors —
// alive through the same window.
func TestIdleReapAndHeartbeat(t *testing.T) {
	testkit.LeakCheck(t)
	reg := obsv.NewRegistry()
	const idle = 300 * time.Millisecond
	_, addr, stop := startServer(t, Config{Registry: reg, IdleTimeout: idle})
	defer stop()

	sql := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"

	// The heartbeating client spans 3 idle windows and survives.
	alive, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	stmt, err := alive.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Execute(Named("d", datum.NewInt(10))); err != nil {
		t.Fatal(err)
	}

	// The silent client is reaped.
	dead, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}

	deadlineAt := time.Now().Add(3 * idle)
	for time.Now().Before(deadlineAt) {
		if err := alive.Ping(context.Background()); err != nil {
			t.Fatalf("heartbeat failed: %v", err)
		}
		time.Sleep(idle / 6)
	}

	// The heartbeated session still holds its prepared statement and cursor.
	if _, err := stmt.FetchAll(); err != nil {
		t.Fatalf("cursor did not survive heartbeated idleness: %v", err)
	}
	if reg.CounterValue(MetricIdleReaped) == 0 {
		t.Fatal("silent session was not reaped")
	}
	if reg.CounterValue(MetricPings) == 0 {
		t.Fatal("heartbeats were not counted")
	}
	// The reaped client's next call fails on the severed connection.
	if _, err := dead.Query(sql, Named("d", datum.NewInt(10))); err == nil {
		t.Fatal("query on a reaped session succeeded")
	}
	if !dead.Broken() {
		t.Fatal("reaped connection not marked broken client-side")
	}
}

// TestStalledReaderSeveredByWriteDeadline is the drain regression test: a
// peer that requests a huge fetch and then stops reading must not wedge a
// graceful Shutdown. The per-response write deadline severs the stalled
// session, bounding the drain.
func TestStalledReaderSeveredByWriteDeadline(t *testing.T) {
	testkit.LeakCheck(t)
	reg := obsv.NewRegistry()
	srv, addr, _ := startServer(t, Config{Registry: reg, WriteTimeout: 300 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A tiny receive window makes the server's multi-megabyte fetch
	// response block after a few KB.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4 << 10)
	}
	rs := &rawSession{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if resp := rs.call(t, &Request{Verb: VerbHello}); !resp.OK {
		t.Fatalf("hello: %s", resp.Error)
	}
	resp := rs.call(t, &Request{Verb: VerbExecute, SQL: `
		SELECT e.EMP_ID, e.EMPLOYEE_NAME, e.SALARY, e2.EMP_ID, e2.EMPLOYEE_NAME, e2.SALARY
		FROM employees e, employees e2`})
	if !resp.OK {
		t.Fatalf("cross-join execute: %s", resp.Error)
	}
	if resp.RowCount < 10000 {
		t.Fatalf("cross join produced %d rows; too small to stall a writer", resp.RowCount)
	}
	// Ask for the whole cursor in one frame, then never read a byte.
	rs.send(t, &Request{Verb: VerbFetch, Stmt: resp.Stmt, MaxRows: resp.RowCount})
	time.Sleep(100 * time.Millisecond) // let the server hit the full socket

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain with a stalled reader: %v (took %v)", err, time.Since(start))
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain took %v; the write deadline did not bound the stall", d)
	}
	if reg.CounterValue(MetricWriteTimeouts) == 0 {
		t.Fatal("server.write_timeouts did not count the severed writer")
	}
	if reg.GaugeValue(MetricSessionsActive) != 0 {
		t.Fatalf("%d sessions survived the drain", reg.GaugeValue(MetricSessionsActive))
	}
}

// TestHandshakeFailureLeaksNothing: a dial whose handshake times out (the
// listener accepts but never answers hello) must close its socket — no
// file descriptor or goroutine may outlive the error.
func TestHandshakeFailureLeaksNothing(t *testing.T) {
	testkit.LeakCheck(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var mu sync.Mutex
	var held []net.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // accept and hold: the hello response never comes
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c)
			mu.Unlock()
		}
	}()

	before := openFDs(t)
	for i := 0; i < 30; i++ {
		cli, err := DialWith(l.Addr().String(), DialOptions{HandshakeTimeout: 50 * time.Millisecond})
		if err == nil {
			cli.Close()
			t.Fatal("handshake against a mute listener succeeded")
		}
		if ErrorCode(err) != CodeDeadline {
			t.Fatalf("mute handshake error = %v, want DEADLINE", err)
		}
	}
	l.Close()
	wg.Wait()
	mu.Lock()
	for _, c := range held {
		c.Close()
	}
	mu.Unlock()

	after := openFDs(t)
	if after > before+3 {
		t.Fatalf("open fds grew from %d to %d across 30 failed handshakes", before, after)
	}
}

// openFDs counts this process's open file descriptors via /proc (the test
// suite only runs on Linux CI; skip elsewhere).
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc fd table: %v", err)
	}
	return len(ents)
}

// TestRetryOvercomesOverload: a client with a retry policy turns transient
// OVERLOADED sheds into a successful query via jittered backoff.
func TestRetryOvercomesOverload(t *testing.T) {
	testkit.LeakCheck(t)
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{
		Registry: reg, CacheOff: true, Opts: slowOpts(300 * time.Millisecond),
		MaxInflight: 1, MaxQueue: 0,
	})
	defer stop()

	sql := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d"
	holder := make(chan error, 1)
	go func() {
		h, err := Dial(addr, nil)
		if err != nil {
			holder <- err
			return
		}
		defer h.Close()
		_, err = h.Query(sql, Named("d", datum.NewInt(10)))
		holder <- err
	}()
	time.Sleep(100 * time.Millisecond)

	cli, err := DialRetry(addr, nil, RetryPolicy{
		MaxAttempts: 10, BaseBackoff: 40 * time.Millisecond, MaxBackoff: 150 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	rows, err := cli.Query(sql, Named("d", datum.NewInt(20)))
	if err != nil {
		t.Fatalf("retrying query failed despite backoff: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("retried query returned no rows")
	}
	if err := <-holder; err != nil {
		t.Fatalf("slot-holding query failed: %v", err)
	}
	if reg.CounterValue(MetricShed) == 0 {
		t.Fatal("the retry path was never exercised: no request was shed")
	}
	if fmt.Sprint(reg.CounterValue(MetricAdmitted)) == "0" {
		t.Fatal("no request admitted")
	}
}
