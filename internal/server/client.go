package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/datum"
)

// Client is the Go-side of the wire protocol, used by cmd/cbqt's connect
// mode, the benchmarks and the tests. A Client is one session; it is not
// safe for concurrent use (open one client per goroutine, as an
// application would open one connection per worker).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a cbqtd server and performs the hello exchange.
func Dial(addr string, opts *SessionOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if _, err := c.roundTrip(&Request{Verb: VerbHello, Options: opts}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// roundTrip sends one request and reads its response, turning server-side
// errors into Go errors.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	if err := WriteFrame(c.w, req); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.r, &resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return &resp, errors.New(resp.Error)
	}
	return &resp, nil
}

// Stmt is a prepared statement handle.
type Stmt struct {
	c      *Client
	id     int64
	Params []string
	// RowCount and SQL describe the last execute: cursor size and the
	// transformed query text. Cached reports whether the plan came from
	// the shared cache.
	RowCount int
	SQL      string
	Cached   bool
}

// Prepare parses and binds the query on the server, returning a statement
// handle with its discovered parameter names.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	resp, err := c.roundTrip(&Request{Verb: VerbPrepare, SQL: sql})
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: resp.Stmt, Params: resp.Params}, nil
}

// Bind sets parameter values without executing (the wire bind verb).
func (s *Stmt) Bind(binds ...BindValue) error {
	_, err := s.c.roundTrip(&Request{Verb: VerbBind, Stmt: s.id, Binds: binds})
	return err
}

// Execute optimizes (through the shared plan cache) and runs the
// statement, opening a cursor. Binds passed here are applied first, on top
// of any earlier Bind calls.
func (s *Stmt) Execute(binds ...BindValue) error {
	resp, err := s.c.roundTrip(&Request{Verb: VerbExecute, Stmt: s.id, Binds: binds})
	if err != nil {
		return err
	}
	s.RowCount = resp.RowCount
	s.SQL = resp.SQL
	s.Cached = resp.Cached
	return nil
}

// Fetch returns the next batch of at most maxRows rows (server default
// when <= 0) and whether the cursor is exhausted.
func (s *Stmt) Fetch(maxRows int) ([][]datum.Datum, bool, error) {
	resp, err := s.c.roundTrip(&Request{Verb: VerbFetch, Stmt: s.id, MaxRows: maxRows})
	if err != nil {
		return nil, false, err
	}
	rows, err := decodeRows(resp.Rows)
	return rows, resp.Done, err
}

// FetchAll drains the cursor.
func (s *Stmt) FetchAll() ([][]datum.Datum, error) {
	var all [][]datum.Datum
	for {
		batch, done, err := s.Fetch(0)
		if err != nil {
			return all, err
		}
		all = append(all, batch...)
		if done {
			return all, nil
		}
	}
}

// Close drops the statement on the server.
func (s *Stmt) Close() error {
	_, err := s.c.roundTrip(&Request{Verb: VerbCloseStmt, Stmt: s.id})
	return err
}

// Query is the one-shot convenience: prepare + execute + drain + close in
// a single wire exchange plus fetches.
func (c *Client) Query(sql string, binds ...BindValue) ([][]datum.Datum, error) {
	resp, err := c.roundTrip(&Request{Verb: VerbExecute, SQL: sql, Binds: binds})
	if err != nil {
		return nil, err
	}
	s := &Stmt{c: c, id: resp.Stmt, RowCount: resp.RowCount, SQL: resp.SQL, Cached: resp.Cached}
	return s.FetchAll()
}

// Analyze re-collects statistics for table ("" = all tables), bumping the
// catalog version and invalidating stale cached plans server-side.
func (c *Client) Analyze(table string) error {
	_, err := c.roundTrip(&Request{Verb: VerbAnalyze, Table: table})
	return err
}

// Metrics snapshots the server registry and this session's counters.
func (c *Client) Metrics() (map[string]int64, *SessionStats, error) {
	resp, err := c.roundTrip(&Request{Verb: VerbMetrics})
	if err != nil {
		return nil, nil, err
	}
	return resp.Metrics, resp.Session, nil
}

// Close ends the session politely and closes the connection.
func (c *Client) Close() error {
	_, rtErr := c.roundTrip(&Request{Verb: VerbClose})
	closeErr := c.conn.Close()
	if rtErr != nil {
		return rtErr
	}
	return closeErr
}

func decodeRows(rows [][]WireDatum) ([][]datum.Datum, error) {
	out := make([][]datum.Datum, len(rows))
	for i, wr := range rows {
		row := make([]datum.Datum, len(wr))
		for j, wd := range wr {
			d, err := wd.Decode()
			if err != nil {
				return nil, fmt.Errorf("server: row %d col %d: %w", i, j, err)
			}
			row[j] = d
		}
		out[i] = row
	}
	return out, nil
}

// Named builds a named bind value.
func Named(name string, d datum.Datum) BindValue {
	return BindValue{Name: name, Value: EncodeDatum(d)}
}

// Positional builds an unnamed bind value (fills parameters in order).
func Positional(d datum.Datum) BindValue {
	return BindValue{Value: EncodeDatum(d)}
}
