package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"time"

	"repro/internal/datum"
)

// DefaultHandshakeTimeout bounds Dial's TCP connect plus hello exchange
// when DialOptions.HandshakeTimeout is zero, so a blackholed server cannot
// hang a connecting client (and leak its socket) forever.
const DefaultHandshakeTimeout = 10 * time.Second

// RetryPolicy configures the client's automatic retry of retryable
// failures (OVERLOADED sheds and connection resets before a response
// frame): capped attempts with exponential backoff and full jitter
// (sleep drawn uniformly from [0, min(MaxBackoff, BaseBackoff<<attempt))).
// The zero RetryPolicy disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (<= 1: no retries).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 10ms when
	// MaxAttempts > 1 and BaseBackoff is zero).
	BaseBackoff time.Duration
	// MaxBackoff caps one backoff sleep (default 1s).
	MaxBackoff time.Duration
	// Seed drives the jitter's private random source, so tests are
	// reproducible (0 behaves as 1).
	Seed int64
}

// DefaultRetryPolicy suits a client of a loaded server: 4 attempts,
// 10ms–500ms full-jitter backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 500 * time.Millisecond}
}

// backoff returns the jittered sleep before retry attempt (0-based).
func (p RetryPolicy) backoff(attempt int, rng *rand.Rand) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	d := base << uint(attempt)
	if d > maxB || d <= 0 {
		d = maxB
	}
	return time.Duration(rng.Int63n(int64(d) + 1))
}

// DialOptions configure a client beyond the session's optimizer options.
type DialOptions struct {
	// Session carries the per-session optimizer options for the hello
	// exchange (nil = server defaults).
	Session *SessionOptions
	// Retry enables automatic retries (zero = none).
	Retry RetryPolicy
	// HandshakeTimeout bounds connect+hello (0 = DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// CallTimeout is the default per-call deadline applied when a call's
	// context has none (0 = no default deadline).
	CallTimeout time.Duration
}

// Client is the Go-side of the wire protocol, used by cmd/cbqt's connect
// mode, the benchmarks and the tests. A Client is one session; it is not
// safe for concurrent use (open one client per goroutine, as an
// application would open one connection per worker).
//
// Transport failures mark the connection broken and close it immediately —
// no file descriptor outlives the error that killed it. A broken client
// with a retry policy redials transparently on the next one-shot call;
// prepared statements do not survive a redial and must be re-prepared.
type Client struct {
	addr string
	dop  DialOptions
	rng  *rand.Rand

	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	broken bool
}

// Dial connects to a cbqtd server and performs the hello exchange.
func Dial(addr string, opts *SessionOptions) (*Client, error) {
	return DialWith(addr, DialOptions{Session: opts})
}

// DialRetry is Dial with automatic retries for subsequent calls (the dial
// itself is attempted once; retrying a dead address is the caller's call).
func DialRetry(addr string, opts *SessionOptions, policy RetryPolicy) (*Client, error) {
	return DialWith(addr, DialOptions{Session: opts, Retry: policy})
}

// DialWith connects with full client configuration.
func DialWith(addr string, dop DialOptions) (*Client, error) {
	seed := dop.Retry.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{addr: addr, dop: dop, rng: rand.New(rand.NewSource(seed))}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect (re)establishes the TCP connection and the hello exchange under
// the handshake timeout. Every error path closes the socket.
func (c *Client) connect() error {
	hs := c.dop.HandshakeTimeout
	if hs <= 0 {
		hs = DefaultHandshakeTimeout
	}
	conn, err := net.DialTimeout("tcp", c.addr, hs)
	if err != nil {
		return &Error{Code: CodeConnReset, Msg: fmt.Sprintf("dial %s: %v", c.addr, err), Err: err}
	}
	c.conn, c.r, c.w = conn, bufio.NewReader(conn), bufio.NewWriter(conn)
	c.broken = false
	conn.SetDeadline(time.Now().Add(hs))
	_, err = c.roundTrip(&Request{Verb: VerbHello, Options: c.dop.Session})
	conn.SetDeadline(time.Time{})
	if err != nil {
		c.fail() // close the socket: no leaked fd on a failed handshake
		return err
	}
	return nil
}

// fail marks the connection broken and closes it immediately.
func (c *Client) fail() {
	c.broken = true
	if c.conn != nil {
		c.conn.Close()
	}
}

// Broken reports whether the client's connection has failed (a retrying
// one-shot call will redial; everything else errors until Close).
func (c *Client) Broken() bool { return c.broken }

// roundTrip sends one request and reads its response, turning server-side
// errors into typed *Error values. Transport failures are classified:
// failures before any response byte arrived are CONN_RESET (retryable for
// this protocol's read-only statements), mid-frame failures CONN_BROKEN,
// deadline expiries DEADLINE. Any transport failure closes the connection.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	if c.broken {
		return nil, &Error{Code: CodeConnReset, Msg: "connection already broken"}
	}
	if err := WriteFrame(c.w, req); err != nil {
		c.fail()
		return nil, transportError(err, true)
	}
	if err := c.w.Flush(); err != nil {
		c.fail()
		return nil, transportError(err, true)
	}
	var resp Response
	if err := ReadFrame(c.r, &resp); err != nil {
		c.fail()
		// ReadFrame wraps mid-frame failures ("short frame"); a bare
		// error means the 4-byte header never arrived, i.e. the reset
		// happened before the first response byte.
		beforeResponse := !errors.Is(err, io.ErrUnexpectedEOF) && !isWrapped(err)
		return nil, transportError(err, beforeResponse)
	}
	if !resp.OK {
		code := resp.Code
		if code == "" {
			code = CodeError
		}
		return &resp, &Error{Code: code, Msg: resp.Error}
	}
	return &resp, nil
}

// roundTripCtx is roundTrip under a context: a context deadline becomes
// the connection deadline, so a blackholed or stalled server fails the
// call with a typed DEADLINE error instead of hanging it.
func (c *Client) roundTripCtx(ctx context.Context, req *Request) (*Response, error) {
	if c.broken {
		return nil, &Error{Code: CodeConnReset, Msg: "connection already broken"}
	}
	if d, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(d)
		defer c.conn.SetDeadline(time.Time{})
	}
	return c.roundTrip(req)
}

// isWrapped reports whether the frame error came from inside a frame
// (ReadFrame's decorated errors) rather than the bare header read.
func isWrapped(err error) bool {
	s := err.Error()
	return len(s) > 8 && s[:8] == "server: "
}

// transportError wraps a client-side transport failure as a typed *Error.
// Write failures and resets before the response header count as
// before-response (CONN_RESET, retryable); a frame that started but never
// finished is CONN_BROKEN.
func transportError(err error, beforeResponse bool) *Error {
	switch {
	case errors.Is(err, os.ErrDeadlineExceeded):
		return &Error{Code: CodeDeadline, Msg: err.Error(), Err: err}
	case beforeResponse:
		return &Error{Code: CodeConnReset, Msg: err.Error(), Err: err}
	}
	return &Error{Code: CodeConnBroken, Msg: err.Error(), Err: err}
}

// callContext applies the client's default per-call timeout when ctx has
// no deadline of its own.
func (c *Client) callContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); !ok && c.dop.CallTimeout > 0 {
		return context.WithTimeout(ctx, c.dop.CallTimeout)
	}
	return ctx, func() {}
}

// deadlineMS converts a context deadline into the wire's remaining-budget
// field (0 = none; an already-expired deadline becomes 1ms and fails fast
// on the server).
func deadlineMS(ctx context.Context) int64 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// attempts is the retry budget for one logical call.
func (c *Client) attempts() int {
	if c.dop.Retry.MaxAttempts > 1 {
		return c.dop.Retry.MaxAttempts
	}
	return 1
}

// sleepBackoff waits out one jittered backoff, honoring ctx.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	t := time.NewTimer(c.dop.Retry.backoff(attempt, c.rng))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return &Error{Code: CodeDeadline, Msg: "canceled during retry backoff", Err: ctx.Err()}
	}
}

// Stmt is a prepared statement handle.
type Stmt struct {
	c      *Client
	id     int64
	Params []string
	// RowCount and SQL describe the last execute: cursor size and the
	// transformed query text. Cached reports whether the plan came from
	// the shared cache. Affected is the row count when the statement is a
	// mutation (RowCount is then zero — mutations open an empty cursor).
	RowCount int
	SQL      string
	Cached   bool
	Affected int
}

// Prepare parses and binds the query on the server, returning a statement
// handle with its discovered parameter names.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	resp, err := c.roundTrip(&Request{Verb: VerbPrepare, SQL: sql})
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: resp.Stmt, Params: resp.Params}, nil
}

// Bind sets parameter values without executing (the wire bind verb).
func (s *Stmt) Bind(binds ...BindValue) error {
	_, err := s.c.roundTrip(&Request{Verb: VerbBind, Stmt: s.id, Binds: binds})
	return err
}

// Execute optimizes (through the shared plan cache) and runs the
// statement, opening a cursor. Binds passed here are applied first, on top
// of any earlier Bind calls.
func (s *Stmt) Execute(binds ...BindValue) error {
	return s.ExecuteContext(context.Background(), binds...)
}

// ExecuteContext is Execute with a deadline: the context's remaining
// budget rides the wire and bounds the server-side optimize+execute.
// OVERLOADED sheds are retried (the connection is intact and the handle
// still valid); transport failures are not — a redial would orphan the
// statement id.
func (s *Stmt) ExecuteContext(ctx context.Context, binds ...BindValue) error {
	ctx, cancel := s.c.callContext(ctx)
	defer cancel()
	for attempt := 0; ; attempt++ {
		resp, err := s.c.roundTripCtx(ctx, &Request{
			Verb: VerbExecute, Stmt: s.id, Binds: binds, DeadlineMS: deadlineMS(ctx),
		})
		if err == nil {
			s.RowCount = resp.RowCount
			s.SQL = resp.SQL
			s.Cached = resp.Cached
			s.Affected = resp.Affected
			return nil
		}
		if attempt+1 >= s.c.attempts() || ErrorCode(err) != CodeOverloaded {
			return err
		}
		if berr := s.c.sleepBackoff(ctx, attempt); berr != nil {
			return err
		}
	}
}

// Fetch returns the next batch of at most maxRows rows (server default
// when <= 0) and whether the cursor is exhausted.
func (s *Stmt) Fetch(maxRows int) ([][]datum.Datum, bool, error) {
	resp, err := s.c.roundTrip(&Request{Verb: VerbFetch, Stmt: s.id, MaxRows: maxRows})
	if err != nil {
		return nil, false, err
	}
	rows, err := decodeRows(resp.Rows)
	return rows, resp.Done, err
}

// FetchAll drains the cursor.
func (s *Stmt) FetchAll() ([][]datum.Datum, error) {
	var all [][]datum.Datum
	for {
		batch, done, err := s.Fetch(0)
		if err != nil {
			return all, err
		}
		all = append(all, batch...)
		if done {
			return all, nil
		}
	}
}

// Close drops the statement on the server.
func (s *Stmt) Close() error {
	_, err := s.c.roundTrip(&Request{Verb: VerbCloseStmt, Stmt: s.id})
	return err
}

// Query is the one-shot convenience: prepare + execute + drain + close in
// a single wire exchange plus fetches.
func (c *Client) Query(sql string, binds ...BindValue) ([][]datum.Datum, error) {
	return c.QueryContext(context.Background(), sql, binds...)
}

// QueryContext is Query with a deadline and the full retry loop: the
// context's remaining budget rides the wire as the server-side deadline
// and bounds the transport; retryable failures — OVERLOADED sheds and
// connection resets before a response frame — are retried with
// exponential backoff and full jitter, redialing when the connection
// broke. Queries over this protocol are read-only, so a retried request
// at worst re-executes a SELECT.
func (c *Client) QueryContext(ctx context.Context, sql string, binds ...BindValue) ([][]datum.Datum, error) {
	ctx, cancel := c.callContext(ctx)
	defer cancel()
	var lastErr error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			if berr := c.sleepBackoff(ctx, attempt-1); berr != nil {
				return nil, lastErr
			}
		}
		if c.broken {
			if err := c.connect(); err != nil {
				lastErr = err
				if IsRetryable(err) && ctx.Err() == nil {
					continue
				}
				return nil, err
			}
		}
		rows, err := c.queryOnce(ctx, sql, binds)
		if err == nil {
			return rows, nil
		}
		lastErr = err
		if !IsRetryable(err) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// queryOnce runs one one-shot execute+fetch attempt.
func (c *Client) queryOnce(ctx context.Context, sql string, binds []BindValue) ([][]datum.Datum, error) {
	resp, err := c.roundTripCtx(ctx, &Request{
		Verb: VerbExecute, SQL: sql, Binds: binds, DeadlineMS: deadlineMS(ctx),
	})
	if err != nil {
		return nil, err
	}
	s := &Stmt{c: c, id: resp.Stmt, RowCount: resp.RowCount, SQL: resp.SQL, Cached: resp.Cached}
	var all [][]datum.Datum
	for {
		fresp, err := c.roundTripCtx(ctx, &Request{Verb: VerbFetch, Stmt: s.id})
		if err != nil {
			return nil, err
		}
		batch, err := decodeRows(fresp.Rows)
		if err != nil {
			return nil, err
		}
		all = append(all, batch...)
		if fresp.Done {
			return all, nil
		}
	}
}

// Exec runs one mutation statement (INSERT/UPDATE/DELETE) and returns its
// affected-row count.
func (c *Client) Exec(sql string, binds ...BindValue) (int, error) {
	return c.ExecContext(context.Background(), sql, binds...)
}

// ExecContext is Exec with a deadline. Unlike QueryContext, only
// OVERLOADED sheds are retried: a shed request never reached execution,
// but a connection that broke mid-call may have committed the write, and
// blindly re-running it would apply the mutation twice.
func (c *Client) ExecContext(ctx context.Context, sql string, binds ...BindValue) (int, error) {
	ctx, cancel := c.callContext(ctx)
	defer cancel()
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTripCtx(ctx, &Request{
			Verb: VerbExecute, SQL: sql, Binds: binds, DeadlineMS: deadlineMS(ctx),
		})
		if err == nil {
			return resp.Affected, nil
		}
		if attempt+1 >= c.attempts() || ErrorCode(err) != CodeOverloaded || ctx.Err() != nil {
			return 0, err
		}
		if berr := c.sleepBackoff(ctx, attempt); berr != nil {
			return 0, err
		}
	}
}

// Ping sends a heartbeat frame, resetting the server's idle timer for
// this session. Idle clients that want to keep cursors alive across an
// IdleTimeout-configured server ping periodically.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTripCtx(ctx, &Request{Verb: VerbPing})
	return err
}

// Analyze re-collects statistics for table ("" = all tables), bumping the
// catalog version and invalidating stale cached plans server-side.
func (c *Client) Analyze(table string) error {
	_, err := c.roundTrip(&Request{Verb: VerbAnalyze, Table: table})
	return err
}

// Metrics snapshots the server registry and this session's counters.
func (c *Client) Metrics() (map[string]int64, *SessionStats, error) {
	resp, err := c.roundTrip(&Request{Verb: VerbMetrics})
	if err != nil {
		return nil, nil, err
	}
	return resp.Metrics, resp.Session, nil
}

// Close ends the session politely and closes the connection. A broken
// connection is already closed; Close is then a no-op.
func (c *Client) Close() error {
	if c.broken {
		return nil
	}
	_, rtErr := c.roundTrip(&Request{Verb: VerbClose})
	closeErr := c.conn.Close()
	if rtErr != nil {
		return rtErr
	}
	return closeErr
}

func decodeRows(rows [][]WireDatum) ([][]datum.Datum, error) {
	out := make([][]datum.Datum, len(rows))
	for i, wr := range rows {
		row := make([]datum.Datum, len(wr))
		for j, wd := range wr {
			d, err := wd.Decode()
			if err != nil {
				return nil, fmt.Errorf("server: row %d col %d: %w", i, j, err)
			}
			row[j] = d
		}
		out[i] = row
	}
	return out, nil
}

// Named builds a named bind value.
func Named(name string, d datum.Datum) BindValue {
	return BindValue{Name: name, Value: EncodeDatum(d)}
}

// Positional builds an unnamed bind value (fills parameters in order).
func Positional(d datum.Datum) BindValue {
	return BindValue{Value: EncodeDatum(d)}
}
