package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/datum"
	"repro/internal/testkit"
)

// TestServerDML drives INSERT/UPDATE/DELETE over the wire protocol:
// one-shot Exec, prepared mutations with bind parameters, and reads
// observing the committed writes.
func TestServerDML(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	_, addr, stop := startServer(t, Config{DB: db})
	defer stop()

	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	n, err := cli.Exec("INSERT INTO LOCATIONS VALUES (9001, 'utrecht', 'NL'), (9002, 'delft', 'NL')")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("insert affected = %d, want 2", n)
	}
	rows, err := cli.Query("SELECT city FROM locations WHERE loc_id >= 9001")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowStrings(rows); !equalStrs(got, []string{"'delft'", "'utrecht'"}) {
		t.Fatalf("after insert: %v", got)
	}

	// Prepared mutation with named parameters, executed twice.
	st, err := cli.Prepare("UPDATE LOCATIONS SET city = :c WHERE loc_id = :id")
	if err != nil {
		t.Fatal(err)
	}
	for i, city := range []string{"den haag", "leiden"} {
		if err := st.Execute(Named("c", datum.NewString(city)), Named("id", datum.NewInt(int64(9001+i)))); err != nil {
			t.Fatal(err)
		}
		if st.Affected != 1 {
			t.Fatalf("update affected = %d, want 1", st.Affected)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	n, err = cli.Exec("DELETE FROM LOCATIONS WHERE country_id = 'NL' AND loc_id >= 9001")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("delete affected = %d, want 2", n)
	}
	rows, err = cli.Query("SELECT COUNT(*) FROM locations WHERE loc_id >= 9001")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 0 {
		t.Fatalf("rows left after delete: %d", rows[0][0].Int())
	}
}

// TestPlanCacheUnderWriteChurn exercises the lock-free server under
// concurrent write churn: writers commit inserts and partition-local
// updates (bumping the catalog data version) while 16 reader sessions
// execute the same cached parameterized plan. Each reader checks snapshot
// sanity — its per-session counts never go backwards (snapshots are
// monotonic) and every returned row satisfies the predicate — and the
// cached plan keeps being shared even though data turns over constantly,
// because the data version deliberately stays out of the plan-cache key.
func TestPlanCacheUnderWriteChurn(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	srv, addr, stop := startServer(t, Config{DB: db})
	defer stop()

	const (
		writers        = 4
		readers        = 16
		writesPer      = 30
		readsPer       = 20
		partitionBase  = 50_000
		partitionWidth = 1_000
	)
	startVersion := db.Catalog.DataVersion()

	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := Dial(addr, nil)
			if err != nil {
				fail("writer %d dial: %v", w, err)
				return
			}
			defer cli.Close()
			base := partitionBase + w*partitionWidth
			for i := 0; i < writesPer; i++ {
				id := base + i
				if _, err := cli.Exec(fmt.Sprintf(
					"INSERT INTO LOCATIONS VALUES (%d, 'churn', 'W%d')", id, w)); err != nil {
					fail("writer %d insert %d: %v", w, id, err)
					return
				}
				// Each writer updates only its own partition, so writers
				// never contend for the same row and no commit conflicts.
				if i%3 == 2 {
					if _, err := cli.Exec(fmt.Sprintf(
						"UPDATE LOCATIONS SET city = 'churned' WHERE loc_id = %d", id)); err != nil {
						fail("writer %d update %d: %v", w, id, err)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cli, err := Dial(addr, nil)
			if err != nil {
				fail("reader %d dial: %v", r, err)
				return
			}
			defer cli.Close()
			st, err := cli.Prepare(
				"SELECT loc_id, country_id FROM locations WHERE loc_id >= :lo")
			if err != nil {
				fail("reader %d prepare: %v", r, err)
				return
			}
			prev := -1
			for i := 0; i < readsPer; i++ {
				if err := st.Execute(Named("lo", datum.NewInt(partitionBase))); err != nil {
					fail("reader %d execute: %v", r, err)
					return
				}
				rows, err := st.FetchAll()
				if err != nil {
					fail("reader %d fetch: %v", r, err)
					return
				}
				if len(rows) != st.RowCount {
					fail("reader %d: fetched %d rows, cursor said %d", r, len(rows), st.RowCount)
				}
				// No stale-snapshot rows: every row satisfies the predicate,
				// and each session's view moves monotonically forward.
				for _, row := range rows {
					if row[0].Int() < partitionBase {
						fail("reader %d: predicate violated: loc_id %d", r, row[0].Int())
					}
				}
				if len(rows) < prev {
					fail("reader %d: snapshot went backwards: %d then %d rows", r, prev, len(rows))
				}
				prev = len(rows)
			}
		}(r)
	}
	wg.Wait()
	if failures.Load() > 0 {
		return
	}

	// Every writer commit bumped the data version exactly once.
	wantCommits := int64(writers * (writesPer + writesPer/3))
	if got := db.Catalog.DataVersion() - startVersion; got != wantCommits {
		t.Errorf("data version advanced by %d, want %d", got, wantCommits)
	}
	// The read plan was optimized once and then shared: with 16 sessions
	// each executing 20 times, the cache must have served most executes.
	snap := srv.Registry().Snapshot()
	if hits := snap.Counters["plancache.hits"]; hits < int64(readers*readsPer/2) {
		t.Errorf("plan cache hits = %d under churn, want >= %d", hits, readers*readsPer/2)
	}
	// Final state: all inserted rows present with their updates applied.
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	rows, err := cli.Query("SELECT COUNT(*) FROM locations WHERE loc_id >= :lo",
		Named("lo", datum.NewInt(partitionBase)))
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0][0].Int(); got != int64(writers*writesPer) {
		t.Errorf("final row count = %d, want %d", got, writers*writesPer)
	}
	rows, err = cli.Query("SELECT COUNT(*) FROM locations WHERE city = 'churned'")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows[0][0].Int(); got != int64(writers*(writesPer/3)) {
		t.Errorf("updated row count = %d, want %d", got, writers*(writesPer/3))
	}
}

// TestAnalyzeDuringWrites runs ANALYZE concurrently with committing
// writers: with the DDL RWMutex gone, ANALYZE must neither block nor
// fail, and queries keep executing throughout.
func TestAnalyzeDuringWrites(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	_, addr, stop := startServer(t, Config{DB: db})
	defer stop()

	var wg sync.WaitGroup
	stopCh := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli, err := Dial(addr, nil)
		if err != nil {
			t.Errorf("writer dial: %v", err)
			return
		}
		defer cli.Close()
		for i := 0; ; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			if _, err := cli.Exec(fmt.Sprintf(
				"INSERT INTO LOCATIONS VALUES (%d, 'x', 'AN')", 80_000+i)); err != nil {
				t.Errorf("writer insert: %v", err)
				return
			}
		}
	}()

	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 10; i++ {
		if err := cli.Analyze("LOCATIONS"); err != nil {
			t.Fatalf("analyze during writes: %v", err)
		}
		if _, err := cli.Query("SELECT COUNT(*) FROM locations WHERE country_id = 'AN'"); err != nil {
			t.Fatalf("query during analyze+writes: %v", err)
		}
	}
	close(stopCh)
	wg.Wait()
}
