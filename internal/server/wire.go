// Package server implements the concurrent SQL serving layer: a session
// manager over a length-prefixed TCP wire protocol, backed by the CBQT
// optimizer and the shared plan cache (package plancache). Each connection
// is one session with its own search strategy and optimization budget; all
// sessions share the database, the catalog version, and the plan cache, so
// a parameterized query optimized by one session executes from the cache
// in every other — the amortization the paper's shared cursor cache
// provides (§3).
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/datum"
)

// MaxFrameBytes bounds a single wire frame (requests and responses); a
// peer announcing a larger frame is malformed and the connection is
// dropped.
const MaxFrameBytes = 64 << 20

// Wire verbs. One request frame carries one verb; the server answers every
// request with exactly one response frame.
const (
	VerbHello     = "hello"      // open the session, set per-session options
	VerbPrepare   = "prepare"    // parse + bind; returns a statement id and its parameter names
	VerbBind      = "bind"       // set parameter values on a prepared statement
	VerbExecute   = "execute"    // optimize (through the plan cache) and run; opens a cursor
	VerbFetch     = "fetch"      // page rows from the statement's open cursor
	VerbCloseStmt = "close_stmt" // drop a prepared statement and its cursor
	VerbAnalyze   = "analyze"    // re-ANALYZE a table (or all), bumping the stats version
	VerbMetrics   = "metrics"    // snapshot the server registry + session counters
	VerbPing      = "ping"       // heartbeat: resets the idle timer, answered immediately
	VerbClose     = "close"      // end the session
)

// Request is one client→server message.
type Request struct {
	Verb string `json:"verb"`
	// SQL is the query text (prepare) or — for execute — optional one-shot
	// text prepared, executed and closed implicitly when Stmt is zero.
	SQL string `json:"sql,omitempty"`
	// Stmt identifies a prepared statement (bind/execute/fetch/close_stmt).
	Stmt int64 `json:"stmt,omitempty"`
	// Binds carries parameter values for bind or execute. Named values
	// match parameters case-insensitively; unnamed values bind positionally
	// in parameter-discovery order.
	Binds []BindValue `json:"binds,omitempty"`
	// MaxRows bounds one fetch batch (<= 0: server default).
	MaxRows int `json:"max_rows,omitempty"`
	// Table names the ANALYZE target ("" = every table).
	Table string `json:"table,omitempty"`
	// Options sets per-session optimizer options (hello only).
	Options *SessionOptions `json:"options,omitempty"`
	// DeadlineMS is the request's remaining time budget in milliseconds
	// (execute only; 0 = none). The deadline rides into the optimizer's
	// budget tracker (degrading the search) and the executor's context
	// (aborting the run), so a query that can no longer make its deadline
	// stops burning optimizer states and returns a typed DEADLINE error.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SessionOptions selects the optimizer configuration for one session.
type SessionOptions struct {
	// Strategy is the state-space search strategy name: auto, exhaustive,
	// iterative, linear, two-pass ("" = server default).
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS, MaxStates and MaxMemBytes populate the session's
	// cbqt.Budget (zero = unbounded).
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
	MaxStates   int   `json:"max_states,omitempty"`
	MaxMemBytes int64 `json:"max_mem,omitempty"`
	// Check overrides the server's static-checker setting for this session
	// (nil = server default). Checked sessions never share cached plans
	// with unchecked ones: a violation must fail the statement that
	// requested checking, not be masked by a plan cached without it.
	Check *bool `json:"check,omitempty"`
}

// BindValue is one parameter value on the wire.
type BindValue struct {
	Name  string    `json:"name,omitempty"`
	Value WireDatum `json:"value"`
}

// Response is one server→client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code classifies a failed request (see the Code* constants): clients
	// retry OVERLOADED after backoff and treat everything else as final.
	Code string `json:"code,omitempty"`
	// Stmt echoes (or assigns, on prepare) the statement id.
	Stmt int64 `json:"stmt,omitempty"`
	// Params lists the statement's parameter names in ordinal order.
	Params []string `json:"params,omitempty"`
	// SQL is the transformed query text (execute).
	SQL string `json:"sql,omitempty"`
	// Cached reports whether execute reused a shared cached plan instead
	// of running the optimizer.
	Cached bool `json:"cached,omitempty"`
	// RowCount is the total size of the cursor opened by execute.
	RowCount int `json:"row_count,omitempty"`
	// Affected is the row count of a mutation statement (execute of
	// INSERT/UPDATE/DELETE; such statements open an empty cursor).
	Affected int `json:"affected,omitempty"`
	// Rows is one fetch batch; Done marks cursor exhaustion.
	Rows [][]WireDatum `json:"rows,omitempty"`
	Done bool          `json:"done,omitempty"`
	// Metrics is the registry snapshot (metrics verb).
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// Session carries the per-session counters (metrics verb).
	Session *SessionStats `json:"session,omitempty"`
}

// SessionStats are the per-session work counters reported by the metrics
// verb and logged when the session closes.
type SessionStats struct {
	ID        int64 `json:"id"`
	Prepared  int64 `json:"prepared"`
	Executes  int64 `json:"executes"`
	CacheHits int64 `json:"cache_hits"`
	Fetches   int64 `json:"fetches"`
	RowsSent  int64 `json:"rows_sent"`
	// Shed counts this session's requests rejected by admission control;
	// Deadlines counts its requests failed by an expired deadline.
	Shed      int64 `json:"shed,omitempty"`
	Deadlines int64 `json:"deadlines,omitempty"`
}

// WireDatum is the JSON encoding of one SQL value. Kind selects the value
// field, keeping int64 exact (JSON numbers round-trip through float64).
type WireDatum struct {
	Kind string  `json:"k"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
	B    bool    `json:"b,omitempty"`
}

// EncodeDatum converts a datum to its wire form.
func EncodeDatum(d datum.Datum) WireDatum {
	switch d.Kind() {
	case datum.KInt:
		return WireDatum{Kind: "int", I: d.Int()}
	case datum.KFloat:
		return WireDatum{Kind: "float", F: d.Float()}
	case datum.KString:
		return WireDatum{Kind: "string", S: d.Str()}
	case datum.KBool:
		return WireDatum{Kind: "bool", B: d.Bool()}
	default:
		return WireDatum{Kind: "null"}
	}
}

// Decode converts the wire form back to a datum.
func (w WireDatum) Decode() (datum.Datum, error) {
	switch w.Kind {
	case "int":
		return datum.NewInt(w.I), nil
	case "float":
		return datum.NewFloat(w.F), nil
	case "string":
		return datum.NewString(w.S), nil
	case "bool":
		return datum.NewBool(w.B), nil
	case "null", "":
		return datum.Null, nil
	default:
		return datum.Null, fmt.Errorf("server: unknown datum kind %q", w.Kind)
	}
}

// EncodeRow converts one result row to its wire form.
func EncodeRow(row []datum.Datum) []WireDatum {
	out := make([]WireDatum, len(row))
	for i, d := range row {
		out[i] = EncodeDatum(d)
	}
	return out
}

// WriteFrame sends one length-prefixed JSON message: a 4-byte big-endian
// payload length followed by the payload.
func WriteFrame(w io.Writer, msg any) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("server: encode frame: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame receives one length-prefixed JSON message into msg.
func ReadFrame(r io.Reader, msg any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF on clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return fmt.Errorf("server: peer announced %d-byte frame, limit %d", n, MaxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("server: short frame: %w", err)
	}
	if err := json.Unmarshal(payload, msg); err != nil {
		return fmt.Errorf("server: decode frame: %w", err)
	}
	return nil
}
