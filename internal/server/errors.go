package server

import (
	"context"
	"errors"
	"fmt"
)

// Error codes carried in Response.Code. A code classifies a failure well
// enough for a client to decide whether retrying can help: OVERLOADED means
// the server shed the request before doing any work (always safe to retry
// after backing off); CONN_RESET means the transport failed before the
// first byte of a response frame arrived (the request may never have been
// processed — safe to retry read-only statements); everything else is a
// definitive answer and retrying the same request will not change it.
const (
	// CodeOverloaded rejects a request shed by admission control: the
	// inflight slots and the wait queue are full, the queue wait timed
	// out, or estimated optimizer memory pressure crossed the high-water
	// mark. Retryable.
	CodeOverloaded = "OVERLOADED"
	// CodeDraining rejects new statements during graceful shutdown.
	CodeDraining = "DRAINING"
	// CodeDeadline reports that the request's deadline expired (the
	// client-supplied DeadlineMS on the wire, or the client's own
	// per-call context). The deadline budget is spent: not retryable.
	CodeDeadline = "DEADLINE"
	// CodeCanceled reports that the session context was canceled (the
	// peer vanished mid-request, or the server severed the connection).
	CodeCanceled = "CANCELED"
	// CodeConnReset is a client-side classification: the transport failed
	// before any part of a response frame was read, so the request may
	// not have been processed. Retryable for this protocol's read-only
	// statements.
	CodeConnReset = "CONN_RESET"
	// CodeConnBroken is a client-side classification: the transport failed
	// mid-frame (truncation) — the server may have processed the request,
	// and the session's framing is unrecoverable. Not retryable through
	// the same connection.
	CodeConnBroken = "CONN_BROKEN"
	// CodeError is every other statement failure (syntax error, unknown
	// parameter, execution error): a definitive answer, never retried.
	CodeError = "ERROR"
)

// Error is the typed wire error. Server-side failures cross the wire as
// (Response.Code, Response.Error) and are rebuilt as *Error by the client;
// client-side transport failures are wrapped into the same type, so every
// failure a caller sees — shed, deadline, reset, truncation, statement
// error — carries a code and a retryability decision.
type Error struct {
	Code string
	Msg  string
	// Err is the underlying cause for client-side transport errors
	// (nil for errors rebuilt from a response frame).
	Err error
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

func (e *Error) Unwrap() error { return e.Err }

// Retryable reports whether a fresh attempt of the same request can
// succeed: the server shed it before doing work, or the transport failed
// before a response frame started.
func (e *Error) Retryable() bool {
	return e.Code == CodeOverloaded || e.Code == CodeConnReset
}

// IsRetryable reports whether err is a typed wire error worth retrying
// (with backoff) — the client's retry loop and the chaos soak use it.
func IsRetryable(err error) bool {
	var we *Error
	return errors.As(err, &we) && we.Retryable()
}

// ErrorCode extracts the wire code from err ("" for untyped errors).
func ErrorCode(err error) string {
	var we *Error
	if errors.As(err, &we) {
		return we.Code
	}
	return ""
}

// overloaded builds the typed shed error admission control returns.
func overloaded(format string, args ...any) *Error {
	return &Error{Code: CodeOverloaded, Msg: fmt.Sprintf(format, args...)}
}

// codeOf classifies a server-side dispatch error into its wire code.
func codeOf(err error) string {
	var we *Error
	switch {
	case errors.As(err, &we):
		return we.Code
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	return CodeError
}
