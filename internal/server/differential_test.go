package server

import (
	"testing"

	"repro/internal/cbqt"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/obsv"
	"repro/internal/plancache"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/workload"
)

// TestDifferentialCachedPlanVsFresh is the bind-parameter differential
// suite: each parameterized workload query is prepared once on the server
// and executed with N bind sets through the shared cached plan; every
// execution must match, row for row, a fresh in-process parse + optimize +
// execute of the same query with the literals substituted back in.
func TestDifferentialCachedPlanVsFresh(t *testing.T) {
	sizes := testkit.SmallSizes()
	db := testkit.NewDB(sizes, 1)
	refDB := testkit.NewDB(sizes, 1) // identical data, optimized fresh
	reg := obsv.NewRegistry()
	_, addr, stop := startServer(t, Config{DB: db, Registry: reg})
	defer stop()
	cli, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	cfg := workload.DefaultConfig(5, 80, sizes.Employees, sizes.Departments, sizes.Jobs)
	cfg.RelevantFraction = 0.5 // stress the transformed classes
	const nSets = 3

	tested := 0
	for _, wq := range workload.Generate(cfg) {
		pq, ok := workload.Parameterize(wq.SQL, nSets, int64(wq.ID)*31+7)
		if !ok {
			continue
		}
		stmt, err := cli.Prepare(pq.SQL)
		if err != nil {
			t.Fatalf("query %d (%s): prepare: %v\n%s", wq.ID, wq.Class, err, pq.SQL)
		}
		for s := 0; s < nSets; s++ {
			binds := make([]BindValue, len(pq.Names))
			for i, name := range pq.Names {
				binds[i] = Named(name, pq.Sets[s][i])
			}
			if err := stmt.Execute(binds...); err != nil {
				t.Fatalf("query %d set %d: execute: %v\n%s", wq.ID, s, err, pq.SQL)
			}
			if s > 0 && !stmt.Cached {
				t.Fatalf("query %d set %d did not reuse the cached plan", wq.ID, s)
			}
			got, err := stmt.FetchAll()
			if err != nil {
				t.Fatalf("query %d set %d: fetch: %v", wq.ID, s, err)
			}

			want := freshRun(t, refDB, pq.Literal(s))
			if !equalStrs(rowStrings(got), rowStrings(want)) {
				t.Fatalf("query %d (%s) set %d: cached-plan rows differ from fresh run\nparam SQL: %s\nliteral SQL: %s\ncached: %v\nfresh:  %v",
					wq.ID, wq.Class, s, pq.SQL, pq.Literal(s), rowStrings(got), rowStrings(want))
			}
		}
		if err := stmt.Close(); err != nil {
			t.Fatal(err)
		}
		tested++
	}
	if tested < 30 {
		t.Fatalf("only %d queries exercised; generator or parameterizer regressed", tested)
	}
	if reg.CounterValue(plancache.MetricHits) == 0 {
		t.Fatal("differential run never hit the plan cache")
	}
}

// freshRun parses, optimizes and executes literal SQL in-process — the
// reference implementation the served cached plans are compared against.
func freshRun(t *testing.T, db *storage.DB, sql string) [][]datum.Datum {
	t.Helper()
	q, err := qtree.BindSQL(sql, db.Catalog)
	if err != nil {
		t.Fatalf("fresh bind: %v\n%s", err, sql)
	}
	o := &cbqt.Optimizer{Cat: db.Catalog, Opts: cbqt.DefaultOptions()}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("fresh optimize: %v\n%s", err, sql)
	}
	r, err := exec.Run(db, res.Plan)
	if err != nil {
		t.Fatalf("fresh exec: %v\n%s", err, sql)
	}
	out := make([][]datum.Datum, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row
	}
	return out
}
