package server

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
)

// Admission-control metric names published to the registry.
const (
	// MetricInflight gauges optimize+execute spans currently admitted.
	MetricInflight = "server.inflight"
	// MetricQueueDepth gauges requests waiting for an inflight slot.
	MetricQueueDepth = "server.queue.depth"
	// MetricAdmitted counts requests granted an inflight slot.
	MetricAdmitted = "server.admitted"
	// MetricShedQueue counts requests shed because the wait queue was full.
	MetricShedQueue = "server.shed.queue_full"
	// MetricShedWait counts requests shed because their queue wait timed out.
	MetricShedWait = "server.shed.queue_wait"
	// MetricShedMem counts requests shed by the memory high-water mark.
	MetricShedMem = "server.shed.mem_pressure"
	// MetricShed counts every shed request (the sum of the shed.* causes).
	MetricShed = "server.shed"
	// MetricQueueWaitMS is a histogram of admitted requests' queue wait.
	MetricQueueWaitMS = "server.queue.wait_ms"
	// MetricMemEstimated gauges the EWMA per-query optimizer-memory
	// estimate fed by cbqt Stats.MemoStateBytes.
	MetricMemEstimated = "server.mem.estimated_per_query"
	// MetricMemReserved gauges the bytes reserved by admitted requests.
	MetricMemReserved = "server.mem.reserved"
	// MetricDeadlineExceeded counts requests failed by their deadline.
	MetricDeadlineExceeded = "server.deadline_exceeded"
	// MetricIdleReaped counts sessions reaped by the idle timeout.
	MetricIdleReaped = "server.sessions.idle_reaped"
	// MetricWriteTimeouts counts response writes severed by the write
	// deadline (a peer that stopped reading).
	MetricWriteTimeouts = "server.write_timeouts"
	// MetricPings counts heartbeat frames answered.
	MetricPings = "server.pings"
)

// DefaultQueueWait bounds how long an admitted-pending request may sit in
// the wait queue when Config.QueueWait is zero.
const DefaultQueueWait = time.Second

// admission is the server's overload gate: a bounded semaphore of
// concurrent optimize+execute spans, a bounded wait queue in front of it,
// and a memory high-water mark fed by the copy-on-write memo's per-query
// byte accounting (cbqt Stats.MemoStateBytes). A request that cannot be
// admitted is shed immediately with a typed, retryable OVERLOADED error —
// the server degrades by doing less work, never by queueing unboundedly.
//
// The nil *admission admits everything (admission control off).
type admission struct {
	slots     chan struct{} // capacity = max inflight
	maxQueue  int64         // waiters allowed beyond the slots (0 = no queue)
	queueWait time.Duration // max time in the queue
	waiters   atomic.Int64

	memHigh  int64        // high-water mark in bytes (0 = off)
	memUsed  atomic.Int64 // estimate-bytes reserved by admitted requests
	estimate atomic.Int64 // EWMA of observed per-query MemoStateBytes

	inflightN atomic.Int64

	inflight    *obsv.Gauge
	queueDepth  *obsv.Gauge
	admitted    *obsv.Counter
	shed        *obsv.Counter
	shedQueue   *obsv.Counter
	shedWait    *obsv.Counter
	shedMem     *obsv.Counter
	queueWaitMS *obsv.Histogram
	memEst      *obsv.Gauge
	memReserved *obsv.Gauge
}

// newAdmission builds the gate from the server config; it returns nil (no
// admission control) when MaxInflight <= 0.
func newAdmission(cfg Config, reg *obsv.Registry) *admission {
	if cfg.MaxInflight <= 0 {
		return nil
	}
	wait := cfg.QueueWait
	if wait <= 0 {
		wait = DefaultQueueWait
	}
	return &admission{
		slots:     make(chan struct{}, cfg.MaxInflight),
		maxQueue:  int64(cfg.MaxQueue),
		queueWait: wait,
		memHigh:   cfg.MemHighWaterBytes,

		inflight:    reg.Gauge(MetricInflight),
		queueDepth:  reg.Gauge(MetricQueueDepth),
		admitted:    reg.Counter(MetricAdmitted),
		shed:        reg.Counter(MetricShed),
		shedQueue:   reg.Counter(MetricShedQueue),
		shedWait:    reg.Counter(MetricShedWait),
		shedMem:     reg.Counter(MetricShedMem),
		queueWaitMS: reg.Histogram(MetricQueueWaitMS, 1, 5, 10, 50, 100, 500, 1000, 5000),
		memEst:      reg.Gauge(MetricMemEstimated),
		memReserved: reg.Gauge(MetricMemReserved),
	}
}

// acquire admits one optimize+execute span or sheds it. On success the
// returned release func must be called exactly once when the span ends.
// Shedding returns a typed *Error with CodeOverloaded; a request whose
// deadline expires while queued returns the context error instead (the
// client's budget, not the server's load, ended it).
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	est := a.estimate.Load()
	// The mark gates *additional* reservations: a span starting on an
	// otherwise-idle gate is always admitted, so a high estimate can shed
	// concurrency but never wedge the server (the EWMA only moves when
	// optimizations complete, which requires admitting some).
	if a.memHigh > 0 && est > 0 && a.memUsed.Load() > 0 && a.memUsed.Load()+est > a.memHigh {
		a.shedMem.Inc()
		a.shed.Inc()
		return nil, overloaded("optimizer memory pressure: %d reserved + %d estimated > %d high-water",
			a.memUsed.Load(), est, a.memHigh)
	}
	select {
	case a.slots <- struct{}{}:
		a.queueWaitMS.Observe(0)
		return a.admit(est), nil
	default:
	}
	// All slots busy: join the bounded wait queue or shed.
	if w := a.waiters.Add(1); a.maxQueue <= 0 || w > a.maxQueue {
		a.queueDepth.Set(a.waiters.Add(-1))
		a.shedQueue.Inc()
		a.shed.Inc()
		return nil, overloaded("%d inflight, wait queue full (%d)", cap(a.slots), a.maxQueue)
	}
	a.queueDepth.Set(a.waiters.Load())
	start := time.Now()
	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	defer func() { a.queueDepth.Set(a.waiters.Add(-1)) }()
	select {
	case a.slots <- struct{}{}:
		a.queueWaitMS.Observe(float64(time.Since(start).Milliseconds()))
		return a.admit(est), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
		a.shedWait.Inc()
		a.shed.Inc()
		return nil, overloaded("queue wait exceeded %s at %d inflight", a.queueWait, cap(a.slots))
	}
}

// admit finalizes a granted slot, reserving the memory estimate.
func (a *admission) admit(est int64) (release func()) {
	a.admitted.Inc()
	a.inflight.Set(a.inflightN.Add(1))
	a.memReserved.Set(a.memUsed.Add(est))
	return func() {
		a.memReserved.Set(a.memUsed.Add(-est))
		a.inflight.Set(a.inflightN.Add(-1))
		<-a.slots
	}
}

// observe feeds one completed optimization's memo byte count into the
// per-query EWMA (new = 3/4 old + 1/4 sample). The estimate deliberately
// lags: a single cheap query does not mask a run of expensive ones.
func (a *admission) observe(memoStateBytes int64) {
	if a == nil || memoStateBytes < 0 {
		return
	}
	for {
		old := a.estimate.Load()
		next := memoStateBytes
		if old > 0 {
			next = (3*old + memoStateBytes) / 4
		}
		if a.estimate.CompareAndSwap(old, next) {
			a.memEst.Set(next)
			return
		}
	}
}
