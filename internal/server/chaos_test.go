package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaosnet"
	"repro/internal/datum"
	"repro/internal/obsv"
	"repro/internal/testkit"
)

// TestChaosSoak is the acceptance test for the resilience layer as a whole:
// many sessions hammer the server through a chaos proxy that resets,
// truncates, delays and blackholes connections on a deterministic schedule.
// The invariant is strict — every query either returns exactly the rows a
// clean connection returns, or fails with a typed *Error; never a hang,
// never corrupted rows, and afterwards no leaked session, cursor or
// goroutine.
func TestChaosSoak(t *testing.T) {
	testkit.LeakCheck(t)
	reg := obsv.NewRegistry()
	srv, addr, stop := startServer(t, Config{
		Registry:    reg,
		MaxInflight: 4, MaxQueue: 8, QueueWait: 200 * time.Millisecond,
		IdleTimeout: 10 * time.Second, WriteTimeout: 2 * time.Second,
	})
	defer stop()

	// The oracle: expected rows per query, collected over a clean (direct)
	// connection before any chaos starts.
	type tq struct {
		sql   string
		binds []BindValue
	}
	queries := []tq{
		{"SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = :d", []BindValue{Named("d", datum.NewInt(10))}},
		{"SELECT e.EMPLOYEE_NAME, e.SALARY FROM employees e WHERE e.SALARY > :s AND e.DEPT_ID = :d",
			[]BindValue{Named("s", datum.NewFloat(1000)), Named("d", datum.NewInt(20))}},
		{paramQuery, []BindValue{Named("d", datum.NewInt(10)), Named("minsal", datum.NewFloat(0)), Named("b", datum.NewFloat(0))}},
		{"SELECT d.DEPARTMENT_NAME FROM departments d WHERE d.BUDGET > :b", []BindValue{Named("b", datum.NewFloat(0))}},
	}
	clean, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle := make([][]string, len(queries))
	for i, q := range queries {
		rows, err := clean.Query(q.sql, q.binds...)
		if err != nil {
			t.Fatalf("oracle query %d: %v", i, err)
		}
		if len(rows) == 0 {
			t.Fatalf("oracle query %d returned no rows; the soak would be vacuous", i)
		}
		oracle[i] = rowStrings(rows)
	}
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}

	proxy, err := chaosnet.Start(chaosnet.Config{
		Target: addr, Seed: 42, FaultEvery: 3,
		Delay: 30 * time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const workers = 8
	const iters = 25
	var ok, typed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			policy := RetryPolicy{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond,
				MaxBackoff: 50 * time.Millisecond, Seed: int64(w + 1)}
			var cli *Client
			defer func() {
				if cli != nil {
					cli.Close()
				}
			}()
			for i := 0; i < iters; i++ {
				if cli == nil || cli.Broken() {
					if cli != nil {
						cli.Close()
					}
					c, err := DialWith(proxy.Addr(), DialOptions{
						Retry: policy, HandshakeTimeout: 2 * time.Second, CallTimeout: 2 * time.Second,
					})
					if err != nil {
						// A chaos fault ate the handshake; that must still
						// be a typed failure, and the next loop redials.
						var se *Error
						if !errors.As(err, &se) {
							errs <- fmt.Errorf("worker %d: untyped dial error: %v", w, err)
							return
						}
						typed.Add(1)
						continue
					}
					cli = c
				}
				qi := (w + i) % len(queries)
				rows, err := cli.Query(queries[qi].sql, queries[qi].binds...)
				if err != nil {
					var se *Error
					if !errors.As(err, &se) {
						errs <- fmt.Errorf("worker %d iter %d: untyped error: %v", w, i, err)
						return
					}
					typed.Add(1)
					continue
				}
				if !equalStrs(rowStrings(rows), oracle[qi]) {
					errs <- fmt.Errorf("worker %d iter %d: query %d returned wrong rows through chaos (%d vs %d)",
						w, i, qi, len(rows), len(oracle[qi]))
					return
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if ok.Load() == 0 {
		t.Fatal("no query succeeded through the chaos proxy")
	}
	// The schedule is deterministic per accept index, but how many
	// connections the soak opens depends on scheduling. Kick fresh
	// connections until every fault kind has demonstrably fired.
	kinds := func() map[chaosnet.Kind]int {
		m := map[chaosnet.Kind]int{}
		for _, e := range proxy.Events() {
			m[e.Kind]++
		}
		return m
	}
	for extra := 0; len(kinds()) < len(chaosnet.AllKinds()) && extra < 120; extra++ {
		func() {
			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			defer cancel()
			c, err := DialWith(proxy.Addr(), DialOptions{HandshakeTimeout: 300 * time.Millisecond})
			if err != nil {
				return
			}
			defer c.Close()
			c.QueryContext(ctx, queries[0].sql, queries[0].binds...)
		}()
	}
	dist := kinds()
	if len(dist) < len(chaosnet.AllKinds()) {
		t.Fatalf("soak did not exercise every fault kind: %v over %d conns", dist, proxy.Conns())
	}
	t.Logf("soak: %d ok, %d typed failures, %d conns, faults %v",
		ok.Load(), typed.Load(), proxy.Conns(), dist)

	// Teardown half of the invariant: sever the proxy, drain the server,
	// and nothing may linger. LeakCheck (registered first, so it runs after
	// the deferred stop) covers goroutines; the gauges cover sessions.
	if err := proxy.Close(); err != nil {
		t.Fatal(err)
	}
	stopStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("post-soak shutdown: %v (after %v)", err, time.Since(stopStart))
	}
	if n := reg.GaugeValue(MetricSessionsActive); n != 0 {
		t.Fatalf("%d sessions survived the soak teardown", n)
	}
	if n := reg.GaugeValue(MetricInflight); n != 0 {
		t.Fatalf("inflight gauge stuck at %d after the soak", n)
	}
}
