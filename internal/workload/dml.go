package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// DMLOp is one step of a generated write/read interleaving: a mutation
// statement or a verification query over the mutated table.
type DMLOp struct {
	ID      int
	SQL     string
	IsQuery bool
}

// DMLConfig controls the DML mix generator. Weights are relative; a zero
// weight disables that op kind.
type DMLConfig struct {
	Seed  int64
	Steps int
	// InsertWeight/UpdateWeight/DeleteWeight/QueryWeight set the mix
	// (all zero: the 5/3/2/4 default).
	InsertWeight int
	UpdateWeight int
	DeleteWeight int
	QueryWeight  int
	// Groups is the GRP-column cardinality (<= 0: 8).
	Groups int
}

// DMLTableName is the table the generated mix mutates.
const DMLTableName = "DMLT"

// DMLTableSchema returns the schema for the generated mix's target table:
// a unique primary key, a low-cardinality indexed group column, a float
// value and a nullable note.
func DMLTableSchema() *catalog.Table {
	return &catalog.Table{
		Name: DMLTableName,
		Cols: []catalog.Column{
			{Name: "ID", Type: datum.KInt},
			{Name: "GRP", Type: datum.KInt},
			{Name: "VAL", Type: datum.KFloat},
			{Name: "NOTE", Type: datum.KString, Nullable: true},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "DMLT_PK", Cols: []int{0}, Unique: true},
			{Name: "DMLT_GRP", Cols: []int{1}},
		},
	}
}

// GenerateDML produces a deterministic insert/update/delete/query
// interleaving. The generator tracks which primary keys are live so
// updates and deletes target existing rows (with an occasional
// deliberately-missing key to exercise zero-row statements), and every
// few steps emits a verification query; a differential harness replays
// the identical op list against two engines and asserts identical
// results step by step.
func GenerateDML(cfg DMLConfig) []DMLOp {
	rng := rand.New(rand.NewSource(cfg.Seed))
	wi, wu, wd, wq := cfg.InsertWeight, cfg.UpdateWeight, cfg.DeleteWeight, cfg.QueryWeight
	if wi == 0 && wu == 0 && wd == 0 && wq == 0 {
		wi, wu, wd, wq = 5, 3, 2, 4
	}
	groups := cfg.Groups
	if groups <= 0 {
		groups = 8
	}
	total := wi + wu + wd + wq

	var ops []DMLOp
	var live []int
	nextID := 1
	emit := func(isQuery bool, format string, args ...any) {
		ops = append(ops, DMLOp{ID: len(ops), SQL: fmt.Sprintf(format, args...), IsQuery: isQuery})
	}
	pickLive := func() int {
		if len(live) == 0 || rng.Intn(10) == 0 {
			return 1_000_000 + rng.Intn(1000) // deliberately missing key
		}
		return live[rng.Intn(len(live))]
	}
	removeLive := func(id int) {
		for i, v := range live {
			if v == id {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				return
			}
		}
	}

	for len(ops) < cfg.Steps {
		r := rng.Intn(total)
		switch {
		case r < wi || len(live) == 0:
			n := 1 + rng.Intn(3)
			stmt := "INSERT INTO " + DMLTableName + " VALUES "
			for i := 0; i < n; i++ {
				if i > 0 {
					stmt += ", "
				}
				note := fmt.Sprintf("'n%d'", rng.Intn(100))
				if rng.Intn(5) == 0 {
					note = "NULL"
				}
				stmt += fmt.Sprintf("(%d, %d, %d.%02d, %s)",
					nextID, rng.Intn(groups), rng.Intn(1000), rng.Intn(100), note)
				live = append(live, nextID)
				nextID++
			}
			emit(false, "%s", stmt)
		case r < wi+wu:
			if rng.Intn(4) == 0 {
				// Group-wide update: many rows in one statement.
				emit(false, "UPDATE %s SET VAL = VAL + 1 WHERE GRP = %d",
					DMLTableName, rng.Intn(groups))
			} else {
				emit(false, "UPDATE %s SET VAL = VAL * 2, NOTE = 'u%d' WHERE ID = %d",
					DMLTableName, rng.Intn(100), pickLive())
			}
		case r < wi+wu+wd:
			id := pickLive()
			emit(false, "DELETE FROM %s WHERE ID = %d", DMLTableName, id)
			removeLive(id)
		default:
			switch rng.Intn(4) {
			case 0:
				emit(true, "SELECT COUNT(*) FROM %s", DMLTableName)
			case 1:
				emit(true, "SELECT ID, VAL, NOTE FROM %s WHERE GRP = %d",
					DMLTableName, rng.Intn(groups))
			case 2:
				lo := rng.Intn(nextID + 1)
				emit(true, "SELECT ID, GRP FROM %s WHERE ID >= %d AND ID <= %d",
					DMLTableName, lo, lo+rng.Intn(50))
			default:
				emit(true, "SELECT GRP, COUNT(*), SUM(VAL) FROM %s GROUP BY GRP",
					DMLTableName)
			}
		}
	}
	return ops
}
