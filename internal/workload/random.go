package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomQuery generates a pseudo-random query over the testkit schema by
// growing a connected join subgraph and decorating it with filters,
// subqueries, disjunctions, grouping and DISTINCT — all within the engine's
// supported dialect. It drives the equivalence property tests: every
// generated query must produce identical results under every optimizer
// configuration.
func RandomQuery(rng *rand.Rand, cfg Config) string {
	g := &randGen{rng: rng, cfg: cfg}
	return g.query()
}

// joinEdge is one foreign-key-ish equality in the schema's join graph.
type joinEdge struct {
	t1, c1, t2, c2 string
}

var schemaEdges = []joinEdge{
	{"EMPLOYEES", "DEPT_ID", "DEPARTMENTS", "DEPT_ID"},
	{"DEPARTMENTS", "LOC_ID", "LOCATIONS", "LOC_ID"},
	{"EMPLOYEES", "EMP_ID", "JOB_HISTORY", "EMP_ID"},
	{"EMPLOYEES", "JOB_ID", "JOBS", "JOB_ID"},
	{"SALES", "EMP_ID", "EMPLOYEES", "EMP_ID"},
	{"SALES", "DEPT_ID", "DEPARTMENTS", "DEPT_ID"},
	{"JOB_HISTORY", "DEPT_ID", "DEPARTMENTS", "DEPT_ID"},
}

// selectable columns per table (non-null-heavy choices kept broad).
var tableCols = map[string][]string{
	"EMPLOYEES":   {"EMP_ID", "EMPLOYEE_NAME", "DEPT_ID", "SALARY", "JOB_ID"},
	"DEPARTMENTS": {"DEPT_ID", "DEPARTMENT_NAME", "LOC_ID", "BUDGET"},
	"LOCATIONS":   {"LOC_ID", "CITY", "COUNTRY_ID"},
	"JOB_HISTORY": {"EMP_ID", "JOB_ID", "JOB_TITLE", "START_DATE", "DEPT_ID"},
	"JOBS":        {"JOB_ID", "JOB_TITLE", "MIN_SALARY"},
	"SALES":       {"SALE_ID", "EMP_ID", "DEPT_ID", "AMOUNT", "COUNTRY_ID"},
}

// numericCol is a representative numeric column per table, used for
// aggregate and window-function arguments.
var numericCol = map[string]string{
	"EMPLOYEES": "SALARY", "DEPARTMENTS": "BUDGET", "LOCATIONS": "LOC_ID",
	"JOB_HISTORY": "JOB_ID", "JOBS": "MIN_SALARY", "SALES": "AMOUNT",
}

type boundTable struct {
	table string
	alias string
}

type randGen struct {
	rng *rand.Rand
	cfg Config

	tables []boundTable
	where  []string
	nAlias int
}

func (g *randGen) alias(table string) string {
	g.nAlias++
	return fmt.Sprintf("t%d", g.nAlias)
}

func (g *randGen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

// addTable joins a new table into the graph (connected via an edge when
// possible).
func (g *randGen) addTable() {
	if len(g.tables) == 0 {
		names := []string{"EMPLOYEES", "DEPARTMENTS", "JOB_HISTORY", "SALES", "LOCATIONS", "JOBS"}
		t := g.pick(names)
		g.tables = append(g.tables, boundTable{table: t, alias: g.alias(t)})
		return
	}
	// Collect edges touching the current tables.
	type candidate struct {
		edge    joinEdge
		have    boundTable
		haveCol string
		newTab  string
		newCol  string
	}
	var cands []candidate
	for _, e := range schemaEdges {
		for _, bt := range g.tables {
			if bt.table == e.t1 {
				cands = append(cands, candidate{edge: e, have: bt, haveCol: e.c1, newTab: e.t2, newCol: e.c2})
			}
			if bt.table == e.t2 {
				cands = append(cands, candidate{edge: e, have: bt, haveCol: e.c2, newTab: e.t1, newCol: e.c1})
			}
		}
	}
	if len(cands) == 0 {
		return
	}
	c := cands[g.rng.Intn(len(cands))]
	nb := boundTable{table: c.newTab, alias: g.alias(c.newTab)}
	g.tables = append(g.tables, nb)
	g.where = append(g.where, fmt.Sprintf("%s.%s = %s.%s", c.have.alias, c.haveCol, nb.alias, c.newCol))
}

// filterFor returns a random single-table filter.
func (g *randGen) filterFor(bt boundTable) string {
	a := bt.alias
	switch bt.table {
	case "EMPLOYEES":
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%s.SALARY > %d", a, g.rng.Intn(9000)+500)
		case 1:
			return fmt.Sprintf("%s.DEPT_ID = %d", a, g.rng.Intn(max(g.cfg.Departments, 1))+1)
		case 2:
			lo := g.rng.Intn(max(g.cfg.Employees-40, 1)) + 1
			return fmt.Sprintf("%s.EMP_ID BETWEEN %d AND %d", a, lo, lo+g.rng.Intn(60))
		default:
			return fmt.Sprintf("%s.EMPLOYEE_NAME LIKE 'emp_%d%%'", a, g.rng.Intn(10))
		}
	case "DEPARTMENTS":
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%s.BUDGET > %d", a, g.rng.Intn(800000)+100000)
		}
		return fmt.Sprintf("%s.DEPT_ID IN (%d, %d, %d)", a,
			g.rng.Intn(max(g.cfg.Departments, 1))+1,
			g.rng.Intn(max(g.cfg.Departments, 1))+1,
			g.rng.Intn(max(g.cfg.Departments, 1))+1)
	case "LOCATIONS":
		return fmt.Sprintf("%s.COUNTRY_ID = '%s'", a, countryLit(g.rng))
	case "JOB_HISTORY":
		return fmt.Sprintf("%s.START_DATE > '%04d0101'", a, 1995+g.rng.Intn(9))
	case "JOBS":
		return fmt.Sprintf("%s.MIN_SALARY < %d", a, g.rng.Intn(6000)+1500)
	case "SALES":
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%s.AMOUNT > %d", a, g.rng.Intn(900)+50)
		}
		return fmt.Sprintf("%s.COUNTRY_ID = '%s'", a, countryLit(g.rng))
	}
	return fmt.Sprintf("%s.ROWID >= 0", a)
}

// subqueryFor attaches a random subquery predicate correlated (or not) to
// one of the outer tables.
func (g *randGen) subqueryFor() string {
	outer := g.tables[g.rng.Intn(len(g.tables))]
	// Pick an edge from the outer table for correlation.
	var opts []joinEdge
	for _, e := range schemaEdges {
		if e.t1 == outer.table || e.t2 == outer.table {
			opts = append(opts, e)
		}
	}
	if len(opts) == 0 {
		return ""
	}
	e := opts[g.rng.Intn(len(opts))]
	subTab, subCol, outCol := e.t1, e.c1, e.c2
	if e.t1 == outer.table {
		subTab, subCol, outCol = e.t2, e.c2, e.c1
	}
	sa := "s" + fmt.Sprint(g.rng.Intn(1000))
	subFilter := g.filterFor(boundTable{table: subTab, alias: sa})
	switch g.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("EXISTS (SELECT 1 FROM %s %s WHERE %s.%s = %s.%s AND %s)",
			subTab, sa, sa, subCol, outer.alias, outCol, subFilter)
	case 1:
		return fmt.Sprintf("NOT EXISTS (SELECT 1 FROM %s %s WHERE %s.%s = %s.%s AND %s)",
			subTab, sa, sa, subCol, outer.alias, outCol, subFilter)
	case 2:
		return fmt.Sprintf("%s.%s IN (SELECT %s.%s FROM %s %s WHERE %s)",
			outer.alias, outCol, sa, subCol, subTab, sa, subFilter)
	case 3:
		return fmt.Sprintf("%s.%s NOT IN (SELECT %s.%s FROM %s %s WHERE %s)",
			outer.alias, outCol, sa, subCol, subTab, sa, subFilter)
	default:
		// Correlated scalar aggregate over a numeric column.
		num := numericCol[subTab]
		outNum := numericCol[outer.table]
		return fmt.Sprintf("%s.%s > (SELECT AVG(%s.%s) FROM %s %s WHERE %s.%s = %s.%s)",
			outer.alias, outNum, sa, num, subTab, sa, sa, subCol, outer.alias, outCol)
	}
}

// windowItem returns a random analytic select item. Only aggregate window
// functions are generated: their values depend on partition membership and
// RANGE-peer groups, never on physical row order, so every plan shape the
// optimizer picks produces the same values (ROW_NUMBER over a non-unique
// key would not).
func (g *randGen) windowItem(name string) string {
	bt := g.tables[g.rng.Intn(len(g.tables))]
	pcol := g.pick(tableCols[bt.table])
	num := numericCol[bt.table]
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("COUNT(*) OVER (PARTITION BY %s.%s) %s", bt.alias, pcol, name)
	case 1:
		fn := g.pick([]string{"SUM", "AVG", "MIN", "MAX"})
		return fmt.Sprintf("%s(%s.%s) OVER (PARTITION BY %s.%s) %s",
			fn, bt.alias, num, bt.alias, pcol, name)
	default:
		// Running aggregate: the RANGE frame ends at the current row's
		// ORDER BY peers, so ties share one value and the result stays
		// order-independent.
		ot := g.tables[g.rng.Intn(len(g.tables))]
		ocol := g.pick(tableCols[ot.table])
		fn := g.pick([]string{"SUM", "AVG", "COUNT"})
		return fmt.Sprintf("%s(%s.%s) OVER (PARTITION BY %s.%s ORDER BY %s.%s RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) %s",
			fn, bt.alias, num, bt.alias, pcol, ot.alias, ocol, name)
	}
}

// setOpQuery generates a set operation whose branches project one column
// each from the two sides of a join edge, so the branch schemas are
// compatible and the value domains overlap (INTERSECT and MINUS stay
// non-trivial).
func (g *randGen) setOpQuery() string {
	e := schemaEdges[g.rng.Intn(len(schemaEdges))]
	op := g.pick([]string{"UNION", "UNION ALL", "INTERSECT", "MINUS"})
	left := g.setOpBranch(e.t1, e.c1)
	right := g.setOpBranch(e.t2, e.c2)
	return left + " " + op + " " + right
}

// setOpBranch builds one branch: the anchor table (optionally joined to a
// neighbour, optionally filtered) projecting the given column.
func (g *randGen) setOpBranch(table, col string) string {
	g.tables = nil
	g.where = nil
	bt := boundTable{table: table, alias: g.alias(table)}
	g.tables = append(g.tables, bt)
	if g.rng.Intn(2) == 0 {
		g.addTable()
	}
	if g.rng.Intn(2) == 0 {
		target := g.tables[g.rng.Intn(len(g.tables))]
		g.where = append(g.where, g.filterFor(target))
	}
	return fmt.Sprintf("SELECT %s.%s c0%s", bt.alias, col, g.fromWhere())
}

func (g *randGen) query() string {
	g.tables = nil
	g.where = nil
	g.nAlias = 0

	// Set operations replace the whole query shape.
	if g.rng.Intn(6) == 0 {
		return g.setOpQuery()
	}

	nTables := g.rng.Intn(3) + 1
	for i := 0; i < nTables; i++ {
		g.addTable()
	}
	// Filters.
	nFilters := g.rng.Intn(3)
	for i := 0; i < nFilters; i++ {
		bt := g.tables[g.rng.Intn(len(g.tables))]
		g.where = append(g.where, g.filterFor(bt))
	}
	// Subquery predicate.
	if g.rng.Intn(2) == 0 {
		if sq := g.subqueryFor(); sq != "" {
			g.where = append(g.where, sq)
		}
	}
	// Disjunction.
	if g.rng.Intn(5) == 0 {
		bt := g.tables[g.rng.Intn(len(g.tables))]
		g.where = append(g.where, fmt.Sprintf("(%s OR %s)", g.filterFor(bt), g.filterFor(bt)))
	}

	grouped := g.rng.Intn(5) == 0
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if grouped {
		bt := g.tables[0]
		gcol := g.pick(tableCols[bt.table])
		agg := g.pick([]string{"COUNT(*)", "SUM", "AVG", "MIN", "MAX"})
		aggTab := g.tables[g.rng.Intn(len(g.tables))]
		num := numericCol[aggTab.table]
		if agg == "COUNT(*)" {
			fmt.Fprintf(&sb, "%s.%s g0, COUNT(*) c0", bt.alias, gcol)
		} else {
			fmt.Fprintf(&sb, "%s.%s g0, %s(%s.%s) c0", bt.alias, gcol, agg, aggTab.alias, num)
		}
		sb.WriteString(g.fromWhere())
		fmt.Fprintf(&sb, " GROUP BY %s.%s", bt.alias, gcol)
		return sb.String()
	}
	distinct := g.rng.Intn(6) == 0
	if distinct {
		sb.WriteString("DISTINCT ")
	}
	nCols := g.rng.Intn(2) + 1
	for i := 0; i < nCols; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		bt := g.tables[g.rng.Intn(len(g.tables))]
		fmt.Fprintf(&sb, "%s.%s c%d", bt.alias, g.pick(tableCols[bt.table]), i)
	}
	// Analytic select item (skipped under DISTINCT: de-duplicating on a
	// whole-partition aggregate keeps semantics but adds nothing).
	if !distinct && g.rng.Intn(5) == 0 {
		sb.WriteString(", ")
		sb.WriteString(g.windowItem(fmt.Sprintf("c%d", nCols)))
	}
	sb.WriteString(g.fromWhere())
	return sb.String()
}

func (g *randGen) fromWhere() string {
	var sb strings.Builder
	sb.WriteString(" FROM ")
	for i, bt := range g.tables {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", bt.table, bt.alias)
	}
	if len(g.where) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(g.where, " AND "))
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
