// Package workload generates the synthetic query workload used by the
// performance study (Section 4). The paper ran 241,000 Oracle Applications
// queries over a ~14,000-table schema; we substitute a deterministic
// generator over the testkit HR/OE schema that reproduces the workload's
// relevant characteristics: most queries are simple SPJ, and a small
// fraction (about 8% in the paper) contain subqueries, GROUP BY or DISTINCT
// views, or UNION ALL branches and are therefore subject to cost-based
// transformation. Within the relevant fraction the generator deliberately
// mixes cases where the pre-CBQT heuristic decision is right (for example,
// selective outer filters plus an indexed correlation column, where tuple
// iteration semantics win) and cases where it is wrong (broad outer
// filters, where unnesting wins), which is what gives the cost-based
// framework its measured advantage.
package workload

import (
	"fmt"
	"math/rand"
)

// Class labels what a generated query exercises.
type Class string

// Query classes.
const (
	ClassSPJ         Class = "spj"
	ClassAggSubquery Class = "agg-subquery"  // correlated AVG/SUM scalar subquery
	ClassExists      Class = "exists"        // multi-table EXISTS
	ClassNotExists   Class = "not-exists"    // multi-table NOT EXISTS
	ClassNotIn       Class = "not-in"        // NOT IN
	ClassDistinctVw  Class = "distinct-view" // DISTINCT view join (JPPD family)
	ClassGroupByVw   Class = "group-by-view" // GROUP BY view join (merge family)
	ClassGBP         Class = "gbp"           // aggregation over join (placement)
	ClassUnionAll    Class = "union-all"     // factorization candidate
	ClassOrPred      Class = "or-pred"       // disjunction (OR expansion)
	ClassPullup      Class = "pullup"        // rownum + expensive predicate view
	ClassWindow      Class = "window"        // analytic view, PBY pushdown (Q7/Q8)
)

// RelevantClasses are the classes subject to cost-based transformation.
var RelevantClasses = []Class{
	ClassAggSubquery, ClassExists, ClassNotExists, ClassNotIn,
	ClassDistinctVw, ClassGroupByVw, ClassGBP, ClassUnionAll,
	ClassOrPred, ClassPullup, ClassWindow,
}

// Query is one generated workload query.
type Query struct {
	ID    int
	Class Class
	SQL   string
}

// Relevant reports whether the query is subject to cost-based
// transformations.
func (q Query) Relevant() bool { return q.Class != ClassSPJ }

// Config controls generation.
type Config struct {
	Seed int64
	// NumQueries is the total number of queries.
	NumQueries int
	// RelevantFraction is the share of queries with CBQT-relevant
	// constructs (the paper's workload: about 8%).
	RelevantFraction float64
	// Classes restricts the relevant classes generated (nil = all).
	Classes []Class
	// EmployeeCount etc. mirror the data sizes so predicates hit sensible
	// ranges.
	Employees   int
	Departments int
	Jobs        int
}

// DefaultConfig mirrors the paper's workload mix for a given data size.
func DefaultConfig(seed int64, n int, employees, departments, jobs int) Config {
	return Config{
		Seed:             seed,
		NumQueries:       n,
		RelevantFraction: 0.08,
		Employees:        employees,
		Departments:      departments,
		Jobs:             jobs,
	}
}

// Generate produces the workload queries.
func Generate(cfg Config) []Query {
	rng := rand.New(rand.NewSource(cfg.Seed))
	classes := cfg.Classes
	if classes == nil {
		classes = RelevantClasses
	}
	var out []Query
	for i := 0; i < cfg.NumQueries; i++ {
		q := Query{ID: i}
		if rng.Float64() < cfg.RelevantFraction {
			q.Class = classes[rng.Intn(len(classes))]
		} else {
			q.Class = ClassSPJ
		}
		q.SQL = genQuery(rng, cfg, q.Class)
		out = append(out, q)
	}
	return out
}

// GenerateClass produces n queries all of one class.
func GenerateClass(seed int64, n int, cfg Config, class Class) []Query {
	rng := rand.New(rand.NewSource(seed))
	var out []Query
	for i := 0; i < n; i++ {
		out = append(out, Query{ID: i, Class: class, SQL: genQuery(rng, cfg, class)})
	}
	return out
}

func genQuery(rng *rand.Rand, cfg Config, class Class) string {
	switch class {
	case ClassSPJ:
		return genSPJ(rng, cfg)
	case ClassAggSubquery:
		return genAggSubquery(rng, cfg)
	case ClassExists:
		return genExists(rng, cfg)
	case ClassNotExists:
		return genNotExists(rng, cfg)
	case ClassNotIn:
		return genNotIn(rng, cfg)
	case ClassDistinctVw:
		return genDistinctView(rng, cfg)
	case ClassGroupByVw:
		return genGroupByView(rng, cfg)
	case ClassGBP:
		return genGBP(rng, cfg)
	case ClassUnionAll:
		return genUnionAll(rng, cfg)
	case ClassOrPred:
		return genOrPred(rng, cfg)
	case ClassPullup:
		return genPullup(rng, cfg)
	case ClassWindow:
		return genWindow(rng, cfg)
	}
	return genSPJ(rng, cfg)
}

// date returns a date literal in the populated range.
func date(rng *rand.Rand, yearLo, yearHi int) string {
	y := yearLo + rng.Intn(yearHi-yearLo+1)
	m := rng.Intn(12) + 1
	return fmt.Sprintf("'%04d%02d01'", y, m)
}

// genSPJ builds simple select-project-join queries over the join graph.
func genSPJ(rng *rand.Rand, cfg Config) string {
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf(
			`SELECT e.employee_name, e.salary FROM employees e WHERE e.emp_id = %d`,
			rng.Intn(cfg.Employees)+1)
	case 1:
		return fmt.Sprintf(
			`SELECT e.employee_name, d.department_name FROM employees e, departments d
			 WHERE e.dept_id = d.dept_id AND e.salary > %d`,
			rng.Intn(9000)+1000)
	case 2:
		return fmt.Sprintf(
			`SELECT e.employee_name, d.department_name, l.city
			 FROM employees e, departments d, locations l
			 WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id AND l.country_id = '%s'`,
			countryLit(rng))
	case 3:
		return fmt.Sprintf(
			`SELECT e.employee_name, j.job_title FROM employees e, job_history j
			 WHERE e.emp_id = j.emp_id AND j.start_date > %s`,
			date(rng, 1996, 2003))
	default:
		return fmt.Sprintf(
			`SELECT e.employee_name, jb.job_title, d.department_name
			 FROM employees e, jobs jb, departments d
			 WHERE e.job_id = jb.job_id AND e.dept_id = d.dept_id AND e.dept_id = %d`,
			rng.Intn(cfg.Departments)+1)
	}
}

func countryLit(rng *rand.Rand) string {
	countries := []string{"US", "UK", "DE", "FR", "JP", "IN", "BR", "CA"}
	return countries[rng.Intn(len(countries))]
}

// genAggSubquery is the Q1 family. Half the instances have a highly
// selective outer filter (TIS with the EMP_DEPT index wins: the pre-CBQT
// heuristic is right); half have a broad filter (unnesting wins: the
// heuristic is wrong).
func genAggSubquery(rng *rand.Rand, cfg Config) string {
	switch rng.Intn(3) {
	case 0:
		// Selective outer: few driving rows, indexed correlation. TIS wins
		// and the pre-CBQT heuristic correctly keeps it.
		lo := rng.Intn(cfg.Employees-60) + 1
		return fmt.Sprintf(`
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j
WHERE e1.emp_id = j.emp_id AND e1.emp_id BETWEEN %d AND %d AND
  e1.salary > (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e1.dept_id)`,
			lo, lo+50)
	case 1:
		// Broad filter with an indexed, high-cardinality correlation
		// (sales.emp_id): the pre-CBQT heuristic keeps TIS because filter
		// predicates exist and the correlation column is indexed, but one
		// probe per employee is slower than unnesting into an aggregated
		// join — the heuristic-is-wrong case Figure 2 measures.
		return fmt.Sprintf(`
SELECT e.employee_name FROM employees e
WHERE e.salary > %d AND
  e.salary * %d < (SELECT SUM(s.amount) FROM sales s WHERE s.emp_id = e.emp_id)`,
			rng.Intn(2000)+1000, rng.Intn(3)+1)
	}
	// Broad outer filter plus correlation on an unindexed column
	// (job_history.dept_id): tuple iteration semantics must rescan the
	// whole inner join per distinct binding, so unnesting wins big — but
	// the pre-CBQT heuristic keeps TIS because the outer query has filter
	// predicates and employees.dept_id (the other correlation candidate)
	// is indexed.
	return fmt.Sprintf(`
SELECT e1.employee_name
FROM employees e1
WHERE e1.salary > %d AND
  e1.salary > (SELECT AVG(jb2.min_salary) + %d FROM job_history j2, jobs jb2
               WHERE j2.job_id = jb2.job_id AND j2.dept_id = e1.dept_id) AND
  e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l
                 WHERE d.loc_id = l.loc_id AND l.country_id = '%s')`,
		rng.Intn(3000)+1000, rng.Intn(500), countryLit(rng))
}

func genExists(rng *rand.Rand, cfg Config) string {
	return fmt.Sprintf(`
SELECT d.department_name FROM departments d
WHERE d.budget > %d AND EXISTS
(SELECT 1 FROM employees e, jobs jb
 WHERE e.job_id = jb.job_id AND e.dept_id = d.dept_id AND e.salary > %d)`,
		rng.Intn(500000)+100000, rng.Intn(8000)+1000)
}

func genNotExists(rng *rand.Rand, cfg Config) string {
	// Correlation on job_history.dept_id, which has no index: TIS rescans
	// per department while the antijoin plan hashes once.
	return fmt.Sprintf(`
SELECT d.department_name FROM departments d
WHERE NOT EXISTS
(SELECT 1 FROM job_history j, jobs jb
 WHERE j.job_id = jb.job_id AND j.dept_id = d.dept_id AND j.start_date > %s)`,
		date(rng, 1999, 2004))
}

func genNotIn(rng *rand.Rand, cfg Config) string {
	return fmt.Sprintf(`
SELECT e.employee_name FROM employees e
WHERE e.salary > %d AND e.emp_id NOT IN
(SELECT j.emp_id FROM job_history j, jobs jb
 WHERE j.job_id = jb.job_id AND j.start_date > %s)`,
		rng.Intn(8000)+1000, date(rng, 1997, 2002))
}

// genDistinctView is the Q12 family: a DISTINCT view joined to the outer
// query. Selective outer filters favour JPPD; broad ones favour merging.
func genDistinctView(rng *rand.Rand, cfg Config) string {
	var filter string
	if rng.Intn(2) == 0 {
		lo := rng.Intn(cfg.Employees-40) + 1
		filter = fmt.Sprintf("e1.emp_id BETWEEN %d AND %d", lo, lo+30)
	} else {
		filter = fmt.Sprintf("e1.salary > %d", rng.Intn(4000)+1000)
	}
	if rng.Intn(2) == 0 {
		// Union-all view over the fact table: merging is illegal, so JPPD
		// is the only option, and a selective outer makes it pay.
		lo := rng.Intn(cfg.Employees-40) + 1
		return fmt.Sprintf(`
SELECT e1.employee_name, v.amount
FROM employees e1,
     (SELECT s.dept_id dd, s.amount amount FROM sales s WHERE s.amount > %d
      UNION ALL
      SELECT s2.dept_id dd, s2.amount * 2 amount FROM sales s2 WHERE s2.country_id = '%s') v
WHERE e1.dept_id = v.dd AND e1.emp_id BETWEEN %d AND %d`,
			rng.Intn(500)+400, countryLit(rng), lo, lo+30)
	}
	return fmt.Sprintf(`
SELECT e1.employee_name, j.job_title
FROM employees e1, job_history j,
     (SELECT DISTINCT s.dept_id FROM sales s, departments d
      WHERE s.dept_id = d.dept_id AND s.amount > %d) v
WHERE e1.dept_id = v.dept_id AND e1.emp_id = j.emp_id AND %s`,
		rng.Intn(600)+100, filter)
}

func genGroupByView(rng *rand.Rand, cfg Config) string {
	var filter string
	if rng.Intn(2) == 0 {
		lo := rng.Intn(cfg.Employees-40) + 1
		filter = fmt.Sprintf("e.emp_id BETWEEN %d AND %d", lo, lo+30)
	} else {
		filter = fmt.Sprintf("e.salary > %d", rng.Intn(4000)+1000)
	}
	return fmt.Sprintf(`
SELECT e.employee_name, v.total
FROM employees e,
     (SELECT s.dept_id dd, SUM(s.amount) total, COUNT(*) cnt
      FROM sales s GROUP BY s.dept_id) v
WHERE e.dept_id = v.dd AND e.salary < v.total AND %s`, filter)
}

func genGBP(rng *rand.Rand, cfg Config) string {
	if rng.Intn(2) == 0 {
		// Selective dimension filter: lazy aggregation wins (the join
		// filters the fact rows first), so the cost-based decision must
		// keep the original form.
		return fmt.Sprintf(`
SELECT d.department_name, SUM(s.amount), COUNT(*)
FROM departments d, locations l, sales s
WHERE d.loc_id = l.loc_id AND d.dept_id = s.dept_id AND l.country_id = '%s'
GROUP BY d.department_name`, countryLit(rng))
	}
	// Unfiltered grouped join: eager aggregation (group-by placement)
	// collapses the fact table before the join and wins.
	return fmt.Sprintf(`
SELECT d.department_name, SUM(s.amount), AVG(s.amount), COUNT(*)
FROM departments d, locations l, sales s
WHERE d.loc_id = l.loc_id AND d.dept_id = s.dept_id AND d.budget > %d
GROUP BY d.department_name`, rng.Intn(150000))
}

func genUnionAll(rng *rand.Rand, cfg Config) string {
	sal := rng.Intn(8000) + 1000
	return fmt.Sprintf(`
SELECT d.department_name, e.employee_name
FROM employees e, departments d
WHERE e.dept_id = d.dept_id AND e.salary > %d
UNION ALL
SELECT d.department_name, j.job_title
FROM job_history j, departments d
WHERE j.dept_id = d.dept_id AND j.start_date > %s`,
		sal, date(rng, 1998, 2003))
}

func genOrPred(rng *rand.Rand, cfg Config) string {
	return fmt.Sprintf(`
SELECT e.employee_name, e.salary FROM employees e
WHERE e.emp_id = %d OR e.dept_id = %d`,
		rng.Intn(cfg.Employees)+1, rng.Intn(cfg.Departments)+1)
}

func genPullup(rng *rand.Rand, cfg Config) string {
	return fmt.Sprintf(`
SELECT v.acct_id, v.balance FROM
(SELECT a.acct_id acct_id, a.balance balance, a.create_date
 FROM accounts a
 WHERE SLOW_MATCH(a.notes, 'keyword%d') AND a.balance > %d
 ORDER BY a.create_date) v
WHERE rownum <= %d`,
		rng.Intn(13), rng.Intn(200), rng.Intn(15)+5)
}

// genWindow is the paper's Q7 family: a view computing a running aggregate
// over accounts, with an outer filter on the PARTITION BY column that
// predicate move-around pushes into the view (Q8).
func genWindow(rng *rand.Rand, cfg Config) string {
	acct := "ORCL"
	if rng.Intn(2) == 0 {
		acct = fmt.Sprintf("ACCT%03d", rng.Intn(37))
	}
	return fmt.Sprintf(`
SELECT v.acct_id, v.time, v.ravg FROM
(SELECT a.acct_id acct_id, a.time time,
        AVG(a.balance) OVER (PARTITION BY a.acct_id ORDER BY a.time
          RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) ravg
 FROM accounts a) v
WHERE v.acct_id = '%s' AND v.time <= %d`, acct, rng.Intn(20)+4)
}
