package workload

import (
	"strings"
	"testing"

	"repro/internal/qtree"
	"repro/internal/testkit"
)

func TestParameterizeBasics(t *testing.T) {
	src := "SELECT e.EMP_ID FROM employees e WHERE e.DEPT_ID = 40 AND e.SALARY > 2500.5"
	pq, ok := Parameterize(src, 3, 7)
	if !ok {
		t.Fatal("no literals found")
	}
	if len(pq.Names) != 2 || pq.Names[0] != "P1" || pq.Names[1] != "P2" {
		t.Fatalf("names = %v", pq.Names)
	}
	if !strings.Contains(pq.SQL, ":P1") || !strings.Contains(pq.SQL, ":P2") || strings.Contains(pq.SQL, "40") {
		t.Fatalf("rewrite left literals behind: %s", pq.SQL)
	}
	if got := pq.Literal(0); got != src {
		t.Fatalf("set 0 must reproduce the original text:\n%s\nvs\n%s", got, src)
	}
	if pq.Literal(1) == src && pq.Literal(2) == src {
		t.Fatal("jittered sets never changed a value")
	}
	// Int literals stay ints in every set.
	for s := range pq.Sets {
		if pq.Sets[s][0].Kind().String() != "INT" {
			t.Fatalf("set %d: DEPT_ID value became %s", s, pq.Sets[s][0].Kind())
		}
	}
}

func TestParameterizeSkipsRownum(t *testing.T) {
	src := "SELECT e.EMP_ID FROM employees e WHERE e.SALARY > 1000 AND rownum <= 10"
	pq, ok := Parameterize(src, 1, 1)
	if !ok {
		t.Fatal("salary literal should be parameterized")
	}
	if !strings.Contains(pq.SQL, "rownum <= 10") {
		t.Fatalf("ROWNUM bound was parameterized: %s", pq.SQL)
	}
	if len(pq.Names) != 1 {
		t.Fatalf("names = %v, want just the salary literal", pq.Names)
	}
}

// TestParameterizedWorkloadBinds proves every parameterized workload query
// still parses and binds, with the parameter count matching the names.
func TestParameterizedWorkloadBinds(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	cfg := DefaultConfig(3, 60, testkit.SmallSizes().Employees, testkit.SmallSizes().Departments, testkit.SmallSizes().Jobs)
	cfg.RelevantFraction = 0.5
	params := 0
	for _, wq := range Generate(cfg) {
		pq, ok := Parameterize(wq.SQL, 2, 11)
		if !ok {
			continue
		}
		params++
		q, err := qtree.BindSQL(pq.SQL, db.Catalog)
		if err != nil {
			t.Fatalf("query %d (%s) no longer binds:\n%s\n%v", wq.ID, wq.Class, pq.SQL, err)
		}
		if len(q.Params) != len(pq.Names) {
			t.Fatalf("query %d: binder found %v, rewriter produced %v", wq.ID, q.Params, pq.Names)
		}
	}
	if params < 30 {
		t.Fatalf("only %d/60 workload queries were parameterizable", params)
	}
}
