package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/datum"
	"repro/internal/sql"
)

// ParamQuery is a parameterized variant of a workload query: the numeric
// literals become named bind parameters, so the same plan can execute many
// bind sets — the workload the shared plan cache amortizes.
type ParamQuery struct {
	// SQL is the text with literals replaced by :P1, :P2, ...
	SQL string
	// Names lists the parameter names in order of appearance.
	Names []string
	// Sets are the generated bind sets (Sets[0] reproduces the original
	// literals exactly); each set has one value per name.
	Sets [][]datum.Datum
}

// Literal renders bind set i substituted back into the query text, for
// differential runs that re-parse and re-optimize from scratch.
func (p ParamQuery) Literal(i int) string {
	out := p.SQL
	// Replace highest ordinals first so ":P1" does not clobber ":P12".
	for ord := len(p.Names) - 1; ord >= 0; ord-- {
		out = strings.ReplaceAll(out, ":"+p.Names[ord], literalText(p.Sets[i][ord]))
	}
	return out
}

func literalText(d datum.Datum) string {
	switch d.Kind() {
	case datum.KFloat:
		return strconv.FormatFloat(d.Float(), 'f', -1, 64)
	default:
		return d.String()
	}
}

// Parameterize rewrites the query's numeric literals into named bind
// parameters and generates nSets bind sets. Set 0 carries the original
// values; later sets jitter each value deterministically from seed, so
// different sets select different rows through the same cached plan.
//
// ROWNUM bounds stay literal: the parser folds "rownum <= N" into the
// plan's row limit and cannot late-bind it. Queries with no numeric
// literal outside a ROWNUM bound return ok=false.
func Parameterize(src string, nSets int, seed int64) (ParamQuery, bool) {
	toks, err := sql.LexAll(src)
	if err != nil {
		return ParamQuery{}, false
	}
	// Collect the numeric literals eligible for parameterization.
	type lit struct {
		pos  int // byte offset in src
		text string
	}
	var lits []lit
	for i, t := range toks {
		if t.Kind != sql.TokNumber {
			continue
		}
		if nearRownum(toks, i) {
			continue
		}
		lits = append(lits, lit{pos: t.Pos, text: t.Text})
	}
	if len(lits) == 0 {
		return ParamQuery{}, false
	}

	pq := ParamQuery{SQL: src}
	// Rewrite right-to-left so earlier byte offsets stay valid.
	for i := len(lits) - 1; i >= 0; i-- {
		name := fmt.Sprintf("P%d", i+1)
		l := lits[i]
		pq.SQL = pq.SQL[:l.pos] + ":" + name + pq.SQL[l.pos+len(l.text):]
	}
	for i := range lits {
		pq.Names = append(pq.Names, fmt.Sprintf("P%d", i+1))
	}

	if nSets < 1 {
		nSets = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < nSets; s++ {
		set := make([]datum.Datum, len(lits))
		for i, l := range lits {
			set[i] = literalDatum(l.text, s, rng)
		}
		pq.Sets = append(pq.Sets, set)
	}
	return pq, true
}

// literalDatum parses one numeric literal and, for sets past the first,
// jitters it while keeping its type (ints stay ints).
func literalDatum(text string, set int, rng *rand.Rand) datum.Datum {
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		if set == 0 {
			return datum.NewInt(i)
		}
		// Jitter around the original magnitude so predicates stay sane
		// (a DEPT_ID filter keeps selecting plausible departments).
		span := i/2 + 1
		return datum.NewInt(i - span + rng.Int63n(2*span+1))
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		// The lexer only emits well-formed numbers; keep a safe fallback.
		return datum.NewFloat(0)
	}
	if set == 0 {
		return datum.NewFloat(f)
	}
	return datum.NewFloat(f * (0.5 + rng.Float64()))
}

// nearRownum reports whether token i is a numeric literal compared against
// ROWNUM (e.g. "rownum <= 10"): those fold into the plan's row limit at
// parse time and must stay literal.
func nearRownum(toks []sql.Token, i int) bool {
	isRownum := func(t sql.Token) bool {
		return (t.Kind == sql.TokIdent || t.Kind == sql.TokKeyword) && strings.EqualFold(t.Text, "ROWNUM")
	}
	isCmp := func(t sql.Token) bool {
		switch t.Text {
		case "<", "<=", ">", ">=", "=":
			return t.Kind == sql.TokSymbol
		}
		return false
	}
	if i >= 2 && isCmp(toks[i-1]) && isRownum(toks[i-2]) {
		return true
	}
	if i+2 < len(toks) && isCmp(toks[i+1]) && isRownum(toks[i+2]) {
		return true
	}
	return false
}
