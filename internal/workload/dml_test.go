package workload

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/sql"
	"repro/internal/storage"
)

// replayStep executes one generated op and renders its result: sorted row
// strings for a query, the affected-count/commit-timestamp pair for a
// mutation. Two engines replaying the same interleaving must render every
// step identically.
func replayStep(t *testing.T, db *storage.DB, op DMLOp) string {
	t.Helper()
	if op.IsQuery {
		q, err := qtree.BindSQL(op.SQL, db.Catalog)
		if err != nil {
			t.Fatalf("op %d bind %q: %v", op.ID, op.SQL, err)
		}
		plan, err := optimizer.New(db.Catalog).Optimize(q)
		if err != nil {
			t.Fatalf("op %d optimize %q: %v", op.ID, op.SQL, err)
		}
		res, err := exec.Run(db, plan)
		if err != nil {
			t.Fatalf("op %d run %q: %v", op.ID, op.SQL, err)
		}
		rows := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			parts := make([]string, len(r))
			for j, d := range r {
				parts[j] = d.String()
			}
			rows[i] = strings.Join(parts, "|")
		}
		sort.Strings(rows)
		return strings.Join(rows, "\n")
	}
	stmt, err := sql.ParseStatement(op.SQL)
	if err != nil {
		t.Fatalf("op %d parse %q: %v", op.ID, op.SQL, err)
	}
	bound, err := qtree.BindStatement(stmt, db.Catalog)
	if err != nil {
		t.Fatalf("op %d bind %q: %v", op.ID, op.SQL, err)
	}
	dml := bound.(*qtree.DMLStmt)
	var plan *optimizer.Plan
	if dml.Read != nil {
		plan, err = optimizer.New(db.Catalog).Optimize(dml.Read)
		if err != nil {
			t.Fatalf("op %d optimize %q: %v", op.ID, op.SQL, err)
		}
	}
	res, err := exec.RunDML(context.Background(), db, dml, plan, nil, exec.Options{})
	if err != nil {
		t.Fatalf("op %d dml %q: %v", op.ID, op.SQL, err)
	}
	return fmt.Sprintf("affected=%d ts=%d", res.Affected, res.CommitTS)
}

// newDMLDB builds a DB over the given engine with the mix's target table.
func newDMLDB(t *testing.T, db *storage.DB) *storage.DB {
	t.Helper()
	if _, err := db.CreateTable(DMLTableSchema()); err != nil {
		t.Fatal(err)
	}
	db.Finalize()
	return db
}

// dumpDML renders every visible row of the mix table, sorted.
func dumpDML(t *testing.T, db *storage.DB) string {
	t.Helper()
	return replayStep(t, db, DMLOp{SQL: "SELECT ID, GRP, VAL, NOTE FROM " + DMLTableName, IsQuery: true})
}

// TestEngineDifferential is the engine oracle: the same seeded DML+query
// interleaving replays against the in-memory engine and the disk-backed
// WAL engine, and every step — affected counts, commit timestamps, query
// results — must render identically. The disk engine then reopens from
// its log and must still hold the identical final state.
func TestEngineDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ops := GenerateDML(DMLConfig{Seed: seed, Steps: 400})
			nq, nm := 0, 0
			for _, op := range ops {
				if op.IsQuery {
					nq++
				} else {
					nm++
				}
			}
			if nq == 0 || nm == 0 {
				t.Fatalf("degenerate mix: %d queries, %d mutations", nq, nm)
			}

			mem := newDMLDB(t, storage.NewDB(catalog.New()))
			dir := t.TempDir()
			dcat := catalog.New()
			deng, err := storage.OpenDiskEngine(dir, dcat)
			if err != nil {
				t.Fatal(err)
			}
			disk := newDMLDB(t, storage.NewDBWithEngine(dcat, deng))

			for _, op := range ops {
				got := replayStep(t, disk, op)
				want := replayStep(t, mem, op)
				if got != want {
					t.Fatalf("op %d %q diverged:\nmem:  %s\ndisk: %s", op.ID, op.SQL, want, got)
				}
			}

			finalMem := dumpDML(t, mem)
			if err := disk.Close(); err != nil {
				t.Fatal(err)
			}
			rcat := catalog.New()
			reopened, err := storage.OpenDiskEngine(dir, rcat)
			if err != nil {
				t.Fatal(err)
			}
			disk2 := storage.NewDBWithEngine(rcat, reopened)
			defer disk2.Close()
			if got := dumpDML(t, disk2); got != finalMem {
				t.Fatalf("reopened disk state diverged from mem:\nmem:  %s\ndisk: %s", finalMem, got)
			}
		})
	}
}
