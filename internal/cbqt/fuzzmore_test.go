package cbqt

import (
	"math/rand"
	"testing"

	"repro/internal/qtree"
	"repro/internal/testkit"
	"repro/internal/workload"
)

func TestRandomQueryEquivalenceManySeeds(t *testing.T) {
	for _, seed := range []int64{7, 41, 137, 911, 2718} {
		db := testkit.NewDB(testkit.SmallSizes(), seed)
		s := testkit.SmallSizes()
		cfg := workload.DefaultConfig(0, 0, s.Employees, s.Departments, s.Jobs)
		rng := rand.New(rand.NewSource(seed * 31))
		for i := 0; i < 150; i++ {
			src := workload.RandomQuery(rng, cfg)
			q, err := qtree.BindSQL(src, db.Catalog)
			if err != nil {
				t.Fatalf("seed %d query %d does not bind: %v\nsql: %s", seed, i, err, src)
			}
			baseline := run(t, db, q)
			opts := DefaultOptions()
			opts.Strategy = StrategyExhaustive
			got, res := runCBQT(t, db, src, opts)
			if !equalStrs(got, baseline) {
				t.Fatalf("seed %d query %d changed semantics\nsql: %s\ntransformed: %s\nwant %v\ngot  %v",
					seed, i, src, res.Query.SQL(), trunc(baseline), trunc(got))
			}
		}
	}
}
