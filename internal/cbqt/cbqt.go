// Package cbqt implements the paper's central contribution: the cost-based
// query transformation framework (§3). The driver applies the heuristic
// transformations imperatively, then considers each cost-based
// transformation in the paper's sequential order. For every transformation
// it discovers the objects the transformation applies to, enumerates a
// state space over those objects — a state assigns each object
// "untransformed" or one of its variants (variants model interleaving and
// juxtaposition, §3.3) — deep-copies the query per state, applies the
// state, invokes the physical optimizer to cost it, and finally transfers
// the directives of the winning state onto the original query tree.
//
// Four state-space search strategies are provided (§3.2): exhaustive,
// iterative improvement, linear, and two-pass, with automatic selection
// based on the number of objects. Optimization performance techniques from
// §3.4 are implemented: cost cut-off, reuse of query sub-tree cost
// annotations, and caching of expensive optimizer computations.
package cbqt

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/check"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/transform"
)

// Strategy selects the state-space search technique (§3.2).
type Strategy int

// Search strategies.
const (
	// StrategyAuto picks per the paper: exhaustive for small object
	// counts, linear beyond ExhaustiveThreshold, two-pass when the total
	// object count in the query exceeds TwoPassThreshold.
	StrategyAuto Strategy = iota
	StrategyExhaustive
	StrategyIterative
	StrategyLinear
	StrategyTwoPass
)

var strategyNames = [...]string{
	StrategyAuto: "auto", StrategyExhaustive: "exhaustive",
	StrategyIterative: "iterative", StrategyLinear: "linear",
	StrategyTwoPass: "two-pass",
}

func (s Strategy) String() string { return strategyNames[s] }

// RuleMode controls how one transformation participates.
type RuleMode int

// Rule modes.
const (
	// RuleCostBased evaluates transformation states by cost (the default).
	RuleCostBased RuleMode = iota
	// RuleHeuristic applies the rule's pre-CBQT heuristic decision without
	// costing (Oracle releases prior to 10g, §2.2.1).
	RuleHeuristic
	// RuleOff disables the transformation entirely.
	RuleOff
)

// HeuristicDecider is implemented by rules that have a documented pre-CBQT
// heuristic decision procedure; used in RuleHeuristic mode.
type HeuristicDecider interface {
	// HeuristicVariant returns the variant the heuristic would choose for
	// object obj (0 = leave untransformed).
	HeuristicVariant(q *qtree.Query, obj int) int
}

// Options configure the CBQT driver.
type Options struct {
	Strategy Strategy
	// ExhaustiveThreshold is the largest per-transformation object count
	// enumerated exhaustively under StrategyAuto (the paper: "if a query
	// block contains a small number of subqueries, we use exhaustive
	// search, but if the number exceeds a fixed threshold, linear").
	ExhaustiveThreshold int
	// TwoPassThreshold is the total transformation-object count in the
	// query above which StrategyAuto degrades every search to two-pass.
	TwoPassThreshold int
	// IterativeRestarts and IterativeMaxStates bound iterative improvement.
	IterativeRestarts  int
	IterativeMaxStates int
	// Parallelism bounds the worker goroutines that evaluate
	// transformation states concurrently. Each state is costed on an
	// independent deep copy of the query, so the Exhaustive, Linear and
	// Two-Pass searches fan their states out to a pool of this many
	// workers (Iterative stays sequential: every step depends on the
	// previous best). 0 selects runtime.GOMAXPROCS(0); 1 evaluates states
	// sequentially, preserving the single-threaded search exactly. The
	// chosen state, its cost and the final plan are identical at every
	// parallelism level: the winner is the minimum-cost state with ties
	// broken by the state's position in the canonical enumeration order
	// (its mixed-radix key), never by completion order.
	Parallelism int
	// CostCutoff enables abandoning states whose cost exceeds the best
	// found so far (§3.4.1). Under parallel evaluation each state prunes
	// against the completed costs of the states that precede it in
	// enumeration order (a prefix bound): workers may observe a later
	// (higher) bound than the sequential search would hold, which only
	// reduces pruning — never correctness, and never below what a
	// sequential run prunes, keeping normalized search traces identical
	// at every worker count.
	CostCutoff bool
	// AnnotationReuse enables reuse of query sub-tree cost annotations
	// across states (§3.4.2).
	AnnotationReuse bool
	// SkipHeuristics disables the imperative transformation phase
	// (for experiments that isolate one transformation).
	SkipHeuristics bool
	// DisableMergeUnnest turns off the imperative merge flavour of
	// subquery unnesting (used to disable unnesting completely, Figure 3).
	DisableMergeUnnest bool
	// RuleModes overrides the participation of individual rules by name.
	RuleModes map[string]RuleMode
	// Rules overrides the cost-based rule sequence (defaults to
	// transform.CostBasedRules).
	Rules []transform.Rule
	// Seed drives the iterative strategy's pseudo-random walk.
	Seed int64
	// Trace records every state evaluated (rule, state vector, cost) in
	// Stats.Trace, and the structured search-event stream in Stats.Events;
	// used by the CLI's -trace flag, golden-trace tests and examples.
	Trace bool
	// Metrics, when non-nil, receives the optimization's work counters
	// (cbqt.* names) and hosts the cost-annotation cache counters
	// (costcache.*). The registry may be shared across queries: Stats
	// snapshots its per-query deltas. Nil keeps the counters private.
	Metrics *obsv.Registry
	// Budget bounds the transformation search; the zero Budget is
	// unlimited. Exhaustion degrades the search (Stats.Degraded says why)
	// instead of failing the query.
	Budget Budget
	// CacheMaxEntries bounds the cost-annotation cache; <= 0 selects
	// optimizer.DefaultCacheMaxEntries.
	CacheMaxEntries int
	// Faults, when non-nil, is the fault-injection schedule fired at the
	// named sites of the optimize path (see package faultinject). Injected
	// panics and errors degrade the search; they never fail the query.
	Faults *faultinject.Set
	// Check runs the static semantic checker (package check) over the
	// query tree and plan at every seam of the optimize path: the input
	// query, the tree after the heuristic phase, every transformation
	// state evaluated by the search (tree, per-rule contract, and costed
	// plan), the tree after the winning directives are applied, and the
	// final physical plan. A violation in a transformation state or in the
	// winner/heuristic application quarantines the offending rule through
	// the same machinery that isolates panics, deterministically at every
	// parallelism level; a violation in the input query or the final plan
	// fails the optimization. Violations count through Options.Metrics
	// (cbqt.check_violations and per-class counters).
	Check bool
	// FullCloneStates evaluates every transformation state on a full deep
	// copy of the query instead of a copy-on-write clone (qtree.CloneCOW).
	// The searches are bit-for-bit identical either way — COW materializes
	// blocks with their original IDs and allocates nothing from the base —
	// so this exists for the differential suite and the memo benchmark,
	// which compare the two modes directly.
	FullCloneStates bool
}

// defaultCheck is the Options.Check value DefaultOptions hands out. It is
// false for production callers (the -check flags opt in) and flipped to
// true by this package's test suite, so every differential, fault, golden,
// and parallel test runs with the static checker armed.
var defaultCheck = false

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Strategy:            StrategyAuto,
		ExhaustiveThreshold: 4,
		TwoPassThreshold:    10,
		IterativeRestarts:   3,
		IterativeMaxStates:  24,
		Parallelism:         0, // runtime.GOMAXPROCS(0) workers
		CostCutoff:          true,
		AnnotationReuse:     true,
		Seed:                1,
		Check:               defaultCheck,
	}
}

// Stats reports the work done during one optimization.
type Stats struct {
	// StatesEvaluated counts transformation states costed (state (0,..)
	// included), summed over all transformations.
	StatesEvaluated int
	// StatesByRule breaks StatesEvaluated down per transformation.
	StatesByRule map[string]int
	// BlocksOptimized counts query blocks costed by the physical
	// optimizer, excluding those avoided by annotation reuse.
	BlocksOptimized int
	// AnnotationHits counts block optimizations avoided by reuse (§3.4.2).
	AnnotationHits int
	// OptimizeTime is the total time spent in the driver and physical
	// optimizer.
	OptimizeTime time.Duration
	// Trace lists every state evaluated when Options.Trace is set.
	Trace []StateEval
	// Events is the structured search-event stream recorded when
	// Options.Trace is set: rule headers, every state evaluation with its
	// outcome, winners, quarantines and degradations, in state enumeration
	// order (deterministic at every parallelism level; obsv.Normalize makes
	// the serialized form byte-identical across worker counts).
	Events []obsv.SearchEvent
	// Degraded records why the search stopped early (empty: it completed).
	Degraded DegradeReason
	// TransformErrors lists transformation failures (recovered panics and
	// injected errors) absorbed during the search.
	TransformErrors []*TransformError
	// QuarantinedRules lists transformations disabled for the rest of the
	// query after a failure, in quarantine order.
	QuarantinedRules []string
	// CheckViolations counts static-checker violations found during this
	// optimization (Options.Check); a clean run keeps it zero.
	CheckViolations int
	// MemoSharedBlocks and MemoMaterializedBlocks profile the copy-on-write
	// state memo: summed over every state evaluated, how many blocks of the
	// state's tree stayed shared with the base versus privately owned
	// (materialized copies plus transformation-created blocks). Under
	// Options.FullCloneStates every block counts as materialized.
	MemoSharedBlocks       int
	MemoMaterializedBlocks int
	// MemoStateBytes sums the approximate private bytes of every state's
	// tree (qtree.OwnedApproxBytes) — the per-state copy cost the memo
	// actually paid, comparable across FullCloneStates modes.
	MemoStateBytes int64
	// CacheHits/CacheMisses/CacheEvictions snapshot the cost-annotation
	// cache counters for this optimization. CacheHits counts the same
	// events as AnnotationHits, measured at the cache rather than summed
	// over per-state planners.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
}

// StateEval is one costed transformation state: the paper's (0,1,...)
// notation rendered as a digit string, with its estimated cost (infinite
// when the state was abandoned by the cost cut-off).
type StateEval struct {
	Rule  string
	State string
	Cost  float64
}

// Optimizer is the CBQT-enabled query optimizer.
type Optimizer struct {
	Cat  *catalog.Catalog
	Opts Options
}

// New creates an optimizer with default options.
func New(cat *catalog.Catalog) *Optimizer {
	return &Optimizer{Cat: cat, Opts: DefaultOptions()}
}

// Result is the outcome of CBQT optimization.
type Result struct {
	// Query is the transformed query tree (the input query mutated by the
	// winning transformation directives).
	Query *qtree.Query
	// Plan is the final physical plan for the transformed query.
	Plan  *optimizer.Plan
	Stats Stats
}

// Optimize runs heuristic transformations, cost-based transformation with
// state-space search, and final physical optimization. The input query is
// mutated (the chosen directives are applied to it).
func (o *Optimizer) Optimize(q *qtree.Query) (*Result, error) {
	return o.OptimizeContext(context.Background(), q)
}

// OptimizeContext is Optimize under a context: cancellation (like every
// other Budget bound) stops the search at the next state boundary and the
// best form found so far is planned and returned, with Stats.Degraded
// recording the reason. The final physical optimization always runs, so a
// plan comes back even when the budget never admitted a single state.
func (o *Optimizer) OptimizeContext(ctx context.Context, q *qtree.Query) (*Result, error) {
	//lint:allow nodeterm OptimizeTime is an observability stat; nothing downstream branches on it
	start := time.Now()
	stats := Stats{StatesByRule: map[string]int{}}

	// The cost-annotation cache counts its work in an obsv registry — the
	// caller's (Options.Metrics) or a private one. The registry outlives the
	// query, so per-query Stats are pre/post counter deltas.
	var cache *optimizer.CostCache
	var preHits, preMisses, preEvictions int64
	if o.Opts.AnnotationReuse {
		cache = optimizer.NewCostCacheIn(o.Opts.Metrics, o.Opts.CacheMaxEntries)
		cache.Faults = o.Opts.Faults
		m := cache.Metrics()
		preHits = m.CounterValue(optimizer.MetricCacheHits)
		preMisses = m.CounterValue(optimizer.MetricCacheMisses)
		preEvictions = m.CounterValue(optimizer.MetricCacheEvictions)
	}
	tracker := newBudgetTracker(ctx, o.Opts.Budget, q, cache)

	if err := o.checkedInput(q, &stats); err != nil {
		return nil, err
	}
	if !o.Opts.SkipHeuristics {
		if err := o.protectedHeuristics(q, &stats); err != nil {
			return nil, err
		}
	}

	rules := o.Opts.Rules
	if rules == nil {
		rules = transform.CostBasedRules()
	}

	// quarantine disables a failed transformation for the rest of the
	// query: the search continues with the untransformed state, identically
	// at every parallelism level.
	quarantined := map[string]bool{}
	quarantine := func(rule string, te *TransformError) {
		stats.TransformErrors = append(stats.TransformErrors, te)
		if !quarantined[rule] {
			quarantined[rule] = true
			stats.QuarantinedRules = append(stats.QuarantinedRules, rule)
		}
		o.traceEvent(&stats, obsv.SearchEvent{
			Ev: obsv.EvQuarantine, Rule: rule, State: te.State, Reason: te.class(),
		})
	}
	// safeFind quarantines rules whose object discovery panics.
	safeFind := func(r transform.Rule) (n int) {
		defer func() {
			if p := recover(); p != nil {
				quarantine(r.Name(), &TransformError{Rule: r.Name(), Panic: p, Stack: stack()})
				n = 0
			}
		}()
		return r.Find(q)
	}

	// Total object count decides the two-pass degradation (§3.2).
	totalObjects := 0
	for _, r := range rules {
		if o.mode(r) == RuleOff || quarantined[r.Name()] {
			continue
		}
		totalObjects += safeFind(r)
	}

	for _, r := range rules {
		if tracker.expired() {
			break // degraded: keep the form chosen so far
		}
		if quarantined[r.Name()] {
			continue
		}
		switch o.mode(r) {
		case RuleOff:
			continue
		case RuleHeuristic:
			if err := o.applyRuleHeuristically(q, r); err != nil {
				return nil, err
			}
			continue
		}
		n := safeFind(r)
		if n == 0 {
			continue
		}
		strat := o.pickStrategy(n, totalObjects)
		o.traceEvent(&stats, obsv.SearchEvent{
			Ev: obsv.EvRule, Rule: r.Name(), Strategy: strat.String(), Objects: n,
		})
		best, states, err := o.search(q, r, n, strat, cache, &stats, tracker)
		stats.StatesEvaluated += states
		stats.StatesByRule[r.Name()] += states
		if err != nil {
			var te *TransformError
			if errors.As(err, &te) {
				// One bad rewrite must not lose the query: keep it
				// untransformed by this rule and move on.
				quarantine(r.Name(), te)
				continue
			}
			return nil, err
		}
		// Transfer the winning directives onto the original tree (§3.1).
		winner := obsv.WinnerUntransformed
		if !best.isZero() {
			if o.applyWinner(q, r, best, quarantine, &stats) {
				tracker.noteDepth(weight(best))
				winner = obsv.WinnerApplied
			} else {
				winner = obsv.WinnerRolledBack
			}
		}
		o.traceEvent(&stats, obsv.SearchEvent{
			Ev: obsv.EvWinner, Rule: r.Name(), State: stateKey(best), Outcome: winner,
		})
	}

	stats.Degraded = tracker.degradeReason()
	if stats.Degraded != DegradeNone {
		o.traceEvent(&stats, obsv.SearchEvent{Ev: obsv.EvDegraded, Reason: string(stats.Degraded)})
	}
	if cache != nil {
		m := cache.Metrics()
		stats.CacheHits = m.CounterValue(optimizer.MetricCacheHits) - preHits
		stats.CacheMisses = m.CounterValue(optimizer.MetricCacheMisses) - preMisses
		stats.CacheEvictions = m.CounterValue(optimizer.MetricCacheEvictions) - preEvictions
	}
	for i := range stats.Events {
		stats.Events[i].Seq = i
	}

	// Final physical optimization of the chosen form. Its block count is
	// not added to Stats.BlocksOptimized, which measures state-space
	// evaluation work (Table 1). It runs without the search budget: a
	// degraded optimization must still produce an executable plan.
	p := optimizer.New(o.Cat)
	plan, err := p.Optimize(q)
	if err != nil {
		return nil, err
	}
	if o.Opts.Check {
		if vs := check.Plan(plan); len(vs) > 0 {
			o.countCheckViolations(&stats, vs)
			return nil, fmt.Errorf("cbqt: final plan failed the static checker: %w", vs.Err())
		}
	}
	//lint:allow nodeterm OptimizeTime is an observability stat; nothing downstream branches on it
	stats.OptimizeTime = time.Since(start)
	o.publishMetrics(&stats)
	return &Result{Query: q, Plan: plan, Stats: stats}, nil
}

// Metric names the driver publishes to Options.Metrics per optimization.
// The degradation counter is suffixed with the reason, e.g.
// "cbqt.degraded.state-cap".
const (
	MetricQueries         = "cbqt.queries"
	MetricStates          = "cbqt.states"
	MetricBlocks          = "cbqt.blocks"
	MetricAnnotationHits  = "cbqt.annotation_hits"
	MetricTransformErrors = "cbqt.transform_errors"
	MetricQuarantines     = "cbqt.quarantines"
	MetricDegradedPrefix  = "cbqt.degraded."
	MetricOptimizeMS      = "cbqt.optimize_ms"
	// MetricCheckViolations counts static-checker violations; the
	// per-class breakdown is published under MetricCheckViolationsPrefix
	// plus the check.Class (e.g. "cbqt.check_violations.type-mismatch").
	MetricCheckViolations       = "cbqt.check_violations"
	MetricCheckViolationsPrefix = "cbqt.check_violations."
	// The copy-on-write state memo: blocks shared with the base vs.
	// materialized per state (counters, summed over states), and the average
	// private bytes one state's tree cost (gauge, per optimization).
	MetricMemoSharedBlocks       = "cbqt.memo.shared_blocks"
	MetricMemoMaterializedBlocks = "cbqt.memo.materialized_blocks"
	MetricMemoStateBytes         = "cbqt.memo.state_bytes"
)

// publishMetrics folds one optimization's Stats into Options.Metrics (a
// no-op on the nil registry).
func (o *Optimizer) publishMetrics(stats *Stats) {
	reg := o.Opts.Metrics
	reg.Counter(MetricQueries).Inc()
	reg.Counter(MetricStates).Add(int64(stats.StatesEvaluated))
	reg.Counter(MetricBlocks).Add(int64(stats.BlocksOptimized))
	reg.Counter(MetricAnnotationHits).Add(int64(stats.AnnotationHits))
	reg.Counter(MetricTransformErrors).Add(int64(len(stats.TransformErrors)))
	reg.Counter(MetricQuarantines).Add(int64(len(stats.QuarantinedRules)))
	reg.Counter(MetricMemoSharedBlocks).Add(int64(stats.MemoSharedBlocks))
	reg.Counter(MetricMemoMaterializedBlocks).Add(int64(stats.MemoMaterializedBlocks))
	if stats.StatesEvaluated > 0 {
		reg.Gauge(MetricMemoStateBytes).Set(stats.MemoStateBytes / int64(stats.StatesEvaluated))
	}
	if stats.Degraded != DegradeNone {
		reg.Counter(MetricDegradedPrefix + string(stats.Degraded)).Inc()
	}
	reg.Histogram(MetricOptimizeMS, 1, 10, 100, 1000, 10000).
		Observe(float64(stats.OptimizeTime.Milliseconds()))
}

// traceEvent appends a structured search event when tracing is enabled.
func (o *Optimizer) traceEvent(stats *Stats, e obsv.SearchEvent) {
	if o.Opts.Trace {
		stats.Events = append(stats.Events, e)
	}
}

// protectedHeuristics runs the imperative transformation phase with panic
// isolation. The passes mutate a copy-on-write clone of the query, which is
// adopted (qtree.AdoptCOW) only when every pass and check succeeds: a
// panicking, fault-injected or checker-rejected pass simply discards the
// work clone and continues with the untransformed query, with no deep
// backup copy ever taken. Genuine rule errors still propagate.
func (o *Optimizer) protectedHeuristics(q *qtree.Query, stats *Stats) (err error) {
	work := q.CloneCOW()
	defer func() {
		if p := recover(); p != nil {
			stats.TransformErrors = append(stats.TransformErrors,
				&TransformError{Rule: "heuristics", Panic: p, Stack: stack()})
			o.traceEvent(stats, obsv.SearchEvent{Ev: obsv.EvHeuristics, Outcome: obsv.OutcomeFault, Reason: "panic"})
			err = nil
		}
	}()
	if herr := o.applyHeuristics(work); herr != nil {
		if errors.Is(herr, faultinject.ErrInjected) {
			stats.TransformErrors = append(stats.TransformErrors,
				&TransformError{Rule: "heuristics", Err: herr})
			o.traceEvent(stats, obsv.SearchEvent{Ev: obsv.EvHeuristics, Outcome: obsv.OutcomeFault, Reason: "injected"})
			return nil
		}
		return herr
	}
	if o.Opts.Check {
		// A heuristic pass that broke the tree — or mutated blocks without
		// materializing them — leaves q untouched; drop the work clone and
		// continue with the pre-heuristics form, like any heuristics fault.
		vs := check.Aliasing(work)
		vs = append(vs, check.Query(work)...)
		if len(vs) > 0 {
			o.countCheckViolations(stats, vs)
			stats.TransformErrors = append(stats.TransformErrors,
				&TransformError{Rule: "heuristics", Err: vs})
			o.traceCheckFault(stats)
			return nil
		}
	}
	q.AdoptCOW(work)
	o.traceEvent(stats, obsv.SearchEvent{Ev: obsv.EvHeuristics, Outcome: "ok"})
	return nil
}

// applyWinner transfers the winning directives (and the heuristic re-pass
// they enable) onto the original tree, protected against panics: the state
// is applied to a copy-on-write work clone that is adopted only when every
// step and check succeeds. On any failure the work clone is discarded — q
// was never mutated, its from-ID allocation is untouched, and the SQL the
// non-fault path generates is unchanged — and the rule is quarantined.
func (o *Optimizer) applyWinner(q *qtree.Query, r transform.Rule, best state, quarantine func(string, *TransformError), stats *Stats) (applied bool) {
	work := q.CloneCOW()
	fail := func(p any, err error, stk string) {
		quarantine(r.Name(), &TransformError{Rule: r.Name(), State: stateKey(best), Panic: p, Err: err, Stack: stk})
	}
	defer func() {
		if p := recover(); p != nil {
			fail(p, nil, stack())
			applied = false
		}
	}()
	if err := o.applyState(work, r, best); err != nil {
		fail(nil, err, "")
		return false
	}
	if o.Opts.Check {
		if vs := check.CheckContract(r.Name(), check.Summarize(q), work); len(vs) > 0 {
			o.countCheckViolations(stats, vs)
			fail(nil, vs, "")
			return false
		}
	}
	if !o.Opts.SkipHeuristics {
		if err := o.applyHeuristics(work); err != nil {
			fail(nil, err, "")
			return false
		}
	}
	if o.Opts.Check {
		vs := check.Aliasing(work)
		vs = append(vs, check.Query(work)...)
		if len(vs) > 0 {
			o.countCheckViolations(stats, vs)
			fail(nil, vs, "")
			return false
		}
	}
	q.AdoptCOW(work)
	return true
}

func (o *Optimizer) applyHeuristics(q *qtree.Query) error {
	if err := o.Opts.Faults.Fire("heuristics"); err != nil {
		return err
	}
	if o.Opts.DisableMergeUnnest {
		// Run the heuristic set minus merge unnesting.
		for pass := 0; pass < 10; pass++ {
			changed := false
			for _, r := range transform.Heuristics() {
				if _, isUnnest := r.(*transform.UnnestMerge); isUnnest {
					continue
				}
				ch, err := r.Apply(q)
				if err != nil {
					return err
				}
				changed = changed || ch
			}
			if !changed {
				return nil
			}
		}
		return nil
	}
	return transform.ApplyHeuristics(q)
}

func (o *Optimizer) mode(r transform.Rule) RuleMode {
	if m, ok := o.Opts.RuleModes[r.Name()]; ok {
		return m
	}
	return RuleCostBased
}

// applyRuleHeuristically applies the rule's pre-CBQT heuristic decision to
// every object (releases prior to Oracle 10g, §2.2.1).
func (o *Optimizer) applyRuleHeuristically(q *qtree.Query, r transform.Rule) error {
	hd, ok := r.(HeuristicDecider)
	if !ok {
		return nil // no heuristic counterpart: leave untransformed
	}
	// Objects shift as transformations apply; re-discover each round.
	for guard := 0; guard < 32; guard++ {
		n := r.Find(q)
		applied := false
		for obj := 0; obj < n; obj++ {
			v := hd.HeuristicVariant(q, obj)
			if v == 0 {
				continue
			}
			if err := r.Apply(q, obj, v); err != nil {
				continue // treat as inapplicable
			}
			applied = true
			break // re-discover objects after mutation
		}
		if !applied {
			return nil
		}
	}
	return nil
}

// pickStrategy implements the automatic selection (§3.2).
func (o *Optimizer) pickStrategy(n, totalObjects int) Strategy {
	if o.Opts.Strategy != StrategyAuto {
		return o.Opts.Strategy
	}
	if totalObjects > o.Opts.TwoPassThreshold {
		return StrategyTwoPass
	}
	if n <= o.Opts.ExhaustiveThreshold {
		return StrategyExhaustive
	}
	return StrategyLinear
}

// state assigns a variant (0 = untransformed) to each object.
type state []int

func (s state) isZero() bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

func (s state) clone() state { return append(state(nil), s...) }

// applyState deep-applies a state to query q in place, firing the
// "apply:<rule>" fault-injection site once per object application.
func (o *Optimizer) applyState(q *qtree.Query, r transform.Rule, s state) error {
	// Objects are applied from the last to the first so earlier object
	// indexes remain valid as the tree mutates.
	for obj := len(s) - 1; obj >= 0; obj-- {
		if s[obj] == 0 {
			continue
		}
		if err := o.Opts.Faults.Fire("apply:" + r.Name()); err != nil {
			return err
		}
		if err := r.Apply(q, obj, s[obj]); err != nil {
			return err
		}
	}
	return nil
}
