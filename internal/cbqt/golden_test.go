package cbqt

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
)

var updateGolden = flag.Bool("update", false, "rewrite golden EXPLAIN snapshots under testdata/golden")

// table2SQL mirrors bench.Table2Query (the bench package imports cbqt, so
// the constant cannot be imported here): the paper's Table 2 setup of three
// base tables and four three-table subqueries, all valid for unnesting.
const table2SQL = `
SELECT e.employee_name, d.department_name, l.city
FROM employees e, departments d, locations l
WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id AND
  e.emp_id NOT IN (SELECT j.emp_id FROM job_history j, jobs jb, departments d2
                   WHERE j.job_id = jb.job_id AND j.dept_id = d2.dept_id AND j.start_date > '20020101') AND
  EXISTS (SELECT 1 FROM sales s, departments d3, locations l3
          WHERE s.dept_id = d3.dept_id AND d3.loc_id = l3.loc_id AND s.emp_id = e.emp_id) AND
  NOT EXISTS (SELECT 1 FROM sales s2, jobs jb2, employees e4
              WHERE s2.emp_id = e4.emp_id AND e4.job_id = jb2.job_id AND s2.dept_id = e.dept_id AND s2.amount > 990) AND
  NOT EXISTS (SELECT 1 FROM job_history j2, departments d4, locations l4
              WHERE j2.dept_id = d4.dept_id AND d4.loc_id = l4.loc_id AND j2.emp_id = e.emp_id AND j2.start_date > '20031001')`

// TestGoldenExplain pins the transformed SQL and rendered EXPLAIN for the
// Q1 (Table 1) and Table 2 query families under every search strategy.
// Any change to transformation legality, costing or plan rendering shows up
// as a readable snapshot diff; refresh intentionally with
//
//	go test ./internal/cbqt/ -run TestGoldenExplain -update
func TestGoldenExplain(t *testing.T) {
	cases := []struct {
		name string
		db   *storage.DB
		sql  string
	}{
		{name: "q1_table1", db: testkit.TinyDB(), sql: table1SQL},
		{name: "table2", db: testkit.NewDB(testkit.SmallSizes(), 7), sql: table2SQL},
	}
	strategies := []struct {
		name  string
		strat Strategy
	}{
		{"exhaustive", StrategyExhaustive},
		{"linear", StrategyLinear},
		{"two-pass", StrategyTwoPass},
		{"iterative", StrategyIterative},
	}
	for _, tc := range cases {
		for _, st := range strategies {
			t.Run(tc.name+"/"+st.name, func(t *testing.T) {
				opts := DefaultOptions()
				opts.Strategy = st.strat
				// Golden snapshots are scheduling-independent by the
				// determinism guarantee; pin one worker anyway so a
				// determinism regression fails its own test, not this one.
				opts.Parallelism = 1
				q := qtree.MustBind(tc.sql, tc.db.Catalog)
				o := &Optimizer{Cat: tc.db.Catalog, Opts: opts}
				res, err := o.Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				got := fmt.Sprintf("-- transformed SQL --\n%s\n\n-- plan (total cost %.1f) --\n%s",
					res.Query.SQL(), res.Plan.Cost.Total, optimizer.Explain(res.Plan))
				path := filepath.Join("testdata", "golden", tc.name+"_"+st.name+".txt")
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden snapshot %s (run with -update to create): %v", path, err)
				}
				if got != string(want) {
					t.Errorf("EXPLAIN snapshot diverged from %s:\n--- got ---\n%s\n--- want ---\n%s\ndiff starts at %q",
						path, got, want, firstDiff(got, string(want)))
				}
			})
		}
	}
}

// TestGoldenExplainDegraded pins the degradation annotation format: a
// state-capped search on the Table 2 query must label its EXPLAIN output
// with the degradation reason, and the capped plan itself is part of the
// snapshot (the deterministic-prefix guarantee makes it stable).
func TestGoldenExplainDegraded(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	opts := DefaultOptions()
	opts.Strategy = StrategyExhaustive
	opts.Parallelism = 1
	opts.Budget.MaxStates = 3
	q := qtree.MustBind(table2SQL, db.Catalog)
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded != DegradeStateCap {
		t.Fatalf("Degraded = %q, want %q", res.Stats.Degraded, DegradeStateCap)
	}
	got := fmt.Sprintf("-- search: degraded: %s (%d states evaluated) --\n-- transformed SQL --\n%s\n\n-- plan (total cost %.1f) --\n%s",
		res.Stats.Degraded, res.Stats.StatesEvaluated,
		res.Query.SQL(), res.Plan.Cost.Total, optimizer.Explain(res.Plan))
	path := filepath.Join("testdata", "golden", "table2_degraded_statecap.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("degraded EXPLAIN snapshot diverged from %s:\n--- got ---\n%s\n--- want ---\n%s\ndiff starts at %q",
			path, got, want, firstDiff(got, string(want)))
	}
}

// firstDiff returns a short context window around the first byte where the
// two snapshots diverge.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			start := i - 20
			if start < 0 {
				start = 0
			}
			end := i + 20
			if end > n {
				end = n
			}
			return strings.TrimSpace(a[start:end])
		}
	}
	return "<length mismatch>"
}
