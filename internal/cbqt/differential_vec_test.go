package cbqt

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/workload"
)

// vecResultStrings renders result rows as sorted datum strings, the same
// normalization the CBQT differential oracle uses.
func vecResultStrings(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// underLimit marks every descendant of a Limit operator. Below a limit the
// two engines legitimately disagree on per-operator row counts: the row
// engine stops pulling child rows the moment the limit is satisfied, while
// the batch engine receives whole batches and cuts the surplus, so child
// operators may have produced up to one extra batch of rows.
func underLimit(plan *optimizer.Plan) map[optimizer.PlanNode]bool {
	m := map[optimizer.PlanNode]bool{}
	var walk func(n optimizer.PlanNode, under bool)
	walk = func(n optimizer.PlanNode, under bool) {
		if n == nil {
			return
		}
		if under {
			m[n] = true
		}
		_, isLimit := n.(*optimizer.Limit)
		for _, c := range n.Children() {
			walk(c, under || isLimit)
		}
	}
	walk(plan.Root, false)
	for _, sp := range plan.Subplans {
		walk(sp.Root, false)
	}
	return m
}

// checkVectorizedAgainstRow executes one optimized plan under both engines
// and requires identical result rows and identical per-operator logical row
// counts and open counts (outside limit subtrees).
func checkVectorizedAgainstRow(t *testing.T, db *storage.DB, plan *optimizer.Plan, sql string) {
	t.Helper()
	ctx := context.Background()
	resB, stB, err := exec.RunAnalyzeWith(ctx, db, plan, exec.Options{})
	if err != nil {
		t.Errorf("batch engine failed: %v\nsql: %s", err, sql)
		return
	}
	resR, stR, err := exec.RunAnalyzeWith(ctx, db, plan, exec.Options{RowExec: true})
	if err != nil {
		t.Errorf("row engine failed: %v\nsql: %s", err, sql)
		return
	}
	gotB, gotR := vecResultStrings(resB), vecResultStrings(resR)
	if !equalStrs(gotB, gotR) {
		t.Errorf("batch engine changed results (%d rows vs %d)\nsql: %s\nbatch: %v\nrow:   %v",
			len(gotB), len(gotR), sql, sample(gotB), sample(gotR))
		return
	}
	skip := underLimit(plan)
	for n, r := range stR.Ops {
		if skip[n] {
			continue
		}
		b, ok := stB.Ops[n]
		if !ok {
			// A subplan the row engine ran but the batch engine never
			// opened (or vice versa) is an execution divergence.
			t.Errorf("%s: executed by row engine only\nsql: %s", n.Label(), sql)
			continue
		}
		if b.Rows != r.Rows {
			t.Errorf("%s: batch engine produced %d logical rows, row engine %d\nsql: %s",
				n.Label(), b.Rows, r.Rows, sql)
		}
		if b.Opens != r.Opens {
			t.Errorf("%s: batch engine opened %d times, row engine %d\nsql: %s",
				n.Label(), b.Opens, r.Opens, sql)
		}
	}
	for n := range stB.Ops {
		if _, ok := stR.Ops[n]; !ok && !skip[n] {
			t.Errorf("%s: executed by batch engine only\nsql: %s", n.Label(), sql)
		}
	}
}

// sample truncates long row lists in failure messages.
func sample(rows []string) []string {
	if len(rows) > 8 {
		return rows[:8]
	}
	return rows
}

// TestDifferentialVectorized is the batch-vs-row oracle: every workload
// query (plus explicit window, set-operation and rownum-view queries, which
// exercise the row-bridged operators and the vectorized limit) is optimized
// once, then executed under the vectorized and the row-at-a-time engine.
// Results, per-operator logical row counts and open counts must be
// identical — first sequentially, then with eight goroutines sharing the
// database to surface data races in the batch path under -race.
func TestDifferentialVectorized(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(13, 120, s.Employees, s.Departments, s.Jobs)
	cfg.RelevantFraction = 0.7
	queries := workload.Generate(cfg)
	if len(queries) < 100 {
		t.Fatalf("generated only %d queries, want >= 100", len(queries))
	}
	// The random mix may under-sample the operators that stay row-based
	// inside the batch engine; pin coverage of the bridges.
	for _, cl := range []workload.Class{workload.ClassWindow, workload.ClassUnionAll, workload.ClassPullup} {
		queries = append(queries, workload.GenerateClass(17, 6, cfg, cl)...)
	}

	opts := DefaultOptions()
	opts.Parallelism = 1
	type planned struct {
		sql  string
		plan *optimizer.Plan
	}
	plans := make([]planned, 0, len(queries))
	for _, wq := range queries {
		q := qtree.MustBind(wq.SQL, db.Catalog)
		o := &Optimizer{Cat: db.Catalog, Opts: opts}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("cbqt: %v\nsql: %s", err, wq.SQL)
		}
		plans = append(plans, planned{sql: wq.SQL, plan: res.Plan})
	}

	t.Run("sequential", func(t *testing.T) {
		for _, p := range plans {
			checkVectorizedAgainstRow(t, db, p.plan, p.sql)
		}
	})

	// The work queue hands each plan to exactly one worker, so iterators
	// are never shared; what the goroutines do share is the storage layer
	// and the read-only plan trees, which must stay race-free under the
	// batch engine.
	t.Run("parallel8", func(t *testing.T) {
		work := make(chan planned, len(plans))
		for _, p := range plans {
			work <- p
		}
		close(work)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range work {
					checkVectorizedAgainstRow(t, db, p.plan, p.sql)
				}
			}()
		}
		wg.Wait()
	})
}
