package cbqt

import (
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/obsv"
	"repro/internal/qtree"
)

// countCheckViolations folds static-checker findings into the per-state
// Stats and the metrics registry: the total under MetricCheckViolations
// and one counter per violation class. Safe from parallel workers — Stats
// is per-worker (merged in enumeration order) and obsv counters are
// atomic.
func (o *Optimizer) countCheckViolations(stats *Stats, vs check.Violations) {
	stats.CheckViolations += len(vs)
	reg := o.Opts.Metrics
	reg.Counter(MetricCheckViolations).Add(int64(len(vs)))
	for _, v := range vs {
		reg.Counter(MetricCheckViolationsPrefix + string(v.Class)).Inc()
	}
}

// checkFault converts checker findings on a transformation state into the
// quarantine path: a *TransformError carrying the Violations, which the
// search surfaces in enumeration order so the offending rule is
// quarantined identically at every parallelism level.
func (o *Optimizer) checkFault(rule, st string, stats *Stats, vs check.Violations) *TransformError {
	o.countCheckViolations(stats, vs)
	return &TransformError{Rule: rule, State: st, Err: vs}
}

// checkedInput verifies the query handed to OptimizeContext before any
// transformation runs. A malformed input is the caller's bug, not a
// transformation's: it fails the optimization instead of quarantining.
func (o *Optimizer) checkedInput(q *qtree.Query, stats *Stats) error {
	if !o.Opts.Check {
		return nil
	}
	if vs := check.Query(q); len(vs) > 0 {
		o.countCheckViolations(stats, vs)
		return fmt.Errorf("cbqt: input query failed the static checker: %w", vs.Err())
	}
	return nil
}

// IsCheckViolation reports whether err carries static-checker violations
// (possibly wrapped in a *TransformError), and returns them.
func IsCheckViolation(err error) (check.Violations, bool) {
	var vs check.Violations
	if errors.As(err, &vs) {
		return vs, true
	}
	return nil, false
}

// checkEventReason is the trace/quarantine reason for checker findings.
const checkEventReason = "check"

// traceCheckFault emits the heuristics-phase fault event for checker
// findings; split out so protectedHeuristics stays readable.
func (o *Optimizer) traceCheckFault(stats *Stats) {
	o.traceEvent(stats, obsv.SearchEvent{
		Ev: obsv.EvHeuristics, Outcome: obsv.OutcomeFault, Reason: checkEventReason,
	})
}
