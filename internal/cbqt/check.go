package cbqt

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/obsv"
	"repro/internal/qtree"
)

// countCheckViolations folds static-checker findings into the per-state
// Stats and the metrics registry: the total under MetricCheckViolations
// and one counter per violation class. Safe from parallel workers — Stats
// is per-worker (merged in enumeration order) and obsv counters are
// atomic.
func (o *Optimizer) countCheckViolations(stats *Stats, vs check.Violations) {
	stats.CheckViolations += len(vs)
	reg := o.Opts.Metrics
	reg.Counter(MetricCheckViolations).Add(int64(len(vs)))
	for _, v := range vs {
		reg.Counter(MetricCheckViolationsPrefix + string(v.Class)).Inc()
	}
}

// checkFault converts checker findings on a transformation state into the
// quarantine path: a *TransformError carrying the Violations, which the
// search surfaces in enumeration order so the offending rule is
// quarantined identically at every parallelism level.
func (o *Optimizer) checkFault(rule, st string, stats *Stats, vs check.Violations) *TransformError {
	o.countCheckViolations(stats, vs)
	return &TransformError{Rule: rule, State: st, Err: vs}
}

// checkedInput verifies the query handed to OptimizeContext before any
// transformation runs. A malformed input is the caller's bug, not a
// transformation's: it fails the optimization instead of quarantining.
func (o *Optimizer) checkedInput(q *qtree.Query, stats *Stats) error {
	if !o.Opts.Check {
		return nil
	}
	if vs := check.Query(q); len(vs) > 0 {
		o.countCheckViolations(stats, vs)
		return fmt.Errorf("cbqt: input query failed the static checker: %w", vs.Err())
	}
	return nil
}

// OptimizeDML plans a bound mutation statement. With Options.Check armed
// it adds a fifth seam to the four OptimizeContext runs on the read query:
// check.DML validates the statement shape (target arity and catalog types,
// VALUES-vs-read form, ROWID locating-query contract, parameter slot
// coverage) before any transformation runs, and again after the search —
// so a transformation that preserved the query-level invariants but broke
// the DML contract (say, rewrote the ROWID output into an ordinary int
// column) is rejected here instead of reaching the executor, which trusts
// the first locating-query output blindly as a row address. The VALUES
// form has no read query to optimize and returns a Result with no plan.
func (o *Optimizer) OptimizeDML(ctx context.Context, stmt *qtree.DMLStmt) (*Result, error) {
	if stmt == nil {
		return nil, fmt.Errorf("cbqt: nil DML statement")
	}
	if o.Opts.Check {
		if vs := check.DML(stmt); len(vs) > 0 {
			stats := Stats{StatesByRule: map[string]int{}}
			o.countCheckViolations(&stats, vs)
			return nil, fmt.Errorf("cbqt: input %s statement failed the static checker: %w", stmt.Kind, vs.Err())
		}
	}
	if stmt.Read == nil {
		return &Result{Stats: Stats{StatesByRule: map[string]int{}}}, nil
	}
	res, err := o.OptimizeContext(ctx, stmt.Read)
	if err != nil {
		return nil, err
	}
	// The winner's directives were applied to the read query; keep the
	// statement pointed at the transformed tree the plan was compiled from.
	stmt.Read = res.Query
	if o.Opts.Check {
		if vs := check.DML(stmt); len(vs) > 0 {
			o.countCheckViolations(&res.Stats, vs)
			return nil, fmt.Errorf("cbqt: %s locating query violated the DML contract after transformation: %w", stmt.Kind, vs.Err())
		}
	}
	return res, nil
}

// IsCheckViolation reports whether err carries static-checker violations
// (possibly wrapped in a *TransformError), and returns them.
func IsCheckViolation(err error) (check.Violations, bool) {
	var vs check.Violations
	if errors.As(err, &vs) {
		return vs, true
	}
	return nil, false
}

// checkEventReason is the trace/quarantine reason for checker findings.
const checkEventReason = "check"

// traceCheckFault emits the heuristics-phase fault event for checker
// findings; split out so protectedHeuristics stays readable.
func (o *Optimizer) traceCheckFault(stats *Stats) {
	o.traceEvent(stats, obsv.SearchEvent{
		Ev: obsv.EvHeuristics, Outcome: obsv.OutcomeFault, Reason: checkEventReason,
	})
}
