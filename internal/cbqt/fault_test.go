package cbqt

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/testkit"
	"repro/internal/transform"
	"repro/internal/workload"
)

// containsStr reports whether list contains s.
func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// TestFaultPanicEveryRuleDifferential is the acceptance bar for panic
// isolation: with a panic injected into any single transformation's state
// evaluation, every workload query must still optimize, execute, and return
// exactly the rows of the transformation-free baseline — the failing rule
// is quarantined, never fatal.
func TestFaultPanicEveryRuleDifferential(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(11, 40, s.Employees, s.Departments, s.Jobs)
	cfg.RelevantFraction = 0.7
	queries := workload.Generate(cfg)

	baseline := make([][]string, len(queries))
	for i, wq := range queries {
		baseline[i], _ = runCBQT(t, db, wq.SQL, disabledOptions())
	}

	for _, r := range transform.CostBasedRules() {
		site := "state:" + r.Name()
		for i, wq := range queries {
			faults := faultinject.New(faultinject.Fault{Site: site, Kind: faultinject.KindPanic})
			opts := DefaultOptions()
			opts.Parallelism = 1
			opts.Faults = faults
			rows, res := runCBQT(t, db, wq.SQL, opts)
			if !equalStrs(rows, baseline[i]) {
				t.Errorf("panic@%s query %d (%s): results changed (%d rows vs %d)\nsql: %s",
					site, wq.ID, wq.Class, len(rows), len(baseline[i]), wq.SQL)
			}
			if faults.Hits(site) > 0 && !containsStr(res.Stats.QuarantinedRules, r.Name()) {
				t.Errorf("panic@%s query %d: fault fired but rule was not quarantined (quarantined: %v)",
					site, wq.ID, res.Stats.QuarantinedRules)
			}
		}
	}
}

// TestFaultApplyPanic injects a panic into the winner-application path of
// every transformation on the Table 2 query: the backup tree must be
// restored, the rule quarantined, and the results unchanged.
func TestFaultApplyPanic(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	baseRows, _ := runCBQT(t, db, table2SQL, disabledOptions())

	for _, r := range transform.CostBasedRules() {
		site := "apply:" + r.Name()
		faults := faultinject.New(faultinject.Fault{Site: site, Kind: faultinject.KindPanic})
		opts := DefaultOptions()
		opts.Parallelism = 1
		opts.Faults = faults
		rows, res := runCBQT(t, db, table2SQL, opts)
		if !equalStrs(rows, baseRows) {
			t.Errorf("panic@%s: results changed (%d rows vs %d)", site, len(rows), len(baseRows))
		}
		if faults.Hits(site) > 0 && len(res.Stats.TransformErrors) == 0 {
			t.Errorf("panic@%s: fault fired but no TransformError was recorded", site)
		}
	}
}

// TestFaultParallelSequentialAgreement: under one deterministic fault
// schedule, the parallel and sequential searches must quarantine the same
// rules and choose the identical transformed query. Only always-fire faults
// are schedule-deterministic across worker counts (per-hit faults may land
// on a different state), so that is what the test pins.
func TestFaultParallelSequentialAgreement(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	schedules := [][]faultinject.Fault{
		{{Site: "state:" + (&transform.UnnestSubquery{}).Name(), Kind: faultinject.KindPanic}},
		{{Site: "state:" + (&transform.GroupByPlacement{}).Name(), Kind: faultinject.KindError}},
		{{Site: "apply:*", Kind: faultinject.KindPanic}},
	}
	for _, sched := range schedules {
		run := func(parallelism int) *Result {
			opts := DefaultOptions()
			opts.Parallelism = parallelism
			opts.Faults = faultinject.New(sched...)
			_, res := runCBQT(t, db, table2SQL, opts)
			return res
		}
		seq := run(1)
		par := run(8)
		if got, want := par.Query.SQL(), seq.Query.SQL(); got != want {
			t.Errorf("schedule %v: parallel chose a different query\nparallel:   %s\nsequential: %s",
				sched, got, want)
		}
		if got, want := par.Stats.QuarantinedRules, seq.Stats.QuarantinedRules; !equalStrs(got, want) {
			t.Errorf("schedule %v: quarantine sets differ: parallel %v vs sequential %v", sched, got, want)
		}
	}
}

// TestFaultHeuristics: a failing imperative heuristic pass is rolled back
// to the backup tree and recorded; the query still runs correctly.
func TestFaultHeuristics(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	baseRows, _ := runCBQT(t, db, table2SQL, disabledOptions())

	for _, kind := range []faultinject.Kind{faultinject.KindPanic, faultinject.KindError} {
		opts := DefaultOptions()
		opts.Parallelism = 1
		opts.Faults = faultinject.New(faultinject.Fault{Site: "heuristics", Kind: kind})
		rows, res := runCBQT(t, db, table2SQL, opts)
		if !equalStrs(rows, baseRows) {
			t.Errorf("%v@heuristics: results changed (%d rows vs %d)", kind, len(rows), len(baseRows))
		}
		found := false
		for _, te := range res.Stats.TransformErrors {
			if te.Rule == "heuristics" {
				found = true
			}
		}
		if !found {
			t.Errorf("%v@heuristics: no heuristics TransformError recorded (errors: %v)",
				kind, res.Stats.TransformErrors)
		}
	}
}

// TestFaultCache: cost-cache faults degrade lookups to misses and drop
// stores — they cost work, never correctness or plan choice.
func TestFaultCache(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	clean := DefaultOptions()
	clean.Parallelism = 1
	cleanRows, cleanRes := runCBQT(t, db, table2SQL, clean)

	opts := DefaultOptions()
	opts.Parallelism = 1
	opts.Faults = faultinject.New(
		faultinject.Fault{Site: "cache:get", Kind: faultinject.KindError},
		faultinject.Fault{Site: "cache:put", Kind: faultinject.KindError},
	)
	rows, res := runCBQT(t, db, table2SQL, opts)
	if got, want := res.Query.SQL(), cleanRes.Query.SQL(); got != want {
		t.Errorf("cache faults changed the chosen query:\ngot:  %s\nwant: %s", got, want)
	}
	if !equalStrs(rows, cleanRows) {
		t.Errorf("cache faults changed results")
	}
	if res.Stats.CacheHits != 0 {
		t.Errorf("cache:get faults still produced %d hits", res.Stats.CacheHits)
	}
}
