package cbqt

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
	"repro/internal/transform"
)

func TestPrefixBound(t *testing.T) {
	b := newPrefixBound(math.Inf(1), 4)
	if !math.IsInf(b.boundFor(3), 1) {
		t.Fatalf("initial bound = %v", b.boundFor(3))
	}
	// A later state's completion must never tighten an earlier state's bound.
	b.complete(2, 5)
	if !math.IsInf(b.boundFor(1), 1) {
		t.Errorf("bound for state 1 = %v after state 2 completed; want +Inf", b.boundFor(1))
	}
	if got := b.boundFor(3); got != 5 {
		t.Errorf("bound for state 3 = %v, want 5", got)
	}
	// The bound is the minimum over the completed prefix and the seed.
	b.complete(0, 10)
	if got := b.boundFor(1); got != 10 {
		t.Errorf("bound for state 1 = %v, want 10", got)
	}
	if got := b.boundFor(3); got != 5 {
		t.Errorf("bound for state 3 = %v, want 5", got)
	}
	// A finite seed participates in every bound.
	s := newPrefixBound(7, 2)
	if got := s.boundFor(1); got != 7 {
		t.Errorf("seeded bound = %v, want 7", got)
	}
	s.complete(0, 3)
	if got := s.boundFor(1); got != 3 {
		t.Errorf("seeded bound after completion = %v, want 3", got)
	}
}

func TestEnumerateStatesMatchesSequentialOrder(t *testing.T) {
	states := enumerateStates([]int{1, 2})
	want := []string{"00", "10", "01", "11", "02", "12"}
	if len(states) != len(want) {
		t.Fatalf("enumerated %d states, want %d", len(states), len(want))
	}
	for i, s := range states {
		if stateKey(s) != want[i] {
			t.Errorf("state %d = %s, want %s", i, stateKey(s), want[i])
		}
	}
}

// determinismQueries cover the transformations with non-trivial state
// spaces; byte-identical outcomes are required for each at every
// parallelism level.
var determinismQueries = []string{
	table1SQL,
	testQueries[0], // Q1-style correlated aggregate + IN
	testQueries[3], // group-by view join
	testQueries[9], // union-all factorization candidate
}

// TestParallelDeterminism runs every strategy at parallelism 1, 2 and 8,
// twice each, and requires the chosen transformed query, the final plan
// cost, and the rendered EXPLAIN to be byte-identical across all runs and
// levels: the winner must depend only on the state space, never on worker
// scheduling.
func TestParallelDeterminism(t *testing.T) {
	db := testkit.TinyDB()
	for qi, src := range determinismQueries {
		for _, strat := range []Strategy{StrategyExhaustive, StrategyLinear, StrategyTwoPass, StrategyIterative} {
			var baseSQL, baseExplain string
			var baseCost float64
			first := true
			for _, par := range []int{1, 2, 8} {
				for run := 0; run < 2; run++ {
					opts := DefaultOptions()
					opts.Strategy = strat
					opts.Parallelism = par
					q := qtree.MustBind(src, db.Catalog)
					o := &Optimizer{Cat: db.Catalog, Opts: opts}
					res, err := o.Optimize(q)
					if err != nil {
						t.Fatalf("query %d strategy %v parallelism %d: %v", qi, strat, par, err)
					}
					sql := res.Query.SQL()
					cost := res.Plan.Cost.Total
					explain := optimizer.Explain(res.Plan)
					if first {
						baseSQL, baseCost, baseExplain = sql, cost, explain
						first = false
						continue
					}
					if sql != baseSQL {
						t.Errorf("query %d strategy %v parallelism %d run %d chose a different query:\n%s\nvs\n%s",
							qi, strat, par, run, sql, baseSQL)
					}
					if cost != baseCost {
						t.Errorf("query %d strategy %v parallelism %d run %d: cost %v != %v",
							qi, strat, par, run, cost, baseCost)
					}
					if explain != baseExplain {
						t.Errorf("query %d strategy %v parallelism %d run %d: EXPLAIN diverged:\n%s\nvs\n%s",
							qi, strat, par, run, explain, baseExplain)
					}
				}
			}
		}
	}
}

// TestParallelMatchesSequentialStats verifies the deterministic portions of
// Stats match between sequential and parallel evaluation: the number of
// states costed is scheduling-independent (only the hit/miss split and the
// pruning depth may move).
func TestParallelMatchesSequentialStats(t *testing.T) {
	db := testkit.TinyDB()
	for _, strat := range []Strategy{StrategyExhaustive, StrategyLinear, StrategyTwoPass} {
		counts := map[int]int{}
		for _, par := range []int{1, 4} {
			q := qtree.MustBind(table1SQL, db.Catalog)
			opts := DefaultOptions()
			opts.Strategy = strat
			opts.Parallelism = par
			opts.SkipHeuristics = true
			opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
			o := &Optimizer{Cat: db.Catalog, Opts: opts}
			res, err := o.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			counts[par] = res.Stats.StatesEvaluated
		}
		if counts[1] != counts[4] {
			t.Errorf("%v: states evaluated differ: P=1 %d vs P=4 %d", strat, counts[1], counts[4])
		}
	}
}

// TestParallelTraceCoversAllStates checks the merged trace is complete and
// in enumeration order under parallel exhaustive search.
func TestParallelTraceCoversAllStates(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind(table1SQL, db.Catalog)
	opts := DefaultOptions()
	opts.Strategy = StrategyExhaustive
	opts.Parallelism = 4
	opts.CostCutoff = false
	opts.SkipHeuristics = true
	opts.Trace = true
	opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"00", "10", "01", "11"}
	if len(res.Stats.Trace) != len(want) {
		t.Fatalf("trace has %d entries, want %d: %+v", len(res.Stats.Trace), len(want), res.Stats.Trace)
	}
	for i, ev := range res.Stats.Trace {
		if ev.State != want[i] {
			t.Errorf("trace[%d].State = %s, want %s (merge must follow enumeration order)", i, ev.State, want[i])
		}
	}
}

func TestParallelismResolution(t *testing.T) {
	o := New(nil)
	o.Opts.Parallelism = 0
	if got := o.parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("parallelism(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	o.Opts.Parallelism = 3
	if got := o.parallelism(); got != 3 {
		t.Errorf("parallelism(3) = %d", got)
	}
}
