package cbqt

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/transform"
)

func mustBindDML(t *testing.T, db *storage.DB, src string) *qtree.DMLStmt {
	t.Helper()
	stmt, err := qtree.BindDMLSQL(src, db.Catalog)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return stmt
}

func TestOptimizeDMLPlansLocatingQuery(t *testing.T) {
	db := testkit.TinyDB()
	for _, src := range []string{
		"UPDATE EMP e SET SALARY = e.SALARY + 1 WHERE e.DEPT_ID = :d",
		"DELETE FROM EMP e WHERE e.SALARY < :floor",
		"INSERT INTO DEPT (DEPT_ID, NAME) SELECT e.EMP_ID, e.NAME FROM EMP e",
	} {
		stmt := mustBindDML(t, db, src)
		opts := DefaultOptions()
		opts.Check = true
		o := &Optimizer{Cat: db.Catalog, Opts: opts}
		res, err := o.OptimizeDML(context.Background(), stmt)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if res.Plan == nil {
			t.Fatalf("%s: no plan for the locating query", src)
		}
		if stmt.Read != res.Query {
			t.Fatalf("%s: statement not re-pointed at the transformed read query", src)
		}
	}
}

func TestOptimizeDMLValuesFormHasNoPlan(t *testing.T) {
	db := testkit.TinyDB()
	stmt := mustBindDML(t, db, "INSERT INTO DEPT (DEPT_ID, NAME) VALUES (:d, :n)")
	opts := DefaultOptions()
	opts.Check = true
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	res, err := o.OptimizeDML(context.Background(), stmt)
	if err != nil {
		t.Fatalf("VALUES form: %v", err)
	}
	if res.Plan != nil {
		t.Fatalf("VALUES form has no read query; got a plan")
	}
}

func TestOptimizeDMLInputSeamRejects(t *testing.T) {
	db := testkit.TinyDB()
	stmt := mustBindDML(t, db, "UPDATE EMP e SET SALARY = 0, MGR_ID = :m WHERE e.EMP_ID = :id")
	stmt.TargetCols[1] = stmt.TargetCols[0] // column assigned twice
	opts := DefaultOptions()
	opts.Check = true
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	if _, err := o.OptimizeDML(context.Background(), stmt); err == nil {
		t.Fatal("duplicate target column passed the input seam")
	} else {
		if !strings.Contains(err.Error(), "input") {
			t.Fatalf("rejection should name the input seam: %v", err)
		}
		vs, ok := IsCheckViolation(err)
		if !ok {
			t.Fatalf("error does not carry violations: %v", err)
		}
		if !hasClass(vs, check.ClassDML) {
			t.Fatalf("want a %s violation, got %v", check.ClassDML, vs)
		}
	}
}

func TestOptimizeDMLNilStatement(t *testing.T) {
	o := &Optimizer{Cat: testkit.TinyDB().Catalog, Opts: DefaultOptions()}
	if _, err := o.OptimizeDML(context.Background(), nil); err == nil {
		t.Fatal("nil statement accepted")
	}
}

func hasClass(vs check.Violations, cl check.Class) bool {
	for _, v := range vs {
		if v.Class == cl {
			return true
		}
	}
	return false
}

// rowidSwapRule models a defective transformation: structurally it is a
// legal rewrite (the query still type-checks — EMP_ID is an int column,
// just like the ROWID pseudo-column), but it silently breaks the DML
// contract the executor trusts blindly, turning employee IDs into row
// addresses. Registered in heuristic mode it applies on the pre-CBQT
// path, which runs no per-state contract checks — exactly the gap the
// post-transformation DML seam exists to close.
type rowidSwapRule struct{}

func (rowidSwapRule) Name() string { return "ROWID_SWAP" }

func (r rowidSwapRule) Find(q *qtree.Query) int {
	if r.target(q) != nil {
		return 1
	}
	return 0
}

// target locates the root's first output when it is a from-item's ROWID
// pseudo-column; nil once the rule has fired (which terminates Find).
func (rowidSwapRule) target(q *qtree.Query) *qtree.Col {
	root := q.Root
	if root == nil || root.Set != nil || len(root.Select) == 0 {
		return nil
	}
	col, ok := root.Select[0].Expr.(*qtree.Col)
	if !ok {
		return nil
	}
	for _, f := range root.From {
		if f != nil && f.ID == col.From && f.Table != nil && col.Ord == f.Table.RowidOrdinal() {
			return col
		}
	}
	return nil
}

func (rowidSwapRule) Variants(q *qtree.Query, obj int) int { return 1 }

func (r rowidSwapRule) Apply(q *qtree.Query, obj, variant int) error {
	col := r.target(q)
	if col == nil {
		return fmt.Errorf("no ROWID output to swap")
	}
	col.Ord = 0
	col.Name = "EMP_ID"
	return nil
}

func (rowidSwapRule) HeuristicVariant(q *qtree.Query, obj int) int { return 1 }

// TestMalformedLocatingQueryRejectedAtPostSeam is the regression test for
// the fifth checker seam: a heuristic-mode transformation that rewrites an
// UPDATE's ROWID output into an ordinary column is caught by the
// post-transformation check.DML pass — and, with the checker disarmed, the
// same defect plans successfully, i.e. it would have reached the executor.
func TestMalformedLocatingQueryRejectedAtPostSeam(t *testing.T) {
	db := testkit.TinyDB()
	const src = "UPDATE EMP e SET SALARY = 0 WHERE e.DEPT_ID = :d"

	evil := func(armed bool) (Options, *qtree.DMLStmt) {
		opts := DefaultOptions()
		opts.Check = armed
		opts.Rules = []transform.Rule{rowidSwapRule{}}
		opts.RuleModes = map[string]RuleMode{"ROWID_SWAP": RuleHeuristic}
		return opts, mustBindDML(t, db, src)
	}

	t.Run("checker armed", func(t *testing.T) {
		opts, stmt := evil(true)
		o := &Optimizer{Cat: db.Catalog, Opts: opts}
		_, err := o.OptimizeDML(context.Background(), stmt)
		if err == nil {
			t.Fatal("broken locating query passed the post-transformation seam")
		}
		if !strings.Contains(err.Error(), "after transformation") {
			t.Fatalf("rejection should name the post-transformation seam: %v", err)
		}
		vs, ok := IsCheckViolation(err)
		if !ok {
			t.Fatalf("error does not carry violations: %v", err)
		}
		if !hasClass(vs, check.ClassDML) {
			t.Fatalf("want a %s violation, got %v", check.ClassDML, vs)
		}
	})

	t.Run("checker disarmed", func(t *testing.T) {
		opts, stmt := evil(false)
		o := &Optimizer{Cat: db.Catalog, Opts: opts}
		res, err := o.OptimizeDML(context.Background(), stmt)
		if err != nil {
			t.Fatalf("disarmed run failed for another reason: %v", err)
		}
		if res.Plan == nil {
			t.Fatal("disarmed run produced no plan")
		}
		// The defect survived planning: the first output is now EMP_ID.
		col, ok := stmt.Read.Root.Select[0].Expr.(*qtree.Col)
		if !ok || col.Ord != 0 {
			t.Fatalf("rule did not fire; first output %v", stmt.Read.Root.Select[0].Expr)
		}
	})
}
