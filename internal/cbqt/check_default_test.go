package cbqt

// The whole cbqt suite — differential, fault-injection, golden-trace,
// parallel-determinism, budget — runs with the static checker armed, so
// every state those tests enumerate is semantically verified and a checker
// regression (a false positive on a legal transformation, or a trace
// divergence introduced by the check seams) fails loudly here rather than
// in production.
func init() { defaultCheck = true }
