package cbqt

import (
	"math/rand"
	"testing"

	"repro/internal/qtree"
	"repro/internal/testkit"
	"repro/internal/transform"
	"repro/internal/workload"
)

// TestWorkloadEquivalenceProperty is the repository's strongest end-to-end
// property: for a stream of generated workload queries, every CBQT
// configuration — all four search strategies, heuristic-decision mode, and
// transformations disabled — must return exactly the same result multiset
// as the untransformed plan. This exercises the full pipeline (parser,
// binder, every transformation the state search explores, the physical
// optimizer, and the executor) against data containing NULLs.
func TestWorkloadEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := testkit.NewDB(testkit.SmallSizes(), 11)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(17, 0, s.Employees, s.Departments, s.Jobs)

	perClass := 4
	for _, class := range append([]workload.Class{workload.ClassSPJ}, workload.RelevantClasses...) {
		qs := workload.GenerateClass(int64(1000)+int64(len(class)), perClass, cfg, class)
		for _, wq := range qs {
			baseline := run(t, db, qtree.MustBind(wq.SQL, db.Catalog))

			for _, strat := range []Strategy{StrategyExhaustive, StrategyIterative, StrategyLinear, StrategyTwoPass} {
				opts := DefaultOptions()
				opts.Strategy = strat
				got, res := runCBQT(t, db, wq.SQL, opts)
				if !equalStrs(got, baseline) {
					t.Fatalf("class %s strategy %v changed semantics\nsql: %s\ntransformed: %s\nwant (%d rows) %v\ngot  (%d rows) %v",
						class, strat, wq.SQL, res.Query.SQL(), len(baseline), trunc(baseline), len(got), trunc(got))
				}
			}

			heur := DefaultOptions()
			heur.RuleModes = map[string]RuleMode{}
			for _, r := range transform.CostBasedRules() {
				heur.RuleModes[r.Name()] = RuleHeuristic
			}
			got, res := runCBQT(t, db, wq.SQL, heur)
			if !equalStrs(got, baseline) {
				t.Fatalf("class %s heuristic mode changed semantics\nsql: %s\ntransformed: %s\nwant %v\ngot  %v",
					class, wq.SQL, res.Query.SQL(), trunc(baseline), trunc(got))
			}
		}
	}
}

func trunc(rows []string) []string {
	if len(rows) > 12 {
		return append(append([]string(nil), rows[:12]...), "...")
	}
	return rows
}

// TestOrderedQueriesPreserveOrder verifies that ORDER BY results survive
// transformation: the ordered prefix must be identical, not just the
// multiset.
func TestOrderedQueriesPreserveOrder(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 11)
	queries := []string{
		// Pullup family: view order by + rownum.
		`SELECT v.acct_id, v.balance FROM
		 (SELECT a.acct_id acct_id, a.balance balance, a.create_date cd, a.rowid rid
		  FROM accounts a WHERE a.balance > 100 ORDER BY a.create_date, a.rowid) v
		 WHERE rownum <= 7`,
		// Top-level order by over a transformed body.
		`SELECT e.employee_name n, e.salary s FROM employees e
		 WHERE e.dept_id IN (SELECT d.dept_id FROM departments d, locations l
		                     WHERE d.loc_id = l.loc_id AND l.country_id = 'US')
		 ORDER BY e.salary DESC, e.emp_id`,
	}
	for _, src := range queries {
		baseQ := qtree.MustBind(src, db.Catalog)
		want := runOrdered(t, db, baseQ)
		got, res := runCBQTOrdered(t, db, src, DefaultOptions())
		if len(want) != len(got) {
			t.Fatalf("row count changed: %d vs %d\nsql: %s", len(want), len(got), src)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("order changed at row %d\nsql: %s\ntransformed: %s\nwant %v\ngot  %v",
					i, src, res.Query.SQL(), want, got)
			}
		}
	}
}

// TestRandomQueryEquivalence fuzzes the whole pipeline: pseudo-random
// queries over the schema's join graph, each executed under the baseline
// (no CBQT) and under exhaustive cost-based transformation. Results must
// match exactly.
func TestRandomQueryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := testkit.NewDB(testkit.SmallSizes(), 23)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(0, 0, s.Employees, s.Departments, s.Jobs)
	rng := rand.New(rand.NewSource(99))
	n := 250
	for i := 0; i < n; i++ {
		src := workload.RandomQuery(rng, cfg)
		q, err := qtree.BindSQL(src, db.Catalog)
		if err != nil {
			t.Fatalf("generated query does not bind: %v\nsql: %s", err, src)
		}
		baseline := run(t, db, q)

		opts := DefaultOptions()
		opts.Strategy = StrategyExhaustive
		got, res := runCBQT(t, db, src, opts)
		if !equalStrs(got, baseline) {
			t.Fatalf("random query %d changed semantics\nsql: %s\ntransformed: %s\nwant (%d rows) %v\ngot  (%d rows) %v",
				i, src, res.Query.SQL(), len(baseline), trunc(baseline), len(got), trunc(got))
		}
	}
}
