package cbqt

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/transform"
)

func run(t *testing.T, db *storage.DB, q *qtree.Query) []string {
	t.Helper()
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatalf("optimize: %v\nSQL: %s", err, q.SQL())
	}
	res, err := exec.Run(db, plan)
	if err != nil {
		t.Fatalf("run: %v\nSQL: %s", err, q.SQL())
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func runCBQT(t *testing.T, db *storage.DB, src string, opts Options) ([]string, *Result) {
	t.Helper()
	q := qtree.MustBind(src, db.Catalog)
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("cbqt: %v\nSQL: %s", err, src)
	}
	er, err := exec.Run(db, res.Plan)
	if err != nil {
		t.Fatalf("exec: %v\nSQL: %s", err, res.Query.SQL())
	}
	out := make([]string, len(er.Rows))
	for i, r := range er.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out, res
}

// runOrdered executes the query keeping result order.
func runOrdered(t *testing.T, db *storage.DB, q *qtree.Query) []string {
	t.Helper()
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	res, err := exec.Run(db, plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// runCBQTOrdered is runCBQT without sorting.
func runCBQTOrdered(t *testing.T, db *storage.DB, src string, opts Options) ([]string, *Result) {
	t.Helper()
	q := qtree.MustBind(src, db.Catalog)
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("cbqt: %v", err)
	}
	er, err := exec.Run(db, res.Plan)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	out := make([]string, len(er.Rows))
	for i, r := range er.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out, res
}

// testQueries exercise different transformations; every CBQT configuration
// must preserve their semantics.
var testQueries = []string{
	// Q1-style: correlated aggregate subquery + IN subquery.
	`SELECT e.name FROM emp e
	 WHERE e.salary > (SELECT AVG(e2.salary) FROM emp e2 WHERE e2.dept_id = e.dept_id)
	   AND e.dept_id IN (SELECT d.dept_id FROM dept d WHERE d.loc_id = 1)`,
	// Multi-table EXISTS + NOT EXISTS.
	`SELECT e.name FROM emp e
	 WHERE EXISTS (SELECT 1 FROM dept d, proj p WHERE p.dept_id = d.dept_id AND d.dept_id = e.dept_id)
	   AND NOT EXISTS (SELECT 1 FROM proj p2 WHERE p2.dept_id = e.dept_id AND p2.budget > 900)`,
	// Distinct view join (Q12 family).
	`SELECT e.name FROM emp e,
	 (SELECT DISTINCT p.dept_id FROM proj p, dept d WHERE p.dept_id = d.dept_id) v
	 WHERE e.dept_id = v.dept_id`,
	// Group-by view join.
	`SELECT e.name, v.avg_sal FROM emp e,
	 (SELECT e2.dept_id dd, AVG(e2.salary) avg_sal FROM emp e2 GROUP BY e2.dept_id) v
	 WHERE e.dept_id = v.dd AND e.salary > v.avg_sal`,
	// Aggregation over a join (GBP candidate).
	`SELECT d.name, SUM(p.budget) FROM dept d, proj p
	 WHERE d.dept_id = p.dept_id GROUP BY d.name`,
	// Set operations.
	`SELECT e.dept_id FROM emp e INTERSECT SELECT d.dept_id FROM dept d`,
	`SELECT e.dept_id FROM emp e MINUS SELECT d.loc_id FROM dept d`,
	// Disjunction.
	`SELECT e.name FROM emp e WHERE e.dept_id = 10 OR e.salary > 200`,
	// NOT IN with nulls both sides.
	`SELECT e.name FROM emp e WHERE e.dept_id NOT IN (SELECT d.loc_id FROM dept d)`,
	// Union all with common table (factorization candidate).
	`SELECT d.name, e.name FROM emp e, dept d WHERE e.dept_id = d.dept_id
	 UNION ALL SELECT d.name, p.pname FROM proj p, dept d WHERE p.dept_id = d.dept_id`,
}

func TestAllStrategiesPreserveSemantics(t *testing.T) {
	db := testkit.TinyDB()
	for _, src := range testQueries {
		baseline := run(t, db, qtree.MustBind(src, db.Catalog))
		for _, strat := range []Strategy{StrategyAuto, StrategyExhaustive, StrategyIterative, StrategyLinear, StrategyTwoPass} {
			opts := DefaultOptions()
			opts.Strategy = strat
			got, res := runCBQT(t, db, src, opts)
			if len(got) != len(baseline) || !equalStrs(got, baseline) {
				t.Errorf("strategy %v changed semantics\nsql: %s\ntransformed: %s\nwant %v\ngot  %v",
					strat, src, res.Query.SQL(), baseline, got)
			}
		}
	}
}

func TestHeuristicAndOffModesPreserveSemantics(t *testing.T) {
	db := testkit.TinyDB()
	for _, src := range testQueries {
		baseline := run(t, db, qtree.MustBind(src, db.Catalog))
		for _, mode := range []RuleMode{RuleHeuristic, RuleOff} {
			opts := DefaultOptions()
			opts.RuleModes = map[string]RuleMode{}
			for _, r := range transform.CostBasedRules() {
				opts.RuleModes[r.Name()] = mode
			}
			got, res := runCBQT(t, db, src, opts)
			if !equalStrs(got, baseline) {
				t.Errorf("mode %v changed semantics\nsql: %s\ntransformed: %s\nwant %v\ngot  %v",
					mode, src, res.Query.SQL(), baseline, got)
			}
		}
	}
}

func equalStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// table1SQL has two cost-based-unnestable subqueries, like the paper's Q1
// analysis in Table 1 (each state has three query blocks, and the
// transformed form of each subquery differs structurally from the
// untransformed form, so reuse saves exactly four block optimizations).
const table1SQL = `
SELECT e.name FROM emp e
WHERE EXISTS (SELECT 1 FROM dept d, proj p
              WHERE p.dept_id = d.dept_id AND d.dept_id = e.dept_id AND p.budget > 400)
  AND EXISTS (SELECT 1 FROM proj p2, dept d2
              WHERE p2.dept_id = d2.dept_id AND p2.dept_id = e.dept_id AND d2.loc_id = 1)`

func TestTable1AnnotationReuse(t *testing.T) {
	db := testkit.TinyDB()

	measure := func(reuse bool) Stats {
		q := qtree.MustBind(table1SQL, db.Catalog)
		opts := DefaultOptions()
		opts.Strategy = StrategyExhaustive
		opts.AnnotationReuse = reuse
		opts.CostCutoff = false // isolate the reuse effect (Table 1)
		opts.Parallelism = 1    // exact hit counts need one worker: concurrent misses may duplicate work
		opts.SkipHeuristics = true
		opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
		o := &Optimizer{Cat: db.Catalog, Opts: opts}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}

	without := measure(false)
	with := measure(true)

	if without.StatesEvaluated != 4 || with.StatesEvaluated != 4 {
		t.Fatalf("states = %d/%d, want 4 (exhaustive over 2 objects)",
			without.StatesEvaluated, with.StatesEvaluated)
	}
	// Paper Table 1: twelve query blocks across four states; reuse avoids
	// four of them (each subquery form is optimized once, not twice).
	if without.BlocksOptimized != 12 {
		t.Errorf("blocks without reuse = %d, want 12", without.BlocksOptimized)
	}
	if with.BlocksOptimized != 8 {
		t.Errorf("blocks with reuse = %d, want 8", with.BlocksOptimized)
	}
	if with.AnnotationHits != 4 {
		t.Errorf("annotation hits = %d, want 4", with.AnnotationHits)
	}
}

func TestStateCountsPerStrategy(t *testing.T) {
	db := testkit.TinyDB()
	// Two binary unnesting objects: exhaustive 4, linear 3, two-pass 2.
	counts := map[Strategy]int{
		StrategyExhaustive: 4,
		StrategyLinear:     3,
		StrategyTwoPass:    2,
	}
	for strat, want := range counts {
		q := qtree.MustBind(table1SQL, db.Catalog)
		opts := DefaultOptions()
		opts.Strategy = strat
		opts.SkipHeuristics = true
		opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
		o := &Optimizer{Cat: db.Catalog, Opts: opts}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.StatesEvaluated != want {
			t.Errorf("%v states = %d, want %d", strat, res.Stats.StatesEvaluated, want)
		}
	}
}

func TestIterativeBounded(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind(table1SQL, db.Catalog)
	opts := DefaultOptions()
	opts.Strategy = StrategyIterative
	opts.IterativeMaxStates = 3
	opts.SkipHeuristics = true
	opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StatesEvaluated > 3+1 {
		t.Errorf("iterative exceeded bound: %d states", res.Stats.StatesEvaluated)
	}
}

func TestAutoStrategySelection(t *testing.T) {
	o := New(nil)
	if s := o.pickStrategy(3, 5); s != StrategyExhaustive {
		t.Errorf("small: %v", s)
	}
	if s := o.pickStrategy(6, 6); s != StrategyLinear {
		t.Errorf("medium: %v", s)
	}
	if s := o.pickStrategy(3, 99); s != StrategyTwoPass {
		t.Errorf("large query: %v", s)
	}
	o.Opts.Strategy = StrategyIterative
	if s := o.pickStrategy(3, 5); s != StrategyIterative {
		t.Errorf("explicit override: %v", s)
	}
}

func TestCostCutoffReducesWork(t *testing.T) {
	db := testkit.TinyDB()
	measure := func(cutoff bool) int {
		q := qtree.MustBind(table1SQL, db.Catalog)
		opts := DefaultOptions()
		opts.Strategy = StrategyExhaustive
		opts.CostCutoff = cutoff
		opts.AnnotationReuse = false
		opts.SkipHeuristics = true
		opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
		o := &Optimizer{Cat: db.Catalog, Opts: opts}
		res, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.BlocksOptimized
	}
	withCutoff := measure(true)
	withoutCutoff := measure(false)
	if withCutoff > withoutCutoff {
		t.Errorf("cut-off should never increase work: %d > %d", withCutoff, withoutCutoff)
	}
}

func TestInterleavingFindsBetterPlan(t *testing.T) {
	// With interleaving (variant 2 = unnest + merge), the framework can
	// choose the Q11 form; verify the chosen form is at least as cheap as
	// both the untransformed and the plain-unnested forms, and that
	// semantics hold.
	db := testkit.TinyDB()
	src := `SELECT e.name FROM emp e, dept d
	        WHERE e.dept_id = d.dept_id AND
	        e.salary > (SELECT AVG(e2.salary) FROM emp e2 WHERE e2.dept_id = e.dept_id)`
	baseline := run(t, db, qtree.MustBind(src, db.Catalog))
	opts := DefaultOptions()
	opts.Strategy = StrategyExhaustive
	got, res := runCBQT(t, db, src, opts)
	if !equalStrs(got, baseline) {
		t.Errorf("interleaving changed semantics:\nwant %v\ngot  %v", baseline, got)
	}
	// All three candidate forms were explored: 1 + 2 variants.
	if res.Stats.StatesByRule["subquery unnesting"] < 3 {
		t.Errorf("expected >= 3 states for interleaved unnesting, got %d",
			res.Stats.StatesByRule["subquery unnesting"])
	}
}

func TestTransformedTreeMatchesPlan(t *testing.T) {
	// The returned query must be the transformed tree, and re-optimizing it
	// must produce the same cost (directive transfer is faithful).
	db := testkit.TinyDB()
	q := qtree.MustBind(table1SQL, db.Catalog)
	o := New(db.Catalog)
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	p := optimizer.New(db.Catalog)
	replan, err := p.Optimize(res.Query)
	if err != nil {
		t.Fatal(err)
	}
	if replan.Cost.Total != res.Plan.Cost.Total {
		t.Errorf("re-optimized cost %v != plan cost %v", replan.Cost.Total, res.Plan.Cost.Total)
	}
}

func TestCBQTPicksCheaperOrEqualPlans(t *testing.T) {
	// The cost of the CBQT-chosen plan must never exceed the cost of the
	// heuristics-only plan (state (0,...) is always a candidate).
	db := testkit.NewDB(testkit.SmallSizes(), 3)
	queries := []string{
		`SELECT e.employee_name FROM employees e
		 WHERE e.salary > (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = e.dept_id)`,
		`SELECT e.employee_name FROM employees e,
		 (SELECT DISTINCT j.dept_id FROM job_history j, departments d WHERE j.dept_id = d.dept_id) v
		 WHERE e.dept_id = v.dept_id`,
		`SELECT d.department_name, SUM(s.amount) FROM departments d, sales s
		 WHERE d.dept_id = s.dept_id GROUP BY d.department_name`,
	}
	for _, src := range queries {
		// Heuristics-only cost.
		qh := qtree.MustBind(src, db.Catalog)
		if err := transform.ApplyHeuristics(qh); err != nil {
			t.Fatal(err)
		}
		ph := optimizer.New(db.Catalog)
		planH, err := ph.Optimize(qh)
		if err != nil {
			t.Fatal(err)
		}
		// CBQT cost.
		qc := qtree.MustBind(src, db.Catalog)
		o := New(db.Catalog)
		res, err := o.Optimize(qc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Cost.Total > planH.Cost.Total*1.0001 {
			t.Errorf("CBQT plan costs more than heuristic plan (%.1f > %.1f)\nsql: %s\nchosen: %s",
				res.Plan.Cost.Total, planH.Cost.Total, src, res.Query.SQL())
		}
	}
}
