package cbqt

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/qtree"
	"repro/internal/testkit"
	"repro/internal/transform"
)

// disabledOptions turns every cost-based transformation off: the
// heuristics-only baseline that every fully degraded search must fall back
// to, and the semantic reference for fault-injection runs.
func disabledOptions() Options {
	opts := DefaultOptions()
	opts.RuleModes = map[string]RuleMode{}
	for _, r := range transform.CostBasedRules() {
		opts.RuleModes[r.Name()] = RuleOff
	}
	opts.Parallelism = 1
	return opts
}

// TestDegradeDeadlineImmediate is the bottom rung of the degradation
// ladder: a deadline too short to cost even one state must still return a
// valid, executable, heuristic-only plan — immediately — and say why.
func TestDegradeDeadlineImmediate(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	baseRows, baseRes := runCBQT(t, db, table2SQL, disabledOptions())

	opts := DefaultOptions()
	opts.Parallelism = 1
	opts.Budget.Timeout = time.Nanosecond
	rows, res := runCBQT(t, db, table2SQL, opts)

	if res.Stats.Degraded != DegradeDeadline {
		t.Fatalf("Degraded = %q, want %q", res.Stats.Degraded, DegradeDeadline)
	}
	if res.Stats.StatesEvaluated != 0 {
		t.Errorf("evaluated %d states under an expired deadline, want 0", res.Stats.StatesEvaluated)
	}
	if got, want := res.Query.SQL(), baseRes.Query.SQL(); got != want {
		t.Errorf("degraded query is not the heuristic-only form:\ngot:  %s\nwant: %s", got, want)
	}
	if !equalStrs(rows, baseRows) {
		t.Errorf("degraded plan changed results (%d rows vs %d)", len(rows), len(baseRows))
	}
}

// TestDegradeDeadlineUnderDelay exercises a deadline that expires during
// the search: every state evaluation is slowed past the budget, so no state
// can be fully costed and the heuristic-only plan must win.
func TestDegradeDeadlineUnderDelay(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	_, baseRes := runCBQT(t, db, table2SQL, disabledOptions())

	opts := DefaultOptions()
	opts.Parallelism = 1
	opts.Budget.Timeout = time.Millisecond
	opts.Faults = faultinject.New(faultinject.Fault{
		Site: "state:*", Kind: faultinject.KindDelay, Delay: 2 * time.Millisecond,
	})
	_, res := runCBQT(t, db, table2SQL, opts)

	if res.Stats.Degraded != DegradeDeadline {
		t.Fatalf("Degraded = %q, want %q", res.Stats.Degraded, DegradeDeadline)
	}
	if got, want := res.Query.SQL(), baseRes.Query.SQL(); got != want {
		t.Errorf("deadline-degraded query is not the heuristic-only form:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestDegradeStateCap pins the state-cap rung: the capped search evaluates
// exactly the granted prefix of the canonical enumeration, so sequential
// and parallel searches degrade to the identical transformed query.
func TestDegradeStateCap(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	baseRows, _ := runCBQT(t, db, table2SQL, disabledOptions())

	run := func(parallelism int) *Result {
		opts := DefaultOptions()
		opts.Parallelism = parallelism
		opts.Budget.MaxStates = 3
		rows, res := runCBQT(t, db, table2SQL, opts)
		if res.Stats.Degraded != DegradeStateCap {
			t.Fatalf("parallelism %d: Degraded = %q, want %q", parallelism, res.Stats.Degraded, DegradeStateCap)
		}
		if res.Stats.StatesEvaluated > 3 {
			t.Errorf("parallelism %d: evaluated %d states, cap is 3", parallelism, res.Stats.StatesEvaluated)
		}
		if !equalStrs(rows, baseRows) {
			t.Errorf("parallelism %d: capped plan changed results", parallelism)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if got, want := par.Query.SQL(), seq.Query.SQL(); got != want {
		t.Errorf("state-capped parallel search chose a different query:\nparallel:   %s\nsequential: %s", got, want)
	}
}

// TestDegradeDepthCap: with a transformation-depth budget of 1, states
// transforming two or more objects are skipped and the skip is recorded.
func TestDegradeDepthCap(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	baseRows, _ := runCBQT(t, db, table2SQL, disabledOptions())

	opts := DefaultOptions()
	opts.Parallelism = 1
	opts.Budget.MaxDepth = 1
	rows, res := runCBQT(t, db, table2SQL, opts)

	// Table 2 has four unnestable subqueries, so weight >= 2 states exist
	// and must have been filtered.
	if res.Stats.Degraded != DegradeDepthCap {
		t.Fatalf("Degraded = %q, want %q", res.Stats.Degraded, DegradeDepthCap)
	}
	if !equalStrs(rows, baseRows) {
		t.Errorf("depth-capped plan changed results")
	}
}

// TestDegradeMemCap: a memory budget smaller than one deep copy of the
// query grants zero states, degrading to the heuristic-only plan.
func TestDegradeMemCap(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	_, baseRes := runCBQT(t, db, table2SQL, disabledOptions())

	opts := DefaultOptions()
	opts.Parallelism = 1
	opts.Budget.MaxMemBytes = 1
	rows, res := runCBQT(t, db, table2SQL, opts)

	if res.Stats.Degraded != DegradeMemCap {
		t.Fatalf("Degraded = %q, want %q", res.Stats.Degraded, DegradeMemCap)
	}
	if got, want := res.Query.SQL(), baseRes.Query.SQL(); got != want {
		t.Errorf("mem-capped query is not the heuristic-only form:\ngot:  %s\nwant: %s", got, want)
	}
	if len(rows) == 0 {
		t.Error("mem-capped plan returned no rows")
	}
}

// TestDegradeCanceled: a cancelled context degrades the search like an
// expired deadline; the returned plan is still valid and executable.
func TestDegradeCanceled(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	baseRows, baseRes := runCBQT(t, db, table2SQL, disabledOptions())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Parallelism = 1
	q := qtree.MustBind(table2SQL, db.Catalog)
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	res, err := o.OptimizeContext(ctx, q)
	if err != nil {
		t.Fatalf("OptimizeContext under cancellation must degrade, not fail: %v", err)
	}
	if res.Stats.Degraded != DegradeCanceled {
		t.Fatalf("Degraded = %q, want %q", res.Stats.Degraded, DegradeCanceled)
	}
	if got, want := res.Query.SQL(), baseRes.Query.SQL(); got != want {
		t.Errorf("cancel-degraded query is not the heuristic-only form:\ngot:  %s\nwant: %s", got, want)
	}
	er, err := exec.Run(db, res.Plan)
	if err != nil {
		t.Fatalf("executing cancel-degraded plan: %v", err)
	}
	rows := make([]string, len(er.Rows))
	for i, r := range er.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		rows[i] = strings.Join(parts, "|")
	}
	sort.Strings(rows)
	if !equalStrs(rows, baseRows) {
		t.Errorf("cancel-degraded plan changed results")
	}
}

// TestNoBudgetNoDegrade: the zero Budget must leave the search untouched.
func TestNoBudgetNoDegrade(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	opts := DefaultOptions()
	opts.Parallelism = 1
	_, res := runCBQT(t, db, table2SQL, opts)
	if res.Stats.Degraded != DegradeNone {
		t.Errorf("Degraded = %q with a zero budget, want none", res.Stats.Degraded)
	}
	if res.Stats.StatesEvaluated == 0 {
		t.Error("zero budget evaluated no states")
	}
}
