package cbqt

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/qtree"
)

// actualRowsRE extracts the logical row counters from an EXPLAIN ANALYZE
// rendering. It is anchored on "actual rows=" so the planner's estimated
// rows= inside cost annotations are not picked up.
var actualRowsRE = regexp.MustCompile(`actual rows=(\d+)`)

func actualRowsSeq(rendered string) string {
	var sb strings.Builder
	for _, m := range actualRowsRE.FindAllStringSubmatch(rendered, -1) {
		sb.WriteString(m[1])
		sb.WriteByte(',')
	}
	return sb.String()
}

// TestAnalyzeRowCountsEngineInvariant pins the engine-independence of the
// EXPLAIN ANALYZE row accounting: for the golden workloads, the top-down
// sequence of per-operator logical row counts must be byte-for-byte
// identical between the batch engine, the row engine, and the committed
// golden snapshot. nexts= and batches= are allowed to differ (they count
// engine calls); actual rows= is not.
func TestAnalyzeRowCountsEngineInvariant(t *testing.T) {
	ctx := context.Background()
	for _, tc := range traceCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Parallelism = 1
			q := qtree.MustBind(tc.sql, tc.db.Catalog)
			o := &Optimizer{Cat: tc.db.Catalog, Opts: opts}
			res, err := o.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			_, rsBatch, err := exec.RunAnalyzeWith(ctx, tc.db, res.Plan, exec.Options{})
			if err != nil {
				t.Fatal(err)
			}
			_, rsRow, err := exec.RunAnalyzeWith(ctx, tc.db, res.Plan, exec.Options{RowExec: true})
			if err != nil {
				t.Fatal(err)
			}
			batchSeq := actualRowsSeq(exec.ExplainAnalyze(res.Plan, rsBatch, false))
			rowSeq := actualRowsSeq(exec.ExplainAnalyze(res.Plan, rsRow, false))
			if batchSeq == "" {
				t.Fatal("no actual rows= counters in the batch rendering")
			}
			if batchSeq != rowSeq {
				t.Errorf("row counts diverge between engines\nbatch: %s\nrow:   %s", batchSeq, rowSeq)
			}

			golden, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+"_analyze.txt"))
			if err != nil {
				t.Fatalf("missing golden snapshot (run TestGoldenExplainAnalyze -update): %v", err)
			}
			if goldenSeq := actualRowsSeq(string(golden)); goldenSeq != batchSeq {
				t.Errorf("row counts diverge from the committed golden\nbatch:  %s\ngolden: %s", batchSeq, goldenSeq)
			}
		})
	}
}
