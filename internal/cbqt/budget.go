package cbqt

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// stack captures the current goroutine stack for TransformError reports.
func stack() string { return string(debug.Stack()) }

// Budget bounds one query's cost-based transformation search (§3's "the
// optimizer must be bounded to be shippable"). A zero field disables that
// bound; the zero Budget is unlimited. Exhausting any bound degrades the
// search gracefully — the driver keeps the best fully-costed state found so
// far (falling back to the heuristic-only form) and records the reason in
// Stats.Degraded — it never fails the query.
type Budget struct {
	// Timeout is the wall-clock budget for the transformation search,
	// measured from the start of OptimizeContext. The final physical
	// optimization of the chosen form always runs, so a plan is returned
	// even at Timeout values too small to cost a single state.
	Timeout time.Duration
	// MaxStates caps transformation states costed across all rules.
	MaxStates int
	// MaxDepth caps the total number of object transformations applied to
	// the query: states needing more transformations than the remaining
	// depth are skipped, and each chosen winner consumes depth equal to its
	// transformed-object count. The analogue of the bottom-up-rewrite
	// papers' bounded rewrite budget.
	MaxDepth int
	// MaxMemBytes caps the approximate bytes held by per-state deep copies
	// of the query tree plus the cost-annotation cache.
	MaxMemBytes int64
}

// DegradeReason says why a search stopped early; empty means it ran to
// completion.
type DegradeReason string

// The degradation reasons, in the order they are documented in EXPLAIN
// output ("degraded: deadline" etc.).
const (
	DegradeNone     DegradeReason = ""
	DegradeDeadline DegradeReason = "deadline"
	DegradeStateCap DegradeReason = "state-cap"
	DegradeDepthCap DegradeReason = "depth-cap"
	DegradeMemCap   DegradeReason = "mem-cap"
	DegradeCanceled DegradeReason = "canceled"
)

// TransformError is a transformation failure (usually a recovered panic)
// converted into data: the search quarantines the rule, keeps the query
// untransformed by it, and carries the error in Stats.TransformErrors.
type TransformError struct {
	// Rule is the transformation (or pseudo-site, e.g. "heuristics") that
	// failed.
	Rule string
	// State is the mixed-radix state being evaluated, when known.
	State string
	// Panic is the recovered panic value, nil for returned errors.
	Panic any
	// Err is the returned error, nil for panics.
	Err error
	// Stack is the goroutine stack captured at recovery time.
	Stack string
}

func (e *TransformError) Error() string {
	what := "error"
	detail := fmt.Sprintf("%v", e.Err)
	if e.Panic != nil {
		what = "panic"
		detail = fmt.Sprintf("%v", e.Panic)
	}
	if e.State != "" {
		return fmt.Sprintf("cbqt: %s in %s state (%s): %s", what, e.Rule, e.State, detail)
	}
	return fmt.Sprintf("cbqt: %s in %s: %s", what, e.Rule, detail)
}

func (e *TransformError) Unwrap() error { return e.Err }

// class is the failure class carried in trace events: "panic" for recovered
// panics, "check" for static-checker violations, "error" for other
// returned errors.
func (e *TransformError) class() string {
	if e.Panic != nil {
		return "panic"
	}
	if _, ok := IsCheckViolation(e.Err); ok {
		return checkEventReason
	}
	return "error"
}

// errBudgetStop tells a search loop to stop and return its best state so
// far. Never escapes the cbqt package.
var errBudgetStop = errors.New("cbqt: budget exhausted, stop search")

// budgetTracker enforces a Budget across the (possibly parallel) search.
// State-count and memory accounting go through reserve, which grants states
// in enumeration order before they are dispatched — so the set of states a
// capped search evaluates is the same prefix of the canonical enumeration
// at every parallelism level, keeping capped searches deterministic. The
// first bound to trip records the sticky degradation reason.
type budgetTracker struct {
	ctx           context.Context
	deadline      time.Time // zero = none
	maxStates     int64     // 0 = unlimited
	maxMem        int64     // 0 = unlimited
	perStateBytes int64     // approx bytes of one deep-copied query tree
	cacheBytes    func() int64

	resMu     sync.Mutex   // serializes reserve's read-modify-write
	states    atomic.Int64 // states granted so far
	depthUsed atomic.Int64

	maxDepth int // 0 = unlimited

	// preSummary is the contract summary of the query a rule search starts
	// from (Options.Check only). o.search writes it before dispatching
	// workers; evalState reads it concurrently but never writes.
	preSummary *check.Summary
	// baseSnap fingerprints the same query's tree (Options.Check only):
	// every evaluated state re-verifies it to prove no transformation
	// mutated the blocks its copy-on-write clone shares with the base.
	// Written with preSummary, read concurrently, never re-written mid-rule.
	baseSnap *check.TreeSnapshot

	mu     sync.Mutex
	reason DegradeReason
}

func newBudgetTracker(ctx context.Context, b Budget, q *qtree.Query, cache *optimizer.CostCache) *budgetTracker {
	if ctx == nil {
		ctx = context.Background()
	}
	t := &budgetTracker{
		ctx:           ctx,
		maxStates:     int64(b.MaxStates),
		maxDepth:      b.MaxDepth,
		maxMem:        b.MaxMemBytes,
		perStateBytes: q.ApproxBytes(),
		cacheBytes:    func() int64 { return 0 },
	}
	if b.Timeout > 0 {
		//lint:allow nodeterm the wall-clock budget is the feature; capped searches stay deterministic because reserve grants states in enumeration order
		t.deadline = time.Now().Add(b.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (t.deadline.IsZero() || d.Before(t.deadline)) {
		t.deadline = d
	}
	if cache != nil {
		t.cacheBytes = cache.ApproxBytes
	}
	return t
}

// trip records the first degradation reason; later trips keep the first.
func (t *budgetTracker) trip(r DegradeReason) {
	t.mu.Lock()
	if t.reason == DegradeNone {
		t.reason = r
	}
	t.mu.Unlock()
}

func (t *budgetTracker) degradeReason() DegradeReason {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reason
}

// expired reports (and records) whether the wall-clock or cancellation
// bounds have tripped.
func (t *budgetTracker) expired() bool {
	select {
	case <-t.ctx.Done():
		t.trip(DegradeCanceled)
		return true
	default:
	}
	//lint:allow nodeterm the wall-clock budget is the feature; expiry degrades the search to its best state, recorded in Stats.Degraded
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		t.trip(DegradeDeadline)
		return true
	}
	return false
}

// reserve grants permission to cost up to n more states and returns how
// many were granted (0..n). The grant depends only on the totals reserved
// so far, never on goroutine scheduling, so trimming a parallel batch to
// its granted prefix evaluates exactly the states the sequential search
// would.
func (t *budgetTracker) reserve(n int) int {
	if n <= 0 {
		return 0
	}
	if t.expired() {
		return 0
	}
	t.resMu.Lock()
	defer t.resMu.Unlock()
	granted := int64(n)
	used := t.states.Load()
	if t.maxStates > 0 && used+granted > t.maxStates {
		granted = t.maxStates - used
		if granted < 0 {
			granted = 0
		}
		t.trip(DegradeStateCap)
	}
	if t.maxMem > 0 && t.perStateBytes > 0 {
		avail := t.maxMem - t.cacheBytes() - used*t.perStateBytes
		if byMem := avail / t.perStateBytes; byMem < granted {
			if byMem < 0 {
				byMem = 0
			}
			granted = byMem
			t.trip(DegradeMemCap)
		}
	}
	t.states.Add(granted)
	return int(granted)
}

// allowWeight reports whether a state applying w object transformations
// fits in the remaining transformation depth. A pure function of the state
// and the depth consumed by already-chosen winners, so filtering is
// deterministic at any parallelism.
func (t *budgetTracker) allowWeight(w int) bool {
	if t.maxDepth <= 0 || w == 0 {
		return true
	}
	if int64(w)+t.depthUsed.Load() > int64(t.maxDepth) {
		t.trip(DegradeDepthCap)
		return false
	}
	return true
}

// noteDepth consumes depth for a chosen winner.
func (t *budgetTracker) noteDepth(w int) {
	if w > 0 {
		t.depthUsed.Add(int64(w))
	}
}

// weight is the number of transformed (non-zero) objects in a state.
func weight(s state) int {
	w := 0
	for _, v := range s {
		if v != 0 {
			w++
		}
	}
	return w
}
