package cbqt

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exec"
	"repro/internal/obsv"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// traceCases are the two paper workloads the trace and EXPLAIN ANALYZE
// goldens pin: the Table 1 query on the tiny emp/dept/proj schema and the
// Table 2 query on the HR/OE demo schema.
func traceCases() []struct {
	name string
	db   *storage.DB
	sql  string
} {
	return []struct {
		name string
		db   *storage.DB
		sql  string
	}{
		{name: "q1_table1", db: testkit.TinyDB(), sql: table1SQL},
		{name: "table2", db: testkit.NewDB(testkit.SmallSizes(), 7), sql: table2SQL},
	}
}

var traceStrategies = []struct {
	name  string
	strat Strategy
}{
	{"exhaustive", StrategyExhaustive},
	{"linear", StrategyLinear},
	{"two-pass", StrategyTwoPass},
	{"iterative", StrategyIterative},
}

// optimizeTraced runs one CBQT optimization with tracing on and returns the
// result; parallelism is the worker count under test.
func optimizeTraced(t *testing.T, db *storage.DB, sql string, strat Strategy, parallelism int) *Result {
	t.Helper()
	opts := DefaultOptions()
	opts.Strategy = strat
	opts.Parallelism = parallelism
	opts.Trace = true
	q := qtree.MustBind(sql, db.Catalog)
	o := &Optimizer{Cat: db.Catalog, Opts: opts}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareGolden checks got against the snapshot at path, or rewrites the
// snapshot under -update.
func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden snapshot %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("snapshot diverged from %s:\n--- got ---\n%s\n--- want ---\n%s\ndiff starts at %q",
			path, got, want, firstDiff(got, string(want)))
	}
}

// TestGoldenTrace pins the normalized JSONL search trace of the Table 1 and
// Table 2 queries under every search strategy. The normalized form strips
// timings and work counters and collapses the cost cut-off's run-dependent
// costed/cut split, so the snapshots are byte-stable across machines and
// worker counts; refresh intentionally with
//
//	go test ./internal/cbqt/ -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	for _, tc := range traceCases() {
		for _, st := range traceStrategies {
			t.Run(tc.name+"/"+st.name, func(t *testing.T) {
				res := optimizeTraced(t, tc.db, tc.sql, st.strat, 1)
				got := obsv.MarshalJSONL(obsv.Normalize(res.Stats.Events))
				path := filepath.Join("testdata", "golden", tc.name+"_"+st.name+"_trace.jsonl")
				compareGolden(t, path, got)
			})
		}
	}
}

// TestGoldenTraceParallelByteIdentical is the acceptance check for the
// deterministic-trace guarantee: on the Table 2 query, the normalized JSONL
// trace is byte-identical at every worker count, and for the exhaustive
// strategy it equals the committed golden snapshot — so the guarantee is
// pinned against a file in the repository, not only against another run.
func TestGoldenTraceParallelByteIdentical(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	for _, st := range traceStrategies {
		t.Run(st.name, func(t *testing.T) {
			base := obsv.MarshalJSONL(obsv.Normalize(optimizeTraced(t, db, table2SQL, st.strat, 1).Stats.Events))
			for _, par := range []int{2, 8} {
				got := obsv.MarshalJSONL(obsv.Normalize(optimizeTraced(t, db, table2SQL, st.strat, par).Stats.Events))
				if got != base {
					t.Errorf("parallelism %d normalized trace differs from parallelism 1:\n--- par %d ---\n%s\n--- par 1 ---\n%s\ndiff starts at %q",
						par, par, got, base, firstDiff(got, base))
				}
			}
			if st.strat != StrategyExhaustive || *updateGolden {
				return
			}
			path := filepath.Join("testdata", "golden", "table2_exhaustive_trace.jsonl")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot %s (run TestGoldenTrace with -update to create): %v", path, err)
			}
			if base != string(want) {
				t.Errorf("normalized trace diverged from committed golden %s:\ndiff starts at %q",
					path, firstDiff(base, string(want)))
			}
		})
	}
}

// TestTraceStateCountMatchesStats checks the accounting invariant between
// the structured trace and the summary statistics: the number of EvState
// events whose outcome is costed or cut equals Stats.StatesEvaluated
// (infeasible, faulted and budget-stopped states are excluded from both), at
// every strategy and worker count.
func TestTraceStateCountMatchesStats(t *testing.T) {
	for _, tc := range traceCases() {
		for _, st := range traceStrategies {
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/par%d", tc.name, st.name, par), func(t *testing.T) {
					res := optimizeTraced(t, tc.db, tc.sql, st.strat, par)
					evaluated := 0
					for _, e := range res.Stats.Events {
						if e.Ev != obsv.EvState {
							continue
						}
						switch e.Outcome {
						case obsv.OutcomeCosted, obsv.OutcomeCut:
							evaluated++
						}
					}
					if evaluated != res.Stats.StatesEvaluated {
						t.Errorf("trace has %d costed/cut state events, Stats.StatesEvaluated = %d",
							evaluated, res.Stats.StatesEvaluated)
					}
					if len(res.Stats.Trace) != res.Stats.StatesEvaluated {
						t.Errorf("Stats.Trace has %d entries, Stats.StatesEvaluated = %d",
							len(res.Stats.Trace), res.Stats.StatesEvaluated)
					}
				})
			}
		}
	}
}

// TestGoldenExplainAnalyze pins the EXPLAIN ANALYZE rendering of the Table 1
// and Table 2 plans. Wall-clock times are excluded (withTime=false); row
// counts, call counts and memory high-water marks are deterministic for a
// fixed seed because memory is computed from buffered row counts with a
// fixed per-row formula, so the full annotation is snapshot-stable.
func TestGoldenExplainAnalyze(t *testing.T) {
	for _, tc := range traceCases() {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Parallelism = 1
			q := qtree.MustBind(tc.sql, tc.db.Catalog)
			o := &Optimizer{Cat: tc.db.Catalog, Opts: opts}
			res, err := o.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			r, rs, err := exec.RunAnalyze(context.Background(), tc.db, res.Plan)
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("-- plan (analyzed, %d result rows) --\n%s",
				len(r.Rows), exec.ExplainAnalyze(res.Plan, rs, false))
			path := filepath.Join("testdata", "golden", tc.name+"_analyze.txt")
			compareGolden(t, path, got)
		})
	}
}

// invariantSQL lists queries whose analyzed plans cover every operator the
// row-count invariants constrain: joins in all paper variants (Table 2),
// window functions, set operations, aggregation, sorting and ROWNUM limits.
var invariantSQL = []struct {
	name string
	sql  string
}{
	{"table2", table2SQL},
	{"window", `SELECT e.employee_name, e.dept_id, SUM(e.salary) OVER (PARTITION BY e.dept_id) s
FROM employees e WHERE e.salary > 100`},
	{"setop", `SELECT e.dept_id c0 FROM employees e UNION SELECT d.dept_id c0 FROM departments d`},
	{"setop_minus", `SELECT d.dept_id c0 FROM departments d MINUS SELECT e.dept_id c0 FROM employees e WHERE e.salary > 500`},
	{"agg_order", `SELECT e.dept_id, COUNT(*) c FROM employees e GROUP BY e.dept_id ORDER BY c DESC`},
	{"rownum", `SELECT e.employee_name FROM employees e WHERE ROWNUM <= 7`},
}

// TestExplainAnalyzeRowInvariants executes a spread of plans under EXPLAIN
// ANALYZE and checks parent/child row-count consistency for every operator,
// including subquery plans. The bounds are conservative: they hold across
// re-opened subtrees (counters accumulate over opens) and early termination
// (a parent that stops pulling leaves a child partially drained).
func TestExplainAnalyzeRowInvariants(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	for _, tc := range invariantSQL {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Parallelism = 1
			q := qtree.MustBind(tc.sql, db.Catalog)
			o := &Optimizer{Cat: db.Catalog, Opts: opts}
			res, err := o.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			r, rs, err := exec.RunAnalyze(context.Background(), db, res.Plan)
			if err != nil {
				t.Fatal(err)
			}
			if root := rs.Ops[res.Plan.Root]; root == nil {
				t.Fatalf("no runtime counters for the plan root")
			} else if root.Rows != int64(len(r.Rows)) {
				t.Errorf("root operator returned %d rows, result has %d", root.Rows, len(r.Rows))
			}
			checkRowInvariants(t, res.Plan.Root, rs)
			for _, sp := range res.Plan.Subplans {
				checkRowInvariants(t, sp.Root, rs)
			}
		})
	}
}

// checkRowInvariants walks the plan asserting per-operator row-count bounds
// against the EXPLAIN ANALYZE counters.
func checkRowInvariants(t *testing.T, root optimizer.PlanNode, rs *exec.RunStats) {
	t.Helper()
	rows := func(n optimizer.PlanNode) int64 {
		if st := rs.Ops[n]; st != nil {
			return st.Rows
		}
		return 0
	}
	optimizer.Walk(root, func(n optimizer.PlanNode) {
		st := rs.Ops[n]
		if st == nil {
			// Never built (subplan pruned before instrumentation); nothing
			// to check.
			return
		}
		if st.Batches > 0 {
			// Vectorized operator: Nexts counts NextBatch calls, so the
			// per-row Next bound does not apply; each counted batch is
			// non-empty and every batch comes from one NextBatch call.
			if st.Rows < st.Batches {
				t.Errorf("%s: %d rows over %d batches (empty batches leaked)", n.Label(), st.Rows, st.Batches)
			}
			if st.Nexts < st.Batches {
				t.Errorf("%s: %d batches from only %d NextBatch calls", n.Label(), st.Batches, st.Nexts)
			}
		} else if st.Rows > 0 && st.Nexts < st.Rows {
			t.Errorf("%s: %d rows from only %d Next calls", n.Label(), st.Rows, st.Nexts)
		}
		out := st.Rows
		switch v := n.(type) {
		case *optimizer.Filter, *optimizer.Project, *optimizer.Distinct,
			*optimizer.Sort, *optimizer.Window:
			// One input, output never exceeds it (sort/window reproduce their
			// input exactly but a parent may stop pulling early).
			in := rows(n.Children()[0])
			if out > in {
				t.Errorf("%s: %d output rows > %d input rows", n.Label(), out, in)
			}
		case *optimizer.Limit:
			if max := v.N * maxI64(st.Opens, 1); out > max {
				t.Errorf("Limit %d: %d output rows over %d opens", v.N, out, st.Opens)
			}
		case *optimizer.Join:
			l, r := rows(v.L), rows(v.R)
			// The product bound, padded for outer-join null extension. It
			// holds under lateral caching too: a cached right side executes
			// once, so r is the per-key row count and out <= l*r.
			if max := maxI64(l, 1)*maxI64(r, 1) + l + r; out > max {
				t.Errorf("%s: %d output rows from %d x %d input rows", n.Label(), out, l, r)
			}
		case *optimizer.Agg:
			in := rows(v.Child)
			sets := int64(len(v.GroupingSets))
			if sets == 0 {
				sets = 1
			}
			// At most one group per input row per grouping set; a scalar
			// aggregate emits one row per open even on empty input.
			if max := (in + maxI64(st.Opens, 1)) * sets; out > max {
				t.Errorf("%s: %d output rows from %d input rows (%d sets)", n.Label(), out, in, sets)
			}
		case *optimizer.SetNode:
			var in int64
			for _, c := range v.Inputs {
				in += rows(c)
			}
			// UNION/INTERSECT/MINUS only ever drop rows; UNION ALL keeps all.
			if out > in {
				t.Errorf("%s: %d output rows > %d total input rows", n.Label(), out, in)
			}
		}
	})
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
