package cbqt

import (
	"testing"

	"repro/internal/qtree"
	"repro/internal/testkit"
)

// TestNoOpSearchPerformsNoCopies is the regression test for the latent
// double-clone on the quarantine paths: protectedHeuristics and applyWinner
// used to take a full defensive deep copy of the query before every rule so
// they could restore it on a fault. With copy-on-write clones that copying
// is deferred to the first materialization, so optimizing a query no rule
// can touch must perform zero deep clones AND zero block materializations —
// the whole run works on shared blocks. The cbqt suite never calls
// t.Parallel, so the process-wide qtree copy counters delta is this test's
// alone.
func TestNoOpSearchPerformsNoCopies(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind("SELECT e.NAME FROM EMP e WHERE e.SALARY > 10", db.Catalog)

	opts := DefaultOptions()
	opts.Parallelism = 1
	full0, _, mat0 := qtree.CopyCounters()
	if _, err := (&Optimizer{Cat: db.Catalog, Opts: opts}).Optimize(q); err != nil {
		t.Fatal(err)
	}
	full1, _, mat1 := qtree.CopyCounters()

	if d := full1 - full0; d != 0 {
		t.Errorf("no-op optimization performed %d deep clones, want 0", d)
	}
	if d := mat1 - mat0; d != 0 {
		t.Errorf("no-op optimization materialized %d blocks, want 0", d)
	}
}
