package cbqt

import (
	"testing"

	"repro/internal/testkit"
	"repro/internal/transform"
	"repro/internal/workload"
)

// TestDifferentialOracle is the safety net for the parallel search engine:
// a seeded sample of generated workload queries is optimized three ways —
// cost-based transformation disabled entirely, sequential CBQT, and
// parallel CBQT — each chosen plan is executed, and all three must return
// identical (sorted) result rows. Any transformation, search or
// concurrency bug that changes query semantics surfaces here as a row
// diff on real data.
func TestDifferentialOracle(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(11, 120, s.Employees, s.Departments, s.Jobs)
	// The paper's 8% relevant fraction would leave most samples as plain
	// SPJ; bias the oracle towards queries CBQT actually transforms.
	cfg.RelevantFraction = 0.7
	queries := workload.Generate(cfg)
	if len(queries) < 100 {
		t.Fatalf("generated only %d queries, want >= 100", len(queries))
	}

	disabled := DefaultOptions()
	disabled.RuleModes = map[string]RuleMode{}
	for _, r := range transform.CostBasedRules() {
		disabled.RuleModes[r.Name()] = RuleOff
	}
	disabled.Parallelism = 1

	sequential := DefaultOptions()
	sequential.Parallelism = 1

	parallel := DefaultOptions()
	parallel.Parallelism = 8

	for _, wq := range queries {
		off, _ := runCBQT(t, db, wq.SQL, disabled)
		seq, resSeq := runCBQT(t, db, wq.SQL, sequential)
		par, resPar := runCBQT(t, db, wq.SQL, parallel)
		if !equalStrs(seq, off) {
			t.Errorf("query %d (%s): sequential CBQT changed results (%d rows vs %d)\nsql: %s\ntransformed: %s",
				wq.ID, wq.Class, len(seq), len(off), wq.SQL, resSeq.Query.SQL())
		}
		if !equalStrs(par, off) {
			t.Errorf("query %d (%s): parallel CBQT changed results (%d rows vs %d)\nsql: %s\ntransformed: %s",
				wq.ID, wq.Class, len(par), len(off), wq.SQL, resPar.Query.SQL())
		}
		// Parallel and sequential CBQT must also agree on the chosen
		// transformed query itself, not just its results.
		if got, want := resPar.Query.SQL(), resSeq.Query.SQL(); got != want {
			t.Errorf("query %d (%s): parallel chose a different transformed query\nsql: %s\nparallel:   %s\nsequential: %s",
				wq.ID, wq.Class, wq.SQL, got, want)
		}
	}
}
