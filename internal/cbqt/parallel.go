package cbqt

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/transform"
)

// The parallel state-evaluation engine. Every transformation state is
// costed on an independent deep copy of the query (§3.1), which makes the
// state-space searches embarrassingly parallel: the Exhaustive, Linear and
// Two-Pass strategies fan their states out to a bounded worker pool. Three
// pieces of shared state make this safe and deterministic:
//
//   - the §3.4.2 annotation cache is sharded with a mutex per shard
//     (optimizer.CostCache);
//   - the §3.4.1 cost cut-off propagates through a prefix bound
//     (prefixBound): the cut-off a worker applies to state i is the minimum
//     cost among the *already-completed states that precede i in
//     enumeration order* (plus the batch seed). A sequential search prunes
//     state i against the minimum over its whole enumeration prefix, so the
//     parallel bound is never tighter — the parallel run fully costs a
//     superset of the states the sequential run costs, and pruning can
//     never hide the true winner. The surplus fully-costed states all cost
//     more than the sequential bound at their position, which is exactly
//     the run-dependent split obsv.Normalize collapses, making normalized
//     search traces byte-identical at every worker count;
//   - per-worker Stats counters and trace buffers are merged in state
//     enumeration order, and the winner is the minimum-cost state with
//     ties broken by enumeration order (the state's mixed-radix key),
//     never by completion order — so the chosen state, its cost and the
//     final plan are bit-for-bit identical at every parallelism level.
//
// The budget and fault-isolation layer preserves that determinism: state
// caps trim a batch to its granted prefix of the enumeration before
// dispatch (budgetTracker.reserve), and a panicking state quarantines its
// rule identically at every worker count because mergeBatch surfaces the
// first failure by enumeration order, not the first in time. Each worker
// additionally recovers panics around every state it claims, so one bad
// rewrite can never wedge the pool.

// parallelism resolves Options.Parallelism to a concrete worker count.
func (o *Optimizer) parallelism() int {
	if p := o.Opts.Parallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// prefixBound is the deterministic §3.4.1 cost cut-off of one parallel
// batch. Completed state costs are recorded per enumeration index, and the
// bound applied to state i is min(seed, completed costs of states j < i) —
// never the cost of a later-enumerated state, however early it completed.
// That keeps every parallel bound at or above the sequential search's bound
// at the same position, so the parallel run prunes a subset of what the
// sequential run prunes and obsv.Normalize can reconcile the difference
// exactly (see the package comment).
type prefixBound struct {
	seed  float64
	mu    sync.Mutex
	costs []float64 // +Inf until state j completes with a finite cost
}

func newPrefixBound(seed float64, n int) *prefixBound {
	b := &prefixBound{seed: seed, costs: make([]float64, n)}
	for i := range b.costs {
		b.costs[i] = math.Inf(1)
	}
	return b
}

// boundFor returns the cut-off for state i. Missing a concurrent completion
// only raises the bound, which weakens pruning but never admits a bound the
// sequential search would not have reached.
func (b *prefixBound) boundFor(i int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.seed
	for j := 0; j < i && j < len(b.costs); j++ {
		if b.costs[j] < m {
			m = b.costs[j]
		}
	}
	return m
}

// complete records state i's cost (+Inf for abandoned states is a no-op on
// every later minimum).
func (b *prefixBound) complete(i int, cost float64) {
	b.mu.Lock()
	if i >= 0 && i < len(b.costs) {
		b.costs[i] = cost
	}
	b.mu.Unlock()
}

// stateEvalResult is one state's outcome from a parallel batch.
type stateEvalResult struct {
	cost  float64
	err   error
	stats Stats
}

// evalBatch evaluates the given states concurrently on up to par workers
// and returns the per-state results in input order. Each worker records
// its counters and trace into the result slot's private Stats, so no two
// goroutines share a Stats value. bound carries the deterministic prefix
// cost cut-off: state i prunes against the completed costs of states
// before it in enumeration order only.
//
// Every result slot starts as errBudgetStop and is overwritten when its
// state is actually evaluated: a worker that stops claiming states (wall
// clock expired) leaves the rest of the batch marked "skipped by budget",
// never silently costed at zero. A panic escaping evalState's own recovery
// is caught at the worker too, so the pool always drains.
func (o *Optimizer) evalBatch(q *qtree.Query, r transform.Rule, states []state, cache *optimizer.CostCache, bound *prefixBound, tracker *budgetTracker, par int) []stateEvalResult {
	results := make([]stateEvalResult, len(states))
	for i := range results {
		results[i].err = errBudgetStop
	}
	if par > len(states) {
		par = len(states)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(states) {
					return
				}
				func() {
					res := &results[i]
					defer func() {
						if p := recover(); p != nil {
							res.err = &TransformError{Rule: r.Name(), State: stateKey(states[i]), Panic: p, Stack: stack()}
						}
					}()
					if tracker.expired() {
						return // res.err stays errBudgetStop
					}
					res.cost, res.err = o.evalState(q, r, states[i], cache, bound.boundFor(i), &res.stats, tracker)
					if res.err == nil {
						bound.complete(i, res.cost)
					}
				}()
			}
		}()
	}
	wg.Wait()
	return results
}

// mergeBatch folds the per-state results into stats in state enumeration
// order and selects the winner: the minimum-cost feasible state, ties
// broken by the smaller enumeration index. It returns the winner's index
// (-1 when no state was costed below +Inf), its cost, the number of states
// successfully costed, and the first (by enumeration order) error that is
// neither "state infeasible" nor "skipped by budget".
func mergeBatch(results []stateEvalResult, stats *Stats) (bestIdx int, bestCost float64, count int, err error) {
	bestIdx, bestCost = -1, math.Inf(1)
	for i := range results {
		res := &results[i]
		stats.BlocksOptimized += res.stats.BlocksOptimized
		stats.AnnotationHits += res.stats.AnnotationHits
		stats.CheckViolations += res.stats.CheckViolations
		stats.MemoSharedBlocks += res.stats.MemoSharedBlocks
		stats.MemoMaterializedBlocks += res.stats.MemoMaterializedBlocks
		stats.MemoStateBytes += res.stats.MemoStateBytes
		stats.Trace = append(stats.Trace, res.stats.Trace...)
		stats.Events = append(stats.Events, res.stats.Events...)
		stats.TransformErrors = append(stats.TransformErrors, res.stats.TransformErrors...)
		if res.err != nil {
			if !errors.Is(res.err, errInfeasible) && !errors.Is(res.err, errBudgetStop) && err == nil {
				err = res.err
			}
			continue
		}
		count++
		if res.cost < bestCost {
			bestCost, bestIdx = res.cost, i
		}
	}
	return bestIdx, bestCost, count, err
}

// enumerateStates lists every state of the mixed-radix space in canonical
// enumeration order — digit 0 least significant, exactly the order the
// sequential exhaustive counter visits.
func enumerateStates(variants []int) []state {
	n := len(variants)
	total := 1
	for _, v := range variants {
		total *= v + 1
	}
	out := make([]state, 0, total)
	cur := make(state, n)
	for {
		out = append(out, cur.clone())
		i := 0
		for i < n {
			cur[i]++
			if cur[i] <= variants[i] {
				break
			}
			cur[i] = 0
			i++
		}
		if i == n {
			return out
		}
	}
}

// searchExhaustiveParallel is searchExhaustive with the whole state space
// fanned out to the worker pool at once. A state cap trims the space to the
// same enumeration prefix the sequential search would evaluate.
func (o *Optimizer) searchExhaustiveParallel(q *qtree.Query, r transform.Rule, variants []int, cache *optimizer.CostCache, stats *Stats, tracker *budgetTracker, par int) (state, int, error) {
	states := enumerateStates(variants)
	granted := tracker.reserve(len(states))
	if granted == 0 {
		return make(state, len(variants)), 0, nil
	}
	states = states[:granted]
	results := o.evalBatch(q, r, states, cache, newPrefixBound(math.Inf(1), len(states)), tracker, par)
	bestIdx, _, count, err := mergeBatch(results, stats)
	if err != nil {
		return nil, count, err
	}
	if bestIdx < 0 {
		// Everything infeasible or abandoned: keep the untransformed state,
		// as the sequential search does.
		return make(state, len(variants)), count, nil
	}
	return states[bestIdx], count, nil
}

// searchLinearParallel runs the §3.2 linear search with the variants of
// each object evaluated concurrently. The per-object decisions remain
// sequential (each fixes the context of the next), matching the sequential
// search: object i keeps variant v only if it lowers the best cost, ties
// going to the smaller v.
func (o *Optimizer) searchLinearParallel(q *qtree.Query, r transform.Rule, variants []int, cache *optimizer.CostCache, stats *Stats, tracker *budgetTracker, par int) (state, int, error) {
	n := len(variants)
	cur := make(state, n)
	if tracker.reserve(1) == 0 {
		return cur, 0, nil
	}
	bestCost, err := o.evalState(q, r, cur, cache, 0, stats, tracker)
	if err != nil {
		if errors.Is(err, errBudgetStop) || errors.Is(err, errInfeasible) {
			return cur, 0, nil
		}
		return nil, 1, err
	}
	count := 1
	for i := 0; i < n; i++ {
		trials := make([]state, 0, variants[i])
		for v := 1; v <= variants[i]; v++ {
			trial := cur.clone()
			trial[i] = v
			trials = append(trials, trial)
		}
		if len(trials) == 0 {
			continue
		}
		granted := tracker.reserve(len(trials))
		capped := granted < len(trials)
		trials = trials[:granted]
		if granted > 0 {
			results := o.evalBatch(q, r, trials, cache, newPrefixBound(bestCost, len(trials)), tracker, par)
			bestIdx, cost, batchCount, err := mergeBatch(results, stats)
			count += batchCount
			if err != nil {
				return nil, count, err
			}
			if bestIdx >= 0 && cost < bestCost {
				bestCost = cost
				cur[i] = bestIdx + 1
			}
		}
		if capped {
			return cur, count, nil // degraded mid-object, decisions so far stand
		}
	}
	return cur, count, nil
}

// searchTwoPassParallel evaluates the all-untransformed and all-transformed
// states (§3.2) concurrently. Sequentially the zero state's cost seeds the
// cut-off for the transformed state; in parallel the prefix bound applies
// the zero state's cost to the transformed state only once the zero state
// has completed — never the reverse — so pruning stays a subset of the
// sequential search's and the comparison is unchanged.
func (o *Optimizer) searchTwoPassParallel(q *qtree.Query, r transform.Rule, variants []int, cache *optimizer.CostCache, stats *Stats, tracker *budgetTracker, par int) (state, int, error) {
	n := len(variants)
	zero := make(state, n)
	all := make(state, n)
	for i := range all {
		all[i] = 1 // first variant of every object
	}
	granted := tracker.reserve(2)
	if granted == 0 {
		return zero, 0, nil
	}
	states := []state{zero, all}[:granted]
	results := o.evalBatch(q, r, states, cache, newPrefixBound(math.Inf(1), len(states)), tracker, par)
	bestIdx, _, count, err := mergeBatch(results, stats)
	if zerr := results[0].err; zerr != nil {
		if errors.Is(zerr, errInfeasible) || errors.Is(zerr, errBudgetStop) {
			// Degraded or fault-skipped baseline: stay untransformed, as the
			// sequential search does.
			return zero, count, nil
		}
		// A genuinely uncostable zero state is a driver bug; mirror the
		// sequential search and fail.
		return nil, count, zerr
	}
	if err != nil {
		return nil, count, err
	}
	if bestIdx == 1 {
		return all, count, nil
	}
	return zero, count, nil
}
