package cbqt

import (
	"testing"

	"repro/internal/qtree"
	"repro/internal/testkit"
)

// FuzzCOWClone cross-checks the copy-on-write state memo against the legacy
// full-clone evaluation on arbitrary SQL: both modes must reach the same
// transformed query, the same winner cost, the same state count — or fail
// with the same error. The seed corpus covers the paper's Table 2 subquery
// family plus the single-table shapes the heuristics consume; the fuzzer
// mutates from there. Options.Check arms the aliasing checker and the base
// tree snapshot on every evaluated state, so a sharing violation fails the
// COW run outright rather than silently diverging.
func FuzzCOWClone(f *testing.F) {
	seeds := []string{
		// Table 2 flavours: correlated EXISTS / NOT EXISTS over two and
		// three tables, none consumed by the imperative heuristics.
		`SELECT e.employee_name, d.department_name FROM employees e, departments d
WHERE e.dept_id = d.dept_id AND
  EXISTS (SELECT 1 FROM sales s, departments ds WHERE s.dept_id = ds.dept_id AND s.emp_id = e.emp_id AND s.amount > 400)`,
		`SELECT e.employee_name FROM employees e
WHERE NOT EXISTS (SELECT 1 FROM job_history j, jobs jb WHERE j.job_id = jb.job_id AND j.emp_id = e.emp_id AND j.start_date > '19960101')`,
		`SELECT e.employee_name FROM employees e, departments d
WHERE e.dept_id = d.dept_id AND
  EXISTS (SELECT 1 FROM job_history h, departments dh, locations lh WHERE h.dept_id = dh.dept_id AND dh.loc_id = lh.loc_id AND h.emp_id = e.emp_id) AND
  NOT EXISTS (SELECT 1 FROM sales s WHERE s.emp_id = e.emp_id AND s.amount > 900)`,
		// Single-table subqueries (heuristic unnesting), views and grouping.
		`SELECT e.employee_name FROM employees e WHERE e.dept_id IN (SELECT d.dept_id FROM departments d WHERE d.loc_id = 3)`,
		`SELECT v.dept_id, v.avg_sal FROM (SELECT e.dept_id, AVG(e.salary) avg_sal FROM employees e GROUP BY e.dept_id) v WHERE v.avg_sal > 100`,
		`SELECT e.employee_name FROM employees e WHERE e.salary > (SELECT AVG(x.salary) FROM employees x WHERE x.dept_id = e.dept_id)`,
		`SELECT e.emp_id FROM employees e UNION ALL SELECT j.emp_id FROM job_history j`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := testkit.NewDB(testkit.SmallSizes(), 7)

	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 4096 {
			t.Skip("oversized input")
		}
		qFull, err := qtree.BindSQL(sql, db.Catalog)
		if err != nil {
			t.Skip("unbindable input")
		}
		qCOW, err := qtree.BindSQL(sql, db.Catalog)
		if err != nil {
			t.Skip("unbindable input")
		}

		full := DefaultOptions()
		full.Parallelism = 1
		full.Check = true
		full.FullCloneStates = true

		cow := DefaultOptions()
		cow.Parallelism = 1
		cow.Check = true

		resFull, errFull := (&Optimizer{Cat: db.Catalog, Opts: full}).Optimize(qFull)
		resCOW, errCOW := (&Optimizer{Cat: db.Catalog, Opts: cow}).Optimize(qCOW)

		if (errFull == nil) != (errCOW == nil) {
			t.Fatalf("error divergence\nsql: %s\nfull-clone err: %v\ncow err:        %v", sql, errFull, errCOW)
		}
		if errFull != nil {
			if errFull.Error() != errCOW.Error() {
				t.Fatalf("different errors\nsql: %s\nfull-clone: %v\ncow:        %v", sql, errFull, errCOW)
			}
			return
		}
		if got, want := resCOW.Query.SQL(), resFull.Query.SQL(); got != want {
			t.Fatalf("transformed query divergence\nsql: %s\ncow:        %s\nfull-clone: %s", sql, got, want)
		}
		if got, want := resCOW.Plan.Cost.Total, resFull.Plan.Cost.Total; got != want {
			t.Fatalf("winner cost divergence: cow %v, full-clone %v\nsql: %s", got, want, sql)
		}
		if got, want := resCOW.Stats.StatesEvaluated, resFull.Stats.StatesEvaluated; got != want {
			t.Fatalf("state count divergence: cow %d, full-clone %d\nsql: %s", got, want, sql)
		}
	})
}
