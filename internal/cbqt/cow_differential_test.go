package cbqt

import (
	"testing"

	"repro/internal/testkit"
	"repro/internal/workload"
)

// TestDifferentialCOW is the safety net for the copy-on-write state memo:
// every sampled workload query is optimized twice — once with
// Options.FullCloneStates (the legacy deep copy per state) and once with COW
// clones — and the two runs must agree exactly: same transformed query, same
// plan cost, same number of states evaluated, and row-for-row identical
// execution output. Any block-sharing bug that lets one state's rewrite leak
// into another state, the base query, or the winner surfaces here. Run under
// -race in CI, the shared-block reads across worker goroutines are also
// checked for data races.
func TestDifferentialCOW(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(13, 120, s.Employees, s.Departments, s.Jobs)
	// Bias the sample towards queries CBQT actually transforms, as the
	// parallel differential oracle does.
	cfg.RelevantFraction = 0.7
	queries := workload.Generate(cfg)
	if len(queries) < 100 {
		t.Fatalf("generated only %d queries, want >= 100", len(queries))
	}

	full := DefaultOptions()
	full.Parallelism = 1
	full.FullCloneStates = true

	cow := DefaultOptions()
	cow.Parallelism = 1

	cowPar := DefaultOptions()
	cowPar.Parallelism = 8

	for _, wq := range queries {
		rowsFull, resFull := runCBQT(t, db, wq.SQL, full)
		rowsCOW, resCOW := runCBQT(t, db, wq.SQL, cow)
		rowsPar, resPar := runCBQT(t, db, wq.SQL, cowPar)

		if got, want := resCOW.Query.SQL(), resFull.Query.SQL(); got != want {
			t.Errorf("query %d (%s): COW chose a different transformed query\nsql: %s\ncow:        %s\nfull-clone: %s",
				wq.ID, wq.Class, wq.SQL, got, want)
		}
		if got, want := resCOW.Plan.Cost.Total, resFull.Plan.Cost.Total; got != want {
			t.Errorf("query %d (%s): COW winner cost %v != full-clone %v\nsql: %s",
				wq.ID, wq.Class, got, want, wq.SQL)
		}
		if got, want := resCOW.Stats.StatesEvaluated, resFull.Stats.StatesEvaluated; got != want {
			t.Errorf("query %d (%s): COW evaluated %d states, full-clone %d\nsql: %s",
				wq.ID, wq.Class, got, want, wq.SQL)
		}
		if !equalStrs(rowsCOW, rowsFull) {
			t.Errorf("query %d (%s): COW changed results (%d rows vs %d)\nsql: %s\ntransformed: %s",
				wq.ID, wq.Class, len(rowsCOW), len(rowsFull), wq.SQL, resCOW.Query.SQL())
		}
		// Parallel COW against the sequential full-clone baseline: the memo
		// must stay exact when states sharing the base are evaluated
		// concurrently.
		if got, want := resPar.Query.SQL(), resFull.Query.SQL(); got != want {
			t.Errorf("query %d (%s): parallel COW chose a different transformed query\nsql: %s\nparallel cow: %s\nfull-clone:   %s",
				wq.ID, wq.Class, wq.SQL, got, want)
		}
		if !equalStrs(rowsPar, rowsFull) {
			t.Errorf("query %d (%s): parallel COW changed results (%d rows vs %d)\nsql: %s",
				wq.ID, wq.Class, len(rowsPar), len(rowsFull), wq.SQL)
		}
	}
}
