package cbqt

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/check"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/transform"
)

// infeasible marks states whose transformation could not be applied.
var errInfeasible = errors.New("cbqt: state infeasible")

// evalState deep-copies the query, applies the state, re-runs the
// imperative transformations that the new constructs may enable (§3.1), and
// invokes the physical optimizer in cost-only mode.
//
// It is the fault boundary of the search: the "state:<rule>" injection site
// fires first, any panic out of the transformation or the planner is
// recovered into a *TransformError (the caller quarantines the rule),
// injected errors skip just this state, and a planner budget abort maps to
// errBudgetStop ("stop searching, keep the best so far").
func (o *Optimizer) evalState(q *qtree.Query, r transform.Rule, s state, cache *optimizer.CostCache, cutoff float64, stats *Stats, tracker *budgetTracker) (cost float64, err error) {
	// stateEvent emits the state's EvState trace record. Exactly one fires
	// per evaluation, at the return point that decided the outcome.
	began := time.Time{}
	if o.Opts.Trace {
		//lint:allow nodeterm trace timings are observability-only; golden-trace comparisons strip ElapsedUS
		began = time.Now()
	}
	stateEvent := func(outcome, reason string, c float64, blocks, hits int) {
		if !o.Opts.Trace {
			return
		}
		o.traceEvent(stats, obsv.SearchEvent{
			Ev: obsv.EvState, Rule: r.Name(), State: stateKey(s),
			Outcome: outcome, Reason: reason, Cost: c,
			Blocks: blocks, CacheHits: hits,
			//lint:allow nodeterm trace timings are observability-only; golden-trace comparisons strip ElapsedUS
			ElapsedUS: time.Since(began).Microseconds(),
		})
	}
	if !tracker.allowWeight(weight(s)) {
		stateEvent(obsv.OutcomeInfeasible, "depth-cap", 0, 0, 0)
		return 0, errInfeasible // deeper than the remaining depth budget
	}
	defer func() {
		if p := recover(); p != nil {
			cost = 0
			err = &TransformError{Rule: r.Name(), State: stateKey(s), Panic: p, Stack: stack()}
			stateEvent(obsv.OutcomeFault, "panic", 0, 0, 0)
		}
	}()
	if ferr := o.Opts.Faults.Fire("state:" + r.Name()); ferr != nil {
		stats.TransformErrors = append(stats.TransformErrors,
			&TransformError{Rule: r.Name(), State: stateKey(s), Err: ferr})
		stateEvent(obsv.OutcomeFault, "injected", 0, 0, 0)
		return 0, errInfeasible
	}
	// Each state gets its own copy of the query (§3.1): a copy-on-write
	// clone by default — sharing every block the state does not rewrite
	// with the base and with every concurrently evaluated sibling — or a
	// full deep copy under Options.FullCloneStates. The two modes produce
	// bit-identical searches; see Options.FullCloneStates.
	var clone *qtree.Query
	if o.Opts.FullCloneStates {
		clone, _ = q.Clone()
	} else {
		clone = q.CloneCOW()
	}
	if aerr := o.applyState(clone, r, s); aerr != nil {
		reason := "inapplicable"
		if errors.Is(aerr, faultinject.ErrInjected) {
			reason = "injected"
		}
		stateEvent(obsv.OutcomeInfeasible, reason, 0, 0, 0)
		return 0, errInfeasible
	}
	if o.Opts.Check && !s.isZero() {
		// Per-rule contract, before the heuristic re-pass: heuristics may
		// legally drop tables (join elimination), the rule may not.
		if vs := check.CheckContract(r.Name(), tracker.preSummary, clone); len(vs) > 0 {
			stateEvent(obsv.OutcomeFault, checkEventReason, 0, 0, 0)
			return 0, o.checkFault(r.Name(), stateKey(s), stats, vs)
		}
	}
	if !o.Opts.SkipHeuristics && !s.isZero() {
		if herr := o.applyHeuristics(clone); herr != nil {
			if errors.Is(herr, faultinject.ErrInjected) {
				stats.TransformErrors = append(stats.TransformErrors,
					&TransformError{Rule: r.Name(), State: stateKey(s), Err: herr})
				stateEvent(obsv.OutcomeFault, "injected", 0, 0, 0)
				return 0, errInfeasible
			}
			return 0, herr
		}
	}
	if o.Opts.Check && !s.isZero() {
		// Full semantic check of the state the physical optimizer is about
		// to trust (the zero state equals the already-checked input), plus
		// the copy-on-write discipline: the state's tree may share blocks
		// only with the base, the owned region must be upward-closed, and
		// the base itself must read back exactly as it was snapshotted when
		// the search began — any deviation means a transformation mutated
		// shared structure and is quarantined like a panic.
		vs := check.Aliasing(clone)
		if tracker.baseSnap != nil {
			vs = append(vs, tracker.baseSnap.Verify()...)
		}
		vs = append(vs, check.Query(clone)...)
		if len(vs) > 0 {
			stateEvent(obsv.OutcomeFault, checkEventReason, 0, 0, 0)
			return 0, o.checkFault(r.Name(), stateKey(s), stats, vs)
		}
	}
	// Memo accounting: how much of this state's tree stayed shared with the
	// base versus privately materialized, and the private bytes the state
	// cost. Counted for every state that reaches the planner, before the
	// cost cut-off can intervene, so the totals are identical at every
	// parallelism level.
	shared, owned := clone.COWStats()
	stats.MemoSharedBlocks += shared
	stats.MemoMaterializedBlocks += owned
	stats.MemoStateBytes += clone.OwnedApproxBytes()
	p := optimizer.New(o.Cat)
	p.CostOnly = true
	p.Cache = cache
	p.Ctx = tracker.ctx
	p.Deadline = tracker.deadline
	if o.Opts.CostCutoff && cutoff > 0 && !math.IsInf(cutoff, 1) {
		p.Cutoff = cutoff
	}
	plan, perr := p.Optimize(clone)
	stats.BlocksOptimized += p.Counters.BlocksOptimized
	stats.AnnotationHits += p.Counters.CacheHits
	if perr != nil {
		if errors.Is(perr, optimizer.ErrCutoff) {
			// §3.4.1: the state exceeded the best cost; abandon it.
			if o.Opts.Trace {
				stats.Trace = append(stats.Trace, StateEval{Rule: r.Name(), State: stateKey(s), Cost: math.Inf(1)})
			}
			stateEvent(obsv.OutcomeCut, "", 0, p.Counters.BlocksOptimized, p.Counters.CacheHits)
			return math.Inf(1), nil
		}
		if errors.Is(perr, optimizer.ErrBudget) {
			tracker.expired() // record deadline vs. canceled
			stateEvent(obsv.OutcomeBudget, "wall-clock", 0, p.Counters.BlocksOptimized, p.Counters.CacheHits)
			return 0, errBudgetStop
		}
		return 0, perr
	}
	if o.Opts.Check && !s.isZero() {
		if vs := check.Plan(plan); len(vs) > 0 {
			stateEvent(obsv.OutcomeFault, checkEventReason, 0, 0, 0)
			return 0, o.checkFault(r.Name(), stateKey(s), stats, vs)
		}
	}
	if o.Opts.Trace {
		stats.Trace = append(stats.Trace, StateEval{Rule: r.Name(), State: stateKey(s), Cost: plan.Cost.Total})
	}
	stateEvent(obsv.OutcomeCosted, "", plan.Cost.Total, p.Counters.BlocksOptimized, p.Counters.CacheHits)
	return plan.Cost.Total, nil
}

// search runs the chosen strategy and returns the best state found plus
// the number of states evaluated.
func (o *Optimizer) search(q *qtree.Query, r transform.Rule, n int, strat Strategy, cache *optimizer.CostCache, stats *Stats, tracker *budgetTracker) (state, int, error) {
	variants := make([]int, n)
	for i := 0; i < n; i++ {
		variants[i] = r.Variants(q, i)
	}
	if o.Opts.Check {
		// The contract pre-state for every state this search evaluates (q is
		// not mutated until the winner is applied, after the search), and the
		// base-tree fingerprint every state verifies against: COW states read
		// q's blocks concurrently, so any mutation of them is corruption.
		tracker.preSummary = check.Summarize(q)
		tracker.baseSnap = check.Snapshot(q)
	}
	// Parallelism 1 runs the original single-threaded searches; the
	// parallel engine (parallel.go) selects the same state at any worker
	// count, so the split is purely an execution choice.
	par := o.parallelism()
	switch strat {
	case StrategyExhaustive:
		if par > 1 {
			return o.searchExhaustiveParallel(q, r, variants, cache, stats, tracker, par)
		}
		return o.searchExhaustive(q, r, variants, cache, stats, tracker)
	case StrategyLinear:
		if par > 1 {
			return o.searchLinearParallel(q, r, variants, cache, stats, tracker, par)
		}
		return o.searchLinear(q, r, variants, cache, stats, tracker)
	case StrategyTwoPass:
		if par > 1 {
			return o.searchTwoPassParallel(q, r, variants, cache, stats, tracker, par)
		}
		return o.searchTwoPass(q, r, variants, cache, stats, tracker)
	case StrategyIterative:
		// Each hill-climbing step depends on the previous best state;
		// iterative improvement stays sequential at every parallelism.
		return o.searchIterative(q, r, variants, cache, stats, tracker)
	}
	if par > 1 {
		return o.searchExhaustiveParallel(q, r, variants, cache, stats, tracker, par)
	}
	return o.searchExhaustive(q, r, variants, cache, stats, tracker)
}

// searchExhaustive enumerates every combination: with binary objects that
// is the paper's 2^N states; with V-variant objects, prod(V_i + 1).
// Budget exhaustion returns the best state found so far (the zero state
// when nothing was costed yet).
func (o *Optimizer) searchExhaustive(q *qtree.Query, r transform.Rule, variants []int, cache *optimizer.CostCache, stats *Stats, tracker *budgetTracker) (state, int, error) {
	n := len(variants)
	cur := make(state, n)
	best := cur.clone()
	bestCost := math.Inf(1)
	count := 0
	for {
		if tracker.reserve(1) == 0 {
			return best, count, nil // degraded: best fully-costed state so far
		}
		cost, err := o.evalState(q, r, cur, cache, bestCost, stats, tracker)
		if err == nil {
			count++
			if cost < bestCost {
				bestCost = cost
				best = cur.clone()
			}
		} else if errors.Is(err, errBudgetStop) {
			return best, count, nil
		} else if !errors.Is(err, errInfeasible) {
			return nil, count, err
		}
		// Advance mixed-radix counter.
		i := 0
		for i < n {
			cur[i]++
			if cur[i] <= variants[i] {
				break
			}
			cur[i] = 0
			i++
		}
		if i == n {
			return best, count, nil
		}
	}
}

// searchLinear implements the dynamic-programming style linear search
// (§3.2): it fixes objects one at a time, keeping a transformation of
// object i only if it lowers the cost given the decisions already made.
// It evaluates N+1 states for binary objects.
func (o *Optimizer) searchLinear(q *qtree.Query, r transform.Rule, variants []int, cache *optimizer.CostCache, stats *Stats, tracker *budgetTracker) (state, int, error) {
	n := len(variants)
	cur := make(state, n)
	if tracker.reserve(1) == 0 {
		return cur, 0, nil
	}
	bestCost, err := o.evalState(q, r, cur, cache, 0, stats, tracker)
	if err != nil {
		if errors.Is(err, errBudgetStop) || errors.Is(err, errInfeasible) {
			return cur, 0, nil // degraded before the baseline: stay untransformed
		}
		return nil, 1, err
	}
	count := 1
	for i := 0; i < n; i++ {
		bestV := 0
		for v := 1; v <= variants[i]; v++ {
			if tracker.reserve(1) == 0 {
				cur[i] = bestV
				return cur, count, nil
			}
			trial := cur.clone()
			trial[i] = v
			cost, err := o.evalState(q, r, trial, cache, bestCost, stats, tracker)
			if errors.Is(err, errInfeasible) {
				continue
			}
			if errors.Is(err, errBudgetStop) {
				cur[i] = bestV
				return cur, count, nil
			}
			if err != nil {
				return nil, count, err
			}
			count++
			if cost < bestCost {
				bestCost = cost
				bestV = v
			}
		}
		cur[i] = bestV
	}
	return cur, count, nil
}

// searchTwoPass compares only the all-untransformed and all-transformed
// states (§3.2).
func (o *Optimizer) searchTwoPass(q *qtree.Query, r transform.Rule, variants []int, cache *optimizer.CostCache, stats *Stats, tracker *budgetTracker) (state, int, error) {
	n := len(variants)
	zero := make(state, n)
	if tracker.reserve(1) == 0 {
		return zero, 0, nil
	}
	zeroCost, err := o.evalState(q, r, zero, cache, 0, stats, tracker)
	if err != nil {
		if errors.Is(err, errBudgetStop) || errors.Is(err, errInfeasible) {
			return zero, 0, nil
		}
		return nil, 1, err
	}
	count := 1
	if tracker.reserve(1) == 0 {
		return zero, count, nil
	}
	all := make(state, n)
	for i := range all {
		all[i] = 1 // first variant of every object
	}
	allCost, err := o.evalState(q, r, all, cache, zeroCost, stats, tracker)
	if errors.Is(err, errInfeasible) || errors.Is(err, errBudgetStop) {
		return zero, count, nil
	}
	if err != nil {
		return nil, count, err
	}
	count++
	if allCost < zeroCost {
		return all, count, nil
	}
	return zero, count, nil
}

// searchIterative performs iterative improvement (§3.2): from a random
// initial state, repeatedly move to a cheaper neighbour (one object
// changed) until a local minimum; restart with a different initial state,
// bounded by IterativeRestarts and IterativeMaxStates.
func (o *Optimizer) searchIterative(q *qtree.Query, r transform.Rule, variants []int, cache *optimizer.CostCache, stats *Stats, tracker *budgetTracker) (state, int, error) {
	n := len(variants)
	rng := rand.New(rand.NewSource(o.Opts.Seed))
	seen := map[string]bool{}
	count := 0
	best := make(state, n)
	bestCost := math.Inf(1)

	eval := func(s state) (float64, bool, error) {
		key := stateKey(s)
		if seen[key] {
			return 0, false, nil
		}
		seen[key] = true
		if tracker.reserve(1) == 0 {
			return 0, false, errBudgetStop
		}
		cost, err := o.evalState(q, r, s, cache, bestCost, stats, tracker)
		if errors.Is(err, errInfeasible) {
			return math.Inf(1), true, nil
		}
		if err != nil {
			return 0, false, err
		}
		count++
		return cost, true, nil
	}

	// Always include the untransformed state.
	zero := make(state, n)
	cost, _, err := eval(zero)
	if err != nil {
		if errors.Is(err, errBudgetStop) {
			return best, count, nil
		}
		return nil, count, err
	}
	best, bestCost = zero.clone(), cost

	for restart := 0; restart < o.Opts.IterativeRestarts && count < o.Opts.IterativeMaxStates; restart++ {
		cur := make(state, n)
		for i := range cur {
			cur[i] = rng.Intn(variants[i] + 1)
		}
		curCost, fresh, err := eval(cur)
		if err != nil {
			if errors.Is(err, errBudgetStop) {
				return best, count, nil
			}
			return nil, count, err
		}
		if !fresh {
			continue
		}
		// Hill-climb to a local minimum.
		improved := true
		for improved && count < o.Opts.IterativeMaxStates {
			improved = false
			for i := 0; i < n && count < o.Opts.IterativeMaxStates; i++ {
				for v := 0; v <= variants[i]; v++ {
					if v == cur[i] {
						continue
					}
					nb := cur.clone()
					nb[i] = v
					nbCost, fresh, err := eval(nb)
					if err != nil {
						if errors.Is(err, errBudgetStop) {
							if curCost < bestCost {
								best = cur.clone()
							}
							return best, count, nil
						}
						return nil, count, err
					}
					if fresh && nbCost < curCost {
						cur, curCost = nb, nbCost
						improved = true
					}
				}
			}
		}
		if curCost < bestCost {
			best, bestCost = cur.clone(), curCost
		}
	}
	return best, count, nil
}

func stateKey(s state) string {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte('0' + v)
	}
	return string(b)
}

// Quiet references to keep imports stable across refactors.
var _ = qtree.JoinInner
