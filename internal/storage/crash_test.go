package storage

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// TestCrashWriterHelper is the kill-and-recover test's child process: it
// opens the disk engine at $CBQT_CRASH_DIR and commits single-row inserts
// with sequential ids forever, acking each commit on stdout. It only runs
// when re-executed by TestKillAndRecover; as a regular test it is a no-op.
func TestCrashWriterHelper(t *testing.T) {
	dir := os.Getenv("CBQT_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-writer helper: only runs re-executed with CBQT_CRASH_DIR")
	}
	db := diskDB(t, dir)
	if _, err := db.CreateTable(tMeta()); err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	for id := int64(1); ; id++ {
		b := db.NewBatch()
		if err := b.Insert("T", []datum.Datum{
			datum.NewInt(id), datum.NewString("r"), datum.NewFloat(float64(id)), datum.NewBool(id%2 == 0),
		}); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		if _, err := db.Commit(b); err != nil {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		// The ack is written only after Commit returned, i.e. after the WAL
		// record was fsynced: an acked commit must survive any crash.
		fmt.Fprintf(out, "committed %d\n", id)
		out.Flush()
	}
}

// TestKillAndRecover is the crash-recovery battery: a child process
// commits WAL-logged rows and is SIGKILLed mid-stream with no chance to
// flush or close anything. Reopening the data directory must recover
// every acked commit (write-before-ack: Commit returns only after fsync)
// and the surviving rows must be an unbroken prefix of the id sequence —
// a commit is all-or-nothing, so no holes and no torn half-commits.
func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashWriterHelper", "-test.v")
	cmd.Env = append(os.Environ(), "CBQT_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read acks until enough commits landed, then kill hard (SIGKILL: the
	// child gets no signal handler, no deferred close, nothing).
	const minCommits = 50
	lastAcked := int64(0)
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "ERR") {
			t.Fatalf("crash writer failed: %s", line)
		}
		if n, ok := strings.CutPrefix(line, "committed "); ok {
			id, err := strconv.ParseInt(n, 10, 64)
			if err != nil {
				t.Fatalf("bad ack %q", line)
			}
			lastAcked = id
			if lastAcked >= minCommits {
				break
			}
		}
	}
	if lastAcked < minCommits {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child exited after %d commits, want >= %d", lastAcked, minCommits)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; the kill error state is expected

	// Recover. Every acked commit must be back; the recovered ids must be
	// exactly 1..K for some K >= lastAcked (commits are sequential and
	// atomic, so unacked-but-synced trailing commits are fine, holes and
	// partial rows are not).
	cat := catalog.New()
	eng, err := OpenDiskEngine(dir, cat)
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	db := NewDBWithEngine(cat, eng)
	defer db.Close()
	view := db.Snapshot().Table("T")
	if view == nil {
		t.Fatal("table T did not survive the crash")
	}
	seen := map[int64]bool{}
	maxID := int64(0)
	for i := range view.Rows {
		if !view.Visible(i) {
			continue
		}
		id := view.Rows[i][0].Int()
		if seen[id] {
			t.Fatalf("row %d recovered twice", id)
		}
		seen[id] = true
		if id > maxID {
			maxID = id
		}
	}
	if maxID < lastAcked {
		t.Fatalf("recovered through id %d, but id %d was acked before the kill", maxID, lastAcked)
	}
	for id := int64(1); id <= maxID; id++ {
		if !seen[id] {
			t.Fatalf("hole in recovered ids: %d missing (max %d)", id, maxID)
		}
	}

	// The recovered engine keeps accepting commits.
	b := db.NewBatch()
	if err := b.Insert("T", []datum.Datum{
		datum.NewInt(maxID + 1), datum.NewString("post"), datum.NewFloat(0), datum.NewBool(false),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(b); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
}
