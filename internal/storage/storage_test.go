package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/datum"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	meta := &catalog.Table{
		Name: "EMP",
		Cols: []catalog.Column{
			{Name: "EMP_ID", Type: datum.KInt},
			{Name: "DEPT_ID", Type: datum.KInt, Nullable: true},
			{Name: "SALARY", Type: datum.KFloat},
			{Name: "NAME", Type: datum.KString},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "EMP_PK", Cols: []int{0}, Unique: true},
			{Name: "EMP_DEPT", Cols: []int{1}},
		},
	}
	tbl := NewTable(meta)
	rows := []struct {
		id   int64
		dept datum.Datum
		sal  float64
		name string
	}{
		{1, datum.NewInt(10), 100, "ann"},
		{2, datum.NewInt(20), 200, "bob"},
		{3, datum.NewInt(10), 300, "carl"},
		{4, datum.Null, 150, "dee"},
		{5, datum.NewInt(30), 250, "eli"},
		{6, datum.NewInt(20), 120, "fay"},
	}
	for _, r := range rows {
		tbl.MustAppend(datum.NewInt(r.id), r.dept, datum.NewFloat(r.sal), datum.NewString(r.name))
	}
	tbl.BuildIndexes()
	return tbl
}

func TestAppendValidation(t *testing.T) {
	meta := &catalog.Table{
		Name: "T",
		Cols: []catalog.Column{
			{Name: "A", Type: datum.KInt},
			{Name: "B", Type: datum.KString, Nullable: true},
		},
	}
	tbl := NewTable(meta)
	if err := tbl.Append(datum.NewInt(1)); err == nil {
		t.Error("arity mismatch should error")
	}
	if err := tbl.Append(datum.NewString("x"), datum.NewString("y")); err == nil {
		t.Error("kind mismatch should error")
	}
	if err := tbl.Append(datum.Null, datum.NewString("y")); err == nil {
		t.Error("NULL in non-nullable column should error")
	}
	if err := tbl.Append(datum.NewInt(1), datum.Null); err != nil {
		t.Errorf("NULL in nullable column: %v", err)
	}
}

func TestIntInFloatColumn(t *testing.T) {
	meta := &catalog.Table{Name: "T", Cols: []catalog.Column{{Name: "F", Type: datum.KFloat}}}
	tbl := NewTable(meta)
	if err := tbl.Append(datum.NewInt(3)); err != nil {
		t.Errorf("int should be accepted in float column: %v", err)
	}
}

func TestEqualRange(t *testing.T) {
	tbl := testTable(t)
	idx := tbl.Index("EMP_DEPT")
	got := idx.EqualRange([]datum.Datum{datum.NewInt(20)})
	if len(got) != 2 {
		t.Fatalf("dept 20: got %d rows, want 2", len(got))
	}
	ids := map[int64]bool{}
	for _, rn := range got {
		ids[tbl.Rows[rn][0].Int()] = true
	}
	if !ids[2] || !ids[6] {
		t.Errorf("dept 20 rows = %v", ids)
	}
	if got := idx.EqualRange([]datum.Datum{datum.NewInt(99)}); len(got) != 0 {
		t.Errorf("missing key: got %d rows", len(got))
	}
	if got := idx.EqualRange([]datum.Datum{datum.Null}); len(got) != 0 {
		t.Errorf("NULL key must match nothing, got %d rows", len(got))
	}
}

func TestRangeScan(t *testing.T) {
	tbl := testTable(t)
	idx := tbl.Index("EMP_DEPT")
	// dept_id >= 20 — must exclude the NULL row.
	got := idx.Range(datum.NewInt(20), true, true, datum.Null, false, false)
	if len(got) != 3 {
		t.Fatalf("dept >= 20: got %d rows, want 3", len(got))
	}
	// dept_id < 20.
	got = idx.Range(datum.Null, false, false, datum.NewInt(20), false, true)
	if len(got) != 2 {
		t.Fatalf("dept < 20: got %d rows, want 2 (NULLs excluded)", len(got))
	}
	// 10 < dept_id <= 30.
	got = idx.Range(datum.NewInt(10), false, true, datum.NewInt(30), true, true)
	if len(got) != 3 {
		t.Fatalf("10 < dept <= 30: got %d rows, want 3", len(got))
	}
	// Unbounded both sides = all non-null.
	got = idx.Range(datum.Null, false, false, datum.Null, false, false)
	if len(got) != 5 {
		t.Fatalf("unbounded: got %d rows, want 5", len(got))
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	// Property: index range scan result equals a naive filter.
	meta := &catalog.Table{
		Name: "R",
		Cols: []catalog.Column{{Name: "V", Type: datum.KInt, Nullable: true}},
		Indexes: []*catalog.Index{
			{Name: "R_V", Cols: []int{0}},
		},
	}
	f := func(vals []int16, loRaw, hiRaw int16) bool {
		tbl := NewTable(meta)
		for i, v := range vals {
			if i%7 == 3 {
				tbl.MustAppend(datum.Null)
				continue
			}
			tbl.MustAppend(datum.NewInt(int64(v)))
		}
		tbl.BuildIndexes()
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := tbl.Index("R_V").Range(datum.NewInt(lo), true, true, datum.NewInt(hi), true, true)
		want := 0
		for _, r := range tbl.Rows {
			if r[0].IsNull() {
				continue
			}
			v := r[0].Int()
			if v >= lo && v <= hi {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAnalyze(t *testing.T) {
	tbl := testTable(t)
	st := Analyze(tbl)
	if st.RowCount != 6 {
		t.Errorf("RowCount = %d", st.RowCount)
	}
	dept := st.Col(1)
	if dept.NDV != 3 {
		t.Errorf("dept NDV = %d, want 3", dept.NDV)
	}
	if dept.NullCount != 1 {
		t.Errorf("dept NullCount = %d, want 1", dept.NullCount)
	}
	if dept.Min.Int() != 10 || dept.Max.Int() != 30 {
		t.Errorf("dept min/max = %v/%v", dept.Min, dept.Max)
	}
	sal := st.Col(2)
	if sal.NDV != 6 {
		t.Errorf("salary NDV = %d, want 6", sal.NDV)
	}
	total := int64(0)
	for _, b := range sal.Hist {
		total += b.Count
	}
	if total != 6 {
		t.Errorf("histogram covers %d rows, want 6", total)
	}
	// Out-of-range column ordinal yields zero stats, not a panic.
	if z := st.Col(99); z.NDV != 0 {
		t.Errorf("Col(99) = %+v", z)
	}
}

func TestDB(t *testing.T) {
	cat := catalog.New()
	db := NewDB(cat)
	meta := &catalog.Table{
		Name: "DEPT",
		Cols: []catalog.Column{
			{Name: "DEPT_ID", Type: datum.KInt},
			{Name: "NAME", Type: datum.KString},
		},
		PrimaryKey: []int{0},
		Indexes:    []*catalog.Index{{Name: "DEPT_PK", Cols: []int{0}, Unique: true}},
	}
	tbl, err := db.CreateTable(meta)
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustAppend(datum.NewInt(10), datum.NewString("eng"))
	tbl.MustAppend(datum.NewInt(20), datum.NewString("ops"))
	db.Finalize()

	if db.Table("dept") != tbl {
		t.Error("case-insensitive lookup failed")
	}
	if db.Table("nope") != nil {
		t.Error("missing table should be nil")
	}
	if st := meta.Stats(); st == nil || st.RowCount != 2 {
		t.Error("Finalize should analyze tables")
	}
	if tbl.Index("DEPT_PK") == nil {
		t.Error("Finalize should build indexes")
	}
	if _, err := db.CreateTable(meta); err == nil {
		t.Error("duplicate table should error")
	}
}

func TestCatalogHelpers(t *testing.T) {
	emp := testTable(t).Meta
	if emp.Ordinal("salary") != 2 {
		t.Error("Ordinal is case-insensitive")
	}
	if emp.Ordinal("nope") != -1 {
		t.Error("missing column ordinal")
	}
	if emp.RowidOrdinal() != 4 {
		t.Error("rowid ordinal follows declared columns")
	}
	if !emp.IsUniqueKey([]int{0}) {
		t.Error("PK should be unique key")
	}
	if !emp.IsUniqueKey([]int{0, 1}) {
		t.Error("superset of PK should be unique")
	}
	if emp.IsUniqueKey([]int{1}) {
		t.Error("dept_id is not unique")
	}
	if emp.IsUniqueKey(nil) {
		t.Error("empty set is not a unique key")
	}
	if emp.FindIndex([]int{1}) == nil {
		t.Error("index on dept_id should be found")
	}
	if emp.FindIndex([]int{2}) != nil {
		t.Error("no index on salary")
	}
}

func TestFuncRegistry(t *testing.T) {
	cat := catalog.New()
	if cat.Func("upper") == nil {
		t.Error("builtin UPPER missing")
	}
	sm := cat.Func("SLOW_MATCH")
	if sm == nil || !sm.Expensive {
		t.Error("SLOW_MATCH should be registered and expensive")
	}
	got, err := cat.Func("SUBSTR").Eval([]datum.Datum{
		datum.NewString("employees"), datum.NewInt(1), datum.NewInt(3),
	})
	if err != nil || got.Str() != "emp" {
		t.Errorf("SUBSTR = %v, %v", got, err)
	}
	got, err = cat.Func("MOD").Eval([]datum.Datum{datum.NewInt(7), datum.NewInt(3)})
	if err != nil || got.Int() != 1 {
		t.Errorf("MOD = %v, %v", got, err)
	}
	got, err = cat.Func("SLOW_MATCH").Eval([]datum.Datum{
		datum.NewString("hello world"), datum.NewString("world"),
	})
	if err != nil || !got.Bool() {
		t.Errorf("SLOW_MATCH = %v, %v", got, err)
	}
}
