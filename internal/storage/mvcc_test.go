package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/obsv"
)

func mvccDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(catalog.New())
	tbl, err := db.CreateTable(&catalog.Table{
		Name: "T",
		Cols: []catalog.Column{
			{Name: "ID", Type: datum.KInt},
			{Name: "V", Type: datum.KString},
		},
		PrimaryKey: []int{0},
		Indexes:    []*catalog.Index{{Name: "T_PK", Cols: []int{0}, Unique: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustAppend(datum.NewInt(1), datum.NewString("a"))
	tbl.MustAppend(datum.NewInt(2), datum.NewString("b"))
	db.Finalize()
	return db
}

func visibleIDs(t *testing.T, view *Table) []int64 {
	t.Helper()
	var ids []int64
	for i, r := range view.Rows {
		if view.Visible(i) {
			ids = append(ids, r[0].Int())
		}
	}
	return ids
}

func TestSnapshotIsolation(t *testing.T) {
	db := mvccDB(t)

	snap := db.Snapshot() // before any commit
	before := visibleIDs(t, snap.Table("T"))
	if fmt.Sprint(before) != "[1 2]" {
		t.Fatalf("initial snapshot = %v", before)
	}

	// Commit an insert and a delete after the snapshot was taken.
	b := db.NewBatch()
	if err := b.Insert("T", []datum.Datum{datum.NewInt(3), datum.NewString("c")}); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("T", 0); err != nil { // delete id=1
		t.Fatal(err)
	}
	ts, err := db.Commit(b)
	if err != nil {
		t.Fatal(err)
	}
	if ts != initialTS+1 {
		t.Errorf("first commit ts = %d, want %d", ts, initialTS+1)
	}

	// The old snapshot is byte-identical to before the commit.
	if got := fmt.Sprint(visibleIDs(t, snap.Table("T"))); got != fmt.Sprint(before) {
		t.Errorf("old snapshot changed after commit: %v", got)
	}
	// A fresh snapshot sees the commit.
	after := visibleIDs(t, db.Snapshot().Table("T"))
	if fmt.Sprint(after) != "[2 3]" {
		t.Errorf("fresh snapshot = %v, want [2 3]", after)
	}
}

func TestUpdateIsDeletePlusInsert(t *testing.T) {
	db := mvccDB(t)
	b := db.NewBatch()
	if err := b.Update("T", 1, []datum.Datum{datum.NewInt(2), datum.NewString("b2")}); err != nil {
		t.Fatal(err)
	}
	if b.Inserted() != 1 || b.Deleted() != 1 {
		t.Errorf("update counts = %d ins / %d del", b.Inserted(), b.Deleted())
	}
	if _, err := db.Commit(b); err != nil {
		t.Fatal(err)
	}
	view := db.Snapshot().Table("T")
	var got []string
	for i, r := range view.Rows {
		if view.Visible(i) {
			got = append(got, r[1].Str())
		}
	}
	if fmt.Sprint(got) != "[a b2]" {
		t.Errorf("after update: %v", got)
	}
	if view.NumVisible() != 2 || len(view.Rows) != 3 {
		t.Errorf("visible=%d heap=%d, want 2/3", view.NumVisible(), len(view.Rows))
	}
}

func TestWriteWriteConflict(t *testing.T) {
	db := mvccDB(t)
	b1 := db.NewBatch()
	b2 := db.NewBatch()
	if err := b1.Delete("T", 0); err != nil {
		t.Fatal(err)
	}
	if err := b2.Update("T", 0, []datum.Datum{datum.NewInt(1), datum.NewString("a2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(b1); err != nil {
		t.Fatal(err)
	}
	// First committer wins: b2 targets the now-dead version.
	if _, err := db.Commit(b2); !errors.Is(err, ErrWriteConflict) {
		t.Errorf("second commit err = %v, want ErrWriteConflict", err)
	}
}

func TestIndexMaintainedByCommits(t *testing.T) {
	db := mvccDB(t)
	b := db.NewBatch()
	if err := b.Insert("T", []datum.Datum{datum.NewInt(7), datum.NewString("g")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(b); err != nil {
		t.Fatal(err)
	}
	view := db.Snapshot().Table("T")
	ix := view.Index("T_PK")
	got := view.FilterVisible(ix.EqualRange([]datum.Datum{datum.NewInt(7)}))
	if len(got) != 1 || view.Rows[got[0]][1].Str() != "g" {
		t.Errorf("index probe for committed insert = %v", got)
	}
}

// TestAppendMaintainsBuiltIndexes is the regression test for the silent
// index staleness bug: appending after BuildIndexes used to leave indexes
// out of date with no error.
func TestAppendMaintainsBuiltIndexes(t *testing.T) {
	db := mvccDB(t)
	tbl := db.Table("T")
	tbl.MustAppend(datum.NewInt(5), datum.NewString("e")) // after Finalize built indexes
	ix := tbl.Index("T_PK")
	got := ix.EqualRange([]datum.Datum{datum.NewInt(5)})
	if len(got) != 1 || tbl.Rows[got[0]][1].Str() != "e" {
		t.Fatalf("index stale after post-build Append: %v", got)
	}
	// Order is preserved across the whole index.
	all := ix.Range(datum.Null, false, false, datum.Null, false, false)
	var last int64 = -1 << 62
	for _, rid := range all {
		v := tbl.Rows[rid][0].Int()
		if v < last {
			t.Fatalf("index out of order after in-place insert: %d after %d", v, last)
		}
		last = v
	}
}

func TestSnapshotStableUnderConcurrentCommits(t *testing.T) {
	db := mvccDB(t)
	const writers = 4
	const commitsPerWriter = 200

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.Snapshot()
				view := snap.Table("T")
				first := fmt.Sprint(visibleIDs(t, view))
				// Re-reading through the same snapshot must be stable no
				// matter how many commits land meanwhile.
				for k := 0; k < 3; k++ {
					if got := fmt.Sprint(visibleIDs(t, snap.Table("T"))); got != first {
						panic(fmt.Sprintf("snapshot drifted: %s -> %s", first, got))
					}
				}
			}
		}()
	}

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < commitsPerWriter; i++ {
				b := db.NewBatch()
				id := int64(1000 + w*commitsPerWriter + i)
				if err := b.Insert("T", []datum.Datum{datum.NewInt(id), datum.NewString("w")}); err != nil {
					panic(err)
				}
				if _, err := db.Commit(b); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	if got := db.Snapshot().Table("T").NumVisible(); got != 2+writers*commitsPerWriter {
		t.Errorf("final visible rows = %d, want %d", got, 2+writers*commitsPerWriter)
	}
	if dv := db.Catalog.DataVersion(); dv != int64(writers*commitsPerWriter) {
		t.Errorf("data version = %d, want %d", dv, writers*commitsPerWriter)
	}
}

func TestAnalyzeSkipsDeadVersions(t *testing.T) {
	db := mvccDB(t)
	b := db.NewBatch()
	if err := b.Delete("T", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(b); err != nil {
		t.Fatal(err)
	}
	if err := db.AnalyzeTable("T"); err != nil {
		t.Fatal(err)
	}
	st := db.Catalog.Table("T").Stats()
	if st.RowCount != 1 {
		t.Errorf("RowCount after delete+analyze = %d, want 1", st.RowCount)
	}
}

func TestMvccMetrics(t *testing.T) {
	db := mvccDB(t)
	reg := obsv.NewRegistry()
	db.Metrics(reg)
	b := db.NewBatch()
	if err := b.Insert("T", []datum.Datum{datum.NewInt(9), datum.NewString("i")}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(b); err != nil {
		t.Fatal(err)
	}
	db.Snapshot()
	s := reg.Snapshot()
	if s.Counters["storage.mvcc.commits"] != 1 {
		t.Errorf("commits = %d", s.Counters["storage.mvcc.commits"])
	}
	if s.Counters["storage.mvcc.rows_inserted"] != 1 {
		t.Errorf("rows_inserted = %d", s.Counters["storage.mvcc.rows_inserted"])
	}
	if s.Counters["storage.mvcc.snapshots"] != 1 {
		t.Errorf("snapshots = %d", s.Counters["storage.mvcc.snapshots"])
	}
}

func TestEmptyBatchCommit(t *testing.T) {
	db := mvccDB(t)
	before := db.Snapshot().TS()
	ts, err := db.Commit(db.NewBatch())
	if err != nil {
		t.Fatal(err)
	}
	if ts != before {
		t.Errorf("empty commit advanced the oracle: %d -> %d", before, ts)
	}
	if dv := db.Catalog.DataVersion(); dv != 0 {
		t.Errorf("empty commit bumped data version to %d", dv)
	}
}
