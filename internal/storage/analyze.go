package storage

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// histBuckets is the number of equi-height histogram buckets ANALYZE builds
// for each column.
const histBuckets = 16

// Analyze computes optimizer statistics for a table view: row count and,
// per column, distinct-value count, null count, min/max, and an equi-height
// histogram. Only rows visible in the view are counted — dead versions in
// the MVCC heap never skew statistics. It corresponds to collecting
// optimizer statistics in the paper (dynamic sampling is modeled by the
// optimizer's computation cache, §3.4.4).
func Analyze(t *Table) *catalog.TableStats {
	rows := t.VisibleRows()
	stats := &catalog.TableStats{
		RowCount: int64(len(rows)),
		Cols:     make([]catalog.ColStats, len(t.Meta.Cols)),
	}
	for c := range t.Meta.Cols {
		stats.Cols[c] = analyzeColumn(rows, c)
	}
	return stats
}

func analyzeColumn(rows []Row, c int) catalog.ColStats {
	var cs catalog.ColStats
	vals := make([]datum.Datum, 0, len(rows))
	distinct := map[string]struct{}{}
	for _, r := range rows {
		v := r[c]
		if v.IsNull() {
			cs.NullCount++
			continue
		}
		vals = append(vals, v)
		distinct[v.Key()] = struct{}{}
	}
	cs.NDV = int64(len(distinct))
	if len(vals) == 0 {
		return cs
	}
	sort.Slice(vals, func(i, j int) bool {
		return datum.MustCompare(vals[i], vals[j]) < 0
	})
	cs.Min, cs.Max = vals[0], vals[len(vals)-1]
	// Equi-height histogram.
	n := histBuckets
	if n > len(vals) {
		n = len(vals)
	}
	per := len(vals) / n
	rem := len(vals) % n
	pos := 0
	for b := 0; b < n; b++ {
		cnt := per
		if b < rem {
			cnt++
		}
		pos += cnt
		cs.Hist = append(cs.Hist, catalog.HistBucket{
			UpperBound: vals[pos-1],
			Count:      int64(cnt),
		})
	}
	return cs
}
