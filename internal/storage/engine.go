package storage

import "repro/internal/catalog"

// Engine is the pluggable storage engine contract. Both implementations —
// the in-memory engine and the disk-backed append-log engine — expose the
// same MVCC surface: immutable table version views, consistent snapshots,
// and atomic write-batch commits with first-committer-wins conflicts.
//
//   - OpenTable returns the current head version view of a table (nil if
//     unknown); its Rows/Visible/Index methods are the scan and
//     index-range iteration surface.
//   - Snapshot pins a consistent multi-table read view; readers never
//     block writers and vice versa.
//   - NewBatch/Commit form the write path; Commit assigns the commit
//     timestamp from the engine's monotonic oracle and, for the disk
//     engine, makes the batch durable (fsync) before applying it.
type Engine interface {
	CreateTable(meta *catalog.Table) (*Table, error)
	OpenTable(name string) *Table
	TableNames() []string
	Snapshot() *Snapshot
	NewBatch() *WriteBatch
	Commit(b *WriteBatch) (uint64, error)
	// UseMetrics wires storage.mvcc.* (and engine-specific) counters into
	// the registry. Safe to call with nil.
	UseMetrics(reg metricsRegistry)
	// Close releases engine resources (flushes and closes the WAL for the
	// disk engine). The in-memory engine's Close is a no-op.
	Close() error
}

// MemEngine is the in-memory storage engine: the MVCC store with no
// durability. Commits are visible until process exit.
type MemEngine struct {
	s *store
}

// NewMemEngine creates an empty in-memory engine over the given catalog.
func NewMemEngine(cat *catalog.Catalog) *MemEngine {
	return &MemEngine{s: newStore(cat)}
}

func (e *MemEngine) CreateTable(meta *catalog.Table) (*Table, error) { return e.s.createTable(meta) }
func (e *MemEngine) OpenTable(name string) *Table                    { return e.s.openTable(name) }
func (e *MemEngine) TableNames() []string                            { return e.s.tableNames() }
func (e *MemEngine) Snapshot() *Snapshot                             { return e.s.snapshot() }
func (e *MemEngine) NewBatch() *WriteBatch                           { return e.s.newBatch() }
func (e *MemEngine) Commit(b *WriteBatch) (uint64, error)            { return e.s.commit(b) }
func (e *MemEngine) UseMetrics(reg metricsRegistry)                  { e.s.metrics = newStoreMetrics(reg) }
func (e *MemEngine) Close() error                                    { return nil }
