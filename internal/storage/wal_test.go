package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/obsv"
)

func diskDB(t *testing.T, dir string) *DB {
	t.Helper()
	cat := catalog.New()
	eng, err := OpenDiskEngine(dir, cat)
	if err != nil {
		t.Fatal(err)
	}
	return NewDBWithEngine(cat, eng)
}

func tMeta() *catalog.Table {
	return &catalog.Table{
		Name: "T",
		Cols: []catalog.Column{
			{Name: "ID", Type: datum.KInt},
			{Name: "V", Type: datum.KString, Nullable: true},
			{Name: "F", Type: datum.KFloat},
			{Name: "B", Type: datum.KBool},
		},
		PrimaryKey: []int{0},
		Indexes:    []*catalog.Index{{Name: "T_PK", Cols: []int{0}, Unique: true}},
	}
}

func insertT(t *testing.T, db *DB, id int64, v datum.Datum, f float64, bl bool) {
	t.Helper()
	b := db.NewBatch()
	if err := b.Insert("T", []datum.Datum{datum.NewInt(id), v, datum.NewFloat(f), datum.NewBool(bl)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(b); err != nil {
		t.Fatal(err)
	}
}

func dumpT(t *testing.T, db *DB) string {
	t.Helper()
	view := db.Snapshot().Table("T")
	if view == nil {
		return "<no table>"
	}
	out := ""
	for i, r := range view.Rows {
		if view.Visible(i) {
			out += fmt.Sprintf("%v|%v|%v|%v\n", r[0], r[1], r[2], r[3])
		}
	}
	return out
}

func TestDiskEngineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	if _, err := db.CreateTable(tMeta()); err != nil {
		t.Fatal(err)
	}
	insertT(t, db, 1, datum.NewString("a"), 1.5, true)
	insertT(t, db, 2, datum.Null, -2.25, false)
	insertT(t, db, 3, datum.NewString("c"), 0, true)
	b := db.NewBatch()
	if err := b.Update("T", 0, []datum.Datum{datum.NewInt(1), datum.NewString("a2"), datum.NewFloat(9.5), datum.NewBool(false)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("T", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Commit(b); err != nil {
		t.Fatal(err)
	}
	want := dumpT(t, db)
	wantTS := db.Snapshot().TS()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay must reproduce exactly the committed state.
	db2 := diskDB(t, dir)
	if got := dumpT(t, db2); got != want {
		t.Errorf("replayed state:\n%s\nwant:\n%s", got, want)
	}
	if ts := db2.Snapshot().TS(); ts != wantTS {
		t.Errorf("replayed oracle = %d, want %d", ts, wantTS)
	}
	// Schema replayed in full.
	meta := db2.Catalog.Table("T")
	if meta == nil || len(meta.Cols) != 4 || len(meta.PrimaryKey) != 1 || len(meta.Indexes) != 1 {
		t.Fatalf("replayed meta = %+v", meta)
	}
	// Indexes rebuilt and statistics collected on open.
	view := db2.Snapshot().Table("T")
	if view.Index("T_PK") == nil {
		t.Error("index not rebuilt on open")
	}
	if st := meta.Stats(); st == nil || st.RowCount != 2 {
		t.Errorf("stats after open = %+v", st)
	}
	// And the reopened engine keeps accepting commits.
	insertT(t, db2, 4, datum.NewString("d"), 4.0, true)
	if got := db2.Snapshot().Table("T").NumVisible(); got != 3 {
		t.Errorf("visible after post-reopen insert = %d, want 3", got)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	if _, err := db.CreateTable(tMeta()); err != nil {
		t.Fatal(err)
	}
	insertT(t, db, 1, datum.NewString("a"), 1, true)
	insertT(t, db, 2, datum.NewString("b"), 2, true)
	want := dumpT(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: write a garbage half-record at the tail.
	segs, err := walSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cat := catalog.New()
	reg := obsv.NewRegistry()
	eng, err := OpenDiskEngine(dir, cat)
	if err != nil {
		t.Fatal(err)
	}
	eng.UseMetrics(reg)
	db2 := NewDBWithEngine(cat, eng)
	if got := dumpT(t, db2); got != want {
		t.Errorf("state after torn tail:\n%s\nwant:\n%s", got, want)
	}
	// The torn bytes were truncated away, so reopening once more is clean.
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := diskDB(t, dir)
	if got := dumpT(t, db3); got != want {
		t.Errorf("state after second reopen:\n%s\nwant:\n%s", got, want)
	}
	db3.Close()
}

func TestWalCorruptMiddleRecordCutsTail(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	if _, err := db.CreateTable(tMeta()); err != nil {
		t.Fatal(err)
	}
	insertT(t, db, 1, datum.NewString("a"), 1, true)
	afterFirst := dumpT(t, db)
	sizeAfterFirst := walSize(t, dir)
	insertT(t, db, 2, datum.NewString("b"), 2, true)
	db.Close()

	// Corrupt one byte inside the second commit's record: CRC must reject
	// it, and recovery keeps only the prefix before it.
	segs, _ := walSegments(dir)
	last := filepath.Join(dir, segs[len(segs)-1])
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	data[sizeAfterFirst+10] ^= 0xff
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := diskDB(t, dir)
	if got := dumpT(t, db2); got != afterFirst {
		t.Errorf("state after mid-record corruption:\n%s\nwant:\n%s", got, afterFirst)
	}
	db2.Close()
}

func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	segs, err := walSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	st, err := os.Stat(filepath.Join(dir, segs[len(segs)-1]))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestWalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	if _, err := db.CreateTable(tMeta()); err != nil {
		t.Fatal(err)
	}
	// Big string payloads force rotation past the 4 MiB threshold quickly.
	long := make([]byte, 256<<10)
	for i := range long {
		long[i] = 'x'
	}
	for i := 0; i < 20; i++ {
		insertT(t, db, int64(i), datum.NewString(string(long)), 0, false)
	}
	want := db.Snapshot().Table("T").NumVisible()
	db.Close()
	segs, err := walSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}
	db2 := diskDB(t, dir)
	if got := db2.Snapshot().Table("T").NumVisible(); got != want {
		t.Errorf("visible after multi-segment replay = %d, want %d", got, want)
	}
	db2.Close()
}

func TestMirror(t *testing.T) {
	src := mvccDB(t)
	dir := t.TempDir()
	dst := diskDB(t, dir)
	if err := Mirror(src, dst); err != nil {
		t.Fatal(err)
	}
	a := fmt.Sprint(visibleIDs(t, src.Snapshot().Table("T")))
	b := fmt.Sprint(visibleIDs(t, dst.Snapshot().Table("T")))
	if a != b {
		t.Errorf("mirror mismatch: %s vs %s", a, b)
	}
	// Mirrored data survives a reopen.
	dst.Close()
	dst2 := diskDB(t, dir)
	if got := fmt.Sprint(visibleIDs(t, dst2.Snapshot().Table("T"))); got != a {
		t.Errorf("mirror after reopen = %s, want %s", got, a)
	}
	dst2.Close()
}
