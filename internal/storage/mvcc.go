package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/obsv"
)

// initialTS is the commit timestamp stamped on bulk-loaded rows and the
// oracle's starting point; every snapshot has ts >= initialTS, so loaded
// data is visible everywhere. The first transactional commit gets
// initialTS+1.
const initialTS uint64 = 1

// ErrWriteConflict is returned by Commit when another transaction deleted
// or replaced a row this batch targets after the batch's reads (snapshot
// isolation with first-committer-wins write-write conflicts). The caller
// may re-read under a fresh snapshot and retry.
var ErrWriteConflict = errors.New("storage: write-write conflict")

// metricsRegistry is the observability sink the engines publish into.
type metricsRegistry = *obsv.Registry

// storeMetrics are the storage.mvcc.* counters. All fields may be nil
// (obsv counters are nil-safe), so an engine without a registry pays only
// the nil check.
type storeMetrics struct {
	commits      *obsv.Counter // storage.mvcc.commits
	conflicts    *obsv.Counter // storage.mvcc.conflicts
	snapshots    *obsv.Counter // storage.mvcc.snapshots
	rowsInserted *obsv.Counter // storage.mvcc.rows_inserted
	rowsDeleted  *obsv.Counter // storage.mvcc.rows_deleted
}

func newStoreMetrics(reg *obsv.Registry) storeMetrics {
	if reg == nil {
		return storeMetrics{}
	}
	return storeMetrics{
		commits:      reg.Counter("storage.mvcc.commits"),
		conflicts:    reg.Counter("storage.mvcc.conflicts"),
		snapshots:    reg.Counter("storage.mvcc.snapshots"),
		rowsInserted: reg.Counter("storage.mvcc.rows_inserted"),
		rowsDeleted:  reg.Counter("storage.mvcc.rows_deleted"),
	}
}

// mvTable is one table's published version chain: an atomically swapped
// head pointer to the newest immutable *Table view.
type mvTable struct {
	head atomic.Pointer[Table]
}

// store is the shared MVCC core both engines are built on: the table heads,
// the commit-timestamp oracle, and the commit protocol. The disk engine
// adds a WAL by installing a log hook that runs inside the commit critical
// section, after validation and before anything is applied.
type store struct {
	cat *catalog.Catalog

	mu     sync.RWMutex // guards the tables map itself (CreateTable vs lookup)
	tables map[string]*mvTable

	// committed is the newest commit timestamp whose effects are fully
	// published. Snapshots read it; commits publish all table heads first
	// and then advance it, so a snapshot at ts T always observes every
	// commit <= T in full.
	committed atomic.Uint64

	// commitMu serializes commits. Writers queue here; readers never touch
	// it. Serializing commits keeps the oracle trivially monotonic and
	// makes "publish heads, then advance committed" a correct protocol
	// without per-table commit ordering machinery.
	commitMu sync.Mutex

	// logFn, when set, durably records a validated batch before it is
	// applied (the disk engine's WAL append + fsync). An error aborts the
	// commit with nothing applied.
	logFn func(commitTS uint64, b *WriteBatch) error

	metrics storeMetrics
}

func newStore(cat *catalog.Catalog) *store {
	s := &store{cat: cat, tables: map[string]*mvTable{}}
	s.committed.Store(initialTS)
	return s
}

func (s *store) createTable(meta *catalog.Table) (*Table, error) {
	if err := s.cat.AddTable(meta); err != nil {
		return nil, err
	}
	mt := &mvTable{}
	mt.head.Store(NewTable(meta))
	s.mu.Lock()
	s.tables[meta.Name] = mt
	s.mu.Unlock()
	return mt.head.Load(), nil
}

func (s *store) table(name string) *mvTable {
	s.mu.RLock()
	mt := s.tables[name]
	s.mu.RUnlock()
	return mt
}

func (s *store) openTable(name string) *Table {
	mt := s.table(name)
	if mt == nil {
		return nil
	}
	return mt.head.Load()
}

func (s *store) tableNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot is a consistent multi-table read view: the commit timestamp at
// acquisition plus lazily resolved per-table views at that timestamp.
// Snapshots never block writers; a statement executes entirely against one
// snapshot and observes byte-identical results no matter how many commits
// land concurrently. Safe for concurrent use.
type Snapshot struct {
	ts    uint64
	store *store

	mu    sync.Mutex
	views map[string]*Table
}

func (s *store) snapshot() *Snapshot {
	s.metrics.snapshots.Inc()
	return &Snapshot{ts: s.committed.Load(), store: s, views: map[string]*Table{}}
}

// TS returns the snapshot's read timestamp.
func (sn *Snapshot) TS() uint64 { return sn.ts }

// Table returns this snapshot's view of the named table, or nil. The view
// is the published head when the head is no newer than the snapshot (the
// common case), else a re-stamped copy whose visibility horizon is the
// snapshot's timestamp.
func (sn *Snapshot) Table(name string) *Table {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if t, ok := sn.views[name]; ok {
		return t
	}
	head := sn.store.openTable(name)
	if head == nil {
		return nil
	}
	t := head
	if head.ts > sn.ts {
		// The head includes commits newer than this snapshot. Rows share
		// storage with the head; only the visibility horizon differs.
		view := *head
		view.ts = sn.ts
		// Re-view the indexes too so probes resolve against the same heap
		// (they already do — indexes are immutable — but keep the struct
		// self-consistent for direct users).
		t = &view
	}
	sn.views[name] = t
	return t
}

// op is one mutation in a WriteBatch.
type op struct {
	table string
	// insert when row != nil; delete of rid otherwise.
	row Row
	rid int32
}

// WriteBatch accumulates INSERT/UPDATE/DELETE mutations for one atomic
// commit. Target rows for updates and deletes are identified by rowid as
// produced by the scan paths (the heap version number). A batch is built
// by a single goroutine and committed once.
type WriteBatch struct {
	store *store
	ops   []op
	nIns  int
	nDel  int
}

func (s *store) newBatch() *WriteBatch { return &WriteBatch{store: s} }

// Insert queues a row append after validating arity and column kinds.
func (b *WriteBatch) Insert(table string, vals []datum.Datum) error {
	meta := b.store.cat.Table(table)
	if meta == nil {
		return fmt.Errorf("storage: table %s does not exist", table)
	}
	if err := validateRow(meta, vals); err != nil {
		return err
	}
	b.ops = append(b.ops, op{table: meta.Name, row: coerceRow(meta, vals)})
	b.nIns++
	return nil
}

// Delete queues the removal of row version rid.
func (b *WriteBatch) Delete(table string, rid int32) error {
	meta := b.store.cat.Table(table)
	if meta == nil {
		return fmt.Errorf("storage: table %s does not exist", table)
	}
	b.ops = append(b.ops, op{table: meta.Name, row: nil, rid: rid})
	b.nDel++
	return nil
}

// Update queues the replacement of row version rid with a new row: a
// delete of the old version plus an insert of the new one, atomically
// under the same commit timestamp.
func (b *WriteBatch) Update(table string, rid int32, vals []datum.Datum) error {
	if err := b.Delete(table, rid); err != nil {
		return err
	}
	return b.Insert(table, vals)
}

// Inserted and Deleted report the queued op counts (an update counts one
// of each).
func (b *WriteBatch) Inserted() int { return b.nIns }
func (b *WriteBatch) Deleted() int  { return b.nDel }

// Empty reports whether the batch holds no mutations.
func (b *WriteBatch) Empty() bool { return len(b.ops) == 0 }

// commit runs the commit protocol:
//
//  1. pick commitTS = committed+1 (commits are serialized, so this is the
//     monotonic oracle);
//  2. validate write-write conflicts: every targeted row version must
//     still be live (first committer wins);
//  3. durably log the batch (disk engine WAL hook), abort on error;
//  4. apply: stamp deleted versions' end timestamps in place, build new
//     table versions copy-on-write for inserts, extend indexes;
//  5. publish the new heads, then advance committed;
//  6. bump the catalog data version.
//
// Readers are never blocked: they either hold a snapshot < commitTS (and
// the end-timestamp stamps don't change what's visible to them) or acquire
// one >= commitTS after step 5's publishes are complete.
func (s *store) commit(b *WriteBatch) (uint64, error) {
	if b.store != s {
		return 0, errors.New("storage: batch committed against a different store")
	}
	if b.Empty() {
		return s.committed.Load(), nil
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	commitTS := s.committed.Load() + 1

	// Validate: all delete targets still live.
	for _, o := range b.ops {
		if o.row != nil {
			continue
		}
		head := s.openTable(o.table)
		if head == nil {
			return 0, fmt.Errorf("storage: table %s does not exist", o.table)
		}
		if int(o.rid) < 0 || int(o.rid) >= len(head.Rows) {
			return 0, fmt.Errorf("storage: %s: rowid %d out of range", o.table, o.rid)
		}
		if int(o.rid) < len(head.ends) && atomic.LoadUint64(&head.ends[o.rid]) != 0 {
			s.metrics.conflicts.Inc()
			return 0, fmt.Errorf("%w: %s rowid %d", ErrWriteConflict, o.table, o.rid)
		}
	}

	if s.logFn != nil {
		if err := s.logFn(commitTS, b); err != nil {
			return 0, fmt.Errorf("storage: log commit: %w", err)
		}
	}

	s.applyOps(commitTS, b.ops)

	s.committed.Store(commitTS)
	s.metrics.commits.Inc()
	s.metrics.rowsInserted.Add(int64(b.nIns))
	s.metrics.rowsDeleted.Add(int64(b.nDel))
	s.cat.BumpDataVersion()
	return commitTS, nil
}

// applyOps applies validated ops at commitTS and publishes the new heads.
// Called with commitMu held (or single-threaded during recovery replay).
func (s *store) applyOps(commitTS uint64, ops []op) {
	// Group per table, preserving op order.
	type tableOps struct {
		inserts []Row
		deletes []int32
	}
	grouped := map[string]*tableOps{}
	var order []string
	for _, o := range ops {
		g := grouped[o.table]
		if g == nil {
			g = &tableOps{}
			grouped[o.table] = g
			order = append(order, o.table)
		}
		if o.row != nil {
			g.inserts = append(g.inserts, o.row)
		} else {
			g.deletes = append(g.deletes, o.rid)
		}
	}
	for _, name := range order {
		g := grouped[name]
		mt := s.table(name)
		head := mt.head.Load()

		next := &Table{
			Meta:    head.Meta,
			Rows:    head.Rows,
			begin:   head.begin,
			ends:    head.ends,
			ts:      commitTS,
			indexes: head.indexes,
		}
		// Load-time tables may predate their MVCC metadata; backfill so
		// every version slot has begin/end stamps before we extend.
		for len(next.begin) < len(next.Rows) {
			next.begin = append(next.begin, head.ts)
			next.ends = append(next.ends, 0)
		}
		var newSlots []int32
		if len(g.inserts) > 0 {
			newSlots = make([]int32, 0, len(g.inserts))
			for _, r := range g.inserts {
				newSlots = append(newSlots, int32(len(next.Rows)))
				// Appends may grow in place past the old head's len; that
				// is safe because no reader ever indexes past the len of
				// the slice header it holds.
				next.Rows = append(next.Rows, r)
				next.begin = append(next.begin, commitTS)
				next.ends = append(next.ends, 0)
			}
			if len(head.indexes) > 0 {
				next.indexes = make(map[string]*Index, len(head.indexes))
				for n, ix := range head.indexes {
					next.indexes[n] = ix.extended(next.Rows, newSlots)
				}
			}
		}
		// Stamp deletes in place. The ends array is shared with older
		// views; stamping end=commitTS is invisible to snapshots < commitTS
		// (end > their ts) and exactly right for newer ones.
		for _, rid := range g.deletes {
			atomic.StoreUint64(&next.ends[rid], commitTS)
		}
		mt.head.Store(next)
	}
}
