// Package storage implements the transactional storage subsystem: heap
// tables with multi-version rows (snapshot-isolation MVCC), ordered
// secondary indexes with binary-search range scans maintained incrementally
// by the write path, the ANALYZE pass that collects the optimizer
// statistics defined in package catalog, and a pluggable Engine interface
// with two implementations — the in-memory engine and a disk-backed
// append-log engine (segmented WAL, fsync-on-commit, crash-recovery
// replay).
//
// Concurrency model: every published *Table is an immutable version view.
// Readers acquire a Snapshot (a read timestamp plus the table heads at that
// instant) and never block writers; writers commit WriteBatches that build
// the next version copy-on-write and publish it with an atomic pointer
// swap. Row versions carry begin/end commit timestamps; a version is
// visible to a snapshot at ts when begin <= ts < end.
package storage

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// Row is a table row: one datum per declared column.
type Row []datum.Datum

// Table is one immutable published version of a table: the version heap
// (all row versions, live and dead), the MVCC metadata deciding which are
// visible at this view's snapshot timestamp, and the indexes built over the
// heap. Scans must skip rows for which Visible reports false.
//
// The zero begin/ends arrays (NewTable + direct Append before any MVCC
// commit) describe the non-transactional bulk-load path: rows appended
// directly are stamped with the view's own timestamp and are immediately
// visible. Direct Append is not safe concurrently with serving; committed
// writes go through an Engine's WriteBatch.
type Table struct {
	Meta *catalog.Table
	Rows []Row
	// begin[i] is the commit timestamp of version i; the version exists
	// for snapshots at ts >= begin[i]. Written only before its slot is
	// published (happens-before via the head pointer swap), so plain reads
	// are safe.
	begin []uint64
	// ends[i] is 0 while version i is live, else the commit timestamp of
	// the deleting transaction. Stamped in place by commits while readers
	// share the array, so all access is atomic.
	ends []uint64
	// ts is this view's visibility horizon (snapshot timestamp).
	ts      uint64
	indexes map[string]*Index // by index name
}

// NewTable creates an empty table for the given metadata. The result is a
// load-time head: Append mutates it in place.
func NewTable(meta *catalog.Table) *Table {
	return &Table{Meta: meta, ts: initialTS, indexes: map[string]*Index{}}
}

// SnapTS returns the view's visibility horizon (its snapshot timestamp).
func (t *Table) SnapTS() uint64 { return t.ts }

// Visible reports whether row version i is visible in this view.
func (t *Table) Visible(i int) bool {
	if i >= len(t.begin) {
		// Rows appended by the bulk-load path before MVCC metadata existed
		// (or a view sliced ahead of its metadata) are always visible.
		return true
	}
	if t.begin[i] > t.ts {
		return false
	}
	end := atomic.LoadUint64(&t.ends[i])
	return end == 0 || end > t.ts
}

// NumVisible counts the rows visible in this view.
func (t *Table) NumVisible() int {
	n := 0
	for i := range t.Rows {
		if t.Visible(i) {
			n++
		}
	}
	return n
}

// VisibleRows returns the rows visible in this view, in heap order.
func (t *Table) VisibleRows() []Row {
	out := make([]Row, 0, len(t.Rows))
	for i, r := range t.Rows {
		if t.Visible(i) {
			out = append(out, r)
		}
	}
	return out
}

// FilterVisible drops invisible row numbers from an index match. It
// returns the input slice unchanged when every candidate is visible (the
// common case for append-mostly tables), so index probes stay allocation
// free until a delete actually lands in the range.
func (t *Table) FilterVisible(match []int32) []int32 {
	for i, rid := range match {
		if !t.Visible(int(rid)) {
			out := make([]int32, i, len(match))
			copy(out, match[:i])
			for _, r := range match[i+1:] {
				if t.Visible(int(r)) {
					out = append(out, r)
				}
			}
			return out
		}
	}
	return match
}

// validateRow checks arity and column kinds for a row headed into t.
func validateRow(meta *catalog.Table, vals []datum.Datum) error {
	if len(vals) != len(meta.Cols) {
		return fmt.Errorf("storage: %s: got %d values, want %d", meta.Name, len(vals), len(meta.Cols))
	}
	for i, v := range vals {
		if v.IsNull() {
			if !meta.Cols[i].Nullable {
				return fmt.Errorf("storage: %s.%s: NULL in non-nullable column", meta.Name, meta.Cols[i].Name)
			}
			continue
		}
		want := meta.Cols[i].Type
		got := v.Kind()
		// Ints are acceptable in float columns.
		if got != want && !(want == datum.KFloat && got == datum.KInt) {
			return fmt.Errorf("storage: %s.%s: kind %s, want %s", meta.Name, meta.Cols[i].Name, got, want)
		}
	}
	return nil
}

// coerceRow copies vals, widening ints stored into float columns so that
// the heap holds exactly the declared column kinds.
func coerceRow(meta *catalog.Table, vals []datum.Datum) Row {
	out := make(Row, len(vals))
	for i, v := range vals {
		if !v.IsNull() && meta.Cols[i].Type == datum.KFloat && v.Kind() == datum.KInt {
			v = datum.NewFloat(v.Float())
		}
		out[i] = v
	}
	return out
}

// Append adds a row after validating its arity and column kinds. This is
// the non-transactional bulk-load path: the row is stamped with the view's
// own timestamp (immediately visible) and any already-built indexes are
// maintained incrementally, so loading after BuildIndexes can no longer
// leave them silently stale. Not safe concurrently with serving.
func (t *Table) Append(vals ...datum.Datum) error {
	if err := validateRow(t.Meta, vals); err != nil {
		return err
	}
	slot := int32(len(t.Rows))
	t.Rows = append(t.Rows, Row(vals))
	t.begin = append(t.begin, t.ts)
	t.ends = append(t.ends, 0)
	for _, ix := range t.indexes {
		ix.insertInPlace(t.Rows, slot)
	}
	return nil
}

// MustAppend is Append but panics on error; for test and generator code.
func (t *Table) MustAppend(vals ...datum.Datum) {
	if err := t.Append(vals...); err != nil {
		panic(err)
	}
}

// BuildIndexes (re)builds every index declared in the table metadata.
func (t *Table) BuildIndexes() {
	t.indexes = map[string]*Index{}
	for _, im := range t.Meta.Indexes {
		t.indexes[im.Name] = buildIndex(t.Rows, im)
	}
}

// Index returns the built index with the given name, or nil.
func (t *Table) Index(name string) *Index {
	return t.indexes[name]
}

// Index is an ordered secondary index: row numbers sorted by key columns.
// An index covers every row version of its table view, dead ones included;
// probes filter by visibility. Indexes are immutable once published with a
// version (commits extend them copy-on-write); only the load-time path
// inserts in place.
type Index struct {
	Meta  *catalog.Index
	rows  []Row
	order []int32 // row numbers in key order; NULL keys sort first
}

// rowLess orders two row numbers by the index key columns (NULLs first).
func rowLess(rows []Row, meta *catalog.Index, a, b int32) bool {
	ra, rb := rows[a], rows[b]
	for _, c := range meta.Cols {
		va, vb := ra[c], rb[c]
		if va.IsNull() || vb.IsNull() {
			if va.IsNull() && vb.IsNull() {
				continue
			}
			return va.IsNull() // NULLs first
		}
		cmp := datum.MustCompare(va, vb)
		if cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

func buildIndex(rows []Row, meta *catalog.Index) *Index {
	idx := &Index{Meta: meta, rows: rows, order: make([]int32, len(rows))}
	for i := range idx.order {
		idx.order[i] = int32(i)
	}
	sort.SliceStable(idx.order, func(a, b int) bool {
		return rowLess(rows, meta, idx.order[a], idx.order[b])
	})
	return idx
}

// insertInPlace inserts one new row number into key order (load-time path;
// not safe concurrently with readers).
func (ix *Index) insertInPlace(rows []Row, slot int32) {
	ix.rows = rows
	pos := sort.Search(len(ix.order), func(i int) bool {
		// Upper bound: new rows land after existing equal keys, matching
		// buildIndex's stable order.
		return rowLess(rows, ix.Meta, slot, ix.order[i])
	})
	ix.order = append(ix.order, 0)
	copy(ix.order[pos+1:], ix.order[pos:])
	ix.order[pos] = slot
}

// extended returns a new index over rows that additionally covers the
// given new row numbers (which must be sorted ascending by heap position).
// The receiver is not modified.
func (ix *Index) extended(rows []Row, newSlots []int32) *Index {
	if len(newSlots) == 0 {
		return &Index{Meta: ix.Meta, rows: rows, order: ix.order}
	}
	add := append([]int32(nil), newSlots...)
	sort.SliceStable(add, func(a, b int) bool {
		return rowLess(rows, ix.Meta, add[a], add[b])
	})
	merged := make([]int32, 0, len(ix.order)+len(add))
	i, j := 0, 0
	for i < len(ix.order) && j < len(add) {
		// Stable merge: existing entries come first among equal keys.
		if rowLess(rows, ix.Meta, add[j], ix.order[i]) {
			merged = append(merged, add[j])
			j++
		} else {
			merged = append(merged, ix.order[i])
			i++
		}
	}
	merged = append(merged, ix.order[i:]...)
	merged = append(merged, add[j:]...)
	return &Index{Meta: ix.Meta, rows: rows, order: merged}
}

// keyCompare compares a row's leading index columns against key. A NULL in
// the row sorts before any non-null key value.
func (ix *Index) keyCompare(rowNum int32, key []datum.Datum) int {
	row := ix.rows[rowNum]
	for i, k := range key {
		v := row[ix.Meta.Cols[i]]
		if v.IsNull() {
			return -1
		}
		cmp := datum.MustCompare(v, k)
		if cmp != 0 {
			return cmp
		}
	}
	return 0
}

// EqualRange returns the row numbers whose leading index columns equal key.
// A NULL in the key matches nothing (SQL equality semantics). The result
// may include row versions invisible to a snapshot; scans filter with
// Table.Visible.
func (ix *Index) EqualRange(key []datum.Datum) []int32 {
	for _, k := range key {
		if k.IsNull() {
			return nil
		}
	}
	lo := sort.Search(len(ix.order), func(i int) bool {
		return ix.keyCompare(ix.order[i], key) >= 0
	})
	hi := sort.Search(len(ix.order), func(i int) bool {
		return ix.keyCompare(ix.order[i], key) > 0
	})
	return ix.order[lo:hi]
}

// Range returns the row numbers whose first index column lies in the
// interval described by lo/hi (either may be null Datum + ok=false for
// unbounded). NULL column values never match. As with EqualRange, the
// result is pre-visibility.
func (ix *Index) Range(lo datum.Datum, loInc bool, hasLo bool, hi datum.Datum, hiInc bool, hasHi bool) []int32 {
	col := ix.Meta.Cols[0]
	start := 0
	if hasLo {
		start = sort.Search(len(ix.order), func(i int) bool {
			v := ix.rows[ix.order[i]][col]
			if v.IsNull() {
				return false
			}
			cmp := datum.MustCompare(v, lo)
			if loInc {
				return cmp >= 0
			}
			return cmp > 0
		})
	} else {
		// Skip leading NULLs.
		start = sort.Search(len(ix.order), func(i int) bool {
			return !ix.rows[ix.order[i]][col].IsNull()
		})
	}
	end := len(ix.order)
	if hasHi {
		end = sort.Search(len(ix.order), func(i int) bool {
			v := ix.rows[ix.order[i]][col]
			if v.IsNull() {
				return false
			}
			cmp := datum.MustCompare(v, hi)
			if hiInc {
				return cmp > 0
			}
			return cmp >= 0
		})
	}
	if start > end {
		return nil
	}
	return ix.order[start:end]
}

// DB is a database instance: a catalog plus a storage engine holding the
// tables. The zero-config constructor uses the in-memory engine; Open
// builds one over the disk-backed append-log engine.
type DB struct {
	Catalog *catalog.Catalog
	eng     Engine
}

// NewDB creates an empty database over the given catalog, backed by the
// in-memory engine.
func NewDB(cat *catalog.Catalog) *DB {
	return &DB{Catalog: cat, eng: NewMemEngine(cat)}
}

// NewDBWithEngine creates a database over an already-open engine.
func NewDBWithEngine(cat *catalog.Catalog, eng Engine) *DB {
	return &DB{Catalog: cat, eng: eng}
}

// Engine exposes the underlying storage engine.
func (db *DB) Engine() Engine { return db.eng }

// Metrics wires an observability registry into the engine's storage.mvcc.*
// (and, for the disk engine, storage.wal.*) counters.
func (db *DB) Metrics(reg metricsRegistry) { db.eng.UseMetrics(reg) }

// CreateTable registers table metadata in the catalog and creates empty
// storage for it.
func (db *DB) CreateTable(meta *catalog.Table) (*Table, error) {
	return db.eng.CreateTable(meta)
}

// Table returns the current head version of the table by (case-insensitive)
// name, or nil. The head is a consistent single-table view; multi-table
// statements should read through a Snapshot instead.
func (db *DB) Table(name string) *Table {
	meta := db.Catalog.Table(name)
	if meta == nil {
		return nil
	}
	return db.eng.OpenTable(meta.Name)
}

// Snapshot acquires a consistent multi-table read view at the engine's
// current commit timestamp. Snapshots never block writers and writers
// never block snapshots.
func (db *DB) Snapshot() *Snapshot { return db.eng.Snapshot() }

// NewBatch starts a write batch reading from the current commit timestamp.
func (db *DB) NewBatch() *WriteBatch { return db.eng.NewBatch() }

// Commit atomically applies a write batch; see Engine.Commit.
func (db *DB) Commit(b *WriteBatch) (uint64, error) { return db.eng.Commit(b) }

// Close releases the engine (flushes and closes the WAL for the disk
// engine).
func (db *DB) Close() error { return db.eng.Close() }

// Finalize builds all indexes and collects statistics for every table.
// Call after loading data. It counts as one statistics change.
func (db *DB) Finalize() {
	for _, name := range db.eng.TableNames() {
		t := db.eng.OpenTable(name)
		t.BuildIndexes()
		t.Meta.SetStats(Analyze(t))
	}
	db.Catalog.BumpVersion()
}

// AnalyzeTable recollects optimizer statistics for one table (ANALYZE), or
// for every table when name is "". Statistics are computed over a snapshot
// of the visible rows and published atomically, and the catalog's
// statistics version is bumped so shared plan caches invalidate plans
// chosen under the old statistics. ANALYZE holds no lock that readers or
// writers can block on; indexes are already maintained incrementally by
// the write path, so none are rebuilt here.
func (db *DB) AnalyzeTable(name string) error {
	if name == "" {
		for _, n := range db.eng.TableNames() {
			db.analyzeOne(n)
		}
		db.Catalog.BumpVersion()
		return nil
	}
	t := db.Table(name)
	if t == nil {
		return fmt.Errorf("storage: table %s does not exist", name)
	}
	db.analyzeOne(t.Meta.Name)
	db.Catalog.BumpVersion()
	return nil
}

// analyzeOne refreshes one table's statistics (and, for load-time tables
// that were appended to before any BuildIndexes, builds the declared
// indexes so the legacy append-then-analyze flow still works).
func (db *DB) analyzeOne(name string) {
	t := db.eng.OpenTable(name)
	if t == nil {
		return
	}
	if len(t.indexes) < len(t.Meta.Indexes) {
		t.BuildIndexes()
	}
	t.Meta.SetStats(Analyze(t))
}

// CreateIndex adds a secondary index to an existing table (CREATE INDEX),
// builds it, and bumps the catalog's DDL version. Not safe concurrently
// with serving (the server does not expose it); committed writes maintain
// the new index from then on.
func (db *DB) CreateIndex(table string, idx *catalog.Index) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("storage: table %s does not exist", table)
	}
	for _, have := range t.Meta.Indexes {
		if have.Name == idx.Name {
			return fmt.Errorf("storage: index %s already exists on %s", idx.Name, t.Meta.Name)
		}
	}
	for _, c := range idx.Cols {
		if c < 0 || c >= len(t.Meta.Cols) {
			return fmt.Errorf("storage: index %s: column ordinal %d out of range", idx.Name, c)
		}
	}
	t.Meta.Indexes = append(t.Meta.Indexes, idx)
	//lint:allow snapmut load-time DDL documented not safe concurrently with serving; no snapshot can be holding this version yet
	t.indexes[idx.Name] = buildIndex(t.Rows, idx)
	db.Catalog.BumpVersion()
	return nil
}
