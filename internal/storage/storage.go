// Package storage implements the in-memory storage engine: heap tables,
// ordered secondary indexes with binary-search range scans, and the ANALYZE
// pass that collects the optimizer statistics defined in package catalog.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// Row is a table row: one datum per declared column.
type Row []datum.Datum

// Table is an in-memory heap table plus its built indexes.
type Table struct {
	Meta    *catalog.Table
	Rows    []Row
	indexes map[string]*Index // by index name
}

// NewTable creates an empty table for the given metadata.
func NewTable(meta *catalog.Table) *Table {
	return &Table{Meta: meta, indexes: map[string]*Index{}}
}

// Append adds a row after validating its arity and column kinds.
func (t *Table) Append(vals ...datum.Datum) error {
	if len(vals) != len(t.Meta.Cols) {
		return fmt.Errorf("storage: %s: got %d values, want %d", t.Meta.Name, len(vals), len(t.Meta.Cols))
	}
	for i, v := range vals {
		if v.IsNull() {
			if !t.Meta.Cols[i].Nullable {
				return fmt.Errorf("storage: %s.%s: NULL in non-nullable column", t.Meta.Name, t.Meta.Cols[i].Name)
			}
			continue
		}
		want := t.Meta.Cols[i].Type
		got := v.Kind()
		// Ints are acceptable in float columns.
		if got != want && !(want == datum.KFloat && got == datum.KInt) {
			return fmt.Errorf("storage: %s.%s: kind %s, want %s", t.Meta.Name, t.Meta.Cols[i].Name, got, want)
		}
	}
	t.Rows = append(t.Rows, Row(vals))
	return nil
}

// MustAppend is Append but panics on error; for test and generator code.
func (t *Table) MustAppend(vals ...datum.Datum) {
	if err := t.Append(vals...); err != nil {
		panic(err)
	}
}

// BuildIndexes (re)builds every index declared in the table metadata.
func (t *Table) BuildIndexes() {
	t.indexes = map[string]*Index{}
	for _, im := range t.Meta.Indexes {
		t.indexes[im.Name] = buildIndex(t, im)
	}
}

// Index returns the built index with the given name, or nil.
func (t *Table) Index(name string) *Index {
	return t.indexes[name]
}

// Index is an ordered secondary index: row numbers sorted by key columns.
type Index struct {
	Meta  *catalog.Index
	table *Table
	order []int32 // row numbers in key order; NULL keys sort first
}

func buildIndex(t *Table, meta *catalog.Index) *Index {
	idx := &Index{Meta: meta, table: t, order: make([]int32, len(t.Rows))}
	for i := range idx.order {
		idx.order[i] = int32(i)
	}
	sort.SliceStable(idx.order, func(a, b int) bool {
		ra, rb := t.Rows[idx.order[a]], t.Rows[idx.order[b]]
		for _, c := range meta.Cols {
			va, vb := ra[c], rb[c]
			if va.IsNull() || vb.IsNull() {
				if va.IsNull() && vb.IsNull() {
					continue
				}
				return va.IsNull() // NULLs first
			}
			cmp := datum.MustCompare(va, vb)
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return idx
}

// keyCompare compares a row's leading index columns against key. A NULL in
// the row sorts before any non-null key value.
func (ix *Index) keyCompare(rowNum int32, key []datum.Datum) int {
	row := ix.table.Rows[rowNum]
	for i, k := range key {
		v := row[ix.Meta.Cols[i]]
		if v.IsNull() {
			return -1
		}
		cmp := datum.MustCompare(v, k)
		if cmp != 0 {
			return cmp
		}
	}
	return 0
}

// EqualRange returns the row numbers whose leading index columns equal key.
// A NULL in the key matches nothing (SQL equality semantics).
func (ix *Index) EqualRange(key []datum.Datum) []int32 {
	for _, k := range key {
		if k.IsNull() {
			return nil
		}
	}
	lo := sort.Search(len(ix.order), func(i int) bool {
		return ix.keyCompare(ix.order[i], key) >= 0
	})
	hi := sort.Search(len(ix.order), func(i int) bool {
		return ix.keyCompare(ix.order[i], key) > 0
	})
	return ix.order[lo:hi]
}

// Range returns the row numbers whose first index column lies in the
// interval described by lo/hi (either may be null Datum + ok=false for
// unbounded). NULL column values never match.
func (ix *Index) Range(lo datum.Datum, loInc bool, hasLo bool, hi datum.Datum, hiInc bool, hasHi bool) []int32 {
	col := ix.Meta.Cols[0]
	start := 0
	if hasLo {
		start = sort.Search(len(ix.order), func(i int) bool {
			v := ix.table.Rows[ix.order[i]][col]
			if v.IsNull() {
				return false
			}
			cmp := datum.MustCompare(v, lo)
			if loInc {
				return cmp >= 0
			}
			return cmp > 0
		})
	} else {
		// Skip leading NULLs.
		start = sort.Search(len(ix.order), func(i int) bool {
			return !ix.table.Rows[ix.order[i]][col].IsNull()
		})
	}
	end := len(ix.order)
	if hasHi {
		end = sort.Search(len(ix.order), func(i int) bool {
			v := ix.table.Rows[ix.order[i]][col]
			if v.IsNull() {
				return false
			}
			cmp := datum.MustCompare(v, hi)
			if hiInc {
				return cmp > 0
			}
			return cmp >= 0
		})
	}
	if start > end {
		return nil
	}
	return ix.order[start:end]
}

// DB is a database instance: a catalog plus the stored tables.
type DB struct {
	Catalog *catalog.Catalog
	tables  map[string]*Table
}

// NewDB creates an empty database over the given catalog.
func NewDB(cat *catalog.Catalog) *DB {
	return &DB{Catalog: cat, tables: map[string]*Table{}}
}

// CreateTable registers table metadata in the catalog and creates empty
// storage for it.
func (db *DB) CreateTable(meta *catalog.Table) (*Table, error) {
	if err := db.Catalog.AddTable(meta); err != nil {
		return nil, err
	}
	t := NewTable(meta)
	db.tables[meta.Name] = t
	return t, nil
}

// Table returns the stored table by (case-insensitive) name, or nil.
func (db *DB) Table(name string) *Table {
	meta := db.Catalog.Table(name)
	if meta == nil {
		return nil
	}
	return db.tables[meta.Name]
}

// Finalize builds all indexes and collects statistics for every table.
// Call after loading data. It counts as one statistics change.
func (db *DB) Finalize() {
	for _, t := range db.tables {
		t.BuildIndexes()
		t.Meta.Stats = Analyze(t)
	}
	db.Catalog.BumpVersion()
}

// AnalyzeTable recollects optimizer statistics for one table (ANALYZE), or
// for every table when name is "". It rebuilds indexes over any rows
// appended since the last build and bumps the catalog's statistics version
// so shared plan caches invalidate plans chosen under the old statistics.
func (db *DB) AnalyzeTable(name string) error {
	if name == "" {
		db.Finalize()
		return nil
	}
	t := db.Table(name)
	if t == nil {
		return fmt.Errorf("storage: table %s does not exist", name)
	}
	t.BuildIndexes()
	t.Meta.Stats = Analyze(t)
	db.Catalog.BumpVersion()
	return nil
}

// CreateIndex adds a secondary index to an existing table (CREATE INDEX),
// builds it, and bumps the catalog's DDL version.
func (db *DB) CreateIndex(table string, idx *catalog.Index) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("storage: table %s does not exist", table)
	}
	for _, have := range t.Meta.Indexes {
		if have.Name == idx.Name {
			return fmt.Errorf("storage: index %s already exists on %s", idx.Name, t.Meta.Name)
		}
	}
	for _, c := range idx.Cols {
		if c < 0 || c >= len(t.Meta.Cols) {
			return fmt.Errorf("storage: index %s: column ordinal %d out of range", idx.Name, c)
		}
	}
	t.Meta.Indexes = append(t.Meta.Indexes, idx)
	t.BuildIndexes()
	db.Catalog.BumpVersion()
	return nil
}
