package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/obsv"
)

// WAL format. A data directory holds numbered segment files
// (wal-000001.log, wal-000002.log, ...), each starting with an 8-byte
// magic. Records are length-prefixed and checksummed:
//
//	[4B little-endian payload length][4B CRC-32 (Castagnoli) of payload][payload]
//
// The payload's first byte is the record type:
//
//	recSchema — a CREATE TABLE: the full table metadata, so reopening an
//	  empty catalog reconstructs the schema before any data replays.
//	recCommit — one committed write batch: commit timestamp plus its ops
//	  in order (inserts carry full rows, deletes carry rowids).
//
// Recovery invariants: records are appended and fsynced before a commit is
// applied or acknowledged, so every acknowledged commit is on disk in
// full. A crash can leave a torn record at the tail of the last segment
// (short header, short payload, or CRC mismatch); recovery truncates the
// segment at the last valid record and discards the tail — by
// write-before-ack, a torn record can only belong to an unacknowledged
// commit. Replaying all segments in order therefore reproduces exactly the
// committed-transaction state.
const (
	walMagic = "CBQTWAL1"

	recSchema byte = 1
	recCommit byte = 2

	// walSegMaxBytes is the rotation threshold: a record that would push a
	// segment past this size goes to a fresh segment instead. Segments cap
	// the recovery unit and keep file sizes bounded.
	walSegMaxBytes = 4 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// errTornRecord marks an incomplete or corrupt tail record during replay.
var errTornRecord = errors.New("storage: torn WAL record")

// walEnc is an append-only payload encoder over a byte slice.
type walEnc struct{ buf []byte }

func (e *walEnc) b(v byte)     { e.buf = append(e.buf, v) }
func (e *walEnc) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *walEnc) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *walEnc) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *walEnc) ints(v []int) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}

func (e *walEnc) datum(d datum.Datum) {
	if d.IsNull() {
		e.b(byte(datum.KNull))
		return
	}
	e.b(byte(d.Kind()))
	switch d.Kind() {
	case datum.KInt:
		e.i64(d.Int())
	case datum.KFloat:
		e.u64(math.Float64bits(d.Float()))
	case datum.KString:
		e.str(d.Str())
	case datum.KBool:
		if d.Bool() {
			e.b(1)
		} else {
			e.b(0)
		}
	}
}

// walDec decodes a payload; any malformation surfaces as errTornRecord so
// the replayer treats it like a torn tail.
type walDec struct{ buf []byte }

func (d *walDec) b() (byte, error) {
	if len(d.buf) == 0 {
		return 0, errTornRecord
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v, nil
}

func (d *walDec) u64() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, errTornRecord
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *walDec) i64() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, errTornRecord
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *walDec) str() (string, error) {
	n, err := d.u64()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)) < n {
		return "", errTornRecord
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

func (d *walDec) ints() ([]int, error) {
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)) { // each element is at least one byte
		return nil, errTornRecord
	}
	out := make([]int, n)
	for i := range out {
		v, err := d.i64()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

func (d *walDec) datum() (datum.Datum, error) {
	k, err := d.b()
	if err != nil {
		return datum.Null, err
	}
	switch datum.Kind(k) {
	case datum.KNull:
		return datum.Null, nil
	case datum.KInt:
		v, err := d.i64()
		return datum.NewInt(v), err
	case datum.KFloat:
		v, err := d.u64()
		return datum.NewFloat(math.Float64frombits(v)), err
	case datum.KString:
		v, err := d.str()
		return datum.NewString(v), err
	case datum.KBool:
		v, err := d.b()
		return datum.NewBool(v != 0), err
	}
	return datum.Null, errTornRecord
}

// encodeSchema renders a recSchema payload for a table definition.
func encodeSchema(meta *catalog.Table) []byte {
	e := &walEnc{}
	e.b(recSchema)
	e.str(meta.Name)
	e.u64(uint64(len(meta.Cols)))
	for _, c := range meta.Cols {
		e.str(c.Name)
		e.b(byte(c.Type))
		if c.Nullable {
			e.b(1)
		} else {
			e.b(0)
		}
	}
	e.ints(meta.PrimaryKey)
	e.u64(uint64(len(meta.UniqueKeys)))
	for _, u := range meta.UniqueKeys {
		e.ints(u)
	}
	e.u64(uint64(len(meta.ForeignKeys)))
	for _, fk := range meta.ForeignKeys {
		e.ints(fk.Cols)
		e.str(fk.RefTable)
		e.ints(fk.RefCols)
	}
	e.u64(uint64(len(meta.Indexes)))
	for _, ix := range meta.Indexes {
		e.str(ix.Name)
		e.ints(ix.Cols)
		if ix.Unique {
			e.b(1)
		} else {
			e.b(0)
		}
	}
	return e.buf
}

func decodeSchema(d *walDec) (*catalog.Table, error) {
	meta := &catalog.Table{}
	var err error
	if meta.Name, err = d.str(); err != nil {
		return nil, err
	}
	ncols, err := d.u64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ncols; i++ {
		var c catalog.Column
		if c.Name, err = d.str(); err != nil {
			return nil, err
		}
		k, err := d.b()
		if err != nil {
			return nil, err
		}
		c.Type = datum.Kind(k)
		nn, err := d.b()
		if err != nil {
			return nil, err
		}
		c.Nullable = nn != 0
		meta.Cols = append(meta.Cols, c)
	}
	if meta.PrimaryKey, err = d.ints(); err != nil {
		return nil, err
	}
	nuk, err := d.u64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nuk; i++ {
		u, err := d.ints()
		if err != nil {
			return nil, err
		}
		meta.UniqueKeys = append(meta.UniqueKeys, u)
	}
	nfk, err := d.u64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nfk; i++ {
		var fk catalog.ForeignKey
		if fk.Cols, err = d.ints(); err != nil {
			return nil, err
		}
		if fk.RefTable, err = d.str(); err != nil {
			return nil, err
		}
		if fk.RefCols, err = d.ints(); err != nil {
			return nil, err
		}
		meta.ForeignKeys = append(meta.ForeignKeys, fk)
	}
	nix, err := d.u64()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nix; i++ {
		ix := &catalog.Index{}
		if ix.Name, err = d.str(); err != nil {
			return nil, err
		}
		if ix.Cols, err = d.ints(); err != nil {
			return nil, err
		}
		un, err := d.b()
		if err != nil {
			return nil, err
		}
		ix.Unique = un != 0
		meta.Indexes = append(meta.Indexes, ix)
	}
	return meta, nil
}

// encodeCommit renders a recCommit payload for a validated batch.
func encodeCommit(commitTS uint64, ops []op) []byte {
	e := &walEnc{}
	e.b(recCommit)
	e.u64(commitTS)
	e.u64(uint64(len(ops)))
	for _, o := range ops {
		e.str(o.table)
		if o.row != nil {
			e.b(0) // insert
			e.u64(uint64(len(o.row)))
			for _, v := range o.row {
				e.datum(v)
			}
		} else {
			e.b(1) // delete
			e.u64(uint64(o.rid))
		}
	}
	return e.buf
}

func decodeCommit(d *walDec) (uint64, []op, error) {
	ts, err := d.u64()
	if err != nil {
		return 0, nil, err
	}
	n, err := d.u64()
	if err != nil {
		return 0, nil, err
	}
	ops := make([]op, 0, n)
	for i := uint64(0); i < n; i++ {
		var o op
		if o.table, err = d.str(); err != nil {
			return 0, nil, err
		}
		kind, err := d.b()
		if err != nil {
			return 0, nil, err
		}
		switch kind {
		case 0:
			nc, err := d.u64()
			if err != nil {
				return 0, nil, err
			}
			if nc > uint64(len(d.buf)) { // each datum is at least one byte
				return 0, nil, errTornRecord
			}
			o.row = make(Row, nc)
			for c := range o.row {
				if o.row[c], err = d.datum(); err != nil {
					return 0, nil, err
				}
			}
		case 1:
			rid, err := d.u64()
			if err != nil {
				return 0, nil, err
			}
			o.rid = int32(rid)
		default:
			return 0, nil, errTornRecord
		}
		ops = append(ops, o)
	}
	return ts, ops, nil
}

// walWriter appends records to the current segment, rotating at the size
// threshold. Not safe for concurrent use; the disk engine serializes
// through its commit lock.
type walWriter struct {
	dir     string
	seg     *os.File
	segNum  int
	segSize int64
	metrics walMetrics
}

// walMetrics are the storage.wal.* counters; all nil-safe.
type walMetrics struct {
	appends  *obsv.Counter // storage.wal.appends
	fsyncs   *obsv.Counter // storage.wal.fsyncs
	bytes    *obsv.Counter // storage.wal.bytes
	segments *obsv.Counter // storage.wal.segments
	replayed *obsv.Counter // storage.wal.replayed_commits
	torn     *obsv.Counter // storage.wal.torn_tails
}

func newWalMetrics(reg *obsv.Registry) walMetrics {
	if reg == nil {
		return walMetrics{}
	}
	return walMetrics{
		appends:  reg.Counter("storage.wal.appends"),
		fsyncs:   reg.Counter("storage.wal.fsyncs"),
		bytes:    reg.Counter("storage.wal.bytes"),
		segments: reg.Counter("storage.wal.segments"),
		replayed: reg.Counter("storage.wal.replayed_commits"),
		torn:     reg.Counter("storage.wal.torn_tails"),
	}
}

func segName(n int) string { return fmt.Sprintf("wal-%06d.log", n) }

func walSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

func openWalWriter(dir string, lastSeg int) (*walWriter, error) {
	w := &walWriter{dir: dir, segNum: lastSeg}
	if lastSeg == 0 {
		if err := w.rotate(); err != nil {
			return nil, err
		}
		return w, nil
	}
	path := filepath.Join(dir, segName(lastSeg))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		//lint:allow errdrop best-effort cleanup on the stat-failure path; the stat error is the one the caller must see
		f.Close()
		return nil, err
	}
	w.seg = f
	w.segSize = st.Size()
	return w, nil
}

// rotate closes the current segment and starts the next one.
func (w *walWriter) rotate() error {
	if w.seg != nil {
		if err := w.seg.Close(); err != nil {
			return err
		}
	}
	w.segNum++
	path := filepath.Join(w.dir, segName(w.segNum))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		//lint:allow errdrop best-effort cleanup of a segment we are abandoning; the write error already fails the rotation
		f.Close()
		return err
	}
	w.seg = f
	w.segSize = int64(len(walMagic))
	w.metrics.segments.Inc()
	return nil
}

// append writes one record and fsyncs it (write-before-ack durability).
func (w *walWriter) append(payload []byte) error {
	recSize := int64(8 + len(payload))
	if w.segSize+recSize > walSegMaxBytes && w.segSize > int64(len(walMagic)) {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, walCRC))
	if _, err := w.seg.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.seg.Write(payload); err != nil {
		return err
	}
	if err := w.seg.Sync(); err != nil {
		return err
	}
	w.segSize += recSize
	w.metrics.appends.Inc()
	w.metrics.fsyncs.Inc()
	w.metrics.bytes.Add(recSize)
	return nil
}

func (w *walWriter) close() error {
	if w.seg == nil {
		return nil
	}
	err := w.seg.Close()
	w.seg = nil
	return err
}

// replaySegment reads every valid record of one segment, invoking apply
// per payload. It returns the byte offset of the first invalid record (or
// file size if all records are valid) so the caller can truncate a torn
// tail, and whether a torn tail was found.
func replaySegment(path string, apply func(payload []byte) error) (validEnd int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return 0, false, fmt.Errorf("storage: %s: bad WAL magic", filepath.Base(path))
	}
	off := int64(len(walMagic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, false, nil
		}
		if len(rest) < 8 {
			return off, true, nil
		}
		plen := int64(binary.LittleEndian.Uint32(rest[0:4]))
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if int64(len(rest)) < 8+plen {
			return off, true, nil
		}
		payload := rest[8 : 8+plen]
		if crc32.Checksum(payload, walCRC) != crc {
			return off, true, nil
		}
		if err := apply(payload); err != nil {
			if errors.Is(err, errTornRecord) {
				return off, true, nil
			}
			return off, false, err
		}
		off += 8 + plen
	}
}

// replayWAL replays all segments in dir into the store: schema records
// re-create tables, commit records re-apply batches in commit order. The
// last segment may be truncated at a torn tail. Returns the number of the
// last segment (0 if none) so the writer can continue appending to it.
func replayWAL(dir string, s *store, m walMetrics) (lastSeg int, err error) {
	segs, err := walSegments(dir)
	if err != nil {
		return 0, err
	}
	apply := func(payload []byte) error {
		d := &walDec{buf: payload}
		typ, err := d.b()
		if err != nil {
			return err
		}
		switch typ {
		case recSchema:
			meta, err := decodeSchema(d)
			if err != nil {
				return err
			}
			if _, err := s.createTable(meta); err != nil {
				return fmt.Errorf("storage: replay schema: %w", err)
			}
		case recCommit:
			ts, ops, err := decodeCommit(d)
			if err != nil {
				return err
			}
			s.applyOps(ts, ops)
			s.committed.Store(ts)
			s.cat.BumpDataVersion()
			m.replayed.Inc()
		default:
			return errTornRecord
		}
		return nil
	}
	for i, name := range segs {
		path := filepath.Join(dir, name)
		validEnd, torn, err := replaySegment(path, apply)
		if err != nil {
			return 0, err
		}
		if torn {
			if i != len(segs)-1 {
				return 0, fmt.Errorf("storage: %s: torn record in non-final segment", name)
			}
			m.torn.Inc()
			if err := os.Truncate(path, validEnd); err != nil {
				return 0, err
			}
		}
		var n int
		if _, err := fmt.Sscanf(name, "wal-%06d.log", &n); err == nil && n > lastSeg {
			lastSeg = n
		}
	}
	return lastSeg, nil
}

var _ io.Closer = (*DiskEngine)(nil)
