package storage

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/catalog"
)

// DiskEngine is the disk-backed append-log storage engine: the same MVCC
// store as MemEngine, made durable by a segmented WAL. Every CREATE TABLE
// and every commit is appended and fsynced before it is applied or
// acknowledged; opening a data directory replays the log (truncating a
// torn tail left by a crash) and rebuilds the in-memory heaps, indexes,
// and statistics, reproducing exactly the committed-transaction state.
type DiskEngine struct {
	s   *store
	dir string

	// walMu guards the writer for schema records, which are written
	// outside the store's commit lock. Commit records are written under
	// commitMu via the store's log hook; the two never interleave because
	// CreateTable is not concurrent with serving, but the lock keeps the
	// writer safe regardless.
	walMu sync.Mutex
	w     *walWriter
}

var (
	_ Engine = (*MemEngine)(nil)
	_ Engine = (*DiskEngine)(nil)
)

// OpenDiskEngine opens (or initializes) a data directory over the given
// catalog. The catalog must not already contain tables that the WAL also
// defines — the intended use is a fresh catalog that the replay populates.
// After replay, indexes are rebuilt in memory and statistics recollected,
// so the database is immediately servable.
func OpenDiskEngine(dir string, cat *catalog.Catalog) (*DiskEngine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := newStore(cat)
	var m walMetrics
	lastSeg, err := replayWAL(dir, s, m)
	if err != nil {
		return nil, err
	}
	w, err := openWalWriter(dir, lastSeg)
	if err != nil {
		return nil, err
	}
	e := &DiskEngine{s: s, dir: dir, w: w}
	s.logFn = e.logCommit
	// Rebuild what the log does not store: indexes and statistics.
	for _, name := range s.tableNames() {
		t := s.openTable(name)
		t.BuildIndexes()
		t.Meta.SetStats(Analyze(t))
	}
	if len(s.tableNames()) > 0 {
		cat.BumpVersion()
	}
	return e, nil
}

// logCommit is the store's durability hook: append + fsync the commit
// record before the commit is applied.
func (e *DiskEngine) logCommit(commitTS uint64, b *WriteBatch) error {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	return e.w.append(encodeCommit(commitTS, b.ops))
}

// CreateTable logs the schema durably, then registers the table.
func (e *DiskEngine) CreateTable(meta *catalog.Table) (*Table, error) {
	if e.s.cat.Table(meta.Name) != nil {
		return nil, fmt.Errorf("catalog: table %s already exists", meta.Name)
	}
	e.walMu.Lock()
	err := e.w.append(encodeSchema(meta))
	e.walMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("storage: log schema: %w", err)
	}
	return e.s.createTable(meta)
}

func (e *DiskEngine) OpenTable(name string) *Table         { return e.s.openTable(name) }
func (e *DiskEngine) TableNames() []string                 { return e.s.tableNames() }
func (e *DiskEngine) Snapshot() *Snapshot                  { return e.s.snapshot() }
func (e *DiskEngine) NewBatch() *WriteBatch                { return e.s.newBatch() }
func (e *DiskEngine) Commit(b *WriteBatch) (uint64, error) { return e.s.commit(b) }

func (e *DiskEngine) UseMetrics(reg metricsRegistry) {
	e.s.metrics = newStoreMetrics(reg)
	e.walMu.Lock()
	e.w.metrics = newWalMetrics(reg)
	e.walMu.Unlock()
}

// Close flushes and closes the WAL. Further commits fail.
func (e *DiskEngine) Close() error {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	return e.w.close()
}

// Dir returns the engine's data directory.
func (e *DiskEngine) Dir() string { return e.dir }

// Mirror copies every table of src into dst: schemas are cloned (fresh
// metadata objects, since catalog ownership is per-engine), all currently
// visible rows are inserted through one write batch per table, and dst is
// finalized (indexes + statistics). It is the standard way to seed a disk
// engine from a generated in-memory dataset, and the differential oracle
// uses it to start two engines from identical states.
func Mirror(src *DB, dst *DB) error {
	for _, meta := range src.Catalog.Tables() {
		clone := CloneMeta(meta)
		if _, err := dst.CreateTable(clone); err != nil {
			return err
		}
		t := src.Table(meta.Name)
		if t == nil {
			continue
		}
		b := dst.NewBatch()
		for _, r := range t.VisibleRows() {
			if err := b.Insert(clone.Name, r); err != nil {
				return err
			}
		}
		if _, err := dst.Commit(b); err != nil {
			return err
		}
	}
	dst.Finalize()
	return nil
}

// CloneMeta deep-copies table metadata without its statistics, for
// registering the same schema in a second catalog.
func CloneMeta(meta *catalog.Table) *catalog.Table {
	out := &catalog.Table{
		Name:       meta.Name,
		Cols:       append([]catalog.Column(nil), meta.Cols...),
		PrimaryKey: append([]int(nil), meta.PrimaryKey...),
	}
	for _, u := range meta.UniqueKeys {
		out.UniqueKeys = append(out.UniqueKeys, append([]int(nil), u...))
	}
	for _, fk := range meta.ForeignKeys {
		out.ForeignKeys = append(out.ForeignKeys, catalog.ForeignKey{
			Cols:     append([]int(nil), fk.Cols...),
			RefTable: fk.RefTable,
			RefCols:  append([]int(nil), fk.RefCols...),
		})
	}
	for _, ix := range meta.Indexes {
		out.Indexes = append(out.Indexes, &catalog.Index{
			Name:   ix.Name,
			Cols:   append([]int(nil), ix.Cols...),
			Unique: ix.Unique,
		})
	}
	return out
}
