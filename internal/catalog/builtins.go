package catalog

import (
	"fmt"
	"strings"

	"repro/internal/datum"
)

// builtins returns the built-in scalar function definitions.
func builtins() []*FuncDef {
	return []*FuncDef{
		{
			Name: "UPPER", MinArgs: 1, MaxArgs: 1, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				if args[0].IsNull() {
					return datum.Null, nil
				}
				return datum.NewString(strings.ToUpper(args[0].Str())), nil
			},
		},
		{
			Name: "LOWER", MinArgs: 1, MaxArgs: 1, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				if args[0].IsNull() {
					return datum.Null, nil
				}
				return datum.NewString(strings.ToLower(args[0].Str())), nil
			},
		},
		{
			Name: "LENGTH", MinArgs: 1, MaxArgs: 1, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				if args[0].IsNull() {
					return datum.Null, nil
				}
				return datum.NewInt(int64(len(args[0].Str()))), nil
			},
		},
		{
			Name: "SUBSTR", MinArgs: 2, MaxArgs: 3, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				for _, a := range args {
					if a.IsNull() {
						return datum.Null, nil
					}
				}
				s := args[0].Str()
				start := int(args[1].Int()) // 1-based, as in Oracle
				if start < 1 {
					start = 1
				}
				if start > len(s) {
					return datum.NewString(""), nil
				}
				end := len(s)
				if len(args) == 3 {
					if n := int(args[2].Int()); start-1+n < end {
						end = start - 1 + n
					}
				}
				return datum.NewString(s[start-1 : end]), nil
			},
		},
		{
			Name: "MOD", MinArgs: 2, MaxArgs: 2, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				if args[0].IsNull() || args[1].IsNull() {
					return datum.Null, nil
				}
				d := args[1].Int()
				if d == 0 {
					return args[0], nil // Oracle MOD(x, 0) = x
				}
				return datum.NewInt(args[0].Int() % d), nil
			},
		},
		{
			Name: "ABS", MinArgs: 1, MaxArgs: 1, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				a := args[0]
				switch a.Kind() {
				case datum.KNull:
					return datum.Null, nil
				case datum.KInt:
					if v := a.Int(); v < 0 {
						return datum.NewInt(-v), nil
					}
					return a, nil
				case datum.KFloat:
					if v := a.Float(); v < 0 {
						return datum.NewFloat(-v), nil
					}
					return a, nil
				}
				return datum.Null, fmt.Errorf("ABS: bad argument kind %s", a.Kind())
			},
		},
		{
			// NVL(a, b): Oracle's COALESCE for two arguments.
			Name: "NVL", MinArgs: 2, MaxArgs: 2, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				if args[0].IsNull() {
					return args[1], nil
				}
				return args[0], nil
			},
		},
		{
			Name: "COALESCE", MinArgs: 2, MaxArgs: 6, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				for _, a := range args {
					if !a.IsNull() {
						return a, nil
					}
				}
				return datum.Null, nil
			},
		},
		{
			// NULLIF(a, b): NULL when a = b, otherwise a.
			Name: "NULLIF", MinArgs: 2, MaxArgs: 2, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				if datum.SameValue(args[0], args[1]) {
					return datum.Null, nil
				}
				return args[0], nil
			},
		},
		{
			Name: "GREATEST", MinArgs: 2, MaxArgs: 6, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				best := args[0]
				for _, a := range args[1:] {
					if a.IsNull() || best.IsNull() {
						return datum.Null, nil
					}
					c, err := datum.Compare(a, best)
					if err != nil {
						return datum.Null, err
					}
					if c > 0 {
						best = a
					}
				}
				return best, nil
			},
		},
		{
			Name: "LEAST", MinArgs: 2, MaxArgs: 6, CostPerCall: 0.01,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				best := args[0]
				for _, a := range args[1:] {
					if a.IsNull() || best.IsNull() {
						return datum.Null, nil
					}
					c, err := datum.Compare(a, best)
					if err != nil {
						return datum.Null, err
					}
					if c < 0 {
						best = a
					}
				}
				return best, nil
			},
		},
		{
			// SLOW_MATCH(s, pat) is an intentionally expensive predicate
			// function standing in for the paper's "procedural language
			// functions" (§2.2.6). It reports whether pat occurs in s after
			// performing deliberately redundant work proportional to
			// CostPerCall.
			Name: "SLOW_MATCH", MinArgs: 2, MaxArgs: 2,
			Expensive: true, CostPerCall: 50,
			Eval: func(args []datum.Datum) (datum.Datum, error) {
				if args[0].IsNull() || args[1].IsNull() {
					return datum.Null, nil
				}
				s, pat := args[0].Str(), args[1].Str()
				// Burn cycles so the executor's timing reflects the
				// optimizer's expensive-predicate costing.
				sink := 0
				for i := 0; i < 2000; i++ {
					for j := 0; j < len(s); j++ {
						sink += int(s[j])
					}
				}
				_ = sink
				return datum.NewBool(strings.Contains(s, pat)), nil
			},
		},
	}
}
