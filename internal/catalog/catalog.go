// Package catalog holds schema metadata: tables, columns, integrity
// constraints (primary/unique keys and foreign keys), secondary indexes,
// optimizer statistics, and the scalar function registry.
//
// Constraints drive the join elimination transformation (paper §2.1.2);
// statistics drive the cost model; the function registry marks predicates
// as expensive for the predicate pull-up transformation (§2.2.6).
package catalog

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/datum"
)

// Column describes one table column.
type Column struct {
	Name     string
	Type     datum.Kind
	Nullable bool
}

// ForeignKey records that Cols of the owning table reference RefCols of
// RefTable (which must form a primary or unique key there).
type ForeignKey struct {
	Cols     []int
	RefTable string
	RefCols  []int
}

// Index describes a secondary index over the owning table.
type Index struct {
	Name   string
	Cols   []int
	Unique bool
}

// Table describes a base table.
type Table struct {
	Name        string
	Cols        []Column
	PrimaryKey  []int // ordinals; empty if none
	UniqueKeys  [][]int
	ForeignKeys []ForeignKey
	Indexes     []*Index

	// stats is the current optimizer statistics, published atomically so
	// ANALYZE can refresh it while concurrent optimizations read it (no
	// DDL lock). A *TableStats is immutable once published.
	stats atomic.Pointer[TableStats]
}

// Stats returns the current optimizer statistics, or nil before the first
// ANALYZE. The returned snapshot is immutable; a concurrent ANALYZE
// publishes a fresh one without disturbing readers.
func (t *Table) Stats() *TableStats { return t.stats.Load() }

// SetStats atomically publishes new optimizer statistics.
func (t *Table) SetStats(s *TableStats) { t.stats.Store(s) }

// Ordinal returns the ordinal of the named column, or -1.
func (t *Table) Ordinal(name string) int {
	name = strings.ToUpper(name)
	for i, c := range t.Cols {
		if strings.ToUpper(c.Name) == name {
			return i
		}
	}
	return -1
}

// RowidOrdinal is the ordinal of the implicit ROWID pseudo-column, which
// follows the declared columns in every base-table row produced by a scan.
func (t *Table) RowidOrdinal() int { return len(t.Cols) }

// NumCols returns the number of declared columns (excluding ROWID).
func (t *Table) NumCols() int { return len(t.Cols) }

// IsUniqueKey reports whether the given set of column ordinals contains a
// primary key or declared unique key of the table (a superset is still
// unique).
func (t *Table) IsUniqueKey(ords []int) bool {
	have := map[int]bool{}
	for _, o := range ords {
		have[o] = true
	}
	covers := func(key []int) bool {
		if len(key) == 0 {
			return false
		}
		for _, k := range key {
			if !have[k] {
				return false
			}
		}
		return true
	}
	if covers(t.PrimaryKey) {
		return true
	}
	for _, u := range t.UniqueKeys {
		if covers(u) {
			return true
		}
	}
	for _, idx := range t.Indexes {
		if idx.Unique && covers(idx.Cols) {
			return true
		}
	}
	return false
}

// FindIndex returns an index whose leading columns match the given ordinals
// (in any order for the prefix), or nil.
func (t *Table) FindIndex(ords []int) *Index {
	if len(ords) == 0 {
		return nil
	}
	want := map[int]bool{}
	for _, o := range ords {
		want[o] = true
	}
	for _, idx := range t.Indexes {
		if len(idx.Cols) < len(ords) {
			continue
		}
		ok := true
		for i := 0; i < len(ords); i++ {
			if !want[idx.Cols[i]] {
				ok = false
				break
			}
		}
		if ok {
			return idx
		}
	}
	return nil
}

// FuncDef describes a scalar SQL function. Expensive functions (procedural
// language functions in the paper) are candidates for predicate pull-up.
type FuncDef struct {
	Name        string
	MinArgs     int
	MaxArgs     int
	Expensive   bool
	CostPerCall float64 // optimizer cost units per invocation
	Eval        func(args []datum.Datum) (datum.Datum, error)
}

// Catalog is the collection of tables and functions visible to a query.
type Catalog struct {
	tables map[string]*Table
	funcs  map[string]*FuncDef
	// version counts statistics and DDL changes (ANALYZE, CREATE INDEX,
	// CREATE TABLE). Plan caches embed it in their keys so any change
	// invalidates every plan optimized under the old statistics.
	version atomic.Int64
	// dataVersion counts committed write transactions (INSERT, UPDATE,
	// DELETE). It does not key the plan cache — cached plans stay correct
	// under data churn because every execution reads its own snapshot —
	// but it lets ANALYZE policies, tests and observability see how far
	// the stored data has drifted from the statistics the optimizer used.
	dataVersion atomic.Int64
}

// Version returns the current statistics/DDL version. It starts at 0 and
// only ever grows.
func (c *Catalog) Version() int64 { return c.version.Load() }

// BumpVersion records a statistics or DDL change and returns the new
// version. Safe for concurrent use.
func (c *Catalog) BumpVersion() int64 { return c.version.Add(1) }

// DataVersion returns the number of committed write transactions.
func (c *Catalog) DataVersion() int64 { return c.dataVersion.Load() }

// BumpDataVersion records one committed write transaction.
func (c *Catalog) BumpDataVersion() int64 { return c.dataVersion.Add(1) }

// New returns an empty catalog pre-populated with the built-in scalar
// functions.
func New() *Catalog {
	c := &Catalog{
		tables: map[string]*Table{},
		funcs:  map[string]*FuncDef{},
	}
	for _, f := range builtins() {
		c.funcs[f.Name] = f
	}
	return c
}

// AddTable registers a table. It returns an error if the name is taken or
// the definition is inconsistent.
func (c *Catalog) AddTable(t *Table) error {
	name := strings.ToUpper(t.Name)
	if _, ok := c.tables[name]; ok {
		return fmt.Errorf("catalog: table %s already exists", name)
	}
	for _, o := range t.PrimaryKey {
		if o < 0 || o >= len(t.Cols) {
			return fmt.Errorf("catalog: table %s: primary key ordinal %d out of range", name, o)
		}
	}
	for _, fk := range t.ForeignKeys {
		if len(fk.Cols) != len(fk.RefCols) {
			return fmt.Errorf("catalog: table %s: foreign key arity mismatch", name)
		}
	}
	t.Name = name
	c.tables[name] = t
	return nil
}

// Table resolves a table by name (case-insensitive). It returns nil if the
// table does not exist.
func (c *Catalog) Table(name string) *Table {
	return c.tables[strings.ToUpper(name)]
}

// Tables returns all registered tables (unordered).
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// AddFunc registers a scalar function, replacing any existing definition
// with the same (upper-cased) name.
func (c *Catalog) AddFunc(f *FuncDef) {
	f.Name = strings.ToUpper(f.Name)
	c.funcs[f.Name] = f
}

// Func resolves a scalar function by name, or nil.
func (c *Catalog) Func(name string) *FuncDef {
	return c.funcs[strings.ToUpper(name)]
}

// FKFromTo returns the foreign key on child whose referenced table is
// parent, or nil. Used by join elimination.
func (c *Catalog) FKFromTo(child, parent *Table) *ForeignKey {
	for i := range child.ForeignKeys {
		fk := &child.ForeignKeys[i]
		if strings.ToUpper(fk.RefTable) == parent.Name {
			return fk
		}
	}
	return nil
}
