package catalog

import (
	"testing"

	"repro/internal/datum"
)

func empTable() *Table {
	return &Table{
		Name: "EMP",
		Cols: []Column{
			{Name: "EMP_ID", Type: datum.KInt},
			{Name: "DEPT_ID", Type: datum.KInt, Nullable: true},
			{Name: "NAME", Type: datum.KString},
		},
		PrimaryKey: []int{0},
		UniqueKeys: [][]int{{2}},
		ForeignKeys: []ForeignKey{
			{Cols: []int{1}, RefTable: "DEPT", RefCols: []int{0}},
		},
		Indexes: []*Index{
			{Name: "EMP_PK", Cols: []int{0}, Unique: true},
			{Name: "EMP_DEPT_NAME", Cols: []int{1, 2}},
		},
	}
}

func TestAddAndResolveTable(t *testing.T) {
	c := New()
	if err := c.AddTable(empTable()); err != nil {
		t.Fatal(err)
	}
	if c.Table("emp") == nil || c.Table("EMP") == nil {
		t.Error("case-insensitive table lookup")
	}
	if c.Table("nope") != nil {
		t.Error("missing table should be nil")
	}
	if err := c.AddTable(empTable()); err == nil {
		t.Error("duplicate table should error")
	}
	if len(c.Tables()) != 1 {
		t.Errorf("tables = %d", len(c.Tables()))
	}
}

func TestAddTableValidation(t *testing.T) {
	c := New()
	bad := empTable()
	bad.Name = "BAD1"
	bad.PrimaryKey = []int{99}
	if err := c.AddTable(bad); err == nil {
		t.Error("out-of-range PK ordinal should error")
	}
	bad2 := empTable()
	bad2.Name = "BAD2"
	bad2.ForeignKeys = []ForeignKey{{Cols: []int{0, 1}, RefTable: "X", RefCols: []int{0}}}
	if err := c.AddTable(bad2); err == nil {
		t.Error("FK arity mismatch should error")
	}
}

func TestOrdinalAndRowid(t *testing.T) {
	tb := empTable()
	if tb.Ordinal("dept_id") != 1 {
		t.Error("ordinal lookup is case-insensitive")
	}
	if tb.Ordinal("missing") != -1 {
		t.Error("missing column")
	}
	if tb.RowidOrdinal() != 3 || tb.NumCols() != 3 {
		t.Error("rowid follows declared columns")
	}
}

func TestIsUniqueKey(t *testing.T) {
	tb := empTable()
	cases := []struct {
		ords []int
		want bool
	}{
		{[]int{0}, true},    // PK
		{[]int{2}, true},    // declared unique
		{[]int{0, 1}, true}, // superset of PK
		{[]int{1}, false},   // plain column
		{nil, false},        // empty set
		{[]int{1, 2}, true}, // superset of unique key
	}
	for _, c := range cases {
		if got := tb.IsUniqueKey(c.ords); got != c.want {
			t.Errorf("IsUniqueKey(%v) = %v, want %v", c.ords, got, c.want)
		}
	}
	// A unique index also counts.
	tb2 := empTable()
	tb2.PrimaryKey = nil
	tb2.UniqueKeys = nil
	if !tb2.IsUniqueKey([]int{0}) {
		t.Error("unique index should qualify as key")
	}
}

func TestFindIndex(t *testing.T) {
	tb := empTable()
	if idx := tb.FindIndex([]int{0}); idx == nil || idx.Name != "EMP_PK" {
		t.Error("leading-column match")
	}
	if idx := tb.FindIndex([]int{1}); idx == nil || idx.Name != "EMP_DEPT_NAME" {
		t.Error("prefix match on composite index")
	}
	if idx := tb.FindIndex([]int{2, 1}); idx == nil {
		t.Error("order-insensitive prefix match")
	}
	if tb.FindIndex([]int{2}) != nil {
		t.Error("non-leading column must not match")
	}
	if tb.FindIndex(nil) != nil {
		t.Error("empty ordinal set")
	}
}

func TestFuncRegistryOverride(t *testing.T) {
	c := New()
	c.AddFunc(&FuncDef{
		Name: "custom_fn", MinArgs: 1, MaxArgs: 1, Expensive: true, CostPerCall: 9,
		Eval: func(args []datum.Datum) (datum.Datum, error) { return args[0], nil },
	})
	f := c.Func("CUSTOM_FN")
	if f == nil || !f.Expensive || f.Name != "CUSTOM_FN" {
		t.Fatalf("custom function registration: %+v", f)
	}
	// Replacing a builtin is allowed.
	c.AddFunc(&FuncDef{Name: "UPPER", MinArgs: 1, MaxArgs: 1,
		Eval: func(args []datum.Datum) (datum.Datum, error) { return args[0], nil }})
	if c.Func("upper").CostPerCall != 0 {
		t.Error("override should replace the builtin")
	}
}

func TestFKFromTo(t *testing.T) {
	c := New()
	dept := &Table{Name: "DEPT", Cols: []Column{{Name: "DEPT_ID", Type: datum.KInt}}, PrimaryKey: []int{0}}
	if err := c.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	emp := empTable()
	if err := c.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	fk := c.FKFromTo(emp, dept)
	if fk == nil || fk.Cols[0] != 1 {
		t.Fatalf("FK lookup: %+v", fk)
	}
	if c.FKFromTo(dept, emp) != nil {
		t.Error("reverse direction has no FK")
	}
}

func TestStatsAccessors(t *testing.T) {
	st := &TableStats{RowCount: 10, Cols: []ColStats{{NDV: 5}}}
	if st.Col(0).NDV != 5 {
		t.Error("col stats")
	}
	if st.Col(3).NDV != 0 {
		t.Error("out-of-range stats are zero")
	}
	var nilStats *TableStats
	if nilStats.Col(0).NDV != 0 {
		t.Error("nil stats are zero")
	}
}
