package catalog

import "repro/internal/datum"

// ColStats are optimizer statistics for one column.
type ColStats struct {
	NDV       int64 // number of distinct non-null values
	NullCount int64
	Min, Max  datum.Datum  // null when the column is entirely null or empty
	Hist      []HistBucket // equi-height histogram (optional)
}

// HistBucket is one bucket of an equi-height histogram: Count rows have
// values <= UpperBound (and > the previous bucket's bound).
type HistBucket struct {
	UpperBound datum.Datum
	Count      int64
}

// TableStats are optimizer statistics for a table.
type TableStats struct {
	RowCount int64
	Cols     []ColStats // indexed by column ordinal
}

// Col returns the stats for column ordinal i, or a zero value if absent.
func (s *TableStats) Col(i int) ColStats {
	if s == nil || i < 0 || i >= len(s.Cols) {
		return ColStats{}
	}
	return s.Cols[i]
}
