package catalog

import (
	"testing"

	"repro/internal/datum"
)

func evalFn(t *testing.T, name string, args ...datum.Datum) datum.Datum {
	t.Helper()
	c := New()
	f := c.Func(name)
	if f == nil {
		t.Fatalf("builtin %s missing", name)
	}
	if len(args) < f.MinArgs || len(args) > f.MaxArgs {
		t.Fatalf("%s: bad arity %d", name, len(args))
	}
	d, err := f.Eval(args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return d
}

func TestStringBuiltins(t *testing.T) {
	if got := evalFn(t, "UPPER", datum.NewString("abC")); got.Str() != "ABC" {
		t.Errorf("UPPER = %v", got)
	}
	if got := evalFn(t, "LOWER", datum.NewString("AbC")); got.Str() != "abc" {
		t.Errorf("LOWER = %v", got)
	}
	if got := evalFn(t, "LENGTH", datum.NewString("hello")); got.Int() != 5 {
		t.Errorf("LENGTH = %v", got)
	}
	// NULL propagation.
	for _, name := range []string{"UPPER", "LOWER", "LENGTH"} {
		if got := evalFn(t, name, datum.Null); !got.IsNull() {
			t.Errorf("%s(NULL) = %v", name, got)
		}
	}
}

func TestSubstrBuiltin(t *testing.T) {
	cases := []struct {
		args []datum.Datum
		want string
	}{
		{[]datum.Datum{datum.NewString("employees"), datum.NewInt(1), datum.NewInt(3)}, "emp"},
		{[]datum.Datum{datum.NewString("employees"), datum.NewInt(4)}, "loyees"},
		{[]datum.Datum{datum.NewString("abc"), datum.NewInt(99)}, ""},
		{[]datum.Datum{datum.NewString("abc"), datum.NewInt(0), datum.NewInt(2)}, "ab"},
		{[]datum.Datum{datum.NewString("abc"), datum.NewInt(2), datum.NewInt(99)}, "bc"},
	}
	for _, c := range cases {
		if got := evalFn(t, "SUBSTR", c.args...); got.Str() != c.want {
			t.Errorf("SUBSTR(%v) = %v, want %q", c.args, got, c.want)
		}
	}
	if got := evalFn(t, "SUBSTR", datum.Null, datum.NewInt(1)); !got.IsNull() {
		t.Error("SUBSTR(NULL, 1) should be NULL")
	}
}

func TestNumericBuiltins(t *testing.T) {
	if got := evalFn(t, "MOD", datum.NewInt(7), datum.NewInt(3)); got.Int() != 1 {
		t.Errorf("MOD = %v", got)
	}
	if got := evalFn(t, "MOD", datum.NewInt(7), datum.NewInt(0)); got.Int() != 7 {
		t.Errorf("Oracle MOD(x, 0) = x, got %v", got)
	}
	if got := evalFn(t, "ABS", datum.NewInt(-4)); got.Int() != 4 {
		t.Errorf("ABS = %v", got)
	}
	if got := evalFn(t, "ABS", datum.NewFloat(-2.5)); got.Float() != 2.5 {
		t.Errorf("ABS float = %v", got)
	}
	if got := evalFn(t, "ABS", datum.Null); !got.IsNull() {
		t.Error("ABS(NULL)")
	}
}

func TestNullHandlingBuiltins(t *testing.T) {
	if got := evalFn(t, "NVL", datum.Null, datum.NewInt(9)); got.Int() != 9 {
		t.Errorf("NVL = %v", got)
	}
	if got := evalFn(t, "NVL", datum.NewInt(1), datum.NewInt(9)); got.Int() != 1 {
		t.Errorf("NVL = %v", got)
	}
	if got := evalFn(t, "COALESCE", datum.Null, datum.Null, datum.NewString("x")); got.Str() != "x" {
		t.Errorf("COALESCE = %v", got)
	}
	if got := evalFn(t, "COALESCE", datum.Null, datum.Null); !got.IsNull() {
		t.Errorf("COALESCE all null = %v", got)
	}
	if got := evalFn(t, "NULLIF", datum.NewInt(3), datum.NewInt(3)); !got.IsNull() {
		t.Errorf("NULLIF equal = %v", got)
	}
	if got := evalFn(t, "NULLIF", datum.NewInt(3), datum.NewInt(4)); got.Int() != 3 {
		t.Errorf("NULLIF different = %v", got)
	}
}

func TestGreatestLeast(t *testing.T) {
	if got := evalFn(t, "GREATEST", datum.NewInt(3), datum.NewInt(9), datum.NewInt(5)); got.Int() != 9 {
		t.Errorf("GREATEST = %v", got)
	}
	if got := evalFn(t, "LEAST", datum.NewInt(3), datum.NewInt(9), datum.NewInt(5)); got.Int() != 3 {
		t.Errorf("LEAST = %v", got)
	}
	if got := evalFn(t, "GREATEST", datum.NewInt(3), datum.Null); !got.IsNull() {
		t.Errorf("GREATEST with NULL = %v", got)
	}
	if got := evalFn(t, "LEAST", datum.Null, datum.NewInt(3)); !got.IsNull() {
		t.Errorf("LEAST with NULL = %v", got)
	}
	if got := evalFn(t, "GREATEST", datum.NewString("a"), datum.NewString("c")); got.Str() != "c" {
		t.Errorf("GREATEST strings = %v", got)
	}
}

func TestSlowMatch(t *testing.T) {
	c := New()
	f := c.Func("SLOW_MATCH")
	if !f.Expensive || f.CostPerCall <= 1 {
		t.Fatalf("SLOW_MATCH must be expensive: %+v", f)
	}
	got, err := f.Eval([]datum.Datum{datum.NewString("some keyword7 text"), datum.NewString("keyword7")})
	if err != nil || !got.Bool() {
		t.Errorf("SLOW_MATCH hit = %v, %v", got, err)
	}
	got, err = f.Eval([]datum.Datum{datum.NewString("nothing"), datum.NewString("keyword7")})
	if err != nil || got.Bool() {
		t.Errorf("SLOW_MATCH miss = %v, %v", got, err)
	}
	got, err = f.Eval([]datum.Datum{datum.Null, datum.NewString("x")})
	if err != nil || !got.IsNull() {
		t.Errorf("SLOW_MATCH null = %v, %v", got, err)
	}
}
