package bench

import (
	"context"
	"testing"

	"repro/internal/testkit"
)

func TestServerThroughputSmoke(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	res, err := ServerThroughput(context.Background(), db, []int{1, 4}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4 (2 session counts x 2 cache modes)", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Ops != p.Sessions*6 || p.QPS <= 0 {
			t.Fatalf("bad point: %+v", p)
		}
		if !p.CacheOn && p.OptimizerRuns != int64(p.Ops) {
			t.Fatalf("cache off must optimize every execute: %+v", p)
		}
		if p.CacheOn {
			if p.OptimizerRuns > int64(res.DistinctQueries) {
				t.Fatalf("cache on optimized %d times for %d distinct queries", p.OptimizerRuns, res.DistinctQueries)
			}
			if p.CacheHits == 0 {
				t.Fatalf("cache on never hit: %+v", p)
			}
		}
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
}
