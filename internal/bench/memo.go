package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cbqt"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// The memo experiment quantifies the copy-on-write state memo (§3.4.3
// machinery, qtree.CloneCOW): the same 2^10-state exhaustive unnesting
// search is run twice — once with Options.FullCloneStates (the legacy deep
// copy per state) and once with COW clones — and compared on states per
// second, heap bytes allocated per state (runtime.MemStats TotalAlloc
// deltas) and the private tree bytes each state held
// (cbqt.Stats.MemoStateBytes). The searches are bit-identical, so the
// deltas are pure memo overhead.

// MemoSubqueries is the subquery count of the memo workload: ten binary
// unnesting objects make the exhaustive search enumerate 2^10 = 1024
// states.
const MemoSubqueries = 10

// Table2FamilyQuery scales the paper's Table 2 setup to n subqueries: the
// same two-table outer join block, with n correlated EXISTS / NOT EXISTS
// subqueries of the Table 2 flavours (each over two or three base tables,
// all valid for cost-based unnesting and none consumed by the imperative
// heuristics, which only merge single-table subqueries).
func Table2FamilyQuery(n int) string {
	var sb strings.Builder
	sb.WriteString("SELECT e.employee_name, d.department_name\n")
	sb.WriteString("FROM employees e, departments d\n")
	sb.WriteString("WHERE e.dept_id = d.dept_id")
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(&sb, " AND\n  EXISTS (SELECT 1 FROM sales s%d, departments ds%d"+
				" WHERE s%d.dept_id = ds%d.dept_id AND s%d.emp_id = e.emp_id AND s%d.amount > %d"+
				" AND s%d.amount + %d < 100000 AND ds%d.dept_id + 0 >= 1)",
				i, i, i, i, i, i, 400+40*i, i, 10*i, i)
		case 1:
			fmt.Fprintf(&sb, " AND\n  NOT EXISTS (SELECT 1 FROM job_history j%d, jobs jb%d"+
				" WHERE j%d.job_id = jb%d.job_id AND j%d.emp_id = e.emp_id AND j%d.start_date > '%d0101'"+
				" AND j%d.dept_id + %d >= 0 AND jb%d.job_id + 0 >= 1)",
				i, i, i, i, i, i, 1996+i, i, i, i)
		default:
			fmt.Fprintf(&sb, " AND\n  EXISTS (SELECT 1 FROM job_history h%d, departments dh%d, locations lh%d"+
				" WHERE h%d.dept_id = dh%d.dept_id AND dh%d.loc_id = lh%d.loc_id AND h%d.emp_id = e.emp_id"+
				" AND h%d.start_date > '%d0101' AND lh%d.loc_id + %d >= 0)",
				i, i, i, i, i, i, i, i, i, 1994+i, i, i)
		}
	}
	return sb.String()
}

// MemoMode is one side of the memo comparison.
type MemoMode struct {
	Name          string
	States        int
	Time          time.Duration
	StatesPerSec  float64
	AllocPerState int64 // heap bytes allocated per state (MemStats delta)
	TreeBytes     int64 // Stats.MemoStateBytes / states: private tree bytes per state
	SharedBlocks  int   // Stats.MemoSharedBlocks over all states
	OwnedBlocks   int   // Stats.MemoMaterializedBlocks over all states
}

// MemoResult compares full-clone and COW state evaluation on the same
// search, plus the qtree copy counters attributed to the COW run.
type MemoResult struct {
	SQL             string
	Full, COW       MemoMode
	COWFullClones   int64   // deep clones the COW run still performed
	COWMaterializs  int64   // block materializations the COW run performed
	TreeBytesRatio  float64 // COW.TreeBytes / Full.TreeBytes
	AllocBytesRatio float64 // COW.AllocPerState / Full.AllocPerState
}

// Memo runs the memo experiment on db.
func Memo(db *storage.DB) (MemoResult, error) {
	sql := Table2FamilyQuery(MemoSubqueries)
	runMode := func(name string, full bool) (MemoMode, cbqt.Stats, error) {
		q, err := qtree.BindSQL(sql, db.Catalog)
		if err != nil {
			return MemoMode{}, cbqt.Stats{}, err
		}
		opts := strategyUnnestOnly(cbqt.StrategyExhaustive)
		opts.FullCloneStates = full
		o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		//lint:allow nodeterm wall-clock throughput is the experiment's measurement
		start := time.Now()
		res, err := o.Optimize(q)
		//lint:allow nodeterm wall-clock throughput is the experiment's measurement
		dur := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return MemoMode{}, cbqt.Stats{}, fmt.Errorf("%s: %w", name, err)
		}
		s := res.Stats
		m := MemoMode{Name: name, States: s.StatesEvaluated, Time: dur,
			SharedBlocks: s.MemoSharedBlocks, OwnedBlocks: s.MemoMaterializedBlocks}
		if s.StatesEvaluated > 0 {
			m.StatesPerSec = float64(s.StatesEvaluated) / dur.Seconds()
			m.AllocPerState = int64(m1.TotalAlloc-m0.TotalAlloc) / int64(s.StatesEvaluated)
			m.TreeBytes = s.MemoStateBytes / int64(s.StatesEvaluated)
		}
		return m, s, nil
	}

	var r MemoResult
	r.SQL = sql
	var err error
	if r.Full, _, err = runMode("full-clone", true); err != nil {
		return r, err
	}
	f0, _, m0 := qtree.CopyCounters()
	if r.COW, _, err = runMode("cow", false); err != nil {
		return r, err
	}
	f1, _, m1 := qtree.CopyCounters()
	r.COWFullClones = f1 - f0
	r.COWMaterializs = m1 - m0
	if r.Full.TreeBytes > 0 {
		r.TreeBytesRatio = float64(r.COW.TreeBytes) / float64(r.Full.TreeBytes)
	}
	if r.Full.AllocPerState > 0 {
		r.AllocBytesRatio = float64(r.COW.AllocPerState) / float64(r.Full.AllocPerState)
	}
	return r, nil
}

// FormatMemo renders the memo experiment.
func FormatMemo(r MemoResult) string {
	var sb strings.Builder
	sb.WriteString("=== Memo: copy-on-write vs full-clone state evaluation ===\n")
	fmt.Fprintf(&sb, "%-12s %8s %12s %12s %14s %14s\n",
		"Mode", "#States", "Time", "States/s", "Alloc B/state", "Tree B/state")
	for _, m := range []MemoMode{r.Full, r.COW} {
		fmt.Fprintf(&sb, "%-12s %8d %12s %12.0f %14d %14d\n",
			m.Name, m.States, m.Time.Round(10*time.Microsecond), m.StatesPerSec,
			m.AllocPerState, m.TreeBytes)
	}
	fmt.Fprintf(&sb, "cow blocks: %d shared / %d materialized over all states\n",
		r.COW.SharedBlocks, r.COW.OwnedBlocks)
	fmt.Fprintf(&sb, "cow run copies: %d deep clones, %d block materializations\n",
		r.COWFullClones, r.COWMaterializs)
	fmt.Fprintf(&sb, "bytes/state ratio (cow / full-clone): tree %.3f, allocated %.3f\n",
		r.TreeBytesRatio, r.AllocBytesRatio)
	return sb.String()
}
