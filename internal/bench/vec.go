package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cbqt"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// The vec experiment measures the vectorized batch engine against the
// row-at-a-time engine on the same optimized plans: scan+filter,
// scan+filter+join and join+aggregate shapes, plus a Table-2-family query
// whose EXISTS subqueries cost-based unnesting turns into joins. Both
// engines execute the identical plan, so the delta is purely the execution
// model (batch fill, selection-vector filtering, vectorized probe loops).

// VecQuery is one query of the vec experiment.
type VecQuery struct {
	Name string
	SQL  string
}

// VecQueries returns the experiment's query set.
func VecQueries() []VecQuery {
	return []VecQuery{
		{"scan-filter", `SELECT e.emp_id, e.salary FROM employees e
		 WHERE e.salary > 2000 AND e.salary + 500 < 90000`},
		{"scan-filter-join", `SELECT e.employee_name, d.department_name FROM employees e, departments d
		 WHERE e.dept_id = d.dept_id AND e.salary > 2000`},
		{"join-agg", `SELECT d.department_name, COUNT(*), AVG(e.salary) FROM employees e, departments d
		 WHERE e.dept_id = d.dept_id GROUP BY d.department_name`},
		{"table2-family", Table2FamilyQuery(2)},
	}
}

// VecRow is the measured outcome of one vec query.
type VecRow struct {
	Name    string
	Rows    int   // result rows (identical under both engines by construction)
	Scanned int64 // logical rows produced by the plan's leaf scans
	RowTime time.Duration
	VecTime time.Duration
	// RowRate and VecRate are scanned rows per second under each engine.
	RowRate, VecRate float64
	// Speedup is RowTime / VecTime.
	Speedup float64
}

// Vec runs the vectorized-execution experiment: each query is optimized
// once with CBQT, then the one plan is executed repeatedly under both
// engines (best-of-repeats) and compared on scanned rows per second.
func Vec(ctx context.Context, db *storage.DB, repeats int) ([]VecRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	opts := defaultOptions()
	var out []VecRow
	for _, vq := range VecQueries() {
		q, err := qtree.BindSQL(vq.SQL, db.Catalog)
		if err != nil {
			return nil, fmt.Errorf("%s: bind: %w", vq.Name, err)
		}
		o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
		res, err := o.OptimizeContext(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("%s: optimize: %w", vq.Name, err)
		}
		plan := res.Plan

		// Scanned rows: a fixed per-query workload constant, read off one
		// instrumented batch run so both engines share the numerator.
		_, rs, err := exec.RunAnalyzeWith(ctx, db, plan, exec.Options{Metrics: Metrics})
		if err != nil {
			return nil, fmt.Errorf("%s: analyze: %w", vq.Name, err)
		}
		var scanned int64
		for n, st := range rs.Ops {
			switch n.(type) {
			case *optimizer.SeqScan, *optimizer.IndexScan:
				scanned += st.Rows
			}
		}

		row := VecRow{Name: vq.Name, Scanned: scanned}
		measure := func(o exec.Options) (time.Duration, int, error) {
			best := time.Duration(0)
			rows := 0
			for i := 0; i < repeats; i++ {
				start := time.Now()
				r, err := exec.RunWith(ctx, db, plan, o)
				d := time.Since(start)
				if err != nil {
					return 0, 0, err
				}
				if i == 0 || d < best {
					best = d
				}
				rows = len(r.Rows)
			}
			return best, rows, nil
		}
		var rowRows, vecRows int
		if row.RowTime, rowRows, err = measure(exec.Options{RowExec: true}); err != nil {
			return nil, fmt.Errorf("%s: row engine: %w", vq.Name, err)
		}
		if row.VecTime, vecRows, err = measure(exec.Options{Metrics: Metrics}); err != nil {
			return nil, fmt.Errorf("%s: batch engine: %w", vq.Name, err)
		}
		if rowRows != vecRows {
			return nil, fmt.Errorf("%s: engines disagree on the result (%d rows vs %d)", vq.Name, rowRows, vecRows)
		}
		row.Rows = rowRows
		if s := row.RowTime.Seconds(); s > 0 {
			row.RowRate = float64(scanned) / s
		}
		if s := row.VecTime.Seconds(); s > 0 {
			row.VecRate = float64(scanned) / s
			row.Speedup = row.RowTime.Seconds() / s
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatVec renders the vec experiment as a table.
func FormatVec(rows []VecRow) string {
	var sb strings.Builder
	sb.WriteString("=== Vec: batch engine vs row engine (same plans) ===\n")
	fmt.Fprintf(&sb, "%-18s %9s %10s %11s %11s %13s %13s %8s\n",
		"Query", "Rows", "Scanned", "Row time", "Vec time", "Row rows/s", "Vec rows/s", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %9d %10d %11s %11s %13.0f %13.0f %7.2fx\n",
			r.Name, r.Rows, r.Scanned,
			r.RowTime.Round(10*time.Microsecond), r.VecTime.Round(10*time.Microsecond),
			r.RowRate, r.VecRate, r.Speedup)
	}
	return sb.String()
}
