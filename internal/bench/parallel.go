package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cbqt"
	"repro/internal/obsv"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// Parallelism, when positive, overrides cbqt.Options.Parallelism in every
// optimizer configuration the figure experiments build (benchrunner's
// -parallel flag). Zero keeps the cbqt default (GOMAXPROCS workers). The
// Table 1 and Table 2 reproductions always run single-threaded: their
// exact per-strategy accounting is the experiment.
var Parallelism int

// Budget, when non-zero, applies a per-query optimization budget to every
// optimizer configuration the figure experiments build (benchrunner's
// -timeout flag). Budget-capped runs degrade to the best plan found, so
// the equivalence guard in Compare still holds.
var Budget cbqt.Budget

// Metrics, when non-nil, receives the cbqt.* and costcache.* counters of
// every optimizer the experiments build (benchrunner's -metrics flag), so
// per-experiment deltas can be dumped via obsv.Snapshot.Sub.
var Metrics *obsv.Registry

// defaultOptions is cbqt.DefaultOptions with the benchmark-wide
// parallelism, budget and metrics overrides applied.
func defaultOptions() cbqt.Options {
	opts := cbqt.DefaultOptions()
	if Parallelism > 0 {
		opts.Parallelism = Parallelism
	}
	opts.Budget = Budget
	opts.Metrics = Metrics
	return opts
}

// ParallelRow is one line of the parallel-search speedup experiment: the
// Table-2 exhaustive search run at one worker count.
type ParallelRow struct {
	Workers int
	OptTime time.Duration
	States  int
	Cost    float64
	// Speedup is wall-clock relative to the Workers=1 row.
	Speedup float64
}

// ParallelSearch runs the Table-2 query's exhaustive search at each worker
// count and verifies that every level chooses the identical transformed
// query and final plan cost — the determinism guarantee of the parallel
// engine, measured on the same workload the speedup is claimed for.
func ParallelSearch(db *storage.DB, levels []int) ([]ParallelRow, error) {
	var out []ParallelRow
	var baseSQL string
	var baseCost float64
	var baseTime time.Duration
	for i, p := range levels {
		q, err := qtree.BindSQL(Table2Query, db.Catalog)
		if err != nil {
			return nil, err
		}
		opts := strategyUnnestOnly(cbqt.StrategyExhaustive)
		opts.Parallelism = p
		o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
		start := time.Now()
		res, err := o.Optimize(q)
		if err != nil {
			return nil, fmt.Errorf("parallelism %d: %w", p, err)
		}
		d := time.Since(start)
		sql, cost := res.Query.SQL(), res.Plan.Cost.Total
		if i == 0 {
			baseSQL, baseCost, baseTime = sql, cost, d
		} else {
			if sql != baseSQL {
				return nil, fmt.Errorf("parallelism %d chose a different query than %d:\n%s\nvs\n%s",
					p, levels[0], sql, baseSQL)
			}
			if cost != baseCost {
				return nil, fmt.Errorf("parallelism %d plan cost %v != %v at parallelism %d",
					p, cost, baseCost, levels[0])
			}
		}
		row := ParallelRow{Workers: p, OptTime: d, States: res.Stats.StatesEvaluated, Cost: cost}
		if d > 0 {
			row.Speedup = baseTime.Seconds() / d.Seconds()
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatParallelSearch renders the speedup experiment.
func FormatParallelSearch(rows []ParallelRow) string {
	var sb strings.Builder
	sb.WriteString("=== Parallel state-space search: Table-2 exhaustive ===\n")
	fmt.Fprintf(&sb, "%-8s %12s %8s %10s %8s\n", "Workers", "Optim. Time", "#States", "Plan Cost", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8d %12s %8d %10.1f %7.2fx\n",
			r.Workers, r.OptTime.Round(10*time.Microsecond), r.States, r.Cost, r.Speedup)
	}
	return sb.String()
}
