package bench

import (
	"testing"

	"repro/internal/testkit"
)

// TestMemoCOWBytesPerState is the acceptance gate of the copy-on-write
// state memo: on the 2^10-state Table-2-family exhaustive search, a COW
// state must hold at most half the private tree bytes a full-clone state
// holds, and the COW run must not fall back to a single deep clone. The
// tree-byte accounting is deterministic (it sums qtree.OwnedApproxBytes
// over the same 1024 states in both modes), so this is an exact gate, not
// a timing-sensitive benchmark.
func TestMemoCOWBytesPerState(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	r, err := Memo(db)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatMemo(r))

	want := 1 << MemoSubqueries
	if r.Full.States != want || r.COW.States != want {
		t.Fatalf("states evaluated: full=%d cow=%d, want %d each (2^%d exhaustive)",
			r.Full.States, r.COW.States, want, MemoSubqueries)
	}
	if r.Full.TreeBytes <= 0 || r.COW.TreeBytes <= 0 {
		t.Fatalf("tree bytes not collected: full=%d cow=%d", r.Full.TreeBytes, r.COW.TreeBytes)
	}
	if 2*r.COW.TreeBytes > r.Full.TreeBytes {
		t.Errorf("COW holds %d tree bytes/state, more than half of full-clone's %d (ratio %.3f, want <= 0.5)",
			r.COW.TreeBytes, r.Full.TreeBytes, r.TreeBytesRatio)
	}
	if r.COWFullClones != 0 {
		t.Errorf("COW run performed %d deep clones, want 0", r.COWFullClones)
	}
	if r.COWMaterializs == 0 {
		t.Error("COW run materialized no blocks; the search cannot have transformed anything")
	}
	if r.COW.SharedBlocks == 0 {
		t.Error("COW run shared no blocks with the base; the memo is not sharing")
	}
}
