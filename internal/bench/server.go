package bench

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/cbqt"
	"repro/internal/obsv"
	"repro/internal/plancache"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ServerPoint is one server-throughput measurement: a session count and
// cache mode, with the observed rate and the optimizer/cache counters
// that explain it.
type ServerPoint struct {
	Sessions      int
	CacheOn       bool
	Ops           int
	Elapsed       time.Duration
	QPS           float64
	OptimizerRuns int64 // cbqt.queries delta: full CBQT optimizations
	CacheHits     int64
	Coalesced     int64
}

// ServerResult is the full throughput experiment.
type ServerResult struct {
	DistinctQueries int
	Points          []ServerPoint
}

// ServerThroughput measures end-to-end QPS through the wire protocol at
// several concurrency levels, with the shared plan cache on and off. The
// workload is a fixed set of parameterized query texts executed with
// rotating bind sets, so with the cache on the optimizer runs once per
// distinct text while every execution still parses binds, probes indexes
// and returns rows — the amortization the paper attributes to the shared
// cursor cache.
func ServerThroughput(ctx context.Context, db *storage.DB, sessionCounts []int, opsPerSession int, seed int64) (*ServerResult, error) {
	cfg := workload.DefaultConfig(seed, 40, 0, 0, 0)
	cfg.Employees, cfg.Departments, cfg.Jobs = benchSizes(db)
	cfg.RelevantFraction = 0.4
	var pqs []workload.ParamQuery
	for _, wq := range workload.Generate(cfg) {
		pq, ok := workload.Parameterize(wq.SQL, 8, seed+int64(wq.ID))
		if !ok {
			continue
		}
		pqs = append(pqs, pq)
		if len(pqs) == 8 {
			break
		}
	}
	if len(pqs) == 0 {
		return nil, fmt.Errorf("bench: workload produced no parameterizable queries")
	}

	res := &ServerResult{DistinctQueries: len(pqs)}
	for _, cacheOn := range []bool{false, true} {
		for _, sessions := range sessionCounts {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			p, err := runServerPoint(ctx, db, pqs, sessions, opsPerSession, cacheOn)
			if err != nil {
				return res, err
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// runServerPoint brings up an in-process server on a loopback listener and
// drives it with `sessions` concurrent clients for a fixed amount of work.
func runServerPoint(ctx context.Context, db *storage.DB, pqs []workload.ParamQuery, sessions, opsPerSession int, cacheOn bool) (ServerPoint, error) {
	reg := obsv.NewRegistry()
	opts := cbqt.DefaultOptions()
	opts.Parallelism = 1 // sessions provide the concurrency; keep searches lean
	srv := server.New(server.Config{DB: db, Opts: opts, Registry: reg, CacheOff: !cacheOn})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServerPoint{}, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		<-serveDone
	}()

	before := reg.Snapshot()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for sid := 0; sid < sessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			errCh <- driveSession(ctx, l.Addr().String(), pqs, sid, opsPerSession)
		}(sid)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return ServerPoint{}, err
		}
	}
	delta := reg.Snapshot().Sub(before)

	ops := sessions * opsPerSession
	return ServerPoint{
		Sessions:      sessions,
		CacheOn:       cacheOn,
		Ops:           ops,
		Elapsed:       elapsed,
		QPS:           float64(ops) / elapsed.Seconds(),
		OptimizerRuns: delta.Counters["cbqt.queries"],
		CacheHits:     delta.Counters[plancache.MetricHits],
		Coalesced:     delta.Counters[plancache.MetricCoalesced],
	}, nil
}

// driveSession is one benchmark client: it prepares every query once, then
// executes them round-robin with rotating bind sets, fetching all rows.
func driveSession(ctx context.Context, addr string, pqs []workload.ParamQuery, sid, ops int) error {
	cli, err := server.Dial(addr, nil)
	if err != nil {
		return err
	}
	defer cli.Close()
	stmts := make([]*server.Stmt, len(pqs))
	for i, pq := range pqs {
		if stmts[i], err = cli.Prepare(pq.SQL); err != nil {
			return fmt.Errorf("bench: prepare %q: %w", pq.SQL, err)
		}
	}
	for op := 0; op < ops; op++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		qi := (sid + op) % len(pqs)
		pq, stmt := pqs[qi], stmts[qi]
		set := pq.Sets[(sid*7+op)%len(pq.Sets)]
		binds := make([]server.BindValue, len(pq.Names))
		for i, name := range pq.Names {
			binds[i] = server.Named(name, set[i])
		}
		if err := stmt.Execute(binds...); err != nil {
			return fmt.Errorf("bench: execute %q: %w", pq.SQL, err)
		}
		if _, err := stmt.FetchAll(); err != nil {
			return err
		}
	}
	return nil
}

// benchSizes recovers the workload value ranges from the database.
func benchSizes(db *storage.DB) (employees, departments, jobs int) {
	count := func(name string) int {
		if t := db.Table(name); t != nil {
			return len(t.Rows)
		}
		return 0
	}
	return count("EMPLOYEES"), count("DEPARTMENTS"), count("JOBS")
}

// String renders the experiment like the report tables.
func (r *ServerResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "server throughput: %d distinct parameterized queries, cache off vs on\n", r.DistinctQueries)
	fmt.Fprintf(&sb, "%-9s %-6s %8s %10s %10s %10s %10s %10s\n",
		"sessions", "cache", "ops", "elapsed", "qps", "opt-runs", "hits", "coalesced")
	for _, p := range r.Points {
		cache := "off"
		if p.CacheOn {
			cache = "on"
		}
		fmt.Fprintf(&sb, "%-9d %-6s %8d %10s %10.1f %10d %10d %10d\n",
			p.Sessions, cache, p.Ops, p.Elapsed.Round(time.Millisecond), p.QPS,
			p.OptimizerRuns, p.CacheHits, p.Coalesced)
	}
	// Headline: the cache's amortization at the highest concurrency.
	var off, on *ServerPoint
	for i := range r.Points {
		p := &r.Points[i]
		if !p.CacheOn && (off == nil || p.Sessions > off.Sessions) {
			off = p
		}
		if p.CacheOn && (on == nil || p.Sessions > on.Sessions) {
			on = p
		}
	}
	if off != nil && on != nil && off.Sessions == on.Sessions && off.QPS > 0 {
		fmt.Fprintf(&sb, "cache speedup at %d sessions: %.2fx\n", on.Sessions, on.QPS/off.QPS)
	}
	return sb.String()
}
