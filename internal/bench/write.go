package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// The write experiment measures the MVCC write path on both storage
// engines: sustained commit throughput (single writer, single-row and
// batched commits) and a mixed workload where concurrent writers commit
// while readers execute a snapshot query — the configuration the
// snapshot-isolation design exists for, since neither side ever blocks
// the other. The disk engine pays one fsync per commit (write-before-ack),
// so its sustained numbers are fsync-bound by design; batched commits
// amortize it.

// WriteRow is one measured configuration of the write experiment.
type WriteRow struct {
	Engine    string        `json:"engine"` // "mem" or "disk"
	Mode      string        `json:"mode"`   // "insert-1", "insert-64", "mixed"
	Commits   int64         `json:"commits"`
	Rows      int64         `json:"rows_written"`
	Duration  time.Duration `json:"duration_ns"`
	WriteQPS  float64       `json:"write_commits_per_sec"`
	RowRate   float64       `json:"rows_per_sec"`
	Reads     int64         `json:"reads,omitempty"`
	ReadQPS   float64       `json:"read_qps,omitempty"`
	Conflicts int64         `json:"conflicts,omitempty"`
}

// WriteConfig sizes the write experiment.
type WriteConfig struct {
	// Commits is the sustained-throughput commit count per mode (<= 0: 2000).
	Commits int
	// MixedDuration is the mixed read/write measurement window (<= 0: 1s).
	MixedDuration time.Duration
	// Writers and Readers size the mixed workload (<= 0: 4 and 4).
	Writers int
	Readers int
	// DiskDir holds the disk engine's data ("" = a temp dir, removed after).
	DiskDir string
}

func writeTableMeta() *catalog.Table {
	return &catalog.Table{
		Name: "WBENCH",
		Cols: []catalog.Column{
			{Name: "ID", Type: datum.KInt},
			{Name: "GRP", Type: datum.KInt},
			{Name: "VAL", Type: datum.KFloat},
			{Name: "NOTE", Type: datum.KString, Nullable: true},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "WBENCH_PK", Cols: []int{0}, Unique: true},
			{Name: "WBENCH_GRP", Cols: []int{1}},
		},
	}
}

func benchRow(id int64) []datum.Datum {
	return []datum.Datum{
		datum.NewInt(id), datum.NewInt(id % 16), datum.NewFloat(float64(id) * 1.5), datum.NewString("w"),
	}
}

// sustained commits n single-batch transactions of batchRows rows each.
func sustained(db *storage.DB, n, batchRows int, nextID *int64) (WriteRow, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		b := db.NewBatch()
		for j := 0; j < batchRows; j++ {
			if err := b.Insert("WBENCH", benchRow(atomic.AddInt64(nextID, 1))); err != nil {
				return WriteRow{}, err
			}
		}
		if _, err := db.Commit(b); err != nil {
			return WriteRow{}, err
		}
	}
	el := time.Since(start)
	rows := int64(n * batchRows)
	return WriteRow{
		Mode: fmt.Sprintf("insert-%d", batchRows), Commits: int64(n), Rows: rows, Duration: el,
		WriteQPS: float64(n) / el.Seconds(), RowRate: float64(rows) / el.Seconds(),
	}, nil
}

// mixed runs writers committing inserts against readers executing a
// snapshot query for the window, reporting both sides' rates.
func mixed(ctx context.Context, db *storage.DB, cfg WriteConfig, nextID *int64) (WriteRow, error) {
	q, err := qtree.BindSQL("SELECT COUNT(*), SUM(VAL) FROM wbench WHERE GRP = 3", db.Catalog)
	if err != nil {
		return WriteRow{}, err
	}
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		return WriteRow{}, err
	}

	dur := cfg.MixedDuration
	if dur <= 0 {
		dur = time.Second
	}
	writers, readers := cfg.Writers, cfg.Readers
	if writers <= 0 {
		writers = 4
	}
	if readers <= 0 {
		readers = 4
	}

	wctx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()
	var commits, rows, reads atomic.Int64
	var firstErr atomic.Value
	fail := func(err error) {
		if err != nil && wctx.Err() == nil {
			firstErr.CompareAndSwap(nil, err)
			cancel()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for wctx.Err() == nil {
				b := db.NewBatch()
				for j := 0; j < 8; j++ {
					if err := b.Insert("WBENCH", benchRow(atomic.AddInt64(nextID, 1))); err != nil {
						fail(err)
						return
					}
				}
				if _, err := db.Commit(b); err != nil {
					fail(err)
					return
				}
				commits.Add(1)
				rows.Add(8)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for wctx.Err() == nil {
				if _, err := exec.RunWith(context.Background(), db, plan, exec.Options{}); err != nil {
					fail(err)
					return
				}
				reads.Add(1)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	el := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return WriteRow{}, err
	}
	return WriteRow{
		Mode: "mixed", Commits: commits.Load(), Rows: rows.Load(), Duration: el,
		WriteQPS: float64(commits.Load()) / el.Seconds(),
		RowRate:  float64(rows.Load()) / el.Seconds(),
		Reads:    reads.Load(), ReadQPS: float64(reads.Load()) / el.Seconds(),
	}, nil
}

// Write runs the write experiment over both engines.
func Write(ctx context.Context, cfg WriteConfig) ([]WriteRow, error) {
	n := cfg.Commits
	if n <= 0 {
		n = 2000
	}
	var out []WriteRow
	for _, engine := range []string{"mem", "disk"} {
		cat := catalog.New()
		var db *storage.DB
		switch engine {
		case "mem":
			db = storage.NewDB(cat)
		case "disk":
			dir := cfg.DiskDir
			if dir == "" {
				td, err := os.MkdirTemp("", "cbqt-write-bench-")
				if err != nil {
					return nil, err
				}
				defer os.RemoveAll(td)
				dir = td
			}
			eng, err := storage.OpenDiskEngine(dir, cat)
			if err != nil {
				return nil, err
			}
			db = storage.NewDBWithEngine(cat, eng)
		}
		if _, err := db.CreateTable(writeTableMeta()); err != nil {
			return nil, err
		}
		db.Finalize()

		var nextID int64
		// Disk commits fsync; scale the single-row count down so the
		// experiment stays quick on slow disks.
		n1 := n
		if engine == "disk" {
			n1 = n / 4
			if n1 < 1 {
				n1 = 1
			}
		}
		for _, batch := range []struct {
			commits, rows int
		}{{n1, 1}, {n / 16, 64}} {
			if batch.commits < 1 {
				batch.commits = 1
			}
			r, err := sustained(db, batch.commits, batch.rows, &nextID)
			if err != nil {
				return nil, err
			}
			r.Engine = engine
			out = append(out, r)
			if err := ctx.Err(); err != nil {
				return out, err
			}
		}
		r, err := mixed(ctx, db, cfg, &nextID)
		if err != nil {
			return nil, err
		}
		r.Engine = engine
		out = append(out, r)
		if err := db.Close(); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// FormatWrite renders the human-readable report.
func FormatWrite(rows []WriteRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "write path: sustained and mixed read/write throughput per engine\n")
	fmt.Fprintf(&b, "%-6s %-10s %10s %12s %14s %12s %10s\n",
		"engine", "mode", "commits", "commits/s", "rows/s", "reads/s", "window")
	for _, r := range rows {
		reads := "-"
		if r.Mode == "mixed" {
			reads = fmt.Sprintf("%.0f", r.ReadQPS)
		}
		fmt.Fprintf(&b, "%-6s %-10s %10d %12.0f %14.0f %12s %10s\n",
			r.Engine, r.Mode, r.Commits, r.WriteQPS, r.RowRate, reads,
			r.Duration.Round(time.Millisecond))
	}
	return b.String()
}

// WriteJSON persists the machine-readable result next to the human report.
func WriteJSON(rows []WriteRow, path string) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
