package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/cbqt"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/transform"
	"repro/internal/workload"
)

// NewBenchDB builds the benchmark database at a size where plan quality
// differences dominate wall-clock time.
func NewBenchDB(seed int64) *storage.DB {
	return testkit.NewDB(testkit.MediumSizes(), seed)
}

// workloadConfig derives a workload configuration matching the medium data
// sizes.
func workloadConfig(seed int64, n int) workload.Config {
	s := testkit.MediumSizes()
	return workload.DefaultConfig(seed, n, s.Employees, s.Departments, s.Jobs)
}

// heuristicModeOptions turn every cost-based transformation into its
// pre-CBQT heuristic decision (cost-based transformation "off", §4.1).
func heuristicModeOptions() cbqt.Options {
	opts := defaultOptions()
	opts.RuleModes = map[string]cbqt.RuleMode{}
	for _, r := range transform.CostBasedRules() {
		opts.RuleModes[r.Name()] = cbqt.RuleHeuristic
	}
	return opts
}

// Figure2 compares heuristic-decision transformation against cost-based
// transformation over the CBQT-relevant workload classes that §4.1 lists:
// subquery unnesting, group-by view merging, and join predicate pushdown.
func Figure2(ctx context.Context, db *storage.DB, queriesPerClass int, repeats int) (Report, error) {
	cfg := workloadConfig(42, 0)
	var qs []workload.Query
	for i, class := range []workload.Class{
		workload.ClassAggSubquery, workload.ClassExists, workload.ClassNotExists,
		workload.ClassNotIn, workload.ClassDistinctVw, workload.ClassGroupByVw,
	} {
		qs = append(qs, workload.GenerateClass(int64(100+i), queriesPerClass, cfg, class)...)
	}
	ms, err := CompareContext(ctx, db, qs, heuristicModeOptions(), defaultOptions(), repeats)
	if err != nil {
		return Report{}, err
	}
	return Summarize("Figure 2: CBQT vs heuristic decisions", ms), nil
}

// Figure3 compares unnesting completely disabled against cost-based
// unnesting (§4.2).
func Figure3(ctx context.Context, db *storage.DB, queriesPerClass int, repeats int) (Report, error) {
	cfg := workloadConfig(43, 0)
	var qs []workload.Query
	for i, class := range []workload.Class{
		workload.ClassAggSubquery, workload.ClassExists,
		workload.ClassNotExists, workload.ClassNotIn,
	} {
		qs = append(qs, workload.GenerateClass(int64(200+i), queriesPerClass, cfg, class)...)
	}
	off := defaultOptions()
	off.DisableMergeUnnest = true
	off.RuleModes = map[string]cbqt.RuleMode{
		(&transform.UnnestSubquery{}).Name(): cbqt.RuleOff,
	}
	ms, err := CompareContext(ctx, db, qs, off, defaultOptions(), repeats)
	if err != nil {
		return Report{}, err
	}
	return Summarize("Figure 3: unnesting disabled vs cost-based unnesting", ms), nil
}

// Figure4 compares JPPD completely disabled against cost-based JPPD
// (§4.2). Everything else stays cost-based on both sides.
func Figure4(ctx context.Context, db *storage.DB, queriesPerClass int, repeats int) (Report, error) {
	cfg := workloadConfig(44, 0)
	var qs []workload.Query
	for i, class := range []workload.Class{
		workload.ClassDistinctVw, workload.ClassGroupByVw,
	} {
		qs = append(qs, workload.GenerateClass(int64(300+i), queriesPerClass, cfg, class)...)
	}
	off := defaultOptions()
	off.Rules = rulesWithViewStrategy(&transform.ViewStrategy{NoJPPD: true})
	ms, err := CompareContext(ctx, db, qs, off, defaultOptions(), repeats)
	if err != nil {
		return Report{}, err
	}
	return Summarize("Figure 4: JPPD disabled vs cost-based JPPD", ms), nil
}

// rulesWithViewStrategy returns the default rule sequence with the view
// strategy rule replaced.
func rulesWithViewStrategy(vs *transform.ViewStrategy) []transform.Rule {
	var out []transform.Rule
	for _, r := range transform.CostBasedRules() {
		if _, ok := r.(*transform.ViewStrategy); ok {
			out = append(out, vs)
			continue
		}
		out = append(out, r)
	}
	return out
}

// GroupByPlacementExp compares GBP off against GBP on (§4.3; in Oracle the
// GBP transformation is never applied heuristically).
func GroupByPlacementExp(ctx context.Context, db *storage.DB, queries int, repeats int) (Report, error) {
	cfg := workloadConfig(45, 0)
	qs := workload.GenerateClass(400, queries, cfg, workload.ClassGBP)
	off := defaultOptions()
	off.RuleModes = map[string]cbqt.RuleMode{
		(&transform.GroupByPlacement{}).Name(): cbqt.RuleOff,
	}
	ms, err := CompareContext(ctx, db, qs, off, defaultOptions(), repeats)
	if err != nil {
		return Report{}, err
	}
	return Summarize("Section 4.3: group-by placement off vs on", ms), nil
}

// Table2Query is the paper's Table 2 setup: three base tables and four
// subqueries of NOT IN, EXISTS and NOT EXISTS types, each subquery over
// three base tables, all valid for unnesting.
const Table2Query = `
SELECT e.employee_name, d.department_name, l.city
FROM employees e, departments d, locations l
WHERE e.dept_id = d.dept_id AND d.loc_id = l.loc_id AND
  e.emp_id NOT IN (SELECT j.emp_id FROM job_history j, jobs jb, departments d2
                   WHERE j.job_id = jb.job_id AND j.dept_id = d2.dept_id AND j.start_date > '20020101') AND
  EXISTS (SELECT 1 FROM sales s, departments d3, locations l3
          WHERE s.dept_id = d3.dept_id AND d3.loc_id = l3.loc_id AND s.emp_id = e.emp_id) AND
  NOT EXISTS (SELECT 1 FROM sales s2, jobs jb2, employees e4
              WHERE s2.emp_id = e4.emp_id AND e4.job_id = jb2.job_id AND s2.dept_id = e.dept_id AND s2.amount > 990) AND
  NOT EXISTS (SELECT 1 FROM job_history j2, departments d4, locations l4
              WHERE j2.dept_id = d4.dept_id AND d4.loc_id = l4.loc_id AND j2.emp_id = e.emp_id AND j2.start_date > '20031001')`

// Table2Row is one line of the Table 2 reproduction.
type Table2Row struct {
	Mode    string
	OptTime time.Duration
	States  int
}

// Table2 measures optimization time and number of states for the four
// search strategies on the Table 2 query, plus the heuristic mode baseline.
func Table2(db *storage.DB) ([]Table2Row, error) {
	modes := []struct {
		name string
		opts cbqt.Options
	}{
		{"Heuristic", heuristicUnnestOnly()},
		{"Two Pass", strategyUnnestOnly(cbqt.StrategyTwoPass)},
		{"Linear", strategyUnnestOnly(cbqt.StrategyLinear)},
		{"Iterative", strategyUnnestOnly(cbqt.StrategyIterative)},
		{"Exhaustive", strategyUnnestOnly(cbqt.StrategyExhaustive)},
	}
	var out []Table2Row
	for _, m := range modes {
		q, err := qtree.BindSQL(Table2Query, db.Catalog)
		if err != nil {
			return nil, err
		}
		o := &cbqt.Optimizer{Cat: db.Catalog, Opts: m.opts}
		start := time.Now()
		res, err := o.Optimize(q)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		states := res.Stats.StatesEvaluated
		if m.name == "Heuristic" {
			states = 1 // the single heuristic optimization
		}
		out = append(out, Table2Row{Mode: m.name, OptTime: time.Since(start), States: states})
	}
	return out, nil
}

func strategyUnnestOnly(s cbqt.Strategy) cbqt.Options {
	opts := defaultOptions()
	opts.Strategy = s
	opts.Parallelism = 1 // Table 2 compares the strategies' sequential optimization times
	opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
	// The imperative merge flavour would consume the single-table
	// subqueries; Table 2 subqueries are all multi-table so the default
	// heuristics are fine.
	return opts
}

func heuristicUnnestOnly() cbqt.Options {
	opts := defaultOptions()
	opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
	opts.RuleModes = map[string]cbqt.RuleMode{
		(&transform.UnnestSubquery{}).Name(): cbqt.RuleHeuristic,
	}
	return opts
}

// FormatTable2 renders the Table 2 reproduction.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("=== Table 2: optimization time per search strategy ===\n")
	fmt.Fprintf(&sb, "%-12s %12s %8s\n", "Strategy", "Optim. Time", "#States")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12s %8d\n", r.Mode, r.OptTime.Round(10*time.Microsecond), r.States)
	}
	return sb.String()
}

// Table1Result reproduces Table 1's accounting: blocks optimized with and
// without annotation reuse on a two-subquery query under exhaustive search.
type Table1Result struct {
	States             int
	BlocksWithoutReuse int
	BlocksWithReuse    int
	AnnotationHits     int
}

// Table1SQL is a Q1-like query with two unnestable subqueries.
const Table1SQL = `
SELECT e.employee_name FROM employees e
WHERE EXISTS (SELECT 1 FROM departments d, locations l
              WHERE d.loc_id = l.loc_id AND d.dept_id = e.dept_id AND l.country_id = 'US')
  AND EXISTS (SELECT 1 FROM job_history j, jobs jb
              WHERE j.job_id = jb.job_id AND j.emp_id = e.emp_id AND j.start_date > '19980101')`

// Table1 runs the annotation-reuse experiment.
func Table1(db *storage.DB) (Table1Result, error) {
	measure := func(reuse bool) (cbqt.Stats, error) {
		q, err := qtree.BindSQL(Table1SQL, db.Catalog)
		if err != nil {
			return cbqt.Stats{}, err
		}
		opts := defaultOptions()
		opts.Strategy = cbqt.StrategyExhaustive
		opts.AnnotationReuse = reuse
		opts.CostCutoff = false
		opts.Parallelism = 1 // Table 1's exact hit accounting needs one worker
		opts.SkipHeuristics = true
		opts.Rules = []transform.Rule{&transform.UnnestSubquery{}}
		o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
		res, err := o.Optimize(q)
		if err != nil {
			return cbqt.Stats{}, err
		}
		return res.Stats, nil
	}
	without, err := measure(false)
	if err != nil {
		return Table1Result{}, err
	}
	with, err := measure(true)
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{
		States:             without.StatesEvaluated,
		BlocksWithoutReuse: without.BlocksOptimized,
		BlocksWithReuse:    with.BlocksOptimized,
		AnnotationHits:     with.AnnotationHits,
	}, nil
}

// FormatTable1 renders the Table 1 reproduction.
func FormatTable1(r Table1Result) string {
	var sb strings.Builder
	sb.WriteString("=== Table 1: re-use of query sub-tree cost annotations ===\n")
	fmt.Fprintf(&sb, "states (exhaustive over 2 subqueries): %d\n", r.States)
	fmt.Fprintf(&sb, "query blocks optimized without reuse:  %d\n", r.BlocksWithoutReuse)
	fmt.Fprintf(&sb, "query blocks optimized with reuse:     %d\n", r.BlocksWithReuse)
	fmt.Fprintf(&sb, "optimizations avoided by reuse:        %d\n", r.AnnotationHits)
	return sb.String()
}
