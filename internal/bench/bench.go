// Package bench implements the performance study of the paper's Section 4:
// it runs workload queries under two optimizer configurations (for example
// heuristic-decision versus cost-based transformation), measures
// optimization and execution time, and reports relative improvement as a
// function of the top N% most expensive queries — the shape of Figures 2,
// 3 and 4 — together with the optimization-time overhead and the
// state-space measurements of Tables 1 and 2.
package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cbqt"
	"repro/internal/exec"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Measurement is the outcome of one query under two optimizer modes.
type Measurement struct {
	Query workload.Query
	// A is the baseline mode; B the compared mode (cost-based).
	AOpt, AExec time.Duration
	BOpt, BExec time.Duration
	ARows       int
	BRows       int
	// PlanChanged reports whether the transformed query trees differ.
	PlanChanged bool
}

// ATotal is optimization plus execution time under the baseline mode.
func (m Measurement) ATotal() time.Duration { return m.AOpt + m.AExec }

// BTotal is optimization plus execution time under the compared mode.
func (m Measurement) BTotal() time.Duration { return m.BOpt + m.BExec }

// ImprovementPct is the paper's improvement metric: how much faster the
// compared mode is, relative to the compared mode's time ("improved by
// 387%" means the baseline took 4.87x as long).
func (m Measurement) ImprovementPct() float64 {
	b := m.BTotal().Seconds()
	if b <= 0 {
		return 0
	}
	return (m.ATotal().Seconds() - b) / b * 100
}

// measureOne optimizes and executes one query under the given options.
// Cancelling ctx aborts both the state-space search and execution.
func measureOne(ctx context.Context, db *storage.DB, sql string, opts cbqt.Options, repeats int) (optT, execT time.Duration, rows int, shape string, err error) {
	// Optimization time: bind + CBQT + physical optimization, best of
	// repeats to suppress allocator noise on cheap queries.
	var res *cbqt.Result
	for i := 0; i < repeats; i++ {
		optStart := time.Now()
		q, berr := qtree.BindSQL(sql, db.Catalog)
		if berr != nil {
			return 0, 0, 0, "", fmt.Errorf("bind: %w", berr)
		}
		o := &cbqt.Optimizer{Cat: db.Catalog, Opts: opts}
		r, oerr := o.OptimizeContext(ctx, q)
		if oerr != nil {
			return 0, 0, 0, "", fmt.Errorf("optimize %q: %w", sql, oerr)
		}
		d := time.Since(optStart)
		if i == 0 || d < optT {
			optT = d
		}
		res = r
	}

	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		r, err := exec.RunContext(ctx, db, res.Plan)
		if err != nil {
			return 0, 0, 0, "", fmt.Errorf("exec %q: %w", sql, err)
		}
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
		rows = len(r.Rows)
	}
	return optT, best, rows, res.Query.SQL(), nil
}

// Compare measures every query under both modes with no cancellation. It
// verifies that both modes return the same number of rows (a cheap
// end-to-end equivalence guard on real data).
func Compare(db *storage.DB, queries []workload.Query, modeA, modeB cbqt.Options, repeats int) ([]Measurement, error) {
	return CompareContext(context.Background(), db, queries, modeA, modeB, repeats)
}

// CompareContext is Compare under a cancellable context: when ctx is
// cancelled the search degrades to the best plans found so far and the
// next query execution aborts with an error.
func CompareContext(ctx context.Context, db *storage.DB, queries []workload.Query, modeA, modeB cbqt.Options, repeats int) ([]Measurement, error) {
	var out []Measurement
	for _, wq := range queries {
		aOpt, aExec, aRows, aShape, err := measureOne(ctx, db, wq.SQL, modeA, repeats)
		if err != nil {
			return nil, fmt.Errorf("query %d (%s) mode A: %w", wq.ID, wq.Class, err)
		}
		bOpt, bExec, bRows, bShape, err := measureOne(ctx, db, wq.SQL, modeB, repeats)
		if err != nil {
			return nil, fmt.Errorf("query %d (%s) mode B: %w", wq.ID, wq.Class, err)
		}
		if aRows != bRows {
			return nil, fmt.Errorf("query %d (%s): modes disagree on result size (%d vs %d)\nsql: %s",
				wq.ID, wq.Class, aRows, bRows, wq.SQL)
		}
		out = append(out, Measurement{
			Query: wq,
			AOpt:  aOpt, AExec: aExec, BOpt: bOpt, BExec: bExec,
			ARows: aRows, BRows: bRows,
			PlanChanged: aShape != bShape,
		})
	}
	return out, nil
}

// CurvePoint is one point of a Figure 2/3/4 style curve.
type CurvePoint struct {
	TopPct         int
	Queries        int
	AvgImprovement float64
}

// TopNCurve ranks the measurements by baseline total time (descending, the
// paper's "top N longest running queries without cost-based
// transformation") and reports the average improvement among the top N%.
func TopNCurve(ms []Measurement, pcts []int) []CurvePoint {
	ranked := append([]Measurement(nil), ms...)
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].ATotal() > ranked[j].ATotal()
	})
	var out []CurvePoint
	for _, pct := range pcts {
		n := len(ranked) * pct / 100
		if n == 0 {
			n = 1
		}
		if n > len(ranked) {
			n = len(ranked)
		}
		sum := 0.0
		for _, m := range ranked[:n] {
			sum += m.ImprovementPct()
		}
		out = append(out, CurvePoint{TopPct: pct, Queries: n, AvgImprovement: sum / float64(n)})
	}
	return out
}

// Report summarizes a comparison the way Section 4 does.
type Report struct {
	Name         string
	Measurements []Measurement
	Curve        []CurvePoint
	// AvgImprovement is the mean improvement over all affected queries.
	AvgImprovement float64
	// DegradedFraction and DegradedAvgPct describe the queries the
	// compared mode made slower.
	DegradedFraction float64
	DegradedAvgPct   float64
	// OptTimeIncreasePct is the optimization-time overhead of mode B.
	OptTimeIncreasePct float64
	// PlansChanged counts queries whose transformed tree differed.
	PlansChanged int
}

// DefaultPcts are the top-N percentages reported in the figures.
var DefaultPcts = []int{5, 10, 25, 50, 80, 100}

// Summarize builds a report from measurements.
func Summarize(name string, ms []Measurement) Report {
	r := Report{Name: name, Measurements: ms}
	r.Curve = TopNCurve(ms, DefaultPcts)
	var sum float64
	var aOpt, bOpt time.Duration
	var degraded int
	var degradedSum float64
	for _, m := range ms {
		imp := m.ImprovementPct()
		sum += imp
		aOpt += m.AOpt
		bOpt += m.BOpt
		if imp < 0 {
			degraded++
			degradedSum += -imp
		}
		if m.PlanChanged {
			r.PlansChanged++
		}
	}
	if len(ms) > 0 {
		r.AvgImprovement = sum / float64(len(ms))
		r.DegradedFraction = float64(degraded) / float64(len(ms))
	}
	if degraded > 0 {
		r.DegradedAvgPct = degradedSum / float64(degraded)
	}
	if aOpt > 0 {
		r.OptTimeIncreasePct = (bOpt.Seconds() - aOpt.Seconds()) / aOpt.Seconds() * 100
	}
	return r
}

// String renders the report like the paper's figures.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", r.Name)
	fmt.Fprintf(&sb, "affected queries: %d (plans changed: %d)\n", len(r.Measurements), r.PlansChanged)
	fmt.Fprintf(&sb, "average improvement: %+.0f%%\n", r.AvgImprovement)
	fmt.Fprintf(&sb, "degraded: %.0f%% of queries, by %.0f%% on average\n",
		r.DegradedFraction*100, r.DegradedAvgPct)
	fmt.Fprintf(&sb, "optimization time increase: %+.0f%%\n", r.OptTimeIncreasePct)
	sb.WriteString("top-N%% curve (improvement as a function of the top N%% most expensive queries):\n")
	for _, p := range r.Curve {
		fmt.Fprintf(&sb, "  top %3d%% (%3d queries): %+8.0f%%\n", p.TopPct, p.Queries, p.AvgImprovement)
	}
	return sb.String()
}
