package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/cbqt"
	"repro/internal/testkit"
	"repro/internal/workload"
)

func TestWorkloadGeneratorDeterministic(t *testing.T) {
	cfg := workload.DefaultConfig(5, 100, 200, 20, 10)
	a := workload.Generate(cfg)
	b := workload.Generate(cfg)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("sizes %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].SQL != b[i].SQL || a[i].Class != b[i].Class {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	relevant := 0
	for _, q := range a {
		if q.Relevant() {
			relevant++
		}
	}
	if relevant == 0 || relevant > 25 {
		t.Errorf("relevant = %d of 100, want a small fraction", relevant)
	}
}

func TestWorkloadQueriesAllBindAndRun(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(6, 0, s.Employees, s.Departments, s.Jobs)
	// One of each class must bind, optimize under CBQT, and execute.
	for _, class := range append([]workload.Class{workload.ClassSPJ}, workload.RelevantClasses...) {
		qs := workload.GenerateClass(11, 3, cfg, class)
		ms, err := Compare(db, qs, heuristicModeOptions(), cbqt.DefaultOptions(), 1)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if len(ms) != 3 {
			t.Fatalf("%s: %d measurements", class, len(ms))
		}
	}
}

func TestTopNCurveRanksByBaseline(t *testing.T) {
	ms := []Measurement{
		{AOpt: 0, AExec: 100 * time.Millisecond, BOpt: 0, BExec: 10 * time.Millisecond}, // +900%
		{AOpt: 0, AExec: 10 * time.Millisecond, BOpt: 0, BExec: 10 * time.Millisecond},  // 0%
		{AOpt: 0, AExec: 1 * time.Millisecond, BOpt: 0, BExec: 2 * time.Millisecond},    // -50%
		{AOpt: 0, AExec: 50 * time.Millisecond, BOpt: 0, BExec: 25 * time.Millisecond},  // +100%
	}
	curve := TopNCurve(ms, []int{25, 50, 100})
	if curve[0].Queries != 1 || curve[0].AvgImprovement != 900 {
		t.Errorf("top 25%%: %+v", curve[0])
	}
	if curve[1].Queries != 2 || curve[1].AvgImprovement != 500 {
		t.Errorf("top 50%%: %+v", curve[1])
	}
	if curve[2].Queries != 4 {
		t.Errorf("top 100%%: %+v", curve[2])
	}
}

func TestSummarize(t *testing.T) {
	ms := []Measurement{
		{AExec: 100 * time.Millisecond, BExec: 50 * time.Millisecond, AOpt: time.Millisecond, BOpt: 2 * time.Millisecond, PlanChanged: true},
		{AExec: 10 * time.Millisecond, BExec: 20 * time.Millisecond, AOpt: time.Millisecond, BOpt: time.Millisecond},
	}
	r := Summarize("test", ms)
	if r.PlansChanged != 1 {
		t.Errorf("plans changed = %d", r.PlansChanged)
	}
	if r.DegradedFraction != 0.5 {
		t.Errorf("degraded fraction = %v", r.DegradedFraction)
	}
	if r.OptTimeIncreasePct <= 0 {
		t.Errorf("opt increase = %v", r.OptTimeIncreasePct)
	}
	if r.String() == "" {
		t.Error("report renders")
	}
}

func TestTable1SmallDB(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	r, err := Table1(db)
	if err != nil {
		t.Fatal(err)
	}
	if r.States != 4 {
		t.Errorf("states = %d, want 4", r.States)
	}
	if r.BlocksWithoutReuse != 12 {
		t.Errorf("blocks without reuse = %d, want 12", r.BlocksWithoutReuse)
	}
	if r.BlocksWithReuse != 8 {
		t.Errorf("blocks with reuse = %d, want 8", r.BlocksWithReuse)
	}
	if r.AnnotationHits != 4 {
		t.Errorf("hits = %d, want 4", r.AnnotationHits)
	}
}

func TestTable2SmallDB(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	rows, err := Table2(db)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]Table2Row{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	// Paper Table 2: heuristic 1 state, two-pass 2, linear 5, exhaustive 16.
	if byMode["Heuristic"].States != 1 {
		t.Errorf("heuristic states = %d", byMode["Heuristic"].States)
	}
	if byMode["Two Pass"].States != 2 {
		t.Errorf("two-pass states = %d", byMode["Two Pass"].States)
	}
	if byMode["Linear"].States != 5 {
		t.Errorf("linear states = %d (4 subqueries + 1)", byMode["Linear"].States)
	}
	if byMode["Exhaustive"].States != 16 {
		t.Errorf("exhaustive states = %d (2^4)", byMode["Exhaustive"].States)
	}
	if s := FormatTable2(rows); s == "" {
		t.Error("format")
	}
}

func TestFiguresRunOnSmallDB(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	if _, err := Figure2(context.Background(), db, 2, 1); err != nil {
		t.Errorf("figure 2: %v", err)
	}
	if _, err := Figure3(context.Background(), db, 2, 1); err != nil {
		t.Errorf("figure 3: %v", err)
	}
	if _, err := Figure4(context.Background(), db, 2, 1); err != nil {
		t.Errorf("figure 4: %v", err)
	}
	if _, err := GroupByPlacementExp(context.Background(), db, 3, 1); err != nil {
		t.Errorf("gbp: %v", err)
	}
}
