package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cbqt"
	"repro/internal/obsv"
	"repro/internal/server"
	"repro/internal/storage"
)

// OverloadConfig shapes the overload experiment.
type OverloadConfig struct {
	// DB is the benchmark database.
	DB *storage.DB
	// Opts is the optimizer configuration (zero value: cbqt defaults with
	// Parallelism 1, like the throughput experiment).
	Opts cbqt.Options
	// MaxInflight / MaxQueue / QueueWait configure the server's admission
	// gate (defaults: 4 / MaxInflight / one mean service time measured at
	// calibration).
	MaxInflight int
	MaxQueue    int
	QueueWait   time.Duration
	// Multipliers are the offered-load points as multiples of the measured
	// closed-loop capacity (default 1, 4, 16).
	Multipliers []float64
	// PointDuration is the open-loop measurement window per multiplier
	// (default 2s).
	PointDuration time.Duration
	// Workers bounds the open-loop client pool (default: scaled to the
	// offered rate of each point, capped at 512).
	Workers int
	// Queries overrides the query mix (default: the Table 2 family mix
	// from overloadQueries).
	Queries []string
	// Seed drives workload generation.
	Seed int64
}

// OverloadPoint is one offered-load measurement.
type OverloadPoint struct {
	Multiplier float64
	OfferedQPS float64
	Sent       int // requests put on the wire
	Dropped    int // client-pool backpressure: never sent
	Completed  int
	Shed       int // typed OVERLOADED responses
	Failed     int // any other error (deadline, transport)
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	ShedRate   float64 // Shed / Sent
}

// OverloadResult is the full overload experiment: the calibrated capacity
// and one point per multiplier.
type OverloadResult struct {
	MaxInflight int
	MaxQueue    int
	QueueWait   time.Duration
	CapacityQPS float64
	MeanService time.Duration
	Points      []OverloadPoint
}

// Overload measures how the admission gate degrades under offered load
// beyond capacity. It first calibrates closed-loop capacity (MaxInflight
// clients back to back against an unsaturated server, so the gate never
// sheds), then drives open-loop load at each multiplier of that capacity
// and reports completed-query latency percentiles and the shed rate.
//
// The experiment's claim, mirrored by its acceptance test: past capacity
// the server sheds (the shed rate climbs) instead of queueing unboundedly,
// so the p95 of *admitted* queries stays within about 2x of the uncontended
// baseline — the queue in front of the gate is at most MaxQueue deep and
// each waiter is bounded by QueueWait.
func Overload(ctx context.Context, cfg OverloadConfig) (*OverloadResult, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("bench: overload needs a database")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = cfg.MaxInflight
	}
	if len(cfg.Multipliers) == 0 {
		cfg.Multipliers = []float64{1, 4, 16}
	}
	if cfg.PointDuration <= 0 {
		cfg.PointDuration = 2 * time.Second
	}
	// A zero Options means "use the defaults" (a real configuration always
	// starts from cbqt.DefaultOptions, which sets the thresholds).
	if cfg.Opts.ExhaustiveThreshold == 0 && cfg.Opts.TwoPassThreshold == 0 {
		cfg.Opts = cbqt.DefaultOptions()
		cfg.Opts.Parallelism = 1
	}

	pqs := cfg.Queries
	if len(pqs) == 0 {
		pqs = overloadQueries()
	}

	res := &OverloadResult{MaxInflight: cfg.MaxInflight, MaxQueue: cfg.MaxQueue}

	// Calibrate: MaxInflight closed-loop clients can never exceed the slot
	// count, so every request is admitted and the measured rate is the
	// server's capacity for this workload.
	cap, err := overloadCalibrate(ctx, cfg, pqs)
	if err != nil {
		return nil, fmt.Errorf("bench: overload calibration: %w", err)
	}
	res.CapacityQPS = cap
	res.MeanService = time.Duration(float64(cfg.MaxInflight) / cap * float64(time.Second))
	if cfg.QueueWait <= 0 {
		// One mean service time of queueing keeps an admitted query's
		// latency within ~2x the uncontended baseline, which is the bound
		// the experiment demonstrates.
		cfg.QueueWait = res.MeanService
		if cfg.QueueWait < 5*time.Millisecond {
			cfg.QueueWait = 5 * time.Millisecond
		}
	}
	res.QueueWait = cfg.QueueWait

	for _, mult := range cfg.Multipliers {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		p, err := overloadPoint(ctx, cfg, pqs, mult, cap)
		if err != nil {
			return res, fmt.Errorf("bench: overload %gx: %w", mult, err)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// overloadQueries builds the query mix: Table 2-family queries whose
// multi-table subqueries force the cost-based state search (8 to 64 states
// each), so optimization — the resource the admission gate protects — is
// the dominant per-request cost. The cache is off, so every request pays
// it. A tight outer filter keeps execution (which the gate deliberately
// does not cover) near free, so the measurement isolates the gate.
func overloadQueries() []string {
	var qs []string
	for _, n := range []int{3, 4, 5, 6} {
		qs = append(qs, Table2FamilyQuery(n)+" AND e.emp_id <= 3")
	}
	return qs
}

// overloadServer brings up a server with the experiment's admission gate.
func overloadServer(cfg OverloadConfig, queueWait time.Duration) (*server.Server, string, func(), error) {
	srv := server.New(server.Config{
		DB: cfg.DB, Opts: cfg.Opts, Registry: obsv.NewRegistry(), CacheOff: true,
		MaxInflight: cfg.MaxInflight, MaxQueue: cfg.MaxQueue, QueueWait: queueWait,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	stop := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		<-serveDone
	}
	return srv, l.Addr().String(), stop, nil
}

// overloadCalibrate measures closed-loop capacity with exactly MaxInflight
// clients (a generous queue wait keeps calibration shed-free).
func overloadCalibrate(ctx context.Context, cfg OverloadConfig, pqs []string) (float64, error) {
	_, addr, stop, err := overloadServer(cfg, 10*time.Second)
	if err != nil {
		return 0, err
	}
	defer stop()

	window := cfg.PointDuration
	deadline := time.Now().Add(window)
	var done atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.MaxInflight)
	start := time.Now()
	for w := 0; w < cfg.MaxInflight; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := server.Dial(addr, nil)
			if err != nil {
				errCh <- err
				return
			}
			defer cli.Close()
			for op := 0; time.Now().Before(deadline); op++ {
				if err := ctx.Err(); err != nil {
					errCh <- err
					return
				}
				if _, err := cli.Query(overloadPick(pqs, w, op)); err != nil {
					errCh <- err
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return 0, err
		}
	}
	if done.Load() == 0 {
		return 0, fmt.Errorf("no query completed in the %s calibration window", window)
	}
	return float64(done.Load()) / elapsed.Seconds(), nil
}

// overloadPick rotates a worker through the query mix.
func overloadPick(pqs []string, w, op int) string {
	return pqs[(w+op)%len(pqs)]
}

// overloadPoint drives one open-loop offered-load level: a pacing loop
// releases requests at mult x capacity into a bounded worker pool; workers
// never retry (the point measures raw shedding, not retry masking).
func overloadPoint(ctx context.Context, cfg OverloadConfig, pqs []string, mult, capacity float64) (OverloadPoint, error) {
	_, addr, stop, err := overloadServer(cfg, cfg.QueueWait)
	if err != nil {
		return OverloadPoint{}, err
	}
	defer stop()

	rate := mult * capacity
	point := OverloadPoint{Multiplier: mult, OfferedQPS: rate}

	// Size the pool so the client can actually offer the rate: enough
	// workers to cover the offered rate at roughly four mean service times
	// per request (service + queue wait + transport). An undersized pool
	// would bottleneck on the client and hide the server's shedding.
	workers := cfg.Workers
	if workers <= 0 {
		mean := float64(cfg.MaxInflight) / capacity
		workers = int(rate*4*mean) + 1
		if min := 4*cfg.MaxInflight + 16; workers < min {
			workers = min
		}
		if workers > 512 {
			workers = 512
		}
	}

	jobs := make(chan int, workers)
	var mu sync.Mutex
	var lats []time.Duration

	var sent, dropped, completed, shed, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var cli *server.Client
			defer func() {
				if cli != nil {
					cli.Close()
				}
			}()
			for op := range jobs {
				if cli == nil || cli.Broken() {
					c, err := server.DialWith(addr, server.DialOptions{CallTimeout: 5 * time.Second})
					if err != nil {
						failed.Add(1)
						continue
					}
					cli = c
				}
				begin := time.Now()
				_, err := cli.Query(overloadPick(pqs, w, op))
				lat := time.Since(begin)
				switch {
				case err == nil:
					completed.Add(1)
					mu.Lock()
					lats = append(lats, lat)
					mu.Unlock()
				case server.ErrorCode(err) == server.CodeOverloaded:
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}

	// The pacing loop: every 5ms, top the sent count up to the offered
	// schedule. A full pool drops the arrival (client backpressure) rather
	// than queueing it — the open-loop property under test lives on the
	// server, not here.
	start := time.Now()
	tick := time.NewTicker(5 * time.Millisecond)
	for time.Since(start) < cfg.PointDuration && ctx.Err() == nil {
		<-tick.C
		due := int64(rate * time.Since(start).Seconds())
		for sent.Load()+dropped.Load() < due {
			select {
			case jobs <- int(sent.Load()):
				sent.Add(1)
			default:
				dropped.Add(1)
			}
		}
	}
	tick.Stop()
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return point, err
	}

	point.Sent = int(sent.Load())
	point.Dropped = int(dropped.Load())
	point.Completed = int(completed.Load())
	point.Shed = int(shed.Load())
	point.Failed = int(failed.Load())
	if point.Sent > 0 {
		point.ShedRate = float64(point.Shed) / float64(point.Sent)
	}
	point.P50, point.P95, point.P99 = quantiles(lats)
	return point, nil
}

// quantiles returns the 50th/95th/99th percentile of the samples.
func quantiles(lats []time.Duration) (p50, p95, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) time.Duration {
		i := int(q*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return at(0.50), at(0.95), at(0.99)
}

// String renders the experiment like the report tables.
func (r *OverloadResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "overload: capacity %.1f qps at %d inflight (mean service %s), queue %d x %s\n",
		r.CapacityQPS, r.MaxInflight, r.MeanService.Round(time.Millisecond), r.MaxQueue, r.QueueWait.Round(time.Millisecond))
	fmt.Fprintf(&sb, "%-6s %10s %8s %8s %8s %8s %8s %9s %9s %9s %9s\n",
		"load", "offered", "sent", "done", "shed", "failed", "dropped", "p50", "p95", "p99", "shed-rate")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "%-6s %10.1f %8d %8d %8d %8d %8d %9s %9s %9s %8.1f%%\n",
			fmt.Sprintf("%gx", p.Multiplier), p.OfferedQPS, p.Sent, p.Completed, p.Shed, p.Failed, p.Dropped,
			p.P50.Round(time.Millisecond), p.P95.Round(time.Millisecond), p.P99.Round(time.Millisecond),
			100*p.ShedRate)
	}
	if base, top := r.point(1), r.pointMax(); base != nil && top != nil && base.P95 > 0 {
		fmt.Fprintf(&sb, "p95 at %gx vs 1x: %.2fx; shed rate at %gx: %.1f%% (shedding, not queueing)\n",
			top.Multiplier, float64(top.P95)/float64(base.P95), top.Multiplier, 100*top.ShedRate)
	}
	return sb.String()
}

func (r *OverloadResult) point(mult float64) *OverloadPoint {
	for i := range r.Points {
		if r.Points[i].Multiplier == mult {
			return &r.Points[i]
		}
	}
	return nil
}

func (r *OverloadResult) pointMax() *OverloadPoint {
	var best *OverloadPoint
	for i := range r.Points {
		if best == nil || r.Points[i].Multiplier > best.Multiplier {
			best = &r.Points[i]
		}
	}
	return best
}
