package bench

import (
	"context"
	"testing"
	"time"

	"repro/internal/cbqt"
	"repro/internal/faultinject"
	"repro/internal/testkit"
)

// TestOverloadShedsNotQueues is the acceptance test for the overload
// experiment: at 16x capacity the server must shed (typed OVERLOADED, shed
// rate > 0) rather than queue unboundedly, and the p95 latency of the
// queries it does admit must stay within 2x of the 1x baseline. A
// deterministic optimizer delay makes service times uniform so the bound
// is about admission behavior, not workload variance.
func TestOverloadShedsNotQueues(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	opts := cbqt.DefaultOptions()
	opts.Parallelism = 1
	// Service time must dominate scheduler and race-detector overhead, and
	// QueueWait must be a small fraction of it, so the 2x bound on admitted
	// latency holds by construction rather than by luck. A single moderate
	// query keeps service near uniform.
	opts.Faults = faultinject.New(faultinject.Fault{
		Site: "heuristics", Kind: faultinject.KindDelay, Delay: 10 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Overload(ctx, OverloadConfig{
		DB: db, Opts: opts,
		MaxInflight: 2, MaxQueue: 2, QueueWait: 12 * time.Millisecond, Workers: 24,
		Queries:       []string{Table2FamilyQuery(3) + " AND e.emp_id <= 3"},
		Multipliers:   []float64{1, 16},
		PointDuration: 800 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)

	if res.CapacityQPS <= 0 {
		t.Fatalf("calibration measured no capacity: %+v", res)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	base, top := res.point(1), res.point(16)
	if base == nil || top == nil {
		t.Fatalf("missing points: %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.Completed == 0 {
			t.Fatalf("%gx completed nothing: %+v", p.Multiplier, p)
		}
		if p.Failed > 0 {
			t.Fatalf("%gx had %d untyped failures; overload must be typed shedding", p.Multiplier, p.Failed)
		}
	}

	// Past capacity the gate sheds — the defining property of admission
	// control versus an unbounded queue.
	if top.Shed == 0 {
		t.Fatalf("16x load shed nothing: %+v", top)
	}
	if top.ShedRate <= base.ShedRate {
		t.Fatalf("shed rate did not rise with load: 1x %.3f vs 16x %.3f", base.ShedRate, top.ShedRate)
	}

	// ...and because the queue in front of the slots is short and bounded
	// in time, the queries that are admitted still finish promptly.
	if base.P95 <= 0 {
		t.Fatalf("baseline p95 missing: %+v", base)
	}
	if top.P95 > 2*base.P95 {
		t.Fatalf("admitted p95 degraded %.2fx under 16x load (1x %v, 16x %v); bound is 2x",
			float64(top.P95)/float64(base.P95), base.P95, top.P95)
	}
}
