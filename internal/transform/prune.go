package transform

import (
	"repro/internal/qtree"
)

// RedundancyPruning implements the "pruning of redundant operations" the
// paper lists among the goals of heuristic transformation (§2.1):
//
//   - DISTINCT elimination: a SELECT DISTINCT whose output includes a
//     unique key (or rowid) of every joined relation cannot produce
//     duplicates, so the distinct operator is dropped;
//   - ORDER BY elimination inside views: ordering a view that is not under
//     a row limit has no observable effect, so the sort is dropped.
type RedundancyPruning struct{}

// Name implements HeuristicRule.
func (*RedundancyPruning) Name() string { return "redundancy pruning" }

// Apply implements HeuristicRule.
func (*RedundancyPruning) Apply(q *qtree.Query) (bool, error) {
	changed := false
	for _, b := range Blocks(q) {
		b = q.Resolve(b)
		if pruneDistinct(q, b) {
			changed = true
			b = q.Resolve(b)
		}
		for _, f := range b.From {
			if f.View != nil && pruneViewOrder(q, b, f.View) {
				changed = true
			}
		}
	}
	return changed, nil
}

// pruneDistinct drops DISTINCT when the select list functionally
// determines whole rows: it contains a unique key of every from item.
func pruneDistinct(q *qtree.Query, b *qtree.Block) bool {
	if !b.Distinct || b.IsSetOp() || b.HasGroupBy() || len(b.From) == 0 {
		return false
	}
	// Collect the plain columns in the select list per from item.
	colsByItem := map[qtree.FromID][]int{}
	for _, it := range b.Select {
		if c, ok := it.Expr.(*qtree.Col); ok {
			colsByItem[c.From] = append(colsByItem[c.From], c.Ord)
		}
	}
	for _, f := range b.From {
		switch f.Kind {
		case qtree.JoinSemi, qtree.JoinAnti, qtree.JoinNullAwareAnti:
			continue // contributes no output columns: rows stay a subset
		case qtree.JoinLeftOuter, qtree.JoinFullOuter:
			// Outer joins pad with NULL rows a key cannot disambiguate.
			return false
		}
		if !f.IsTable() {
			return false // views lack key metadata
		}
		ords := colsByItem[f.ID]
		unique := false
		for _, o := range ords {
			if o == f.Table.RowidOrdinal() {
				unique = true
			}
		}
		if !unique && !f.Table.IsUniqueKey(ords) {
			return false
		}
	}
	b = q.Mutable(b)
	b.Distinct = false
	return true
}

// pruneViewOrder removes a view's ORDER BY when nothing can observe it:
// the view itself has no row limit and the containing block has none
// either (a ROWNUM-limited outer block observes arrival order, the Q16
// top-k pattern).
func pruneViewOrder(q *qtree.Query, outer *qtree.Block, v *qtree.Block) bool {
	if len(v.OrderBy) == 0 || v.Limit > 0 || outer.Limit > 0 {
		return false
	}
	v = q.Mutable(v)
	v.OrderBy = nil
	return true
}
