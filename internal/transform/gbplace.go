package transform

import (
	"fmt"

	"repro/internal/qtree"
)

// GroupByPlacement implements group-by pushdown / eager aggregation
// (§2.2.4): in a grouped join block, the aggregation is partially pushed
// below the joins onto the table that supplies every aggregate argument,
// which may drastically reduce the join input size. The outer block keeps a
// compensating aggregation (SUM of partial SUMs, SUM of partial COUNTs,
// MIN of MINs, and AVG decomposed into SUM/COUNT).
type GroupByPlacement struct{}

// Name implements Rule.
func (*GroupByPlacement) Name() string { return "group-by placement" }

type gbpObj struct {
	block *qtree.Block
	from  int
}

func (r *GroupByPlacement) objects(q *qtree.Query) []gbpObj {
	var out []gbpObj
	for _, b := range Blocks(q) {
		if !gbpBlockLegal(b) {
			continue
		}
		for fi, f := range b.From {
			if gbpItemLegal(b, f) {
				out = append(out, gbpObj{block: b, from: fi})
			}
		}
	}
	return out
}

// Find implements Rule.
func (r *GroupByPlacement) Find(q *qtree.Query) int { return len(r.objects(q)) }

// Variants implements Rule.
func (r *GroupByPlacement) Variants(q *qtree.Query, obj int) int { return 1 }

// Apply implements Rule.
func (r *GroupByPlacement) Apply(q *qtree.Query, obj, variant int) error {
	objs := r.objects(q)
	if obj >= len(objs) {
		return fmt.Errorf("group-by placement: object %d out of range", obj)
	}
	o := objs[obj]
	// Materialize before the push: the table item migrates into the new
	// view and the block's expressions are rewritten in place, so neither
	// may still be shared with a copy-on-write base.
	b := q.Mutable(o.block)
	return pushGroupBy(q, b, b.From[o.from])
}

func gbpBlockLegal(b *qtree.Block) bool {
	if b.IsSetOp() || !b.HasGroupBy() || b.GroupingSets != nil ||
		b.Distinct || b.Limit > 0 || len(b.From) < 2 {
		return false
	}
	for _, f := range b.From {
		if f.Kind != qtree.JoinInner || f.Lateral {
			return false
		}
	}
	// No subqueries anywhere in the block's own expressions (they would
	// need their references redirected too; keep the transformation
	// focused).
	return !blockHasSubqueries(b)
}

// gbpItemLegal reports whether from item f can host the pushed-down
// aggregation: every aggregate argument references only f, no distinct
// aggregates, and f is a base table.
func gbpItemLegal(b *qtree.Block, f *qtree.FromItem) bool {
	if !f.IsTable() {
		return false
	}
	legal := true
	sawAgg := false
	check := func(e qtree.Expr) {
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			a, ok := x.(*qtree.Agg)
			if !ok {
				return true
			}
			sawAgg = true
			if a.Distinct {
				legal = false
				return false
			}
			if a.Arg != nil && !refsOnly(a.Arg, map[qtree.FromID]bool{f.ID: true}) {
				legal = false
				return false
			}
			return false
		})
	}
	for _, it := range b.Select {
		check(it.Expr)
	}
	for _, h := range b.Having {
		check(h)
	}
	for _, o := range b.OrderBy {
		check(o.Expr)
	}
	return legal && sawAgg
}

// pushGroupBy pushes a partial aggregation onto table f.
func pushGroupBy(q *qtree.Query, b *qtree.Block, f *qtree.FromItem) error {
	if !gbpBlockLegal(b) || !gbpItemLegal(b, f) {
		return fmt.Errorf("group-by placement: not legal here")
	}
	// Collect the distinct aggregate specs.
	var specs []*qtree.Agg
	var specKeys []string
	collect := func(e qtree.Expr) {
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			if a, ok := x.(*qtree.Agg); ok {
				k := a.String()
				for _, s := range specKeys {
					if s == k {
						return false
					}
				}
				specKeys = append(specKeys, k)
				specs = append(specs, a)
				return false
			}
			return true
		})
	}
	for _, it := range b.Select {
		collect(it.Expr)
	}
	for _, h := range b.Having {
		collect(h)
	}
	for _, o := range b.OrderBy {
		collect(o.Expr)
	}

	// Columns of f used outside aggregate arguments become the pushed
	// grouping key (join columns and outer grouping columns).
	keyOrds := []int{}
	keySet := map[int]bool{}
	inAggArg := map[string]bool{}
	for _, k := range specKeys {
		inAggArg[k] = true
	}
	var scanForKeys func(e qtree.Expr)
	scanForKeys = func(e qtree.Expr) {
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			if _, ok := x.(*qtree.Agg); ok {
				return false // aggregate arguments live inside the view
			}
			if c, ok := x.(*qtree.Col); ok && c.From == f.ID {
				if !keySet[c.Ord] {
					keySet[c.Ord] = true
					keyOrds = append(keyOrds, c.Ord)
				}
			}
			return true
		})
	}
	for _, it := range b.Select {
		scanForKeys(it.Expr)
	}
	for _, e := range b.Where {
		scanForKeys(e)
	}
	for _, g := range b.GroupBy {
		scanForKeys(g)
	}
	for _, h := range b.Having {
		scanForKeys(h)
	}
	for _, o := range b.OrderBy {
		scanForKeys(o.Expr)
	}

	// Build the pushed-down view over f.
	v := q.NewBlock()
	v.From = []*qtree.FromItem{f}
	// Single-table predicates on f move into the view.
	var keep []qtree.Expr
	for _, e := range b.Where {
		if refsOnly(e, map[qtree.FromID]bool{f.ID: true}) && !containsSubq(e) {
			v.Where = append(v.Where, e)
		} else {
			keep = append(keep, e)
		}
	}
	b.Where = keep

	for _, ord := range keyOrds {
		col := &qtree.Col{From: f.ID, Ord: ord, Name: f.ColName(ord)}
		v.GroupBy = append(v.GroupBy, col)
		v.Select = append(v.Select, qtree.SelectItem{Expr: col, Alias: f.ColName(ord)})
	}
	keyIndex := map[int]int{}
	for i, ord := range keyOrds {
		keyIndex[ord] = i
	}

	// Partial aggregates, and the outer compensation expression per spec.
	// The outer Col references must carry the view column's actual alias:
	// expression identity downstream (aggregate dedup, equivalence checks)
	// is keyed on the rendered form, so two references with a shared
	// placeholder name would collapse into one aggregate.
	outerExpr := make([]qtree.Expr, len(specs))
	fvID := q.NewFromID()
	addPartial := func(a *qtree.Agg, alias string) int {
		ord := len(v.Select)
		v.Select = append(v.Select, qtree.SelectItem{Expr: a, Alias: alias})
		return ord
	}
	for i, a := range specs {
		switch a.Op {
		case qtree.AggSum, qtree.AggMin, qtree.AggMax:
			alias := fmt.Sprintf("P%d", i)
			ord := addPartial(&qtree.Agg{Op: a.Op, Arg: a.Arg}, alias)
			outerExpr[i] = &qtree.Agg{Op: compensate(a.Op), Arg: &qtree.Col{From: fvID, Ord: ord, Name: alias}}
		case qtree.AggCount:
			alias := fmt.Sprintf("P%d", i)
			var ord int
			if a.Star {
				ord = addPartial(&qtree.Agg{Op: qtree.AggCount, Star: true}, alias)
			} else {
				ord = addPartial(&qtree.Agg{Op: qtree.AggCount, Arg: a.Arg}, alias)
			}
			outerExpr[i] = &qtree.Agg{Op: qtree.AggSum, Arg: &qtree.Col{From: fvID, Ord: ord, Name: alias}}
		case qtree.AggAvg:
			sumAlias := fmt.Sprintf("P%dS", i)
			cntAlias := fmt.Sprintf("P%dC", i)
			sumOrd := addPartial(&qtree.Agg{Op: qtree.AggSum, Arg: a.Arg}, sumAlias)
			cntOrd := addPartial(&qtree.Agg{Op: qtree.AggCount, Arg: cloneExpr(q, a.Arg)}, cntAlias)
			outerExpr[i] = &qtree.Bin{
				Op: qtree.OpDiv,
				L:  &qtree.Agg{Op: qtree.AggSum, Arg: &qtree.Col{From: fvID, Ord: sumOrd, Name: sumAlias}},
				R:  &qtree.Agg{Op: qtree.AggSum, Arg: &qtree.Col{From: fvID, Ord: cntOrd, Name: cntAlias}},
			}
		}
	}

	// Swap the table for the view in the from list.
	fv := &qtree.FromItem{ID: fvID, Alias: "VW_GBP_" + f.Alias, View: v}
	for i, it := range b.From {
		if it == f {
			b.From[i] = fv
			break
		}
	}

	// Rewrite the outer block: aggregates become compensation expressions;
	// plain f columns become view key outputs.
	qtree.RewriteBlockExprs(b, func(x qtree.Expr) qtree.Expr {
		if a, ok := x.(*qtree.Agg); ok {
			k := a.String()
			for i, sk := range specKeys {
				if sk == k {
					return cloneExpr(q, outerExpr[i])
				}
			}
			return nil
		}
		if c, ok := x.(*qtree.Col); ok && c.From == f.ID {
			if idx, ok := keyIndex[c.Ord]; ok {
				return &qtree.Col{From: fvID, Ord: idx, Name: c.Name}
			}
		}
		return nil
	})
	return nil
}

// compensate maps a partial aggregate to its combining aggregate.
func compensate(op qtree.AggOp) qtree.AggOp {
	switch op {
	case qtree.AggSum, qtree.AggCount:
		return qtree.AggSum
	case qtree.AggMin:
		return qtree.AggMin
	case qtree.AggMax:
		return qtree.AggMax
	}
	return qtree.AggSum
}
