package transform

import (
	"fmt"
	"sort"

	"repro/internal/qtree"
)

// JoinFactorization pulls a join table that is common to every branch of a
// UNION ALL out of the branches (§2.2.5, Q14 -> Q15): the common table is
// joined once to a view containing the UNION ALL of the branch remainders,
// avoiding repeated scans of the common table.
//
// Variant 1 pulls the join predicates out with the table, which requires
// them to have the same shape in every branch. Variant 2 implements the
// extension the paper describes for the cases "where the common tables can
// be factorised out but the corresponding join predicates cannot be pulled
// out": the predicates stay inside the UNION ALL view, which is then
// joined laterally by the join-predicate-pushdown technique.
type JoinFactorization struct{}

// Name implements Rule.
func (*JoinFactorization) Name() string { return "join factorization" }

type factObj struct {
	block     *qtree.Block
	table     string // common table name
	strictOK  bool   // join predicates can be pulled out (Q15)
	lateralOK bool   // predicates stay inside; lateral join (extension)
}

func (r *JoinFactorization) objects(q *qtree.Query) []factObj {
	var out []factObj
	for _, b := range Blocks(q) {
		if b.Set == nil || b.Set.Kind != qtree.SetUnionAll || len(b.Set.Children) < 2 {
			continue
		}
		if b.Limit > 0 || len(b.OrderBy) > 0 {
			continue
		}
		seen := map[string]bool{}
		first := b.Set.Children[0]
		if first.IsSetOp() {
			continue
		}
		var names []string
		for _, f := range first.From {
			if f.IsTable() && f.Kind == qtree.JoinInner && !seen[f.Table.Name] {
				seen[f.Table.Name] = true
				names = append(names, f.Table.Name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			o := factObj{block: b, table: name}
			o.strictOK = analyzeFactorization(b, name) != nil
			o.lateralOK = analyzeLateralFactorization(b, name) != nil
			if o.strictOK || o.lateralOK {
				out = append(out, o)
			}
		}
	}
	return out
}

// analyzeLateralFactorization checks the weaker legality of the lateral
// variant: one inner occurrence of the table per branch, plain same-ordinal
// select references, and no use of the table in grouping clauses. Join
// predicates may have any shape — they stay inside the branches.
func analyzeLateralFactorization(b *qtree.Block, name string) []branchPlan {
	var plans []branchPlan
	var selSig map[int]int
	for bi, br := range b.Set.Children {
		if br.IsSetOp() || br.Distinct || br.HasGroupBy() || br.Limit > 0 ||
			len(br.OrderBy) > 0 || blockHasSubqueries(br) || br.HasWindowFuncs() {
			return nil
		}
		var item *qtree.FromItem
		for _, f := range br.From {
			if f.IsTable() && f.Table.Name == name && f.Kind == qtree.JoinInner {
				if item != nil {
					return nil
				}
				item = f
			}
		}
		if item == nil || len(br.From) < 2 {
			return nil
		}
		p := branchPlan{item: item, selOrds: map[int]int{}}
		for si, it := range br.Select {
			if !refersTo(it.Expr, item.ID) {
				continue
			}
			ord, isCol := colOfTable(it.Expr, item.ID)
			if !isCol {
				return nil
			}
			p.selOrds[si] = ord
		}
		// Non-inner join conditions referencing the table would change
		// meaning when the table becomes correlated; reject.
		for _, f := range br.From {
			if f == item {
				continue
			}
			for _, c := range f.Cond {
				if refersTo(c, item.ID) {
					return nil
				}
			}
		}
		if bi == 0 {
			selSig = p.selOrds
		} else if !equalIntMap(selSig, p.selOrds) {
			return nil
		}
		plans = append(plans, p)
	}
	return plans
}

// branchPlan describes how one branch participates in the factorization.
type branchPlan struct {
	item      *qtree.FromItem
	joinWhere []int // where indexes of the table's join predicates
	joinOrds  []int // table column ordinal per join predicate (sorted)
	joinExprs []qtree.Expr
	selOrds   map[int]int // select position -> table column ordinal
}

// analyzeFactorization checks legality of factoring table name out of
// every branch and returns the per-branch plans (nil if illegal).
func analyzeFactorization(b *qtree.Block, name string) []branchPlan {
	var plans []branchPlan
	var refOrds []int // join ordinal signature from the first branch
	var selSig map[int]int
	for bi, br := range b.Set.Children {
		if br.IsSetOp() || br.Distinct || br.HasGroupBy() || br.Limit > 0 ||
			len(br.OrderBy) > 0 || blockHasSubqueries(br) || br.HasWindowFuncs() {
			return nil
		}
		// Exactly one inner occurrence of the table.
		var item *qtree.FromItem
		for _, f := range br.From {
			if f.IsTable() && f.Table.Name == name && f.Kind == qtree.JoinInner {
				if item != nil {
					return nil
				}
				item = f
			}
		}
		if item == nil || len(br.From) < 2 {
			return nil
		}
		p := branchPlan{item: item, selOrds: map[int]int{}}
		// Classify conjuncts touching the table: every one must be an
		// equality between a table column and a T-free expression (no
		// single-table filters on T, which would have to match across
		// branches; kept out of scope and documented).
		type jp struct {
			ord  int
			expr qtree.Expr
			wi   int
		}
		var jps []jp
		for wi, e := range br.Where {
			if !refersTo(e, item.ID) {
				continue
			}
			bin, ok := e.(*qtree.Bin)
			if !ok || bin.Op != qtree.OpEq {
				return nil
			}
			if ord, isT := colOfTable(bin.L, item.ID); isT && !refersTo(bin.R, item.ID) {
				jps = append(jps, jp{ord: ord, expr: bin.R, wi: wi})
				continue
			}
			if ord, isT := colOfTable(bin.R, item.ID); isT && !refersTo(bin.L, item.ID) {
				jps = append(jps, jp{ord: ord, expr: bin.L, wi: wi})
				continue
			}
			return nil
		}
		if len(jps) == 0 {
			return nil
		}
		sort.SliceStable(jps, func(i, j int) bool { return jps[i].ord < jps[j].ord })
		for _, x := range jps {
			p.joinOrds = append(p.joinOrds, x.ord)
			p.joinExprs = append(p.joinExprs, x.expr)
			p.joinWhere = append(p.joinWhere, x.wi)
		}
		// Select positions referencing the table must be plain columns.
		for si, it := range br.Select {
			if !refersTo(it.Expr, item.ID) {
				continue
			}
			ord, isCol := colOfTable(it.Expr, item.ID)
			if !isCol {
				return nil
			}
			p.selOrds[si] = ord
		}
		// The table must not appear anywhere else in the branch.
		for _, g := range br.GroupBy {
			if refersTo(g, item.ID) {
				return nil
			}
		}
		// Signatures must match across branches.
		if bi == 0 {
			refOrds = p.joinOrds
			selSig = p.selOrds
		} else {
			if !equalInts(refOrds, p.joinOrds) || !equalIntMap(selSig, p.selOrds) {
				return nil
			}
		}
		plans = append(plans, p)
	}
	return plans
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalIntMap(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Find implements Rule.
func (r *JoinFactorization) Find(q *qtree.Query) int { return len(r.objects(q)) }

// Variants implements Rule. When both forms are legal, variant 1 pulls the
// join predicates out (Q15) and variant 2 leaves them in the branches with
// a lateral join; when only one is legal, it is variant 1.
func (r *JoinFactorization) Variants(q *qtree.Query, obj int) int {
	objs := r.objects(q)
	if obj >= len(objs) {
		return 1
	}
	n := 0
	if objs[obj].strictOK {
		n++
	}
	if objs[obj].lateralOK {
		n++
	}
	return n
}

// Apply implements Rule.
func (r *JoinFactorization) Apply(q *qtree.Query, obj, variant int) error {
	objs := r.objects(q)
	if obj >= len(objs) {
		return fmt.Errorf("join factorization: object %d out of range", obj)
	}
	o := objs[obj]
	if variant == 2 || (variant == 1 && !o.strictOK) {
		if !o.lateralOK {
			return fmt.Errorf("join factorization: no variant %d for object %d", variant, obj)
		}
		return applyLateralFactorization(q, o.block, o.table)
	}
	b := q.Mutable(o.block)
	plans := analyzeFactorization(b, o.table)
	if plans == nil {
		return fmt.Errorf("join factorization: no longer legal")
	}
	children := b.Set.Children
	outNames := b.OutCols()
	nOut := len(children[0].Select)
	// The common table moves to the outer block; copy the item so the new
	// tree never aliases a from-item struct still held by a shared branch.
	tItem := copyFromItem(plans[0].item)
	nJoin := len(plans[0].joinOrds)

	// Rewrite each branch: drop the table and its join predicates, expose
	// the join expressions as extra outputs, null out the table's select
	// positions. Materializing a branch relinks it into b.Set.Children,
	// which `children` aliases, so the slice stays current.
	for bi, br := range children {
		br = q.Mutable(br)
		p := plans[bi]
		removeFromItem(br, p.item.ID)
		drop := map[int]bool{}
		for _, wi := range p.joinWhere {
			drop[wi] = true
		}
		var keep []qtree.Expr
		for wi, e := range br.Where {
			if !drop[wi] {
				keep = append(keep, e)
			}
		}
		br.Where = keep
		for si := range p.selOrds {
			br.Select[si].Expr = &qtree.Const{} // dead position, NULL
		}
		for k := 0; k < nJoin; k++ {
			br.Select = append(br.Select, qtree.SelectItem{
				Expr:  p.joinExprs[k],
				Alias: fmt.Sprintf("JF%d", k),
			})
		}
	}

	// The block becomes a join of the common table with the UNION ALL view.
	vBlock := q.NewBlock()
	vBlock.Set = &qtree.SetOp{Kind: qtree.SetUnionAll, Children: children}
	vItem := &qtree.FromItem{ID: q.NewFromID(), Alias: "VW_JF", View: vBlock}

	b.Set = nil
	b.From = []*qtree.FromItem{tItem, vItem}
	b.Where = nil
	for k := 0; k < nJoin; k++ {
		b.Where = append(b.Where, &qtree.Bin{
			Op: qtree.OpEq,
			L:  &qtree.Col{From: tItem.ID, Ord: plans[0].joinOrds[k], Name: tItem.ColName(plans[0].joinOrds[k])},
			R:  &qtree.Col{From: vItem.ID, Ord: nOut + k, Name: fmt.Sprintf("JF%d", k)},
		})
	}
	b.Select = nil
	for si := 0; si < nOut; si++ {
		var e qtree.Expr
		if ord, fromT := plans[0].selOrds[si]; fromT {
			e = &qtree.Col{From: tItem.ID, Ord: ord, Name: tItem.ColName(ord)}
		} else {
			e = &qtree.Col{From: vItem.ID, Ord: si, Name: outNames[si]}
		}
		b.Select = append(b.Select, qtree.SelectItem{Expr: e, Alias: outNames[si]})
	}
	return nil
}

// applyLateralFactorization factors the common table out while leaving its
// join predicates inside the branches: every branch's occurrence of the
// table is removed and its references redirected to the single pulled-out
// item, making the UNION ALL view correlated (lateral), exactly the
// JPPD-based technique §2.2.5 sketches for non-pullable predicates.
func applyLateralFactorization(q *qtree.Query, b *qtree.Block, table string) error {
	b = q.Mutable(q.Resolve(b))
	plans := analyzeLateralFactorization(b, table)
	if plans == nil {
		return fmt.Errorf("join factorization (lateral): no longer legal")
	}
	children := b.Set.Children
	outNames := b.OutCols()
	nOut := len(children[0].Select)
	tItem := copyFromItem(plans[0].item)

	for bi, br := range children {
		p := plans[bi]
		if p.item.ID != tItem.ID {
			// The redirect below rewrites the branch's whole subtree.
			br = q.MutableDeep(br)
		} else {
			br = q.Mutable(br)
		}
		removeFromItem(br, p.item.ID)
		if p.item.ID != tItem.ID {
			// Redirect this branch's references to the pulled-out item.
			old := p.item.ID
			qtree.RewriteBlockExprsDeep(br, func(e qtree.Expr) qtree.Expr {
				if c, ok := e.(*qtree.Col); ok && c.From == old {
					return &qtree.Col{From: tItem.ID, Ord: c.Ord, Name: c.Name}
				}
				return nil
			})
		}
		// Select positions that exposed the table become dead; the outer
		// block reads those columns from the table directly.
		for si := range p.selOrds {
			br.Select[si].Expr = &qtree.Const{}
		}
	}

	vBlock := q.NewBlock()
	vBlock.Set = &qtree.SetOp{Kind: qtree.SetUnionAll, Children: children}
	vItem := &qtree.FromItem{ID: q.NewFromID(), Alias: "VW_JF_L", View: vBlock, Lateral: true}

	b.Set = nil
	b.From = []*qtree.FromItem{tItem, vItem}
	b.Where = nil
	b.Select = nil
	for si := 0; si < nOut; si++ {
		var e qtree.Expr
		if ord, fromT := plans[0].selOrds[si]; fromT {
			e = &qtree.Col{From: tItem.ID, Ord: ord, Name: tItem.ColName(ord)}
		} else {
			e = &qtree.Col{From: vItem.ID, Ord: si, Name: outNames[si]}
		}
		b.Select = append(b.Select, qtree.SelectItem{Expr: e, Alias: outNames[si]})
	}
	return nil
}
