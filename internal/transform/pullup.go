package transform

import (
	"fmt"

	"repro/internal/qtree"
)

// PredicatePullup pulls an expensive filter predicate out of a view into
// the view's containing query block (§2.2.6, Q16 -> Q17). It is considered
// only when the containing block has a ROWNUM limit and the view contains a
// blocking operator (ORDER BY): the limit means the expensive predicate may
// run on far fewer rows after the pull-up. Columns the predicate needs are
// exposed as extra (hidden) view outputs.
type PredicatePullup struct{}

// Name implements Rule.
func (*PredicatePullup) Name() string { return "predicate pullup" }

type pullupObj struct {
	block *qtree.Block
	from  int
	where int // index of the expensive predicate in the view's WHERE
}

func (r *PredicatePullup) objects(q *qtree.Query) []pullupObj {
	var out []pullupObj
	for _, b := range Blocks(q) {
		if b.IsSetOp() || b.Limit == 0 {
			continue // only under a rownum predicate (§2.2.6)
		}
		for fi, f := range b.From {
			if f.View == nil || f.Kind != qtree.JoinInner || f.Lateral {
				continue
			}
			v := f.View
			if v.IsSetOp() || len(v.OrderBy) == 0 || v.Limit > 0 ||
				v.Distinct || v.HasGroupBy() || v.HasWindowFuncs() {
				continue // the view must block (ORDER BY) and be simple
			}
			for wi, e := range v.Where {
				if isExpensive(e) {
					out = append(out, pullupObj{block: b, from: fi, where: wi})
				}
			}
		}
	}
	return out
}

// Find implements Rule.
func (r *PredicatePullup) Find(q *qtree.Query) int { return len(r.objects(q)) }

// Variants implements Rule.
func (r *PredicatePullup) Variants(q *qtree.Query, obj int) int { return 1 }

// Apply implements Rule.
func (r *PredicatePullup) Apply(q *qtree.Query, obj, variant int) error {
	objs := r.objects(q)
	if obj >= len(objs) {
		return fmt.Errorf("predicate pullup: object %d out of range", obj)
	}
	o := objs[obj]
	// Both the view (losing the predicate, gaining hidden outputs) and the
	// containing block (gaining the pulled predicate) are mutated, and the
	// predicate's subquery blocks are rewritten in place — privatize the
	// view's subtree under copy-on-write.
	b := q.Mutable(o.block)
	f := b.From[o.from]
	v := q.MutableDeep(f.View)
	pred := v.Where[o.where]
	v.Where = append(v.Where[:o.where:o.where], v.Where[o.where+1:]...)

	// Expose every view-internal column the predicate references as an
	// extra output, reusing existing outputs where possible.
	internal := subtreeDefined(v)
	exposed := map[string]int{} // col string -> view output ordinal
	for i, it := range v.Select {
		if c, ok := it.Expr.(*qtree.Col); ok {
			exposed[c.String()] = i
		}
	}
	mapCol := func(c *qtree.Col) *qtree.Col {
		if !internal[c.From] {
			return nil // already an outer reference (correlation)
		}
		key := c.String()
		ord, ok := exposed[key]
		if !ok {
			ord = len(v.Select)
			v.Select = append(v.Select, qtree.SelectItem{
				Expr:  &qtree.Col{From: c.From, Ord: c.Ord, Name: c.Name},
				Alias: fmt.Sprintf("PU%d", ord),
			})
			exposed[key] = ord
		}
		return &qtree.Col{From: f.ID, Ord: ord, Name: c.Name}
	}

	// Rewrite the predicate: top-level columns via RewriteExpr; columns
	// inside subquery blocks via a deep rewrite of those blocks.
	pulled := qtree.RewriteExpr(pred, func(x qtree.Expr) qtree.Expr {
		if c, ok := x.(*qtree.Col); ok {
			if nc := mapCol(c); nc != nil {
				return nc
			}
		}
		return nil
	})
	qtree.WalkExpr(pulled, func(x qtree.Expr) bool {
		if s, ok := x.(*qtree.Subq); ok {
			qtree.RewriteBlockExprsDeep(s.Block, func(e qtree.Expr) qtree.Expr {
				if c, ok := e.(*qtree.Col); ok {
					if nc := mapCol(c); nc != nil {
						return nc
					}
				}
				return nil
			})
			return false
		}
		return true
	})
	b.Where = append(b.Where, pulled)
	return nil
}
