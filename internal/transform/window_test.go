package transform

import (
	"testing"

	"repro/internal/qtree"
	"repro/internal/testkit"
)

// q7SQL is the paper's Q7: an inline view computing a running average
// balance per account, with outer filters on the PARTITION BY column
// (acct_id) and on the ORDER BY column (time).
const q7SQL = `
SELECT v.acct_id, v.time, v.ravg FROM
(SELECT a.acct_id acct_id, a.time time,
        AVG(a.balance) OVER (PARTITION BY a.acct_id ORDER BY a.time
          RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) ravg
 FROM accounts a) v
WHERE v.acct_id = 'ORCL' AND v.time <= 12`

func TestQ7PartitionByPushdown(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 3)
	q := qtree.MustBind(q7SQL, db.Catalog)
	want := results(t, db, q)

	q2 := qtree.MustBind(q7SQL, db.Catalog)
	ch, err := (&PredicateMoveAround{}).Apply(q2)
	if err != nil || !ch {
		t.Fatalf("move around: %v %v", ch, err)
	}
	// The acct_id predicate (PARTITION BY column) must be pushed into the
	// view (Q8); the time predicate (ORDER BY column) must stay outside —
	// pushing it would change the running-average frames.
	v := q2.Root.From[0].View
	pushedAcct := false
	for _, e := range v.Where {
		if refersToName(e, "ACCT_ID") {
			pushedAcct = true
		}
		if refersToName(e, "TIME") {
			t.Errorf("time predicate must not be pushed below the window: %s", q2.SQL())
		}
	}
	if !pushedAcct {
		t.Fatalf("acct_id predicate should be pushed into the view (Q8): %s", q2.SQL())
	}
	timeOutside := false
	for _, e := range q2.Root.Where {
		if refersToName(e, "TIME") {
			timeOutside = true
		}
	}
	if !timeOutside {
		t.Errorf("time predicate should remain in the outer block: %s", q2.SQL())
	}

	got := results(t, db, q2)
	if !sameRows(want, got) {
		t.Errorf("Q7 -> Q8 changed semantics\nwant %v\ngot  %v", want, got)
	}
}

// refersToName reports whether the expression references a column with the
// given display name.
func refersToName(e qtree.Expr, name string) bool {
	found := false
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		if c, ok := x.(*qtree.Col); ok && c.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func TestWindowViewNotMergedOrUnnested(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 3)
	q := qtree.MustBind(q7SQL, db.Catalog)
	if ch, err := (&SPJViewMerge{}).Apply(q); err != nil || ch {
		t.Errorf("window view must not merge as SPJ: %v %v", ch, err)
	}
	r := &ViewStrategy{}
	if n := r.Find(q); n != 0 {
		t.Errorf("window view is not a merge/JPPD object, found %d", n)
	}
}

func TestWindowViewJPPDOnPartitionColumnOnly(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 3)
	// A window view joined on its PARTITION BY output: pushable; the JPPD
	// path uses the same legality rule via jppdAccepts.
	src := `
SELECT e.employee_name, v.rs FROM employees e,
(SELECT s.dept_id dd, SUM(s.amount) OVER (PARTITION BY s.dept_id) rs FROM sales s) v
WHERE e.dept_id = v.dd AND e.emp_id < 20`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	ch, err := (&PredicateMoveAround{}).Apply(q2)
	if err != nil {
		t.Fatal(err)
	}
	_ = ch // the join predicate is not single-view, so move-around skips it
	got := results(t, db, q2)
	if !sameRows(want, got) {
		t.Errorf("window view query changed: %v vs %v", want, got)
	}
	// Now a pushable constant filter on the partition column.
	src2 := `
SELECT v.dd, v.rs FROM
(SELECT s.dept_id dd, SUM(s.amount) OVER (PARTITION BY s.dept_id) rs FROM sales s) v
WHERE v.dd = 7`
	assertEquivalent(t, db, src2, heuristic("filter predicate move around"))
	// And a non-pushable filter on the window output itself.
	src3 := `
SELECT v.dd, v.rs FROM
(SELECT s.dept_id dd, SUM(s.amount) OVER (PARTITION BY s.dept_id) rs FROM sales s) v
WHERE v.rs > 100`
	q3 := qtree.MustBind(src3, db.Catalog)
	before := len(q3.Root.Where)
	if _, err := (&PredicateMoveAround{}).Apply(q3); err != nil {
		t.Fatal(err)
	}
	if len(q3.Root.Where) != before {
		t.Errorf("window-output predicate must not be pushed: %s", q3.SQL())
	}
}
