package transform

import (
	"errors"
	"fmt"

	"repro/internal/qtree"
)

// UnnestSubquery is the cost-based flavour of subquery unnesting (§2.2.1):
// unnesting that generates inline views. It covers
//
//   - correlated aggregate scalar subqueries, which unnest into a group-by
//     inline view joined on the correlation columns (Q1 -> Q10);
//   - multi-table (or grouped) EXISTS/IN subqueries, which unnest into a
//     view joined by semijoin;
//   - multi-table NOT EXISTS / NOT IN subqueries, which unnest into a view
//     joined by (null-aware) antijoin.
//
// For aggregate subqueries the rule offers a second variant that interleaves
// group-by view merging with the unnesting (§3.3.1): unnest and then merge
// the generated view into the outer block (Q10 -> Q11).
type UnnestSubquery struct {
	// NoInterleave disables the interleaved unnest+merge variant (§3.3.1);
	// the ablation benchmarks use it to measure what interleaving buys.
	NoInterleave bool
}

// Name implements Rule.
func (*UnnestSubquery) Name() string { return "subquery unnesting" }

type unnestKind uint8

const (
	unnestAgg unnestKind = iota
	unnestSemi
	unnestAnti
)

type unnestObj struct {
	block *qtree.Block
	where int
	subq  *qtree.Subq
	kind  unnestKind
}

func (r *UnnestSubquery) objects(q *qtree.Query) []unnestObj {
	var out []unnestObj
	for _, b := range Blocks(q) {
		if b.IsSetOp() {
			continue
		}
		for wi, e := range b.Where {
			if o, ok := classifyUnnest(b, wi, e); ok {
				out = append(out, o)
			}
		}
	}
	return out
}

// Find implements Rule.
func (r *UnnestSubquery) Find(q *qtree.Query) int { return len(r.objects(q)) }

// Variants implements Rule.
func (r *UnnestSubquery) Variants(q *qtree.Query, obj int) int {
	objs := r.objects(q)
	if obj >= len(objs) {
		return 1
	}
	if objs[obj].kind == unnestAgg && !r.NoInterleave {
		return 2 // unnest; unnest + interleaved view merge
	}
	return 1
}

// Apply implements Rule.
func (r *UnnestSubquery) Apply(q *qtree.Query, obj, variant int) error {
	objs := r.objects(q)
	if obj >= len(objs) {
		return fmt.Errorf("unnest: object %d out of range", obj)
	}
	o := objs[obj]
	switch o.kind {
	case unnestAgg:
		fv, err := unnestAggSubquery(q, o)
		if err != nil {
			return err
		}
		if variant == 2 {
			// The unnest may have materialized o.block under copy-on-write;
			// merge into its current incarnation.
			return mergeGroupByView(q, q.Resolve(o.block), fv)
		}
		return nil
	default:
		return unnestToJoinView(q, o)
	}
}

// classifyUnnest decides whether conjunct e of block b is unnestable in a
// cost-based way and how.
func classifyUnnest(b *qtree.Block, wi int, e qtree.Expr) (unnestObj, bool) {
	// Correlated aggregate scalar subquery inside a comparison.
	if bin, ok := e.(*qtree.Bin); ok && bin.Op.IsComparison() {
		if s, ok := bin.R.(*qtree.Subq); ok && s.Kind == qtree.SubqScalar {
			if aggUnnestLegal(b, s) {
				return unnestObj{block: b, where: wi, subq: s, kind: unnestAgg}, true
			}
		}
		if s, ok := bin.L.(*qtree.Subq); ok && s.Kind == qtree.SubqScalar {
			if aggUnnestLegal(b, s) {
				return unnestObj{block: b, where: wi, subq: s, kind: unnestAgg}, true
			}
		}
		return unnestObj{}, false
	}
	s, ok := e.(*qtree.Subq)
	if !ok {
		return unnestObj{}, false
	}
	switch s.Kind {
	case qtree.SubqIn, qtree.SubqExists:
		if joinUnnestLegal(b, s) {
			return unnestObj{block: b, where: wi, subq: s, kind: unnestSemi}, true
		}
	case qtree.SubqNotIn, qtree.SubqNotExists:
		if joinUnnestLegal(b, s) && notInNullSafe(b, s) {
			return unnestObj{block: b, where: wi, subq: s, kind: unnestAnti}, true
		}
	}
	return unnestObj{}, false
}

// subtreeDefined returns the from IDs defined anywhere inside block b.
func subtreeDefined(b *qtree.Block) map[qtree.FromID]bool {
	out := map[qtree.FromID]bool{}
	walkBlocks(b, func(blk *qtree.Block) {
		for _, f := range blk.From {
			out[f.ID] = true
		}
	})
	return out
}

// corrPred decomposes conjunct e of the subquery as "innerExpr = outerExpr"
// where innerExpr references only the subquery's relations and outerExpr
// references only outer ones.
func corrPred(e qtree.Expr, defined map[qtree.FromID]bool) (inner, outer qtree.Expr, ok bool) {
	bin, isBin := e.(*qtree.Bin)
	if !isBin || bin.Op != qtree.OpEq {
		return nil, nil, false
	}
	lIn, lOut := sideRefs(bin.L, defined)
	rIn, rOut := sideRefs(bin.R, defined)
	switch {
	case lIn && !lOut && rOut && !rIn:
		return bin.L, bin.R, true
	case rIn && !rOut && lOut && !lIn:
		return bin.R, bin.L, true
	}
	return nil, nil, false
}

// sideRefs reports whether e references subquery-local relations and
// whether it references outer relations.
func sideRefs(e qtree.Expr, defined map[qtree.FromID]bool) (localRefs, outerRefs bool) {
	for id := range refsOf(e) {
		if defined[id] {
			localRefs = true
		} else {
			outerRefs = true
		}
	}
	return
}

// aggUnnestLegal checks Q1-style legality: a correlated scalar aggregate
// subquery whose correlation consists solely of equality predicates.
func aggUnnestLegal(b *qtree.Block, s *qtree.Subq) bool {
	sub := s.Block
	if sub.IsSetOp() || sub.Distinct || len(sub.GroupBy) > 0 || sub.Limit > 0 ||
		len(sub.OrderBy) > 0 || len(sub.Having) > 0 || len(sub.Select) != 1 {
		return false
	}
	agg, ok := sub.Select[0].Expr.(*qtree.Agg)
	if !ok {
		return false
	}
	// COUNT over an empty group yields 0 under TIS but no row after
	// unnesting; restrict to aggregates that are NULL on empty input.
	if agg.Op == qtree.AggCount {
		return false
	}
	if !sub.IsCorrelated() {
		return false // uncorrelated scalar subqueries execute once; leave
	}
	// Correlation must go to the immediate parent only.
	local := b.LocalFromIDs()
	for id := range sub.OuterRefs() {
		if !local[id] {
			return false
		}
	}
	defined := subtreeDefined(sub)
	nCorr := 0
	for _, e := range sub.Where {
		if _, _, ok := corrPred(e, defined); ok {
			nCorr++
			continue
		}
		// Non-correlation predicates must be purely local.
		if _, outer := sideRefs(e, defined); outer {
			return false
		}
		if containsSubq(e) {
			return false
		}
	}
	if nCorr == 0 {
		return false
	}
	// The aggregate argument and from items must be purely local.
	if agg.Arg != nil {
		if _, outer := sideRefs(agg.Arg, defined); outer {
			return false
		}
	}
	for _, f := range sub.From {
		if f.Kind != qtree.JoinInner || f.Lateral {
			return false
		}
	}
	return true
}

// unnestAggSubquery transforms Q1 into Q10: the aggregate subquery becomes
// a group-by inline view joined on the correlation columns. It returns the
// new from item so interleaving can merge it further.
func unnestAggSubquery(q *qtree.Query, o unnestObj) (*qtree.FromItem, error) {
	b := q.Mutable(o.block)
	if _, ok := b.Where[o.where].(*qtree.Bin); !ok {
		return nil, fmt.Errorf("transform: aggregate-subquery site %d is %T, want *qtree.Bin", o.where, b.Where[o.where])
	}
	// Materializing the subquery block rebuilds the conjunct's expression
	// spine under copy-on-write, so the comparison is re-fetched after.
	sub := q.Mutable(o.subq.Block)
	bin, ok := b.Where[o.where].(*qtree.Bin)
	if !ok {
		return nil, fmt.Errorf("transform: aggregate-subquery site %d is %T, want *qtree.Bin", o.where, b.Where[o.where])
	}
	defined := subtreeDefined(sub)

	v := q.NewBlock()
	v.From = sub.From
	var corrInner, corrOuter []qtree.Expr
	for _, e := range sub.Where {
		if in, out, ok := corrPred(e, defined); ok {
			corrInner = append(corrInner, in)
			corrOuter = append(corrOuter, out)
			continue
		}
		v.Where = append(v.Where, e)
	}
	if len(corrInner) == 0 {
		return nil, errors.New("unnest: no correlation predicates")
	}
	v.Select = append(v.Select, qtree.SelectItem{Expr: sub.Select[0].Expr, Alias: "AGG_VAL"})
	for i, in := range corrInner {
		v.GroupBy = append(v.GroupBy, in)
		v.Select = append(v.Select, qtree.SelectItem{Expr: in, Alias: fmt.Sprintf("G%d", i)})
	}

	fv := &qtree.FromItem{ID: q.NewFromID(), Alias: fmt.Sprintf("VW_SQ_%d", v.ID), View: v}
	b.From = append(b.From, fv)

	// Replace the scalar subquery in the comparison with the view's
	// aggregate output. The conjunct slot gets a fresh comparison node —
	// the old node may be shared with the copy-on-write base.
	aggCol := &qtree.Col{From: fv.ID, Ord: 0, Name: "AGG_VAL"}
	nbin := &qtree.Bin{Op: bin.Op, L: bin.L, R: bin.R}
	if _, ok := nbin.L.(*qtree.Subq); ok {
		nbin.L = aggCol
	} else {
		nbin.R = aggCol
	}
	b.Where[o.where] = nbin
	// Join the view on the correlation columns.
	for i, out := range corrOuter {
		b.Where = append(b.Where, &qtree.Bin{
			Op: qtree.OpEq,
			L:  &qtree.Col{From: fv.ID, Ord: i + 1, Name: fmt.Sprintf("G%d", i)},
			R:  out,
		})
	}
	return fv, nil
}

// joinUnnestLegal checks the view-generating unnesting legality for
// IN/EXISTS/NOT IN/NOT EXISTS subqueries. Single-table SPJ subqueries are
// excluded — the imperative merge flavour (§2.1.1) already handles them.
func joinUnnestLegal(b *qtree.Block, s *qtree.Subq) bool {
	sub := s.Block
	if sub.IsSetOp() || sub.Limit > 0 || len(sub.OrderBy) > 0 {
		return false
	}
	// The imperative rule covers plain single-table subqueries.
	if len(sub.From) == 1 && sub.From[0].IsTable() && !sub.Distinct &&
		!sub.HasGroupBy() && !blockHasSubqueries(sub) {
		return false
	}
	for _, f := range sub.From {
		if f.Kind != qtree.JoinInner || f.Lateral {
			return false
		}
	}
	if blockHasSubqueries(sub) || sub.HasWindowFuncs() {
		return false
	}
	local := b.LocalFromIDs()
	for id := range sub.OuterRefs() {
		if !local[id] {
			return false // correlated to a non-parent (§2.1.1)
		}
	}
	defined := subtreeDefined(sub)
	if sub.HasGroupBy() || sub.Distinct {
		// Correlation cannot be pulled above grouping; require an
		// uncorrelated subquery.
		if sub.IsCorrelated() {
			return false
		}
		if len(sub.Having) > 0 {
			return false
		}
		return true
	}
	// Every correlated predicate must be pullable (equality with clean
	// sides).
	for _, e := range sub.Where {
		if _, outer := sideRefs(e, defined); !outer {
			continue
		}
		if _, _, ok := corrPred(e, defined); !ok {
			return false
		}
	}
	return true
}

// notInNullSafe rejects NOT IN unnesting with multi-item connecting
// conditions over possibly null columns (§2.1.1).
func notInNullSafe(b *qtree.Block, s *qtree.Subq) bool {
	if s.Kind != qtree.SubqNotIn {
		return true // NOT EXISTS has no connecting condition issue
	}
	if len(s.Left) == 1 {
		return true // single item: null-aware antijoin handles nulls
	}
	for i, le := range s.Left {
		if !leftNonNull(b, le) || !selectNonNull(s.Block, i) {
			return false
		}
	}
	return true
}

// unnestToJoinView transforms a multi-table (or grouped) quantified
// subquery into an inline view joined by semijoin or (null-aware) antijoin.
func unnestToJoinView(q *qtree.Query, o unnestObj) error {
	b := q.Mutable(o.block)
	s := o.subq
	// The subquery's from items and grouping move into the new view, so its
	// block must be private before the move.
	sub := q.Mutable(s.Block)
	defined := subtreeDefined(sub)

	v := q.NewBlock()
	v.From = sub.From
	v.Distinct = sub.Distinct
	v.GroupBy = sub.GroupBy
	v.GroupingSets = sub.GroupingSets
	v.Having = sub.Having
	v.Select = append([]qtree.SelectItem(nil), sub.Select...)

	strict := s.Kind == qtree.SubqNotIn && len(s.Left) == 1 &&
		(!leftNonNull(b, s.Left[0]) || !selectNonNull(sub, 0))

	var conds []qtree.Expr
	// Connecting conditions on the subquery's select list.
	for i, le := range s.Left {
		conds = append(conds, &qtree.Bin{
			Op: qtree.OpEq,
			L:  le,
			R:  &qtree.Col{From: 0, Ord: i, Name: "C"}, // placeholder, fixed below
		})
	}
	// Pull correlated predicates out as join conditions, exposing the
	// inner side as extra view outputs.
	for _, e := range sub.Where {
		in, out, ok := corrPred(e, defined)
		if !ok {
			v.Where = append(v.Where, e)
			continue
		}
		ord := len(v.Select)
		v.Select = append(v.Select, qtree.SelectItem{Expr: in, Alias: fmt.Sprintf("C%d", ord)})
		var cond qtree.Expr = &qtree.Bin{
			Op: qtree.OpEq,
			L:  &qtree.Col{From: 0, Ord: ord, Name: "C"}, // fixed below
			R:  out,
		}
		if strict {
			// Under a null-aware antijoin, the subquery's own predicates
			// (correlation included) are strict.
			cond = &qtree.IsTrue{E: cond}
		}
		conds = append(conds, cond)
	}

	fv := &qtree.FromItem{ID: q.NewFromID(), Alias: fmt.Sprintf("VW_SQ_%d", v.ID), View: v}
	// Fix the placeholder view references now that the ID exists.
	for i := range conds {
		conds[i] = qtree.RewriteExpr(conds[i], func(x qtree.Expr) qtree.Expr {
			if c, ok := x.(*qtree.Col); ok && c.From == 0 {
				return &qtree.Col{From: fv.ID, Ord: c.Ord, Name: c.Name}
			}
			return nil
		})
	}
	fv.Cond = conds

	switch s.Kind {
	case qtree.SubqIn, qtree.SubqExists:
		fv.Kind = qtree.JoinSemi
	case qtree.SubqNotExists:
		fv.Kind = qtree.JoinAnti
	case qtree.SubqNotIn:
		fv.Kind = qtree.JoinNullAwareAnti
		if !strict {
			fv.Kind = qtree.JoinAnti
		}
	}
	removeWhereAt(b, o.where)
	b.From = append(b.From, fv)
	return nil
}
