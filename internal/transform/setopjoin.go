package transform

import (
	"fmt"

	"repro/internal/qtree"
)

// SetOpIntoJoin converts MINUS and INTERSECT into antijoin and semijoin
// respectively (§2.2.7). Nulls match in set-operation semantics, so the
// join condition uses null-safe equality; the duplicate-free result is
// produced by a DISTINCT whose placement — at the join output or at the
// join input — is the cost-based decision (two variants, like distinct
// placement).
type SetOpIntoJoin struct{}

// Name implements Rule.
func (*SetOpIntoJoin) Name() string { return "set operators into joins" }

type setOpObj struct {
	block *qtree.Block
}

func (r *SetOpIntoJoin) objects(q *qtree.Query) []setOpObj {
	var out []setOpObj
	for _, b := range Blocks(q) {
		if b.Set == nil || len(b.Set.Children) != 2 {
			continue
		}
		if b.Set.Kind != qtree.SetIntersect && b.Set.Kind != qtree.SetMinus {
			continue
		}
		// Children must be SELECT blocks (nested set operations would need
		// their own conversion first).
		if b.Set.Children[0].IsSetOp() || b.Set.Children[1].IsSetOp() {
			continue
		}
		out = append(out, setOpObj{block: b})
	}
	return out
}

// Find implements Rule.
func (r *SetOpIntoJoin) Find(q *qtree.Query) int { return len(r.objects(q)) }

// Variants implements Rule. Variant 1 removes duplicates at the join
// output; variant 2 removes them at the left input.
func (r *SetOpIntoJoin) Variants(q *qtree.Query, obj int) int { return 2 }

// Apply implements Rule.
func (r *SetOpIntoJoin) Apply(q *qtree.Query, obj, variant int) error {
	objs := r.objects(q)
	if obj >= len(objs) {
		return fmt.Errorf("set-op into join: object %d out of range", obj)
	}
	b := q.Mutable(objs[obj].block)
	kind := b.Set.Kind
	c1, c2 := b.Set.Children[0], b.Set.Children[1]
	outNames := b.OutCols()

	f1 := &qtree.FromItem{ID: q.NewFromID(), Alias: "SET_L", View: c1}
	f2 := &qtree.FromItem{ID: q.NewFromID(), Alias: "SET_R", View: c2}
	if kind == qtree.SetIntersect {
		f2.Kind = qtree.JoinSemi
	} else {
		f2.Kind = qtree.JoinAnti
	}
	n := len(c1.OutCols())
	for i := 0; i < n; i++ {
		f2.Cond = append(f2.Cond, &qtree.Bin{
			Op: qtree.OpNullSafeEq,
			L:  &qtree.Col{From: f1.ID, Ord: i, Name: outNames[i]},
			R:  &qtree.Col{From: f2.ID, Ord: i, Name: outNames[i]},
		})
	}

	b.Set = nil
	b.From = []*qtree.FromItem{f1, f2}
	b.Select = nil
	for i := 0; i < n; i++ {
		b.Select = append(b.Select, qtree.SelectItem{
			Expr:  &qtree.Col{From: f1.ID, Ord: i, Name: outNames[i]},
			Alias: outNames[i],
		})
	}
	switch variant {
	case 2:
		// Duplicates removed at the input: the left view becomes DISTINCT.
		// The child may still be shared with the base; it is reachable here
		// through b.From[0].View, so materialization relinks that slot.
		c1 = q.Mutable(c1)
		c1.Distinct = true
	default:
		// Duplicates removed at the output.
		b.Distinct = true
	}
	// Set-operation ORDER BY entries reference output ordinals; rewrite to
	// the new select expressions.
	for i := range b.OrderBy {
		if c, ok := b.OrderBy[i].Expr.(*qtree.Col); ok && c.From == 0 {
			b.OrderBy[i].Expr = cloneExpr(q, b.Select[c.Ord].Expr)
		}
	}
	return nil
}
