package transform

import (
	"repro/internal/qtree"
)

// This file implements the pre-CBQT heuristic decision procedures used when
// a cost-based transformation runs in heuristic mode — the behaviour of
// Oracle releases prior to 10g, which the paper's Section 4.1 experiment
// compares against.

// HeuristicVariant implements the paper's simplified pre-10g unnesting
// heuristic (§2.2.1): "If there exist filter predicates in the outer query
// and there are indexes on the local columns in the subquery correlation,
// then the subquery should not be unnested." Otherwise unnest (plain
// variant, no interleaving — interleaving is a CBQT-era feature).
func (r *UnnestSubquery) HeuristicVariant(q *qtree.Query, obj int) int {
	objs := r.objects(q)
	if obj >= len(objs) {
		return 0
	}
	o := objs[obj]
	if outerHasFilterPreds(o.block) && correlationIndexed(o.subq.Block) {
		return 0
	}
	return 1
}

// outerHasFilterPreds reports whether the outer block has single-table
// filter predicates (which make TIS cheap by reducing the driving rows).
func outerHasFilterPreds(b *qtree.Block) bool {
	for _, e := range b.Where {
		if containsSubq(e) {
			continue
		}
		refs := refsOf(e)
		if len(refs) != 1 {
			continue
		}
		// Comparison against a constant?
		if bin, ok := e.(*qtree.Bin); ok && bin.Op.IsComparison() {
			_, lConst := bin.L.(*qtree.Const)
			_, rConst := bin.R.(*qtree.Const)
			if lConst || rConst {
				return true
			}
		}
		if _, ok := e.(*qtree.InList); ok {
			return true
		}
		if _, ok := e.(*qtree.Like); ok {
			return true
		}
	}
	return false
}

// correlationIndexed reports whether some local column of a correlation
// equality predicate in the subquery has an index.
func correlationIndexed(sub *qtree.Block) bool {
	defined := subtreeDefined(sub)
	for _, e := range sub.Where {
		in, _, ok := corrPred(e, defined)
		if !ok {
			continue
		}
		c, isCol := in.(*qtree.Col)
		if !isCol {
			continue
		}
		f := sub.FindFrom(c.From)
		if f == nil || !f.IsTable() {
			continue
		}
		if f.Table.FindIndex([]int{c.Ord}) != nil {
			return true
		}
	}
	return false
}

// HeuristicVariant for views: the pre-CBQT behaviour merges group-by and
// distinct views whenever legal (delayed aggregation was considered always
// profitable); JPPD applies only when merging is illegal.
func (r *ViewStrategy) HeuristicVariant(q *qtree.Query, obj int) int {
	objs := r.objects(q)
	if obj >= len(objs) {
		return 0
	}
	return 1 // variant 1 is "merge if legal, otherwise JPPD"
}

// HeuristicVariant for set operations: always convert with duplicates
// removed at the join output.
func (r *SetOpIntoJoin) HeuristicVariant(q *qtree.Query, obj int) int { return 1 }
