// Package transform implements the query transformations of the paper's
// Section 2, both heuristic (imperative) and cost-based:
//
// Heuristic (§2.1): SPJ view merging, subquery unnesting by merging into
// semijoin/antijoin, join elimination, filter predicate move-around, and
// group pruning.
//
// Cost-based (§2.2): subquery unnesting that generates inline (group-by)
// views, group-by and distinct view merging, join predicate pushdown,
// group-by placement (eager aggregation), join factorization, predicate
// pull-up under ROWNUM, set operators into joins, and disjunction into
// UNION ALL.
//
// Each cost-based transformation implements Rule: it discovers the objects
// it applies to in a deterministic order that is stable under Query.Clone,
// so the CBQT driver (package cbqt) can deep-copy the query, re-discover
// the same objects in the copy, and apply a chosen subset — the paper's
// state-space model where a state is a bit (or small integer) per object.
package transform

import (
	"fmt"

	"repro/internal/qtree"
)

// Rule is a cost-based transformation.
type Rule interface {
	// Name identifies the transformation.
	Name() string
	// Find returns the number of objects the rule can apply to in q. The
	// discovery order must be deterministic and stable under Query.Clone.
	Find(q *qtree.Query) int
	// Variants returns how many alternative transformed forms object obj
	// has (at least 1). State 0 always means "not transformed"; state v in
	// 1..Variants selects a variant. Multiple variants model interleaving
	// (e.g. unnest vs unnest+merge, §3.3.1) and juxtaposition (merge vs
	// JPPD, §3.3.2).
	Variants(q *qtree.Query, obj int) int
	// Apply transforms object obj of q into variant (1-based). The query
	// is mutated in place; callers deep-copy first.
	Apply(q *qtree.Query, obj int, variant int) error
}

// HeuristicRule is an imperative transformation applied whenever legal.
type HeuristicRule interface {
	Name() string
	// Apply transforms q in place, returning whether anything changed.
	Apply(q *qtree.Query) (bool, error)
}

// ApplyHeuristics runs the heuristic rules in the paper's sequential order
// to a fixpoint (a transformation can expose new opportunities for earlier
// ones, §3.1).
func ApplyHeuristics(q *qtree.Query) error {
	rules := Heuristics()
	for pass := 0; pass < 10; pass++ {
		changed := false
		for _, r := range rules {
			ch, err := r.Apply(q)
			if err != nil {
				return fmt.Errorf("%s: %w", r.Name(), err)
			}
			changed = changed || ch
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// Heuristics returns the imperative rules in their sequential order
// (§3.1): SPJ view merging, join elimination, subquery unnesting (merge
// flavour), group pruning, predicate move-around.
func Heuristics() []HeuristicRule {
	return []HeuristicRule{
		&RedundancyPruning{},
		&SPJViewMerge{},
		&JoinElimination{},
		&UnnestMerge{},
		&GroupPruning{},
		&PredicateMoveAround{},
	}
}

// CostBasedRules returns the cost-based rules in the paper's sequential
// order (§3.1): subquery unnesting, group-by (distinct) view merging
// juxtaposed with join predicate pushdown, set operator into join,
// group-by placement, predicate pullup, join factorization, disjunction
// into union-all.
func CostBasedRules() []Rule {
	return []Rule{
		&UnnestSubquery{},
		&ViewStrategy{},
		&SetOpIntoJoin{},
		&GroupByPlacement{},
		&PredicatePullup{},
		&JoinFactorization{},
		&OrExpansion{},
	}
}

// walkBlocks visits every block of the query in deterministic pre-order:
// the block itself, then set-op children, then view bodies in from order,
// then subquery blocks in expression order.
func walkBlocks(b *qtree.Block, f func(*qtree.Block)) {
	if b == nil {
		return
	}
	f(b)
	if b.Set != nil {
		for _, c := range b.Set.Children {
			walkBlocks(c, f)
		}
	}
	for _, fi := range b.From {
		if fi.View != nil {
			walkBlocks(fi.View, f)
		}
	}
	b.VisitExprs(func(e qtree.Expr) {
		if s, ok := e.(*qtree.Subq); ok {
			walkBlocks(s.Block, f)
		}
	})
}

// Blocks returns every block of q in deterministic order.
func Blocks(q *qtree.Query) []*qtree.Block {
	var out []*qtree.Block
	walkBlocks(q.Root, func(b *qtree.Block) { out = append(out, b) })
	return out
}
