package transform

import (
	"fmt"

	"repro/internal/qtree"
)

// SPJViewMerge merges simple select-project-join views into their
// containing block (§2.1 "minimizing the number of query blocks"): the
// view's from items and predicates are spliced into the outer block and
// references to the view's outputs are replaced by the underlying
// expressions. Applied imperatively.
type SPJViewMerge struct{}

// Name implements HeuristicRule.
func (*SPJViewMerge) Name() string { return "spj view merging" }

// Apply implements HeuristicRule.
func (*SPJViewMerge) Apply(q *qtree.Query) (bool, error) {
	changed := false
	for _, b := range Blocks(q) {
		for {
			// The block snapshot goes stale once copy-on-write
			// materialization forwards a block; follow the forwarding map.
			b = q.Resolve(b)
			merged := false
			for _, f := range b.From {
				if canMergeSPJ(b, f) {
					mergeSPJView(q, b, f)
					merged = true
					changed = true
					break // from list changed; rescan
				}
			}
			if !merged {
				break
			}
		}
	}
	return changed, nil
}

func canMergeSPJ(b *qtree.Block, f *qtree.FromItem) bool {
	if f.View == nil || f.Kind != qtree.JoinInner || f.Lateral {
		return false
	}
	v := f.View
	if !isPlainSPJ(v) || v.HasWindowFuncs() {
		return false
	}
	// A correlated view (none in our dialect outside JPPD) or one exposing
	// grouped expressions cannot occur here; subqueries in the view's WHERE
	// are fine — they splice as filter conjuncts.
	return true
}

// mergeSPJView splices view f into b.
func mergeSPJView(q *qtree.Query, b *qtree.Block, f *qtree.FromItem) {
	// The merge rewrites expressions throughout b's subtree and splices the
	// view body into b, so the subtree must be private under copy-on-write;
	// the view item is re-located in the materialized block.
	b = q.MutableDeep(q.Resolve(b))
	f = b.FindFrom(f.ID)
	v := f.View
	// Replace references to the view's outputs everywhere in b's subtree.
	substituteView(b, f.ID, func(ord int) qtree.Expr {
		return cloneExpr(q, v.Select[ord].Expr)
	})
	// Splice from items and predicates.
	removeFromItem(b, f.ID)
	b.From = append(b.From, v.From...)
	b.Where = append(b.Where, v.Where...)
}

// JoinElimination removes provably redundant joins (§2.1.2): an inner join
// to a parent table over a complete foreign key (Q4), and a left outer
// join whose join keys are unique on the right (Q5), provided no other part
// of the query references the eliminated table.
type JoinElimination struct{}

// Name implements HeuristicRule.
func (*JoinElimination) Name() string { return "join elimination" }

// Apply implements HeuristicRule.
func (*JoinElimination) Apply(q *qtree.Query) (bool, error) {
	changed := false
	for _, b := range Blocks(q) {
		for {
			if !eliminateOne(q, b) {
				break
			}
			changed = true
		}
	}
	return changed, nil
}

func eliminateOne(q *qtree.Query, b *qtree.Block) bool {
	b = q.Resolve(b)
	for _, t := range b.From {
		if !t.IsTable() {
			continue
		}
		switch t.Kind {
		case qtree.JoinInner:
			if eliminateFKJoin(q, b, t) {
				return true
			}
		case qtree.JoinLeftOuter:
			if eliminateUniqueOuter(q, b, t) {
				return true
			}
		}
	}
	return false
}

// refCountOutside counts references to item id in the block subtree
// excluding the given conjunct indexes of b.Where.
func referencedOutside(b *qtree.Block, id qtree.FromID, exceptWhere map[int]bool) bool {
	found := false
	check := func(e qtree.Expr) {
		if refersTo(e, id) {
			found = true
		}
	}
	for _, it := range b.Select {
		check(it.Expr)
	}
	for _, fi := range b.From {
		if fi.ID == id {
			continue
		}
		for _, c := range fi.Cond {
			check(c)
		}
		if fi.View != nil {
			var refs = map[qtree.FromID]bool{}
			collectDeepRefs(fi.View, refs)
			if refs[id] {
				found = true
			}
		}
	}
	for i, e := range b.Where {
		if exceptWhere[i] {
			continue
		}
		check(e)
	}
	for _, e := range b.GroupBy {
		check(e)
	}
	for _, e := range b.Having {
		check(e)
	}
	for _, o := range b.OrderBy {
		check(o.Expr)
	}
	return found
}

func collectDeepRefs(b *qtree.Block, refs map[qtree.FromID]bool) {
	b.VisitExprs(func(e qtree.Expr) {
		qtree.ColsUsed(e, refs)
	})
	for _, f := range b.From {
		if f.View != nil {
			collectDeepRefs(f.View, refs)
		}
	}
	if b.Set != nil {
		for _, c := range b.Set.Children {
			collectDeepRefs(c, refs)
		}
	}
}

// eliminateFKJoin removes parent table t when a child table's complete
// foreign key equates to t's referenced key and t is otherwise unused.
func eliminateFKJoin(q *qtree.Query, b *qtree.Block, t *qtree.FromItem) bool {
	for _, c := range b.From {
		if c == t || !c.IsTable() || c.Kind != qtree.JoinInner {
			continue
		}
		fk := q.Catalog.FKFromTo(c.Table, t.Table)
		if fk == nil {
			continue
		}
		// The referenced columns must be a key of t.
		if !t.Table.IsUniqueKey(fk.RefCols) {
			continue
		}
		// Find conjuncts c.fkCol = t.refCol for every FK column.
		matched := map[int]bool{} // where-index set
		var fkChildCols []int
		okAll := true
		for k := range fk.Cols {
			found := false
			for wi, e := range b.Where {
				if matched[wi] {
					continue
				}
				l, r, ok := eqConjunct(e)
				if !ok {
					continue
				}
				if l.From == c.ID && l.Ord == fk.Cols[k] && r.From == t.ID && r.Ord == fk.RefCols[k] ||
					r.From == c.ID && r.Ord == fk.Cols[k] && l.From == t.ID && l.Ord == fk.RefCols[k] {
					matched[wi] = true
					fkChildCols = append(fkChildCols, fk.Cols[k])
					found = true
					break
				}
			}
			if !found {
				okAll = false
				break
			}
		}
		if !okAll {
			continue
		}
		if referencedOutside(b, t.ID, matched) {
			continue
		}
		// Eliminate: drop the join conjuncts and the table; add NOT NULL
		// filters for nullable FK columns (Q4 -> Q6 with the null guard).
		// Only b itself is mutated, so a shallow materialization suffices;
		// matched where-indexes stay valid because the copy preserves slice
		// order.
		b = q.Mutable(b)
		var keep []qtree.Expr
		for wi, e := range b.Where {
			if !matched[wi] {
				keep = append(keep, e)
			}
		}
		b.Where = keep
		for _, ord := range fkChildCols {
			if c.Table.Cols[ord].Nullable {
				b.Where = append(b.Where, &qtree.IsNull{
					E:   &qtree.Col{From: c.ID, Ord: ord, Name: c.Table.Cols[ord].Name},
					Neg: true,
				})
			}
		}
		removeFromItem(b, t.ID)
		return true
	}
	return false
}

// eliminateUniqueOuter removes a left-outer-joined table whose join
// condition equates a unique key of the table and which is otherwise
// unreferenced (Q5 -> Q6).
func eliminateUniqueOuter(q *qtree.Query, b *qtree.Block, t *qtree.FromItem) bool {
	var keyOrds []int
	for _, cond := range t.Cond {
		l, r, ok := eqConjunct(cond)
		if !ok {
			return false
		}
		switch {
		case l.From == t.ID && r.From != t.ID:
			keyOrds = append(keyOrds, l.Ord)
		case r.From == t.ID && l.From != t.ID:
			keyOrds = append(keyOrds, r.Ord)
		default:
			return false
		}
	}
	if !t.Table.IsUniqueKey(keyOrds) {
		return false
	}
	if referencedOutside(b, t.ID, nil) {
		return false
	}
	b = q.Mutable(b)
	removeFromItem(b, t.ID)
	return true
}

// UnnestMerge is the imperative flavour of subquery unnesting (§2.1.1):
// single-table EXISTS/IN subqueries merge into the outer block as a
// semijoin; single-table NOT EXISTS merges as an antijoin; single-table
// NOT IN merges as a null-aware antijoin (or a plain antijoin when the
// connecting columns are provably non-null).
type UnnestMerge struct{}

// Name implements HeuristicRule.
func (*UnnestMerge) Name() string { return "subquery unnesting (merge)" }

// Apply implements HeuristicRule.
func (*UnnestMerge) Apply(q *qtree.Query) (bool, error) {
	changed := false
	for _, b := range Blocks(q) {
		for {
			if !unnestMergeOne(q, b) {
				break
			}
			changed = true
		}
	}
	return changed, nil
}

func unnestMergeOne(q *qtree.Query, b *qtree.Block) bool {
	b = q.Resolve(b)
	if b.IsSetOp() {
		return false
	}
	for wi, e := range b.Where {
		s, ok := e.(*qtree.Subq)
		if !ok {
			continue
		}
		if !canUnnestMerge(q, b, s) {
			continue
		}
		applyUnnestMerge(q, b, wi, s)
		return true
	}
	return false
}

// canUnnestMerge checks the imperative merge legality: single-table SPJ
// subquery (multi-table subqueries would need an inline view, which is the
// cost-based flavour), no nested subqueries, and a supported kind.
func canUnnestMerge(q *qtree.Query, b *qtree.Block, s *qtree.Subq) bool {
	sub := s.Block
	if sub.IsSetOp() || len(sub.From) != 1 || !sub.From[0].IsTable() ||
		sub.From[0].Kind != qtree.JoinInner ||
		sub.Distinct || sub.HasGroupBy() || sub.Limit > 0 || len(sub.OrderBy) > 0 {
		return false
	}
	if blockHasSubqueries(sub) || sub.HasWindowFuncs() {
		return false
	}
	// The subquery must be correlated only to the containing block (the
	// paper: no unnesting of subqueries correlated to non-parents).
	local := b.LocalFromIDs()
	for id := range sub.OuterRefs() {
		if !local[id] {
			return false
		}
	}
	switch s.Kind {
	case qtree.SubqExists, qtree.SubqIn, qtree.SubqNotExists:
		return true
	case qtree.SubqNotIn:
		// Multi-item connecting conditions with nullable columns cannot be
		// unnested (§2.1.1); single-item always can via null-aware antijoin.
		return len(s.Left) == 1
	}
	return false
}

// applyUnnestMerge replaces the subquery conjunct with a semijoined or
// antijoined from item (Q2 -> Q3).
func applyUnnestMerge(q *qtree.Query, b *qtree.Block, wi int, s *qtree.Subq) {
	// The subquery's from item migrates into b and is retagged as a join, so
	// both blocks must be private; materializing the subquery block rebuilds
	// the conjunct's spine, so s is re-fetched afterwards.
	b = q.Mutable(b)
	sub := q.Mutable(s.Block)
	ns, ok := b.Where[wi].(*qtree.Subq)
	if !ok {
		// The caller just found a subquery at this conjunct; anything else
		// here means the tree changed underneath us. The heuristic driver
		// recovers panics and quarantines the rule.
		panic(fmt.Sprintf("transform: unnest-merge conjunct %d is %T, want *qtree.Subq", wi, b.Where[wi]))
	}
	s = ns
	item := sub.From[0] // keeps its from ID: correlation references hold
	var conds []qtree.Expr
	// Connecting condition(s): left op select-item.
	for i, le := range s.Left {
		conds = append(conds, &qtree.Bin{Op: qtree.OpEq, L: le, R: sub.Select[i].Expr})
	}
	// The subquery's own predicates (correlation included) become join
	// conditions. Under a null-aware antijoin only the connecting condition
	// is null-aware; the subquery's own WHERE is strict (a row where it is
	// UNKNOWN is simply not in the subquery result), so mark it IS TRUE.
	for _, w := range sub.Where {
		if s.Kind == qtree.SubqNotIn {
			conds = append(conds, &qtree.IsTrue{E: w})
		} else {
			conds = append(conds, w)
		}
	}

	switch s.Kind {
	case qtree.SubqExists, qtree.SubqIn:
		item.Kind = qtree.JoinSemi
	case qtree.SubqNotExists:
		item.Kind = qtree.JoinAnti
	case qtree.SubqNotIn:
		item.Kind = qtree.JoinNullAwareAnti
		if leftNonNull(b, s.Left[0]) && selectNonNull(sub, 0) {
			item.Kind = qtree.JoinAnti
		}
	}
	item.Cond = conds
	removeWhereAt(b, wi)
	b.From = append(b.From, item)
}

// leftNonNull reports whether the outer-side connecting expression is
// provably non-null (a non-nullable table column).
func leftNonNull(b *qtree.Block, e qtree.Expr) bool {
	c, ok := e.(*qtree.Col)
	if !ok {
		return false
	}
	f := b.FindFrom(c.From)
	if f == nil || !f.IsTable() {
		return false
	}
	if c.Ord == f.Table.RowidOrdinal() {
		return true
	}
	return c.Ord < len(f.Table.Cols) && !f.Table.Cols[c.Ord].Nullable
}

// selectNonNull reports whether subquery output ord is a non-nullable base
// column.
func selectNonNull(sub *qtree.Block, ord int) bool {
	c, ok := sub.Select[ord].Expr.(*qtree.Col)
	if !ok {
		return false
	}
	f := sub.FindFrom(c.From)
	if f == nil || !f.IsTable() {
		return false
	}
	if c.Ord == f.Table.RowidOrdinal() {
		return true
	}
	return c.Ord < len(f.Table.Cols) && !f.Table.Cols[c.Ord].Nullable
}
