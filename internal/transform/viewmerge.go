package transform

import (
	"errors"
	"fmt"

	"repro/internal/qtree"
)

// ViewStrategy is the cost-based decision for group-by / distinct views:
// merge the view into its containing block (delayed aggregation, §2.2.2,
// Q10 -> Q11), or push join predicates down into it (JPPD, §2.2.3,
// Q12 -> Q13). When both apply they are juxtaposed (§3.3.2): the state
// space for the view object has three states — unchanged, merged, pushed —
// and the optimizer picks the cheapest.
type ViewStrategy struct {
	// NoJPPD and NoMerge disable one of the juxtaposed alternatives; the
	// benchmark harness uses them to isolate a transformation (Figure 4
	// disables JPPD entirely).
	NoJPPD  bool
	NoMerge bool
}

// Name implements Rule.
func (*ViewStrategy) Name() string { return "group-by view merging / join predicate pushdown" }

type viewObj struct {
	block   *qtree.Block
	from    int // index into block.From
	mergeOK bool
	jppdOK  bool
}

func (r *ViewStrategy) objects(q *qtree.Query) []viewObj {
	var out []viewObj
	for _, b := range Blocks(q) {
		if b.IsSetOp() {
			continue
		}
		for fi, f := range b.From {
			o := viewObj{block: b, from: fi}
			o.mergeOK = !r.NoMerge && canMergeGroupByView(b, f)
			o.jppdOK = !r.NoJPPD && canJPPD(b, f)
			if o.mergeOK || o.jppdOK {
				out = append(out, o)
			}
		}
	}
	return out
}

// Find implements Rule.
func (r *ViewStrategy) Find(q *qtree.Query) int { return len(r.objects(q)) }

// Variants implements Rule.
func (r *ViewStrategy) Variants(q *qtree.Query, obj int) int {
	objs := r.objects(q)
	if obj >= len(objs) {
		return 1
	}
	n := 0
	if objs[obj].mergeOK {
		n++
	}
	if objs[obj].jppdOK {
		n++
	}
	return n
}

// Apply implements Rule. Variant 1 is merging when legal (otherwise JPPD);
// variant 2 is JPPD.
func (r *ViewStrategy) Apply(q *qtree.Query, obj, variant int) error {
	objs := r.objects(q)
	if obj >= len(objs) {
		return fmt.Errorf("view strategy: object %d out of range", obj)
	}
	o := objs[obj]
	f := o.block.From[o.from]
	switch {
	case variant == 1 && o.mergeOK:
		return mergeGroupByView(q, o.block, f)
	case variant == 1 && o.jppdOK:
		return jppdView(q, o.block, f)
	case variant == 2 && o.jppdOK:
		return jppdView(q, o.block, f)
	}
	return fmt.Errorf("view strategy: no variant %d for object %d", variant, obj)
}

// canMergeGroupByView checks Q10 -> Q11 legality.
func canMergeGroupByView(b *qtree.Block, f *qtree.FromItem) bool {
	if f.View == nil || f.Kind != qtree.JoinInner || f.Lateral {
		return false
	}
	v := f.View
	if v.IsSetOp() || v.Limit > 0 || len(v.OrderBy) > 0 || v.GroupingSets != nil {
		return false
	}
	if !v.HasGroupBy() && !v.Distinct {
		return false // SPJ views merge heuristically
	}
	if v.Distinct && v.HasGroupBy() {
		return false
	}
	if blockHasSubqueries(v) || v.HasWindowFuncs() {
		return false
	}
	// The containing block must be a plain SPJ block over base tables.
	if b.IsSetOp() || b.Distinct || b.HasGroupBy() || b.Limit > 0 {
		return false
	}
	for _, other := range b.From {
		if other == f {
			continue
		}
		if !other.IsTable() || other.Kind != qtree.JoinInner {
			return false
		}
	}
	// Aggregate view outputs: aggregates or grouping expressions only.
	if v.HasGroupBy() {
		gbKeys := map[string]bool{}
		for _, g := range v.GroupBy {
			gbKeys[g.String()] = true
		}
		for _, it := range v.Select {
			if qtree.ContainsAgg(it.Expr) {
				continue
			}
			if !gbKeys[it.Expr.String()] {
				return false
			}
		}
	}
	return true
}

// mergeGroupByView merges a group-by (or distinct) view into its containing
// block by pulling the grouping above the joins: the outer block becomes a
// grouped block over the view's grouping columns plus the rowids of the
// outer tables (Q10 -> Q11, with j.rowid in the GROUP BY exactly as the
// paper shows).
func mergeGroupByView(q *qtree.Query, b *qtree.Block, f *qtree.FromItem) error {
	// The merge rewrites expressions across block boundaries and splices the
	// view body into b, so the whole subtree must be private under
	// copy-on-write; the view item is re-located in the materialized block.
	b = q.MutableDeep(q.Resolve(b))
	f = b.FindFrom(f.ID)
	if f == nil {
		return errors.New("group-by view merge: view item not found")
	}
	if !canMergeGroupByView(b, f) {
		return errors.New("group-by view merge: not legal here")
	}
	v := f.View
	// Normalize DISTINCT as GROUP BY over all outputs.
	if v.Distinct {
		v.Distinct = false
		for _, it := range v.Select {
			v.GroupBy = append(v.GroupBy, it.Expr)
		}
	}

	// Substitute view output references throughout the block.
	substituteView(b, f.ID, func(ord int) qtree.Expr {
		return cloneExpr(q, v.Select[ord].Expr)
	})

	// Splice the view's relations and filters.
	removeFromItem(b, f.ID)
	outerItems := append([]*qtree.FromItem(nil), b.From...)
	b.From = append(b.From, v.From...)
	b.Where = append(b.Where, v.Where...)

	// Predicates that now contain aggregates must become HAVING.
	var keep []qtree.Expr
	for _, e := range b.Where {
		if qtree.ContainsAgg(e) {
			b.Having = append(b.Having, e)
		} else {
			keep = append(keep, e)
		}
	}
	b.Where = keep

	// New grouping: the view's grouping expressions plus a rowid per outer
	// table, plus every outer column the block still references outside
	// aggregates.
	b.GroupBy = append(b.GroupBy, v.GroupBy...)
	gbKeys := map[string]bool{}
	for _, g := range b.GroupBy {
		gbKeys[g.String()] = true
	}
	addGB := func(e qtree.Expr) {
		if !gbKeys[e.String()] {
			gbKeys[e.String()] = true
			b.GroupBy = append(b.GroupBy, e)
		}
	}
	for _, it := range outerItems {
		if it.IsTable() {
			addGB(&qtree.Col{From: it.ID, Ord: it.Table.RowidOrdinal(), Name: "ROWID"})
		}
	}
	outerIDs := map[qtree.FromID]bool{}
	for _, it := range outerItems {
		outerIDs[it.ID] = true
	}
	collectNaked := func(e qtree.Expr) {
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			switch vv := x.(type) {
			case *qtree.Agg:
				return false
			case *qtree.Subq:
				return false
			case *qtree.Col:
				if outerIDs[vv.From] {
					addGB(&qtree.Col{From: vv.From, Ord: vv.Ord, Name: vv.Name})
				}
			}
			return true
		})
	}
	for _, it := range b.Select {
		collectNaked(it.Expr)
	}
	for _, h := range b.Having {
		collectNaked(h)
	}
	for _, o := range b.OrderBy {
		collectNaked(o.Expr)
	}
	return nil
}

// canJPPD checks join predicate pushdown legality for the view (§2.2.3).
func canJPPD(b *qtree.Block, f *qtree.FromItem) bool {
	if f.View == nil || f.Kind != qtree.JoinInner || f.Lateral {
		return false
	}
	v := f.View
	if v.Limit > 0 || len(v.OrderBy) > 0 {
		return false
	}
	if v.IsSetOp() && v.Set.Kind != qtree.SetUnionAll && v.Set.Kind != qtree.SetUnion {
		return false
	}
	// A mergeable SPJ view is handled heuristically; JPPD targets group-by,
	// distinct and union-all views.
	if !v.IsSetOp() && !v.Distinct && !v.HasGroupBy() {
		return false
	}
	// At least one pushable join predicate.
	return len(jppdConds(b, f)) > 0
}

// jppdConds returns the indexes of b.Where conjuncts that can be pushed
// into view f: equalities between a view output and an expression over
// other local relations, legal to push below the view's operators.
func jppdConds(b *qtree.Block, f *qtree.FromItem) []int {
	local := b.LocalFromIDs()
	var out []int
	for wi, e := range b.Where {
		bin, ok := e.(*qtree.Bin)
		if !ok || bin.Op != qtree.OpEq {
			continue
		}
		side := func(viewSide, otherSide qtree.Expr) bool {
			c, isCol := viewSide.(*qtree.Col)
			if !isCol || c.From != f.ID {
				return false
			}
			refs := refsOf(otherSide)
			if len(refs) == 0 || refs[f.ID] {
				return false
			}
			for id := range refs {
				if !local[id] {
					return false
				}
			}
			// The push must be legal through grouping.
			return jppdAccepts(f.View, c.Ord)
		}
		if side(bin.L, bin.R) || side(bin.R, bin.L) {
			out = append(out, wi)
		}
	}
	return out
}

// jppdAccepts reports whether a predicate on view output ord may be pushed
// below the view's operators.
func jppdAccepts(v *qtree.Block, ord int) bool {
	if v.Set != nil {
		for _, c := range v.Set.Children {
			if !jppdAccepts(c, ord) {
				return false
			}
		}
		return true
	}
	if v.Limit > 0 {
		return false
	}
	// Pushing below window functions is only legal on PARTITION BY columns
	// of every window in the view (§2.1.3).
	if v.HasWindowFuncs() && !pushableThroughWindows(v, &qtree.Col{From: jppdProbe, Ord: ord}, jppdProbe) {
		return false
	}
	if !v.HasGroupBy() {
		return true
	}
	se := v.Select[ord].Expr
	if qtree.ContainsAgg(se) {
		return false
	}
	for _, g := range v.GroupBy {
		if g.String() == se.String() {
			return true
		}
	}
	return false
}

// jppdProbe is a synthetic from ID used to probe output-ordinal legality
// against the window pushdown rule.
const jppdProbe qtree.FromID = -99

// jppdView pushes the eligible join predicates into the view, making it
// lateral (correlated), and applies the distinct-removal optimization of
// Q12 -> Q13 when the view is a DISTINCT view whose outputs become
// otherwise unused: the distinct is dropped and the join becomes a
// semijoin.
func jppdView(q *qtree.Query, b *qtree.Block, f *qtree.FromItem) error {
	// Pushdown mutates the view body (every set-operation branch) and the
	// containing block; privatize the subtree and re-locate the view item.
	b = q.MutableDeep(q.Resolve(b))
	f = b.FindFrom(f.ID)
	if f == nil {
		return errors.New("jppd: view item not found")
	}
	conds := jppdConds(b, f)
	if len(conds) == 0 {
		return errors.New("jppd: no pushable join predicates")
	}
	// Push each predicate (removing from the outer block as we go; indexes
	// shift, so work descending).
	for i := len(conds) - 1; i >= 0; i-- {
		wi := conds[i]
		e := b.Where[wi]
		if !pushJoinPredIntoView(q, f, e) {
			return errors.New("jppd: predicate rejected by view")
		}
		removeWhereAt(b, wi)
	}
	f.Lateral = true

	// Distinct removal + semijoin conversion (Q13).
	v := f.View
	if v.Set == nil && v.Distinct && !v.HasGroupBy() && !viewOutputsUsed(b, f.ID) {
		v.Distinct = false
		f.Kind = qtree.JoinSemi
	}
	return nil
}

// pushJoinPredIntoView pushes a join predicate into the view body (each
// branch for set-operation views), substituting view output references with
// the underlying expressions. Other relation references remain and become
// correlation.
func pushJoinPredIntoView(q *qtree.Query, f *qtree.FromItem, e qtree.Expr) bool {
	var push func(v *qtree.Block) bool
	push = func(v *qtree.Block) bool {
		if v.Set != nil {
			for _, c := range v.Set.Children {
				if !push(c) {
					return false
				}
			}
			return true
		}
		pushed := qtree.RewriteExpr(cloneExpr(q, e), func(x qtree.Expr) qtree.Expr {
			if c, ok := x.(*qtree.Col); ok && c.From == f.ID {
				return cloneExpr(q, v.Select[c.Ord].Expr)
			}
			return nil
		})
		v.Where = append(v.Where, pushed)
		return true
	}
	return push(f.View)
}

// viewOutputsUsed reports whether any expression in the block still
// references the view's outputs.
func viewOutputsUsed(b *qtree.Block, id qtree.FromID) bool {
	used := false
	b.VisitExprs(func(e qtree.Expr) {
		switch v := e.(type) {
		case *qtree.Col:
			if v.From == id {
				used = true
			}
		case *qtree.Subq:
			refs := map[qtree.FromID]bool{}
			qtree.ColsUsed(v, refs)
			if refs[id] {
				used = true
			}
		}
	})
	for _, fi := range b.From {
		if fi.ID == id {
			continue
		}
		for _, c := range fi.Cond {
			if refersTo(c, id) {
				used = true
			}
		}
		if fi.View != nil {
			refs := map[qtree.FromID]bool{}
			collectDeepRefs(fi.View, refs)
			if refs[id] {
				used = true
			}
		}
	}
	return used
}
