package transform

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// results optimizes and executes q, returning the sorted multiset of rows.
func results(t *testing.T, db *storage.DB, q *qtree.Query) []string {
	t.Helper()
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatalf("optimize: %v\nSQL: %s", err, q.SQL())
	}
	res, err := exec.Run(db, plan)
	if err != nil {
		t.Fatalf("run: %v\nSQL: %s\n%s", err, q.SQL(), optimizer.Explain(plan))
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertEquivalent checks that mutate preserves query semantics.
func assertEquivalent(t *testing.T, db *storage.DB, src string, mutate func(*qtree.Query) bool) {
	t.Helper()
	base := qtree.MustBind(src, db.Catalog)
	want := results(t, db, base)

	q := qtree.MustBind(src, db.Catalog)
	if !mutate(q) {
		t.Fatalf("transformation did not apply to %s", src)
	}
	got := results(t, db, q)
	if !sameRows(want, got) {
		t.Errorf("results differ\nsql: %s\ntransformed: %s\nwant: %v\ngot:  %v",
			src, q.SQL(), want, got)
	}
}

func heuristic(name string) func(*qtree.Query) bool {
	return func(q *qtree.Query) bool {
		for _, r := range Heuristics() {
			if r.Name() == name {
				ch, err := r.Apply(q)
				if err != nil {
					panic(err)
				}
				return ch
			}
		}
		return false
	}
}

func costBased(t *testing.T, name string, obj, variant int) func(*qtree.Query) bool {
	return func(q *qtree.Query) bool {
		for _, r := range CostBasedRules() {
			if r.Name() != name {
				continue
			}
			if r.Find(q) <= obj {
				return false
			}
			if err := r.Apply(q, obj, variant); err != nil {
				t.Fatalf("%s apply: %v", name, err)
			}
			return true
		}
		return false
	}
}

func TestSPJViewMerge(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT v.name, v.sal FROM
	        (SELECT e.name name, e.salary sal, e.dept_id d FROM emp e WHERE e.salary > 100) v
	        WHERE v.d = 10`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	ch, err := (&SPJViewMerge{}).Apply(q2)
	if err != nil || !ch {
		t.Fatalf("merge: %v %v", ch, err)
	}
	if q2.Root.From[0].View != nil || len(q2.Root.From) != 1 {
		t.Fatalf("view not merged: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("want %v got %v", want, got)
	}
}

func TestSPJViewMergeNested(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT x.n FROM (SELECT v.name n FROM (SELECT e.name name FROM emp e) v) x`,
		heuristic("spj view merging"))
}

func TestJoinEliminationFK(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT e.name, e.salary FROM emp e, dept d WHERE e.dept_id = d.dept_id`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	ch, err := (&JoinElimination{}).Apply(q2)
	if err != nil || !ch {
		t.Fatalf("eliminate: %v %v", ch, err)
	}
	if len(q2.Root.From) != 1 {
		t.Fatalf("dept not eliminated: %s", q2.SQL())
	}
	// The nullable FK requires an IS NOT NULL guard.
	found := false
	for _, e := range q2.Root.Where {
		if n, ok := e.(*qtree.IsNull); ok && n.Neg {
			found = true
		}
	}
	if !found {
		t.Errorf("missing NOT NULL guard: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("want %v got %v", want, got)
	}
}

func TestJoinEliminationNotWhenReferenced(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind(`SELECT e.name, d.name FROM emp e, dept d WHERE e.dept_id = d.dept_id`, db.Catalog)
	ch, err := (&JoinElimination{}).Apply(q)
	if err != nil {
		t.Fatal(err)
	}
	if ch {
		t.Error("must not eliminate a referenced table")
	}
}

func TestJoinEliminationOuterUnique(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT e.name, e.salary FROM emp e LEFT OUTER JOIN dept d ON e.dept_id = d.dept_id`,
		heuristic("join elimination"))
}

func TestUnnestMergeExists(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT d.name FROM dept d WHERE EXISTS
	        (SELECT 1 FROM emp e WHERE e.dept_id = d.dept_id AND e.salary > 150)`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	ch, err := (&UnnestMerge{}).Apply(q2)
	if err != nil || !ch {
		t.Fatalf("unnest: %v %v", ch, err)
	}
	if len(q2.Root.From) != 2 || q2.Root.From[1].Kind != qtree.JoinSemi {
		t.Fatalf("no semijoin: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("want %v got %v", want, got)
	}
}

func TestUnnestMergeNotExists(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT d.name FROM dept d WHERE NOT EXISTS
(SELECT 1 FROM emp e WHERE e.dept_id = d.dept_id)`,
		heuristic("subquery unnesting (merge)"))
}

func TestUnnestMergeIn(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE e.dept_id IN (SELECT d.dept_id FROM dept d WHERE d.loc_id = 1)`,
		heuristic("subquery unnesting (merge)"))
}

func TestUnnestMergeNotInNullAware(t *testing.T) {
	db := testkit.TinyDB()
	// Null on the probe side (fay's dept), no nulls in subquery output.
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE e.dept_id NOT IN (SELECT d.dept_id FROM dept d WHERE d.loc_id = 1)`,
		heuristic("subquery unnesting (merge)"))
	// Null in subquery output: NOT IN filters everything.
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE e.dept_id NOT IN (SELECT d.loc_id FROM dept d)`,
		heuristic("subquery unnesting (merge)"))
	// Correlated NOT IN with a strict inner predicate.
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE e.emp_id NOT IN
(SELECT e2.mgr_id FROM emp e2 WHERE e2.dept_id = e.dept_id)`,
		heuristic("subquery unnesting (merge)"))
}

func TestPredicatePushIntoView(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT v.d, v.avg_sal FROM
	        (SELECT e.dept_id d, AVG(e.salary) avg_sal FROM emp e GROUP BY e.dept_id) v
	        WHERE v.d = 10`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	ch, err := (&PredicateMoveAround{}).Apply(q2)
	if err != nil || !ch {
		t.Fatalf("move around: %v %v", ch, err)
	}
	if len(q2.Root.Where) != 0 {
		t.Fatalf("predicate not pushed: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("want %v got %v", want, got)
	}
}

func TestPredicateNotPushedPastAggregateOutput(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind(`SELECT v.avg_sal FROM
	    (SELECT e.dept_id d, AVG(e.salary) avg_sal FROM emp e GROUP BY e.dept_id) v
	    WHERE v.avg_sal > 100`, db.Catalog)
	before := len(q.Root.Where)
	if _, err := (&PredicateMoveAround{}).Apply(q); err != nil {
		t.Fatal(err)
	}
	if len(q.Root.Where) != before {
		t.Error("aggregate-output predicate must not be pushed below GROUP BY")
	}
}

func TestPredicatePushIntoUnionAll(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT v.i FROM
(SELECT e.dept_id i FROM emp e UNION ALL SELECT d.dept_id i FROM dept d) v
WHERE v.i = 10`,
		heuristic("filter predicate move around"))
}

func TestPredicateNotPushedIntoMinusSubtrahend(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT v.i FROM
(SELECT e.dept_id i FROM emp e MINUS SELECT d.loc_id i FROM dept d) v
WHERE v.i > 0`,
		heuristic("filter predicate move around"))
}

func TestTransitivePredicates(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT e.name FROM emp e, dept d WHERE e.dept_id = d.dept_id AND d.dept_id = 10`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	ch, err := (&PredicateMoveAround{}).Apply(q2)
	if err != nil || !ch {
		t.Fatalf("transitive: %v %v", ch, err)
	}
	if len(q2.Root.Where) != 3 {
		t.Errorf("expected derived e.dept_id = 10, got: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("want %v got %v", want, got)
	}
}

func TestGroupPruning(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT v.l, v.d, v.cnt FROM
	        (SELECT d.loc_id l, d.dept_id d, COUNT(*) cnt FROM dept d
	         GROUP BY ROLLUP(d.loc_id, d.dept_id)) v
	        WHERE v.d = 10`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	ch, err := (&GroupPruning{}).Apply(q2)
	if err != nil || !ch {
		t.Fatalf("prune: %v %v", ch, err)
	}
	v := q2.Root.From[0].View
	if len(v.GroupingSets) != 1 {
		t.Errorf("sets = %d, want 1 (only the full set keeps d non-null)", len(v.GroupingSets))
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("want %v got %v", want, got)
	}
}

const q1Tiny = `
SELECT e.name FROM emp e, dept d
WHERE e.dept_id = d.dept_id AND
  e.salary > (SELECT AVG(e2.salary) FROM emp e2 WHERE e2.dept_id = e.dept_id)`

func TestUnnestAggSubqueryVariant1(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind(q1Tiny, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(q1Tiny, db.Catalog)
	r := &UnnestSubquery{}
	if r.Find(q2) != 1 {
		t.Fatalf("objects = %d", r.Find(q2))
	}
	if r.Variants(q2, 0) != 2 {
		t.Fatalf("variants = %d (unnest, unnest+merge)", r.Variants(q2, 0))
	}
	if err := r.Apply(q2, 0, 1); err != nil {
		t.Fatal(err)
	}
	// The query now has a group-by view joined in.
	var gbView *qtree.FromItem
	for _, f := range q2.Root.From {
		if f.View != nil && f.View.HasGroupBy() {
			gbView = f
		}
	}
	if gbView == nil {
		t.Fatalf("no group-by view: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("variant 1 differs\nwant %v\ngot  %v\nsql %s", want, got, q2.SQL())
	}
}

func TestUnnestAggSubqueryVariant2Interleaved(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind(q1Tiny, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(q1Tiny, db.Catalog)
	r := &UnnestSubquery{}
	if err := r.Apply(q2, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Fully merged: no views left, outer block is grouped with HAVING.
	for _, f := range q2.Root.From {
		if f.View != nil {
			t.Fatalf("view should have been merged: %s", q2.SQL())
		}
	}
	if len(q2.Root.Having) == 0 {
		t.Fatalf("expected HAVING after merge: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("variant 2 differs\nwant %v\ngot  %v\nsql %s", want, got, q2.SQL())
	}
}

func TestUnnestMultiTableIn(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT e.name FROM emp e WHERE e.dept_id IN
	        (SELECT d.dept_id FROM dept d, proj p WHERE p.dept_id = d.dept_id AND p.budget > 400)`
	assertEquivalent(t, db, src, costBased(t, "subquery unnesting", 0, 1))
	// Check it used a semijoined view.
	q := qtree.MustBind(src, db.Catalog)
	r := &UnnestSubquery{}
	if err := r.Apply(q, 0, 1); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range q.Root.From {
		if f.View != nil && f.Kind == qtree.JoinSemi {
			found = true
		}
	}
	if !found {
		t.Errorf("expected semijoined view: %s", q.SQL())
	}
}

func TestUnnestMultiTableNotExists(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE NOT EXISTS
(SELECT 1 FROM dept d, proj p WHERE p.dept_id = d.dept_id AND d.dept_id = e.dept_id)`,
		costBased(t, "subquery unnesting", 0, 1))
}

func TestUnnestCorrelatedMultiTableExists(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE EXISTS
(SELECT 1 FROM dept d, proj p WHERE p.dept_id = d.dept_id AND d.dept_id = e.dept_id AND p.budget > 400)`,
		costBased(t, "subquery unnesting", 0, 1))
}

func TestUnnestNotInViewNullAware(t *testing.T) {
	db := testkit.TinyDB()
	// proj.dept_id contains NULL: NOT IN must yield nothing.
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE e.dept_id NOT IN
(SELECT p.dept_id FROM proj p, dept d WHERE p.dept_id = d.dept_id OR p.budget > 0)`,
		costBased(t, "subquery unnesting", 0, 1))
}

const q12Tiny = `
SELECT e.name FROM emp e,
(SELECT DISTINCT p.dept_id FROM proj p, dept d WHERE p.dept_id = d.dept_id AND p.budget > 400) v
WHERE e.dept_id = v.dept_id`

func TestViewStrategyMergeDistinct(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, q12Tiny, costBased(t, "group-by view merging / join predicate pushdown", 0, 1))
}

func TestViewStrategyJPPD(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind(q12Tiny, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(q12Tiny, db.Catalog)
	r := &ViewStrategy{}
	if r.Find(q2) != 1 {
		t.Fatalf("objects = %d", r.Find(q2))
	}
	if r.Variants(q2, 0) != 2 {
		t.Fatalf("variants = %d (merge, jppd)", r.Variants(q2, 0))
	}
	if err := r.Apply(q2, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Q13 shape: lateral view, distinct removed, semijoin.
	v := q2.Root.From[1]
	if !v.Lateral || v.Kind != qtree.JoinSemi || v.View.Distinct {
		t.Fatalf("JPPD shape wrong (lateral=%v kind=%v distinct=%v): %s",
			v.Lateral, v.Kind, v.View.Distinct, q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("JPPD differs\nwant %v\ngot  %v\nsql %s", want, got, q2.SQL())
	}
}

func TestJPPDGroupByView(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT e.name, v.total FROM emp e,
(SELECT p.dept_id dd, SUM(p.budget) total FROM proj p GROUP BY p.dept_id) v
WHERE e.dept_id = v.dd`,
		costBased(t, "group-by view merging / join predicate pushdown", 0, 2))
}

func TestJPPDUnionAllView(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT e.name, v.x FROM emp e,
(SELECT p.dept_id i, p.budget x FROM proj p
 UNION ALL SELECT d.dept_id i, 0 x FROM dept d) v
WHERE v.i = e.dept_id`,
		costBased(t, "group-by view merging / join predicate pushdown", 0, 1))
}

func TestGroupByViewMergeWithAggregates(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT e.name, v.avg_sal FROM emp e,
(SELECT e2.dept_id dd, AVG(e2.salary) avg_sal FROM emp e2 GROUP BY e2.dept_id) v
WHERE e.dept_id = v.dd AND e.salary > v.avg_sal`,
		costBased(t, "group-by view merging / join predicate pushdown", 0, 1))
}

func TestGroupByPlacement(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT d.name, SUM(p.budget) FROM dept d, proj p
	        WHERE d.dept_id = p.dept_id GROUP BY d.name`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	r := &GroupByPlacement{}
	if r.Find(q2) != 1 {
		t.Fatalf("objects = %d", r.Find(q2))
	}
	if err := r.Apply(q2, 0, 1); err != nil {
		t.Fatal(err)
	}
	// proj should now be wrapped in a group-by view.
	var vw *qtree.FromItem
	for _, f := range q2.Root.From {
		if f.View != nil {
			vw = f
		}
	}
	if vw == nil || !vw.View.HasGroupBy() {
		t.Fatalf("no pushed group-by view: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("GBP differs\nwant %v\ngot  %v\nsql %s", want, got, q2.SQL())
	}
}

func TestGroupByPlacementAvgCountStar(t *testing.T) {
	db := testkit.TinyDB()
	assertEquivalent(t, db, `
SELECT d.name, AVG(p.budget), COUNT(*), MIN(p.budget) FROM dept d, proj p
WHERE d.dept_id = p.dept_id GROUP BY d.name`,
		costBased(t, "group-by placement", 0, 1))
}

func TestSetOpIntoJoinIntersect(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT e.dept_id FROM emp e INTERSECT SELECT d.dept_id FROM dept d`
	assertEquivalent(t, db, src, costBased(t, "set operators into joins", 0, 1))
	assertEquivalent(t, db, src, costBased(t, "set operators into joins", 0, 2))
}

func TestSetOpIntoJoinMinusWithNulls(t *testing.T) {
	db := testkit.TinyDB()
	// emp.dept_id has a NULL; dept.loc_id has a NULL: MINUS null-matching
	// must hold through the antijoin conversion.
	src := `SELECT e.dept_id FROM emp e MINUS SELECT d.loc_id FROM dept d`
	assertEquivalent(t, db, src, costBased(t, "set operators into joins", 0, 1))
	assertEquivalent(t, db, src, costBased(t, "set operators into joins", 0, 2))
}

func TestOrExpansion(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT e.name FROM emp e WHERE e.dept_id = 10 OR e.salary > 200`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	r := &OrExpansion{}
	if r.Find(q2) != 1 {
		t.Fatalf("objects = %d", r.Find(q2))
	}
	if err := r.Apply(q2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if q2.Root.Set == nil || q2.Root.Set.Kind != qtree.SetUnionAll {
		t.Fatalf("no union all: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("or expansion differs\nwant %v\ngot  %v", want, got)
	}
}

func TestOrExpansionNullSemantics(t *testing.T) {
	db := testkit.TinyDB()
	// fay has NULL dept_id: (dept = 10 OR dept <> 10) excludes her; the
	// LNNVL branches must preserve that.
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE e.dept_id = 10 OR e.dept_id <> 10`,
		costBased(t, "disjunction into UNION ALL", 0, 1))
	// Overlapping disjuncts must not duplicate rows.
	assertEquivalent(t, db, `
SELECT e.name FROM emp e WHERE e.salary > 100 OR e.salary > 200`,
		costBased(t, "disjunction into UNION ALL", 0, 1))
}

func TestJoinFactorization(t *testing.T) {
	db := testkit.TinyDB()
	src := `
SELECT d.name, e.name FROM emp e, dept d WHERE e.dept_id = d.dept_id AND e.salary > 200
UNION ALL
SELECT d.name, p.pname FROM proj p, dept d WHERE p.dept_id = d.dept_id`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	r := &JoinFactorization{}
	if r.Find(q2) != 1 {
		t.Fatalf("objects = %d (DEPT is common)", r.Find(q2))
	}
	if err := r.Apply(q2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if q2.Root.Set != nil {
		t.Fatalf("root should be a join now: %s", q2.SQL())
	}
	hasUnionView := false
	for _, f := range q2.Root.From {
		if f.View != nil && f.View.IsSetOp() {
			hasUnionView = true
		}
	}
	if !hasUnionView {
		t.Fatalf("no union-all view: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("factorization differs\nwant %v\ngot  %v\nsql %s", want, got, q2.SQL())
	}
}

func TestPredicatePullup(t *testing.T) {
	db := testkit.TinyDB()
	src := `
SELECT v.name FROM
(SELECT e.name name, e.emp_id FROM emp e
 WHERE SLOW_MATCH(e.name, 'a') AND e.salary > 50 ORDER BY e.emp_id) v
WHERE rownum <= 3`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	r := &PredicatePullup{}
	if r.Find(q2) != 1 {
		t.Fatalf("objects = %d (one expensive predicate)", r.Find(q2))
	}
	if err := r.Apply(q2, 0, 1); err != nil {
		t.Fatal(err)
	}
	// The expensive predicate must now be in the outer block.
	foundOuter := false
	for _, e := range q2.Root.Where {
		if isExpensive(e) {
			foundOuter = true
		}
	}
	if !foundOuter {
		t.Fatalf("predicate not pulled: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("pullup differs\nwant %v\ngot  %v", want, got)
	}
}

func TestApplyHeuristicsFixpoint(t *testing.T) {
	db := testkit.TinyDB()
	// A query exercising several heuristics at once.
	src := `
SELECT v.name FROM
(SELECT e.name name, e.dept_id d, e.salary s FROM emp e, dept dd WHERE e.dept_id = dd.dept_id) v
WHERE v.d = 10 AND EXISTS (SELECT 1 FROM proj p WHERE p.dept_id = v.d)`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	if err := ApplyHeuristics(q2); err != nil {
		t.Fatal(err)
	}
	// The SPJ view merged, dept eliminated (FK), EXISTS became semijoin.
	for _, f := range q2.Root.From {
		if f.View != nil {
			t.Errorf("view survived: %s", q2.SQL())
		}
	}
	hasSemi := false
	for _, f := range q2.Root.From {
		if f.Kind == qtree.JoinSemi {
			hasSemi = true
		}
	}
	if !hasSemi {
		t.Errorf("EXISTS not unnested: %s", q2.SQL())
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("heuristics differ\nwant %v\ngot  %v\nsql %s", want, got, q2.SQL())
	}
}

func TestRuleObjectsStableAcrossClone(t *testing.T) {
	db := testkit.TinyDB()
	q := qtree.MustBind(q1Tiny, db.Catalog)
	for _, r := range CostBasedRules() {
		n := r.Find(q)
		clone, _ := q.Clone()
		if got := r.Find(clone); got != n {
			t.Errorf("%s: objects change across clone: %d vs %d", r.Name(), n, got)
		}
	}
}

func TestJoinFactorizationLateral(t *testing.T) {
	db := testkit.TinyDB()
	// Join predicates with different shapes per branch: the strict variant
	// cannot pull them out (different T column ordinals), but the lateral
	// variant factorizes anyway.
	src := `
SELECT d.name, e.name FROM emp e, dept d WHERE e.dept_id = d.dept_id AND e.salary > 100
UNION ALL
SELECT d.name, p.pname FROM proj p, dept d WHERE p.dept_id = d.loc_id`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)

	q2 := qtree.MustBind(src, db.Catalog)
	r := &JoinFactorization{}
	if r.Find(q2) != 1 {
		t.Fatalf("objects = %d", r.Find(q2))
	}
	// Different join ordinals across branches: only the lateral variant is
	// legal, so it is variant 1.
	if r.Variants(q2, 0) != 1 {
		t.Fatalf("variants = %d, want 1 (lateral only)", r.Variants(q2, 0))
	}
	if err := r.Apply(q2, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Shape: DEPT joined with a lateral union-all view.
	if q2.Root.Set != nil || len(q2.Root.From) != 2 || !q2.Root.From[1].Lateral {
		t.Fatalf("lateral factorization shape: %s", q2.SQL())
	}
	got := results(t, db, q2)
	if !sameRows(want, got) {
		t.Errorf("lateral factorization differs\nwant %v\ngot  %v\nsql %s", want, got, q2.SQL())
	}
}

func TestJoinFactorizationLateralSameShape(t *testing.T) {
	db := testkit.TinyDB()
	// When both variants are legal, both must preserve semantics.
	src := `
SELECT d.name, e.name FROM emp e, dept d WHERE e.dept_id = d.dept_id AND e.salary > 200
UNION ALL
SELECT d.name, p.pname FROM proj p, dept d WHERE p.dept_id = d.dept_id`
	assertEquivalent(t, db, src, costBased(t, "join factorization", 0, 1))
	assertEquivalent(t, db, src, costBased(t, "join factorization", 0, 2))
}

func TestDistinctEliminationOnUniqueKey(t *testing.T) {
	db := testkit.TinyDB()
	// emp_id is the primary key: DISTINCT is redundant.
	src := `SELECT DISTINCT e.emp_id, e.name FROM emp e WHERE e.salary > 100`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	ch, err := (&RedundancyPruning{}).Apply(q2)
	if err != nil || !ch {
		t.Fatalf("prune: %v %v", ch, err)
	}
	if q2.Root.Distinct {
		t.Fatal("distinct should be eliminated")
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("want %v got %v", want, got)
	}
	// Rowid also qualifies, per joined table.
	src = `SELECT DISTINCT e.rowid, d.dept_id FROM emp e, dept d WHERE e.dept_id = d.dept_id`
	assertEquivalent(t, db, src, heuristic("redundancy pruning"))
}

func TestDistinctNotEliminatedWithoutKey(t *testing.T) {
	db := testkit.TinyDB()
	cases := []string{
		// dept_id is not unique in emp.
		`SELECT DISTINCT e.dept_id FROM emp e`,
		// Unique on one side only.
		`SELECT DISTINCT e.emp_id FROM emp e, dept d WHERE e.dept_id = d.dept_id`,
		// Outer join pads with NULL rows.
		`SELECT DISTINCT e.emp_id, d.dept_id FROM emp e LEFT OUTER JOIN dept d ON e.dept_id = d.dept_id`,
	}
	for _, src := range cases {
		q := qtree.MustBind(src, db.Catalog)
		if _, err := (&RedundancyPruning{}).Apply(q); err != nil {
			t.Fatal(err)
		}
		if !q.Root.Distinct {
			t.Errorf("distinct must survive: %s", src)
		}
	}
}

func TestViewOrderByPruned(t *testing.T) {
	db := testkit.TinyDB()
	src := `SELECT v.n FROM (SELECT e.name n FROM emp e ORDER BY e.salary) v WHERE v.n LIKE '%a%'`
	q := qtree.MustBind(src, db.Catalog)
	ch, err := (&RedundancyPruning{}).Apply(q)
	if err != nil || !ch {
		t.Fatalf("prune: %v %v", ch, err)
	}
	if len(q.Root.From[0].View.OrderBy) != 0 {
		t.Error("pointless view order by should be pruned")
	}
	// Under a rownum limit the order is observable and must survive.
	src = `SELECT v.n FROM (SELECT e.name n FROM emp e ORDER BY e.salary) v WHERE rownum <= 2`
	q = qtree.MustBind(src, db.Catalog)
	if _, err := (&RedundancyPruning{}).Apply(q); err != nil {
		t.Fatal(err)
	}
	if len(q.Root.From[0].View.OrderBy) == 0 {
		t.Error("top-k view order by must survive")
	}
}

func TestPredicateMoveAcrossViews(t *testing.T) {
	db := testkit.TinyDB()
	// The filter dept_id = 10 lives inside v1; move-around must pull it
	// up, propagate it across the join equality, and push it into v2 —
	// the full pull-up / move-across / push-down loop of §2.1.3.
	src := `
SELECT v1.n, v2.p FROM
(SELECT e.name n, e.dept_id d FROM emp e WHERE e.dept_id = 10) v1,
(SELECT p.pname p, p.dept_id d FROM proj p) v2
WHERE v1.d = v2.d`
	q := qtree.MustBind(src, db.Catalog)
	want := results(t, db, q)
	q2 := qtree.MustBind(src, db.Catalog)
	if err := ApplyHeuristics(q2); err != nil {
		t.Fatal(err)
	}
	// After heuristics both SPJ views merge anyway; verify the derived
	// predicate reached proj's side before/without merging by disabling
	// SPJ merge: run move-around alone to a fixpoint.
	q3 := qtree.MustBind(src, db.Catalog)
	ma := &PredicateMoveAround{}
	for i := 0; i < 5; i++ {
		if ch, err := ma.Apply(q3); err != nil {
			t.Fatal(err)
		} else if !ch {
			break
		}
	}
	v2 := q3.Root.From[1].View
	found := false
	for _, e := range v2.Where {
		if bin, ok := e.(*qtree.Bin); ok && bin.Op == qtree.OpEq {
			if refersToName(bin.L, "DEPT_ID") || refersToName(bin.R, "DEPT_ID") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("dept filter did not reach the sibling view: %s", q3.SQL())
	}
	if got := results(t, db, q3); !sameRows(want, got) {
		t.Errorf("move-across changed semantics\nwant %v\ngot  %v", want, got)
	}
	if got := results(t, db, q2); !sameRows(want, got) {
		t.Errorf("full heuristics changed semantics\nwant %v\ngot  %v", want, got)
	}
}

func TestMoveAroundReachesFixpoint(t *testing.T) {
	db := testkit.TinyDB()
	src := `
SELECT v.d FROM (SELECT e.dept_id d FROM emp e WHERE e.dept_id = 10) v`
	q := qtree.MustBind(src, db.Catalog)
	ma := &PredicateMoveAround{}
	sizeBefore := -1
	for i := 0; i < 6; i++ {
		if _, err := ma.Apply(q); err != nil {
			t.Fatal(err)
		}
		n := len(q.Root.From[0].View.Where)
		if sizeBefore >= 0 && n > sizeBefore {
			t.Fatalf("view predicate list grows without bound: %d -> %d", sizeBefore, n)
		}
		sizeBefore = n
	}
}
