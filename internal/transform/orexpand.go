package transform

import (
	"fmt"

	"repro/internal/qtree"
)

// OrExpansion converts a disjunctive predicate into a UNION ALL of
// branches, one per disjunct (§2.2.8). Branch k keeps disjunct k and adds
// LNNVL(disjunct j) for every earlier disjunct, so the branches are
// disjoint and their union equals the original result under SQL
// three-valued semantics.
type OrExpansion struct{}

// Name implements Rule.
func (*OrExpansion) Name() string { return "disjunction into UNION ALL" }

type orObj struct {
	block *qtree.Block
	where int
}

func (r *OrExpansion) objects(q *qtree.Query) []orObj {
	var out []orObj
	for _, b := range Blocks(q) {
		if b.IsSetOp() || b.Distinct || b.HasGroupBy() || b.Limit > 0 || len(b.OrderBy) > 0 ||
			b.HasWindowFuncs() {
			continue
		}
		for wi, e := range b.Where {
			if len(splitOr(e)) < 2 {
				continue
			}
			if containsSubq(e) {
				continue
			}
			// Each disjunct should constrain at least one local relation,
			// otherwise the expansion cannot open new access paths.
			useful := true
			local := b.LocalFromIDs()
			for _, d := range splitOr(e) {
				hasLocal := false
				for id := range refsOf(d) {
					if local[id] {
						hasLocal = true
					}
				}
				if !hasLocal {
					useful = false
				}
			}
			if useful {
				out = append(out, orObj{block: b, where: wi})
			}
		}
	}
	return out
}

// splitOr splits an expression on top-level ORs.
func splitOr(e qtree.Expr) []qtree.Expr {
	if b, ok := e.(*qtree.Bin); ok && b.Op == qtree.OpOr {
		return append(splitOr(b.L), splitOr(b.R)...)
	}
	return []qtree.Expr{e}
}

// Find implements Rule.
func (r *OrExpansion) Find(q *qtree.Query) int { return len(r.objects(q)) }

// Variants implements Rule.
func (r *OrExpansion) Variants(q *qtree.Query, obj int) int { return 1 }

// Apply implements Rule.
func (r *OrExpansion) Apply(q *qtree.Query, obj, variant int) error {
	objs := r.objects(q)
	if obj >= len(objs) {
		return fmt.Errorf("or expansion: object %d out of range", obj)
	}
	// The block becomes a pure set-op header; materialize it first so the
	// branch clones and the header rewrite never touch a shared block.
	b := q.Mutable(objs[obj].block)
	wi := objs[obj].where
	nBranches := len(splitOr(b.Where[wi]))

	var children []*qtree.Block
	for k := 0; k < nBranches; k++ {
		clone := qtree.CloneBlockInto(b, q)
		ds := splitOr(clone.Where[wi])
		// Replace the OR conjunct with disjunct k plus LNNVL guards for
		// the earlier disjuncts.
		newWhere := append([]qtree.Expr(nil), clone.Where[:wi]...)
		newWhere = append(newWhere, ds[k])
		for j := 0; j < k; j++ {
			newWhere = append(newWhere, &qtree.LNNVL{E: ds[j]})
		}
		newWhere = append(newWhere, clone.Where[wi+1:]...)
		clone.Where = newWhere
		children = append(children, clone)
	}

	b.Set = &qtree.SetOp{Kind: qtree.SetUnionAll, Children: children}
	b.Select = nil
	b.From = nil
	b.Where = nil
	return nil
}
