package transform

import (
	"fmt"

	"repro/internal/qtree"
)

// PredicateMoveAround implements filter predicate move-around (§2.1.3):
// inexpensive single-source filter predicates are pushed from a block into
// its views (through DISTINCT, through GROUP BY when they reference only
// grouping outputs, into every branch of UNION/UNION ALL, and into the
// appropriate children of INTERSECT/MINUS), and transitive predicates are
// generated across equality classes so filters move across join operands.
type PredicateMoveAround struct{}

// Name implements HeuristicRule.
func (*PredicateMoveAround) Name() string { return "filter predicate move around" }

// Apply implements HeuristicRule. Following [Levy/Mumick/Sagiv], predicates
// are first pulled up (copied, since they remain implied below), then
// propagated across equality classes, then pushed down — so a filter deep
// in one view can reach the scan of a joined view.
func (*PredicateMoveAround) Apply(q *qtree.Query) (bool, error) {
	changed := false
	for _, b := range Blocks(q) {
		// Copy-on-write materialization forwards blocks; each helper
		// re-resolves so the later passes see the earlier passes' writes.
		if pullUpImplied(q, b) {
			changed = true
		}
		if transitiveClose(q, b) {
			changed = true
		}
		if pushIntoViews(q, b) {
			changed = true
		}
	}
	return changed, nil
}

// pullUpImplied copies constant equality/range predicates on a view's
// output columns up to the containing block (they remain true above the
// view), so that transitive closure can carry them to the view's join
// partners. Set-operation views are skipped: a branch-local predicate is
// not implied by the union.
func pullUpImplied(q *qtree.Query, b *qtree.Block) bool {
	b = q.Resolve(b)
	if b.IsSetOp() {
		return false
	}
	existing := map[string]bool{}
	for _, e := range b.Where {
		existing[e.String()] = true
	}
	changed := false
	for _, f := range b.From {
		if f.View == nil || f.View.IsSetOp() || f.Kind != qtree.JoinInner {
			continue
		}
		v := f.View
		// Output ordinal by underlying expression rendering.
		ordOf := map[string]int{}
		for i, it := range v.Select {
			if _, ok := it.Expr.(*qtree.Col); ok {
				ordOf[it.Expr.String()] = i
			}
		}
		for _, e := range v.Where {
			bin, ok := e.(*qtree.Bin)
			if !ok || !bin.Op.IsComparison() || bin.Op == qtree.OpNullSafeEq {
				continue
			}
			var side qtree.Expr
			var con *qtree.Const
			op := bin.Op
			if c, isC := bin.R.(*qtree.Const); isC {
				side, con = bin.L, c
			} else if c, isC := bin.L.(*qtree.Const); isC {
				side, con, op = bin.R, c, bin.Op.Commute()
			} else {
				continue
			}
			ord, exposed := ordOf[side.String()]
			if !exposed {
				continue
			}
			up := &qtree.Bin{
				Op: op,
				L:  &qtree.Col{From: f.ID, Ord: ord, Name: f.ColName(ord)},
				R:  &qtree.Const{Val: con.Val},
			}
			if existing[up.String()] {
				continue
			}
			existing[up.String()] = true
			b = q.Mutable(b)
			b.Where = append(b.Where, up)
			changed = true
		}
	}
	return changed
}

// transitiveClose derives new constant predicates across equality classes:
// given a = b and a <op> const, add b <op> const (bounded, deduplicated).
func transitiveClose(q *qtree.Query, b *qtree.Block) bool {
	b = q.Resolve(b)
	if b.IsSetOp() {
		return false
	}
	// Union-find over columns appearing in equality conjuncts.
	parent := map[string]string{}
	colByKey := map[string]*qtree.Col{}
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	key := func(c *qtree.Col) string {
		// Identity is (from item, ordinal) — display names can differ in
		// case between a view alias and its uppercased references.
		k := fmt.Sprintf("%d#%d", c.From, c.Ord)
		if _, ok := parent[k]; !ok {
			parent[k] = k
			colByKey[k] = c
		}
		return k
	}
	union := func(a, bk string) {
		ra, rb := find(a), find(bk)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range b.Where {
		if l, r, ok := eqConjunct(e); ok {
			union(key(l), key(r))
		}
	}
	if len(parent) == 0 {
		return false
	}
	// Collect existing conjunct renderings to deduplicate.
	existing := map[string]bool{}
	for _, e := range b.Where {
		existing[e.String()] = true
	}
	// For each col-vs-constant comparison, propagate to class members.
	changed := false
	var derived []qtree.Expr
	for _, e := range b.Where {
		bin, ok := e.(*qtree.Bin)
		if !ok || !bin.Op.IsComparison() || bin.Op == qtree.OpNullSafeEq {
			continue
		}
		var col *qtree.Col
		var con qtree.Expr
		var op qtree.BinOp
		if c, isCol := bin.L.(*qtree.Col); isCol {
			if _, isConst := bin.R.(*qtree.Const); isConst {
				col, con, op = c, bin.R, bin.Op
			}
		} else if c, isCol := bin.R.(*qtree.Col); isCol {
			if _, isConst := bin.L.(*qtree.Const); isConst {
				col, con, op = c, bin.L, bin.Op.Commute()
			}
		}
		if col == nil {
			continue
		}
		ck := fmt.Sprintf("%d#%d", col.From, col.Ord)
		if _, known := parent[ck]; !known {
			continue
		}
		root := find(ck)
		for other, p := range parent {
			_ = p
			if other == ck || find(other) != root {
				continue
			}
			oc := colByKey[other]
			ne := &qtree.Bin{Op: op, L: &qtree.Col{From: oc.From, Ord: oc.Ord, Name: oc.Name}, R: cloneExpr(q, con)}
			if !existing[ne.String()] {
				existing[ne.String()] = true
				derived = append(derived, ne)
				changed = true
			}
		}
	}
	if len(derived) == 0 {
		return false
	}
	// Guarded so a no-op pass never writes (even a same-value slice-header
	// store) into a block shared with the copy-on-write base.
	b = q.Mutable(b)
	b.Where = append(b.Where, derived...)
	return changed
}

// pushIntoViews pushes eligible conjuncts of b into the view from items
// they constrain.
func pushIntoViews(q *qtree.Query, b *qtree.Block) bool {
	b = q.Resolve(b)
	if b.IsSetOp() {
		return false
	}
	changed := false
	for wi := 0; wi < len(b.Where); wi++ {
		e := b.Where[wi]
		if isExpensive(e) {
			continue // only inexpensive predicates move (§2.1.3)
		}
		target := soleViewTarget(b, e)
		if target == nil {
			continue
		}
		if pushPredIntoView(q, b, target, e) {
			// A successful push materialized the view's path, which runs
			// through b; re-resolve before dropping the outer conjunct.
			b = q.Mutable(q.Resolve(b))
			removeWhereAt(b, wi)
			wi--
			changed = true
		}
	}
	return changed
}

// soleViewTarget returns the view item that is the only local relation e
// references, or nil.
func soleViewTarget(b *qtree.Block, e qtree.Expr) *qtree.FromItem {
	local := b.LocalFromIDs()
	var target *qtree.FromItem
	for id := range refsOf(e) {
		if !local[id] {
			return nil // conservatively keep correlated predicates in place
		}
		f := b.FindFrom(id)
		if f == nil || f.View == nil || f.Kind != qtree.JoinInner || f.Lateral {
			return nil
		}
		if target != nil && target != f {
			return nil
		}
		target = f
	}
	return target
}

// pushPredIntoView pushes conjunct e (which references only view f's
// outputs) inside the view; reports whether the push was legal.
func pushPredIntoView(q *qtree.Query, b *qtree.Block, f *qtree.FromItem, e qtree.Expr) bool {
	return pushIntoBlock(q, f.View, f.ID, e)
}

func pushIntoBlock(q *qtree.Query, v *qtree.Block, viewID qtree.FromID, e qtree.Expr) bool {
	if v.Limit > 0 {
		return false // cannot push past a row limit
	}
	if v.Set != nil {
		switch v.Set.Kind {
		case qtree.SetUnion, qtree.SetUnionAll, qtree.SetIntersect:
			// Push into every branch; verify all branches accept first.
			for _, c := range v.Set.Children {
				if !canAcceptPush(c, e, viewID) {
					return false
				}
			}
			for _, c := range v.Set.Children {
				pushIntoBlock(q, c, viewID, e)
			}
			return true
		case qtree.SetMinus:
			// Only the first child may be filtered: removing rows from the
			// subtrahend would add rows to the result.
			if !canAcceptPush(v.Set.Children[0], e, viewID) {
				return false
			}
			return pushIntoBlock(q, v.Set.Children[0], viewID, e)
		}
		return false
	}
	if !canAcceptPush(v, e, viewID) {
		return false
	}
	// Substitute output references with the view's select expressions.
	pushed := qtree.RewriteExpr(cloneExpr(q, e), func(x qtree.Expr) qtree.Expr {
		if c, ok := x.(*qtree.Col); ok && c.From == viewID {
			return cloneExpr(q, v.Select[c.Ord].Expr)
		}
		return nil
	})
	// An already-present conjunct (e.g. one that pull-up copied from this
	// very view) is left alone at the outer level; pushing would duplicate
	// it and the pull-up/push-down loop would never reach a fixpoint.
	key := pushed.String()
	for _, w := range v.Where {
		if w.String() == key {
			return false
		}
	}
	v = q.Mutable(v)
	v.Where = append(v.Where, pushed)
	return true
}

// canAcceptPush checks that pushing a predicate on the given view outputs
// below the block's operators is legal: through DISTINCT always; through
// GROUP BY only when every referenced output is a grouping expression.
func canAcceptPush(v *qtree.Block, e qtree.Expr, viewID qtree.FromID) bool {
	if v.Set != nil {
		// Nested set op: recurse at push time.
		return v.Limit == 0
	}
	if v.Limit > 0 {
		return false
	}
	if !pushableThroughWindows(v, e, viewID) {
		return false
	}
	if !v.HasGroupBy() {
		return true
	}
	// Every referenced output ordinal must be a grouping expression.
	ok := true
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		if c, isCol := x.(*qtree.Col); isCol && c.From == viewID {
			se := v.Select[c.Ord].Expr
			if qtree.ContainsAgg(se) {
				ok = false
				return false
			}
			inGB := false
			for _, g := range v.GroupBy {
				if g.String() == se.String() {
					inGB = true
					break
				}
			}
			if !inGB {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// GroupPruning removes grouping sets that cannot satisfy the outer block's
// filters (§2.1.4): a null-rejecting predicate on a grouping column prunes
// every set in which that column is rolled up (and therefore null).
type GroupPruning struct{}

// Name implements HeuristicRule.
func (*GroupPruning) Name() string { return "group pruning" }

// Apply implements HeuristicRule.
func (*GroupPruning) Apply(q *qtree.Query) (bool, error) {
	changed := false
	for _, b := range Blocks(q) {
		b = q.Resolve(b)
		for _, f := range b.From {
			if f.View == nil || f.View.GroupingSets == nil {
				continue
			}
			if pruneGroups(q, b, f) {
				changed = true
			}
		}
	}
	return changed, nil
}

func pruneGroups(q *qtree.Query, b *qtree.Block, f *qtree.FromItem) bool {
	v := f.View
	// Find grouping columns with null-rejecting outer predicates.
	required := map[int]bool{} // GroupBy index that must be non-null
	for _, e := range b.Where {
		ord, ok := nullRejectingOn(e, f.ID)
		if !ok {
			continue
		}
		se := v.Select[ord].Expr
		for gi, g := range v.GroupBy {
			if g.String() == se.String() {
				required[gi] = true
			}
		}
	}
	if len(required) == 0 {
		return false
	}
	var kept [][]int
	for _, set := range v.GroupingSets {
		has := map[int]bool{}
		for _, gi := range set {
			has[gi] = true
		}
		ok := true
		for gi := range required {
			if !has[gi] {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, set)
		}
	}
	if len(kept) == len(v.GroupingSets) {
		return false
	}
	if len(kept) == 0 {
		// Every group is pruned: the view returns nothing.
		full := make([]int, len(v.GroupBy))
		for i := range full {
			full[i] = i
		}
		v = q.Mutable(v)
		v.GroupingSets = [][]int{full}
		v.Where = append(v.Where, falseConst())
		return true
	}
	v = q.Mutable(v)
	v.GroupingSets = kept
	return true
}

// nullRejectingOn matches e as a null-rejecting predicate on a single
// output column of from item id and returns the ordinal.
func nullRejectingOn(e qtree.Expr, id qtree.FromID) (int, bool) {
	switch v := e.(type) {
	case *qtree.Bin:
		if !v.Op.IsComparison() || v.Op == qtree.OpNullSafeEq {
			return 0, false
		}
		if c, ok := v.L.(*qtree.Col); ok && c.From == id {
			if _, isConst := v.R.(*qtree.Const); isConst {
				return c.Ord, true
			}
		}
		if c, ok := v.R.(*qtree.Col); ok && c.From == id {
			if _, isConst := v.L.(*qtree.Const); isConst {
				return c.Ord, true
			}
		}
	case *qtree.IsNull:
		if v.Neg {
			if c, ok := v.E.(*qtree.Col); ok && c.From == id {
				return c.Ord, true
			}
		}
	case *qtree.InList:
		if v.Neg {
			return 0, false
		}
		if c, ok := v.E.(*qtree.Col); ok && c.From == id {
			return c.Ord, true
		}
	case *qtree.Like:
		if v.Neg {
			return 0, false
		}
		if c, ok := v.E.(*qtree.Col); ok && c.From == id {
			return c.Ord, true
		}
	}
	return 0, false
}
