package transform

import (
	"repro/internal/datum"
	"repro/internal/qtree"
)

// refsOf returns the from IDs referenced by e (including inside subquery
// blocks).
func refsOf(e qtree.Expr) map[qtree.FromID]bool {
	s := map[qtree.FromID]bool{}
	qtree.ColsUsed(e, s)
	return s
}

// refsOnly reports whether e references no from items other than those in
// allowed (expressions with zero references qualify).
func refsOnly(e qtree.Expr, allowed map[qtree.FromID]bool) bool {
	for id := range refsOf(e) {
		if !allowed[id] {
			return false
		}
	}
	return true
}

// refersTo reports whether e references from item id.
func refersTo(e qtree.Expr, id qtree.FromID) bool {
	return refsOf(e)[id]
}

// containsSubq reports whether the expression contains a subquery.
func containsSubq(e qtree.Expr) bool {
	found := false
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		if _, ok := x.(*qtree.Subq); ok {
			found = true
		}
		return !found
	})
	return found
}

// isExpensive reports whether the predicate contains an expensive function
// or a subquery (the paper's definition of expensive predicates, §2.2.6).
func isExpensive(e qtree.Expr) bool {
	found := false
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		switch v := x.(type) {
		case *qtree.Func:
			if v.Def.Expensive {
				found = true
			}
		case *qtree.Subq:
			found = true
			return false
		}
		return !found
	})
	return found
}

// substituteView rewrites every reference to view item id in block b (and
// nested blocks) with the view's select-list expression for that ordinal.
// exprFor returns a fresh copy of the replacement for ordinal ord.
func substituteView(b *qtree.Block, id qtree.FromID, exprFor func(ord int) qtree.Expr) {
	qtree.RewriteBlockExprsDeep(b, func(e qtree.Expr) qtree.Expr {
		if c, ok := e.(*qtree.Col); ok && c.From == id {
			return exprFor(c.Ord)
		}
		return nil
	})
}

// cloneExpr deep-copies an expression. Column references keep their from
// IDs, but any embedded subquery blocks receive fresh identities so the
// copy does not collide with the original.
func cloneExpr(q *qtree.Query, e qtree.Expr) qtree.Expr {
	r := emptyRemap(q)
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		if s, ok := x.(*qtree.Subq); ok {
			qtree.RegisterBlockIDs(s.Block, r)
			return false
		}
		return true
	})
	return e.Clone(r)
}

// emptyRemap builds a remap that preserves all IDs but still carries the
// query (needed for cloning subquery blocks inside expressions).
func emptyRemap(q *qtree.Query) *qtree.Remap {
	return qtree.NewRemap(q)
}

// copyFromItem shallow-copies a from item (private Cond slice, same ID and
// view pointer). Rules that move an item between blocks use this so the
// receiving tree never aliases a struct still held by a copy-on-write base.
func copyFromItem(f *qtree.FromItem) *qtree.FromItem {
	nf := *f
	nf.Cond = append([]qtree.Expr(nil), f.Cond...)
	return &nf
}

// removeFromItem deletes the from item with the given ID from the block.
func removeFromItem(b *qtree.Block, id qtree.FromID) {
	out := b.From[:0]
	for _, f := range b.From {
		if f.ID != id {
			out = append(out, f)
		}
	}
	b.From = out
}

// removeWhereAt removes the conjunct at index i.
func removeWhereAt(b *qtree.Block, i int) {
	b.Where = append(b.Where[:i:i], b.Where[i+1:]...)
}

// eqConjunct matches e as an equality between two plain columns.
func eqConjunct(e qtree.Expr) (l, r *qtree.Col, ok bool) {
	b, isBin := e.(*qtree.Bin)
	if !isBin || b.Op != qtree.OpEq {
		return nil, nil, false
	}
	lc, lok := b.L.(*qtree.Col)
	rc, rok := b.R.(*qtree.Col)
	if !lok || !rok {
		return nil, nil, false
	}
	return lc, rc, true
}

// trueConst is a TRUE literal.
func trueConst() qtree.Expr { return &qtree.Const{Val: datum.NewBool(true)} }

// falseConst is a FALSE literal.
func falseConst() qtree.Expr { return &qtree.Const{Val: datum.NewBool(false)} }

// blockHasSubqueries reports whether any expression of b contains a
// subquery (not descending into views).
func blockHasSubqueries(b *qtree.Block) bool {
	found := false
	b.VisitExprs(func(e qtree.Expr) {
		if _, ok := e.(*qtree.Subq); ok {
			found = true
		}
	})
	return found
}

// pushableThroughWindows reports whether predicate e (over view outputs of
// viewID) may be pushed below the block's window functions: every
// referenced output must be an expression that appears in the PARTITION BY
// of every window function of the block. The paper (§2.1.3): "Pushing
// predicates on PARTITION BY clauses can always be done"; pushing through
// ORDER BY-dependent outputs requires frame analysis we do not attempt.
func pushableThroughWindows(v *qtree.Block, e qtree.Expr, viewID qtree.FromID) bool {
	if !v.HasWindowFuncs() {
		return true
	}
	var wins []*qtree.WinFunc
	for _, it := range v.Select {
		qtree.WalkExpr(it.Expr, func(x qtree.Expr) bool {
			if w, ok := x.(*qtree.WinFunc); ok {
				wins = append(wins, w)
				return false
			}
			return true
		})
	}
	ok := true
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		c, isCol := x.(*qtree.Col)
		if !isCol || c.From != viewID {
			return true
		}
		se := v.Select[c.Ord].Expr
		if qtree.ContainsWindow(se) {
			ok = false
			return false
		}
		key := se.String()
		for _, w := range wins {
			inPBY := false
			for _, pe := range w.PartitionBy {
				if pe.String() == key {
					inPBY = true
					break
				}
			}
			if !inPBY {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// isPlainSPJ reports whether the block is a simple select-project-join:
// no set operation, no grouping, no distinct, no order by, no limit.
func isPlainSPJ(b *qtree.Block) bool {
	return b.Set == nil && !b.Distinct && !b.HasGroupBy() &&
		len(b.OrderBy) == 0 && b.Limit == 0
}

// colOfTable matches e as a plain column of from item id and returns its
// ordinal.
func colOfTable(e qtree.Expr, id qtree.FromID) (int, bool) {
	c, ok := e.(*qtree.Col)
	if !ok || c.From != id {
		return 0, false
	}
	return c.Ord, true
}
