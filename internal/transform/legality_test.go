package transform

import (
	"testing"

	"repro/internal/qtree"
	"repro/internal/testkit"
)

// These tests pin down when transformations must NOT apply: wrong
// transformations silently change semantics, so refusals matter as much as
// applications.

func findRule(name string) Rule {
	for _, r := range CostBasedRules() {
		if r.Name() == name {
			return r
		}
	}
	return nil
}

func TestUnnestRefusesNonParentCorrelation(t *testing.T) {
	db := testkit.TinyDB()
	// The innermost subquery is correlated to the outermost block (e),
	// skipping its parent (the d-block): the paper excludes such
	// subqueries from unnesting entirely.
	src := `
SELECT e.name FROM emp e WHERE EXISTS
(SELECT 1 FROM dept d WHERE d.dept_id = e.dept_id AND EXISTS
 (SELECT 1 FROM proj p, dept d2 WHERE p.dept_id = d2.dept_id AND p.budget > e.salary))`
	q := qtree.MustBind(src, db.Catalog)
	// The merge rule must leave the inner two-table subquery alone, and
	// the cost-based rule must not list it as an object. (The outer EXISTS
	// itself is single-table at its level and contains a subquery, so it
	// is not a merge candidate either.)
	if _, err := (&UnnestMerge{}).Apply(q); err != nil {
		t.Fatal(err)
	}
	r := &UnnestSubquery{}
	if n := r.Find(q); n != 0 {
		t.Errorf("non-parent correlated subquery must not be unnestable, found %d objects", n)
	}
}

func TestUnnestRefusesCountAggregate(t *testing.T) {
	db := testkit.TinyDB()
	// COUNT over an empty group yields 0 under TIS but no row after
	// unnesting; the rule must refuse.
	src := `
SELECT e.name FROM emp e
WHERE e.salary > (SELECT COUNT(*) FROM proj p, dept d
                  WHERE p.dept_id = d.dept_id AND d.dept_id = e.dept_id)`
	q := qtree.MustBind(src, db.Catalog)
	if n := (&UnnestSubquery{}).Find(q); n != 0 {
		t.Errorf("COUNT subquery must not unnest (empty-group semantics), found %d", n)
	}
}

func TestUnnestRefusesMultiItemNullableNotIn(t *testing.T) {
	db := testkit.TinyDB()
	// Multi-item NOT IN with nullable columns cannot be unnested (§2.1.1).
	src := `
SELECT e.name FROM emp e WHERE (e.dept_id, e.mgr_id) NOT IN
(SELECT p.dept_id, p.proj_id FROM proj p, dept d WHERE p.dept_id = d.dept_id)`
	q := qtree.MustBind(src, db.Catalog)
	if n := (&UnnestSubquery{}).Find(q); n != 0 {
		t.Errorf("nullable multi-item NOT IN must not unnest, found %d", n)
	}
}

func TestViewMergeRefusals(t *testing.T) {
	db := testkit.TinyDB()
	vs := &ViewStrategy{}
	cases := []struct {
		name string
		src  string
	}{
		{"outer is grouped", `
SELECT COUNT(*) FROM emp e,
(SELECT e2.dept_id dd, AVG(e2.salary) a FROM emp e2 GROUP BY e2.dept_id) v
WHERE e.dept_id = v.dd GROUP BY e.mgr_id`},
		{"outer has limit", `
SELECT e.name FROM emp e,
(SELECT e2.dept_id dd, AVG(e2.salary) a FROM emp e2 GROUP BY e2.dept_id) v
WHERE e.dept_id = v.dd AND rownum <= 3`},
		{"view has order by", `
SELECT e.name FROM emp e,
(SELECT e2.dept_id dd FROM emp e2 GROUP BY e2.dept_id ORDER BY e2.dept_id) v
WHERE e.dept_id = v.dd AND e.salary > 1000000`},
	}
	for _, c := range cases {
		q := qtree.MustBind(c.src, db.Catalog)
		n := vs.Find(q)
		// Merging must be refused; JPPD may still be offered for some
		// (that is fine — check merge specifically).
		for obj := 0; obj < n; obj++ {
			q2 := qtree.MustBind(c.src, db.Catalog)
			objs := vs.objects(q2)
			if objs[obj].mergeOK {
				t.Errorf("%s: merge should be illegal\nsql: %s", c.name, c.src)
			}
		}
	}
}

func TestJPPDRefusesWithoutJoinPredicate(t *testing.T) {
	db := testkit.TinyDB()
	// Cross join with the view: nothing to push.
	src := `
SELECT e.name, v.a FROM emp e,
(SELECT AVG(p.budget) a, p.dept_id dd FROM proj p GROUP BY p.dept_id) v
WHERE e.salary > 100`
	q := qtree.MustBind(src, db.Catalog)
	objs := (&ViewStrategy{}).objects(q)
	for _, o := range objs {
		if o.jppdOK {
			t.Errorf("JPPD should be illegal without a pushable join predicate")
		}
	}
}

func TestJPPDRefusesAggregateOutputJoin(t *testing.T) {
	db := testkit.TinyDB()
	// The join predicate targets the aggregate output: cannot be pushed
	// below the GROUP BY.
	src := `
SELECT e.name FROM emp e,
(SELECT AVG(p.budget) a, p.dept_id dd FROM proj p GROUP BY p.dept_id) v
WHERE e.salary = v.a`
	q := qtree.MustBind(src, db.Catalog)
	objs := (&ViewStrategy{}).objects(q)
	for _, o := range objs {
		if o.jppdOK {
			t.Errorf("JPPD on aggregate output must be refused")
		}
	}
}

func TestOrExpansionRefusals(t *testing.T) {
	db := testkit.TinyDB()
	r := findRule("disjunction into UNION ALL")
	bad := []string{
		// DISTINCT: branch-local LNNVL does not preserve global dedup.
		`SELECT DISTINCT e.dept_id FROM emp e WHERE e.dept_id = 10 OR e.salary > 200`,
		// Grouped block.
		`SELECT COUNT(*) FROM emp e WHERE e.dept_id = 10 OR e.salary > 200`,
		// Row limit.
		`SELECT e.name FROM emp e WHERE (e.dept_id = 10 OR e.salary > 200) AND rownum <= 2`,
		// Order by.
		`SELECT e.name FROM emp e WHERE e.dept_id = 10 OR e.salary > 200 ORDER BY e.name`,
		// Subquery inside the disjunction.
		`SELECT e.name FROM emp e WHERE e.dept_id = 10 OR EXISTS (SELECT 1 FROM proj p WHERE p.dept_id = e.dept_id)`,
	}
	for _, src := range bad {
		q := qtree.MustBind(src, db.Catalog)
		if n := r.Find(q); n != 0 {
			t.Errorf("OR expansion should refuse: %s", src)
		}
	}
}

func TestPullupRefusals(t *testing.T) {
	db := testkit.TinyDB()
	r := findRule("predicate pullup")
	bad := []string{
		// No outer rownum.
		`SELECT v.name FROM
		 (SELECT e.name name FROM emp e WHERE SLOW_MATCH(e.name, 'a') ORDER BY e.name) v`,
		// No blocking operator in the view.
		`SELECT v.name FROM
		 (SELECT e.name name FROM emp e WHERE SLOW_MATCH(e.name, 'a')) v
		 WHERE rownum <= 2`,
		// Cheap predicate only.
		`SELECT v.name FROM
		 (SELECT e.name name FROM emp e WHERE e.salary > 10 ORDER BY e.name) v
		 WHERE rownum <= 2`,
	}
	for _, src := range bad {
		q := qtree.MustBind(src, db.Catalog)
		if n := r.Find(q); n != 0 {
			t.Errorf("pullup should refuse: %s", src)
		}
	}
}

func TestFactorizationRefusals(t *testing.T) {
	db := testkit.TinyDB()
	r := findRule("join factorization")
	bad := []string{
		// No common table.
		`SELECT e.name FROM emp e WHERE e.salary > 100
		 UNION ALL SELECT p.pname FROM proj p`,
		// Common table but its select reference is an expression, not a
		// plain column.
		`SELECT d.dept_id + 1, e.name FROM emp e, dept d WHERE e.dept_id = d.dept_id
		 UNION ALL SELECT d.dept_id + 1, p.pname FROM proj p, dept d WHERE p.dept_id = d.dept_id`,
		// Common table selected at different positions.
		`SELECT d.name, e.name FROM emp e, dept d WHERE e.dept_id = d.dept_id
		 UNION ALL SELECT p.pname, d.name FROM proj p, dept d WHERE p.dept_id = d.dept_id`,
	}
	for _, src := range bad {
		q := qtree.MustBind(src, db.Catalog)
		if n := r.Find(q); n != 0 {
			t.Errorf("factorization should refuse: %s", src)
		}
	}
}

func TestGroupByPlacementRefusals(t *testing.T) {
	db := testkit.TinyDB()
	r := findRule("group-by placement")
	bad := []string{
		// Distinct aggregate.
		`SELECT d.name, COUNT(DISTINCT p.budget) FROM dept d, proj p
		 WHERE d.dept_id = p.dept_id GROUP BY d.name`,
		// Aggregate arguments from two different tables.
		`SELECT d.name, SUM(p.budget + e.salary) FROM dept d, proj p, emp e
		 WHERE d.dept_id = p.dept_id AND e.dept_id = d.dept_id GROUP BY d.name`,
		// Single-table block: nothing to push past.
		`SELECT p.dept_id, SUM(p.budget) FROM proj p GROUP BY p.dept_id`,
	}
	for _, src := range bad {
		q := qtree.MustBind(src, db.Catalog)
		if n := r.Find(q); n != 0 {
			t.Errorf("group-by placement should refuse: %s", src)
		}
	}
}

func TestSetOpIntoJoinRefusesNestedSetChildren(t *testing.T) {
	db := testkit.TinyDB()
	r := findRule("set operators into joins")
	// MINUS whose left child is itself a set operation.
	src := `
(SELECT e.dept_id FROM emp e UNION ALL SELECT p.dept_id FROM proj p)
MINUS SELECT d.dept_id FROM dept d`
	q := qtree.MustBind(src, db.Catalog)
	if n := r.Find(q); n != 0 {
		t.Errorf("nested set children should be refused, found %d", n)
	}
}
