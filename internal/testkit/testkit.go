// Package testkit provides the HR/OE-style schema and deterministic sample
// data used by tests and examples throughout the repository. The schema
// mirrors the tables in the paper's examples: employees, departments,
// locations, job_history, jobs, sales and accounts.
package testkit

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/storage"
)

// Sizes configures the number of rows per table.
type Sizes struct {
	Employees   int
	Departments int
	Locations   int
	JobHistory  int
	Jobs        int
	Sales       int
	Accounts    int
}

// SmallSizes is a compact configuration for unit tests.
func SmallSizes() Sizes {
	return Sizes{
		Employees:   200,
		Departments: 20,
		Locations:   8,
		JobHistory:  120,
		Jobs:        10,
		Sales:       300,
		Accounts:    60,
	}
}

// MediumSizes is for benchmarks where plan-quality differences must show in
// wall-clock time.
func MediumSizes() Sizes {
	return Sizes{
		Employees:   20000,
		Departments: 400,
		Locations:   40,
		JobHistory:  12000,
		Jobs:        50,
		Sales:       40000,
		Accounts:    2000,
	}
}

// Countries used by the locations table.
var Countries = []string{"US", "UK", "DE", "FR", "JP", "IN", "BR", "CA"}

// NewDB builds the schema, loads deterministic pseudo-random data of the
// given sizes (seeded by seed), builds indexes and collects statistics.
func NewDB(sizes Sizes, seed int64) *storage.DB {
	rng := rand.New(rand.NewSource(seed))
	cat := catalog.New()
	db := storage.NewDB(cat)

	locations := mustCreate(db, &catalog.Table{
		Name: "LOCATIONS",
		Cols: []catalog.Column{
			{Name: "LOC_ID", Type: datum.KInt},
			{Name: "CITY", Type: datum.KString},
			{Name: "COUNTRY_ID", Type: datum.KString},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "LOC_PK", Cols: []int{0}, Unique: true},
			{Name: "LOC_COUNTRY", Cols: []int{2}},
		},
	})
	departments := mustCreate(db, &catalog.Table{
		Name: "DEPARTMENTS",
		Cols: []catalog.Column{
			{Name: "DEPT_ID", Type: datum.KInt},
			{Name: "DEPARTMENT_NAME", Type: datum.KString},
			{Name: "LOC_ID", Type: datum.KInt},
			{Name: "BUDGET", Type: datum.KFloat},
		},
		PrimaryKey: []int{0},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []int{2}, RefTable: "LOCATIONS", RefCols: []int{0}},
		},
		Indexes: []*catalog.Index{
			{Name: "DEPT_PK", Cols: []int{0}, Unique: true},
			{Name: "DEPT_LOC", Cols: []int{2}},
		},
	})
	jobs := mustCreate(db, &catalog.Table{
		Name: "JOBS",
		Cols: []catalog.Column{
			{Name: "JOB_ID", Type: datum.KInt},
			{Name: "JOB_TITLE", Type: datum.KString},
			{Name: "MIN_SALARY", Type: datum.KFloat},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "JOBS_PK", Cols: []int{0}, Unique: true},
		},
	})
	employees := mustCreate(db, &catalog.Table{
		Name: "EMPLOYEES",
		Cols: []catalog.Column{
			{Name: "EMP_ID", Type: datum.KInt},
			{Name: "EMPLOYEE_NAME", Type: datum.KString},
			{Name: "DEPT_ID", Type: datum.KInt, Nullable: true},
			{Name: "SALARY", Type: datum.KFloat},
			{Name: "MGR_ID", Type: datum.KInt, Nullable: true},
			{Name: "JOB_ID", Type: datum.KInt},
			{Name: "HIRE_DATE", Type: datum.KString},
		},
		PrimaryKey: []int{0},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []int{2}, RefTable: "DEPARTMENTS", RefCols: []int{0}},
			{Cols: []int{5}, RefTable: "JOBS", RefCols: []int{0}},
		},
		Indexes: []*catalog.Index{
			{Name: "EMP_PK", Cols: []int{0}, Unique: true},
			{Name: "EMP_DEPT", Cols: []int{2}},
			{Name: "EMP_JOB", Cols: []int{5}},
		},
	})
	jobHistory := mustCreate(db, &catalog.Table{
		Name: "JOB_HISTORY",
		Cols: []catalog.Column{
			{Name: "EMP_ID", Type: datum.KInt},
			{Name: "JOB_ID", Type: datum.KInt},
			{Name: "JOB_TITLE", Type: datum.KString},
			{Name: "START_DATE", Type: datum.KString},
			{Name: "DEPT_ID", Type: datum.KInt},
		},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []int{0}, RefTable: "EMPLOYEES", RefCols: []int{0}},
		},
		Indexes: []*catalog.Index{
			{Name: "JH_EMP", Cols: []int{0}},
			{Name: "JH_START", Cols: []int{3}},
		},
	})
	sales := mustCreate(db, &catalog.Table{
		Name: "SALES",
		Cols: []catalog.Column{
			{Name: "SALE_ID", Type: datum.KInt},
			{Name: "EMP_ID", Type: datum.KInt},
			{Name: "DEPT_ID", Type: datum.KInt},
			{Name: "AMOUNT", Type: datum.KFloat},
			{Name: "COUNTRY_ID", Type: datum.KString},
			{Name: "STATE_ID", Type: datum.KString},
			{Name: "CITY_ID", Type: datum.KString},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "SALES_PK", Cols: []int{0}, Unique: true},
			{Name: "SALES_EMP", Cols: []int{1}},
			{Name: "SALES_DEPT", Cols: []int{2}},
		},
	})
	accounts := mustCreate(db, &catalog.Table{
		Name: "ACCOUNTS",
		Cols: []catalog.Column{
			{Name: "ACCT_ID", Type: datum.KString},
			{Name: "TIME", Type: datum.KInt},
			{Name: "BALANCE", Type: datum.KFloat},
			{Name: "CREATE_DATE", Type: datum.KString},
			{Name: "NOTES", Type: datum.KString},
		},
		Indexes: []*catalog.Index{
			{Name: "ACCT_ID_IX", Cols: []int{0}},
		},
	})

	for i := 0; i < sizes.Locations; i++ {
		locations.MustAppend(
			datum.NewInt(int64(i+1)),
			datum.NewString(fmt.Sprintf("city_%d", i+1)),
			datum.NewString(Countries[i%len(Countries)]),
		)
	}
	for i := 0; i < sizes.Departments; i++ {
		locations := int64(rng.Intn(max(sizes.Locations, 1)) + 1)
		departments.MustAppend(
			datum.NewInt(int64(i+1)),
			datum.NewString(fmt.Sprintf("dept_%d", i+1)),
			datum.NewInt(locations),
			datum.NewFloat(float64(rng.Intn(900000)+100000)),
		)
	}
	for i := 0; i < sizes.Jobs; i++ {
		jobs.MustAppend(
			datum.NewInt(int64(i+1)),
			datum.NewString(fmt.Sprintf("title_%d", i+1)),
			datum.NewFloat(float64(rng.Intn(5000)+2000)),
		)
	}
	for i := 0; i < sizes.Employees; i++ {
		dept := datum.NewInt(int64(rng.Intn(max(sizes.Departments, 1)) + 1))
		if rng.Intn(50) == 0 {
			dept = datum.Null // a few employees without a department
		}
		var mgr datum.Datum
		if i > 0 && rng.Intn(10) != 0 {
			mgr = datum.NewInt(int64(rng.Intn(i) + 1))
		}
		employees.MustAppend(
			datum.NewInt(int64(i+1)),
			datum.NewString(fmt.Sprintf("emp_%d", i+1)),
			dept,
			datum.NewFloat(float64(rng.Intn(10000)+1000)),
			mgr,
			datum.NewInt(int64(rng.Intn(max(sizes.Jobs, 1))+1)),
			randDate(rng, 1990, 2005),
		)
	}
	for i := 0; i < sizes.JobHistory; i++ {
		jobHistory.MustAppend(
			datum.NewInt(int64(rng.Intn(max(sizes.Employees, 1))+1)),
			datum.NewInt(int64(rng.Intn(max(sizes.Jobs, 1))+1)),
			datum.NewString(fmt.Sprintf("title_%d", rng.Intn(max(sizes.Jobs, 1))+1)),
			randDate(rng, 1995, 2004),
			datum.NewInt(int64(rng.Intn(max(sizes.Departments, 1))+1)),
		)
	}
	states := []string{"CA", "NY", "TX", "WA", "MA"}
	for i := 0; i < sizes.Sales; i++ {
		sales.MustAppend(
			datum.NewInt(int64(i+1)),
			datum.NewInt(int64(rng.Intn(max(sizes.Employees, 1))+1)),
			datum.NewInt(int64(rng.Intn(max(sizes.Departments, 1))+1)),
			datum.NewFloat(float64(rng.Intn(10000))/10),
			datum.NewString(Countries[rng.Intn(len(Countries))]),
			datum.NewString(states[rng.Intn(len(states))]),
			datum.NewString(fmt.Sprintf("city_%d", rng.Intn(40)+1)),
		)
	}
	for i := 0; i < sizes.Accounts; i++ {
		id := fmt.Sprintf("ACCT%03d", i%37)
		if i%37 == 0 {
			id = "ORCL"
		}
		accounts.MustAppend(
			datum.NewString(id),
			datum.NewInt(int64(i%24+1)),
			datum.NewFloat(float64(rng.Intn(100000))/100),
			randDate(rng, 2000, 2006),
			datum.NewString(fmt.Sprintf("note %d keyword%d", i, i%13)),
		)
	}

	db.Finalize()
	return db
}

func mustCreate(db *storage.DB, meta *catalog.Table) *storage.Table {
	t, err := db.CreateTable(meta)
	if err != nil {
		panic(err)
	}
	return t
}

func randDate(rng *rand.Rand, yearLo, yearHi int) datum.Datum {
	y := yearLo + rng.Intn(yearHi-yearLo+1)
	m := rng.Intn(12) + 1
	d := rng.Intn(28) + 1
	return datum.NewString(fmt.Sprintf("%04d%02d%02d", y, m, d))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
