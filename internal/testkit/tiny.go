package testkit

import (
	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/storage"
)

// TinyDB builds a minimal hand-checkable database used by transformation
// equivalence tests. It deliberately includes NULLs in join columns so
// null-sensitive transformations (NOT IN, set operators) are exercised.
//
//	DEPT: (10, eng, 1), (20, ops, 2), (30, hr, 1), (40, empty, NULL)
//	EMP:  6 rows; fay has a NULL dept_id, ann a NULL mgr_id
//	PROJ: projects with dept_id and budgets (dept 10 has two, 20 one)
func TinyDB() *storage.DB {
	cat := catalog.New()
	db := storage.NewDB(cat)

	dept, err := db.CreateTable(&catalog.Table{
		Name: "DEPT",
		Cols: []catalog.Column{
			{Name: "DEPT_ID", Type: datum.KInt},
			{Name: "NAME", Type: datum.KString},
			{Name: "LOC_ID", Type: datum.KInt, Nullable: true},
		},
		PrimaryKey: []int{0},
		Indexes:    []*catalog.Index{{Name: "DEPT_PK", Cols: []int{0}, Unique: true}},
	})
	if err != nil {
		panic(err)
	}
	emp, err := db.CreateTable(&catalog.Table{
		Name: "EMP",
		Cols: []catalog.Column{
			{Name: "EMP_ID", Type: datum.KInt},
			{Name: "NAME", Type: datum.KString},
			{Name: "DEPT_ID", Type: datum.KInt, Nullable: true},
			{Name: "SALARY", Type: datum.KFloat},
			{Name: "MGR_ID", Type: datum.KInt, Nullable: true},
		},
		PrimaryKey: []int{0},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []int{2}, RefTable: "DEPT", RefCols: []int{0}},
		},
		Indexes: []*catalog.Index{
			{Name: "EMP_PK", Cols: []int{0}, Unique: true},
			{Name: "EMP_DEPT", Cols: []int{2}},
		},
	})
	if err != nil {
		panic(err)
	}
	proj, err := db.CreateTable(&catalog.Table{
		Name: "PROJ",
		Cols: []catalog.Column{
			{Name: "PROJ_ID", Type: datum.KInt},
			{Name: "DEPT_ID", Type: datum.KInt, Nullable: true},
			{Name: "BUDGET", Type: datum.KFloat},
			{Name: "PNAME", Type: datum.KString},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "PROJ_PK", Cols: []int{0}, Unique: true},
			{Name: "PROJ_DEPT", Cols: []int{1}},
		},
	})
	if err != nil {
		panic(err)
	}

	d := func(vals ...interface{}) []datum.Datum {
		out := make([]datum.Datum, len(vals))
		for i, v := range vals {
			switch x := v.(type) {
			case nil:
				out[i] = datum.Null
			case int:
				out[i] = datum.NewInt(int64(x))
			case float64:
				out[i] = datum.NewFloat(x)
			case string:
				out[i] = datum.NewString(x)
			}
		}
		return out
	}
	dept.MustAppend(d(10, "eng", 1)...)
	dept.MustAppend(d(20, "ops", 2)...)
	dept.MustAppend(d(30, "hr", 1)...)
	dept.MustAppend(d(40, "empty", nil)...)

	emp.MustAppend(d(1, "ann", 10, 100.0, nil)...)
	emp.MustAppend(d(2, "bob", 10, 200.0, 1)...)
	emp.MustAppend(d(3, "cal", 20, 300.0, 1)...)
	emp.MustAppend(d(4, "dee", 20, 50.0, 3)...)
	emp.MustAppend(d(5, "eli", 30, 250.0, 1)...)
	emp.MustAppend(d(6, "fay", nil, 150.0, 2)...)

	proj.MustAppend(d(100, 10, 1000.0, "alpha")...)
	proj.MustAppend(d(101, 10, 500.0, "beta")...)
	proj.MustAppend(d(102, 20, 800.0, "gamma")...)
	proj.MustAppend(d(103, nil, 300.0, "orphan")...)

	db.Finalize()
	return db
}
