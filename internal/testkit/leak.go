package testkit

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakWait bounds how long LeakCheck waits for goroutines to drain before
// failing: servers, relays and clients shut down asynchronously, so a
// just-finished test legitimately has goroutines mid-exit.
const leakWait = 5 * time.Second

// LeakCheck is the repository's hand-rolled goroutine-leak gate (a
// dependency-free goleak): call it at the top of a test and it registers a
// cleanup that fails the test if goroutines running this repository's code
// are still alive shortly after the test body returns. A session whose
// reader never exits, a chaos relay pinned by a blackholed connection, or
// a client that abandoned a handshake all show up here.
//
// Detection is by stack content: a goroutine counts as ours when its stack
// (including its "created by" frame) mentions a repro/ package. Runtime,
// testing and third-party helper goroutines are ignored, so the check is
// immune to the test framework's own background machinery.
func LeakCheck(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakWait)
		var leaked []string
		for {
			leaked = repoGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("testkit: %d goroutine(s) running repro code leaked past the test:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// repoGoroutines returns the stacks of live goroutines (other than the
// caller's) that are executing, or were created by, this repository's code.
func repoGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	stacks := strings.Split(string(buf[:n]), "\n\n")
	var out []string
	// stacks[0] is the calling goroutine — the leak checker itself.
	for _, s := range stacks[1:] {
		if strings.Contains(s, "repro/internal/") || strings.Contains(s, "repro/cmd/") {
			out = append(out, strings.TrimSpace(s))
		}
	}
	return out
}
