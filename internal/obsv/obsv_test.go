package obsv

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.hits")
	c.Inc()
	c.Add(4)
	if got := r.CounterValue("x.hits"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("absent"); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
	g := r.Gauge("x.level")
	g.Set(7)
	g.SetMax(3) // lower: ignored
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
	if r.Counter("x.hits") != c {
		t.Fatal("Counter must return the same instance per name")
	}
}

func TestNilRegistryAndMetricsAreInert(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(3)
	r.Histogram("c", 1, 2).Observe(1.5)
	if v := r.CounterValue("a"); v != 0 {
		t.Fatalf("nil registry counter = %d", v)
	}
	if d := r.Snapshot().Dump(); d != "" {
		t.Fatalf("nil registry dump = %q", d)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(i))
				r.Histogram("h", 10, 100).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("c"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count)
	}
	if h.Counts[0] != 8*11 { // observations <= 10: 0..10
		t.Fatalf("bucket le_10 = %d, want 88", h.Counts[0])
	}
}

func TestSnapshotSubAndDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Gauge("g").Set(5)
	pre := r.Snapshot()
	r.Counter("a").Add(7)
	r.Counter("b").Inc()
	r.Gauge("g").Set(9)
	d := r.Snapshot().Sub(pre)
	if d.Counters["a"] != 7 || d.Counters["b"] != 1 {
		t.Fatalf("delta counters = %v", d.Counters)
	}
	if d.Gauges["g"] != 9 { // gauges report their level, not a delta
		t.Fatalf("delta gauge = %d, want 9", d.Gauges["g"])
	}
	dump := d.Dump()
	want := "a 7\nb 1\ng 9"
	if dump != want {
		t.Fatalf("dump = %q, want %q", dump, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []SearchEvent{
		{Seq: 0, Ev: EvRule, Rule: "Unnest", Strategy: "exhaustive", Objects: 2},
		{Seq: 1, Ev: EvState, Rule: "Unnest", State: "00", Outcome: OutcomeCosted, Cost: 12.5, Blocks: 3},
		{Seq: 2, Ev: EvState, Rule: "Unnest", State: "10", Outcome: OutcomeCut},
	}
	text := MarshalJSONL(events)
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	var back []SearchEvent
	for _, l := range lines {
		var e SearchEvent
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("unmarshal %q: %v", l, err)
		}
		back = append(back, e)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", events, back)
	}
	// A cut state must not carry a cost field (no +Inf in JSON).
	if strings.Contains(lines[2], "cost") {
		t.Fatalf("cut state line carries a cost: %q", lines[2])
	}
}

// TestNormalizeCollapsesCutoffSplit is the determinism core: a sequential
// trace (every state costed against the full prefix minimum) and a parallel
// trace of the same search (some states costed that the sequential cut-off
// would have abandoned, because the worker's bound lagged) must normalize to
// the same stream.
func TestNormalizeCollapsesCutoffSplit(t *testing.T) {
	seq := []SearchEvent{
		{Ev: EvRule, Rule: "R", Strategy: "exhaustive", Objects: 2},
		{Ev: EvState, Rule: "R", State: "00", Outcome: OutcomeCosted, Cost: 100, Blocks: 4, ElapsedUS: 17},
		{Ev: EvState, Rule: "R", State: "10", Outcome: OutcomeCut},
		{Ev: EvState, Rule: "R", State: "01", Outcome: OutcomeCosted, Cost: 60, CacheHits: 2},
		{Ev: EvState, Rule: "R", State: "11", Outcome: OutcomeCut},
		{Ev: EvWinner, Rule: "R", State: "01", Outcome: WinnerApplied},
	}
	// The parallel run costed states 10 and 11 fully (its prefix bound had
	// not yet observed the cheaper states), with costs above the sequential
	// bound at their position.
	par := []SearchEvent{
		{Ev: EvRule, Rule: "R", Strategy: "exhaustive", Objects: 2},
		{Ev: EvState, Rule: "R", State: "00", Outcome: OutcomeCosted, Cost: 100, Blocks: 9},
		{Ev: EvState, Rule: "R", State: "10", Outcome: OutcomeCosted, Cost: 140},
		{Ev: EvState, Rule: "R", State: "01", Outcome: OutcomeCosted, Cost: 60},
		{Ev: EvState, Rule: "R", State: "11", Outcome: OutcomeCosted, Cost: 75, ElapsedUS: 3},
		{Ev: EvWinner, Rule: "R", State: "01", Outcome: WinnerApplied},
	}
	ns, np := Normalize(seq), Normalize(par)
	if MarshalJSONL(ns) != MarshalJSONL(np) {
		t.Fatalf("normalized traces differ:\n%s\nvs\n%s", MarshalJSONL(ns), MarshalJSONL(np))
	}
	if ns[2].Outcome != OutcomeCut || np[2].Outcome != OutcomeCut {
		t.Fatalf("state 10 should normalize to cut, got %q / %q", ns[2].Outcome, np[2].Outcome)
	}
	if ns[3].Outcome != OutcomeCosted || ns[3].Cost != 60 {
		t.Fatalf("state 01 should stay costed at 60, got %+v", ns[3])
	}
	for i, e := range np {
		if e.Seq != i {
			t.Fatalf("seq not dense: event %d has seq %d", i, e.Seq)
		}
		if e.ElapsedUS != 0 || e.Blocks != 0 || e.CacheHits != 0 {
			t.Fatalf("timings/counters not stripped: %+v", e)
		}
	}
}

func TestNormalizeResetsBoundPerRule(t *testing.T) {
	events := []SearchEvent{
		{Ev: EvRule, Rule: "A", Strategy: "exhaustive", Objects: 1},
		{Ev: EvState, Rule: "A", State: "0", Outcome: OutcomeCosted, Cost: 10},
		{Ev: EvRule, Rule: "B", Strategy: "exhaustive", Objects: 1},
		// Cost 50 > rule A's bound 10; must stay costed because the bound
		// resets at the rule boundary.
		{Ev: EvState, Rule: "B", State: "0", Outcome: OutcomeCosted, Cost: 50},
	}
	n := Normalize(events)
	if n[3].Outcome != OutcomeCosted || n[3].Cost != 50 {
		t.Fatalf("rule B baseline flipped: %+v", n[3])
	}
}

func TestNormalizeEqualCostKept(t *testing.T) {
	// The planner's cut-off condition is strictly-greater, so a state whose
	// cost equals the bound stays costed.
	events := []SearchEvent{
		{Ev: EvRule, Rule: "R", Strategy: "linear", Objects: 1},
		{Ev: EvState, Rule: "R", State: "0", Outcome: OutcomeCosted, Cost: 40},
		{Ev: EvState, Rule: "R", State: "1", Outcome: OutcomeCosted, Cost: 40},
	}
	n := Normalize(events)
	if n[2].Outcome != OutcomeCosted || n[2].Cost != 40 {
		t.Fatalf("equal-cost state flipped: %+v", n[2])
	}
}

func TestRenderTree(t *testing.T) {
	events := []SearchEvent{
		{Ev: EvHeuristics, Outcome: "ok"},
		{Ev: EvRule, Rule: "Unnest", Strategy: "exhaustive", Objects: 1},
		{Ev: EvState, Rule: "Unnest", State: "0", Outcome: OutcomeCosted, Cost: 12.5},
		{Ev: EvState, Rule: "Unnest", State: "1", Outcome: OutcomeCut},
		{Ev: EvWinner, Rule: "Unnest", State: "0", Outcome: WinnerUntransformed},
		{Ev: EvDegraded, Reason: "state-cap"},
	}
	got := RenderTree(events)
	for _, want := range []string{
		"rule Unnest  strategy=exhaustive objects=1",
		"state 0  costed cost=12.5",
		"state 1  cut",
		"winner 0  untransformed",
		"degraded  state-cap",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("tree missing %q:\n%s", want, got)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	want := []int64{2, 1, 1, 1} // <=1: {0.5,1}, <=10: {5}, <=100: {50}, inf: {500}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("buckets = %v, want %v", s.Counts, want)
	}
	if s.Sum != 556 {
		t.Fatalf("sum = %d, want 556", s.Sum)
	}
	if math.IsNaN(float64(s.Count)) || s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
}
