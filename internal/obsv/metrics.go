// Package obsv is the observability layer of the optimizer stack: a
// dependency-free metrics registry (counters, gauges, histograms, all
// atomic) shared by the cost-annotation cache, the fault-injection harness
// and the CBQT driver, plus the structured search-trace event stream the
// driver emits (trace.go) and the runtime counters EXPLAIN ANALYZE renders
// (package exec).
//
// The registry is deliberately minimal: metric names are flat dotted
// strings ("costcache.hits", "cbqt.states"), values are int64, and every
// accessor is safe for concurrent use. Snapshots are plain maps so callers
// can diff two snapshots to attribute work to one query or one experiment
// even when the registry is shared across many.
package obsv

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil *Counter is valid:
// it drops increments and reads as zero, so call sites need no guards.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric with a high-water convenience. The nil
// *Gauge is valid and inert, like the nil *Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n when n is larger (high-water tracking).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if n <= old || g.v.CompareAndSwap(old, n) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets: counts[i] is the number
// of observations <= Bounds[i], with one overflow bucket at the end. Sum
// and Count make averages available without a separate counter pair.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // sum of observations, rounded per observation
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v))
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    int64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a named collection of metrics. Metrics are created on first
// use and live for the registry's lifetime. The nil *Registry is valid:
// every lookup returns the inert nil metric, so optional instrumentation
// costs one nil check inside the metric itself.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (bounds are ignored when the histogram exists).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter without creating it.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue reads a gauge without creating it.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// Snapshot is a point-in-time copy of every metric value.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Sub returns the delta s - prev for counters and histogram counts; gauges
// keep their current value (a gauge is a level, not a flow). Metrics absent
// from prev are taken whole.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: append([]int64(nil), h.Counts...),
			Count:  h.Count,
			Sum:    h.Sum,
		}
		if p, ok := prev.Histograms[name]; ok && len(p.Counts) == len(d.Counts) {
			for i := range d.Counts {
				d.Counts[i] -= p.Counts[i]
			}
			d.Count -= p.Count
			d.Sum -= p.Sum
		}
		out.Histograms[name] = d
	}
	return out
}

// Dump renders the snapshot as sorted "name value" lines, histograms as
// "name count=N sum=S le_B=C ... le_inf=C".
func (s Snapshot) Dump() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s count=%d sum=%d", name, h.Count, h.Sum)
		for i, b := range h.Bounds {
			fmt.Fprintf(&sb, " le_%g=%d", b, h.Counts[i])
		}
		if n := len(h.Counts); n > 0 {
			fmt.Fprintf(&sb, " le_inf=%d", h.Counts[n-1])
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Dump renders the registry's current state (Snapshot().Dump()).
func (r *Registry) Dump() string { return r.Snapshot().Dump() }
