package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// The search-trace event kinds, in the order the CBQT driver emits them:
// one EvHeuristics for the imperative phase, then per rule an EvRule header,
// EvState per transformation state evaluated, and an EvWinner footer, with
// EvQuarantine and EvDegraded interleaved where failures and budget
// exhaustion occur.
const (
	EvHeuristics = "heuristics"
	EvRule       = "rule"
	EvState      = "state"
	EvWinner     = "winner"
	EvQuarantine = "quarantine"
	EvDegraded   = "degraded"
)

// The outcomes of one state evaluation (SearchEvent.Outcome on EvState).
// JSON cannot represent the +Inf cost of an abandoned state, so the outcome
// string carries the classification and Cost is present only for
// OutcomeCosted.
const (
	// OutcomeCosted: the state was fully costed; Cost holds the plan cost.
	OutcomeCosted = "costed"
	// OutcomeCut: abandoned by the §3.4.1 cost cut-off.
	OutcomeCut = "cut"
	// OutcomeInfeasible: the transformation did not apply (or the state
	// exceeded the depth budget; Reason distinguishes).
	OutcomeInfeasible = "infeasible"
	// OutcomeFault: an injected or recovered failure absorbed the state.
	OutcomeFault = "fault"
	// OutcomeBudget: the wall-clock budget expired inside the evaluation.
	OutcomeBudget = "budget"
)

// Winner outcomes (SearchEvent.Outcome on EvWinner).
const (
	// WinnerApplied: a non-zero state won and its directives were applied.
	WinnerApplied = "applied"
	// WinnerUntransformed: the zero state won; the query is unchanged.
	WinnerUntransformed = "untransformed"
	// WinnerRolledBack: applying the winner failed; the tree was restored
	// and the rule quarantined.
	WinnerRolledBack = "rolled-back"
)

// SearchEvent is one record of the structured CBQT search trace. Events are
// merged into Stats in state enumeration order (never completion order), so
// the stream's ordering is identical at every parallelism level; Normalize
// removes the remaining run-dependent content (timings, work counters, and
// the cost-cut-off's scheduling-dependent costed/cut split).
type SearchEvent struct {
	// Seq is the event's position in the stream — the per-state sequence
	// key that makes traces comparable across runs.
	Seq int `json:"seq"`
	// Ev is the event kind (Ev* constants).
	Ev string `json:"ev"`
	// Rule is the transformation under search.
	Rule string `json:"rule,omitempty"`
	// Strategy is the state-space search strategy (EvRule only).
	Strategy string `json:"strategy,omitempty"`
	// Objects is the transformation's object count (EvRule only).
	Objects int `json:"objects,omitempty"`
	// State is the mixed-radix state vector as a digit string.
	State string `json:"state,omitempty"`
	// Outcome classifies the event (Outcome* for EvState, Winner* for
	// EvWinner, "ok"/"fault" for EvHeuristics).
	Outcome string `json:"outcome,omitempty"`
	// Cost is the state's plan cost; present only when Outcome is
	// OutcomeCosted.
	Cost float64 `json:"cost,omitempty"`
	// Blocks and CacheHits count the physical-optimizer work of this state.
	// Scheduling-dependent under parallelism (cache warm-up order), so
	// Normalize strips them.
	Blocks    int `json:"blocks,omitempty"`
	CacheHits int `json:"cache_hits,omitempty"`
	// Reason carries detail: the degradation reason (EvDegraded), the
	// failure class (EvQuarantine, OutcomeFault), or the skip cause.
	Reason string `json:"reason,omitempty"`
	// ElapsedUS is the evaluation's wall-clock microseconds; stripped by
	// Normalize.
	ElapsedUS int64 `json:"us,omitempty"`
}

// WriteJSONL writes the events one JSON object per line.
func WriteJSONL(w io.Writer, events []SearchEvent) error {
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSONL renders the events as a JSONL string.
func MarshalJSONL(events []SearchEvent) string {
	var sb strings.Builder
	_ = WriteJSONL(&sb, events)
	return sb.String()
}

// Normalize canonicalizes a trace for comparison across runs and worker
// counts: timings and per-state work counters are stripped, sequence keys
// are reassigned densely, and the cost cut-off's run-dependent costed/cut
// split is collapsed.
//
// The collapse walks each rule's states in enumeration order maintaining m,
// the running minimum of the costs kept so far (the cut-off bound a
// sequential search would hold before each state). A state costed above m
// is rewritten to OutcomeCut: a sequential searcher would have abandoned
// it, and a parallel searcher only ever costs a superset of the sequential
// run's states (its per-state prefix bound is at least the sequential
// bound), so rewriting the surplus makes the two streams identical. States
// costed at or below m are kept and lower m exactly as the sequential
// cut-off would.
func Normalize(events []SearchEvent) []SearchEvent {
	out := make([]SearchEvent, 0, len(events))
	m := math.Inf(1)
	for _, e := range events {
		e.ElapsedUS = 0
		e.Blocks = 0
		e.CacheHits = 0
		switch e.Ev {
		case EvRule:
			m = math.Inf(1)
		case EvState:
			if e.Outcome == OutcomeCosted {
				if e.Cost > m {
					e.Outcome = OutcomeCut
					e.Cost = 0
				} else if e.Cost < m {
					m = e.Cost
				}
			}
		}
		e.Seq = len(out)
		out = append(out, e)
	}
	return out
}

// RenderTree renders the trace as a human-readable search tree, one line
// per event, states indented under their rule.
func RenderTree(events []SearchEvent) string {
	var sb strings.Builder
	sb.WriteString("search\n")
	for _, e := range events {
		switch e.Ev {
		case EvHeuristics:
			fmt.Fprintf(&sb, "├ heuristics  %s\n", e.Outcome)
		case EvRule:
			fmt.Fprintf(&sb, "├ rule %s  strategy=%s objects=%d\n", e.Rule, e.Strategy, e.Objects)
		case EvState:
			fmt.Fprintf(&sb, "│   state %s  %s", e.State, e.Outcome)
			if e.Outcome == OutcomeCosted {
				fmt.Fprintf(&sb, " cost=%.1f", e.Cost)
			}
			if e.Reason != "" {
				fmt.Fprintf(&sb, " (%s)", e.Reason)
			}
			if e.Blocks > 0 || e.CacheHits > 0 {
				fmt.Fprintf(&sb, "  blocks=%d hits=%d", e.Blocks, e.CacheHits)
			}
			if e.ElapsedUS > 0 {
				fmt.Fprintf(&sb, " us=%d", e.ElapsedUS)
			}
			sb.WriteString("\n")
		case EvWinner:
			fmt.Fprintf(&sb, "│   winner %s  %s\n", e.State, e.Outcome)
		case EvQuarantine:
			fmt.Fprintf(&sb, "├ quarantine %s  %s\n", e.Rule, e.Reason)
		case EvDegraded:
			fmt.Fprintf(&sb, "├ degraded  %s\n", e.Reason)
		default:
			fmt.Fprintf(&sb, "├ %s\n", e.Ev)
		}
	}
	return sb.String()
}
