package plancache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obsv"
)

func TestGetOrComputeHitMiss(t *testing.T) {
	reg := obsv.NewRegistry()
	c := New(64, reg)
	k := Key{SQL: "SELECT 1", Strategy: "auto", Version: 1}

	calls := 0
	v, shared, err := c.GetOrCompute(k, func() (any, error) { calls++; return "plan", nil })
	if err != nil || shared || v != "plan" {
		t.Fatalf("first lookup: v=%v shared=%v err=%v", v, shared, err)
	}
	v, shared, err = c.GetOrCompute(k, func() (any, error) { calls++; return "other", nil })
	if err != nil || !shared || v != "plan" {
		t.Fatalf("second lookup: v=%v shared=%v err=%v", v, shared, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if h := reg.CounterValue(MetricHits); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}
	if m := reg.CounterValue(MetricMisses); m != 1 {
		t.Fatalf("misses = %d, want 1", m)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(64, nil)
	k := Key{SQL: "SELECT broken", Strategy: "auto"}
	_, _, err := c.GetOrCompute(k, func() (any, error) { return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("expected error")
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached: len=%d", c.Len())
	}
	v, shared, err := c.GetOrCompute(k, func() (any, error) { return "ok", nil })
	if err != nil || shared || v != "ok" {
		t.Fatalf("retry after error: v=%v shared=%v err=%v", v, shared, err)
	}
}

// TestSingleflightCoalescing launches many goroutines missing on the same
// key; exactly one compute must run, the rest share its result.
func TestSingleflightCoalescing(t *testing.T) {
	reg := obsv.NewRegistry()
	c := New(64, reg)
	k := Key{SQL: "SELECT coalesce", Strategy: "auto"}

	var computes atomic.Int64
	gate := make(chan struct{})
	start := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 32
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _, err := c.GetOrCompute(k, func() (any, error) {
				computes.Add(1)
				<-gate // hold the flight open so everyone piles on
				return "plan", nil
			})
			if err != nil || v != "plan" {
				t.Errorf("v=%v err=%v", v, err)
			}
		}()
	}
	close(start)
	// Let the losers reach the waiting path, then release the computation.
	for reg.CounterValue(MetricCoalesced)+reg.CounterValue(MetricHits) < workers-1 {
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", n)
	}
	shared := reg.CounterValue(MetricCoalesced) + reg.CounterValue(MetricHits)
	if shared != workers-1 {
		t.Fatalf("coalesced+hits = %d, want %d", shared, workers-1)
	}
}

func TestBoundedSecondChanceEviction(t *testing.T) {
	reg := obsv.NewRegistry()
	const capacity = 32
	c := New(capacity, reg)
	for i := 0; i < 4*capacity; i++ {
		k := Key{SQL: fmt.Sprintf("SELECT %d", i), Strategy: "auto"}
		if _, _, err := c.GetOrCompute(k, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got > capacity {
		t.Fatalf("cache grew to %d entries, bound is %d", got, capacity)
	}
	if ev := reg.CounterValue(MetricEvictions); ev < 3*capacity-numShards {
		t.Fatalf("evictions = %d, want roughly %d", ev, 3*capacity)
	}
}

// TestSecondChancePrefersHotEntries verifies the clock keeps an entry that
// keeps getting hit while cold entries churn through its shard: with two
// slots, the cold slot cycles while the re-referenced hot entry survives.
func TestSecondChancePrefersHotEntries(t *testing.T) {
	c := New(2*numShards, nil) // two slots per shard
	hot := Key{SQL: "SELECT hot", Strategy: "auto"}
	c.GetOrCompute(hot, func() (any, error) { return "hot", nil })
	hotShard := c.shard(hot.String())
	for i, churned := 0, 0; churned < 64 && i < 10000; i++ {
		cold := Key{SQL: fmt.Sprintf("SELECT cold %d", i), Strategy: "auto"}
		if c.shard(cold.String()) != hotShard {
			continue // only keys contending for the hot entry's shard count
		}
		churned++
		c.GetOrCompute(cold, func() (any, error) { return i, nil })
		if _, ok := c.Get(hot); !ok {
			// Get re-arms the ref bit every round, so when the hand sweeps
			// past the hot slot it gets a second chance and the clock evicts
			// the unreferenced cold entry instead.
			t.Fatalf("hot entry evicted after %d cold inserts into its shard", churned)
		}
	}
}

func TestInvalidateDropsStaleVersions(t *testing.T) {
	reg := obsv.NewRegistry()
	c := New(64, reg)
	for i := 0; i < 8; i++ {
		c.GetOrCompute(Key{SQL: fmt.Sprintf("SELECT %d", i), Strategy: "auto", Version: 1},
			func() (any, error) { return i, nil })
	}
	c.GetOrCompute(Key{SQL: "SELECT fresh", Strategy: "auto", Version: 2},
		func() (any, error) { return "fresh", nil })

	if n := c.Invalidate(2); n != 8 {
		t.Fatalf("invalidated %d entries, want 8", n)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after invalidation, want 1", c.Len())
	}
	if iv := reg.CounterValue(MetricInvalidations); iv != 8 {
		t.Fatalf("invalidations counter = %d, want 8", iv)
	}
	// The stale key misses; the fresh one still hits.
	if _, ok := c.Get(Key{SQL: "SELECT 0", Strategy: "auto", Version: 1}); ok {
		t.Fatal("stale entry survived invalidation")
	}
	if _, ok := c.Get(Key{SQL: "SELECT fresh", Strategy: "auto", Version: 2}); !ok {
		t.Fatal("fresh entry was dropped")
	}
}

func TestKeyDimensionsAreDistinct(t *testing.T) {
	c := New(64, nil)
	base := Key{SQL: "SELECT 1", Strategy: "auto", Version: 1}
	c.GetOrCompute(base, func() (any, error) { return "a", nil })
	variants := []Key{
		{SQL: "SELECT 2", Strategy: "auto", Version: 1},
		{SQL: "SELECT 1", Strategy: "exhaustive", Version: 1},
		{SQL: "SELECT 1", Strategy: "auto", Version: 2},
	}
	for _, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %v unexpectedly hit the entry for %v", k, base)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ a, b string }{
		{"select * from emp", "SELECT  *  FROM emp"},
		{"SELECT a FROM t -- trailing comment\n", "select A from T"},
		{"SELECT a FROM t /* c */ WHERE x = :p", "select a from t where x = :P"},
		{"SELECT 'it''s' FROM t", "select   'it''s'   from t"},
	}
	for _, tc := range cases {
		if na, nb := Normalize(tc.a), Normalize(tc.b); na != nb {
			t.Errorf("Normalize(%q) = %q != Normalize(%q) = %q", tc.a, na, tc.b, nb)
		}
	}
	if Normalize("SELECT :a FROM t") == Normalize("SELECT ? FROM t") {
		t.Error("named and positional parameters must not normalize identically")
	}
	if Normalize("SELECT 1 FROM t") == Normalize("SELECT 2 FROM t") {
		t.Error("distinct literals must not normalize identically")
	}
}
