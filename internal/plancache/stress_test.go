package plancache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obsv"
)

// TestStressInvalidateDuringCoalescedLoads models ANALYZE churn on a busy
// server: many goroutines resolve a small set of query keys through
// GetOrCompute (so misses coalesce) while a churn goroutine bumps the
// catalog version and invalidates everything older, over and over. The
// invariants: every load returns the value computed for exactly its own
// key (no cross-version bleed), the entry count respects the bound and the
// shards stay internally consistent, and post-churn the cache still works.
func TestStressInvalidateDuringCoalescedLoads(t *testing.T) {
	reg := obsv.NewRegistry()
	const maxEntries = 64
	c := New(maxEntries, reg)

	const (
		workers    = 16
		iters      = 400
		sqls       = 24
		versionLag = 3 // readers run at most this many versions behind churn
	)
	var version atomic.Int64
	version.Store(1)
	var computes atomic.Int64

	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() { // the ANALYZE loop
		defer churnWG.Done()
		for {
			select {
			case <-stopChurn:
				return
			default:
			}
			v := version.Add(1)
			c.Invalidate(v) // drop every plan older than the new version
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Sessions read the version at plan time; the churner may
				// have moved on since, exactly like a real ANALYZE racing a
				// query's optimize span.
				v := version.Load() - int64(w%versionLag)
				if v < 1 {
					v = 1
				}
				k := Key{SQL: fmt.Sprintf("select %d", (w+i)%sqls), Strategy: "auto", Version: v}
				want := k.String()
				val, _, err := c.GetOrCompute(k, func() (any, error) {
					computes.Add(1)
					return want, nil
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if val != want {
					errs <- fmt.Errorf("worker %d iter %d: key %q resolved to %v (version bleed)", w, i, want, val)
					return
				}
				if got := c.Len(); got < 0 || got > maxEntries {
					errs <- fmt.Errorf("worker %d iter %d: Len() = %d outside [0, %d]", w, i, got, maxEntries)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopChurn)
	churnWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The churn must have actually collided with loads (otherwise this test
	// proves nothing): with invalidation racing, the same key is computed
	// far more often than the distinct-key count.
	if computes.Load() <= sqls {
		t.Fatalf("only %d computes for %d keys; churn never invalidated a live entry", computes.Load(), sqls)
	}
	if reg.CounterValue(MetricInvalidations) == 0 {
		t.Fatal("no invalidations recorded")
	}

	// Post-churn sanity: a settled cache hits like normal.
	k := Key{SQL: "select settled", Strategy: "auto", Version: version.Load()}
	if _, _, err := c.GetOrCompute(k, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, shared, err := c.GetOrCompute(k, func() (any, error) { return 2, nil }); err != nil || !shared {
		t.Fatalf("settled cache did not hit: shared=%v err=%v", shared, err)
	}
	if got, ok := c.Get(k); !ok || got != 1 {
		t.Fatalf("settled entry = %v (present %v), want the first computed value", got, ok)
	}
}
