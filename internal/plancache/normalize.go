package plancache

import (
	"strings"

	"repro/internal/sql"
)

// Normalize canonicalizes SQL text for use as a plan-cache key: comments
// and whitespace runs disappear, identifiers and keywords are upper-cased,
// string literals keep their exact value, and bind-parameter markers are
// preserved (":dept" and a positional "?" stay distinct). Two texts that
// tokenize identically therefore share a cache entry regardless of layout.
// Malformed SQL falls back to the trimmed raw text — it will miss the
// cache, reach the parser, and fail there with a proper error.
func Normalize(src string) string {
	toks, err := sql.LexAll(src)
	if err != nil {
		return strings.TrimSpace(src)
	}
	var sb strings.Builder
	for i, t := range toks {
		if t.Kind == sql.TokEOF {
			break
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch t.Kind {
		case sql.TokIdent:
			sb.WriteString(strings.ToUpper(t.Text))
		case sql.TokString:
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			sb.WriteByte('\'')
		case sql.TokParam:
			if t.Text == "" {
				sb.WriteByte('?')
			} else {
				sb.WriteByte(':')
				sb.WriteString(strings.ToUpper(t.Text))
			}
		default:
			sb.WriteString(t.Text)
		}
	}
	return sb.String()
}
