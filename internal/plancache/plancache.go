// Package plancache implements the shared plan cache that amortizes the
// cost of CBQT optimization across executions — the reproduction of the
// shared cursor cache the paper leans on to justify the optimizer's expense
// (§3: "the cost of optimization is amortized over many executions").
//
// The cache is sharded for concurrency, bounded with second-chance (clock)
// eviction, and coalesces concurrent misses for the same key through a
// per-key singleflight, so a burst of identical queries triggers exactly
// one optimizer run. Keys combine the normalized query text, the search
// strategy fingerprint, and the catalog's statistics/DDL version: ANALYZE
// or CREATE INDEX bumps the version, which both routes new lookups past
// stale plans and lets the cache sweep them out (counted as
// invalidations, distinct from capacity evictions).
//
// Hit/miss/eviction/invalidation/coalescing counters are published through
// an obsv.Registry under the "plancache." prefix.
package plancache

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
)

// Metric names published to the registry.
const (
	MetricHits          = "plancache.hits"
	MetricMisses        = "plancache.misses"
	MetricEvictions     = "plancache.evictions"
	MetricInvalidations = "plancache.invalidations"
	MetricCoalesced     = "plancache.coalesced"
	MetricEntries       = "plancache.entries"
)

// DefaultMaxEntries bounds the cache when the caller passes maxEntries <= 0.
const DefaultMaxEntries = 1024

const numShards = 16

// Key identifies one cached plan.
type Key struct {
	// SQL is the normalized query text (see Normalize).
	SQL string
	// Strategy fingerprints the optimizer configuration (search strategy,
	// budget class, rule modes): plans chosen under different options are
	// distinct cache entries.
	Strategy string
	// Version is the catalog statistics/DDL version the plan was (or will
	// be) optimized under.
	Version int64
}

// String renders the key as the canonical cache-map key.
func (k Key) String() string {
	return fmt.Sprintf("v%d|%s|%s", k.Version, k.Strategy, k.SQL)
}

// entry is one cached plan with its clock-algorithm reference bit.
type entry struct {
	key  Key
	val  any
	slot int  // position in the shard's clock ring
	ref  bool // second-chance bit, set on every hit
}

// call is an in-flight singleflight computation.
type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	ring    []*entry // clock ring, fixed capacity; nil slots are free
	hand    int
	calls   map[string]*call
}

// Cache is a sharded, bounded, concurrency-safe plan cache.
type Cache struct {
	shards   [numShards]shard
	perShard int
	count    atomic.Int64

	hits          *obsv.Counter
	misses        *obsv.Counter
	evictions     *obsv.Counter
	invalidations *obsv.Counter
	coalesced     *obsv.Counter
	entries       *obsv.Gauge
}

// New creates a cache bounded to maxEntries plans (DefaultMaxEntries when
// <= 0), publishing its counters to reg (which may be nil).
func New(maxEntries int, reg *obsv.Registry) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	per := (maxEntries + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &Cache{
		perShard:      per,
		hits:          reg.Counter(MetricHits),
		misses:        reg.Counter(MetricMisses),
		evictions:     reg.Counter(MetricEvictions),
		invalidations: reg.Counter(MetricInvalidations),
		coalesced:     reg.Counter(MetricCoalesced),
		entries:       reg.Gauge(MetricEntries),
	}
	for i := range c.shards {
		c.shards[i] = shard{
			entries: map[string]*entry{},
			ring:    make([]*entry, per),
			calls:   map[string]*call{},
		}
	}
	return c
}

func (c *Cache) shard(ks string) *shard {
	h := fnv.New32a()
	h.Write([]byte(ks))
	return &c.shards[h.Sum32()%numShards]
}

// Get returns the cached value for k, if present, marking it recently used.
func (c *Cache) Get(k Key) (any, bool) {
	ks := k.String()
	s := c.shard(ks)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[ks]; ok {
		e.ref = true
		c.hits.Inc()
		return e.val, true
	}
	c.misses.Inc()
	return nil, false
}

// GetOrCompute returns the cached value for k, computing and caching it on
// a miss. Concurrent misses for the same key are coalesced: exactly one
// caller runs compute, the rest block and share its result (shared reports
// whether the value came from the cache or another caller's computation —
// i.e. whether this call avoided an optimizer run). Errors are returned to
// every waiter and are not cached.
func (c *Cache) GetOrCompute(k Key, compute func() (any, error)) (val any, shared bool, err error) {
	ks := k.String()
	s := c.shard(ks)

	s.mu.Lock()
	if e, ok := s.entries[ks]; ok {
		e.ref = true
		c.hits.Inc()
		s.mu.Unlock()
		return e.val, true, nil
	}
	if cl, ok := s.calls[ks]; ok {
		c.coalesced.Inc()
		s.mu.Unlock()
		cl.wg.Wait()
		return cl.val, true, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	s.calls[ks] = cl
	c.misses.Inc()
	s.mu.Unlock()

	cl.val, cl.err = compute()

	s.mu.Lock()
	delete(s.calls, ks)
	if cl.err == nil {
		c.insertLocked(s, &entry{key: k, val: cl.val})
	}
	s.mu.Unlock()
	cl.wg.Done()
	return cl.val, false, cl.err
}

// insertLocked places e into the shard, evicting by second chance when the
// ring is full. Caller holds s.mu.
func (c *Cache) insertLocked(s *shard, e *entry) {
	if old, ok := s.entries[e.key.String()]; ok {
		// A racing recompute of the same key: replace in place.
		old.val, old.ref = e.val, true
		return
	}
	for {
		v := s.ring[s.hand]
		if v == nil {
			break
		}
		if v.ref {
			v.ref = false
			s.hand = (s.hand + 1) % len(s.ring)
			continue
		}
		delete(s.entries, v.key.String())
		s.ring[s.hand] = nil
		c.evictions.Inc()
		c.count.Add(-1)
		break
	}
	e.slot = s.hand
	s.ring[s.hand] = e
	s.hand = (s.hand + 1) % len(s.ring)
	s.entries[e.key.String()] = e
	c.entries.Set(c.count.Add(1))
}

// Invalidate removes every entry whose key version is below version —
// plans optimized under statistics that ANALYZE or DDL has since replaced —
// and returns how many were dropped. Stale entries that are never swept
// are still harmless (new lookups carry the new version and miss), but
// sweeping frees their slots immediately.
func (c *Cache) Invalidate(version int64) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for ks, e := range s.entries {
			if e.key.Version < version {
				delete(s.entries, ks)
				s.ring[e.slot] = nil
				n++
			}
		}
		s.mu.Unlock()
	}
	c.invalidations.Add(int64(n))
	c.entries.Set(c.count.Add(int64(-n)))
	return n
}

// Len counts the cached entries across all shards.
func (c *Cache) Len() int { return int(c.count.Load()) }
