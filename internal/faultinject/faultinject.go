// Package faultinject is a deterministic fault-injection harness for
// robustness testing of the optimize path. A Set holds a schedule of faults,
// each bound to a named site; code under test calls Fire(site) at its
// injection points and the schedule decides whether to panic, return an
// error, or sleep. Hit counting is per site and protected by a mutex, so a
// schedule like "panic on every application of rule X" is deterministic at
// any worker count: the decision depends only on the site name, never on
// goroutine scheduling.
//
// Sites used by the optimizer stack:
//
//	state:<rule>   start of one transformation-state evaluation (cbqt)
//	apply:<rule>   one object application of a transformation (cbqt)
//	heuristics     one imperative heuristic pass (cbqt)
//	cache:get      cost-annotation cache lookup (optimizer.CostCache)
//	cache:put      cost-annotation cache store (optimizer.CostCache)
//
// A fault site pattern is either an exact site name or a prefix ending in
// '*' ("apply:*" matches every transformation application).
package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obsv"
)

// Kind selects what a fault does when it fires.
type Kind int

// The fault kinds.
const (
	// KindPanic panics with a recognizable message.
	KindPanic Kind = iota
	// KindError returns an error wrapping ErrInjected.
	KindError
	// KindDelay sleeps for the fault's Delay, then succeeds.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the sentinel wrapped by every KindError fault, so callers
// and tests can distinguish injected failures from genuine ones.
var ErrInjected = errors.New("faultinject: injected error")

// Fault is one scheduled fault.
type Fault struct {
	// Site is an exact site name, or a prefix pattern ending in '*'.
	Site string
	Kind Kind
	// Hit fires the fault only on the n-th hit (1-based) of the site;
	// 0 fires on every hit.
	Hit int
	// Delay is the sleep duration for KindDelay faults.
	Delay time.Duration
}

func (f Fault) matches(site string, hit int) bool {
	if f.Hit != 0 && f.Hit != hit {
		return false
	}
	if strings.HasSuffix(f.Site, "*") {
		return strings.HasPrefix(site, strings.TrimSuffix(f.Site, "*"))
	}
	return f.Site == site
}

// Event records one fault that fired, for test assertions.
type Event struct {
	Site string
	Hit  int
	Kind Kind
}

// The metric names a Set publishes when Metrics is set.
const (
	// MetricHits counts every Fire call, matching a fault or not.
	MetricHits = "faultinject.hits"
	// MetricFired counts faults that actually fired.
	MetricFired = "faultinject.fired"
	// MetricSitePrefix prefixes the per-site fired counters
	// ("faultinject.site.state:UnnestSubquery").
	MetricSitePrefix = "faultinject.site."
)

// Set is a schedule of faults with per-site hit counters. The zero Set and
// the nil *Set are valid and never fire. Safe for concurrent use.
type Set struct {
	// Metrics, when non-nil, receives the faultinject.* counters. Set it
	// before the schedule is shared with other goroutines.
	Metrics *obsv.Registry

	mu     sync.Mutex
	faults []Fault
	hits   map[string]int
	events []Event
}

// New builds a schedule from explicit faults.
func New(faults ...Fault) *Set {
	return &Set{faults: faults, hits: map[string]int{}}
}

// Parse builds a schedule from a comma-separated spec, the grammar of the
// cbqt CLI's -faults flag:
//
//	kind@site[#n]
//
// where kind is "panic", "error", or "delay(duration)", site is a site name
// or prefix pattern, and #n restricts the fault to the n-th hit:
//
//	panic@apply:GroupByPlacement    panic on every GBP application
//	error@state:UnnestSubquery#3    fail the 3rd unnesting state evaluation
//	delay(2ms)@state:*              slow every state evaluation by 2ms
func Parse(spec string) (*Set, error) {
	s := New()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q: want kind@site", part)
		}
		var f Fault
		switch {
		case kindStr == "panic":
			f.Kind = KindPanic
		case kindStr == "error":
			f.Kind = KindError
		case strings.HasPrefix(kindStr, "delay(") && strings.HasSuffix(kindStr, ")"):
			d, err := time.ParseDuration(kindStr[len("delay(") : len(kindStr)-1])
			if err != nil {
				return nil, fmt.Errorf("faultinject: %q: bad delay: %v", part, err)
			}
			f.Kind, f.Delay = KindDelay, d
		default:
			return nil, fmt.Errorf("faultinject: %q: unknown kind %q", part, kindStr)
		}
		site := rest
		if at := strings.LastIndex(rest, "#"); at >= 0 {
			n := 0
			if _, err := fmt.Sscanf(rest[at+1:], "%d", &n); err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: %q: bad hit number %q", part, rest[at+1:])
			}
			site, f.Hit = rest[:at], n
		}
		if site == "" {
			return nil, fmt.Errorf("faultinject: %q: empty site", part)
		}
		f.Site = site
		s.faults = append(s.faults, f)
	}
	return s, nil
}

// Fire records a hit of the site and applies the first matching fault:
// KindPanic panics, KindError returns an error wrapping ErrInjected,
// KindDelay sleeps and returns nil. A nil Set, and a site with no matching
// fault, return nil immediately.
func (s *Set) Fire(site string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.hits == nil {
		s.hits = map[string]int{}
	}
	s.hits[site]++
	hit := s.hits[site]
	var fired *Fault
	for i := range s.faults {
		if s.faults[i].matches(site, hit) {
			fired = &s.faults[i]
			break
		}
	}
	if fired != nil {
		s.events = append(s.events, Event{Site: site, Hit: hit, Kind: fired.Kind})
	}
	s.mu.Unlock()
	s.Metrics.Counter(MetricHits).Inc()
	if fired == nil {
		return nil
	}
	s.Metrics.Counter(MetricFired).Inc()
	s.Metrics.Counter(MetricSitePrefix + site).Inc()
	switch fired.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", site, hit))
	case KindError:
		return fmt.Errorf("%w at %s (hit %d)", ErrInjected, site, hit)
	case KindDelay:
		time.Sleep(fired.Delay)
	}
	return nil
}

// Hits reports how many times the site has fired Fire (matching or not).
func (s *Set) Hits(site string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[site]
}

// Events returns the faults that actually fired, in firing order.
func (s *Set) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
