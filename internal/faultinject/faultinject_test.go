package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSetNeverFires(t *testing.T) {
	var s *Set
	if err := s.Fire("anything"); err != nil {
		t.Fatalf("nil set fired: %v", err)
	}
	if s.Hits("anything") != 0 || s.Events() != nil {
		t.Fatal("nil set recorded state")
	}
}

func TestErrorFault(t *testing.T) {
	s := New(Fault{Site: "state:Unnest", Kind: KindError})
	err := s.Fire("state:Unnest")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if err := s.Fire("state:Other"); err != nil {
		t.Fatalf("unmatched site fired: %v", err)
	}
	if got := len(s.Events()); got != 1 {
		t.Fatalf("want 1 event, got %d", got)
	}
}

func TestPanicFault(t *testing.T) {
	s := New(Fault{Site: "apply:GBP", Kind: KindPanic})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(p.(string), "injected panic at apply:GBP") {
			t.Fatalf("unexpected panic payload %v", p)
		}
	}()
	s.Fire("apply:GBP")
}

func TestHitTargeting(t *testing.T) {
	s := New(Fault{Site: "state:X", Kind: KindError, Hit: 3})
	for i := 1; i <= 5; i++ {
		err := s.Fire("state:X")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
	}
	if s.Hits("state:X") != 5 {
		t.Fatalf("want 5 hits, got %d", s.Hits("state:X"))
	}
}

func TestWildcardPrefix(t *testing.T) {
	s := New(Fault{Site: "apply:*", Kind: KindError})
	if err := s.Fire("apply:UnnestSubquery"); !errors.Is(err, ErrInjected) {
		t.Fatalf("wildcard did not match: %v", err)
	}
	if err := s.Fire("state:UnnestSubquery"); err != nil {
		t.Fatalf("wildcard over-matched: %v", err)
	}
}

func TestDelayFault(t *testing.T) {
	s := New(Fault{Site: "state:X", Kind: KindDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := s.Fire("state:X"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay fault slept only %v", d)
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("panic@apply:GBP, error@state:Unnest#3, delay(2ms)@state:*")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.faults) != 3 {
		t.Fatalf("want 3 faults, got %d", len(s.faults))
	}
	want := []Fault{
		{Site: "apply:GBP", Kind: KindPanic},
		{Site: "state:Unnest", Kind: KindError, Hit: 3},
		{Site: "state:*", Kind: KindDelay, Delay: 2 * time.Millisecond},
	}
	for i, f := range want {
		if s.faults[i] != f {
			t.Errorf("fault %d: got %+v want %+v", i, s.faults[i], f)
		}
	}
	for _, bad := range []string{"panic", "boom@x", "panic@", "error@x#0", "delay(zz)@x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestConcurrentHitCounting(t *testing.T) {
	s := New(Fault{Site: "state:X", Kind: KindError, Hit: 64})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Fire("state:X"); err != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("hit-targeted fault fired %d times, want exactly 1", fired)
	}
	if s.Hits("state:X") != 800 {
		t.Fatalf("want 800 hits, got %d", s.Hits("state:X"))
	}
}
