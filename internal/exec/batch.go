package exec

import (
	"repro/internal/datum"
	"repro/internal/obsv"
	"repro/internal/storage"
)

// DefaultBatchSize is the number of rows a batch operator aims to carry per
// NextBatch call. 1024 keeps a batch's column vectors comfortably inside
// the L2 cache for the schema widths this engine sees while amortizing the
// per-call overhead (interface dispatch, context polling, instrumentation)
// over a thousand rows.
const DefaultBatchSize = 1024

// Options configures one execution.
type Options struct {
	// RowExec selects the legacy row-at-a-time volcano engine instead of
	// the vectorized batch engine. The two engines are semantically
	// identical (TestDifferentialVectorized holds them to that); the row
	// path is kept as the differential baseline and as the compatibility
	// path for operators that have not been vectorized.
	RowExec bool
	// BatchSize overrides DefaultBatchSize (0 = default). Tests use sizes
	// around 1 and 1024 to exercise batch-boundary behavior.
	BatchSize int
	// Metrics, when non-nil, receives the engine's batch counters after
	// the run: exec.batch.rows (logical rows carried by batches),
	// exec.batch.batches (batches produced) and the exec.batch.selectivity
	// histogram (per-batch percentage of rows surviving a filter).
	Metrics *obsv.Registry
	// Snap pins the execution to an existing storage snapshot (e.g. a DML
	// statement reading and writing under one view). When nil, the run
	// acquires its own snapshot, so every statement executes against a
	// consistent multi-table view regardless.
	Snap *storage.Snapshot
}

// Batch is a column-oriented slice of rows flowing between batch operators:
// Cols[c][r] is column c of physical row r, with N physical rows. Sel, when
// non-nil, is the selection vector — the ascending physical indices of the
// rows that are logically present; a nil Sel means all N rows are live.
// Filters refine Sel instead of compacting the columns, so a predicate
// costs one index vector, not a copy of every column.
//
// Ownership: a batch returned by NextBatch is valid only until the next
// NextBatch or Close call on the same iterator. Operators reuse their
// output batch across calls, so consumers that buffer rows must copy them
// out (Batch.Row does).
type Batch struct {
	Cols [][]datum.Datum
	Sel  []int
	N    int
}

// Rows is the logical row count (selected rows).
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Live returns the physical index of the k-th live row.
func (b *Batch) Live(k int) int {
	if b.Sel != nil {
		return b.Sel[k]
	}
	return k
}

// Row materializes physical row r as a freshly allocated Row, safe to keep
// past the batch's lifetime.
func (b *Batch) Row(r int) Row {
	out := make(Row, len(b.Cols))
	for c := range b.Cols {
		out[c] = b.Cols[c][r]
	}
	return out
}

// gather copies physical row r into buf (len(buf) == len(b.Cols)).
func (b *Batch) gather(r int, buf Row) {
	for c := range b.Cols {
		buf[c] = b.Cols[c][r]
	}
}

// reset prepares the batch to carry up to capacity physical rows of the
// given width, reusing the column vectors from previous calls.
func (b *Batch) reset(width, capacity int) {
	if len(b.Cols) != width {
		b.Cols = make([][]datum.Datum, width)
	}
	for c := range b.Cols {
		if cap(b.Cols[c]) < capacity {
			b.Cols[c] = make([]datum.Datum, capacity)
		}
		b.Cols[c] = b.Cols[c][:capacity]
	}
	b.Sel = nil
	b.N = 0
}

// appendRow adds one dense row (physical == logical) to the batch. The
// batch must have been reset with enough capacity.
func (b *Batch) appendRow(r Row) {
	for c := range b.Cols {
		b.Cols[c][b.N] = r[c]
	}
	b.N++
}

// batchIterator is the vectorized operator interface: the volcano contract
// with batches instead of rows. NextBatch returns nil at end of input and
// never returns an empty batch.
type batchIterator interface {
	// Open prepares the iterator; outer supplies correlation bindings.
	Open(outer *Ctx) error
	// NextBatch returns the next batch of rows, or nil at end of input.
	NextBatch() (*Batch, error)
	Close() error
}

// RowIter adapts a batch subtree to the row-at-a-time iterator contract.
// It is the compatibility seam that lets operators migrate to batches
// incrementally: a not-yet-vectorized operator consumes its vectorized
// child through a RowIter and never sees a batch. Every Next materializes
// a fresh Row, so buffering consumers (sorts, joins, subquery caches) can
// keep the rows they are handed.
type RowIter struct {
	src batchIterator
	b   *Batch
	k   int
}

// NewRowIter wraps a batch iterator for row-at-a-time consumption.
func NewRowIter(src batchIterator) *RowIter { return &RowIter{src: src} }

func (it *RowIter) Open(outer *Ctx) error {
	it.b, it.k = nil, 0
	return it.src.Open(outer)
}

func (it *RowIter) Next() (Row, error) {
	for it.b == nil || it.k >= it.b.Rows() {
		b, err := it.src.NextBatch()
		if err != nil || b == nil {
			it.b = nil
			return nil, err
		}
		it.b, it.k = b, 0
	}
	r := it.b.Live(it.k)
	it.k++
	return it.b.Row(r), nil
}

func (it *RowIter) Close() error { return it.src.Close() }

// rowSourceIter adapts a row-at-a-time subtree to the batch contract by
// buffering up to batchSize rows per NextBatch. It carries operators that
// have not been vectorized (nested-loops and merge joins, window functions,
// set operations) through a batch plan.
type rowSourceIter struct {
	e     *env
	child iterator
	width int
	b     Batch
}

func (it *rowSourceIter) Open(outer *Ctx) error { return it.child.Open(outer) }

func (it *rowSourceIter) NextBatch() (*Batch, error) {
	if err := it.e.checkCancelBatch(); err != nil {
		return nil, err
	}
	it.b.reset(it.width, it.e.batchSize)
	for it.b.N < it.e.batchSize {
		r, err := it.child.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		it.b.appendRow(r)
	}
	if it.b.N == 0 {
		return nil, nil
	}
	it.e.noteBatch(&it.b)
	return &it.b, nil
}

func (it *rowSourceIter) Close() error { return it.child.Close() }

// memBytes forwards the wrapped operator's buffered footprint so EXPLAIN
// ANALYZE memory sampling survives the adapter.
func (it *rowSourceIter) memBytes() int64 {
	if m, ok := it.child.(memReporter); ok {
		return m.memBytes()
	}
	return 0
}
