package exec

import (
	"fmt"
	"sort"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// This file holds the vectorized counterparts of the row operators in
// iters.go. Each operator produces column-oriented batches (batch.go) and
// evaluates its expressions with the batched evaluator (exprvec.go);
// predicates refine the batch's selection vector instead of copying
// columns. The NextBatch contract: nil at end of input, never an empty
// batch, and the returned batch is valid only until the next call.

// batchSeqScanIter scans a heap table batch-wise: it fills column vectors
// straight from storage (appending the rowid column) and refines the
// selection vector with the scan filter.
type batchSeqScanIter struct {
	e     *env
	n     *optimizer.SeqScan
	tbl   *storage.Table
	pos   int
	width int
	bc    *batchCtx
	b     Batch
}

func newBatchSeqScan(e *env, n *optimizer.SeqScan) *batchSeqScanIter {
	return &batchSeqScanIter{e: e, n: n, tbl: e.table(n.Table.Name)}
}

func (it *batchSeqScanIter) Open(outer *Ctx) error {
	if it.tbl == nil {
		return fmt.Errorf("exec: table %s has no storage", it.n.Table.Name)
	}
	it.pos = 0
	it.width = len(it.n.Columns())
	it.bc = newBatchCtx(it.e, it.n.Columns(), outer)
	return nil
}

func (it *batchSeqScanIter) NextBatch() (*Batch, error) {
	for {
		if err := it.e.checkCancelBatch(); err != nil {
			return nil, err
		}
		if it.pos >= len(it.tbl.Rows) {
			return nil, nil
		}
		it.b.reset(it.width, it.e.batchSize)
		rowidCol := it.width - 1
		for it.b.N < it.e.batchSize && it.pos < len(it.tbl.Rows) {
			if !it.tbl.Visible(it.pos) {
				it.pos++
				continue
			}
			src := it.tbl.Rows[it.pos]
			for c := range src {
				it.b.Cols[c][it.b.N] = src[c]
			}
			it.b.Cols[rowidCol][it.b.N] = datum.NewInt(int64(it.pos))
			it.pos++
			it.b.N++
		}
		if it.b.N == 0 {
			continue // an all-dead tail; loop to the end-of-input return
		}
		if err := it.e.evalPredsBatch(it.n.Filter, &it.b, it.bc); err != nil {
			return nil, err
		}
		if it.b.Rows() == 0 {
			continue // filter rejected the whole batch; keep scanning
		}
		it.e.noteBatch(&it.b)
		return &it.b, nil
	}
}

func (it *batchSeqScanIter) Close() error { return nil }

// batchIndexScanIter probes or range-scans an index batch-wise.
type batchIndexScanIter struct {
	e     *env
	n     *optimizer.IndexScan
	tbl   *storage.Table
	match []int32
	pos   int
	width int
	bc    *batchCtx
	b     Batch
}

func newBatchIndexScan(e *env, n *optimizer.IndexScan) (*batchIndexScanIter, error) {
	tbl := e.table(n.Table.Name)
	if tbl == nil {
		return nil, fmt.Errorf("exec: table %s has no storage", n.Table.Name)
	}
	return &batchIndexScanIter{e: e, n: n, tbl: tbl}, nil
}

func (it *batchIndexScanIter) Open(outer *Ctx) error {
	it.pos = 0
	it.width = len(it.n.Columns())
	it.bc = newBatchCtx(it.e, it.n.Columns(), outer)
	match, err := indexMatches(it.e, it.n, it.tbl, outer)
	if err != nil {
		return err
	}
	it.match = match
	return nil
}

func (it *batchIndexScanIter) NextBatch() (*Batch, error) {
	for {
		if err := it.e.checkCancelBatch(); err != nil {
			return nil, err
		}
		if it.pos >= len(it.match) {
			return nil, nil
		}
		it.b.reset(it.width, it.e.batchSize)
		rowidCol := it.width - 1
		for it.b.N < it.e.batchSize && it.pos < len(it.match) {
			rowid := it.match[it.pos]
			src := it.tbl.Rows[rowid]
			for c := range src {
				it.b.Cols[c][it.b.N] = src[c]
			}
			it.b.Cols[rowidCol][it.b.N] = datum.NewInt(int64(rowid))
			it.pos++
			it.b.N++
		}
		if err := it.e.evalPredsBatch(it.n.Filter, &it.b, it.bc); err != nil {
			return nil, err
		}
		if it.b.Rows() == 0 {
			continue
		}
		it.e.noteBatch(&it.b)
		return &it.b, nil
	}
}

func (it *batchIndexScanIter) Close() error { return nil }

// batchFilterIter refines each child batch's selection vector through the
// filter predicates, forwarding only batches with surviving rows.
type batchFilterIter struct {
	e     *env
	n     *optimizer.Filter
	child batchIterator
	bc    *batchCtx
}

func newBatchFilter(e *env, n *optimizer.Filter, child batchIterator) *batchFilterIter {
	return &batchFilterIter{e: e, n: n, child: child}
}

func (it *batchFilterIter) Open(outer *Ctx) error {
	it.bc = newBatchCtx(it.e, it.n.Child.Columns(), outer)
	return it.child.Open(outer)
}

func (it *batchFilterIter) NextBatch() (*Batch, error) {
	for {
		b, err := it.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if err := it.e.evalPredsBatch(it.n.Preds, b, it.bc); err != nil {
			return nil, err
		}
		if b.Rows() > 0 {
			return b, nil
		}
	}
}

func (it *batchFilterIter) Close() error { return it.child.Close() }

// batchProjectIter evaluates the output expressions column-wise into its
// own batch, carrying the child's selection vector through unchanged.
type batchProjectIter struct {
	e     *env
	n     *optimizer.Project
	child batchIterator
	bc    *batchCtx
	out   Batch
}

func newBatchProject(e *env, n *optimizer.Project, child batchIterator) *batchProjectIter {
	return &batchProjectIter{e: e, n: n, child: child}
}

func (it *batchProjectIter) Open(outer *Ctx) error {
	it.bc = newBatchCtx(it.e, it.n.Child.Columns(), outer)
	return it.child.Open(outer)
}

func (it *batchProjectIter) NextBatch() (*Batch, error) {
	b, err := it.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	it.out.reset(len(it.n.Exprs), b.N)
	for i, ex := range it.n.Exprs {
		if err := it.e.evalExprBatch(ex, b, b.Sel, it.bc, it.out.Cols[i]); err != nil {
			return nil, err
		}
	}
	it.out.N = b.N
	it.out.Sel = b.Sel
	return &it.out, nil
}

func (it *batchProjectIter) Close() error { return it.child.Close() }

// batchSortIter materializes its input (copying rows out of the child's
// reused batches), sorts, and re-emits the rows in fresh batches.
type batchSortIter struct {
	e     *env
	n     *optimizer.Sort
	child batchIterator
	rows  []Row
	pos   int
	out   Batch
}

func newBatchSort(e *env, n *optimizer.Sort, child batchIterator) *batchSortIter {
	return &batchSortIter{e: e, n: n, child: child}
}

func (it *batchSortIter) Open(outer *Ctx) error {
	if err := it.child.Open(outer); err != nil {
		return err
	}
	it.rows = nil
	it.pos = 0
	bc := newBatchCtx(it.e, it.n.Child.Columns(), outer)
	var keys []Row
	keyVecs := make([][]datum.Datum, len(it.n.Keys))
	for {
		b, err := it.child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i, k := range it.n.Keys {
			keyVecs[i] = bc.getVec(b.N)
			if err := it.e.evalExprBatch(k, b, b.Sel, bc, keyVecs[i]); err != nil {
				return err
			}
		}
		for k := 0; k < b.Rows(); k++ {
			r := b.Live(k)
			kr := make(Row, len(it.n.Keys))
			for i := range it.n.Keys {
				kr[i] = keyVecs[i][r]
			}
			it.rows = append(it.rows, b.Row(r))
			keys = append(keys, kr)
		}
		for i := range keyVecs {
			bc.putVec(keyVecs[i])
		}
	}
	sortRowsByKeys(it.n, it.rows, keys)
	return nil
}

// sortRowsByKeys stably sorts rows by their precomputed key rows (permuted
// through an index indirection so rows and keys stay aligned).
func sortRowsByKeys(n *optimizer.Sort, rows []Row, keys []Row) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i := range n.Keys {
			c := nullsFirstCompare(ka[i], kb[i])
			if n.Desc[i] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	permuted := make([]Row, len(rows))
	for i, j := range idx {
		permuted[i] = rows[j]
	}
	copy(rows, permuted)
}

func (it *batchSortIter) NextBatch() (*Batch, error) {
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	width := len(it.n.Child.Columns())
	it.out.reset(width, it.e.batchSize)
	for it.out.N < it.e.batchSize && it.pos < len(it.rows) {
		it.out.appendRow(it.rows[it.pos])
		it.pos++
	}
	return &it.out, nil
}

func (it *batchSortIter) Close() error { return it.child.Close() }

// memBytes approximates the sorted materialization (same formula as the
// row engine's sortIter, so EXPLAIN ANALYZE mem= stays comparable).
func (it *batchSortIter) memBytes() int64 { return rowsBytes(it.rows) }

// batchLimitIter passes batches through until the row budget is spent,
// cutting the final batch mid-way by truncating its selection.
type batchLimitIter struct {
	child batchIterator
	n     int64
	seen  int64
}

func (it *batchLimitIter) Open(outer *Ctx) error {
	it.seen = 0
	return it.child.Open(outer)
}

func (it *batchLimitIter) NextBatch() (*Batch, error) {
	if it.seen >= it.n {
		return nil, nil
	}
	b, err := it.child.NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	remain := it.n - it.seen
	if int64(b.Rows()) <= remain {
		it.seen += int64(b.Rows())
		return b, nil
	}
	// ROWNUM cuts mid-batch: keep the first remain selected rows.
	if b.Sel != nil {
		b.Sel = b.Sel[:remain]
	} else {
		b.N = int(remain)
	}
	it.seen = it.n
	return b, nil
}

func (it *batchLimitIter) Close() error { return it.child.Close() }

// batchDistinctIter streams batches through, keeping only first
// occurrences by refining the selection vector against the seen-key set.
type batchDistinctIter struct {
	e       *env
	child   batchIterator
	seen    map[string]bool
	scratch Row
	sel     []int
}

func newBatchDistinct(e *env, child batchIterator) *batchDistinctIter {
	return &batchDistinctIter{e: e, child: child}
}

func (it *batchDistinctIter) Open(outer *Ctx) error {
	it.seen = map[string]bool{}
	return it.child.Open(outer)
}

func (it *batchDistinctIter) NextBatch() (*Batch, error) {
	for {
		b, err := it.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if cap(it.scratch) < len(b.Cols) {
			it.scratch = make(Row, len(b.Cols))
		}
		it.scratch = it.scratch[:len(b.Cols)]
		it.sel = it.sel[:0]
		for k := 0; k < b.Rows(); k++ {
			r := b.Live(k)
			b.gather(r, it.scratch)
			key := rowKey(it.scratch)
			if !it.seen[key] {
				it.seen[key] = true
				it.sel = append(it.sel, r)
			}
		}
		if len(it.sel) == 0 {
			continue
		}
		b.Sel = it.sel
		return b, nil
	}
}

func (it *batchDistinctIter) Close() error { return it.child.Close() }

// memBytes approximates the duplicate-elimination key set (same formula as
// the row engine's distinctIter).
func (it *batchDistinctIter) memBytes() int64 {
	var b int64
	for k := range it.seen {
		b += 48 + int64(len(k))
	}
	return b
}
