package exec_test

import (
	"context"
	"testing"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// benchDB is shared across engine benchmarks (building the medium dataset
// dominates otherwise).
var benchDB *storage.DB

func getBenchDB(b *testing.B) *storage.DB {
	if benchDB == nil {
		benchDB = testkit.NewDB(testkit.MediumSizes(), 1)
	}
	return benchDB
}

func benchEngines(b *testing.B, sql string) {
	db := getBenchDB(b)
	q := qtree.MustBind(sql, db.Catalog)
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, eng := range []struct {
		name string
		opts exec.Options
	}{{"row", exec.Options{RowExec: true}}, {"batch", exec.Options{}}} {
		b.Run(eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exec.RunWith(ctx, db, plan, eng.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineScanFilter(b *testing.B) {
	benchEngines(b, `SELECT e.emp_id, e.salary FROM employees e
	 WHERE e.salary > 2000 AND e.salary + 500 < 90000`)
}

func BenchmarkEngineHashJoin(b *testing.B) {
	benchEngines(b, `SELECT e.employee_name, d.department_name FROM employees e, departments d
	 WHERE e.dept_id = d.dept_id AND e.salary > 2000`)
}

func BenchmarkEngineJoinAgg(b *testing.B) {
	benchEngines(b, `SELECT d.department_name, COUNT(*), AVG(e.salary) FROM employees e, departments d
	 WHERE e.dept_id = d.dept_id GROUP BY d.department_name`)
}
