package exec

import (
	"strconv"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// maxPresize caps the hash-table pre-sizing taken from the optimizer's
// cardinality estimate, so a wildly wrong estimate cannot allocate an
// arbitrarily large empty table.
const maxPresize = 1 << 20

// batchHashJoinIter is the vectorized hash join. The build side (right
// input) is drained batch-wise into a hash table pre-sized from the
// optimizer's cardinality estimate for that subtree; probe keys are
// evaluated column-wise per left batch. Semijoin-family kinds refine the
// left batch's selection vector in place (their output schema is the left
// schema); inner and outer kinds assemble combined output batches, carrying
// probe state across NextBatch calls so one wide probe row can span several
// output batches. Null-key, residual-predicate and outer-padding semantics
// replicate the row engine's hashJoinIter exactly.
type batchHashJoinIter struct {
	e    *env
	n    *optimizer.Join
	l, r batchIterator

	combCtx *Ctx
	comb    Row // scratch combined row for residual On evaluation
	nLeft   int
	nRight  int

	table map[string][]int
	// Single-key fast path: when the join has exactly one non-null-safe
	// equi-key, integer-valued keys (KInt and integral KFloat, which
	// datum.Key groups together) hash as raw int64, skipping the per-row
	// key-string rendering on both sides. The first build key that is not
	// integer-valued demotes the whole table to the generic string form.
	intMode  bool
	intTable map[int64][]int
	// buildCols stores the build side columnar (buildCols[c][ri] is column
	// c of build row ri): one growing slice per column instead of one Row
	// allocation per build row.
	buildCols [][]datum.Datum
	// presenceOnly marks semijoin-family builds with no residual On
	// predicates: build columns are never read and a key's verdict depends
	// only on whether its bucket is non-empty, so the drain stores neither
	// columns nor duplicate bucket entries.
	presenceOnly bool
	nBuild       int
	buildMatched []bool
	buildNulls   bool

	bcL        *batchCtx
	scratchKey Row
	keyStr     []string // per physical probe row (generic path)
	keyInt     []int64  // per physical probe row (int fast path)
	keyIntOK   []bool   // probe key reduced to an int64
	keyNull    []bool

	// Probe continuation state (inner/outer kinds).
	cur        *Batch
	k          int // next live index in cur
	inRow      bool
	curRow     int // physical index of the probe row being expanded
	bucket     []int
	bucketPos  int
	rowMatched bool
	leftDone   bool
	done       bool
	tailPos    int
	out        Batch
	sel        []int // selection scratch for semijoin-family kinds
}

func newBatchHashJoin(e *env, n *optimizer.Join, l, r batchIterator) *batchHashJoinIter {
	return &batchHashJoinIter{e: e, n: n, l: l, r: r}
}

func (it *batchHashJoinIter) Open(outer *Ctx) error {
	it.nLeft = len(it.n.L.Columns())
	it.nRight = len(it.n.R.Columns())
	comb := append([]optimizer.ColID(nil), it.n.L.Columns()...)
	comb = append(comb, it.n.R.Columns()...)
	it.combCtx = &Ctx{parent: outer, cols: colMap(comb)}
	it.comb = make(Row, it.nLeft+it.nRight)
	it.scratchKey = make(Row, len(it.n.EqL))
	it.bcL = newBatchCtx(it.e, it.n.L.Columns(), outer)
	it.cur = nil
	it.k = 0
	it.inRow = false
	it.leftDone = false
	it.done = false
	it.tailPos = 0
	it.buildNulls = false
	it.buildMatched = nil

	// Pre-size the build structures from the optimizer's estimate: on a
	// well-estimated build side the table never rehashes during the drain.
	est := int(it.n.R.Cost().Rows)
	if est < 0 {
		est = 0
	}
	if est > maxPresize {
		est = maxPresize
	}
	it.intMode = len(it.n.EqR) == 1 && !it.n.NullSafe(0)
	if it.intMode {
		it.intTable = make(map[int64][]int, est)
		it.table = make(map[string][]int)
	} else {
		it.intTable = nil
		it.table = make(map[string][]int, est)
	}
	switch it.n.Kind {
	case qtree.JoinSemi, qtree.JoinAnti, qtree.JoinNullAwareAnti:
		it.presenceOnly = len(it.n.On) == 0
	default:
		it.presenceOnly = false
	}
	if it.presenceOnly {
		it.buildCols = nil
	} else {
		it.buildCols = make([][]datum.Datum, it.nRight)
		for c := range it.buildCols {
			it.buildCols[c] = make([]datum.Datum, 0, est)
		}
	}
	it.nBuild = 0

	if err := it.r.Open(outer); err != nil {
		return err
	}
	bcR := newBatchCtx(it.e, it.n.R.Columns(), outer)
	vecs := make([][]datum.Datum, len(it.n.EqR))
	key := make(Row, len(it.n.EqR))
	for {
		rb, err := it.r.NextBatch()
		if err != nil {
			return err
		}
		if rb == nil {
			break
		}
		for i, ex := range it.n.EqR {
			vecs[i] = bcR.getVec(rb.N)
			if err := it.e.evalExprBatch(ex, rb, rb.Sel, bcR, vecs[i]); err != nil {
				return err
			}
		}
		for k := 0; k < rb.Rows(); k++ {
			r := rb.Live(k)
			hasNull := false
			for i := range it.n.EqR {
				d := vecs[i][r]
				if d.IsNull() && !it.n.NullSafe(i) {
					hasNull = true
				}
				key[i] = d
			}
			idx := it.nBuild
			for c := range it.buildCols {
				it.buildCols[c] = append(it.buildCols[c], rb.Cols[c][r])
			}
			it.nBuild++ // counted even when presenceOnly: NOT IN needs the empty-set check
			if hasNull {
				// Null keys never match under plain equality; under a full
				// outer join the row still surfaces in the unmatched tail.
				it.buildNulls = true
				continue
			}
			it.insertBuild(key, idx)
		}
		for i := range vecs {
			bcR.putVec(vecs[i])
		}
	}
	if it.n.Kind == qtree.JoinFullOuter {
		it.buildMatched = make([]bool, it.nBuild)
	}
	return it.l.Open(outer)
}

// insertBuild adds build row idx under its join key, demoting from the
// int64 fast path to the generic string table on the first build key that
// is not integer-valued.
func (it *batchHashJoinIter) insertBuild(key Row, idx int) {
	if it.intMode {
		if v, ok := intJoinKey(key[0]); ok {
			bucket := it.intTable[v]
			if it.presenceOnly && len(bucket) > 0 {
				return
			}
			it.intTable[v] = append(bucket, idx)
			return
		}
		it.demote()
	}
	ks := rowKey(key)
	bucket := it.table[ks]
	if it.presenceOnly && len(bucket) > 0 {
		return
	}
	it.table[ks] = append(bucket, idx)
}

// demote rewrites the int64 table in the generic string form. The string
// key of an integer-valued datum is fully determined by its int64
// reduction (datum.Key normalizes integral floats onto the integer form),
// so the buckets move over verbatim.
func (it *batchHashJoinIter) demote() {
	for v, bucket := range it.intTable {
		it.table[intKeyString(v)] = bucket
	}
	it.intTable = nil
	it.intMode = false
}

// intKeyString renders the generic-table key that rowKey would produce for
// a single integer-valued datum.
func intKeyString(v int64) string {
	return "\x01" + strconv.FormatInt(v, 10) + "\x1f"
}

// intJoinKey reduces a datum to the int64 hash key shared by integers and
// integral floats, mirroring datum.Key's cross-kind grouping. Nulls,
// strings, bools and non-integral floats do not reduce.
func intJoinKey(d datum.Datum) (int64, bool) {
	switch d.Kind() {
	case datum.KInt:
		return d.Int(), true
	case datum.KFloat:
		f := d.Float()
		if i := int64(f); f == float64(i) {
			return i, true
		}
	}
	return 0, false
}

// prepKeys evaluates the probe-key expressions for a left batch column-wise
// and renders per-row hash keys and null flags.
func (it *batchHashJoinIter) prepKeys(b *Batch) error {
	if cap(it.keyNull) < b.N {
		it.keyStr = make([]string, b.N)
		it.keyInt = make([]int64, b.N)
		it.keyIntOK = make([]bool, b.N)
		it.keyNull = make([]bool, b.N)
	}
	it.keyStr = it.keyStr[:b.N]
	it.keyInt = it.keyInt[:b.N]
	it.keyIntOK = it.keyIntOK[:b.N]
	it.keyNull = it.keyNull[:b.N]
	vecs := make([][]datum.Datum, len(it.n.EqL))
	for i, ex := range it.n.EqL {
		vecs[i] = it.bcL.getVec(b.N)
		if err := it.e.evalExprBatch(ex, b, b.Sel, it.bcL, vecs[i]); err != nil {
			return err
		}
	}
	if it.intMode {
		vec := vecs[0] // intMode implies one non-null-safe key
		for k := 0; k < b.Rows(); k++ {
			r := b.Live(k)
			d := vec[r]
			if d.IsNull() {
				it.keyNull[r] = true
				continue
			}
			it.keyNull[r] = false
			it.keyInt[r], it.keyIntOK[r] = intJoinKey(d)
		}
	} else {
		for k := 0; k < b.Rows(); k++ {
			r := b.Live(k)
			hasNull := false
			for i := range it.n.EqL {
				d := vecs[i][r]
				if d.IsNull() && !it.n.NullSafe(i) {
					hasNull = true
				}
				it.scratchKey[i] = d
			}
			it.keyStr[r] = rowKey(it.scratchKey)
			it.keyNull[r] = hasNull
		}
	}
	for i := range vecs {
		it.bcL.putVec(vecs[i])
	}
	return nil
}

// bucketFor returns the build bucket for probe row r: nil when the key is
// null, and under the fast path also when the probe key is not
// integer-valued — such a key cannot equal anything in an all-integer
// build table.
func (it *batchHashJoinIter) bucketFor(r int) []int {
	if it.keyNull[r] {
		return nil
	}
	if it.intMode {
		if !it.keyIntOK[r] {
			return nil
		}
		return it.intTable[it.keyInt[r]]
	}
	return it.table[it.keyStr[r]]
}

// onMatch evaluates the residual join predicates for (probe row r, build
// row ri); with no residual predicates every bucket entry matches.
func (it *batchHashJoinIter) onMatch(b *Batch, r, ri int) (bool, error) {
	if len(it.n.On) == 0 {
		return true, nil
	}
	for c := 0; c < it.nLeft; c++ {
		it.comb[c] = b.Cols[c][r]
	}
	for c := 0; c < it.nRight; c++ {
		it.comb[it.nLeft+c] = it.buildCols[c][ri]
	}
	it.combCtx.row = it.comb
	return it.e.evalPreds(it.n.On, it.combCtx)
}

// anyMatch reports whether any build row in the key's bucket passes the
// residual predicates.
func (it *batchHashJoinIter) anyMatch(b *Batch, r int) (bool, error) {
	bucket := it.bucketFor(r)
	if len(it.n.On) == 0 {
		return len(bucket) > 0, nil
	}
	for _, ri := range bucket {
		ok, err := it.onMatch(b, r, ri)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (it *batchHashJoinIter) NextBatch() (*Batch, error) {
	if err := it.e.checkCancelBatch(); err != nil {
		return nil, err
	}
	switch it.n.Kind {
	case qtree.JoinSemi, qtree.JoinAnti, qtree.JoinNullAwareAnti:
		return it.nextFilterBatch()
	}
	return it.nextCombineBatch()
}

// nextFilterBatch handles the semijoin-family kinds by refining the left
// batch's selection to rows whose verdict is emit.
func (it *batchHashJoinIter) nextFilterBatch() (*Batch, error) {
	for {
		b, err := it.l.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if err := it.prepKeys(b); err != nil {
			return nil, err
		}
		it.sel = it.sel[:0]
		for k := 0; k < b.Rows(); k++ {
			r := b.Live(k)
			emit, err := it.verdict(b, r)
			if err != nil {
				return nil, err
			}
			if emit {
				it.sel = append(it.sel, r)
			}
		}
		if len(it.sel) > 0 {
			b.Sel = it.sel
			return b, nil
		}
	}
}

// verdict computes the semijoin/antijoin decision for one probe row,
// mirroring hashJoinIter's per-kind null handling.
func (it *batchHashJoinIter) verdict(b *Batch, r int) (bool, error) {
	hasNull := it.keyNull[r]
	switch it.n.Kind {
	case qtree.JoinSemi:
		if hasNull {
			return false, nil
		}
		return it.anyMatch(b, r)
	case qtree.JoinAnti:
		if hasNull {
			// Unknown comparison: NOT EXISTS-style anti keeps the row.
			return true, nil
		}
		ok, err := it.anyMatch(b, r)
		return !ok, err
	default: // JoinNullAwareAnti
		if it.nBuild == 0 {
			return true, nil // NOT IN over empty set is TRUE
		}
		if it.buildNulls || hasNull {
			return false, nil // UNKNOWN everywhere: row suppressed
		}
		ok, err := it.anyMatch(b, r)
		return !ok, err
	}
}

// emitComb appends probe row r combined with build row ri to the output.
func (it *batchHashJoinIter) emitComb(r, ri int) {
	for c := 0; c < it.nLeft; c++ {
		it.out.Cols[c][it.out.N] = it.cur.Cols[c][r]
	}
	for c := 0; c < it.nRight; c++ {
		it.out.Cols[it.nLeft+c][it.out.N] = it.buildCols[c][ri]
	}
	it.out.N++
}

// emitLeftPad appends probe row r padded with right NULLs (left/full outer).
func (it *batchHashJoinIter) emitLeftPad(r int) {
	for c := 0; c < it.nLeft; c++ {
		it.out.Cols[c][it.out.N] = it.cur.Cols[c][r]
	}
	for c := 0; c < it.nRight; c++ {
		it.out.Cols[it.nLeft+c][it.out.N] = datum.Null
	}
	it.out.N++
}

// emitRightPad appends unmatched build row ri padded with left NULLs (full
// outer tail).
func (it *batchHashJoinIter) emitRightPad(ri int) {
	for c := 0; c < it.nLeft; c++ {
		it.out.Cols[c][it.out.N] = datum.Null
	}
	for c := 0; c < it.nRight; c++ {
		it.out.Cols[it.nLeft+c][it.out.N] = it.buildCols[c][ri]
	}
	it.out.N++
}

// nextCombineBatch drives the inner/outer probe state machine until the
// output batch fills or input is exhausted.
func (it *batchHashJoinIter) nextCombineBatch() (*Batch, error) {
	if it.done {
		return nil, nil
	}
	outerPad := it.n.Kind == qtree.JoinLeftOuter || it.n.Kind == qtree.JoinFullOuter
	it.out.reset(it.nLeft+it.nRight, it.e.batchSize)
	for {
		if it.out.N == it.e.batchSize {
			return &it.out, nil
		}
		if it.leftDone {
			// Full outer tail: build rows that never matched.
			for it.tailPos < it.nBuild && it.out.N < it.e.batchSize {
				i := it.tailPos
				it.tailPos++
				if it.buildMatched[i] {
					continue
				}
				it.emitRightPad(i)
			}
			if it.tailPos >= it.nBuild {
				it.done = true
				return it.flush()
			}
			continue
		}
		if it.inRow {
			for it.bucketPos < len(it.bucket) && it.out.N < it.e.batchSize {
				ri := it.bucket[it.bucketPos]
				it.bucketPos++
				ok, err := it.onMatch(it.cur, it.curRow, ri)
				if err != nil {
					return nil, err
				}
				if ok {
					it.rowMatched = true
					if it.buildMatched != nil {
						it.buildMatched[ri] = true
					}
					it.emitComb(it.curRow, ri)
				}
			}
			if it.bucketPos < len(it.bucket) {
				return &it.out, nil // output full mid-bucket; resume here
			}
			if outerPad && !it.rowMatched {
				if it.out.N == it.e.batchSize {
					return &it.out, nil // resume with the padding next call
				}
				it.emitLeftPad(it.curRow)
			}
			it.inRow = false
			continue
		}
		if it.cur == nil || it.k >= it.cur.Rows() {
			b, err := it.l.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if it.n.Kind == qtree.JoinFullOuter {
					it.leftDone = true
					continue
				}
				it.done = true
				return it.flush()
			}
			if err := it.prepKeys(b); err != nil {
				return nil, err
			}
			it.cur = b
			it.k = 0
		}
		r := it.cur.Live(it.k)
		it.k++
		it.curRow = r
		it.bucket = it.bucketFor(r)
		it.bucketPos = 0
		it.rowMatched = false
		it.inRow = true
	}
}

// flush returns the partial output batch, or nil when it is empty.
func (it *batchHashJoinIter) flush() (*Batch, error) {
	if it.out.N > 0 {
		return &it.out, nil
	}
	return nil, nil
}

func (it *batchHashJoinIter) Close() error {
	it.l.Close()
	return it.r.Close()
}

// memBytes approximates the build side: rows plus hash-table buckets. The
// per-row term uses the row engine's rowBytes formula on the columnar
// store, so EXPLAIN ANALYZE mem= stays comparable across engines.
func (it *batchHashJoinIter) memBytes() int64 {
	var b int64
	if !it.presenceOnly {
		b = int64(it.nBuild) * (48 + 16*int64(it.nRight))
	}
	for k, bucket := range it.table {
		b += 48 + int64(len(k)) + 8*int64(len(bucket))
	}
	for _, bucket := range it.intTable {
		b += 48 + 8 + 8*int64(len(bucket))
	}
	return b
}
