package exec

import (
	"context"
	"fmt"
	"time"

	"repro/internal/optimizer"
	"repro/internal/storage"
)

// OpStats are the runtime counters of one plan operator under EXPLAIN
// ANALYZE: volcano calls, rows produced, cumulative wall time (inclusive of
// the operator's subtree, as the volcano interface nests the calls), and
// the high-water mark of the operator's buffered memory.
type OpStats struct {
	// Opens counts Open calls; above 1 means the operator was re-opened
	// per outer row (lateral or subquery re-execution).
	Opens int64
	// Nexts counts Next calls, including the final end-of-input call. On
	// the batch engine a vectorized operator's Nexts counts NextBatch calls,
	// so Nexts < Rows is normal there (see Batches).
	Nexts int64
	// Rows counts logical rows returned: the batch engine adds each batch's
	// selected row count, so Rows is engine-independent and comparable
	// between a batched and a row-at-a-time run of the same plan.
	Rows int64
	// Batches counts batches returned by a vectorized operator; 0 for
	// operators running row-at-a-time.
	Batches int64
	// Time is cumulative wall time inside Open and Next, inclusive of
	// children.
	Time time.Duration
	// MemPeakBytes approximates the largest buffered footprint observed for
	// blocking operators (hash build side, sort/window/aggregate/set-op
	// materializations, join caches); 0 for streaming operators.
	MemPeakBytes int64
}

// RunStats maps every executed plan operator to its runtime counters.
// Operators of the plan that never ran (e.g. a subplan pruned by caching)
// have no entry.
type RunStats struct {
	Ops map[optimizer.PlanNode]*OpStats
}

// memReporter is implemented by buffering iterators; memBytes approximates
// the bytes currently buffered. It is sampled after Open (when blocking
// operators have just materialized) and at Close (when per-row caches have
// finished growing), never per row.
type memReporter interface {
	memBytes() int64
}

// instrIter wraps an operator's iterator with counter updates. It is
// inserted by build only when the env carries a RunStats, so the normal
// execution path pays nothing.
type instrIter struct {
	child iterator
	st    *OpStats
}

func (it *instrIter) Open(outer *Ctx) error {
	start := time.Now()
	err := it.child.Open(outer)
	it.st.Time += time.Since(start)
	it.st.Opens++
	it.sampleMem()
	return err
}

func (it *instrIter) Next() (Row, error) {
	start := time.Now()
	r, err := it.child.Next()
	it.st.Time += time.Since(start)
	it.st.Nexts++
	if err == nil && r != nil {
		it.st.Rows++
	}
	return r, err
}

func (it *instrIter) Close() error {
	it.sampleMem()
	return it.child.Close()
}

func (it *instrIter) sampleMem() {
	if m, ok := it.child.(memReporter); ok {
		if b := m.memBytes(); b > it.st.MemPeakBytes {
			it.st.MemPeakBytes = b
		}
	}
}

// instrBatchIter is instrIter for vectorized operators: Nexts counts
// NextBatch calls, Rows counts the logical (selected) rows each batch
// carries, and Batches counts non-empty batches, so logical row accounting
// stays identical to the row engine's.
type instrBatchIter struct {
	child batchIterator
	st    *OpStats
}

func (it *instrBatchIter) Open(outer *Ctx) error {
	start := time.Now()
	err := it.child.Open(outer)
	it.st.Time += time.Since(start)
	it.st.Opens++
	it.sampleMem()
	return err
}

func (it *instrBatchIter) NextBatch() (*Batch, error) {
	start := time.Now()
	b, err := it.child.NextBatch()
	it.st.Time += time.Since(start)
	it.st.Nexts++
	if err == nil && b != nil {
		it.st.Batches++
		it.st.Rows += int64(b.Rows())
	}
	return b, err
}

func (it *instrBatchIter) Close() error {
	it.sampleMem()
	return it.child.Close()
}

func (it *instrBatchIter) sampleMem() {
	if m, ok := it.child.(memReporter); ok {
		if b := m.memBytes(); b > it.st.MemPeakBytes {
			it.st.MemPeakBytes = b
		}
	}
}

// rowBytes approximates the heap footprint of one row: slice header plus
// per-datum storage.
func rowBytes(r Row) int64 { return 48 + 16*int64(len(r)) }

// rowsBytes approximates the footprint of a row buffer.
func rowsBytes(rows []Row) int64 {
	var b int64
	for _, r := range rows {
		b += rowBytes(r)
	}
	return b
}

// RunAnalyze executes the plan like RunContext while collecting per-operator
// runtime counters; render them with ExplainAnalyze.
func RunAnalyze(ctx context.Context, db *storage.DB, plan *optimizer.Plan) (*Result, *RunStats, error) {
	return RunAnalyzeWith(ctx, db, plan, Options{})
}

// RunAnalyzeWith is RunAnalyze with explicit engine options; the row counts
// it collects are logical rows on either engine, so a batched and a RowExec
// run of the same plan report identical per-operator Rows.
func RunAnalyzeWith(ctx context.Context, db *storage.DB, plan *optimizer.Plan, opts Options) (*Result, *RunStats, error) {
	e := newEnv(ctx, db, plan)
	e.applyOptions(opts)
	e.analyze = &RunStats{Ops: map[optimizer.PlanNode]*OpStats{}}
	res, err := runEnv(e)
	return res, e.analyze, err
}

// ExplainAnalyze renders the plan tree with each operator's runtime counters
// appended to its cost line. withTime controls whether wall-clock times are
// included: golden snapshots disable it, interactive use enables it.
func ExplainAnalyze(p *optimizer.Plan, rs *RunStats, withTime bool) string {
	return optimizer.ExplainWith(p, func(n optimizer.PlanNode) string {
		st := rs.Ops[n]
		if st == nil {
			return "  (actual: not executed)"
		}
		s := fmt.Sprintf("  (actual rows=%d nexts=%d opens=%d", st.Rows, st.Nexts, st.Opens)
		if st.Batches > 0 {
			s += fmt.Sprintf(" batches=%d", st.Batches)
		}
		if st.MemPeakBytes > 0 {
			s += fmt.Sprintf(" mem=%s", fmtBytes(st.MemPeakBytes))
		}
		if withTime {
			s += fmt.Sprintf(" time=%s", st.Time.Round(time.Microsecond))
		}
		return s + ")"
	})
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
