package exec

import (
	"context"
	"fmt"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// DMLResult reports the outcome of one mutation statement.
type DMLResult struct {
	Kind qtree.DMLKind
	// Affected is the statement's row count: rows inserted, updated, or
	// deleted.
	Affected int
	// CommitTS is the commit timestamp the write received (unchanged
	// oracle reading when the statement affected no rows).
	CommitTS uint64
}

// RunDML executes a bound mutation statement. The locating/source query
// (readPlan, compiled from stmt.Read by the regular cost-based optimizer;
// nil for the INSERT ... VALUES form) runs through the ordinary engines
// against one snapshot; the mutations accumulate in a write batch that
// commits atomically at the end. Under snapshot isolation a concurrent
// commit that removed a targeted row surfaces as storage.ErrWriteConflict
// — the caller may re-run the statement, which re-reads under a fresh
// snapshot.
func RunDML(ctx context.Context, db *storage.DB, stmt *qtree.DMLStmt, readPlan *optimizer.Plan, params []datum.Datum, opts Options) (*DMLResult, error) {
	if opts.Snap == nil {
		opts.Snap = db.Snapshot()
	}
	if (stmt.Read == nil) != (readPlan == nil) {
		return nil, fmt.Errorf("exec: %s statement needs a read plan exactly when it has a read query", stmt.Kind)
	}
	batch := db.NewBatch()
	res := &DMLResult{Kind: stmt.Kind}
	table := stmt.Table.Name

	// mapRow spreads the produced values over a full-width table row, with
	// NULL for columns outside the target list (their nullability is
	// enforced by the write batch).
	mapRow := func(vals Row) []datum.Datum {
		out := make([]datum.Datum, len(stmt.Table.Cols))
		for i := range out {
			out[i] = datum.Null
		}
		for i, ord := range stmt.TargetCols {
			out[ord] = vals[i]
		}
		return out
	}

	switch stmt.Kind {
	case qtree.DMLInsert:
		if stmt.Read == nil {
			// VALUES form: scalar expressions over bind parameters only.
			// The env carries an empty plan, so a stray subquery fails
			// cleanly instead of finding a compiled subplan.
			e := newEnv(ctx, db, &optimizer.Plan{})
			e.applyOptions(opts)
			e.params = params
			for _, row := range stmt.Values {
				vals := make(Row, len(row))
				for i, x := range row {
					d, err := e.evalExpr(x, nil)
					if err != nil {
						return nil, err
					}
					vals[i] = d
				}
				if err := batch.Insert(table, mapRow(vals)); err != nil {
					return nil, err
				}
			}
		} else {
			r, err := RunParamsWith(ctx, db, readPlan, params, opts)
			if err != nil {
				return nil, err
			}
			for _, row := range r.Rows {
				if err := batch.Insert(table, mapRow(row[:len(stmt.TargetCols)])); err != nil {
					return nil, err
				}
			}
		}
		res.Affected = batch.Inserted()

	case qtree.DMLUpdate:
		view := opts.Snap.Table(table)
		if view == nil {
			return nil, fmt.Errorf("exec: table %s has no storage", table)
		}
		r, err := RunParamsWith(ctx, db, readPlan, params, opts)
		if err != nil {
			return nil, err
		}
		for _, row := range r.Rows {
			rid := int32(row[0].Int())
			newRow := append([]datum.Datum(nil), view.Rows[rid]...)
			for i, ord := range stmt.TargetCols {
				newRow[ord] = row[1+i]
			}
			if err := batch.Update(table, rid, newRow); err != nil {
				return nil, err
			}
		}
		res.Affected = batch.Deleted()

	case qtree.DMLDelete:
		r, err := RunParamsWith(ctx, db, readPlan, params, opts)
		if err != nil {
			return nil, err
		}
		for _, row := range r.Rows {
			if err := batch.Delete(table, int32(row[0].Int())); err != nil {
				return nil, err
			}
		}
		res.Affected = batch.Deleted()

	default:
		return nil, fmt.Errorf("exec: unknown DML kind %v", stmt.Kind)
	}

	ts, err := db.Commit(batch)
	if err != nil {
		return nil, err
	}
	res.CommitTS = ts
	return res, nil
}
