package exec

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// batchNLJoinIter is the vectorized nested-loops join for the dominant
// lateral shape: an index probe on the right re-opened per left row. The
// left side runs batched; the probe inlines the index lookup and filter so
// matching rows are copied from table storage straight into the output
// batch, skipping the row engine's per-row Row allocation and the
// materialized right-row cache. Probe results (post-filter rowids) are
// cached per distinct correlation value exactly like nlJoinIter's lateral
// cache, and the inlined IndexScan's EXPLAIN ANALYZE counters are kept
// by hand with the row engine's per-open accounting (a cache hit performs
// no open and counts nothing).
type batchNLJoinIter struct {
	e   *env
	n   *optimizer.Join
	l   batchIterator
	rn  *optimizer.IndexScan
	tbl *storage.Table

	leftCtx *Ctx
	selfCtx *Ctx // right-scan ctx for the probe filter (parent: leftCtx)
	combCtx *Ctx
	comb    Row // scratch: left row ++ right row; prefix doubles as leftCtx.row
	srcBuf  Row // scratch: right source row ++ rowid for the probe filter
	nLeft   int
	nRight  int

	cacheCols []optimizer.ColID
	cache     map[string][]int32
	keyBuf    Row
	cacheMem  int64

	// Probe continuation state, mirroring batchHashJoinIter.
	cur     *Batch
	k       int
	inRow   bool
	rowids  []int32
	pos     int
	matched bool
	done    bool
	out     Batch
}

// canBatchNLJoin reports whether the join runs on the vectorized
// nested-loops path: inner or left-outer kind with a lateral bare
// IndexScan right side. Other kinds (semi-family verdict caching, full
// outer right tails) and composite right subtrees stay on the row bridge.
func canBatchNLJoin(n *optimizer.Join) bool {
	if n.Kind != qtree.JoinInner && n.Kind != qtree.JoinLeftOuter {
		return false
	}
	if !n.RLateral {
		return false
	}
	_, ok := n.R.(*optimizer.IndexScan)
	return ok
}

func newBatchNLJoin(e *env, n *optimizer.Join, l batchIterator) (*batchNLJoinIter, error) {
	rn, ok := n.R.(*optimizer.IndexScan)
	if !ok {
		return nil, fmt.Errorf("exec: batch NL join requires an IndexScan right side, got %T", n.R)
	}
	tbl := e.table(rn.Table.Name)
	if tbl == nil {
		return nil, fmt.Errorf("exec: table %s has no storage", rn.Table.Name)
	}
	if e.analyze != nil {
		// The row build registers every node's counters at build time, so
		// an unprobed inner side still reports a zeroed entry; match that.
		e.opStats(rn)
	}
	return &batchNLJoinIter{e: e, n: n, l: l, rn: rn, tbl: tbl, cacheCols: leftRefCols(n)}, nil
}

func (it *batchNLJoinIter) Open(outer *Ctx) error {
	it.nLeft = len(it.n.L.Columns())
	it.nRight = len(it.n.R.Columns())
	it.leftCtx = &Ctx{parent: outer, cols: colMap(it.n.L.Columns())}
	it.selfCtx = &Ctx{parent: it.leftCtx, cols: colMap(it.n.R.Columns())}
	comb := append([]optimizer.ColID(nil), it.n.L.Columns()...)
	comb = append(comb, it.n.R.Columns()...)
	it.combCtx = &Ctx{parent: outer, cols: colMap(comb)}
	it.comb = make(Row, it.nLeft+it.nRight)
	it.srcBuf = make(Row, it.nRight)
	it.keyBuf = make(Row, len(it.cacheCols))
	it.cache = map[string][]int32{}
	it.cacheMem = 0
	it.cur = nil
	it.k = 0
	it.inRow = false
	it.done = false
	return it.l.Open(outer)
}

// leftKeyStr renders the lateral-cache key for the current left row
// (leftCtx.row must be bound), with nlJoinIter.leftKey's cacheability rule.
func (it *batchNLJoinIter) leftKeyStr() (string, bool) {
	if len(it.cacheCols) == 0 {
		return "", false
	}
	for i, id := range it.cacheCols {
		d, ok := it.leftCtx.lookup(id)
		if !ok {
			return "", false
		}
		it.keyBuf[i] = d
	}
	return rowKey(it.keyBuf), true
}

// probe runs one index lookup for the current left row and filters the
// candidates, charging the inlined IndexScan node the same opens/nexts/rows
// the row engine's materializing drain would.
func (it *batchNLJoinIter) probe() ([]int32, error) {
	var st *OpStats
	if it.e.analyze != nil {
		st = it.e.opStats(it.rn)
		st.Opens++
	}
	match, err := indexMatches(it.e, it.rn, it.tbl, it.leftCtx)
	if err != nil {
		return nil, err
	}
	if len(it.rn.Filter) > 0 && len(match) > 0 {
		kept := match[:0:0]
		for _, rid := range match {
			src := it.tbl.Rows[rid]
			copy(it.srcBuf, src)
			it.srcBuf[len(src)] = datum.NewInt(int64(rid))
			it.selfCtx.row = it.srcBuf
			ok, err := it.e.evalPreds(it.rn.Filter, it.selfCtx)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, rid)
			}
		}
		match = kept
	}
	if st != nil {
		// One Next per returned row plus the end-of-input call.
		st.Nexts += int64(len(match)) + 1
		st.Rows += int64(len(match))
	}
	return match, nil
}

// rightFor returns the post-filter rowids for the current left row, probing
// on a lateral-cache miss.
func (it *batchNLJoinIter) rightFor() ([]int32, error) {
	key, cacheable := it.leftKeyStr()
	if cacheable {
		if rowids, ok := it.cache[key]; ok {
			return rowids, nil
		}
	}
	rowids, err := it.probe()
	if err != nil {
		return nil, err
	}
	if cacheable {
		it.cache[key] = rowids
		it.cacheMem += 48 + int64(len(key)) + 4*int64(len(rowids))
	}
	return rowids, nil
}

// onMatch evaluates the residual On predicates for the current left row
// combined with build row rid.
func (it *batchNLJoinIter) onMatch(rid int32) (bool, error) {
	if len(it.n.On) == 0 {
		return true, nil
	}
	src := it.tbl.Rows[rid]
	copy(it.comb[it.nLeft:], src)
	it.comb[it.nLeft+len(src)] = datum.NewInt(int64(rid))
	it.combCtx.row = it.comb
	return it.e.evalPreds(it.n.On, it.combCtx)
}

// emit appends the current left row combined with right row rid.
func (it *batchNLJoinIter) emit(rid int32) {
	for c := 0; c < it.nLeft; c++ {
		it.out.Cols[c][it.out.N] = it.comb[c]
	}
	src := it.tbl.Rows[rid]
	for c := range src {
		it.out.Cols[it.nLeft+c][it.out.N] = src[c]
	}
	it.out.Cols[it.nLeft+len(src)][it.out.N] = datum.NewInt(int64(rid))
	it.out.N++
}

// emitLeftPad appends the current left row padded with right NULLs.
func (it *batchNLJoinIter) emitLeftPad() {
	for c := 0; c < it.nLeft; c++ {
		it.out.Cols[c][it.out.N] = it.comb[c]
	}
	for c := 0; c < it.nRight; c++ {
		it.out.Cols[it.nLeft+c][it.out.N] = datum.Null
	}
	it.out.N++
}

func (it *batchNLJoinIter) NextBatch() (*Batch, error) {
	if err := it.e.checkCancelBatch(); err != nil {
		return nil, err
	}
	if it.done {
		return nil, nil
	}
	outerPad := it.n.Kind == qtree.JoinLeftOuter
	it.out.reset(it.nLeft+it.nRight, it.e.batchSize)
	for {
		if it.out.N == it.e.batchSize {
			return &it.out, nil
		}
		if it.inRow {
			for it.pos < len(it.rowids) && it.out.N < it.e.batchSize {
				rid := it.rowids[it.pos]
				it.pos++
				ok, err := it.onMatch(rid)
				if err != nil {
					return nil, err
				}
				if ok {
					it.matched = true
					it.emit(rid)
				}
			}
			if it.pos < len(it.rowids) {
				return &it.out, nil // output full mid-probe; resume here
			}
			if outerPad && !it.matched {
				if it.out.N == it.e.batchSize {
					return &it.out, nil // resume with the padding next call
				}
				it.emitLeftPad()
			}
			it.inRow = false
			continue
		}
		if it.cur == nil || it.k >= it.cur.Rows() {
			b, err := it.l.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				it.done = true
				if it.out.N > 0 {
					return &it.out, nil
				}
				return nil, nil
			}
			it.cur = b
			it.k = 0
			continue
		}
		r := it.cur.Live(it.k)
		it.k++
		for c := 0; c < it.nLeft; c++ {
			it.comb[c] = it.cur.Cols[c][r]
		}
		it.leftCtx.row = it.comb[:it.nLeft]
		rowids, err := it.rightFor()
		if err != nil {
			return nil, err
		}
		it.rowids = rowids
		it.pos = 0
		it.matched = false
		it.inRow = true
	}
}

func (it *batchNLJoinIter) Close() error { return it.l.Close() }

// memBytes reports the lateral cache footprint.
func (it *batchNLJoinIter) memBytes() int64 { return it.cacheMem }
