package exec

import (
	"testing"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// fuzzSchema is three columns of deliberately unstable types: the fuzzer
// mixes ints, floats, strings, booleans and NULLs inside each column, so
// expressions hit both value paths and type-error paths.
var fuzzSchema = []optimizer.ColID{
	{From: 1, Ord: 0},
	{From: 1, Ord: 1},
	{From: 1, Ord: 2},
}

func fuzzCol(ord int) qtree.Expr { return &qtree.Col{From: 1, Ord: ord, Name: "c"} }

// fuzzExprs is the expression corpus: arithmetic, comparisons, three-valued
// AND/OR, LIKE, concatenation, IS NULL, NOT, LNNVL, null-safe equality,
// IN-lists, division (error path) and CASE (per-row fallback path).
var fuzzExprs = []qtree.Expr{
	&qtree.Bin{Op: qtree.OpAdd, L: fuzzCol(0), R: fuzzCol(1)},
	&qtree.Bin{Op: qtree.OpEq, L: fuzzCol(0), R: fuzzCol(1)},
	&qtree.Bin{Op: qtree.OpAnd,
		L: &qtree.Bin{Op: qtree.OpLt, L: fuzzCol(0), R: fuzzCol(1)},
		R: &qtree.IsNull{E: fuzzCol(2), Neg: true}},
	&qtree.Bin{Op: qtree.OpOr,
		L: &qtree.Bin{Op: qtree.OpGt, L: fuzzCol(0), R: fuzzCol(1)},
		R: &qtree.Bin{Op: qtree.OpEq, L: fuzzCol(2), R: fuzzCol(2)}},
	&qtree.Like{E: fuzzCol(2), Pattern: &qtree.Const{Val: datum.NewString("a%")}},
	&qtree.Like{E: fuzzCol(2), Pattern: fuzzCol(1), Neg: true},
	&qtree.Bin{Op: qtree.OpConcat, L: fuzzCol(2), R: fuzzCol(0)},
	&qtree.Not{E: &qtree.Bin{Op: qtree.OpLe, L: fuzzCol(0), R: fuzzCol(1)}},
	&qtree.LNNVL{E: &qtree.Bin{Op: qtree.OpEq, L: fuzzCol(0), R: fuzzCol(1)}},
	&qtree.Bin{Op: qtree.OpNullSafeEq, L: fuzzCol(0), R: fuzzCol(2)},
	&qtree.InList{E: fuzzCol(0), Vals: []qtree.Expr{
		&qtree.Const{Val: datum.NewInt(1)}, &qtree.Const{Val: datum.NewInt(7)}, fuzzCol(1)}},
	&qtree.InList{E: fuzzCol(2), Neg: true, Vals: []qtree.Expr{fuzzCol(0)}},
	&qtree.Bin{Op: qtree.OpDiv, L: fuzzCol(0), R: fuzzCol(1)},
	&qtree.Case{
		Whens: []qtree.CaseWhen{{
			Cond:   &qtree.Bin{Op: qtree.OpGt, L: fuzzCol(0), R: fuzzCol(1)},
			Result: fuzzCol(2)}},
		Else: fuzzCol(0)},
	&qtree.Bin{Op: qtree.OpAnd,
		L: &qtree.Bin{Op: qtree.OpOr,
			L: &qtree.IsNull{E: fuzzCol(0)},
			R: &qtree.Bin{Op: qtree.OpGe, L: fuzzCol(0), R: fuzzCol(1)}},
		R: &qtree.Bin{Op: qtree.OpNe, L: fuzzCol(1), R: fuzzCol(2)}},
	&qtree.IsTrue{E: &qtree.Bin{Op: qtree.OpLt, L: fuzzCol(0), R: fuzzCol(2)}},
}

// fuzzDatum decodes one byte into a datum, covering every kind plus NULL.
func fuzzDatum(b byte) datum.Datum {
	switch b % 6 {
	case 0:
		return datum.Null
	case 1:
		return datum.NewInt(int64(b) - 128)
	case 2:
		return datum.NewFloat(float64(b)/8 - 10)
	case 3:
		strs := []string{"", "a", "ab", "abc", "a%b", "_x", "%", "1", "2.5"}
		return datum.NewString(strs[int(b/6)%len(strs)])
	case 4:
		return datum.NewBool(b&1 == 0)
	default:
		return datum.NewInt(int64(b % 8))
	}
}

// FuzzBatchExpr is the expression-level differential: the same expression
// is evaluated over the same rows by the row-at-a-time evaluator and the
// vectorized one, over both a full and a fuzzed sub-selection. The two
// paths must agree on error presence per batch and, when error-free, on
// every value (including NULLs). This pins the vectorized evaluator —
// including its AND/OR undecided-subset logic and per-row fallbacks — to
// the row semantics on inputs no hand-written case list would cover.
func FuzzBatchExpr(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(0xff), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add(uint8(2), uint8(9), uint8(0xa5), []byte{250, 13, 26, 39, 52, 65, 78, 91, 104, 117})
	f.Add(uint8(4), uint8(3), uint8(0x0f), []byte{9, 15, 21, 27, 33, 39})
	f.Add(uint8(12), uint8(5), uint8(0x55), []byte{1, 0, 1, 0, 200, 100, 50, 25})
	f.Fuzz(func(t *testing.T, pick, nrows, selMask uint8, data []byte) {
		x := fuzzExprs[int(pick)%len(fuzzExprs)]
		n := int(nrows)%32 + 1

		// Build the batch column-wise from the fuzz bytes.
		var b Batch
		b.reset(len(fuzzSchema), n)
		b.N = n
		for c := range fuzzSchema {
			for r := 0; r < n; r++ {
				var by byte
				if len(data) > 0 {
					by = data[(r*len(fuzzSchema)+c)%len(data)]
				}
				b.Cols[c][r] = fuzzDatum(by + byte(c)*37)
			}
		}
		// Fuzz the selection vector too: bit r%8 of selMask decides
		// liveness, with row 0 always live so the batch is never empty.
		sel := []int{0}
		for r := 1; r < n; r++ {
			if selMask&(1<<(r%8)) != 0 {
				sel = append(sel, r)
			}
		}
		b.Sel = sel

		e := newEnv(nil, nil, nil)

		// Row path: evaluate live rows in order, stopping at the first
		// error exactly like the volcano operators do.
		ctx := &Ctx{cols: colMap(fuzzSchema)}
		buf := make(Row, len(fuzzSchema))
		rowVals := make([]datum.Datum, 0, len(sel))
		var rowErr error
		for _, r := range sel {
			b.gather(r, buf)
			ctx.row = buf
			d, err := e.evalExpr(x, ctx)
			if err != nil {
				rowErr = err
				break
			}
			rowVals = append(rowVals, d)
		}

		// Batch path over the same selection.
		bc := newBatchCtx(e, fuzzSchema, nil)
		dst := make([]datum.Datum, n)
		batchErr := e.evalExprBatch(x, &b, b.Sel, bc, dst)

		if (rowErr != nil) != (batchErr != nil) {
			t.Fatalf("error divergence: row=%v batch=%v\nexpr %d over %d rows", rowErr, batchErr, pick, n)
		}
		if rowErr != nil {
			return // both errored; the row identity of the error may differ
		}
		for k, r := range sel {
			got, want := dst[r], rowVals[k]
			if got.IsNull() != want.IsNull() || got.String() != want.String() {
				t.Fatalf("value divergence at row %d: batch=%s row=%s\nexpr %d", r, got, want, pick)
			}
		}
	})
}
