package exec

import (
	"context"
	"errors"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

// TestBatchCancellationLatency pins the batch engine's cancellation bound:
// the context is polled once per batch, so a cancel between two NextBatch
// calls on a large scan must surface on the very next call — the engine
// never produces another full batch, let alone drains the table. LeakCheck
// confirms the canceled execution leaves no goroutines behind.
func TestBatchCancellationLatency(t *testing.T) {
	testkit.LeakCheck(t)
	sizes := testkit.SmallSizes()
	sizes.Employees = 20000 // many batches ahead when the cancel lands
	db := testkit.NewDB(sizes, 1)
	q := qtree.MustBind(`SELECT e.emp_id, e.salary FROM employees e WHERE e.salary > 0`, db.Catalog)
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := newEnv(ctx, db, plan)
	e.applyOptions(Options{})
	it, err := buildBatch(e, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(nil); err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	b, err := it.NextBatch()
	if err != nil || b == nil {
		t.Fatalf("first batch: %v (batch=%v)", err, b)
	}
	if b.Rows() == 0 || b.Rows() > e.batchSize {
		t.Fatalf("first batch carries %d rows, want 1..%d", b.Rows(), e.batchSize)
	}

	cancel()
	if _, err := it.NextBatch(); err == nil {
		t.Fatal("NextBatch after cancel returned a batch; cancellation latency exceeds one batch")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("NextBatch after cancel: %v, want a context.Canceled chain", err)
	}
}

// TestBatchCancelBeforeRun is the black-box variant: RunWith under an
// already-canceled context fails without producing rows on both engines.
func TestBatchCancelBeforeRun(t *testing.T) {
	testkit.LeakCheck(t)
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q := qtree.MustBind(`SELECT e.emp_id FROM employees e`, db.Catalog)
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []Options{{}, {RowExec: true}} {
		if res, err := RunWith(ctx, db, plan, opts); err == nil {
			t.Errorf("RunWith(RowExec=%v) under canceled context returned %d rows, want error",
				opts.RowExec, len(res.Rows))
		} else if !errors.Is(err, context.Canceled) {
			t.Errorf("RunWith(RowExec=%v): %v, want a context.Canceled chain", opts.RowExec, err)
		}
	}
}
