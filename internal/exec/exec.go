// Package exec implements the volcano-style execution engine that
// interprets physical plans from package optimizer against the in-memory
// storage engine: sequential and index scans, filters with correlated
// subquery evaluation under tuple iteration semantics with result caching
// (§2.1.1), nested-loops / hash / sort-merge joins with inner, semi, anti,
// null-aware anti and left outer variants (semijoin and antijoin have the
// stop-at-first-match property and cache results for duplicate left keys,
// as the paper describes), hash aggregation with grouping sets, distinct,
// sort, rownum limits and set operations.
package exec

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/datum"
	"repro/internal/obsv"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// Metric names exported by the batch engine through Options.Metrics.
const (
	// MetricBatchRows counts logical rows carried by batches leaving the
	// plan's batch sources (scans and row→batch adapters).
	MetricBatchRows = "exec.batch.rows"
	// MetricBatchBatches counts batches produced by those sources.
	MetricBatchBatches = "exec.batch.batches"
	// MetricBatchSelectivity is a histogram of the percentage of a batch's
	// rows surviving each filter application.
	MetricBatchSelectivity = "exec.batch.selectivity"
)

// Row is one result row.
type Row []datum.Datum

// Ctx resolves column references at runtime. Each operator exposes its
// current row under its output schema; parent links provide correlation
// (outer rows) for subqueries, lateral views and index probes.
type Ctx struct {
	parent *Ctx
	cols   map[optimizer.ColID]int
	row    Row
}

// lookup resolves a column through the context chain.
func (c *Ctx) lookup(id optimizer.ColID) (datum.Datum, bool) {
	for cur := c; cur != nil; cur = cur.parent {
		if cur.cols != nil {
			if i, ok := cur.cols[id]; ok {
				return cur.row[i], true
			}
		}
	}
	return datum.Null, false
}

// env carries run-wide state.
type env struct {
	db   *storage.DB
	plan *optimizer.Plan
	// snap is the storage snapshot this execution reads through: every
	// table reference resolves to the same consistent multi-table view, so
	// concurrent commits never change a running statement's results.
	snap *storage.Snapshot
	// subqCache memoizes subquery predicate results under tuple iteration
	// semantics, keyed per subquery by correlation and left-hand values.
	subqCache map[*qtree.Subq]map[string]datum.Datum
	// subqIters holds the compiled iterator per subquery expression.
	subqIters map[*qtree.Subq]*subqRuntime
	// SubqExecs counts subquery executions (cache misses); tests use it to
	// verify TIS caching.
	SubqExecs int
	// params holds the bind-parameter values for this execution, indexed by
	// qtree.Param.Ord (late binding: the plan is compiled once, values are
	// supplied per run).
	params []datum.Datum
	// ctx cancels execution mid-query; polled in the leaf scans, which
	// every row ultimately flows through (blocking operators drain their
	// inputs via scans too, so nested-loops re-scans, hash builds and sorts
	// all observe cancellation).
	ctx context.Context
	// steps counts scan rows between cancellation polls.
	steps uint
	// analyze, when non-nil, makes build wrap every operator with runtime
	// counters (EXPLAIN ANALYZE).
	analyze *RunStats
	// opts selects the engine (batch by default, row with opts.RowExec) and
	// carries the metrics sink.
	opts Options
	// batchSize is the physical row capacity of each batch.
	batchSize int
	// metRows/metBatches/selHist are the resolved exec.batch.* metrics, nil
	// when no registry was supplied (the nil metrics are inert).
	metRows    *obsv.Counter
	metBatches *obsv.Counter
	selHist    *obsv.Histogram
}

// applyOptions resolves Options into the env.
func (e *env) applyOptions(opts Options) {
	e.opts = opts
	if opts.Snap != nil {
		e.snap = opts.Snap
	}
	if opts.BatchSize > 0 {
		e.batchSize = opts.BatchSize
	}
	if opts.Metrics != nil {
		e.metRows = opts.Metrics.Counter(MetricBatchRows)
		e.metBatches = opts.Metrics.Counter(MetricBatchBatches)
		e.selHist = opts.Metrics.Histogram(MetricBatchSelectivity, 1, 5, 10, 25, 50, 75, 90, 99, 100)
	}
}

// checkCancel polls env.ctx every 64th scan step (and on the first one, so
// cancellation is seen even on tiny tables).
func (e *env) checkCancel() error {
	if e.ctx != nil && e.steps&63 == 0 {
		select {
		case <-e.ctx.Done():
			return fmt.Errorf("exec: query canceled: %w", e.ctx.Err())
		default:
		}
	}
	e.steps++
	return nil
}

// checkCancelBatch polls env.ctx once per batch: the batch engine's
// cancellation granularity is one batch (at most batchSize rows) instead of
// the row engine's 64 rows.
func (e *env) checkCancelBatch() error {
	if e.ctx != nil {
		select {
		case <-e.ctx.Done():
			return fmt.Errorf("exec: query canceled: %w", e.ctx.Err())
		default:
		}
	}
	return nil
}

// noteBatch records a batch produced at a plan source in the run's metrics.
func (e *env) noteBatch(b *Batch) {
	e.metBatches.Add(1)
	e.metRows.Add(int64(b.Rows()))
}

// iterator is the volcano operator interface.
type iterator interface {
	// Open prepares the iterator; outer supplies correlation bindings.
	Open(outer *Ctx) error
	// Next returns the next row, or nil at end of input.
	Next() (Row, error)
	Close() error
}

// Result holds the rows produced by a query along with column names.
type Result struct {
	Rows []Row
}

// Run executes a plan against the database and returns all rows.
func Run(db *storage.DB, plan *optimizer.Plan) (*Result, error) {
	return RunContext(context.Background(), db, plan)
}

// RunContext is Run under a context: cancellation is polled in the volcano
// loop and in the leaf scans, so a canceled context stops even executions
// stuck inside a blocking operator's drain within a bounded number of rows
// (one batch on the batch engine).
func RunContext(ctx context.Context, db *storage.DB, plan *optimizer.Plan) (*Result, error) {
	return RunWith(ctx, db, plan, Options{})
}

// RunWith is RunContext with explicit engine options.
func RunWith(ctx context.Context, db *storage.DB, plan *optimizer.Plan, opts Options) (*Result, error) {
	e := newEnv(ctx, db, plan)
	e.applyOptions(opts)
	return runEnv(e)
}

// RunParams executes a plan with bind-parameter values, indexed by
// qtree.Param.Ord. The same (cached) plan may be run concurrently with
// different bind sets; each run carries its own values.
func RunParams(ctx context.Context, db *storage.DB, plan *optimizer.Plan, params []datum.Datum) (*Result, error) {
	return RunParamsWith(ctx, db, plan, params, Options{})
}

// RunParamsWith is RunParams with explicit engine options.
func RunParamsWith(ctx context.Context, db *storage.DB, plan *optimizer.Plan, params []datum.Datum, opts Options) (*Result, error) {
	e := newEnv(ctx, db, plan)
	e.applyOptions(opts)
	e.params = params
	return runEnv(e)
}

// table resolves a base table through the run's snapshot.
func (e *env) table(name string) *storage.Table {
	if e.snap != nil {
		return e.snap.Table(name)
	}
	return e.db.Table(name)
}

// newEnv prepares the run-wide state for one execution.
func newEnv(ctx context.Context, db *storage.DB, plan *optimizer.Plan) *env {
	e := &env{db: db, plan: plan, subqCache: map[*qtree.Subq]map[string]datum.Datum{}, batchSize: DefaultBatchSize}
	if db != nil {
		e.snap = db.Snapshot()
	}
	if ctx != nil && ctx != context.Background() {
		e.ctx = ctx
	}
	return e
}

// runEnv drives the selected engine to completion.
func runEnv(e *env) (*Result, error) {
	if e.opts.RowExec {
		return runEnvRows(e)
	}
	return runEnvBatches(e)
}

// runEnvRows builds the row iterator tree and drives the volcano loop.
func runEnvRows(e *env) (*Result, error) {
	it, err := build(e, e.plan.Root)
	if err != nil {
		return nil, err
	}
	if err := it.Open(nil); err != nil {
		return nil, err
	}
	defer it.Close()
	res := &Result{}
	for {
		if e.ctx != nil {
			select {
			case <-e.ctx.Done():
				return nil, fmt.Errorf("exec: query canceled: %w", e.ctx.Err())
			default:
			}
		}
		r, err := it.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			return res, nil
		}
		res.Rows = append(res.Rows, r)
	}
}

// runEnvBatches builds the batch iterator tree and drains it batch-wise;
// result rows are materialized copies, so they outlive the operators'
// reused batches.
func runEnvBatches(e *env) (*Result, error) {
	it, err := buildBatch(e, e.plan.Root)
	if err != nil {
		return nil, err
	}
	if err := it.Open(nil); err != nil {
		return nil, err
	}
	defer it.Close()
	res := &Result{}
	for {
		b, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return res, nil
		}
		for k := 0; k < b.Rows(); k++ {
			res.Rows = append(res.Rows, b.Row(b.Live(k)))
		}
	}
}

// colMap builds the ColID→slot map for a schema.
func colMap(cols []optimizer.ColID) map[optimizer.ColID]int {
	m := make(map[optimizer.ColID]int, len(cols))
	for i, c := range cols {
		m[c] = i
	}
	return m
}

// build constructs the iterator tree for a plan node, wrapping each
// operator with runtime counters when the run is being analyzed.
func build(e *env, n optimizer.PlanNode) (iterator, error) {
	it, err := buildNode(e, n)
	if err != nil {
		return it, err
	}
	return instrRow(e, n, it), nil
}

// instrRow wraps a row iterator with the node's runtime counters when the
// run is being analyzed.
func instrRow(e *env, n optimizer.PlanNode, it iterator) iterator {
	if e.analyze == nil {
		return it
	}
	return &instrIter{child: it, st: e.opStats(n)}
}

// opStats returns (creating on first use) the analyze counters for a node.
func (e *env) opStats(n optimizer.PlanNode) *OpStats {
	st := e.analyze.Ops[n]
	if st == nil {
		st = &OpStats{}
		e.analyze.Ops[n] = st
	}
	return st
}

func buildNode(e *env, n optimizer.PlanNode) (iterator, error) {
	switch v := n.(type) {
	case *optimizer.SeqScan:
		return newSeqScan(e, v), nil
	case *optimizer.IndexScan:
		return newIndexScan(e, v)
	case *optimizer.Filter:
		child, err := build(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newFilter(e, v, child), nil
	case *optimizer.Project:
		child, err := build(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newProject(e, v, child), nil
	case *optimizer.Join:
		l, err := build(e, v.L)
		if err != nil {
			return nil, err
		}
		r, err := build(e, v.R)
		if err != nil {
			return nil, err
		}
		switch v.Method {
		case optimizer.MethodHash:
			return newHashJoin(e, v, l, r), nil
		case optimizer.MethodMerge:
			return newMergeJoin(e, v, l, r), nil
		default:
			return newNLJoin(e, v, l, r), nil
		}
	case *optimizer.Agg:
		child, err := build(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newAgg(e, v, child), nil
	case *optimizer.Window:
		child, err := build(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newWindow(e, v, child), nil
	case *optimizer.Distinct:
		child, err := build(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newDistinct(child), nil
	case *optimizer.Sort:
		child, err := build(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newSort(e, v, child), nil
	case *optimizer.Limit:
		child, err := build(e, v.Child)
		if err != nil {
			return nil, err
		}
		return &limitIter{child: child, n: v.N}, nil
	case *optimizer.SetNode:
		var kids []iterator
		for _, in := range v.Inputs {
			k, err := build(e, in)
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
		}
		return newSetOp(v, kids), nil
	}
	return nil, fmt.Errorf("exec: cannot execute node %T (cost-only stub?)", n)
}

// buildBatch constructs the batch iterator tree for a plan node. Vectorized
// operators are instrumented batch-wise; operators still running on the row
// engine come back wrapped in a rowSourceIter whose inner row iterator is
// already instrumented per row, so they are not wrapped again (the node
// would be counted twice).
func buildBatch(e *env, n optimizer.PlanNode) (batchIterator, error) {
	it, err := buildBatchNode(e, n)
	if err != nil || e.analyze == nil {
		return it, err
	}
	if _, ok := it.(*rowSourceIter); ok {
		return it, nil
	}
	return &instrBatchIter{child: it, st: e.opStats(n)}, nil
}

// buildBatchNode dispatches a plan node to its vectorized operator, or to a
// row operator bridged with the RowIter / rowSourceIter adapter pair. The
// bridged operators (nested-loops and merge joins, window functions, set
// operations) still consume vectorized subtrees through RowIter, so only
// the operator itself runs row-at-a-time.
func buildBatchNode(e *env, n optimizer.PlanNode) (batchIterator, error) {
	switch v := n.(type) {
	case *optimizer.SeqScan:
		return newBatchSeqScan(e, v), nil
	case *optimizer.IndexScan:
		return newBatchIndexScan(e, v)
	case *optimizer.Filter:
		child, err := buildBatch(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newBatchFilter(e, v, child), nil
	case *optimizer.Project:
		child, err := buildBatch(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newBatchProject(e, v, child), nil
	case *optimizer.Join:
		if v.Method == optimizer.MethodHash {
			l, err := buildBatch(e, v.L)
			if err != nil {
				return nil, err
			}
			r, err := buildBatch(e, v.R)
			if err != nil {
				return nil, err
			}
			return newBatchHashJoin(e, v, l, r), nil
		}
		// The dominant lateral shape — an index probe re-opened per left
		// row — runs on the vectorized nested-loops join, which inlines
		// the probe and copies matches from table storage straight into
		// the output batch.
		if canBatchNLJoin(v) {
			l, err := buildBatch(e, v.L)
			if err != nil {
				return nil, err
			}
			return newBatchNLJoin(e, v, l)
		}
		// Remaining nested-loops and merge joins run their whole subtree
		// row-at-a-time: filling batches just to unpack them again
		// row-wise under the join would double the copy work (measured as
		// a net slowdown). The row build instruments the subtree itself,
		// so EXPLAIN ANALYZE accounting is unchanged.
		j, err := build(e, n)
		if err != nil {
			return nil, err
		}
		return newRowSource(e, n, j), nil
	case *optimizer.Agg:
		child, err := buildBatch(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newBatchAgg(e, v, child), nil
	case *optimizer.Window:
		child, err := buildBatch(e, v.Child)
		if err != nil {
			return nil, err
		}
		w := newWindow(e, v, NewRowIter(child))
		return newRowSource(e, n, instrRow(e, n, w)), nil
	case *optimizer.Distinct:
		child, err := buildBatch(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newBatchDistinct(e, child), nil
	case *optimizer.Sort:
		child, err := buildBatch(e, v.Child)
		if err != nil {
			return nil, err
		}
		return newBatchSort(e, v, child), nil
	case *optimizer.Limit:
		child, err := buildBatch(e, v.Child)
		if err != nil {
			return nil, err
		}
		return &batchLimitIter{child: child, n: v.N}, nil
	case *optimizer.SetNode:
		var kids []iterator
		for _, in := range v.Inputs {
			k, err := buildBatch(e, in)
			if err != nil {
				return nil, err
			}
			kids = append(kids, NewRowIter(k))
		}
		s := newSetOp(v, kids)
		return newRowSource(e, n, instrRow(e, n, s)), nil
	}
	return nil, fmt.Errorf("exec: cannot execute node %T (cost-only stub?)", n)
}

// newRowSource bridges a row operator back into a batch plan.
func newRowSource(e *env, n optimizer.PlanNode, it iterator) *rowSourceIter {
	return &rowSourceIter{e: e, child: it, width: len(n.Columns())}
}

// rowKey renders a row as a grouping key (nulls match nulls).
func rowKey(r Row) string {
	var sb strings.Builder
	for _, d := range r {
		sb.WriteString(d.Key())
		sb.WriteByte(0x1f)
	}
	return sb.String()
}
