package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/sql"
	"repro/internal/storage"
)

// runDML parses, binds, optimizes and executes one mutation statement.
func runDML(t *testing.T, db *storage.DB, src string, params ...datum.Datum) *DMLResult {
	t.Helper()
	res, err := tryDML(db, src, params...)
	if err != nil {
		t.Fatalf("dml %q: %v", src, err)
	}
	return res
}

func tryDML(db *storage.DB, src string, params ...datum.Datum) (*DMLResult, error) {
	stmt, err := sql.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	bound, err := qtree.BindStatement(stmt, db.Catalog)
	if err != nil {
		return nil, err
	}
	dml, ok := bound.(*qtree.DMLStmt)
	if !ok {
		return nil, errors.New("not a DML statement")
	}
	var plan *optimizer.Plan
	if dml.Read != nil {
		plan, err = optimizer.New(db.Catalog).Optimize(dml.Read)
		if err != nil {
			return nil, err
		}
	}
	return RunDML(context.Background(), db, dml, plan, params, Options{})
}

func TestInsertValues(t *testing.T) {
	db := tinyDB(t)
	res := runDML(t, db, "INSERT INTO DEPT VALUES (50, 'lab', 3), (60, 'qa', NULL)")
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	got := runSQL(t, db, "SELECT name FROM dept WHERE dept_id >= 50")
	if strings.Join(got, ",") != "'lab','qa'" {
		t.Errorf("inserted rows = %v", got)
	}
}

func TestInsertColumnListAndDefaults(t *testing.T) {
	db := tinyDB(t)
	runDML(t, db, "INSERT INTO DEPT (name, dept_id) VALUES ('lab', 50)")
	got := runSQL(t, db, "SELECT dept_id, name FROM dept WHERE loc_id IS NULL AND dept_id = 50")
	if len(got) != 1 || got[0] != "50|'lab'" {
		t.Errorf("column-list insert = %v", got)
	}
	// NULL into a non-nullable unlisted column must fail.
	if _, err := tryDML(db, "INSERT INTO DEPT (dept_id) VALUES (70)"); err == nil {
		t.Error("insert leaving non-nullable NAME null should fail")
	}
	// Unknown column and arity mismatches are bind errors.
	if _, err := tryDML(db, "INSERT INTO DEPT (nope) VALUES (1)"); err == nil {
		t.Error("unknown target column should fail")
	}
	if _, err := tryDML(db, "INSERT INTO DEPT VALUES (1, 'x')"); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestInsertParams(t *testing.T) {
	db := tinyDB(t)
	stmt, err := sql.ParseStatement("INSERT INTO DEPT VALUES (:id, :nm, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := qtree.BindStatement(stmt, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	dml := bound.(*qtree.DMLStmt)
	if len(dml.Params) != 2 {
		t.Fatalf("params = %v", dml.Params)
	}
	res, err := RunDML(context.Background(), db, dml, nil,
		[]datum.Datum{datum.NewInt(77), datum.NewString("park")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := runSQL(t, db, "SELECT name FROM dept WHERE dept_id = 77")
	if len(got) != 1 || got[0] != "'park'" {
		t.Errorf("param insert = %v", got)
	}
}

func TestInsertSelect(t *testing.T) {
	db := tinyDB(t)
	res := runDML(t, db,
		"INSERT INTO DEPT SELECT dept_id + 100, name || '2', loc_id FROM dept WHERE dept_id <= 20")
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	got := runSQL(t, db, "SELECT dept_id, name FROM dept WHERE dept_id > 100")
	if strings.Join(got, ",") != "110|'eng2',120|'ops2'" {
		t.Errorf("insert-select rows = %v", got)
	}
}

func TestUpdate(t *testing.T) {
	db := tinyDB(t)
	res := runDML(t, db, "UPDATE EMP SET salary = salary * 2 WHERE dept_id = 10")
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	got := runSQL(t, db, "SELECT name, salary FROM emp WHERE dept_id = 10")
	if strings.Join(got, ",") != "'ann'|200,'bob'|400" {
		t.Errorf("after update: %v", got)
	}
	// Untouched rows keep their values; total row count is unchanged.
	if got := runSQL(t, db, "SELECT COUNT(*) FROM emp"); got[0] != "6" {
		t.Errorf("emp count after update = %v", got)
	}
}

func TestUpdateMultipleColumnsWithAlias(t *testing.T) {
	db := tinyDB(t)
	res := runDML(t, db, "UPDATE EMP e SET name = 'ANN', mgr_id = NULL WHERE e.emp_id = 1")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := runSQL(t, db, "SELECT name FROM emp WHERE emp_id = 1 AND mgr_id IS NULL")
	if len(got) != 1 || got[0] != "'ANN'" {
		t.Errorf("after multi-set update: %v", got)
	}
	if _, err := tryDML(db, "UPDATE EMP SET name = 'x', name = 'y'"); err == nil {
		t.Error("duplicate SET target should fail")
	}
}

func TestUpdateWithSubqueryPredicate(t *testing.T) {
	db := tinyDB(t)
	// The locating query runs through the full optimizer, subquery included.
	res := runDML(t, db,
		"UPDATE EMP SET salary = 0 WHERE dept_id IN (SELECT dept_id FROM dept WHERE name = 'ops')")
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	if got := runSQL(t, db, "SELECT COUNT(*) FROM emp WHERE salary = 0"); got[0] != "2" {
		t.Errorf("zeroed rows = %v", got)
	}
}

func TestDelete(t *testing.T) {
	db := tinyDB(t)
	res := runDML(t, db, "DELETE FROM EMP WHERE salary < :cut", datum.NewFloat(150))
	if res.Affected != 2 { // ann (100) and dee (50)
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	got := runSQL(t, db, "SELECT name FROM emp")
	if strings.Join(got, ",") != "'bob','cal','eli','fay'" {
		t.Errorf("after delete: %v", got)
	}
}

func TestDeleteAll(t *testing.T) {
	db := tinyDB(t)
	res := runDML(t, db, "DELETE FROM EMP")
	if res.Affected != 6 {
		t.Fatalf("affected = %d, want 6", res.Affected)
	}
	if got := runSQL(t, db, "SELECT COUNT(*) FROM emp"); got[0] != "0" {
		t.Errorf("emp not empty: %v", got)
	}
	// Index scans see no ghosts either.
	if got := runSQL(t, db, "SELECT name FROM emp WHERE emp_id = 3"); len(got) != 0 {
		t.Errorf("index scan returned deleted row: %v", got)
	}
}

func TestDMLSnapshotConsistency(t *testing.T) {
	db := tinyDB(t)
	// A snapshot taken before a delete keeps serving the old rows through
	// the executor, on both engines.
	snap := db.Snapshot()
	runDML(t, db, "DELETE FROM EMP WHERE emp_id = 1")

	q := mustPlan(t, db, "SELECT COUNT(*) FROM emp")
	for _, rowExec := range []bool{false, true} {
		res, err := RunWith(context.Background(), db, q, Options{Snap: snap, RowExec: rowExec})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 6 {
			t.Errorf("rowExec=%v: snapshot count = %d, want 6", rowExec, res.Rows[0][0].Int())
		}
		res, err = RunWith(context.Background(), db, q, Options{RowExec: rowExec})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 5 {
			t.Errorf("rowExec=%v: fresh count = %d, want 5", rowExec, res.Rows[0][0].Int())
		}
	}
}

func mustPlan(t *testing.T, db *storage.DB, src string) *optimizer.Plan {
	t.Helper()
	q, err := qtree.BindSQL(src, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestDMLWriteConflict(t *testing.T) {
	db := tinyDB(t)
	// Prepare two updates of the same row from the same snapshot by
	// committing a conflicting delete between read and commit. Simulate
	// with direct batches: statement-level behavior is covered above.
	snap := db.Snapshot()
	stmt, err := sql.ParseStatement("UPDATE EMP SET salary = 1 WHERE emp_id = 2")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := qtree.BindStatement(stmt, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	dml := bound.(*qtree.DMLStmt)
	plan, err := optimizer.New(db.Catalog).Optimize(dml.Read)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent writer deletes the row first.
	runDML(t, db, "DELETE FROM EMP WHERE emp_id = 2")
	// Our update still reads the old snapshot, so it locates the dead row
	// and must fail with a write-write conflict at commit.
	_, err = RunDML(context.Background(), db, dml, plan, nil, Options{Snap: snap})
	if !errors.Is(err, storage.ErrWriteConflict) {
		t.Errorf("err = %v, want ErrWriteConflict", err)
	}
}

func TestSelectRejectsDMLAndViceVersa(t *testing.T) {
	db := tinyDB(t)
	if _, err := qtree.BindDMLSQL("SELECT name FROM emp", db.Catalog); err == nil {
		t.Error("BindDMLSQL should reject a query")
	}
	if _, err := sql.Parse("DELETE FROM EMP"); err == nil {
		t.Error("sql.Parse (SELECT-only) should reject DML")
	}
}
