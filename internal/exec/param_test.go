package exec

import (
	"context"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// paramDB builds a tiny table for bind-parameter execution tests.
func paramDB(t *testing.T) *storage.DB {
	t.Helper()
	cat := catalog.New()
	db := storage.NewDB(cat)
	tt, err := db.CreateTable(&catalog.Table{
		Name: "T",
		Cols: []catalog.Column{
			{Name: "ID", Type: datum.KInt},
			{Name: "GRP", Type: datum.KInt},
			{Name: "VAL", Type: datum.KFloat},
		},
		PrimaryKey: []int{0},
		Indexes:    []*catalog.Index{{Name: "T_GRP", Cols: []int{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tt.MustAppend(datum.NewInt(int64(i)), datum.NewInt(int64(i%4)), datum.NewFloat(float64(i)*1.5))
	}
	db.Finalize()
	return db
}

func TestRunParamsBinding(t *testing.T) {
	db := paramDB(t)
	q, err := qtree.BindSQL("SELECT t.ID FROM t WHERE t.GRP = :g", db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Several bind sets through one plan: RunParams late-binds the value,
	// so the (indexed) GRP probe sees a different key each run.
	for grp, want := range map[int64]int{1: 5, 2: 5, 3: 5} {
		r, err := RunParams(context.Background(), db, plan, []datum.Datum{datum.NewInt(grp)})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != want {
			t.Fatalf("grp %d: got %d rows, want %d", grp, len(r.Rows), want)
		}
	}
	// Unbound parameter: a clear execution error, not a panic.
	if _, err := RunParams(context.Background(), db, plan, nil); err == nil ||
		!strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("unbound parameter: err = %v", err)
	}
}
