package exec

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// runForced runs a query with a forced join method, returning sorted rows
// and the number of joins using that method.
func runForced(t *testing.T, db *storage.DB, src string, m optimizer.JoinMethod) ([]string, int) {
	t.Helper()
	q, err := qtree.BindSQL(src, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := optimizer.New(db.Catalog)
	p.ForceJoin = &m
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	optimizer.Walk(plan.Root, func(n optimizer.PlanNode) {
		if j, ok := n.(*optimizer.Join); ok && j.Method == m {
			used++
		}
	})
	res, err := Run(db, plan)
	if err != nil {
		t.Fatalf("run (%v): %v\n%s", m, err, optimizer.Explain(plan))
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out, used
}

// TestJoinMethodsAgree forces each physical join method over the same
// queries and checks that all three return identical row multisets.
func TestJoinMethodsAgree(t *testing.T) {
	db := testkit.TinyDB()
	queries := []string{
		// Inner equi-join with duplicates on both sides.
		`SELECT e.name, p.pname FROM emp e, proj p WHERE e.dept_id = p.dept_id`,
		// Join plus residual condition.
		`SELECT e.name, p.pname FROM emp e, proj p
		 WHERE e.dept_id = p.dept_id AND p.budget > e.salary`,
		// Three-way join.
		`SELECT e.name, d.name, p.pname FROM emp e, dept d, proj p
		 WHERE e.dept_id = d.dept_id AND p.dept_id = d.dept_id`,
	}
	for _, src := range queries {
		hash, nHash := runForced(t, db, src, optimizer.MethodHash)
		merge, nMerge := runForced(t, db, src, optimizer.MethodMerge)
		nl, _ := runForced(t, db, src, optimizer.MethodNL)
		if nHash == 0 || nMerge == 0 {
			t.Fatalf("force hint ignored (hash=%d merge=%d): %s", nHash, nMerge, src)
		}
		if strings.Join(hash, ";") != strings.Join(merge, ";") {
			t.Errorf("hash vs merge differ\nsql: %s\nhash:  %v\nmerge: %v", src, hash, merge)
		}
		if strings.Join(hash, ";") != strings.Join(nl, ";") {
			t.Errorf("hash vs NL differ\nsql: %s\nhash: %v\nnl:   %v", src, hash, nl)
		}
	}
}

// TestSemiAntiMethodsAgree covers the semi/anti variants under hash and NL.
func TestSemiAntiMethodsAgree(t *testing.T) {
	db := testkit.TinyDB()
	queries := []string{
		`SELECT d.name FROM dept d WHERE EXISTS
		 (SELECT 1 FROM emp e WHERE e.dept_id = d.dept_id AND e.salary > 100)`,
		`SELECT d.name FROM dept d WHERE NOT EXISTS
		 (SELECT 1 FROM emp e WHERE e.dept_id = d.dept_id)`,
		`SELECT e.name FROM emp e WHERE e.dept_id NOT IN
		 (SELECT p.dept_id FROM proj p WHERE p.budget > 600)`,
	}
	for _, src := range queries {
		hash, _ := runForced(t, db, src, optimizer.MethodHash)
		nl, _ := runForced(t, db, src, optimizer.MethodNL)
		if strings.Join(hash, ";") != strings.Join(nl, ";") {
			t.Errorf("semi/anti hash vs NL differ\nsql: %s\nhash: %v\nnl:   %v", src, hash, nl)
		}
	}
}

// TestOuterJoinMethodsAgree covers left and full outer joins under both
// supported methods.
func TestOuterJoinMethodsAgree(t *testing.T) {
	db := testkit.TinyDB()
	queries := []string{
		`SELECT d.name, e.name FROM dept d LEFT OUTER JOIN emp e ON d.dept_id = e.dept_id`,
		`SELECT d.name, e.name FROM dept d FULL OUTER JOIN emp e
		 ON d.dept_id = e.dept_id AND e.salary > 150`,
	}
	for _, src := range queries {
		hash, nHash := runForced(t, db, src, optimizer.MethodHash)
		nl, _ := runForced(t, db, src, optimizer.MethodNL)
		if nHash == 0 {
			t.Fatalf("hash hint ignored: %s", src)
		}
		if strings.Join(hash, ";") != strings.Join(nl, ";") {
			t.Errorf("outer hash vs NL differ\nsql: %s\nhash: %v\nnl:   %v", src, hash, nl)
		}
	}
}
