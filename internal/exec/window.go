package exec

import (
	"sort"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// windowIter materializes its input and computes analytic functions: for
// each window function the rows are grouped by the PARTITION BY values,
// ordered by the window's ORDER BY, and either the whole-partition
// aggregate or the running (RANGE UNBOUNDED PRECEDING .. CURRENT ROW)
// aggregate is attached to every row. Rows are emitted in input order with
// the function results appended.
type windowIter struct {
	e     *env
	n     *optimizer.Window
	child iterator

	out []Row
	pos int
}

func newWindow(e *env, n *optimizer.Window, child iterator) *windowIter {
	return &windowIter{e: e, n: n, child: child}
}

func (it *windowIter) Open(outer *Ctx) error {
	if err := it.child.Open(outer); err != nil {
		return err
	}
	it.out = nil
	it.pos = 0
	ctx := &Ctx{parent: outer, cols: colMap(it.n.Child.Columns())}

	var rows []Row
	for {
		r, err := it.child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		rows = append(rows, r)
	}

	// results[f][i] is function f's value for input row i.
	results := make([][]datum.Datum, len(it.n.Funcs))
	for fi, f := range it.n.Funcs {
		vals, err := it.computeFunc(f, rows, ctx)
		if err != nil {
			return err
		}
		results[fi] = vals
	}

	for i, r := range rows {
		out := make(Row, 0, len(r)+len(it.n.Funcs))
		out = append(out, r...)
		for fi := range it.n.Funcs {
			out = append(out, results[fi][i])
		}
		it.out = append(it.out, out)
	}
	return nil
}

// computeFunc evaluates one window function over all rows.
func (it *windowIter) computeFunc(f *qtree.WinFunc, rows []Row, ctx *Ctx) ([]datum.Datum, error) {
	n := len(rows)
	vals := make([]datum.Datum, n)

	// Partition rows.
	parts := map[string][]int{}
	var order []string
	for i, r := range rows {
		ctx.row = r
		key := make(Row, len(f.PartitionBy))
		for k, pe := range f.PartitionBy {
			d, err := it.e.evalExpr(pe, ctx)
			if err != nil {
				return nil, err
			}
			key[k] = d
		}
		ks := rowKey(key)
		if _, ok := parts[ks]; !ok {
			order = append(order, ks)
		}
		parts[ks] = append(parts[ks], i)
	}

	for _, ks := range order {
		idxs := parts[ks]
		// Order within the partition.
		sortKeys := make([]Row, len(idxs))
		if len(f.OrderBy) > 0 {
			for j, i := range idxs {
				ctx.row = rows[i]
				sk := make(Row, len(f.OrderBy))
				for k, oi := range f.OrderBy {
					d, err := it.e.evalExpr(oi.Expr, ctx)
					if err != nil {
						return nil, err
					}
					sk[k] = d
				}
				sortKeys[j] = sk
			}
			perm := make([]int, len(idxs))
			for j := range perm {
				perm[j] = j
			}
			sort.SliceStable(perm, func(a, b int) bool {
				ka, kb := sortKeys[perm[a]], sortKeys[perm[b]]
				for k := range f.OrderBy {
					c := nullsFirstCompare(ka[k], kb[k])
					if f.OrderBy[k].Desc {
						c = -c
					}
					if c != 0 {
						return c < 0
					}
				}
				return false
			})
			ordered := make([]int, len(idxs))
			orderedKeys := make([]Row, len(idxs))
			for j, p := range perm {
				ordered[j] = idxs[p]
				orderedKeys[j] = sortKeys[p]
			}
			idxs, sortKeys = ordered, orderedKeys
		}

		if f.Op == qtree.WinRowNumber {
			for j, i := range idxs {
				vals[i] = datum.NewInt(int64(j + 1))
			}
			continue
		}

		// Evaluate the argument per row.
		args := make([]datum.Datum, len(idxs))
		for j, i := range idxs {
			if f.Star {
				args[j] = datum.NewInt(1)
				continue
			}
			ctx.row = rows[i]
			d, err := it.e.evalExpr(f.Arg, ctx)
			if err != nil {
				return nil, err
			}
			args[j] = d
		}

		if f.Running && len(f.OrderBy) > 0 {
			// RANGE frame: each row's frame covers all rows up to and
			// including its order-key peers.
			st := newAggState(optimizer.AggSpec{Op: winToAgg(f.Op), Star: f.Star})
			j := 0
			for j < len(idxs) {
				// Advance over the peer group.
				k := j
				for k < len(idxs) && compareKeyRows(sortKeys[k], sortKeys[j]) == 0 {
					if err := st.add(args[k]); err != nil {
						return nil, err
					}
					k++
				}
				peerVal := st.result()
				for ; j < k; j++ {
					vals[idxs[j]] = peerVal
				}
			}
			continue
		}

		// Whole-partition aggregate.
		st := newAggState(optimizer.AggSpec{Op: winToAgg(f.Op), Star: f.Star})
		for _, a := range args {
			if err := st.add(a); err != nil {
				return nil, err
			}
		}
		v := st.result()
		for _, i := range idxs {
			vals[i] = v
		}
	}
	return vals, nil
}

func winToAgg(op qtree.WinOp) qtree.AggOp {
	switch op {
	case qtree.WinCount:
		return qtree.AggCount
	case qtree.WinSum:
		return qtree.AggSum
	case qtree.WinAvg:
		return qtree.AggAvg
	case qtree.WinMin:
		return qtree.AggMin
	case qtree.WinMax:
		return qtree.AggMax
	}
	return qtree.AggCount
}

func (it *windowIter) Next() (Row, error) {
	if it.pos >= len(it.out) {
		return nil, nil
	}
	r := it.out[it.pos]
	it.pos++
	return r, nil
}

func (it *windowIter) Close() error { return it.child.Close() }

// memBytes approximates the materialized input plus appended results.
func (it *windowIter) memBytes() int64 { return rowsBytes(it.out) }
