package exec

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// This file is the batched expression evaluator: evalExprBatch evaluates
// one scalar expression for every live row of a batch at once, and
// evalPredsBatch refines a batch's selection vector through a conjunct
// list. Column references resolve to one slice index per batch instead of
// one map lookup per row, and the scalar kernels (applyBin, cmp3,
// likeMatch) are shared with the row engine so the two paths agree
// element-for-element. Expressions the vectorizer does not specialize
// (subqueries, CASE, function calls, IN lists) fall back to the row
// evaluator over a scratch row, preserving semantics exactly at row-engine
// speed for that node only.

// batchCtx is the per-operator state of batched expression evaluation: the
// operator's output schema (ColID -> column index), the outer correlation
// context, a scratch row + row context for fallback evaluation, and small
// pools for the intermediate vectors and selection buffers so steady-state
// evaluation allocates nothing per batch.
type batchCtx struct {
	e     *env
	cols  map[optimizer.ColID]int
	outer *Ctx

	rowCtx  *Ctx
	scratch Row

	pool    [][]datum.Datum
	selPool [][]int
	// predSelA/B back evalPredsBatch's selection refinement, alternating so
	// one conjunct can read the old selection while writing the new one.
	// They are never handed to nested expression evaluation (which draws
	// from selPool), so a nested AND/OR cannot clobber a selection the
	// conjunct loop is still reading.
	predSelA []int
	predSelB []int
	predFlip bool
}

func newBatchCtx(e *env, schema []optimizer.ColID, outer *Ctx) *batchCtx {
	cols := colMap(schema)
	return &batchCtx{
		e:       e,
		cols:    cols,
		outer:   outer,
		rowCtx:  &Ctx{parent: outer, cols: cols},
		scratch: make(Row, len(schema)),
	}
}

// getVec returns a value vector with at least n elements.
func (bc *batchCtx) getVec(n int) []datum.Datum {
	if k := len(bc.pool); k > 0 {
		v := bc.pool[k-1]
		bc.pool = bc.pool[:k-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([]datum.Datum, n)
}

func (bc *batchCtx) putVec(v []datum.Datum) { bc.pool = append(bc.pool, v) }

// getSel returns an empty selection buffer with capacity n from the pool.
func (bc *batchCtx) getSel(n int) []int {
	if k := len(bc.selPool); k > 0 {
		s := bc.selPool[k-1]
		bc.selPool = bc.selPool[:k-1]
		if cap(s) >= n {
			return s[:0]
		}
	}
	return make([]int, 0, n)
}

func (bc *batchCtx) putSel(s []int) { bc.selPool = append(bc.selPool, s) }

// predSel returns the alternate evalPredsBatch refinement buffer, emptied.
func (bc *batchCtx) predSel(n int) []int {
	bc.predFlip = !bc.predFlip
	buf := &bc.predSelA
	if bc.predFlip {
		buf = &bc.predSelB
	}
	if cap(*buf) < n {
		*buf = make([]int, 0, n)
	}
	return (*buf)[:0]
}

// selCount returns the live-row count of an explicit selection over b.
func selCount(b *Batch, sel []int) int {
	if sel != nil {
		return len(sel)
	}
	return b.N
}

// selAt returns the k-th live physical index of an explicit selection.
func selAt(sel []int, k int) int {
	if sel != nil {
		return sel[k]
	}
	return k
}

// evalExprBatch evaluates x for every row of b selected by sel (nil = all
// physical rows), writing results into dst at the row's physical index.
// Positions outside the selection are left untouched.
func (e *env) evalExprBatch(x qtree.Expr, b *Batch, sel []int, bc *batchCtx, dst []datum.Datum) error {
	n := selCount(b, sel)
	switch v := x.(type) {
	case *qtree.Const:
		for k := 0; k < n; k++ {
			dst[selAt(sel, k)] = v.Val
		}
		return nil

	case *qtree.Param:
		if v.Ord < 0 || v.Ord >= len(e.params) {
			return fmt.Errorf("exec: unbound parameter :%s (slot %d, %d values bound)", v.Name, v.Ord, len(e.params))
		}
		d := e.params[v.Ord]
		for k := 0; k < n; k++ {
			dst[selAt(sel, k)] = d
		}
		return nil

	case *qtree.Col:
		id := optimizer.ColID{From: v.From, Ord: v.Ord}
		if ci, ok := bc.cols[id]; ok {
			col := b.Cols[ci]
			if sel == nil {
				copy(dst[:b.N], col[:b.N])
			} else {
				for _, r := range sel {
					dst[r] = col[r]
				}
			}
			return nil
		}
		// Correlation: the outer row is fixed for the lifetime of this
		// batch, so the reference is a per-batch constant.
		d, ok := bc.outer.lookup(id)
		if !ok {
			return fmt.Errorf("exec: unresolved column q%d.%s(#%d)", v.From, v.Name, v.Ord)
		}
		for k := 0; k < n; k++ {
			dst[selAt(sel, k)] = d
		}
		return nil

	case *qtree.Bin:
		return e.evalBinBatch(v, b, sel, bc, dst)

	case *qtree.Not:
		if err := e.evalExprBatch(v.E, b, sel, bc, dst); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			r := selAt(sel, k)
			dst[r] = datum.TriFromDatum(dst[r]).Not().Datum()
		}
		return nil

	case *qtree.IsNull:
		if err := e.evalExprBatch(v.E, b, sel, bc, dst); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			r := selAt(sel, k)
			res := dst[r].IsNull()
			if v.Neg {
				res = !res
			}
			dst[r] = datum.NewBool(res)
		}
		return nil

	case *qtree.LNNVL:
		if err := e.evalExprBatch(v.E, b, sel, bc, dst); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			r := selAt(sel, k)
			dst[r] = datum.NewBool(datum.TriFromDatum(dst[r]).LNNVL())
		}
		return nil

	case *qtree.IsTrue:
		if err := e.evalExprBatch(v.E, b, sel, bc, dst); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			r := selAt(sel, k)
			dst[r] = datum.NewBool(datum.TriFromDatum(dst[r]).Accept())
		}
		return nil

	case *qtree.Like:
		sv := bc.getVec(b.N)
		pv := bc.getVec(b.N)
		defer bc.putVec(sv)
		defer bc.putVec(pv)
		if err := e.evalExprBatch(v.E, b, sel, bc, sv); err != nil {
			return err
		}
		if err := e.evalExprBatch(v.Pattern, b, sel, bc, pv); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			r := selAt(sel, k)
			s, p := sv[r], pv[r]
			if s.IsNull() || p.IsNull() {
				dst[r] = datum.Null
				continue
			}
			ss, err := s.AsStr()
			if err != nil {
				return fmt.Errorf("exec: LIKE operand %s: %w", v.E, err)
			}
			ps, err := p.AsStr()
			if err != nil {
				return fmt.Errorf("exec: LIKE pattern %s: %w", v.Pattern, err)
			}
			m := likeMatch(ss, ps)
			if v.Neg {
				m = !m
			}
			dst[r] = datum.NewBool(m)
		}
		return nil
	}

	// Fallback: evaluate row-at-a-time over a scratch row. Covers
	// subqueries (with their tuple-iteration caches), CASE, IN lists and
	// function calls.
	for k := 0; k < n; k++ {
		r := selAt(sel, k)
		b.gather(r, bc.scratch)
		bc.rowCtx.row = bc.scratch
		d, err := e.evalExpr(x, bc.rowCtx)
		if err != nil {
			return err
		}
		dst[r] = d
	}
	return nil
}

// evalBinBatch evaluates a binary expression over a batch. AND/OR keep the
// row engine's per-row short-circuit by narrowing the selection the second
// operand is evaluated under: rows already decided by the first operand
// never evaluate the second, so side conditions (division errors, type
// errors) surface exactly when the row engine would surface them.
func (e *env) evalBinBatch(v *qtree.Bin, b *Batch, sel []int, bc *batchCtx, dst []datum.Datum) error {
	n := selCount(b, sel)
	switch v.Op {
	case qtree.OpAnd, qtree.OpOr:
		lv := bc.getVec(b.N)
		defer bc.putVec(lv)
		if err := e.evalExprBatch(v.L, b, sel, bc, lv); err != nil {
			return err
		}
		// Decide rows the first operand settles; collect the rest.
		short := datum.False
		if v.Op == qtree.OpOr {
			short = datum.True
		}
		rest := bc.getSel(n)
		defer bc.putSel(rest)
		for k := 0; k < n; k++ {
			r := selAt(sel, k)
			if datum.TriFromDatum(lv[r]) == short {
				dst[r] = short.Datum()
			} else {
				rest = append(rest, r)
			}
		}
		if len(rest) == 0 {
			return nil
		}
		rv := bc.getVec(b.N)
		defer bc.putVec(rv)
		if err := e.evalExprBatch(v.R, b, rest, bc, rv); err != nil {
			return err
		}
		for _, r := range rest {
			l := datum.TriFromDatum(lv[r])
			rt := datum.TriFromDatum(rv[r])
			if v.Op == qtree.OpAnd {
				dst[r] = l.And(rt).Datum()
			} else {
				dst[r] = l.Or(rt).Datum()
			}
		}
		return nil
	}

	lv := bc.getVec(b.N)
	rv := bc.getVec(b.N)
	defer bc.putVec(lv)
	defer bc.putVec(rv)
	if err := e.evalExprBatch(v.L, b, sel, bc, lv); err != nil {
		return err
	}
	if err := e.evalExprBatch(v.R, b, sel, bc, rv); err != nil {
		return err
	}
	for k := 0; k < n; k++ {
		r := selAt(sel, k)
		d, err := applyBin(v, lv[r], rv[r])
		if err != nil {
			return err
		}
		dst[r] = d
	}
	return nil
}

// evalPredsBatch refines b.Sel through a conjunct list: after it returns,
// only rows for which every predicate is TRUE remain selected. Later
// conjuncts are evaluated only for rows surviving earlier ones, matching
// the row engine's conjunct short-circuit. Observes per-batch selectivity
// when the run exports metrics.
func (e *env) evalPredsBatch(preds []qtree.Expr, b *Batch, bc *batchCtx) error {
	if len(preds) == 0 {
		return nil
	}
	before := b.Rows()
	for _, p := range preds {
		if b.Rows() == 0 {
			break
		}
		dst := bc.getVec(b.N)
		if err := e.evalExprBatch(p, b, b.Sel, bc, dst); err != nil {
			bc.putVec(dst)
			return err
		}
		out := bc.predSel(b.Rows())
		if b.Sel == nil {
			for r := 0; r < b.N; r++ {
				if datum.TriFromDatum(dst[r]).Accept() {
					out = append(out, r)
				}
			}
		} else {
			for _, r := range b.Sel {
				if datum.TriFromDatum(dst[r]).Accept() {
					out = append(out, r)
				}
			}
		}
		b.Sel = out
		bc.putVec(dst)
	}
	if e.selHist != nil && before > 0 {
		e.selHist.Observe(float64(b.Rows()) * 100 / float64(before))
	}
	return nil
}
