package exec

import (
	"sort"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// leftRefCols returns the left-side columns referenced by the join's right
// subtree and conditions; their values key the semijoin/antijoin/lateral
// result caches.
func leftRefCols(n *optimizer.Join) []optimizer.ColID {
	leftSet := map[optimizer.ColID]bool{}
	for _, c := range n.L.Columns() {
		leftSet[c] = true
	}
	seen := map[optimizer.ColID]bool{}
	var out []optimizer.ColID
	addExpr := func(e qtree.Expr) {
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			if c, ok := x.(*qtree.Col); ok {
				id := optimizer.ColID{From: c.From, Ord: c.Ord}
				if leftSet[id] && !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
			if s, ok := x.(*qtree.Subq); ok {
				collectSubqRefs(s.Block, leftSet, seen, &out)
				return false
			}
			return true
		})
	}
	for _, e := range n.On {
		addExpr(e)
	}
	for _, e := range n.EqL {
		addExpr(e)
	}
	// Right subtree expressions (index probe keys, lateral view bodies).
	optimizer.Walk(n.R, func(pn optimizer.PlanNode) {
		for _, e := range nodeExprs(pn) {
			addExpr(e)
		}
	})
	return out
}

func collectSubqRefs(b *qtree.Block, leftSet map[optimizer.ColID]bool, seen map[optimizer.ColID]bool, out *[]optimizer.ColID) {
	b.VisitExprs(func(e qtree.Expr) {
		switch v := e.(type) {
		case *qtree.Col:
			id := optimizer.ColID{From: v.From, Ord: v.Ord}
			if leftSet[id] && !seen[id] {
				seen[id] = true
				*out = append(*out, id)
			}
		case *qtree.Subq:
			collectSubqRefs(v.Block, leftSet, seen, out)
		}
	})
	for _, f := range b.From {
		if f.View != nil {
			collectSubqRefs(f.View, leftSet, seen, out)
		}
	}
	if b.Set != nil {
		for _, c := range b.Set.Children {
			collectSubqRefs(c, leftSet, seen, out)
		}
	}
}

// nodeExprs gathers the expressions a plan node evaluates.
func nodeExprs(n optimizer.PlanNode) []qtree.Expr {
	switch v := n.(type) {
	case *optimizer.SeqScan:
		return v.Filter
	case *optimizer.IndexScan:
		out := append([]qtree.Expr(nil), v.EqKeys...)
		if v.Lo != nil {
			out = append(out, v.Lo)
		}
		if v.Hi != nil {
			out = append(out, v.Hi)
		}
		return append(out, v.Filter...)
	case *optimizer.Filter:
		return v.Preds
	case *optimizer.Project:
		return v.Exprs
	case *optimizer.Join:
		out := append([]qtree.Expr(nil), v.On...)
		out = append(out, v.EqL...)
		return append(out, v.EqR...)
	case *optimizer.Agg:
		out := append([]qtree.Expr(nil), v.GroupBy...)
		for _, a := range v.Aggs {
			if a.Arg != nil {
				out = append(out, a.Arg)
			}
		}
		return out
	case *optimizer.Sort:
		return v.Keys
	}
	return nil
}

// nlJoinIter is the nested-loops join for all kinds. The right side is
// materialized once per Open unless the join is lateral (correlated), in
// which case it is re-opened per left row with the left row bound as
// correlation; lateral results are cached per distinct correlation values.
// Semijoin and antijoin stop at the first match and cache their verdicts
// for duplicate left key values (§2.1.1).
type nlJoinIter struct {
	e    *env
	n    *optimizer.Join
	l, r iterator

	outer    *Ctx
	leftCtx  *Ctx
	combCtx  *Ctx
	leftCols int

	matRight   []Row // materialized right (non-lateral)
	leftRow    Row
	rightRows  []Row // right rows for the current left row
	rightPos   int
	emittedAny bool // for left/full outer: matched the current left row
	needLeft   bool

	// Full outer state: which materialized right rows ever matched, and
	// the emit cursor for the trailing unmatched-right phase.
	rightMatched []bool
	tailPos      int
	leftDone     bool

	cacheCols []optimizer.ColID
	// verdictCache caches semi/anti verdicts by left key values.
	verdictCache map[string]bool
	// lateralCache caches lateral right row sets by correlation values.
	lateralCache map[string][]Row
}

func newNLJoin(e *env, n *optimizer.Join, l, r iterator) *nlJoinIter {
	return &nlJoinIter{e: e, n: n, l: l, r: r, cacheCols: leftRefCols(n)}
}

func (it *nlJoinIter) Open(outer *Ctx) error {
	it.outer = outer
	it.leftCols = len(it.n.L.Columns())
	it.leftCtx = &Ctx{parent: outer, cols: colMap(it.n.L.Columns())}
	comb := append([]optimizer.ColID(nil), it.n.L.Columns()...)
	comb = append(comb, it.n.R.Columns()...)
	it.combCtx = &Ctx{parent: outer, cols: colMap(comb)}
	it.needLeft = true
	it.leftRow = nil
	it.leftDone = false
	it.tailPos = 0
	it.verdictCache = map[string]bool{}
	it.lateralCache = map[string][]Row{}
	if err := it.l.Open(outer); err != nil {
		return err
	}
	it.matRight = nil
	it.rightMatched = nil
	if !it.n.RLateral {
		if err := it.r.Open(outer); err != nil {
			return err
		}
		for {
			r, err := it.r.Next()
			if err != nil {
				return err
			}
			if r == nil {
				break
			}
			it.matRight = append(it.matRight, r)
		}
		if it.n.Kind == qtree.JoinFullOuter {
			it.rightMatched = make([]bool, len(it.matRight))
		}
	}
	return nil
}

// leftKey renders the cache key for the current left row.
func (it *nlJoinIter) leftKey() (string, bool) {
	if len(it.cacheCols) == 0 {
		return "", false
	}
	key := make(Row, len(it.cacheCols))
	for i, id := range it.cacheCols {
		d, ok := it.leftCtx.lookup(id)
		if !ok {
			return "", false
		}
		key[i] = d
	}
	return rowKey(key), true
}

// rightForCurrentLeft returns the right rows for the current left row.
func (it *nlJoinIter) rightForCurrentLeft() ([]Row, error) {
	if !it.n.RLateral {
		return it.matRight, nil
	}
	key, cacheable := it.leftKey()
	if cacheable {
		if rows, ok := it.lateralCache[key]; ok {
			return rows, nil
		}
	}
	if err := it.r.Open(it.leftCtx); err != nil {
		return nil, err
	}
	var rows []Row
	for {
		r, err := it.r.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		rows = append(rows, r)
	}
	if cacheable {
		it.lateralCache[key] = rows
	}
	return rows, nil
}

func (it *nlJoinIter) Next() (Row, error) {
	for {
		if it.leftDone {
			// Full outer tail: emit right rows that never matched, padded
			// with NULLs on the left.
			for it.tailPos < len(it.matRight) {
				i := it.tailPos
				it.tailPos++
				if it.rightMatched[i] {
					continue
				}
				comb := make(Row, it.leftCols+len(it.matRight[i]))
				copy(comb[it.leftCols:], it.matRight[i])
				return comb, nil
			}
			return nil, nil
		}
		if it.needLeft {
			lr, err := it.l.Next()
			if err != nil {
				return nil, err
			}
			if lr == nil {
				if it.n.Kind == qtree.JoinFullOuter {
					it.leftDone = true
					continue
				}
				return nil, nil
			}
			it.leftRow = lr
			it.leftCtx.row = lr
			it.needLeft = false
			it.emittedAny = false
			it.rightPos = 0

			switch it.n.Kind {
			case qtree.JoinSemi, qtree.JoinAnti, qtree.JoinNullAwareAnti:
				emit, err := it.evalSemiAnti()
				if err != nil {
					return nil, err
				}
				it.needLeft = true
				if emit {
					return it.leftRow, nil
				}
				continue
			default:
				rows, err := it.rightForCurrentLeft()
				if err != nil {
					return nil, err
				}
				it.rightRows = rows
			}
		}

		// Inner / left outer / full outer row-at-a-time.
		for it.rightPos < len(it.rightRows) {
			ri := it.rightPos
			rr := it.rightRows[ri]
			it.rightPos++
			comb := make(Row, 0, it.leftCols+len(rr))
			comb = append(comb, it.leftRow...)
			comb = append(comb, rr...)
			it.combCtx.row = comb
			ok, err := it.e.evalPreds(it.n.On, it.combCtx)
			if err != nil {
				return nil, err
			}
			if ok {
				it.emittedAny = true
				if it.rightMatched != nil {
					it.rightMatched[ri] = true
				}
				return comb, nil
			}
		}
		// Right exhausted for this left row.
		if (it.n.Kind == qtree.JoinLeftOuter || it.n.Kind == qtree.JoinFullOuter) && !it.emittedAny {
			comb := make(Row, it.leftCols+len(it.n.R.Columns()))
			copy(comb, it.leftRow)
			it.needLeft = true
			return comb, nil
		}
		it.needLeft = true
	}
}

// evalSemiAnti computes the semijoin/antijoin verdict for the current left
// row with stop-at-first-match and verdict caching.
func (it *nlJoinIter) evalSemiAnti() (bool, error) {
	key, cacheable := it.leftKey()
	if cacheable {
		if v, ok := it.verdictCache[key]; ok {
			return v, nil
		}
	}
	rows, err := it.rightForCurrentLeft()
	if err != nil {
		return false, err
	}
	verdict := false
	switch it.n.Kind {
	case qtree.JoinSemi:
		for _, rr := range rows {
			ok, err := it.evalOn(rr)
			if err != nil {
				return false, err
			}
			if ok == datum.True {
				verdict = true
				break // stop at first match
			}
		}
	case qtree.JoinAnti:
		verdict = true
		for _, rr := range rows {
			ok, err := it.evalOn(rr)
			if err != nil {
				return false, err
			}
			if ok == datum.True {
				verdict = false
				break
			}
		}
	case qtree.JoinNullAwareAnti:
		// NOT IN semantics: emit only if the condition is strictly FALSE
		// for every right row (an UNKNOWN anywhere suppresses the row);
		// the empty right side emits.
		verdict = true
		for _, rr := range rows {
			ok, err := it.evalOn(rr)
			if err != nil {
				return false, err
			}
			if ok != datum.False {
				verdict = false
				break
			}
		}
	}
	if cacheable {
		it.verdictCache[key] = verdict
	}
	return verdict, nil
}

func (it *nlJoinIter) evalOn(rr Row) (datum.TriBool, error) {
	comb := make(Row, 0, it.leftCols+len(rr))
	comb = append(comb, it.leftRow...)
	comb = append(comb, rr...)
	it.combCtx.row = comb
	res := datum.True
	for _, p := range it.n.On {
		t, err := it.e.evalBool(p, it.combCtx)
		if err != nil {
			return datum.Unknown, err
		}
		res = res.And(t)
		if res == datum.False {
			return datum.False, nil
		}
	}
	return res, nil
}

func (it *nlJoinIter) Close() error {
	it.l.Close()
	return it.r.Close()
}

// memBytes approximates the materialized right side plus the lateral and
// semi/anti verdict caches.
func (it *nlJoinIter) memBytes() int64 {
	b := rowsBytes(it.matRight)
	for k, rows := range it.lateralCache {
		b += 48 + int64(len(k)) + rowsBytes(rows)
	}
	for k := range it.verdictCache {
		b += 48 + int64(len(k)) + 1
	}
	return b
}

// hashJoinIter builds a hash table on the right input keyed by EqR and
// probes with left rows keyed by EqL.
type hashJoinIter struct {
	e    *env
	n    *optimizer.Join
	l, r iterator

	outer   *Ctx
	leftCtx *Ctx
	combCtx *Ctx

	table        map[string][]int
	buildRows    []Row
	buildMatched []bool
	buildNulls   bool

	leftRow   Row
	bucket    []int
	bucketPos int
	needLeft  bool
	matched   bool
	leftDone  bool
	tailPos   int
}

func newHashJoin(e *env, n *optimizer.Join, l, r iterator) *hashJoinIter {
	return &hashJoinIter{e: e, n: n, l: l, r: r}
}

func (it *hashJoinIter) Open(outer *Ctx) error {
	it.outer = outer
	it.leftCtx = &Ctx{parent: outer, cols: colMap(it.n.L.Columns())}
	comb := append([]optimizer.ColID(nil), it.n.L.Columns()...)
	comb = append(comb, it.n.R.Columns()...)
	it.combCtx = &Ctx{parent: outer, cols: colMap(comb)}
	it.table = map[string][]int{}
	it.buildRows = nil
	it.buildMatched = nil
	it.buildNulls = false
	it.needLeft = true
	it.leftDone = false
	it.tailPos = 0

	if err := it.r.Open(outer); err != nil {
		return err
	}
	rightCtx := &Ctx{parent: outer, cols: colMap(it.n.R.Columns())}
	for {
		rr, err := it.r.Next()
		if err != nil {
			return err
		}
		if rr == nil {
			break
		}
		idx := len(it.buildRows)
		it.buildRows = append(it.buildRows, rr)
		rightCtx.row = rr
		key, hasNull, err := it.evalKey(it.n.EqR, rightCtx)
		if err != nil {
			return err
		}
		if hasNull {
			// Null keys never match under plain equality; under a full
			// outer join the row still surfaces in the unmatched tail.
			it.buildNulls = true
			continue
		}
		it.table[key] = append(it.table[key], idx)
	}
	if it.n.Kind == qtree.JoinFullOuter {
		it.buildMatched = make([]bool, len(it.buildRows))
	}
	return it.l.Open(outer)
}

func (it *hashJoinIter) evalKey(exprs []qtree.Expr, ctx *Ctx) (string, bool, error) {
	vals := make(Row, len(exprs))
	hasNull := false
	for i, e := range exprs {
		d, err := it.e.evalExpr(e, ctx)
		if err != nil {
			return "", false, err
		}
		if d.IsNull() && !it.n.NullSafe(i) {
			hasNull = true
		}
		vals[i] = d
	}
	return rowKey(vals), hasNull, nil
}

func (it *hashJoinIter) Next() (Row, error) {
	for {
		if it.leftDone {
			// Full outer tail: unmatched build rows, left side padded.
			nLeft := len(it.n.L.Columns())
			for it.tailPos < len(it.buildRows) {
				i := it.tailPos
				it.tailPos++
				if it.buildMatched[i] {
					continue
				}
				comb := make(Row, nLeft+len(it.buildRows[i]))
				copy(comb[nLeft:], it.buildRows[i])
				return comb, nil
			}
			return nil, nil
		}
		if it.needLeft {
			lr, err := it.l.Next()
			if err != nil {
				return nil, err
			}
			if lr == nil {
				if it.n.Kind == qtree.JoinFullOuter {
					it.leftDone = true
					continue
				}
				return nil, nil
			}
			it.leftRow = lr
			it.leftCtx.row = lr
			it.matched = false
			it.bucketPos = 0

			key, hasNull, err := it.evalKey(it.n.EqL, it.leftCtx)
			if err != nil {
				return nil, err
			}
			switch it.n.Kind {
			case qtree.JoinSemi:
				if hasNull {
					continue
				}
				ok, err := it.anyMatch(key)
				if err != nil {
					return nil, err
				}
				if ok {
					return it.leftRow, nil
				}
				continue
			case qtree.JoinAnti:
				if hasNull {
					// Unknown comparison: NOT EXISTS-style anti keeps row.
					return it.leftRow, nil
				}
				ok, err := it.anyMatch(key)
				if err != nil {
					return nil, err
				}
				if !ok {
					return it.leftRow, nil
				}
				continue
			case qtree.JoinNullAwareAnti:
				if len(it.buildRows) == 0 {
					return it.leftRow, nil // NOT IN over empty set is TRUE
				}
				if it.buildNulls || hasNull {
					continue // UNKNOWN everywhere: row suppressed
				}
				ok, err := it.anyMatch(key)
				if err != nil {
					return nil, err
				}
				if !ok {
					return it.leftRow, nil
				}
				continue
			default:
				if hasNull {
					it.bucket = nil
				} else {
					it.bucket = it.table[key]
				}
			}
			it.needLeft = false
		}

		for it.bucketPos < len(it.bucket) {
			ri := it.bucket[it.bucketPos]
			rr := it.buildRows[ri]
			it.bucketPos++
			comb := make(Row, 0, len(it.leftRow)+len(rr))
			comb = append(comb, it.leftRow...)
			comb = append(comb, rr...)
			it.combCtx.row = comb
			ok, err := it.e.evalPreds(it.n.On, it.combCtx)
			if err != nil {
				return nil, err
			}
			if ok {
				it.matched = true
				if it.buildMatched != nil {
					it.buildMatched[ri] = true
				}
				return comb, nil
			}
		}
		if (it.n.Kind == qtree.JoinLeftOuter || it.n.Kind == qtree.JoinFullOuter) && !it.matched {
			comb := make(Row, len(it.leftRow)+len(it.n.R.Columns()))
			copy(comb, it.leftRow)
			it.needLeft = true
			return comb, nil
		}
		it.needLeft = true
	}
}

// anyMatch reports whether any build row in the key's bucket passes the
// residual conditions.
func (it *hashJoinIter) anyMatch(key string) (bool, error) {
	for _, ri := range it.table[key] {
		rr := it.buildRows[ri]
		comb := make(Row, 0, len(it.leftRow)+len(rr))
		comb = append(comb, it.leftRow...)
		comb = append(comb, rr...)
		it.combCtx.row = comb
		ok, err := it.e.evalPreds(it.n.On, it.combCtx)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func (it *hashJoinIter) Close() error {
	it.l.Close()
	return it.r.Close()
}

// memBytes approximates the build side: rows plus hash-table buckets.
func (it *hashJoinIter) memBytes() int64 {
	b := rowsBytes(it.buildRows)
	for k, bucket := range it.table {
		b += 48 + int64(len(k)) + 8*int64(len(bucket))
	}
	return b
}

// mergeJoinIter sorts both inputs by the equi keys and merges (inner join).
type mergeJoinIter struct {
	e    *env
	n    *optimizer.Join
	l, r iterator

	outer   *Ctx
	combCtx *Ctx

	lRows, rRows []Row
	lKeys, rKeys []Row
	li, ri       int
	groupL       []int // current matching left rows
	groupR       []int
	gi, gj       int
	inGroup      bool
}

func newMergeJoin(e *env, n *optimizer.Join, l, r iterator) *mergeJoinIter {
	return &mergeJoinIter{e: e, n: n, l: l, r: r}
}

func (it *mergeJoinIter) Open(outer *Ctx) error {
	it.outer = outer
	comb := append([]optimizer.ColID(nil), it.n.L.Columns()...)
	comb = append(comb, it.n.R.Columns()...)
	it.combCtx = &Ctx{parent: outer, cols: colMap(comb)}
	var err error
	it.lRows, it.lKeys, err = it.drainSorted(it.l, it.n.L.Columns(), it.n.EqL, outer)
	if err != nil {
		return err
	}
	it.rRows, it.rKeys, err = it.drainSorted(it.r, it.n.R.Columns(), it.n.EqR, outer)
	if err != nil {
		return err
	}
	it.li, it.ri = 0, 0
	it.inGroup = false
	return nil
}

func (it *mergeJoinIter) drainSorted(src iterator, cols []optimizer.ColID, keys []qtree.Expr, outer *Ctx) ([]Row, []Row, error) {
	if err := src.Open(outer); err != nil {
		return nil, nil, err
	}
	ctx := &Ctx{parent: outer, cols: colMap(cols)}
	var rows []Row
	var keyVals []Row
	for {
		r, err := src.Next()
		if err != nil {
			return nil, nil, err
		}
		if r == nil {
			break
		}
		ctx.row = r
		kv := make(Row, len(keys))
		null := false
		for i, k := range keys {
			d, err := it.e.evalExpr(k, ctx)
			if err != nil {
				return nil, nil, err
			}
			if d.IsNull() {
				null = true
			}
			kv[i] = d
		}
		if null {
			continue // null keys never join
		}
		rows = append(rows, r)
		keyVals = append(keyVals, kv)
	}
	// Sort rows by keys.
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	lessKey := func(a, b Row) int {
		for i := range a {
			c := nullsFirstCompare(a[i], b[i])
			if c != 0 {
				return c
			}
		}
		return 0
	}
	sort.SliceStable(idx, func(a, b int) bool { return lessKey(keyVals[idx[a]], keyVals[idx[b]]) < 0 })
	outRows := make([]Row, len(rows))
	outKeys := make([]Row, len(rows))
	for i, j := range idx {
		outRows[i] = rows[j]
		outKeys[i] = keyVals[j]
	}
	return outRows, outKeys, nil
}

func (it *mergeJoinIter) Next() (Row, error) {
	for {
		if it.inGroup {
			for it.gi < len(it.groupL) {
				for it.gj < len(it.groupR) {
					lr := it.lRows[it.groupL[it.gi]]
					rr := it.rRows[it.groupR[it.gj]]
					it.gj++
					comb := make(Row, 0, len(lr)+len(rr))
					comb = append(comb, lr...)
					comb = append(comb, rr...)
					it.combCtx.row = comb
					ok, err := it.e.evalPreds(it.n.On, it.combCtx)
					if err != nil {
						return nil, err
					}
					if ok {
						return comb, nil
					}
				}
				it.gj = 0
				it.gi++
			}
			it.inGroup = false
		}
		if it.li >= len(it.lRows) || it.ri >= len(it.rRows) {
			return nil, nil
		}
		c := compareKeyRows(it.lKeys[it.li], it.rKeys[it.ri])
		switch {
		case c < 0:
			it.li++
		case c > 0:
			it.ri++
		default:
			// Collect equal-key groups on both sides.
			it.groupL = it.groupL[:0]
			it.groupR = it.groupR[:0]
			key := it.lKeys[it.li]
			for it.li < len(it.lRows) && compareKeyRows(it.lKeys[it.li], key) == 0 {
				it.groupL = append(it.groupL, it.li)
				it.li++
			}
			for it.ri < len(it.rRows) && compareKeyRows(it.rKeys[it.ri], key) == 0 {
				it.groupR = append(it.groupR, it.ri)
				it.ri++
			}
			it.gi, it.gj = 0, 0
			it.inGroup = true
		}
	}
}

func compareKeyRows(a, b Row) int {
	for i := range a {
		c := nullsFirstCompare(a[i], b[i])
		if c != 0 {
			return c
		}
	}
	return 0
}

func (it *mergeJoinIter) Close() error {
	it.l.Close()
	return it.r.Close()
}

// memBytes approximates both sorted sides with their key columns.
func (it *mergeJoinIter) memBytes() int64 {
	return rowsBytes(it.lRows) + rowsBytes(it.rRows) +
		rowsBytes(it.lKeys) + rowsBytes(it.rKeys)
}
