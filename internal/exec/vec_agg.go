package exec

import (
	"repro/internal/datum"
	"repro/internal/optimizer"
)

// batchAggIter is the vectorized hash aggregation: grouping expressions and
// aggregate arguments are evaluated column-wise per input batch, then folded
// into the same aggHash core the row engine uses, so grouping-set masking,
// NULL handling, DISTINCT tracking and output ordering are shared code.
type batchAggIter struct {
	e     *env
	n     *optimizer.Agg
	child batchIterator

	out []Row
	pos int
	b   Batch
}

func newBatchAgg(e *env, n *optimizer.Agg, child batchIterator) *batchAggIter {
	return &batchAggIter{e: e, n: n, child: child}
}

func (it *batchAggIter) Open(outer *Ctx) error {
	if err := it.child.Open(outer); err != nil {
		return err
	}
	it.out = nil
	it.pos = 0
	bc := newBatchCtx(it.e, it.n.Child.Columns(), outer)
	h := newAggHash(it.n)
	gbVecs := make([][]datum.Datum, len(it.n.GroupBy))
	argVecs := make([][]datum.Datum, len(it.n.Aggs))

	for {
		b, err := it.child.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i, g := range it.n.GroupBy {
			gbVecs[i] = bc.getVec(b.N)
			if err := it.e.evalExprBatch(g, b, b.Sel, bc, gbVecs[i]); err != nil {
				return err
			}
		}
		for i, a := range it.n.Aggs {
			argVecs[i] = nil
			if a.Star || a.Arg == nil {
				continue
			}
			argVecs[i] = bc.getVec(b.N)
			if err := it.e.evalExprBatch(a.Arg, b, b.Sel, bc, argVecs[i]); err != nil {
				return err
			}
		}
		for k := 0; k < b.Rows(); k++ {
			r := b.Live(k)
			gbVals := make(Row, len(it.n.GroupBy))
			for i := range it.n.GroupBy {
				gbVals[i] = gbVecs[i][r]
			}
			argVals := make(Row, len(it.n.Aggs))
			for i := range it.n.Aggs {
				if argVecs[i] != nil {
					argVals[i] = argVecs[i][r]
				}
			}
			if err := h.update(gbVals, argVals); err != nil {
				return err
			}
		}
		for i := range gbVecs {
			bc.putVec(gbVecs[i])
		}
		for i := range argVecs {
			if argVecs[i] != nil {
				bc.putVec(argVecs[i])
			}
		}
	}
	it.out = h.results()
	return nil
}

func (it *batchAggIter) NextBatch() (*Batch, error) {
	if it.pos >= len(it.out) {
		return nil, nil
	}
	width := len(it.n.Columns())
	it.b.reset(width, it.e.batchSize)
	for it.b.N < it.e.batchSize && it.pos < len(it.out) {
		it.b.appendRow(it.out[it.pos])
		it.pos++
	}
	return &it.b, nil
}

func (it *batchAggIter) Close() error { return it.child.Close() }

// memBytes approximates the materialized group rows (same formula as the
// row engine's aggIter).
func (it *batchAggIter) memBytes() int64 { return rowsBytes(it.out) }
