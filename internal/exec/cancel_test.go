package exec

import (
	"context"
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

// TestRunContextCanceled: a cancelled context aborts execution with an
// error naming the cancellation; an active context changes nothing.
func TestRunContextCanceled(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := qtree.BindSQL(`SELECT e.emp_id FROM employees e WHERE e.salary > 0`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunContext(context.Background(), db, plan)
	if err != nil {
		t.Fatalf("RunContext(Background): %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("query returned no rows")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, db, plan); err == nil {
		t.Fatal("RunContext with a cancelled context succeeded")
	} else if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("cancellation error does not name the cause: %v", err)
	}
}

// TestRunContextCanceledBlockingOperator: cancellation must also reach
// plans whose top operators block (aggregation drains its child in Open),
// because the poll sits in the leaf scans every row flows through.
func TestRunContextCanceledBlockingOperator(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 1)
	q, err := qtree.BindSQL(
		`SELECT e.dept_id, COUNT(*) c FROM employees e, job_history j
		 WHERE e.emp_id = j.emp_id GROUP BY e.dept_id`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, db, plan); err == nil {
		t.Fatal("RunContext with a cancelled context succeeded through a blocking operator")
	}
}
