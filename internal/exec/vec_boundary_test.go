package exec_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// boundarySizes puts EMPLOYEES just past two full default batches and
// empties JOB_HISTORY entirely, so scans cross the 1024-row boundary and
// every operator also sees a zero-row input.
func boundarySizes() testkit.Sizes {
	return testkit.Sizes{
		Employees:   2600,
		Departments: 30,
		Locations:   8,
		JobHistory:  0,
		Jobs:        10,
		Sales:       500,
		Accounts:    40,
	}
}

// boundaryQueries cover the vectorized operators at batch edges: filters
// that keep everything, cut everything, or select sparsely; aggregation
// (grouped and scalar-over-empty); hash joins including an empty build
// side; distinct; set operations; ROWNUM limits that cut mid-batch; and
// expression evaluation with NULLs, concatenation and LIKE.
var boundaryQueries = []string{
	`SELECT e.emp_id, e.salary FROM employees e WHERE e.salary > 3000`,
	`SELECT e.emp_id FROM employees e WHERE e.emp_id < 0`,
	`SELECT e.emp_id FROM employees e WHERE e.emp_id = 1025`,
	`SELECT j.emp_id FROM job_history j WHERE j.dept_id > 0`,
	`SELECT COUNT(*), MAX(j.dept_id) FROM job_history j`,
	`SELECT e.dept_id, COUNT(*), AVG(e.salary) FROM employees e GROUP BY e.dept_id`,
	`SELECT e.employee_name, d.department_name FROM employees e, departments d
	 WHERE e.dept_id = d.dept_id AND e.salary > 2000`,
	`SELECT e.emp_id FROM employees e, job_history j WHERE e.emp_id = j.emp_id`,
	`SELECT e.emp_id FROM employees e WHERE e.dept_id NOT IN (SELECT d.loc_id FROM departments d)`,
	`SELECT e.emp_id FROM employees e
	 WHERE EXISTS (SELECT 1 FROM departments d WHERE d.dept_id = e.dept_id)`,
	`SELECT DISTINCT e.dept_id FROM employees e`,
	`SELECT e.dept_id FROM employees e MINUS SELECT d.loc_id FROM departments d`,
	`SELECT e.employee_name || '!', e.salary + 1 FROM employees e
	 WHERE e.dept_id IS NULL OR e.salary > 1000`,
	`SELECT e.emp_id FROM employees e WHERE e.employee_name LIKE '%a%'`,
	`SELECT v.emp_id FROM (SELECT e.emp_id emp_id FROM employees e ORDER BY e.emp_id) v
	 WHERE rownum <= 1500`,
	`SELECT v.emp_id FROM (SELECT e.emp_id emp_id FROM employees e ORDER BY e.emp_id) v
	 WHERE rownum <= 7`,
}

// boundaryBatchSizes are the edge capacities: single-row batches, one off
// either side of the default, and the default itself.
var boundaryBatchSizes = []int{1, 2, 3, 1023, 1024, 1025}

func planSQL(t *testing.T, db *storage.DB, sql string) *optimizer.Plan {
	t.Helper()
	q := qtree.MustBind(sql, db.Catalog)
	plan, err := optimizer.New(db.Catalog).Optimize(q)
	if err != nil {
		t.Fatalf("optimize: %v\nsql: %s", err, sql)
	}
	return plan
}

func sortedRows(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestBatchBoundaries runs every boundary query at every edge batch size
// and requires results identical to the row engine's. Any off-by-one in
// batch fill, selection-vector refinement, mid-batch limit cuts or
// empty-input handling shows up as a row diff.
func TestBatchBoundaries(t *testing.T) {
	db := testkit.NewDB(boundarySizes(), 3)
	ctx := context.Background()
	for qi, sql := range boundaryQueries {
		plan := planSQL(t, db, sql)
		ref, err := exec.RunWith(ctx, db, plan, exec.Options{RowExec: true})
		if err != nil {
			t.Fatalf("row engine: %v\nsql: %s", err, sql)
		}
		want := sortedRows(ref)
		for _, bs := range boundaryBatchSizes {
			t.Run(fmt.Sprintf("q%d/bs%d", qi, bs), func(t *testing.T) {
				res, err := exec.RunWith(ctx, db, plan, exec.Options{BatchSize: bs})
				if err != nil {
					t.Fatalf("batch engine (size %d): %v\nsql: %s", bs, err, sql)
				}
				got := sortedRows(res)
				if len(got) != len(want) {
					t.Fatalf("batch size %d: %d rows, row engine %d\nsql: %s",
						bs, len(got), len(want), sql)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("batch size %d: row %d = %q, row engine %q\nsql: %s",
							bs, i, got[i], want[i], sql)
					}
				}
			})
		}
	}
}
