package exec

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// subqRuntime caches the compiled iterator, the full correlation column
// set, and — for uncorrelated subqueries — the materialized result with
// lookup structures, so an uncorrelated subquery executes exactly once no
// matter how many outer rows probe it (matching the optimizer's
// effective-execution model).
type subqRuntime struct {
	iter         iterator
	corrCols     []optimizer.ColID
	uncorrelated bool

	// Materialization state for uncorrelated subqueries.
	matDone bool
	rows    []Row

	// inSet answers single-row IN probes in O(1): keys of null-free rows.
	inSet       map[string]bool
	inAnyNull   bool // some row has a null in a compared column
	statsDone   bool
	statsBroken bool        // column mixes incomparable kinds; min/max unusable
	minV, maxV  datum.Datum // single-column subqueries only
	colHasNull  bool
	colNonEmpty bool
}

// subqRuntimes lazily compiles subquery iterators.
func (e *env) subqRuntime(s *qtree.Subq) (*subqRuntime, error) {
	if e.subqIters == nil {
		e.subqIters = map[*qtree.Subq]*subqRuntime{}
	}
	if rt, ok := e.subqIters[s]; ok {
		return rt, nil
	}
	sp, ok := e.plan.Subplans[s]
	if !ok {
		return nil, fmt.Errorf("exec: no subplan compiled for %s subquery", s.Kind)
	}
	corrCols := outerColIDs(s.Block)
	// Uncorrelated subplans execute exactly once and are materialized, so
	// they benefit from the batch engine; the RowIter adapter feeds the
	// materialization row-wise. Correlated subplans are re-opened per outer
	// row over usually-small inputs, where per-open batch buffering would
	// cost more than it saves — they stay on the row engine.
	var it iterator
	if len(corrCols) == 0 && !e.opts.RowExec {
		bit, err := buildBatch(e, sp.Root)
		if err != nil {
			return nil, err
		}
		it = NewRowIter(bit)
	} else {
		rit, err := build(e, sp.Root)
		if err != nil {
			return nil, err
		}
		it = rit
	}
	rt := &subqRuntime{iter: it, corrCols: corrCols}
	rt.uncorrelated = len(rt.corrCols) == 0
	e.subqIters[s] = rt
	return rt, nil
}

// outerColIDs returns every (from, ord) pair referenced in the block's
// subtree whose from item is defined outside the subtree — the full
// correlation signature used as the TIS cache key.
func outerColIDs(b *qtree.Block) []optimizer.ColID {
	defined := map[qtree.FromID]bool{}
	var markDefined func(blk *qtree.Block)
	markDefined = func(blk *qtree.Block) {
		for _, f := range blk.From {
			defined[f.ID] = true
			if f.View != nil {
				markDefined(f.View)
			}
		}
		if blk.Set != nil {
			for _, c := range blk.Set.Children {
				markDefined(c)
			}
		}
		blk.VisitExprs(func(e qtree.Expr) {
			if s, ok := e.(*qtree.Subq); ok {
				markDefined(s.Block)
			}
		})
	}
	markDefined(b)

	seen := map[optimizer.ColID]bool{}
	var out []optimizer.ColID
	var walk func(blk *qtree.Block)
	walk = func(blk *qtree.Block) {
		blk.VisitExprs(func(e qtree.Expr) {
			switch v := e.(type) {
			case *qtree.Col:
				if !defined[v.From] {
					id := optimizer.ColID{From: v.From, Ord: v.Ord}
					if !seen[id] {
						seen[id] = true
						out = append(out, id)
					}
				}
			case *qtree.Subq:
				walk(v.Block)
			}
		})
		for _, f := range blk.From {
			if f.View != nil {
				walk(f.View)
			}
		}
		if blk.Set != nil {
			for _, c := range blk.Set.Children {
				walk(c)
			}
		}
	}
	walk(b)
	return out
}

// execute runs the subquery and returns all rows; for uncorrelated
// subqueries the result is materialized once and reused.
func (e *env) execute(rt *subqRuntime, ctx *Ctx, earlyOut func(n int) bool) ([]Row, error) {
	if rt.uncorrelated && rt.matDone {
		return rt.rows, nil
	}
	e.SubqExecs++
	if err := rt.iter.Open(ctx); err != nil {
		return nil, err
	}
	var rows []Row
	for {
		r, err := rt.iter.Next()
		if err != nil {
			return nil, err
		}
		if r == nil {
			break
		}
		rows = append(rows, r)
		// Early exit is only safe when the result is not being cached.
		if !rt.uncorrelated && earlyOut != nil && earlyOut(len(rows)) {
			break
		}
	}
	if rt.uncorrelated {
		rt.matDone = true
		rt.rows = rows
	}
	return rows, nil
}

// buildInSet prepares the O(1) lookup structures over the materialized
// rows.
func (rt *subqRuntime) buildInSet() {
	if rt.inSet != nil {
		return
	}
	rt.inSet = make(map[string]bool, len(rt.rows))
	for _, r := range rt.rows {
		hasNull := false
		for _, d := range r {
			if d.IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			rt.inAnyNull = true
			continue
		}
		rt.inSet[rowKey(r)] = true
	}
}

// buildColStats prepares min/max over the first output column for
// quantified comparisons. A column mixing incomparable kinds (reachable
// from user SQL via e.g. a CASE select item) marks the stats broken and the
// caller falls back to the row scan instead of panicking.
func (rt *subqRuntime) buildColStats() {
	if rt.statsDone {
		return
	}
	rt.statsDone = true
	for _, r := range rt.rows {
		v := r[0]
		if v.IsNull() {
			rt.colHasNull = true
			continue
		}
		rt.colNonEmpty = true
		if rt.minV.IsNull() {
			rt.minV = v
		} else if c, err := datum.Compare(v, rt.minV); err != nil {
			rt.statsBroken = true
			return
		} else if c < 0 {
			rt.minV = v
		}
		if rt.maxV.IsNull() {
			rt.maxV = v
		} else if c, err := datum.Compare(v, rt.maxV); err != nil {
			rt.statsBroken = true
			return
		} else if c > 0 {
			rt.maxV = v
		}
	}
}

// evalSubq evaluates a subquery expression. Correlated subqueries run under
// tuple iteration semantics with result caching per distinct (correlation,
// left-hand) values (§2.1.1); uncorrelated subqueries are materialized once
// and probed in constant time.
func (e *env) evalSubq(s *qtree.Subq, ctx *Ctx) (datum.Datum, error) {
	rt, err := e.subqRuntime(s)
	if err != nil {
		return datum.Null, err
	}

	// Left-hand side values.
	left := make(Row, len(s.Left))
	for i, le := range s.Left {
		d, err := e.evalExpr(le, ctx)
		if err != nil {
			return datum.Null, err
		}
		left[i] = d
	}

	if rt.uncorrelated {
		return e.evalUncorrelated(s, rt, ctx, left)
	}

	// Correlated: memoize by correlation + left values.
	cacheable := true
	key := make(Row, 0, len(rt.corrCols)+len(left))
	for _, id := range rt.corrCols {
		d, ok := ctx.lookup(id)
		if !ok {
			cacheable = false
			break
		}
		key = append(key, d)
	}
	var ck string
	if cacheable {
		key = append(key, left...)
		ck = rowKey(key)
		if cache, ok := e.subqCache[s]; ok {
			if v, hit := cache[ck]; hit {
				return v, nil
			}
		}
	}

	rows, err := e.execute(rt, ctx, earlyOutFor(s))
	if err != nil {
		return datum.Null, err
	}
	res, err := combineSubqRows(s, left, rows)
	if err != nil {
		return datum.Null, err
	}
	if cacheable {
		cache, ok := e.subqCache[s]
		if !ok {
			cache = map[string]datum.Datum{}
			e.subqCache[s] = cache
		}
		cache[ck] = res
	}
	return res, nil
}

// earlyOutFor allows EXISTS-style probes to stop at the first row.
func earlyOutFor(s *qtree.Subq) func(int) bool {
	switch s.Kind {
	case qtree.SubqExists, qtree.SubqNotExists:
		return func(n int) bool { return n >= 1 }
	}
	return nil
}

// evalUncorrelated answers the subquery from the materialized result.
func (e *env) evalUncorrelated(s *qtree.Subq, rt *subqRuntime, ctx *Ctx, left Row) (datum.Datum, error) {
	rows, err := e.execute(rt, ctx, nil)
	if err != nil {
		return datum.Null, err
	}
	switch s.Kind {
	case qtree.SubqExists:
		return datum.NewBool(len(rows) > 0), nil
	case qtree.SubqNotExists:
		return datum.NewBool(len(rows) == 0), nil
	case qtree.SubqScalar:
		if len(rows) == 0 {
			return datum.Null, nil
		}
		if len(rows) > 1 {
			return datum.Null, fmt.Errorf("exec: scalar subquery returned more than one row")
		}
		return rows[0][0], nil

	case qtree.SubqIn, qtree.SubqNotIn:
		rt.buildInSet()
		res := e.probeIn(rt, left, rows)
		if s.Kind == qtree.SubqNotIn {
			res = res.Not()
		}
		return res.Datum(), nil

	case qtree.SubqAnyCmp, qtree.SubqAllCmp:
		if len(left) == 1 {
			rt.buildColStats()
			if !rt.statsBroken {
				return quantFromStats(s, rt, left[0]).Datum(), nil
			}
		}
		return combineSubqRows(s, left, rows)
	}
	return combineSubqRows(s, left, rows)
}

// probeIn answers "left IN rows" using the hash set where precise, falling
// back to a scan when nulls make hashing imprecise.
func (e *env) probeIn(rt *subqRuntime, left Row, rows []Row) datum.TriBool {
	leftNull := false
	for _, d := range left {
		if d.IsNull() {
			leftNull = true
		}
	}
	if !leftNull && rt.inSet[rowKey(left)] {
		return datum.True
	}
	if !leftNull && !rt.inAnyNull {
		if len(rows) == 0 {
			return datum.False
		}
		return datum.False
	}
	if len(rows) == 0 {
		return datum.False
	}
	if len(left) == 1 {
		// Single column: no exact match; a null anywhere makes it UNKNOWN.
		return datum.Unknown
	}
	// Multi-column with nulls: scan for precision.
	res := datum.False
	for _, r := range rows {
		res = res.Or(rowCmp(left, r, qtree.OpEq))
		if res == datum.True {
			break
		}
	}
	return res
}

// quantFromStats answers single-column ANY/ALL comparisons from min/max.
func quantFromStats(s *qtree.Subq, rt *subqRuntime, x datum.Datum) datum.TriBool {
	empty := !rt.colNonEmpty && !rt.colHasNull
	if s.Kind == qtree.SubqAnyCmp {
		if empty {
			return datum.False
		}
		if x.IsNull() {
			return datum.Unknown
		}
		verdict := datum.False
		if rt.colNonEmpty {
			switch s.Op {
			case qtree.OpLt:
				verdict = cmp3(x, rt.maxV, qtree.OpLt)
			case qtree.OpLe:
				verdict = cmp3(x, rt.maxV, qtree.OpLe)
			case qtree.OpGt:
				verdict = cmp3(x, rt.minV, qtree.OpGt)
			case qtree.OpGe:
				verdict = cmp3(x, rt.minV, qtree.OpGe)
			case qtree.OpNe:
				// x <> ANY: true unless every value equals x. An x of an
				// incomparable kind leaves the comparison UNKNOWN, as the
				// row scan would.
				if mm, _ := datum.Compare(rt.minV, rt.maxV); mm != 0 {
					verdict = datum.True
				} else if xm, err := datum.Compare(x, rt.minV); err != nil {
					verdict = datum.Unknown
				} else {
					verdict = datum.FromBool(xm != 0)
				}
			case qtree.OpEq:
				lo, errLo := datum.Compare(x, rt.minV)
				hi, errHi := datum.Compare(x, rt.maxV)
				if errLo != nil || errHi != nil {
					verdict = datum.Unknown
				} else {
					verdict = datum.FromBool(lo >= 0 && hi <= 0 && scanEq(rt.rows, x))
				}
			}
		}
		if verdict == datum.True {
			return datum.True
		}
		if rt.colHasNull {
			return datum.Unknown
		}
		return verdict
	}
	// ALL.
	if empty {
		return datum.True
	}
	if x.IsNull() {
		return datum.Unknown
	}
	verdict := datum.True
	if rt.colNonEmpty {
		switch s.Op {
		case qtree.OpLt:
			verdict = cmp3(x, rt.minV, qtree.OpLt)
		case qtree.OpLe:
			verdict = cmp3(x, rt.minV, qtree.OpLe)
		case qtree.OpGt:
			verdict = cmp3(x, rt.maxV, qtree.OpGt)
		case qtree.OpGe:
			verdict = cmp3(x, rt.maxV, qtree.OpGe)
		case qtree.OpEq:
			if mm, _ := datum.Compare(rt.minV, rt.maxV); mm != 0 {
				verdict = datum.False
			} else if xm, err := datum.Compare(x, rt.minV); err != nil {
				verdict = datum.Unknown
			} else {
				verdict = datum.FromBool(xm == 0)
			}
		case qtree.OpNe:
			verdict = datum.FromBool(!scanEq(rt.rows, x))
		}
	}
	if verdict == datum.False {
		return datum.False
	}
	if rt.colHasNull {
		return datum.Unknown
	}
	return verdict
}

// scanEq reports whether any first-column value equals x; values of a kind
// incomparable with x count as not equal.
func scanEq(rows []Row, x datum.Datum) bool {
	for _, r := range rows {
		if r[0].IsNull() {
			continue
		}
		if c, err := datum.Compare(r[0], x); err == nil && c == 0 {
			return true
		}
	}
	return false
}

// combineSubqRows folds the subquery result rows into the predicate value
// under SQL three-valued semantics.
func combineSubqRows(s *qtree.Subq, left Row, rows []Row) (datum.Datum, error) {
	switch s.Kind {
	case qtree.SubqExists:
		return datum.NewBool(len(rows) > 0), nil
	case qtree.SubqNotExists:
		return datum.NewBool(len(rows) == 0), nil
	case qtree.SubqScalar:
		if len(rows) == 0 {
			return datum.Null, nil
		}
		if len(rows) > 1 {
			return datum.Null, fmt.Errorf("exec: scalar subquery returned more than one row")
		}
		return rows[0][0], nil
	case qtree.SubqIn, qtree.SubqAnyCmp:
		op := s.Op
		if s.Kind == qtree.SubqIn {
			op = qtree.OpEq
		}
		res := datum.False
		for _, r := range rows {
			res = res.Or(rowCmp(left, r, op))
			if res == datum.True {
				break
			}
		}
		return res.Datum(), nil
	case qtree.SubqNotIn:
		res := datum.False
		for _, r := range rows {
			res = res.Or(rowCmp(left, r, qtree.OpEq))
			if res == datum.True {
				break
			}
		}
		return res.Not().Datum(), nil
	case qtree.SubqAllCmp:
		res := datum.True
		for _, r := range rows {
			res = res.And(rowCmp(left, r, s.Op))
			if res == datum.False {
				break
			}
		}
		return res.Datum(), nil
	}
	return datum.Null, fmt.Errorf("exec: unknown subquery kind %v", s.Kind)
}

// rowCmp compares left values with a subquery row column-wise (AND).
func rowCmp(left Row, r Row, op qtree.BinOp) datum.TriBool {
	res := datum.True
	for i := range left {
		res = res.And(cmp3(left[i], r[i], op))
		if res == datum.False {
			return datum.False
		}
	}
	return res
}
