package exec

import (
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

func TestScalarSubqueryMultiRowErrors(t *testing.T) {
	db := testkit.TinyDB()
	q, err := qtree.BindSQL(`
SELECT e.name FROM emp e WHERE e.salary > (SELECT e2.salary FROM emp e2 WHERE e2.dept_id = 10)`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db, plan); err == nil || !strings.Contains(err.Error(), "more than one row") {
		t.Errorf("expected multi-row scalar subquery error, got %v", err)
	}
}

func TestScalarSubqueryZeroRowsIsNull(t *testing.T) {
	db := testkit.TinyDB()
	got := runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.salary > (SELECT e2.salary FROM emp e2 WHERE e2.dept_id = 999)`)
	expect(t, got) // NULL comparison keeps nothing
}

func TestCorrelatedExistsInsideView(t *testing.T) {
	db := testkit.TinyDB()
	got := runSQL(t, db, `
SELECT v.n FROM
(SELECT d.name n, d.dept_id id FROM dept d) v
WHERE EXISTS (SELECT 1 FROM emp e WHERE e.dept_id = v.id AND e.salary >= 250)`)
	expect(t, got, "'ops'", "'hr'")
}

func TestNestedCorrelationTwoLevels(t *testing.T) {
	db := testkit.TinyDB()
	// The inner-most subquery references the outermost block (e), two
	// levels up; the TIS cache key must include it.
	got := runSQL(t, db, `
SELECT e.name FROM emp e WHERE EXISTS
(SELECT 1 FROM dept d WHERE d.dept_id = e.dept_id AND EXISTS
 (SELECT 1 FROM proj p WHERE p.dept_id = d.dept_id AND p.budget > e.salary))`)
	// dept 10: budgets 1000, 500 -> ann(100) yes, bob(200) yes;
	// dept 20: budget 800 -> cal(300) yes, dee(50) yes; dept 30: none.
	expect(t, got, "'ann'", "'bob'", "'cal'", "'dee'")
}

func TestQuantifiedOverUncorrelatedUsesStats(t *testing.T) {
	db := testkit.TinyDB()
	// > ALL over an uncorrelated subquery: answered via min/max statistics.
	got := runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.salary > ALL (SELECT p.budget / 10 FROM proj p)`)
	// budgets/10: 100, 50, 80, 30 -> max 100; salaries > 100.
	expect(t, got, "'bob'", "'cal'", "'eli'", "'fay'")
	// < ANY with a NULL in the set: values below max qualify; max itself
	// gets UNKNOWN (never TRUE against smaller values) but null handling
	// must not leak rows.
	got = runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.emp_id < ANY (SELECT d.loc_id + 3 FROM dept d)`)
	// loc_id+3: 4, 5, 4, NULL -> max 5: emp_id < 5.
	expect(t, got, "'ann'", "'bob'", "'cal'", "'dee'")
}

func TestEmptyTableBehaviour(t *testing.T) {
	db := testkit.TinyDB()
	// PROJ filtered to nothing exercises empty inputs through joins,
	// aggregation, exists.
	got := runSQL(t, db, `
SELECT COUNT(*), SUM(p.budget) FROM proj p WHERE p.budget > 99999`)
	expect(t, got, "0|NULL")
	got = runSQL(t, db, `
SELECT e.name FROM emp e, proj p WHERE p.budget > 99999 AND p.dept_id = e.dept_id`)
	expect(t, got)
	got = runSQL(t, db, `
SELECT d.name FROM dept d WHERE d.dept_id NOT IN (SELECT p.dept_id FROM proj p WHERE p.budget > 99999)`)
	expect(t, got, "'eng'", "'ops'", "'hr'", "'empty'") // NOT IN over empty set keeps all
}

func TestLeftOuterJoinWithFilterOnRight(t *testing.T) {
	db := testkit.TinyDB()
	// The ON condition filters the right side; unmatched left rows pad
	// with NULLs rather than disappearing.
	got := runSQL(t, db, `
SELECT d.name, e.name FROM dept d LEFT OUTER JOIN emp e
ON d.dept_id = e.dept_id AND e.salary > 200`)
	expect(t, got,
		"'eng'|NULL",
		"'ops'|'cal'",
		"'hr'|'eli'",
		"'empty'|NULL")
}

func TestDuplicateRowsThroughSemijoinCache(t *testing.T) {
	db := testkit.TinyDB()
	// Two employees share dept 10 and dept 20: the semijoin verdict cache
	// must return per-left-row results, preserving duplicates.
	got := runSQL(t, db, `
SELECT e.dept_id FROM emp e WHERE EXISTS
(SELECT 1 FROM proj p WHERE p.dept_id = e.dept_id)`)
	expect(t, got, "10", "10", "20", "20")
}

func TestThreeWayUnionAllThroughView(t *testing.T) {
	db := testkit.TinyDB()
	got := runSQL(t, db, `
SELECT v.k, COUNT(*) FROM
(SELECT 'e' k FROM emp e UNION ALL SELECT 'd' k FROM dept d UNION ALL SELECT 'p' k FROM proj p) v
GROUP BY v.k`)
	expect(t, got, "'e'|6", "'d'|4", "'p'|4")
}

func TestProjectionExpressionErrorsPropagateFromView(t *testing.T) {
	db := testkit.TinyDB()
	q, err := qtree.BindSQL(`
SELECT v.x FROM (SELECT e.salary / (e.emp_id - 3) x FROM emp e) v`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db, plan); err == nil {
		t.Error("division by zero inside a view should propagate")
	}
}

func TestRightOuterJoinNormalizes(t *testing.T) {
	db := testkit.TinyDB()
	// emp RIGHT JOIN dept == dept LEFT JOIN emp: every department appears.
	got := runSQL(t, db, `
SELECT d.name, e.name FROM emp e RIGHT OUTER JOIN dept d ON e.dept_id = d.dept_id`)
	expect(t, got,
		"'eng'|'ann'", "'eng'|'bob'",
		"'ops'|'cal'", "'ops'|'dee'",
		"'hr'|'eli'",
		"'empty'|NULL")
	// Equivalence with the explicit LEFT form.
	left := runSQL(t, db, `
SELECT d.name, e.name FROM dept d LEFT OUTER JOIN emp e ON e.dept_id = d.dept_id`)
	if len(left) != len(got) {
		t.Errorf("RIGHT JOIN normalization mismatch: %v vs %v", got, left)
	}
}

func TestFullOuterJoin(t *testing.T) {
	db := testkit.TinyDB()
	// dept 40 has no employees; fay has no department: both must survive.
	got := runSQL(t, db, `
SELECT d.name, e.name FROM dept d FULL OUTER JOIN emp e ON d.dept_id = e.dept_id`)
	expect(t, got,
		"'eng'|'ann'", "'eng'|'bob'",
		"'ops'|'cal'", "'ops'|'dee'",
		"'hr'|'eli'",
		"'empty'|NULL",
		"NULL|'fay'")
}

func TestFullOuterJoinWithResidualCondition(t *testing.T) {
	db := testkit.TinyDB()
	got := runSQL(t, db, `
SELECT d.name, e.name FROM dept d FULL OUTER JOIN emp e
ON d.dept_id = e.dept_id AND e.salary > 200`)
	expect(t, got,
		"'eng'|NULL",   // ann(100), bob(200) filtered by the ON clause
		"'ops'|'cal'",  // 300 qualifies
		"'hr'|'eli'",   // 250 qualifies
		"'empty'|NULL", // no employees at all
		"NULL|'ann'",   // unmatched right rows surface
		"NULL|'bob'",
		"NULL|'dee'",
		"NULL|'fay'")
}

func TestFullOuterJoinAggregates(t *testing.T) {
	db := testkit.TinyDB()
	got := runSQL(t, db, `
SELECT COUNT(*), COUNT(d.dept_id), COUNT(e.emp_id)
FROM dept d FULL OUTER JOIN emp e ON d.dept_id = e.dept_id`)
	expect(t, got, "7|6|6")
}
