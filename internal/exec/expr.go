package exec

import (
	"fmt"
	"strings"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// evalExpr evaluates a scalar expression in a row context.
func (e *env) evalExpr(x qtree.Expr, ctx *Ctx) (datum.Datum, error) {
	switch v := x.(type) {
	case *qtree.Const:
		return v.Val, nil

	case *qtree.Param:
		if v.Ord < 0 || v.Ord >= len(e.params) {
			return datum.Null, fmt.Errorf("exec: unbound parameter :%s (slot %d, %d values bound)", v.Name, v.Ord, len(e.params))
		}
		return e.params[v.Ord], nil

	case *qtree.Col:
		d, ok := ctx.lookup(optimizer.ColID{From: v.From, Ord: v.Ord})
		if !ok {
			return datum.Null, fmt.Errorf("exec: unresolved column q%d.%s(#%d)", v.From, v.Name, v.Ord)
		}
		return d, nil

	case *qtree.Bin:
		return e.evalBin(v, ctx)

	case *qtree.Not:
		t, err := e.evalBool(v.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		return t.Not().Datum(), nil

	case *qtree.IsNull:
		d, err := e.evalExpr(v.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		res := d.IsNull()
		if v.Neg {
			res = !res
		}
		return datum.NewBool(res), nil

	case *qtree.Like:
		s, err := e.evalExpr(v.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		p, err := e.evalExpr(v.Pattern, ctx)
		if err != nil {
			return datum.Null, err
		}
		if s.IsNull() || p.IsNull() {
			return datum.Null, nil
		}
		ss, err := s.AsStr()
		if err != nil {
			return datum.Null, fmt.Errorf("exec: LIKE operand %s: %w", v.E, err)
		}
		ps, err := p.AsStr()
		if err != nil {
			return datum.Null, fmt.Errorf("exec: LIKE pattern %s: %w", v.Pattern, err)
		}
		m := likeMatch(ss, ps)
		if v.Neg {
			m = !m
		}
		return datum.NewBool(m), nil

	case *qtree.InList:
		lhs, err := e.evalExpr(v.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		res := datum.False
		for _, ve := range v.Vals {
			rhs, err := e.evalExpr(ve, ctx)
			if err != nil {
				return datum.Null, err
			}
			res = res.Or(cmp3(lhs, rhs, qtree.OpEq))
			if res == datum.True {
				break
			}
		}
		if v.Neg {
			res = res.Not()
		}
		return res.Datum(), nil

	case *qtree.Func:
		args := make([]datum.Datum, len(v.Args))
		for i, a := range v.Args {
			d, err := e.evalExpr(a, ctx)
			if err != nil {
				return datum.Null, err
			}
			args[i] = d
		}
		return v.Def.Eval(args)

	case *qtree.LNNVL:
		t, err := e.evalBool(v.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		return datum.NewBool(t.LNNVL()), nil

	case *qtree.IsTrue:
		t, err := e.evalBool(v.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		return datum.NewBool(t.Accept()), nil

	case *qtree.Case:
		for _, w := range v.Whens {
			t, err := e.evalBool(w.Cond, ctx)
			if err != nil {
				return datum.Null, err
			}
			if t.Accept() {
				return e.evalExpr(w.Result, ctx)
			}
		}
		if v.Else != nil {
			return e.evalExpr(v.Else, ctx)
		}
		return datum.Null, nil

	case *qtree.Subq:
		return e.evalSubq(v, ctx)

	case *qtree.Agg:
		return datum.Null, fmt.Errorf("exec: aggregate outside aggregation context")
	}
	return datum.Null, fmt.Errorf("exec: cannot evaluate %T", x)
}

func (e *env) evalBin(v *qtree.Bin, ctx *Ctx) (datum.Datum, error) {
	switch v.Op {
	case qtree.OpAnd, qtree.OpOr:
		l, err := e.evalBool(v.L, ctx)
		if err != nil {
			return datum.Null, err
		}
		// Short circuit.
		if v.Op == qtree.OpAnd && l == datum.False {
			return datum.NewBool(false), nil
		}
		if v.Op == qtree.OpOr && l == datum.True {
			return datum.NewBool(true), nil
		}
		r, err := e.evalBool(v.R, ctx)
		if err != nil {
			return datum.Null, err
		}
		if v.Op == qtree.OpAnd {
			return l.And(r).Datum(), nil
		}
		return l.Or(r).Datum(), nil
	}
	l, err := e.evalExpr(v.L, ctx)
	if err != nil {
		return datum.Null, err
	}
	r, err := e.evalExpr(v.R, ctx)
	if err != nil {
		return datum.Null, err
	}
	return applyBin(v, l, r)
}

// applyBin is the scalar kernel of every non-logical binary operator; the
// row engine applies it per row and the batch engine per vector element,
// so the two paths cannot drift.
func applyBin(v *qtree.Bin, l, r datum.Datum) (datum.Datum, error) {
	switch v.Op {
	case qtree.OpAdd:
		return datum.Add(l, r)
	case qtree.OpSub:
		return datum.Sub(l, r)
	case qtree.OpMul:
		return datum.Mul(l, r)
	case qtree.OpDiv:
		return datum.Div(l, r)
	case qtree.OpConcat:
		if l.IsNull() || r.IsNull() {
			return datum.Null, nil
		}
		ls, err := l.AsStr()
		if err != nil {
			return datum.Null, fmt.Errorf("exec: || operand %s: %w", v.L, err)
		}
		rs, err := r.AsStr()
		if err != nil {
			return datum.Null, fmt.Errorf("exec: || operand %s: %w", v.R, err)
		}
		return datum.NewString(ls + rs), nil
	case qtree.OpNullSafeEq:
		return datum.NewBool(datum.SameValue(l, r)), nil
	default:
		return cmp3(l, r, v.Op).Datum(), nil
	}
}

// evalBool evaluates a predicate to three-valued logic.
func (e *env) evalBool(x qtree.Expr, ctx *Ctx) (datum.TriBool, error) {
	d, err := e.evalExpr(x, ctx)
	if err != nil {
		return datum.Unknown, err
	}
	return datum.TriFromDatum(d), nil
}

// evalPreds evaluates a conjunct list; only all-TRUE accepts.
func (e *env) evalPreds(preds []qtree.Expr, ctx *Ctx) (bool, error) {
	for _, p := range preds {
		t, err := e.evalBool(p, ctx)
		if err != nil {
			return false, err
		}
		if !t.Accept() {
			return false, nil
		}
	}
	return true, nil
}

// cmp3 compares two datums under SQL three-valued semantics.
func cmp3(l, r datum.Datum, op qtree.BinOp) datum.TriBool {
	if l.IsNull() || r.IsNull() {
		return datum.Unknown
	}
	c, err := datum.Compare(l, r)
	if err != nil {
		return datum.Unknown
	}
	switch op {
	case qtree.OpEq:
		return datum.FromBool(c == 0)
	case qtree.OpNe:
		return datum.FromBool(c != 0)
	case qtree.OpLt:
		return datum.FromBool(c < 0)
	case qtree.OpLe:
		return datum.FromBool(c <= 0)
	case qtree.OpGt:
		return datum.FromBool(c > 0)
	case qtree.OpGe:
		return datum.FromBool(c >= 0)
	}
	return datum.Unknown
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single char).
func likeMatch(s, pat string) bool {
	// Dynamic programming over pattern/string positions.
	for {
		if pat == "" {
			return s == ""
		}
		switch pat[0] {
		case '%':
			// Collapse consecutive %.
			pat = strings.TrimLeft(pat, "%")
			if pat == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeMatch(s[i:], pat) {
					return true
				}
			}
			return false
		case '_':
			if s == "" {
				return false
			}
			s, pat = s[1:], pat[1:]
		default:
			if s == "" || s[0] != pat[0] {
				return false
			}
			s, pat = s[1:], pat[1:]
		}
	}
}
