package exec

import (
	"fmt"
	"sort"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// seqScanIter scans a heap table.
type seqScanIter struct {
	e    *env
	n    *optimizer.SeqScan
	tbl  *storage.Table
	ctx  *Ctx
	pos  int
	self *Ctx
}

func newSeqScan(e *env, n *optimizer.SeqScan) *seqScanIter {
	return &seqScanIter{e: e, n: n, tbl: e.table(n.Table.Name)}
}

func (it *seqScanIter) Open(outer *Ctx) error {
	if it.tbl == nil {
		return fmt.Errorf("exec: table %s has no storage", it.n.Table.Name)
	}
	it.pos = 0
	it.ctx = outer
	it.self = &Ctx{parent: outer, cols: colMap(it.n.Columns())}
	return nil
}

func (it *seqScanIter) Next() (Row, error) {
	for it.pos < len(it.tbl.Rows) {
		if err := it.e.checkCancel(); err != nil {
			return nil, err
		}
		if !it.tbl.Visible(it.pos) {
			it.pos++
			continue
		}
		src := it.tbl.Rows[it.pos]
		rowid := it.pos
		it.pos++
		out := make(Row, len(src)+1)
		copy(out, src)
		out[len(src)] = datum.NewInt(int64(rowid))
		it.self.row = out
		ok, err := it.e.evalPreds(it.n.Filter, it.self)
		if err != nil {
			return nil, err
		}
		if ok {
			return out, nil
		}
	}
	return nil, nil
}

func (it *seqScanIter) Close() error { return nil }

// indexScanIter probes or range-scans an index.
type indexScanIter struct {
	e     *env
	n     *optimizer.IndexScan
	tbl   *storage.Table
	match []int32
	pos   int
	self  *Ctx
	outer *Ctx
}

func newIndexScan(e *env, n *optimizer.IndexScan) (*indexScanIter, error) {
	tbl := e.table(n.Table.Name)
	if tbl == nil {
		return nil, fmt.Errorf("exec: table %s has no storage", n.Table.Name)
	}
	return &indexScanIter{e: e, n: n, tbl: tbl}, nil
}

func (it *indexScanIter) Open(outer *Ctx) error {
	it.outer = outer
	it.pos = 0
	it.self = &Ctx{parent: outer, cols: colMap(it.n.Columns())}
	match, err := indexMatches(it.e, it.n, it.tbl, outer)
	if err != nil {
		return err
	}
	it.match = match
	return nil
}

// indexMatches evaluates the probe/range bounds against the outer context
// and returns the matching rowids, filtered to the versions visible in the
// scan's table view; shared by the row and batch index scans. A null bound
// never matches anything.
func indexMatches(e *env, n *optimizer.IndexScan, tbl *storage.Table, outer *Ctx) ([]int32, error) {
	idx := tbl.Index(n.Index.Name)
	if idx == nil {
		return nil, fmt.Errorf("exec: index %s not built", n.Index.Name)
	}
	if len(n.EqKeys) > 0 {
		key := make([]datum.Datum, len(n.EqKeys))
		for i, ke := range n.EqKeys {
			d, err := e.evalExpr(ke, outer)
			if err != nil {
				return nil, err
			}
			key[i] = d
		}
		return tbl.FilterVisible(idx.EqualRange(key)), nil
	}
	var lo, hi datum.Datum
	hasLo, hasHi := false, false
	if n.Lo != nil {
		d, err := e.evalExpr(n.Lo, outer)
		if err != nil {
			return nil, err
		}
		if d.IsNull() {
			return nil, nil
		}
		lo, hasLo = d, true
	}
	if n.Hi != nil {
		d, err := e.evalExpr(n.Hi, outer)
		if err != nil {
			return nil, err
		}
		if d.IsNull() {
			return nil, nil
		}
		hi, hasHi = d, true
	}
	return tbl.FilterVisible(idx.Range(lo, n.LoInc, hasLo, hi, n.HiInc, hasHi)), nil
}

func (it *indexScanIter) Next() (Row, error) {
	for it.pos < len(it.match) {
		if err := it.e.checkCancel(); err != nil {
			return nil, err
		}
		rowid := it.match[it.pos]
		it.pos++
		src := it.tbl.Rows[rowid]
		out := make(Row, len(src)+1)
		copy(out, src)
		out[len(src)] = datum.NewInt(int64(rowid))
		it.self.row = out
		ok, err := it.e.evalPreds(it.n.Filter, it.self)
		if err != nil {
			return nil, err
		}
		if ok {
			return out, nil
		}
	}
	return nil, nil
}

func (it *indexScanIter) Close() error { return nil }

// filterIter applies predicates (possibly containing subqueries).
type filterIter struct {
	e     *env
	n     *optimizer.Filter
	child iterator
	self  *Ctx
}

func newFilter(e *env, n *optimizer.Filter, child iterator) *filterIter {
	return &filterIter{e: e, n: n, child: child}
}

func (it *filterIter) Open(outer *Ctx) error {
	it.self = &Ctx{parent: outer, cols: colMap(it.n.Child.Columns())}
	return it.child.Open(outer)
}

func (it *filterIter) Next() (Row, error) {
	for {
		r, err := it.child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		it.self.row = r
		ok, err := it.e.evalPreds(it.n.Preds, it.self)
		if err != nil {
			return nil, err
		}
		if ok {
			return r, nil
		}
	}
}

func (it *filterIter) Close() error { return it.child.Close() }

// projectIter computes output expressions.
type projectIter struct {
	e     *env
	n     *optimizer.Project
	child iterator
	self  *Ctx
}

func newProject(e *env, n *optimizer.Project, child iterator) *projectIter {
	return &projectIter{e: e, n: n, child: child}
}

func (it *projectIter) Open(outer *Ctx) error {
	it.self = &Ctx{parent: outer, cols: colMap(it.n.Child.Columns())}
	return it.child.Open(outer)
}

func (it *projectIter) Next() (Row, error) {
	r, err := it.child.Next()
	if err != nil || r == nil {
		return nil, err
	}
	it.self.row = r
	out := make(Row, len(it.n.Exprs))
	for i, ex := range it.n.Exprs {
		d, err := it.e.evalExpr(ex, it.self)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

func (it *projectIter) Close() error { return it.child.Close() }

// sortIter materializes and sorts.
type sortIter struct {
	e     *env
	n     *optimizer.Sort
	child iterator
	rows  []Row
	pos   int
}

func newSort(e *env, n *optimizer.Sort, child iterator) *sortIter {
	return &sortIter{e: e, n: n, child: child}
}

func (it *sortIter) Open(outer *Ctx) error {
	if err := it.child.Open(outer); err != nil {
		return err
	}
	it.rows = nil
	it.pos = 0
	self := &Ctx{parent: outer, cols: colMap(it.n.Child.Columns())}
	type keyed struct {
		row  Row
		keys []datum.Datum
	}
	var all []keyed
	for {
		r, err := it.child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		self.row = r
		keys := make([]datum.Datum, len(it.n.Keys))
		for i, k := range it.n.Keys {
			d, err := it.e.evalExpr(k, self)
			if err != nil {
				return err
			}
			keys[i] = d
		}
		all = append(all, keyed{row: r, keys: keys})
	}
	sort.SliceStable(all, func(a, b int) bool {
		for i := range it.n.Keys {
			c := nullsFirstCompare(all[a].keys[i], all[b].keys[i])
			if it.n.Desc[i] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	it.rows = make([]Row, len(all))
	for i, k := range all {
		it.rows[i] = k.row
	}
	return nil
}

// nullsFirstCompare orders with NULLs first (ascending).
func nullsFirstCompare(a, b datum.Datum) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	c, err := datum.Compare(a, b)
	if err != nil {
		return 0
	}
	return c
}

func (it *sortIter) Next() (Row, error) {
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, nil
}

func (it *sortIter) Close() error { return it.child.Close() }

// memBytes approximates the sorted materialization.
func (it *sortIter) memBytes() int64 { return rowsBytes(it.rows) }

// limitIter returns the first n rows.
type limitIter struct {
	child iterator
	n     int64
	seen  int64
}

func (it *limitIter) Open(outer *Ctx) error {
	it.seen = 0
	return it.child.Open(outer)
}

func (it *limitIter) Next() (Row, error) {
	if it.seen >= it.n {
		return nil, nil
	}
	r, err := it.child.Next()
	if err != nil || r == nil {
		return nil, err
	}
	it.seen++
	return r, nil
}

func (it *limitIter) Close() error { return it.child.Close() }

// distinctIter removes duplicates (grouping equality).
type distinctIter struct {
	child iterator
	seen  map[string]bool
}

func newDistinct(child iterator) *distinctIter { return &distinctIter{child: child} }

func (it *distinctIter) Open(outer *Ctx) error {
	it.seen = map[string]bool{}
	return it.child.Open(outer)
}

func (it *distinctIter) Next() (Row, error) {
	for {
		r, err := it.child.Next()
		if err != nil || r == nil {
			return nil, err
		}
		k := rowKey(r)
		if !it.seen[k] {
			it.seen[k] = true
			return r, nil
		}
	}
}

func (it *distinctIter) Close() error { return it.child.Close() }

// memBytes approximates the duplicate-elimination key set.
func (it *distinctIter) memBytes() int64 {
	var b int64
	for k := range it.seen {
		b += 48 + int64(len(k))
	}
	return b
}

// setOpIter evaluates UNION [ALL] / INTERSECT / MINUS.
type setOpIter struct {
	n    *optimizer.SetNode
	kids []iterator
	out  []Row
	pos  int
}

func newSetOp(n *optimizer.SetNode, kids []iterator) *setOpIter {
	return &setOpIter{n: n, kids: kids}
}

func (it *setOpIter) Open(outer *Ctx) error {
	it.out = nil
	it.pos = 0
	drain := func(k iterator) ([]Row, error) {
		if err := k.Open(outer); err != nil {
			return nil, err
		}
		var rows []Row
		for {
			r, err := k.Next()
			if err != nil {
				return nil, err
			}
			if r == nil {
				return rows, nil
			}
			rows = append(rows, r)
		}
	}
	first, err := drain(it.kids[0])
	if err != nil {
		return err
	}
	switch it.n.Kind {
	case qtree.SetUnionAll:
		it.out = first
		for _, k := range it.kids[1:] {
			rows, err := drain(k)
			if err != nil {
				return err
			}
			it.out = append(it.out, rows...)
		}
	case qtree.SetUnion:
		seen := map[string]bool{}
		add := func(rows []Row) {
			for _, r := range rows {
				k := rowKey(r)
				if !seen[k] {
					seen[k] = true
					it.out = append(it.out, r)
				}
			}
		}
		add(first)
		for _, k := range it.kids[1:] {
			rows, err := drain(k)
			if err != nil {
				return err
			}
			add(rows)
		}
	case qtree.SetIntersect:
		// Distinct rows of the first input present in every other input.
		present := map[string]Row{}
		for _, r := range first {
			present[rowKey(r)] = r
		}
		for _, k := range it.kids[1:] {
			rows, err := drain(k)
			if err != nil {
				return err
			}
			inThis := map[string]bool{}
			for _, r := range rows {
				inThis[rowKey(r)] = true
			}
			for key := range present {
				if !inThis[key] {
					delete(present, key)
				}
			}
		}
		// Keep first-input order.
		emitted := map[string]bool{}
		for _, r := range first {
			k := rowKey(r)
			if _, ok := present[k]; ok && !emitted[k] {
				emitted[k] = true
				it.out = append(it.out, r)
			}
		}
	case qtree.SetMinus:
		remove := map[string]bool{}
		for _, k := range it.kids[1:] {
			rows, err := drain(k)
			if err != nil {
				return err
			}
			for _, r := range rows {
				remove[rowKey(r)] = true
			}
		}
		emitted := map[string]bool{}
		for _, r := range first {
			k := rowKey(r)
			if !remove[k] && !emitted[k] {
				emitted[k] = true
				it.out = append(it.out, r)
			}
		}
	}
	return nil
}

func (it *setOpIter) Next() (Row, error) {
	if it.pos >= len(it.out) {
		return nil, nil
	}
	r := it.out[it.pos]
	it.pos++
	return r, nil
}

func (it *setOpIter) Close() error {
	for _, k := range it.kids {
		k.Close()
	}
	return nil
}

// memBytes approximates the materialized set-operation result.
func (it *setOpIter) memBytes() int64 { return rowsBytes(it.out) }
