package exec

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	spec     optimizer.AggSpec
	count    int64
	sum      datum.Datum
	min, max datum.Datum
	distinct map[string]bool
}

func newAggState(spec optimizer.AggSpec) *aggState {
	s := &aggState{spec: spec, sum: datum.Null, min: datum.Null, max: datum.Null}
	if spec.Distinct {
		s.distinct = map[string]bool{}
	}
	return s
}

func (s *aggState) add(v datum.Datum) error {
	if s.spec.Star {
		s.count++
		return nil
	}
	if v.IsNull() {
		return nil // aggregates ignore NULLs
	}
	if s.distinct != nil {
		k := v.Key()
		if s.distinct[k] {
			return nil
		}
		s.distinct[k] = true
	}
	s.count++
	switch s.spec.Op {
	case qtree.AggCount:
	case qtree.AggSum, qtree.AggAvg:
		if s.sum.IsNull() {
			s.sum = v
		} else {
			sum, err := datum.Add(s.sum, v)
			if err != nil {
				return err
			}
			s.sum = sum
		}
	case qtree.AggMin:
		if s.min.IsNull() {
			s.min = v
		} else if c, err := datum.Compare(v, s.min); err != nil {
			// Mixed-kind inputs (e.g. a CASE over different types) are a
			// query error, not a process panic.
			return fmt.Errorf("exec: MIN(%s): %w", s.spec.Arg, err)
		} else if c < 0 {
			s.min = v
		}
	case qtree.AggMax:
		if s.max.IsNull() {
			s.max = v
		} else if c, err := datum.Compare(v, s.max); err != nil {
			return fmt.Errorf("exec: MAX(%s): %w", s.spec.Arg, err)
		} else if c > 0 {
			s.max = v
		}
	}
	return nil
}

func (s *aggState) result() datum.Datum {
	switch s.spec.Op {
	case qtree.AggCount:
		return datum.NewInt(s.count)
	case qtree.AggSum:
		return s.sum
	case qtree.AggAvg:
		if s.count == 0 || s.sum.IsNull() {
			return datum.Null
		}
		return datum.NewFloat(s.sum.Float() / float64(s.count))
	case qtree.AggMin:
		return s.min
	case qtree.AggMax:
		return s.max
	}
	return datum.Null
}

// aggIter is hash aggregation with optional grouping sets (ROLLUP /
// GROUPING SETS are executed as one aggregation per set over the same
// input, with non-member grouping columns null).
type aggIter struct {
	e     *env
	n     *optimizer.Agg
	child iterator

	out []Row
	pos int
}

func newAgg(e *env, n *optimizer.Agg, child iterator) *aggIter {
	return &aggIter{e: e, n: n, child: child}
}

type aggGroup struct {
	gbVals Row
	states []*aggState
}

// aggHash is the grouping-set hash-aggregation core shared by the row and
// batch engines: update folds one input row's grouping values and aggregate
// arguments into every grouping set, results assembles the output rows in
// group insertion order (with the scalar-aggregation-over-empty-input row).
// Keeping both engines on one core means their aggregation semantics cannot
// drift.
type aggHash struct {
	n    *optimizer.Agg
	sets [][]int
	// groups[setIdx][key] -> group
	groups []map[string]*aggGroup
	order  [][]string
}

func newAggHash(n *optimizer.Agg) *aggHash {
	sets := n.GroupingSets
	if sets == nil {
		full := make([]int, len(n.GroupBy))
		for i := range full {
			full[i] = i
		}
		sets = [][]int{full}
	}
	h := &aggHash{
		n:      n,
		sets:   sets,
		groups: make([]map[string]*aggGroup, len(sets)),
		order:  make([][]string, len(sets)),
	}
	for i := range h.groups {
		h.groups[i] = map[string]*aggGroup{}
	}
	return h
}

func (h *aggHash) update(gbVals, argVals Row) error {
	for si, set := range h.sets {
		masked := make(Row, len(h.n.GroupBy))
		for i := range masked {
			masked[i] = datum.Null
		}
		for _, gi := range set {
			masked[gi] = gbVals[gi]
		}
		key := rowKey(masked)
		g, ok := h.groups[si][key]
		if !ok {
			g = &aggGroup{gbVals: masked}
			for _, spec := range h.n.Aggs {
				g.states = append(g.states, newAggState(spec))
			}
			h.groups[si][key] = g
			h.order[si] = append(h.order[si], key)
		}
		for i := range h.n.Aggs {
			if err := g.states[i].add(argVals[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *aggHash) results() []Row {
	// Scalar aggregation over empty input produces one row.
	if len(h.n.GroupBy) == 0 && len(h.groups[0]) == 0 {
		g := &aggGroup{gbVals: Row{}}
		for _, spec := range h.n.Aggs {
			g.states = append(g.states, newAggState(spec))
		}
		h.groups[0][""] = g
		h.order[0] = append(h.order[0], "")
	}
	var out []Row
	for si := range h.groups {
		for _, key := range h.order[si] {
			g := h.groups[si][key]
			row := make(Row, 0, len(g.gbVals)+len(g.states))
			row = append(row, g.gbVals...)
			for _, s := range g.states {
				row = append(row, s.result())
			}
			out = append(out, row)
		}
	}
	return out
}

func (it *aggIter) Open(outer *Ctx) error {
	if err := it.child.Open(outer); err != nil {
		return err
	}
	it.out = nil
	it.pos = 0
	ctx := &Ctx{parent: outer, cols: colMap(it.n.Child.Columns())}
	h := newAggHash(it.n)

	for {
		r, err := it.child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		ctx.row = r
		// Evaluate grouping columns once.
		gbVals := make(Row, len(it.n.GroupBy))
		for i, g := range it.n.GroupBy {
			d, err := it.e.evalExpr(g, ctx)
			if err != nil {
				return err
			}
			gbVals[i] = d
		}
		// Evaluate aggregate arguments once.
		argVals := make(Row, len(it.n.Aggs))
		for i, a := range it.n.Aggs {
			if a.Star || a.Arg == nil {
				continue
			}
			d, err := it.e.evalExpr(a.Arg, ctx)
			if err != nil {
				return err
			}
			argVals[i] = d
		}
		if err := h.update(gbVals, argVals); err != nil {
			return err
		}
	}
	it.out = h.results()
	return nil
}

func (it *aggIter) Next() (Row, error) {
	if it.pos >= len(it.out) {
		return nil, nil
	}
	r := it.out[it.pos]
	it.pos++
	return r, nil
}

func (it *aggIter) Close() error { return it.child.Close() }

// memBytes approximates the materialized group rows.
func (it *aggIter) memBytes() int64 { return rowsBytes(it.out) }

var _ = fmt.Sprintf // reserved for error formatting extensions
