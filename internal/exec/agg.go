package exec

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	spec     optimizer.AggSpec
	count    int64
	sum      datum.Datum
	min, max datum.Datum
	distinct map[string]bool
}

func newAggState(spec optimizer.AggSpec) *aggState {
	s := &aggState{spec: spec, sum: datum.Null, min: datum.Null, max: datum.Null}
	if spec.Distinct {
		s.distinct = map[string]bool{}
	}
	return s
}

func (s *aggState) add(v datum.Datum) error {
	if s.spec.Star {
		s.count++
		return nil
	}
	if v.IsNull() {
		return nil // aggregates ignore NULLs
	}
	if s.distinct != nil {
		k := v.Key()
		if s.distinct[k] {
			return nil
		}
		s.distinct[k] = true
	}
	s.count++
	switch s.spec.Op {
	case qtree.AggCount:
	case qtree.AggSum, qtree.AggAvg:
		if s.sum.IsNull() {
			s.sum = v
		} else {
			sum, err := datum.Add(s.sum, v)
			if err != nil {
				return err
			}
			s.sum = sum
		}
	case qtree.AggMin:
		if s.min.IsNull() {
			s.min = v
		} else if c, err := datum.Compare(v, s.min); err != nil {
			// Mixed-kind inputs (e.g. a CASE over different types) are a
			// query error, not a process panic.
			return fmt.Errorf("exec: MIN(%s): %w", s.spec.Arg, err)
		} else if c < 0 {
			s.min = v
		}
	case qtree.AggMax:
		if s.max.IsNull() {
			s.max = v
		} else if c, err := datum.Compare(v, s.max); err != nil {
			return fmt.Errorf("exec: MAX(%s): %w", s.spec.Arg, err)
		} else if c > 0 {
			s.max = v
		}
	}
	return nil
}

func (s *aggState) result() datum.Datum {
	switch s.spec.Op {
	case qtree.AggCount:
		return datum.NewInt(s.count)
	case qtree.AggSum:
		return s.sum
	case qtree.AggAvg:
		if s.count == 0 || s.sum.IsNull() {
			return datum.Null
		}
		return datum.NewFloat(s.sum.Float() / float64(s.count))
	case qtree.AggMin:
		return s.min
	case qtree.AggMax:
		return s.max
	}
	return datum.Null
}

// aggIter is hash aggregation with optional grouping sets (ROLLUP /
// GROUPING SETS are executed as one aggregation per set over the same
// input, with non-member grouping columns null).
type aggIter struct {
	e     *env
	n     *optimizer.Agg
	child iterator

	out []Row
	pos int
}

func newAgg(e *env, n *optimizer.Agg, child iterator) *aggIter {
	return &aggIter{e: e, n: n, child: child}
}

type aggGroup struct {
	gbVals Row
	states []*aggState
}

func (it *aggIter) Open(outer *Ctx) error {
	if err := it.child.Open(outer); err != nil {
		return err
	}
	it.out = nil
	it.pos = 0
	ctx := &Ctx{parent: outer, cols: colMap(it.n.Child.Columns())}

	sets := it.n.GroupingSets
	if sets == nil {
		full := make([]int, len(it.n.GroupBy))
		for i := range full {
			full[i] = i
		}
		sets = [][]int{full}
	}
	// groups[setIdx][key] -> group
	groups := make([]map[string]*aggGroup, len(sets))
	order := make([][]string, len(sets))
	for i := range groups {
		groups[i] = map[string]*aggGroup{}
	}

	for {
		r, err := it.child.Next()
		if err != nil {
			return err
		}
		if r == nil {
			break
		}
		ctx.row = r
		// Evaluate grouping columns once.
		gbVals := make(Row, len(it.n.GroupBy))
		for i, g := range it.n.GroupBy {
			d, err := it.e.evalExpr(g, ctx)
			if err != nil {
				return err
			}
			gbVals[i] = d
		}
		// Evaluate aggregate arguments once.
		argVals := make(Row, len(it.n.Aggs))
		for i, a := range it.n.Aggs {
			if a.Star || a.Arg == nil {
				continue
			}
			d, err := it.e.evalExpr(a.Arg, ctx)
			if err != nil {
				return err
			}
			argVals[i] = d
		}
		for si, set := range sets {
			masked := make(Row, len(it.n.GroupBy))
			for i := range masked {
				masked[i] = datum.Null
			}
			for _, gi := range set {
				masked[gi] = gbVals[gi]
			}
			key := rowKey(masked)
			g, ok := groups[si][key]
			if !ok {
				g = &aggGroup{gbVals: masked}
				for _, spec := range it.n.Aggs {
					g.states = append(g.states, newAggState(spec))
				}
				groups[si][key] = g
				order[si] = append(order[si], key)
			}
			for i := range it.n.Aggs {
				if err := g.states[i].add(argVals[i]); err != nil {
					return err
				}
			}
		}
	}

	// Scalar aggregation over empty input produces one row.
	if len(it.n.GroupBy) == 0 && len(groups[0]) == 0 {
		g := &aggGroup{gbVals: Row{}}
		for _, spec := range it.n.Aggs {
			g.states = append(g.states, newAggState(spec))
		}
		groups[0][""] = g
		order[0] = append(order[0], "")
	}

	for si := range groups {
		for _, key := range order[si] {
			g := groups[si][key]
			row := make(Row, 0, len(g.gbVals)+len(g.states))
			row = append(row, g.gbVals...)
			for _, s := range g.states {
				row = append(row, s.result())
			}
			it.out = append(it.out, row)
		}
	}
	return nil
}

func (it *aggIter) Next() (Row, error) {
	if it.pos >= len(it.out) {
		return nil, nil
	}
	r := it.out[it.pos]
	it.pos++
	return r, nil
}

func (it *aggIter) Close() error { return it.child.Close() }

// memBytes approximates the materialized group rows.
func (it *aggIter) memBytes() int64 { return rowsBytes(it.out) }

var _ = fmt.Sprintf // reserved for error formatting extensions
