package exec

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/storage"
)

// tinyDB builds a small deterministic database with hand-checkable data.
//
//	dept: (10, eng, L1), (20, ops, L2), (30, hr, L1), (40, empty, NULL)
//	emp:  id, name, dept, salary, mgr
func tinyDB(t *testing.T) *storage.DB {
	t.Helper()
	cat := catalog.New()
	db := storage.NewDB(cat)

	dept, err := db.CreateTable(&catalog.Table{
		Name: "DEPT",
		Cols: []catalog.Column{
			{Name: "DEPT_ID", Type: datum.KInt},
			{Name: "NAME", Type: datum.KString},
			{Name: "LOC_ID", Type: datum.KInt, Nullable: true},
		},
		PrimaryKey: []int{0},
		Indexes:    []*catalog.Index{{Name: "DEPT_PK", Cols: []int{0}, Unique: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	emp, err := db.CreateTable(&catalog.Table{
		Name: "EMP",
		Cols: []catalog.Column{
			{Name: "EMP_ID", Type: datum.KInt},
			{Name: "NAME", Type: datum.KString},
			{Name: "DEPT_ID", Type: datum.KInt, Nullable: true},
			{Name: "SALARY", Type: datum.KFloat},
			{Name: "MGR_ID", Type: datum.KInt, Nullable: true},
		},
		PrimaryKey: []int{0},
		ForeignKeys: []catalog.ForeignKey{
			{Cols: []int{2}, RefTable: "DEPT", RefCols: []int{0}},
		},
		Indexes: []*catalog.Index{
			{Name: "EMP_PK", Cols: []int{0}, Unique: true},
			{Name: "EMP_DEPT", Cols: []int{2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	dd := func(vals ...interface{}) []datum.Datum {
		out := make([]datum.Datum, len(vals))
		for i, v := range vals {
			switch x := v.(type) {
			case nil:
				out[i] = datum.Null
			case int:
				out[i] = datum.NewInt(int64(x))
			case float64:
				out[i] = datum.NewFloat(x)
			case string:
				out[i] = datum.NewString(x)
			}
		}
		return out
	}
	dept.MustAppend(dd(10, "eng", 1)...)
	dept.MustAppend(dd(20, "ops", 2)...)
	dept.MustAppend(dd(30, "hr", 1)...)
	dept.MustAppend(dd(40, "empty", nil)...)

	emp.MustAppend(dd(1, "ann", 10, 100.0, nil)...)
	emp.MustAppend(dd(2, "bob", 10, 200.0, 1)...)
	emp.MustAppend(dd(3, "cal", 20, 300.0, 1)...)
	emp.MustAppend(dd(4, "dee", 20, 50.0, 3)...)
	emp.MustAppend(dd(5, "eli", 30, 250.0, 1)...)
	emp.MustAppend(dd(6, "fay", nil, 150.0, 2)...)

	db.Finalize()
	return db
}

// runSQL optimizes and executes a query, returning rows as strings sorted
// for comparison.
func runSQL(t *testing.T, db *storage.DB, src string) []string {
	t.Helper()
	q, err := qtree.BindSQL(src, db.Catalog)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatalf("optimize %q: %v", src, err)
	}
	res, err := Run(db, plan)
	if err != nil {
		t.Fatalf("run %q: %v\n%s", src, err, optimizer.Explain(plan))
	}
	return rowStrings(res.Rows)
}

// runSQLOrdered keeps result order (for ORDER BY tests).
func runSQLOrdered(t *testing.T, db *storage.DB, src string) []string {
	t.Helper()
	q, err := qtree.BindSQL(src, db.Catalog)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	res, err := Run(db, plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var out []string
	for _, r := range res.Rows {
		out = append(out, rowString(r))
	}
	return out
}

func rowString(r Row) string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return strings.Join(parts, "|")
}

func rowStrings(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = rowString(r)
	}
	sort.Strings(out)
	return out
}

func expect(t *testing.T, got []string, want ...string) {
	t.Helper()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want %v", got, want)
		}
	}
}

func TestScanAndFilter(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `SELECT e.name FROM emp e WHERE e.salary > 150`)
	expect(t, got, "'bob'", "'cal'", "'eli'")
}

func TestIndexLookup(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `SELECT e.name FROM emp e WHERE e.emp_id = 3`)
	expect(t, got, "'cal'")
}

func TestJoin(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name, d.name FROM emp e, dept d
WHERE e.dept_id = d.dept_id AND d.loc_id = 1`)
	expect(t, got, "'ann'|'eng'", "'bob'|'eng'", "'eli'|'hr'")
}

func TestLeftOuterJoin(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name, d.name FROM emp e LEFT OUTER JOIN dept d ON e.dept_id = d.dept_id`)
	expect(t, got,
		"'ann'|'eng'", "'bob'|'eng'", "'cal'|'ops'", "'dee'|'ops'",
		"'eli'|'hr'", "'fay'|NULL")
}

func TestGroupByHaving(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.dept_id, COUNT(*), AVG(e.salary) FROM emp e
WHERE e.dept_id IS NOT NULL
GROUP BY e.dept_id HAVING COUNT(*) > 1`)
	expect(t, got, "10|2|150", "20|2|175")
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `SELECT COUNT(e.dept_id), COUNT(*), MIN(e.salary), MAX(e.salary), SUM(e.salary) FROM emp e`)
	expect(t, got, "5|6|50|300|1050")
}

func TestScalarAggOverEmptyInput(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `SELECT COUNT(*), SUM(e.salary) FROM emp e WHERE e.salary > 10000`)
	expect(t, got, "0|NULL")
}

func TestDistinct(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `SELECT DISTINCT e.dept_id FROM emp e`)
	expect(t, got, "10", "20", "30", "NULL")
}

func TestOrderByAndRownum(t *testing.T) {
	db := tinyDB(t)
	got := runSQLOrdered(t, db, `SELECT e.name FROM emp e ORDER BY e.salary DESC`)
	if got[0] != "'cal'" || got[len(got)-1] != "'dee'" {
		t.Errorf("order: %v", got)
	}
	got = runSQLOrdered(t, db, `
SELECT v.name FROM (SELECT e.name, e.salary FROM emp e ORDER BY e.salary DESC) v
WHERE rownum <= 2`)
	expect(t, got, "'cal'", "'eli'")
}

func TestExistsSubquery(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT d.name FROM dept d WHERE EXISTS
(SELECT 1 FROM emp e WHERE e.dept_id = d.dept_id AND e.salary > 150)`)
	expect(t, got, "'eng'", "'ops'", "'hr'")
}

func TestNotExistsSubquery(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT d.name FROM dept d WHERE NOT EXISTS
(SELECT 1 FROM emp e WHERE e.dept_id = d.dept_id)`)
	expect(t, got, "'empty'")
}

func TestInSubquery(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.dept_id IN
(SELECT d.dept_id FROM dept d WHERE d.loc_id = 1)`)
	expect(t, got, "'ann'", "'bob'", "'eli'")
}

func TestNotInWithNullsIsEmpty(t *testing.T) {
	db := tinyDB(t)
	// dept_id of emp contains NULL on the probe side; those rows are
	// suppressed. All dept ids appear in dept, so result is empty.
	got := runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.dept_id NOT IN (SELECT d.dept_id FROM dept d)`)
	expect(t, got)
}

func TestNotInWithNullInSubquery(t *testing.T) {
	db := tinyDB(t)
	// The subquery returns a NULL (loc_id of dept 40): NOT IN over a set
	// containing NULL filters everything.
	got := runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.dept_id NOT IN (SELECT d.loc_id FROM dept d)`)
	expect(t, got)
}

func TestNotInWithoutNulls(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.emp_id NOT IN
(SELECT e2.mgr_id FROM emp e2 WHERE e2.mgr_id IS NOT NULL)`)
	// Managers are 1 (ann), 2 (bob), 3 (cal); the rest are not managers.
	expect(t, got, "'dee'", "'eli'", "'fay'")
}

func TestScalarSubquery(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name FROM emp e
WHERE e.salary > (SELECT AVG(e2.salary) FROM emp e2 WHERE e2.dept_id = e.dept_id)`)
	// dept 10 avg 150 -> bob(200); dept 20 avg 175 -> cal(300); dept 30
	// avg 250 -> none; fay (null dept) -> avg over empty = NULL -> unknown.
	expect(t, got, "'bob'", "'cal'")
}

func TestAnyAllSubqueries(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.salary > ALL
(SELECT e2.salary FROM emp e2 WHERE e2.dept_id = 10)`)
	expect(t, got, "'cal'", "'eli'")
	got = runSQL(t, db, `
SELECT e.name FROM emp e WHERE e.salary < ANY
(SELECT e2.salary FROM emp e2 WHERE e2.dept_id = 20)`)
	// < ANY means < max(300, 50): everyone below 300.
	expect(t, got, "'ann'", "'bob'", "'dee'", "'eli'", "'fay'")
}

func TestUnionAndMinusAndIntersect(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT d.loc_id FROM dept d WHERE d.loc_id IS NOT NULL
UNION SELECT e.dept_id FROM emp e WHERE e.emp_id = 1`)
	expect(t, got, "1", "2", "10")
	got = runSQL(t, db, `
SELECT e.dept_id FROM emp e MINUS SELECT d.dept_id FROM dept d`)
	expect(t, got, "NULL")
	got = runSQL(t, db, `
SELECT e.dept_id FROM emp e INTERSECT SELECT d.dept_id FROM dept d`)
	expect(t, got, "10", "20", "30")
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.dept_id FROM emp e WHERE e.dept_id = 10
UNION ALL SELECT d.dept_id FROM dept d WHERE d.dept_id = 10`)
	expect(t, got, "10", "10", "10")
}

func TestInListAndBetweenAndLike(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `SELECT e.name FROM emp e WHERE e.dept_id IN (10, 30)`)
	expect(t, got, "'ann'", "'bob'", "'eli'")
	got = runSQL(t, db, `SELECT e.name FROM emp e WHERE e.salary BETWEEN 100 AND 200`)
	expect(t, got, "'ann'", "'bob'", "'fay'")
	got = runSQL(t, db, `SELECT e.name FROM emp e WHERE e.name LIKE '%a%'`)
	expect(t, got, "'ann'", "'cal'", "'fay'")
	got = runSQL(t, db, `SELECT e.name FROM emp e WHERE e.name LIKE '_a_'`)
	expect(t, got, "'cal'", "'fay'")
}

func TestCaseExpression(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name, CASE WHEN e.salary >= 200 THEN 'high' WHEN e.salary >= 100 THEN 'mid' ELSE 'low' END
FROM emp e WHERE e.dept_id = 20`)
	expect(t, got, "'cal'|'high'", "'dee'|'low'")
}

func TestGroupingSetsRollup(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT d.loc_id, d.dept_id, COUNT(*) FROM dept d WHERE d.loc_id IS NOT NULL
GROUP BY ROLLUP(d.loc_id, d.dept_id)`)
	expect(t, got,
		// full sets
		"1|10|1", "1|30|1", "2|20|1",
		// by loc
		"1|NULL|2", "2|NULL|1",
		// grand total
		"NULL|NULL|3")
}

func TestViewAndCorrelatedView(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT v.dept_id, v.avg_sal
FROM (SELECT e.dept_id, AVG(e.salary) avg_sal FROM emp e GROUP BY e.dept_id) v
WHERE v.avg_sal > 160`)
	expect(t, got, "20|175", "30|250")
}

func TestSubqueryCaching(t *testing.T) {
	db := tinyDB(t)
	q, err := qtree.BindSQL(`
SELECT e.name FROM emp e
WHERE e.salary > (SELECT AVG(e2.salary) FROM emp e2 WHERE e2.dept_id = e.dept_id)`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{db: db, plan: plan, subqCache: map[*qtree.Subq]map[string]datum.Datum{}}
	it, err := build(e, plan.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(nil); err != nil {
		t.Fatal(err)
	}
	for {
		r, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
	}
	// 6 emp rows but only 4 distinct dept_id correlation values
	// (10, 20, 30, NULL).
	if e.SubqExecs != 4 {
		t.Errorf("subquery executions = %d, want 4 (TIS caching)", e.SubqExecs)
	}
}

func TestErrorPropagation(t *testing.T) {
	db := tinyDB(t)
	q, err := qtree.BindSQL(`SELECT e.salary / (e.emp_id - 1) FROM emp e`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := optimizer.New(db.Catalog)
	plan, err := p.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db, plan); err == nil {
		t.Error("division by zero should propagate")
	}
}

func TestConcatAndArith(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `SELECT e.name || '-x', e.salary * 2 + 1 FROM emp e WHERE e.emp_id = 1`)
	expect(t, got, "'ann-x'|201")
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%c", true},
		{"abc", "a%b%c%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestRowidsAreDistinct(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `SELECT DISTINCT e.rowid FROM emp e`)
	if len(got) != 6 {
		t.Errorf("rowids = %v", got)
	}
}

func TestMergeJoinAgreesWithHash(t *testing.T) {
	// Force specific join methods by constructing plans via the optimizer
	// and checking against each other on a join query.
	db := tinyDB(t)
	want := runSQL(t, db, `
SELECT e.name, d.name FROM emp e, dept d WHERE e.dept_id = d.dept_id`)
	if len(want) != 5 {
		t.Fatalf("join rows = %d", len(want))
	}
	// All method variants should return the same multiset; exercised more
	// thoroughly by the transformation equivalence tests.
	_ = fmt.Sprintf
}
