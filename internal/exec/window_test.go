package exec

import (
	"testing"

	"repro/internal/qtree"
	"repro/internal/storage"
)

func bindOnly(db *storage.DB, src string) (*qtree.Query, error) {
	return qtree.BindSQL(src, db.Catalog)
}

// Window function tests run against the tiny EMP table:
//
//	dept 10: ann(100), bob(200)
//	dept 20: cal(300), dee(50)
//	dept 30: eli(250)
//	NULL:    fay(150)

func TestWindowWholePartition(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name, AVG(e.salary) OVER (PARTITION BY e.dept_id) FROM emp e`)
	expect(t, got,
		"'ann'|150", "'bob'|150",
		"'cal'|175", "'dee'|175",
		"'eli'|250",
		"'fay'|150") // NULL dept is its own partition
}

func TestWindowRunningSum(t *testing.T) {
	db := tinyDB(t)
	// Running sum by emp_id order within each department.
	got := runSQL(t, db, `
SELECT e.name, SUM(e.salary) OVER (PARTITION BY e.dept_id ORDER BY e.emp_id) FROM emp e`)
	expect(t, got,
		"'ann'|100", "'bob'|300", // dept 10: 100, then 100+200
		"'cal'|300", "'dee'|350", // dept 20: 300, then 300+50
		"'eli'|250",
		"'fay'|150")
}

func TestWindowRunningRangePeers(t *testing.T) {
	db := tinyDB(t)
	// RANGE frame: order-key ties are peers and share the frame. Order by
	// dept_id without partitioning; dept 10 has two peer rows.
	got := runSQL(t, db, `
SELECT e.name, COUNT(*) OVER (ORDER BY e.dept_id
  RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM emp e
WHERE e.dept_id IS NOT NULL`)
	expect(t, got,
		"'ann'|2", "'bob'|2", // peers at dept 10
		"'cal'|4", "'dee'|4", // peers at dept 20
		"'eli'|5")
}

func TestWindowRowNumber(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name, ROW_NUMBER() OVER (PARTITION BY e.dept_id ORDER BY e.salary DESC)
FROM emp e WHERE e.dept_id IS NOT NULL`)
	expect(t, got,
		"'bob'|1", "'ann'|2",
		"'cal'|1", "'dee'|2",
		"'eli'|1")
}

func TestWindowCountStarAndExplicitFrame(t *testing.T) {
	db := tinyDB(t)
	got := runSQL(t, db, `
SELECT e.name, COUNT(*) OVER (PARTITION BY e.dept_id ORDER BY e.emp_id
  ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM emp e
WHERE e.dept_id = 10`)
	expect(t, got, "'ann'|1", "'bob'|2")
}

func TestWindowInView(t *testing.T) {
	db := tinyDB(t)
	// The paper's Q7 shape: running aggregate in a view, filtered outside.
	got := runSQL(t, db, `
SELECT v.name, v.ravg FROM
(SELECT e.name name, e.dept_id d,
        AVG(e.salary) OVER (PARTITION BY e.dept_id ORDER BY e.emp_id) ravg
 FROM emp e) v
WHERE v.d = 10`)
	expect(t, got, "'ann'|100", "'bob'|150")
}

func TestWindowBindErrors(t *testing.T) {
	db := tinyDB(t)
	bad := []string{
		// Window in WHERE.
		`SELECT e.name FROM emp e WHERE SUM(e.salary) OVER (PARTITION BY e.dept_id) > 10`,
		// Window with GROUP BY.
		`SELECT SUM(e.salary) OVER (PARTITION BY e.dept_id) FROM emp e GROUP BY e.dept_id`,
		// DISTINCT window aggregate.
		`SELECT COUNT(DISTINCT e.salary) OVER (PARTITION BY e.dept_id) FROM emp e`,
		// ROW_NUMBER needs ORDER BY.
		`SELECT ROW_NUMBER() OVER (PARTITION BY e.dept_id) FROM emp e`,
		// Non-aggregate window function name.
		`SELECT UPPER(e.name) OVER (PARTITION BY e.dept_id) FROM emp e`,
	}
	for _, src := range bad {
		if _, err := bindOnly(db, src); err == nil {
			t.Errorf("should fail: %s", src)
		}
	}
}
