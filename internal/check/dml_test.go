package check

import (
	"testing"

	"repro/internal/datum"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

// mustBindDML parses and binds one mutation statement against the tiny
// demo schema.
func mustBindDML(t *testing.T, src string) *qtree.DMLStmt {
	t.Helper()
	db := testkit.TinyDB()
	stmt, err := qtree.BindDMLSQL(src, db.Catalog)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return stmt
}

func TestDMLCleanStatements(t *testing.T) {
	for _, src := range []string{
		"INSERT INTO DEPT (DEPT_ID, NAME) VALUES (7, 'OPS')",
		"INSERT INTO DEPT (DEPT_ID, NAME, LOC_ID) VALUES (:d, :n, :l)",
		"INSERT INTO DEPT (DEPT_ID, NAME) SELECT e.EMP_ID, e.NAME FROM EMP e",
		"UPDATE EMP e SET SALARY = e.SALARY + 1 WHERE e.DEPT_ID = :d",
		"UPDATE EMP SET MGR_ID = :m, SALARY = 0 WHERE EMP_ID = :id",
		"DELETE FROM EMP e WHERE e.SALARY < :floor",
	} {
		if vs := DML(mustBindDML(t, src)); len(vs) != 0 {
			t.Errorf("%s:\nunexpected violations: %v", src, vs)
		}
	}
}

// TestNegativeDML covers the DML-specific shape class; further classes the
// DML checker can emit are exercised by the sibling tests below.
func TestNegativeDML(t *testing.T) {
	t.Run("nil statement", func(t *testing.T) {
		wantClass(t, DML(nil), ClassDanglingLink)
	})
	t.Run("duplicate target column", func(t *testing.T) {
		stmt := mustBindDML(t, "UPDATE EMP e SET SALARY = 0, MGR_ID = :m WHERE e.EMP_ID = :id")
		stmt.TargetCols[1] = stmt.TargetCols[0]
		wantClass(t, DML(stmt), ClassDML)
	})
	t.Run("update without locating query", func(t *testing.T) {
		stmt := mustBindDML(t, "UPDATE EMP e SET SALARY = 0 WHERE e.EMP_ID = :id")
		stmt.Read = nil
		wantClass(t, DML(stmt), ClassDML)
	})
	t.Run("delete carrying target columns", func(t *testing.T) {
		stmt := mustBindDML(t, "DELETE FROM EMP e WHERE e.EMP_ID = :id")
		stmt.TargetCols = []int{0}
		wantClass(t, DML(stmt), ClassDML)
	})
	t.Run("insert with both VALUES and read query", func(t *testing.T) {
		stmt := mustBindDML(t, "INSERT INTO DEPT (DEPT_ID, NAME) VALUES (7, 'OPS')")
		stmt.Read = mustBindDML(t, "DELETE FROM EMP e WHERE e.EMP_ID = :id").Read
		wantClass(t, DML(stmt), ClassDML)
	})
	t.Run("locating query first output is not a column", func(t *testing.T) {
		stmt := mustBindDML(t, "DELETE FROM EMP e WHERE e.EMP_ID = :id")
		stmt.Read.Root.Select[0].Expr = &qtree.Const{Val: datum.NewInt(1)}
		wantClass(t, DML(stmt), ClassDML)
	})
	t.Run("locating query first output is not ROWID", func(t *testing.T) {
		// The exact defect a broken transformation would plant: EMP_ID is an
		// ordinary int column, indistinguishable from a rowid at runtime —
		// the executor would address arbitrary rows with employee IDs.
		stmt := mustBindDML(t, "UPDATE EMP e SET SALARY = 0 WHERE e.DEPT_ID = :d")
		stmt.Read.Root.Select[0].Expr.(*qtree.Col).Ord = 0
		wantClass(t, DML(stmt), ClassDML)
	})
}

func TestNegativeDMLTargetOrdinal(t *testing.T) {
	stmt := mustBindDML(t, "UPDATE EMP e SET SALARY = 0 WHERE e.EMP_ID = :id")
	stmt.TargetCols[0] = 99
	wantClass(t, DML(stmt), ClassUnresolvedColumn)
}

// TestNegativeDMLTypeAgreement seeds the two type-disagreement forms that
// bind cleanly from SQL text — the binder does no typing, so before the
// DML checker these reached the executor unchecked.
func TestNegativeDMLTypeAgreement(t *testing.T) {
	t.Run("VALUES row vs catalog", func(t *testing.T) {
		stmt := mustBindDML(t, "INSERT INTO EMP (EMP_ID, NAME, DEPT_ID, SALARY, MGR_ID) VALUES (1, 2, 3, 4, 5)")
		wantClass(t, DML(stmt), ClassTypeMismatch) // NAME holds strings
	})
	t.Run("SET expression vs catalog", func(t *testing.T) {
		stmt := mustBindDML(t, "UPDATE EMP e SET EMP_ID = e.NAME WHERE e.DEPT_ID = :d")
		wantClass(t, DML(stmt), ClassTypeMismatch)
	})
}

func TestNegativeDMLArity(t *testing.T) {
	t.Run("VALUES row arity", func(t *testing.T) {
		stmt := mustBindDML(t, "INSERT INTO DEPT (DEPT_ID, NAME) VALUES (7, 'OPS')")
		stmt.Values[0] = stmt.Values[0][:1]
		wantClass(t, DML(stmt), ClassArityMismatch)
	})
	t.Run("update locating query arity", func(t *testing.T) {
		stmt := mustBindDML(t, "UPDATE EMP e SET SALARY = 0 WHERE e.EMP_ID = :id")
		stmt.Read.Root.Select = stmt.Read.Root.Select[:1] // drop the SET value
		wantClass(t, DML(stmt), ClassArityMismatch)
	})
	t.Run("delete locating query arity", func(t *testing.T) {
		stmt := mustBindDML(t, "DELETE FROM EMP e WHERE e.EMP_ID = :id")
		q := mustBindDML(t, "UPDATE EMP e SET SALARY = 0 WHERE e.EMP_ID = :id").Read
		stmt.Read = q // two outputs where DELETE needs exactly ROWID
		wantClass(t, DML(stmt), ClassArityMismatch)
	})
}

func TestNegativeDMLParamCoverage(t *testing.T) {
	t.Run("slot count drift", func(t *testing.T) {
		stmt := mustBindDML(t, "UPDATE EMP e SET SALARY = :s WHERE e.EMP_ID = :id")
		stmt.Params = stmt.Params[:1]
		wantClass(t, DML(stmt), ClassParamOrdinal)
	})
	t.Run("slot name drift", func(t *testing.T) {
		stmt := mustBindDML(t, "UPDATE EMP e SET SALARY = :s WHERE e.EMP_ID = :id")
		stmt.Params = append([]string(nil), stmt.Params...)
		stmt.Params[0], stmt.Params[1] = stmt.Params[1], stmt.Params[0]
		wantClass(t, DML(stmt), ClassParamOrdinal)
	})
	t.Run("VALUES param ordinal", func(t *testing.T) {
		stmt := mustBindDML(t, "INSERT INTO DEPT (DEPT_ID, NAME) VALUES (:d, :n)")
		stmt.Values[0][0].(*qtree.Param).Ord = 9
		wantClass(t, DML(stmt), ClassParamOrdinal)
	})
}

func TestNegativeDMLValuesColumnRef(t *testing.T) {
	stmt := mustBindDML(t, "INSERT INTO DEPT (DEPT_ID, NAME) VALUES (7, 'OPS')")
	stmt.Values[0][0] = &qtree.Col{From: 3, Ord: 0, Name: "EMP_ID"}
	wantClass(t, DML(stmt), ClassUnresolvedColumn)
}

// TestDMLReadQueryFullyChecked asserts the read query runs under the whole
// query checker, not a shallow arity probe: a defect deep inside the
// locating query's WHERE surfaces through DML().
func TestDMLReadQueryFullyChecked(t *testing.T) {
	stmt := mustBindDML(t, "DELETE FROM EMP e WHERE e.DEPT_ID = :d")
	qtree.WalkExpr(stmt.Read.Root.Where[0], func(x qtree.Expr) bool {
		if col, ok := x.(*qtree.Col); ok {
			col.From = 77 // dangling from-item reference
		}
		return true
	})
	wantClass(t, DML(stmt), ClassUnresolvedColumn)
}
