package check

import (
	"fmt"
	"sort"

	"repro/internal/qtree"
)

// Summary captures the externally observable shape of a query: what a
// semantics-preserving transformation must keep fixed. The CBQT driver
// summarizes the query before applying a transformation state and checks
// the mutated tree against it under the rule's registered Contract.
type Summary struct {
	// Arity and Types describe the root output signature.
	Arity int
	Types []Type
	// Params is the bind-parameter name list (ordinal order).
	Params []string
	// Tables is the multiset of base-table occurrences in the whole tree.
	Tables map[string]int
	// OuterJoins counts left/full outer join items in the whole tree: a
	// transformation that loses one has silently converted an outer join
	// to inner (null-sidedness broken).
	OuterJoins int
}

// Summarize computes the contract summary of q. It tolerates malformed
// trees (the full checker reports those separately) and never panics.
func Summarize(q *qtree.Query) *Summary {
	s := &Summary{Tables: map[string]int{}}
	if q == nil || q.Root == nil {
		return s
	}
	// Output signature via a scratch checker; its violations are
	// discarded — the pre-state was verified on entry and the post-state
	// gets its own full check.
	sc := newChecker(q)
	s.Types = sc.checkBlock(q.Root, nil)
	s.Arity = len(s.Types)
	s.Params = append([]string(nil), q.Params...)
	forEachBlock(q.Root, map[*qtree.Block]bool{}, func(b *qtree.Block) {
		for _, f := range b.From {
			if f == nil {
				continue
			}
			if f.Table != nil {
				s.Tables[f.Table.Name]++
			}
			if f.Kind == qtree.JoinLeftOuter || f.Kind == qtree.JoinFullOuter {
				s.OuterJoins++
			}
		}
	})
	return s
}

// forEachBlock visits every block of the tree (views, set-operation
// branches and subquery blocks), guarding against aliased or cyclic
// structures.
func forEachBlock(b *qtree.Block, seen map[*qtree.Block]bool, fn func(*qtree.Block)) {
	if b == nil || seen[b] {
		return
	}
	seen[b] = true
	fn(b)
	for _, f := range b.From {
		if f != nil && f.View != nil {
			forEachBlock(f.View, seen, fn)
		}
	}
	if b.Set != nil {
		for _, c := range b.Set.Children {
			forEachBlock(c, seen, fn)
		}
	}
	b.VisitExprs(func(e qtree.Expr) {
		if sq, ok := e.(*qtree.Subq); ok {
			forEachBlock(sq.Block, seen, fn)
		}
	})
}

// Contract declares the invariants one transformation is allowed to relax.
// The zero value is the strictest contract — output signature, parameter
// list, base-table multiset and outer-join count all preserved — and is
// what unregistered rules get.
type Contract struct {
	// MayAddTables permits duplicating base-table occurrences
	// (disjunction-into-UNION-ALL replicates the block per disjunct).
	MayAddTables bool
	// MayRemoveTables permits dropping base-table occurrences (join
	// factorization shares one scan across UNION ALL branches).
	MayRemoveTables bool
}

// contracts registers per-rule relaxations, keyed by Rule.Name(). Every
// rule not listed here is held to the zero (strictest) Contract.
var contracts = map[string]Contract{
	"disjunction into UNION ALL": {MayAddTables: true},
	"join factorization":         {MayRemoveTables: true},
}

// RegisterContract installs (or replaces) the contract for a rule name.
// Built-in rules are pre-registered; tests and future rules use this.
func RegisterContract(rule string, ct Contract) { contracts[rule] = ct }

// CheckContract compares the post-transformation state of q against the
// pre-state summary under the named rule's contract, returning one
// ClassContract violation per broken invariant.
func CheckContract(rule string, pre *Summary, q *qtree.Query) Violations {
	if pre == nil {
		return nil
	}
	post := Summarize(q)
	ct := contracts[rule]
	var vs Violations
	add := func(format string, args ...any) {
		vs = append(vs, &Violation{Class: ClassContract, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}
	if post.Arity != pre.Arity {
		add("changed the output arity from %d to %d", pre.Arity, post.Arity)
	}
	for i := 0; i < len(pre.Types) && i < len(post.Types); i++ {
		if !comparable(pre.Types[i], post.Types[i]) {
			add("changed output column %d from %s to %s", i, pre.Types[i], post.Types[i])
		}
	}
	if !equalStrings(pre.Params, post.Params) {
		add("changed the bind-parameter list from %v to %v", pre.Params, post.Params)
	}
	for _, name := range sortedKeys(pre.Tables) {
		if n := pre.Tables[name]; post.Tables[name] < n && !ct.MayRemoveTables {
			add("dropped %d occurrence(s) of table %s", n-post.Tables[name], name)
		}
	}
	for _, name := range sortedKeys(post.Tables) {
		if n := post.Tables[name]; n > pre.Tables[name] && !ct.MayAddTables {
			add("introduced %d occurrence(s) of table %s", n-pre.Tables[name], name)
		}
	}
	if post.OuterJoins < pre.OuterJoins {
		add("reduced the outer-join count from %d to %d (null-sidedness lost)", pre.OuterJoins, post.OuterJoins)
	}
	return vs
}

// sortedKeys returns the map's keys in sorted order, for deterministic
// violation lists.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
