package check

import (
	"fmt"
	"math"

	"repro/internal/optimizer"
	"repro/internal/qtree"
)

// Plan statically verifies a physical plan: every operator has its inputs,
// hash/merge join keys agree in arity, set-operation inputs agree in
// arity, every subquery expression left in the tree has a compiled
// subplan, every column an expression references is produced by the
// operator's inputs (or supplied by correlation), and cost estimates are
// finite and non-negative. Like Query, it never panics on malformed input.
func Plan(p *optimizer.Plan) Violations {
	if p == nil {
		return Violations{&Violation{Class: ClassPlan, Detail: "nil plan"}}
	}
	c := &planChecker{plan: p}
	if p.Root == nil {
		c.add(&Violation{Class: ClassPlan, Detail: "plan has no root operator"})
		return c.vs
	}
	c.checkCost("plan", p.Cost)
	c.node(p.Root, map[optimizer.ColID]bool{})
	for sq, sp := range p.Subplans {
		if sq == nil {
			c.add(&Violation{Class: ClassPlan, Detail: "subplan keyed by a nil subquery expression"})
			continue
		}
		if sp == nil || sp.Root == nil {
			c.add(&Violation{Class: ClassPlan,
				Detail: fmt.Sprintf("%s subquery has an empty subplan", sq.Kind)})
			continue
		}
		ambient := map[optimizer.ColID]bool{}
		for _, id := range sp.Correlated {
			ambient[id] = true
		}
		c.node(sp.Root, ambient)
	}
	return c.vs
}

// planChecker accumulates violations while walking one plan.
type planChecker struct {
	plan *optimizer.Plan
	vs   Violations
	// visited guards against operator DAGs/cycles left by a broken
	// planner (each operator must appear in exactly one tree position).
	visited map[optimizer.PlanNode]bool
}

func (c *planChecker) add(v *Violation) { c.vs = append(c.vs, v) }

func (c *planChecker) violate(format string, args ...any) {
	c.add(&Violation{Class: ClassPlan, Detail: fmt.Sprintf(format, args...)})
}

// checkCost flags negative, NaN or (for totals) infinite estimates.
func (c *planChecker) checkCost(label string, cost optimizer.Cost) {
	if math.IsNaN(cost.Total) || math.IsInf(cost.Total, 0) || cost.Total < 0 {
		c.violate("%s has an invalid total cost %v", label, cost.Total)
	}
	if math.IsNaN(cost.Rows) || math.IsInf(cost.Rows, 0) || cost.Rows < 0 {
		c.violate("%s has an invalid row estimate %v", label, cost.Rows)
	}
}

// node verifies one operator subtree. ambient is the set of columns
// supplied from outside the subtree: correlation parameters of a subplan,
// or the left side of a nested-loops / lateral join for its right side.
func (c *planChecker) node(n optimizer.PlanNode, ambient map[optimizer.ColID]bool) {
	if n == nil {
		c.violate("nil operator")
		return
	}
	if c.visited == nil {
		c.visited = map[optimizer.PlanNode]bool{}
	}
	if c.visited[n] {
		c.violate("operator %s appears in more than one plan position", n.Label())
		return
	}
	c.visited[n] = true
	c.checkCost(n.Label(), n.Cost())

	avail := func(nodes ...optimizer.PlanNode) map[optimizer.ColID]bool {
		out := make(map[optimizer.ColID]bool, len(ambient))
		for id := range ambient {
			out[id] = true
		}
		for _, ch := range nodes {
			if ch != nil {
				for _, id := range ch.Columns() {
					out[id] = true
				}
			}
		}
		return out
	}
	self := avail(n) // the node's own outputs plus ambient (for scans)

	switch v := n.(type) {
	case *optimizer.SeqScan:
		if v.Table == nil {
			c.violate("SeqScan without a table")
			return
		}
		c.exprs(n, self, v.Filter...)
	case *optimizer.IndexScan:
		if v.Table == nil || v.Index == nil {
			c.violate("IndexScan without a table or index")
			return
		}
		c.exprs(n, self, v.EqKeys...)
		c.exprs(n, self, v.Lo, v.Hi)
		c.exprs(n, self, v.Filter...)
	case *optimizer.Filter:
		c.exprs(n, avail(v.Child), v.Preds...)
		c.node(v.Child, ambient)
	case *optimizer.Join:
		if v.L == nil || v.R == nil {
			c.violate("%s has a nil input", n.Label())
			return
		}
		if len(v.EqL) != len(v.EqR) {
			c.violate("%s has %d left keys but %d right keys", n.Label(), len(v.EqL), len(v.EqR))
		}
		if len(v.NullSafeEq) > len(v.EqL) {
			c.violate("%s has %d null-safe flags for %d keys", n.Label(), len(v.NullSafeEq), len(v.EqL))
		}
		c.exprs(n, avail(v.L), v.EqL...)
		rightAmbient := ambient
		if v.RLateral || v.Method == optimizer.MethodNL {
			// The right side of a nested-loops join re-evaluates per left
			// row; its probe keys and lateral body read left columns.
			rightAmbient = avail(v.L)
		}
		rSelf := make(map[optimizer.ColID]bool, len(rightAmbient))
		for id := range rightAmbient {
			rSelf[id] = true
		}
		for _, id := range v.R.Columns() {
			rSelf[id] = true
		}
		c.exprs(n, rSelf, v.EqR...)
		c.exprs(n, avail(v.L, v.R), v.On...)
		c.node(v.L, ambient)
		c.node(v.R, rightAmbient)
	case *optimizer.Agg:
		in := avail(v.Child)
		c.exprs(n, in, v.GroupBy...)
		for _, a := range v.Aggs {
			if a.Arg != nil {
				c.exprs(n, in, a.Arg)
			}
		}
		for si, set := range v.GroupingSets {
			for _, idx := range set {
				if idx < 0 || idx >= len(v.GroupBy) {
					c.violate("Aggregate grouping set %d index %d out of range (%d grouping keys)", si, idx, len(v.GroupBy))
				}
			}
		}
		c.node(v.Child, ambient)
	case *optimizer.Window:
		in := avail(v.Child)
		for _, w := range v.Funcs {
			if w == nil {
				c.violate("Window with a nil function")
				continue
			}
			if w.Arg != nil {
				c.exprs(n, in, w.Arg)
			}
			c.exprs(n, in, w.PartitionBy...)
			for _, o := range w.OrderBy {
				c.exprs(n, in, o.Expr)
			}
		}
		c.node(v.Child, ambient)
	case *optimizer.Project:
		if len(n.Columns()) != len(v.Exprs) {
			c.violate("Project outputs %d columns from %d expressions", len(n.Columns()), len(v.Exprs))
		}
		c.exprs(n, avail(v.Child), v.Exprs...)
		c.node(v.Child, ambient)
	case *optimizer.Distinct:
		c.node(v.Child, ambient)
	case *optimizer.Sort:
		if len(v.Desc) != len(v.Keys) {
			c.violate("Sort has %d directions for %d keys", len(v.Desc), len(v.Keys))
		}
		c.exprs(n, avail(v.Child), v.Keys...)
		c.node(v.Child, ambient)
	case *optimizer.Limit:
		if v.N < 0 {
			c.violate("Limit with negative count %d", v.N)
		}
		c.node(v.Child, ambient)
	case *optimizer.SetNode:
		if len(v.Inputs) < 2 {
			c.violate("%s has %d inputs; at least 2 are required", n.Label(), len(v.Inputs))
		}
		arity := -1
		for i, in := range v.Inputs {
			if in == nil {
				c.violate("%s input %d is nil", n.Label(), i)
				continue
			}
			if arity < 0 {
				arity = len(in.Columns())
			} else if len(in.Columns()) != arity {
				c.violate("%s input %d has %d columns; input 0 has %d", n.Label(), i, len(in.Columns()), arity)
			}
			c.node(in, ambient)
		}
	default:
		if optimizer.IsCostStub(n) {
			// A cost-annotation stub is an opaque leaf: it declares its
			// output columns and cost (both checked above) but has no inputs
			// to verify.
			return
		}
		c.violate("unknown operator %T", n)
		for _, ch := range n.Children() {
			c.node(ch, ambient)
		}
	}
}

// exprs verifies expressions attached to one operator: every column they
// reference must be available, and every subquery expression must have a
// compiled subplan.
func (c *planChecker) exprs(n optimizer.PlanNode, avail map[optimizer.ColID]bool, es ...qtree.Expr) {
	for _, e := range es {
		if e == nil {
			continue // optional slots (Lo/Hi); nil conjuncts are caught at the query level
		}
		qtree.WalkExpr(e, func(x qtree.Expr) bool {
			switch v := x.(type) {
			case *qtree.Col:
				if !avail[optimizer.ColID{From: v.From, Ord: v.Ord}] {
					c.violate("%s references column q%d.#%d, which none of its inputs produce",
						n.Label(), v.From, v.Ord)
				}
			case *qtree.Subq:
				if c.plan.Subplans[v] == nil {
					c.violate("%s carries a %s subquery with no compiled subplan", n.Label(), v.Kind)
				}
				return false
			}
			return true
		})
	}
}
