package check

import (
	"fmt"

	"repro/internal/qtree"
)

// Query statically verifies q — column resolution, expression typing,
// structural invariants and grouping discipline — and returns every
// violation found (nil when the query is clean). It never executes
// anything, never mutates q, and never panics on malformed input: a broken
// node is reported and typed as Any so checking continues past it.
func Query(q *qtree.Query) Violations {
	if q == nil {
		return Violations{&Violation{Class: ClassDanglingLink, Detail: "nil query"}}
	}
	c := newChecker(q)
	if q.Root == nil {
		c.add(&Violation{Class: ClassDanglingLink, Detail: "query has no root block"})
		return c.vs
	}
	c.checkBlock(q.Root, nil)
	return c.vs
}

// checker accumulates violations while walking one query.
type checker struct {
	q  *qtree.Query
	vs Violations
	// seen guards against a block appearing in two tree positions (an
	// aliased or cyclic structure left by a broken transformation).
	seen map[*qtree.Block]bool
	// blockIDs / fromDef verify query-unique identities.
	blockIDs map[int]bool
	fromDef  map[qtree.FromID]int // from ID -> defining block ID
	// outTypes memoizes the output column types of checked blocks, so
	// references to a view resolve against its verified signature.
	outTypes map[*qtree.Block][]Type
	// cur is the scope of the block whose expressions are currently being
	// typed; subquery expressions chain their block's scope from it.
	cur *scope
}

func newChecker(q *qtree.Query) *checker {
	return &checker{
		q:        q,
		seen:     map[*qtree.Block]bool{},
		blockIDs: map[int]bool{},
		fromDef:  map[qtree.FromID]int{},
		outTypes: map[*qtree.Block][]Type{},
	}
}

func (c *checker) add(v *Violation) { c.vs = append(c.vs, v) }

// scope is the checker's name-resolution environment, mirroring the
// binder's: the from items visible at one block, chained to enclosing
// blocks for correlation. A set-operation ORDER BY scope carries the
// operation's output signature instead, legalizing the Col{From: 0}
// output-ordinal sentinel.
type scope struct {
	parent *scope
	items  []*qtree.FromItem
	// exclude hides one item from this level: a lateral view's body sees
	// its siblings but never itself.
	exclude qtree.FromID
	// setArity > 0 marks a set-operation ORDER BY scope with that output
	// arity; setTypes are the merged branch types.
	setArity int
	setTypes []Type
}

// lookup resolves a from ID against the scope chain, innermost first.
// Ambiguity cannot arise here: from IDs are query-unique (verified
// separately), so at most one visible item carries the ID.
func (s *scope) lookup(id qtree.FromID) *qtree.FromItem {
	for sc := s; sc != nil; sc = sc.parent {
		if id == sc.exclude {
			continue
		}
		for _, f := range sc.items {
			if f != nil && f.ID == id {
				return f
			}
		}
	}
	return nil
}

// checkBlock verifies one block (and everything under it) in the given
// outer scope and returns its output column types.
func (c *checker) checkBlock(b *qtree.Block, outer *scope) []Type {
	if b == nil {
		c.add(&Violation{Class: ClassDanglingLink, Detail: "nil block"})
		return nil
	}
	if c.seen[b] {
		c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
			Detail: "block appears in more than one tree position (aliased structure)"})
		return c.outTypes[b]
	}
	c.seen[b] = true
	if !c.q.CanHold(b) {
		c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
			Detail: "block is owned by a different query"})
	}
	if c.blockIDs[b.ID] {
		c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
			Detail: fmt.Sprintf("duplicate block ID %d", b.ID)})
	}
	c.blockIDs[b.ID] = true
	if b.Limit < 0 {
		c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
			Detail: fmt.Sprintf("negative limit %d", b.Limit)})
	}
	var types []Type
	if b.Set != nil {
		types = c.checkSetBlock(b, outer)
	} else {
		types = c.checkSelectBlock(b, outer)
	}
	c.outTypes[b] = types
	return types
}

// checkSetBlock verifies a set-operation block: branch arity and type
// agreement, no SELECT-field residue, and ORDER BY restricted to output
// ordinals.
func (c *checker) checkSetBlock(b *qtree.Block, outer *scope) []Type {
	if len(b.Select)+len(b.From)+len(b.Where)+len(b.GroupBy)+len(b.Having) > 0 {
		c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
			Detail: "set-operation block carries SELECT-block fields (they would be silently ignored)"})
	}
	if b.Set.Kind > qtree.SetMinus {
		c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
			Detail: fmt.Sprintf("unknown set-operation kind %d", int(b.Set.Kind))})
	}
	if len(b.Set.Children) < 2 {
		c.add(&Violation{Class: ClassArityMismatch, Block: b.ID,
			Detail: fmt.Sprintf("set operation has %d branches; at least 2 are required", len(b.Set.Children))})
	}
	var merged []Type
	first := true
	for i, child := range b.Set.Children {
		if child == nil {
			c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
				Detail: fmt.Sprintf("set-operation branch %d is nil", i)})
			continue
		}
		ts := c.checkBlock(child, outer)
		if first {
			merged = append([]Type(nil), ts...)
			first = false
			continue
		}
		if len(ts) != len(merged) {
			c.add(&Violation{Class: ClassArityMismatch, Block: b.ID,
				Detail: fmt.Sprintf("set-operation branch %d has %d columns; branch 0 has %d", i, len(ts), len(merged))})
		}
		for j := 0; j < len(ts) && j < len(merged); j++ {
			if !comparable(merged[j], ts[j]) {
				c.add(&Violation{Class: ClassTypeMismatch, Block: b.ID,
					Detail: fmt.Sprintf("set-operation column %d is incomparable across branches: %s vs %s", j, merged[j], ts[j])})
			}
			merged[j] = merge(merged[j], ts[j])
		}
	}
	sc := &scope{parent: outer, setArity: len(merged), setTypes: merged}
	if len(merged) == 0 {
		// A broken set op still needs a non-zero arity so the sentinel
		// check below reports ordinals rather than sentinel misuse.
		sc.setArity = -1
	}
	prev := c.cur
	c.cur = sc
	colT := c.typerFor(sc, b.ID)
	for _, o := range b.OrderBy {
		c.typeExpr(o.Expr, b.ID, colT)
		if qtree.ContainsAgg(o.Expr) || containsWin(o.Expr) {
			c.add(&Violation{Class: ClassGrouping, Block: b.ID,
				Detail: "aggregate or window function in a set-operation ORDER BY"})
		}
	}
	c.cur = prev
	return merged
}

// checkSelectBlock verifies a SELECT block: from-item structure, view
// bodies, every expression, and the grouping/window discipline.
func (c *checker) checkSelectBlock(b *qtree.Block, outer *scope) []Type {
	sc := &scope{parent: outer, items: b.From}
	anchors := 0
	for _, f := range b.From {
		if f == nil {
			c.add(&Violation{Class: ClassDanglingLink, Block: b.ID, Detail: "nil from item"})
			continue
		}
		if f.ID <= 0 {
			c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
				Detail: fmt.Sprintf("from item %q has no identity (ID %d)", f.Alias, f.ID)})
		} else if def, dup := c.fromDef[f.ID]; dup {
			c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
				Detail: fmt.Sprintf("from ID q%d is defined in both block %d and block %d", f.ID, def, b.ID)})
		} else {
			c.fromDef[f.ID] = b.ID
		}
		switch {
		case f.Table != nil && f.View != nil:
			c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
				Detail: fmt.Sprintf("from item %q is both a base table and a view", f.Alias)})
		case f.Table == nil && f.View == nil:
			c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
				Detail: fmt.Sprintf("from item %q is neither a base table nor a view", f.Alias)})
		}
		if f.Kind > qtree.JoinFullOuter {
			c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
				Detail: fmt.Sprintf("from item %q has unknown join kind %d", f.Alias, int(f.Kind))})
		}
		if f.Kind == qtree.JoinInner && len(f.Cond) > 0 {
			c.add(&Violation{Class: ClassJoinOrder, Block: b.ID,
				Detail: fmt.Sprintf("inner-join item %q carries a join condition (the planner would silently drop it)", f.Alias)})
		}
		if f.Lateral && f.Table != nil {
			c.add(&Violation{Class: ClassDanglingLink, Block: b.ID,
				Detail: fmt.Sprintf("from item %q is a lateral base table (only views can be lateral)", f.Alias)})
		}
		if f.Kind == qtree.JoinInner && !f.Lateral {
			anchors++
		}
	}
	if len(b.From) > 0 && anchors == 0 {
		// Every non-inner right side and lateral view must follow some
		// other item; a block with no inner, non-lateral item has no
		// feasible join order.
		c.add(&Violation{Class: ClassJoinOrder, Block: b.ID,
			Detail: "no from item can anchor the join order (every item is a non-inner right side or a lateral view)"})
	}

	// Check view bodies: non-lateral views see only the enclosing query's
	// outer scope (no siblings); lateral views additionally see their
	// siblings, but never themselves. Non-lateral bodies go first so
	// lateral sibling references resolve against verified signatures.
	for _, f := range b.From {
		if f != nil && f.View != nil && !f.Lateral {
			c.checkBlock(f.View, outer)
		}
	}
	for _, f := range b.From {
		if f != nil && f.View != nil && f.Lateral {
			c.checkBlock(f.View, &scope{parent: outer, items: b.From, exclude: f.ID})
		}
	}

	prev := c.cur
	c.cur = sc
	colT := c.typerFor(sc, b.ID)

	grouped := b.HasGroupBy()
	types := make([]Type, 0, len(b.Select))
	for _, it := range b.Select {
		types = append(types, c.typeExpr(it.Expr, b.ID, colT))
		c.checkNesting(it.Expr, b.ID)
		if grouped && containsWin(it.Expr) {
			c.add(&Violation{Class: ClassGrouping, Block: b.ID,
				Detail: "window function in a grouped block"})
		}
	}
	for _, e := range b.Where {
		t := c.typeExpr(e, b.ID, colT)
		c.requirePred(e, t, b.ID, "WHERE")
		c.banAggWin(e, b.ID, "WHERE")
	}
	for _, f := range b.From {
		if f == nil {
			continue
		}
		for _, e := range f.Cond {
			t := c.typeExpr(e, b.ID, colT)
			c.requirePred(e, t, b.ID, "join condition")
			c.banAggWin(e, b.ID, "join condition")
		}
	}
	for _, e := range b.GroupBy {
		c.typeExpr(e, b.ID, colT)
		c.banAggWin(e, b.ID, "GROUP BY")
	}
	for _, e := range b.Having {
		t := c.typeExpr(e, b.ID, colT)
		c.requirePred(e, t, b.ID, "HAVING")
		c.checkNesting(e, b.ID)
		if containsWin(e) {
			c.add(&Violation{Class: ClassGrouping, Block: b.ID, Detail: "window function in HAVING"})
		}
	}
	for _, o := range b.OrderBy {
		c.typeExpr(o.Expr, b.ID, colT)
		c.checkNesting(o.Expr, b.ID)
		if containsWin(o.Expr) {
			c.add(&Violation{Class: ClassGrouping, Block: b.ID, Detail: "window function in ORDER BY"})
		}
		if !grouped && qtree.ContainsAgg(o.Expr) {
			c.add(&Violation{Class: ClassGrouping, Block: b.ID,
				Detail: "aggregate in ORDER BY of a non-grouped block"})
		}
	}

	c.checkGroupingSets(b)
	if grouped {
		c.checkGroupCoverage(b)
	}
	c.cur = prev
	return types
}

// typerFor builds the column resolver+typer for expressions of one block.
func (c *checker) typerFor(sc *scope, blockID int) colTyper {
	return func(col *qtree.Col) Type {
		if col.From == 0 {
			// The set-operation output sentinel: legal only in a set-op
			// ORDER BY, addressing an output ordinal.
			if sc.setArity != 0 {
				if col.Ord >= 0 && col.Ord < len(sc.setTypes) {
					return sc.setTypes[col.Ord]
				}
				c.add(&Violation{Class: ClassUnresolvedColumn, Block: blockID,
					Detail: fmt.Sprintf("set-operation output ordinal %d out of range (arity %d)", col.Ord, len(sc.setTypes))})
				return TAny
			}
			c.add(&Violation{Class: ClassUnresolvedColumn, Block: blockID,
				Detail: fmt.Sprintf("column %s uses the set-operation output sentinel outside a set-operation ORDER BY", col.Name)})
			return TAny
		}
		f := sc.lookup(col.From)
		if f == nil {
			c.add(&Violation{Class: ClassUnresolvedColumn, Block: blockID,
				Detail: fmt.Sprintf("column %s references from item q%d, which is not visible at this depth", colName(col), col.From)})
			return TAny
		}
		return c.itemColType(f, col, blockID)
	}
}

// itemColType types a resolved column reference against its source.
func (c *checker) itemColType(f *qtree.FromItem, col *qtree.Col, blockID int) Type {
	switch {
	case f.Table != nil:
		if col.Ord >= 0 && col.Ord < len(f.Table.Cols) {
			return TypeOfKind(f.Table.Cols[col.Ord].Type)
		}
		if col.Ord == f.Table.RowidOrdinal() {
			return TInt
		}
		c.add(&Violation{Class: ClassUnresolvedColumn, Block: blockID,
			Detail: fmt.Sprintf("column %s ordinal %d is out of range for table %s (%d columns plus rowid)",
				colName(col), col.Ord, f.Table.Name, len(f.Table.Cols))})
		return TAny
	case f.View != nil:
		if ts, ok := c.outTypes[f.View]; ok {
			if col.Ord >= 0 && col.Ord < len(ts) {
				return ts[col.Ord]
			}
			c.add(&Violation{Class: ClassUnresolvedColumn, Block: blockID,
				Detail: fmt.Sprintf("column %s ordinal %d is out of range for view %s (%d columns)",
					colName(col), col.Ord, f.Alias, len(ts))})
			return TAny
		}
		// The view has not been checked yet (a lateral view referencing a
		// lateral sibling): verify arity only.
		if ar := safeArity(f.View, map[*qtree.Block]bool{}); col.Ord < 0 || col.Ord >= ar {
			c.add(&Violation{Class: ClassUnresolvedColumn, Block: blockID,
				Detail: fmt.Sprintf("column %s ordinal %d is out of range for view %s (%d columns)",
					colName(col), col.Ord, f.Alias, ar)})
		}
		return TAny
	}
	return TAny // neither table nor view: already reported structurally
}

// typeSubq types a subquery predicate or scalar subquery, checking its
// block in the enclosing block's scope (correlation).
func (c *checker) typeSubq(v *qtree.Subq, blockID int, colT colTyper) Type {
	if v.Block == nil {
		c.add(&Violation{Class: ClassDanglingLink, Block: blockID,
			Detail: fmt.Sprintf("%s subquery has a nil block", v.Kind)})
		for _, l := range v.Left {
			c.typeExpr(l, blockID, colT)
		}
		if v.Kind == qtree.SubqScalar {
			return TAny
		}
		return TBool
	}
	sub := c.checkBlock(v.Block, c.cur)
	switch v.Kind {
	case qtree.SubqExists, qtree.SubqNotExists:
		if len(v.Left) != 0 {
			c.add(&Violation{Class: ClassArityMismatch, Block: blockID,
				Detail: fmt.Sprintf("%s subquery carries %d outer comparison expressions", v.Kind, len(v.Left))})
		}
		return TBool
	case qtree.SubqIn, qtree.SubqNotIn, qtree.SubqAnyCmp, qtree.SubqAllCmp:
		if len(v.Left) != len(sub) {
			c.add(&Violation{Class: ClassArityMismatch, Block: blockID,
				Detail: fmt.Sprintf("%s compares %d outer expressions against %d subquery columns", v.Kind, len(v.Left), len(sub))})
		}
		for i, l := range v.Left {
			lt := c.typeExpr(l, blockID, colT)
			if i < len(sub) && !comparable(lt, sub[i]) {
				c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
					Detail: fmt.Sprintf("%s column %d is incomparable with the subquery output: %s vs %s", v.Kind, i, lt, sub[i])})
			}
		}
		if (v.Kind == qtree.SubqAnyCmp || v.Kind == qtree.SubqAllCmp) && !v.Op.IsComparison() {
			c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
				Detail: fmt.Sprintf("%s subquery requires a comparison operator, have %s", v.Kind, v.Op)})
		}
		return TBool
	case qtree.SubqScalar:
		if len(v.Left) != 0 {
			c.add(&Violation{Class: ClassArityMismatch, Block: blockID,
				Detail: fmt.Sprintf("scalar subquery carries %d outer comparison expressions", len(v.Left))})
		}
		if len(sub) != 1 {
			c.add(&Violation{Class: ClassArityMismatch, Block: blockID,
				Detail: fmt.Sprintf("scalar subquery returns %d columns; exactly 1 is required", len(sub))})
			return TAny
		}
		return sub[0]
	}
	c.add(&Violation{Class: ClassDanglingLink, Block: blockID,
		Detail: fmt.Sprintf("unknown subquery kind %d", int(v.Kind))})
	return TAny
}

// checkParam verifies a bind parameter reference against the query's
// parameter list: the ordinal must be in range and the name must match the
// slot, so one optimized plan binds every bind set identically.
func (c *checker) checkParam(p *qtree.Param, blockID int) {
	if p.Ord < 0 || p.Ord >= len(c.q.Params) {
		c.add(&Violation{Class: ClassParamOrdinal, Block: blockID,
			Detail: fmt.Sprintf("parameter %s has ordinal %d outside the query's %d-slot parameter list", p.Name, p.Ord, len(c.q.Params))})
		return
	}
	if c.q.Params[p.Ord] != p.Name {
		c.add(&Violation{Class: ClassParamOrdinal, Block: blockID,
			Detail: fmt.Sprintf("parameter %s has ordinal %d, but that slot is registered as %s", p.Name, p.Ord, c.q.Params[p.Ord])})
	}
}

// banAggWin flags aggregate and window references in clauses that are
// evaluated before (or independently of) aggregation.
func (c *checker) banAggWin(e qtree.Expr, blockID int, where string) {
	if qtree.ContainsAgg(e) {
		c.add(&Violation{Class: ClassGrouping, Block: blockID,
			Detail: fmt.Sprintf("aggregate function in %s", where)})
	}
	if containsWin(e) {
		c.add(&Violation{Class: ClassGrouping, Block: blockID,
			Detail: fmt.Sprintf("window function in %s", where)})
	}
}

// checkNesting flags aggregates or window functions nested inside another
// aggregate or window function argument.
func (c *checker) checkNesting(e qtree.Expr, blockID int) {
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		switch v := x.(type) {
		case *qtree.Agg:
			if v.Arg != nil && (qtree.ContainsAgg(v.Arg) || containsWin(v.Arg)) {
				c.add(&Violation{Class: ClassGrouping, Block: blockID,
					Detail: fmt.Sprintf("aggregate or window function nested inside %s", v.Op)})
			}
		case *qtree.WinFunc:
			nested := v.Arg != nil && (qtree.ContainsAgg(v.Arg) || containsWin(v.Arg))
			for _, p := range v.PartitionBy {
				nested = nested || qtree.ContainsAgg(p) || containsWin(p)
			}
			for _, o := range v.OrderBy {
				nested = nested || qtree.ContainsAgg(o.Expr) || containsWin(o.Expr)
			}
			if nested {
				c.add(&Violation{Class: ClassGrouping, Block: blockID,
					Detail: fmt.Sprintf("aggregate or window function nested inside window %s", v.Op)})
			}
		case *qtree.Subq:
			return false
		}
		return true
	})
}

// checkGroupingSets verifies grouping-set indexes address GROUP BY entries.
func (c *checker) checkGroupingSets(b *qtree.Block) {
	for si, set := range b.GroupingSets {
		for _, idx := range set {
			if idx < 0 || idx >= len(b.GroupBy) {
				c.add(&Violation{Class: ClassGrouping, Block: b.ID,
					Detail: fmt.Sprintf("grouping set %d index %d is out of range (GROUP BY has %d entries)", si, idx, len(b.GroupBy))})
			}
		}
	}
}

// checkGroupCoverage verifies the aggregation discipline of a grouped
// block: every local column reference outside an aggregate, in the select
// list, HAVING and ORDER BY, must be one of the grouping expressions —
// otherwise the executor would read an arbitrary row of each group.
// Correlated references are constants within one invocation, and GROUP BY
// matching is structural (rendered form), so computed grouping keys cover
// identical computed outputs.
func (c *checker) checkGroupCoverage(b *qtree.Block) {
	keys := map[string]bool{}
	for _, g := range b.GroupBy {
		if g != nil {
			keys[g.String()] = true
		}
	}
	local := b.LocalFromIDs()
	report := func(where string, e qtree.Expr) {
		c.add(&Violation{Class: ClassGrouping, Block: b.ID,
			Detail: fmt.Sprintf("%s expression %s is neither aggregated nor grouped", where, e)})
	}
	for _, it := range b.Select {
		if it.Expr != nil && !c.covered(it.Expr, keys, local) {
			report("select", it.Expr)
		}
	}
	for _, h := range b.Having {
		if h != nil && !c.covered(h, keys, local) {
			report("HAVING", h)
		}
	}
	for _, o := range b.OrderBy {
		if o.Expr != nil && !c.covered(o.Expr, keys, local) {
			report("ORDER BY", o.Expr)
		}
	}
}

// covered reports whether e is computable per group: it is a grouping
// expression, contains no local column references outside aggregates, or
// is composed of covered parts.
func (c *checker) covered(e qtree.Expr, keys map[string]bool, local map[qtree.FromID]bool) bool {
	if e == nil {
		return true // reported as dangling elsewhere
	}
	if keys[e.String()] {
		return true
	}
	switch v := e.(type) {
	case *qtree.Const, *qtree.Param, *qtree.Agg, *qtree.WinFunc:
		return true
	case *qtree.Col:
		return !local[v.From]
	case *qtree.Bin:
		return c.covered(v.L, keys, local) && c.covered(v.R, keys, local)
	case *qtree.Not:
		return c.covered(v.E, keys, local)
	case *qtree.IsNull:
		return c.covered(v.E, keys, local)
	case *qtree.Like:
		return c.covered(v.E, keys, local) && c.covered(v.Pattern, keys, local)
	case *qtree.InList:
		if !c.covered(v.E, keys, local) {
			return false
		}
		for _, x := range v.Vals {
			if !c.covered(x, keys, local) {
				return false
			}
		}
		return true
	case *qtree.Func:
		for _, a := range v.Args {
			if !c.covered(a, keys, local) {
				return false
			}
		}
		return true
	case *qtree.LNNVL:
		return c.covered(v.E, keys, local)
	case *qtree.IsTrue:
		return c.covered(v.E, keys, local)
	case *qtree.Subq:
		// The outer-side expressions must be per-group; references inside
		// the subquery block to local ungrouped columns are correlation
		// parameters the executor re-evaluates per row — accept them
		// rather than over-reject transformed trees.
		for _, l := range v.Left {
			if !c.covered(l, keys, local) {
				return false
			}
		}
		return true
	case *qtree.Case:
		for _, w := range v.Whens {
			if !c.covered(w.Cond, keys, local) || !c.covered(w.Result, keys, local) {
				return false
			}
		}
		return v.Else == nil || c.covered(v.Else, keys, local)
	}
	return false
}

// containsWin reports whether e contains a window-function reference
// outside nested subquery blocks.
func containsWin(e qtree.Expr) bool {
	found := false
	qtree.WalkExpr(e, func(x qtree.Expr) bool {
		switch x.(type) {
		case *qtree.WinFunc:
			found = true
			return false
		case *qtree.Subq:
			return false
		}
		return !found
	})
	return found
}

// safeArity computes a block's output arity without touching memoized
// state, guarding against cyclic structures.
func safeArity(b *qtree.Block, seen map[*qtree.Block]bool) int {
	if b == nil || seen[b] {
		return 0
	}
	seen[b] = true
	if b.Set != nil {
		if len(b.Set.Children) == 0 {
			return 0
		}
		return safeArity(b.Set.Children[0], seen)
	}
	return len(b.Select)
}

// colName renders a column for diagnostics.
func colName(c *qtree.Col) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("q%d.#%d", c.From, c.Ord)
}
