package check

import (
	"testing"

	"repro/internal/qtree"
	"repro/internal/testkit"
	"repro/internal/transform"
	"repro/internal/workload"
)

// TestBoundWorkloadClean asserts the checker accepts every freshly bound
// workload query: the binder and the checker must agree on what a
// well-formed tree is, or every downstream state check would be noise.
func TestBoundWorkloadClean(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(11, 160, s.Employees, s.Departments, s.Jobs)
	cfg.RelevantFraction = 0.8
	for _, wq := range workload.Generate(cfg) {
		q, err := qtree.BindSQL(wq.SQL, db.Catalog)
		if err != nil {
			t.Fatalf("query %d: bind: %v\nsql: %s", wq.ID, err, wq.SQL)
		}
		if vs := Query(q); len(vs) != 0 {
			t.Errorf("query %d: %d violation(s) on the bound tree\nsql: %s\nfirst: %v",
				wq.ID, len(vs), wq.SQL, vs[0])
		}
	}
}

// TestHeuristicWorkloadClean runs the imperative transformation phase to a
// fixpoint on every workload query and checks the result: the heuristic
// rules must leave well-formed trees behind.
func TestHeuristicWorkloadClean(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(13, 160, s.Employees, s.Departments, s.Jobs)
	cfg.RelevantFraction = 0.8
	for _, wq := range workload.Generate(cfg) {
		q, err := qtree.BindSQL(wq.SQL, db.Catalog)
		if err != nil {
			t.Fatalf("query %d: bind: %v\nsql: %s", wq.ID, err, wq.SQL)
		}
		if err := transform.ApplyHeuristics(q); err != nil {
			t.Fatalf("query %d: heuristics: %v\nsql: %s", wq.ID, err, wq.SQL)
		}
		if vs := Query(q); len(vs) != 0 {
			t.Errorf("query %d: %d violation(s) after heuristics\nsql: %s\nfirst: %v",
				wq.ID, len(vs), wq.SQL, vs[0])
		}
	}
}

// TestTransformedStatesClean applies every variant of every cost-based
// transformation object (one at a time, on a fresh clone) to every
// workload query and checks each mutated tree plus its contract against
// the pre-state — the static analogue of the differential execution
// oracle, covering states the oracle never wins and thus never executes.
func TestTransformedStatesClean(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	cfg := workload.DefaultConfig(17, 120, s.Employees, s.Departments, s.Jobs)
	cfg.RelevantFraction = 0.8
	applied := 0
	for _, wq := range workload.Generate(cfg) {
		q, err := qtree.BindSQL(wq.SQL, db.Catalog)
		if err != nil {
			t.Fatalf("query %d: bind: %v\nsql: %s", wq.ID, err, wq.SQL)
		}
		if err := transform.ApplyHeuristics(q); err != nil {
			t.Fatalf("query %d: heuristics: %v", wq.ID, err)
		}
		pre := Summarize(q)
		for _, r := range transform.CostBasedRules() {
			n := r.Find(q)
			for obj := 0; obj < n; obj++ {
				for v := 1; v <= r.Variants(q, obj); v++ {
					clone, _ := q.Clone()
					if err := r.Apply(clone, obj, v); err != nil {
						continue // inapplicable variant
					}
					applied++
					if vs := Query(clone); len(vs) != 0 {
						t.Errorf("query %d, %s obj %d variant %d: %d violation(s)\nsql: %s\nfirst: %v",
							wq.ID, r.Name(), obj, v, len(vs), wq.SQL, vs[0])
					}
					if vs := CheckContract(r.Name(), pre, clone); len(vs) != 0 {
						t.Errorf("query %d, %s obj %d variant %d: contract: %v\nsql: %s",
							wq.ID, r.Name(), obj, v, vs[0], wq.SQL)
					}
				}
			}
		}
	}
	if applied < 60 {
		t.Fatalf("only %d transformation variants applied; the state sweep is not exercising the rules", applied)
	}
}
