package check

import (
	"testing"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
	"repro/internal/transform"
	"repro/internal/workload"
)

// FuzzCheckerNeverPanics drives the full checker surface — Query,
// Summarize, CheckContract and Plan — over generator output: every
// workload query for the fuzzed seed, in bound, heuristically transformed
// and per-rule-mutated forms. The checker's contract is that it reports
// malformed trees instead of panicking on them, so any panic here is a
// checker bug regardless of what the generator produced.
func FuzzCheckerNeverPanics(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1 << 40, -3} {
		f.Add(seed, uint8(12))
	}
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	s := testkit.SmallSizes()
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		cfg := workload.DefaultConfig(seed, int(n%32)+1, s.Employees, s.Departments, s.Jobs)
		cfg.RelevantFraction = 0.6
		for _, wq := range workload.Generate(cfg) {
			q, err := qtree.BindSQL(wq.SQL, db.Catalog)
			if err != nil {
				continue // generator emitted something the binder rejects
			}
			Query(q)
			pre := Summarize(q)
			if err := transform.ApplyHeuristics(q); err != nil {
				continue
			}
			Query(q)
			for _, r := range transform.CostBasedRules() {
				nObj := r.Find(q)
				for obj := 0; obj < nObj; obj++ {
					for v := 1; v <= r.Variants(q, obj); v++ {
						clone, _ := q.Clone()
						if err := r.Apply(clone, obj, v); err != nil {
							continue
						}
						Query(clone)
						CheckContract(r.Name(), pre, clone)
					}
				}
			}
			if plan, err := optimizer.New(db.Catalog).Optimize(q); err == nil {
				Plan(plan)
			}
		}
	})
}
