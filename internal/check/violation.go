// Package check is the static plan-integrity layer of the optimizer stack:
// a semantic analyzer that verifies — without executing anything — that a
// query tree (and the physical plan compiled from it) is well-formed. The
// CBQT driver deep-copies a query per transformation state, mutates the
// copy, and trusts the result enough to cost and possibly execute it
// (paper §3.1); a transformation that drops a compensation predicate,
// mis-binds a column, or breaks set-operation arity is otherwise caught
// only if the differential suite happens to execute that exact state. The
// checker machine-checks four invariant families on every state:
//
//   - column resolution: every column reference binds to exactly one
//     visible source at its depth, and bind parameters have stable,
//     in-range ordinals;
//   - expression typing: operators, predicates, aggregates and window
//     functions type-check bottom-up against catalog column types, with
//     the exact coercion lattice the executor implements;
//   - structural invariants: unique from-item identities, no dangling
//     subquery or view links, block ownership, grouped-block select-list
//     coverage, set-operation branch agreement, and the partial-order
//     constraint on non-inner joins and lateral views;
//   - per-rule contracts: each transformation registers the invariants it
//     must preserve (output arity and types, parameter list, preserved
//     table multiset, outer-join null-sidedness), checked on the
//     post-state against a summary of the pre-state.
//
// Violations are typed errors (Violation / Violations) so the driver can
// quarantine the offending rule through the existing fault-isolation
// machinery instead of failing the query.
package check

import (
	"fmt"
	"strings"
)

// Class partitions violations for counting, testing and quarantine
// decisions. Every violation the checker can emit carries exactly one of
// these classes.
type Class string

// Violation classes.
const (
	// ClassUnresolvedColumn: a column reference does not bind to any
	// visible from item, binds out of its source's ordinal range, or uses
	// the set-operation output sentinel outside a set-op ORDER BY.
	ClassUnresolvedColumn Class = "unresolved-column"
	// ClassParamOrdinal: a bind parameter's ordinal is outside the query's
	// parameter list or disagrees with the name registered at that slot.
	ClassParamOrdinal Class = "param-ordinal"
	// ClassTypeMismatch: an operator, predicate, aggregate or window
	// function does not type-check against catalog types.
	ClassTypeMismatch Class = "type-mismatch"
	// ClassArityMismatch: set-operation branches, subquery comparison
	// lists, or function calls disagree on arity.
	ClassArityMismatch Class = "arity-mismatch"
	// ClassDanglingLink: a structural link is broken — nil blocks or
	// expressions, duplicate from-item identities, a block owned by a
	// different query, a from item that is neither table nor view, or a
	// view shared between two from items.
	ClassDanglingLink Class = "dangling-link"
	// ClassGrouping: a grouped or DISTINCT block's outputs are not covered
	// by its grouping columns, or grouping-set indexes are out of range.
	ClassGrouping Class = "grouping"
	// ClassJoinOrder: a non-inner join or lateral view violates the
	// partial-order constraint (its condition or body references a from
	// item that does not precede it), or an inner join item carries a
	// dangling join condition.
	ClassJoinOrder Class = "join-order"
	// ClassContract: a transformation broke one of its registered
	// pre/post-state contracts (arity, types, parameters, table multiset,
	// outer-join null-sidedness).
	ClassContract Class = "contract"
	// ClassPlan: a physical plan is structurally broken — nil children,
	// hash/merge key arity disagreement, a subquery expression with no
	// compiled subplan, unresolvable plan columns, or negative estimates.
	ClassPlan Class = "plan"
	// ClassAliasing: illegal structure sharing between copy-on-write states
	// — a block reachable from a clone that belongs to neither the clone nor
	// its base, a shared block with privately-owned descendants (the owned
	// region must be upward-closed), or a mutation observed on the shared
	// base tree after a state was evaluated against it.
	ClassAliasing Class = "aliasing"
	// ClassDML: a mutation statement's shape is broken — duplicate or
	// missing target columns, a statement form carrying the wrong sources
	// (VALUES and a read query at once, an UPDATE without a locating
	// query), or a locating query whose first output is not the target
	// table's ROWID.
	ClassDML Class = "dml"
)

// Classes lists every violation class, for metrics pre-registration and
// exhaustive tests.
func Classes() []Class {
	return []Class{
		ClassUnresolvedColumn, ClassParamOrdinal, ClassTypeMismatch,
		ClassArityMismatch, ClassDanglingLink, ClassGrouping,
		ClassJoinOrder, ClassContract, ClassPlan, ClassAliasing,
		ClassDML,
	}
}

// Violation is one semantic defect found by the checker. It is an error so
// single violations can flow through error-typed plumbing unchanged.
type Violation struct {
	// Class is the violation family.
	Class Class
	// Block is the ID of the query block the defect was found in (0 when
	// the defect is not attributable to one block, e.g. plan defects).
	Block int
	// Rule names the transformation whose contract failed (contract
	// violations only).
	Rule string
	// Detail is the human-readable description of the defect.
	Detail string
}

func (v *Violation) Error() string {
	var b strings.Builder
	b.WriteString("check: ")
	b.WriteString(string(v.Class))
	if v.Rule != "" {
		fmt.Fprintf(&b, " [%s]", v.Rule)
	}
	if v.Block != 0 {
		fmt.Fprintf(&b, " (block %d)", v.Block)
	}
	b.WriteString(": ")
	b.WriteString(v.Detail)
	return b.String()
}

// Violations is the full defect list of one checked state. It is an error;
// its message is the first violation's, suffixed with the remaining count,
// so logs stay readable while tests can inspect every entry.
type Violations []*Violation

func (vs Violations) Error() string {
	switch len(vs) {
	case 0:
		return "check: no violations"
	case 1:
		return vs[0].Error()
	}
	return fmt.Sprintf("%s (and %d more)", vs[0].Error(), len(vs)-1)
}

// Err returns the list as an error, or nil when it is empty — so callers
// can write `return c.violations.Err()` without a typed-nil trap.
func (vs Violations) Err() error {
	if len(vs) == 0 {
		return nil
	}
	return vs
}

// HasClass reports whether any violation belongs to the class.
func (vs Violations) HasClass(c Class) bool {
	for _, v := range vs {
		if v.Class == c {
			return true
		}
	}
	return false
}
