package check

import (
	"fmt"

	"repro/internal/qtree"
)

// DML statically verifies a bound mutation statement the same way Query
// verifies a query: target-column arity and type agreement against the
// catalog, statement-form shape (VALUES vs read query), locating-query
// well-formedness for UPDATE/DELETE (the first output must be the target
// table's ROWID — the executor trusts it as a row address), and bind
// parameter slot coverage. When the statement carries a read query, the
// full query checker runs over it, so every violation Query can report
// surfaces here too. Like Query it never executes, never mutates, and
// never panics on malformed input.
func DML(stmt *qtree.DMLStmt) Violations {
	if stmt == nil {
		return Violations{&Violation{Class: ClassDanglingLink, Detail: "nil DML statement"}}
	}
	c := &dmlChecker{stmt: stmt}
	c.check()
	return c.vs
}

type dmlChecker struct {
	stmt *qtree.DMLStmt
	vs   Violations
}

func (c *dmlChecker) add(v *Violation) { c.vs = append(c.vs, v) }

func (c *dmlChecker) addf(class Class, format string, args ...any) {
	c.add(&Violation{Class: class, Detail: fmt.Sprintf(format, args...)})
}

func (c *dmlChecker) check() {
	stmt := c.stmt
	if stmt.Kind != qtree.DMLInsert && stmt.Kind != qtree.DMLUpdate && stmt.Kind != qtree.DMLDelete {
		c.addf(ClassDML, "unknown DML kind %d", int(stmt.Kind))
		return
	}
	meta := stmt.Table
	if meta == nil {
		c.addf(ClassDanglingLink, "%s statement has no target table", stmt.Kind)
		return
	}

	c.checkTargets()
	c.checkShape()

	// The read query (when present) is verified with the full query
	// checker; its root output types then feed the arity/type agreement
	// checks below.
	var readTypes []Type
	if stmt.Read != nil {
		qc := newChecker(stmt.Read)
		if stmt.Read.Root == nil {
			qc.add(&Violation{Class: ClassDanglingLink, Detail: "query has no root block"})
		} else {
			readTypes = qc.checkBlock(stmt.Read.Root, nil)
		}
		c.vs = append(c.vs, qc.vs...)
	}

	switch stmt.Kind {
	case qtree.DMLInsert:
		if stmt.Values != nil {
			c.checkValues()
		} else if stmt.Read != nil {
			if len(readTypes) != len(stmt.TargetCols) {
				c.addf(ClassArityMismatch, "INSERT into %d column(s) from a %d-column query",
					len(stmt.TargetCols), len(readTypes))
			}
			c.checkWrittenTypes(readTypes, 0)
		}
	case qtree.DMLUpdate:
		if stmt.Read != nil {
			if len(readTypes) != 1+len(stmt.TargetCols) {
				c.addf(ClassArityMismatch, "UPDATE of %d column(s) with a %d-column locating query (ROWID plus one value per SET column required)",
					len(stmt.TargetCols), len(readTypes))
			}
			c.checkRowid()
			c.checkWrittenTypes(readTypes, 1)
		}
	case qtree.DMLDelete:
		if stmt.Read != nil {
			if len(readTypes) != 1 {
				c.addf(ClassArityMismatch, "DELETE locating query returns %d columns; exactly 1 (ROWID) is required", len(readTypes))
			}
			c.checkRowid()
		}
	}

	c.checkParamCoverage()
}

// checkTargets verifies the target-column ordinals: in catalog range, no
// duplicates, and an arity that fits the statement kind.
func (c *dmlChecker) checkTargets() {
	stmt := c.stmt
	meta := stmt.Table
	seen := map[int]bool{}
	for _, ord := range stmt.TargetCols {
		if ord < 0 || ord >= len(meta.Cols) {
			c.addf(ClassUnresolvedColumn, "%s target ordinal %d is out of range for table %s (%d columns)",
				stmt.Kind, ord, meta.Name, len(meta.Cols))
			continue
		}
		if seen[ord] {
			c.addf(ClassDML, "%s assigns column %s.%s twice", stmt.Kind, meta.Name, meta.Cols[ord].Name)
		}
		seen[ord] = true
	}
	switch stmt.Kind {
	case qtree.DMLInsert, qtree.DMLUpdate:
		if len(stmt.TargetCols) == 0 {
			c.addf(ClassArityMismatch, "%s of table %s writes no columns", stmt.Kind, meta.Name)
		}
	case qtree.DMLDelete:
		if len(stmt.TargetCols) != 0 {
			c.addf(ClassDML, "DELETE carries %d target columns; it must carry none", len(stmt.TargetCols))
		}
	}
}

// checkShape verifies each statement form carries exactly the sources it
// needs: INSERT has VALUES or a read query (not both, not neither);
// UPDATE/DELETE have a locating query and no VALUES.
func (c *dmlChecker) checkShape() {
	stmt := c.stmt
	switch stmt.Kind {
	case qtree.DMLInsert:
		if stmt.Values != nil && stmt.Read != nil {
			c.addf(ClassDML, "INSERT carries both VALUES rows and a read query")
		}
		if stmt.Values == nil && stmt.Read == nil {
			c.addf(ClassDML, "INSERT carries neither VALUES rows nor a read query")
		}
	case qtree.DMLUpdate, qtree.DMLDelete:
		if stmt.Read == nil {
			c.addf(ClassDML, "%s has no locating query", stmt.Kind)
		}
		if stmt.Values != nil {
			c.addf(ClassDML, "%s carries VALUES rows", stmt.Kind)
		}
	}
}

// checkValues verifies the INSERT ... VALUES rows: per-row arity, scalar
// expressions only (no column references can resolve — there is no FROM
// scope), parameter slot coverage via the expression typer, and type
// agreement with the target columns.
func (c *dmlChecker) checkValues() {
	stmt := c.stmt
	meta := stmt.Table
	// The expression typer needs a query for parameter-slot validation;
	// VALUES rows share the statement's parameter list and no blocks, so a
	// shell query carrying just the params is the right environment.
	qc := newChecker(&qtree.Query{Params: stmt.Params})
	noScope := func(col *qtree.Col) Type {
		c.addf(ClassUnresolvedColumn, "column %s in an INSERT VALUES row (no FROM scope exists)", colName(col))
		return TAny
	}
	for ri, row := range stmt.Values {
		if len(row) != len(stmt.TargetCols) {
			c.addf(ClassArityMismatch, "INSERT into %d column(s) with a %d-value row (row %d)",
				len(stmt.TargetCols), len(row), ri)
		}
		for i, e := range row {
			if e == nil {
				c.addf(ClassDanglingLink, "INSERT VALUES row %d value %d is nil", ri, i)
				continue
			}
			t := qc.typeExpr(e, 0, noScope)
			if i >= len(stmt.TargetCols) {
				continue
			}
			ord := stmt.TargetCols[i]
			if ord < 0 || ord >= len(meta.Cols) {
				continue // reported by checkTargets
			}
			want := TypeOfKind(meta.Cols[ord].Type)
			if !comparable(want, t) {
				c.addf(ClassTypeMismatch, "INSERT value %d of row %d has type %s; column %s.%s holds %s",
					i, ri, t, meta.Name, meta.Cols[ord].Name, want)
			}
		}
	}
	c.vs = append(c.vs, qc.vs...)
}

// checkRowid verifies the UPDATE/DELETE locating-query contract the
// executor trusts blindly: the read's first output is a bare column
// reference resolving, in the root block, to the target table's ROWID
// pseudo-column. Anything else makes the executor treat an arbitrary
// integer as a row address.
func (c *dmlChecker) checkRowid() {
	stmt := c.stmt
	root := stmt.Read.Root
	if root == nil {
		return // reported as dangling by the query checker
	}
	if root.Set != nil {
		c.addf(ClassDML, "%s locating query's root is a set operation; a root SELECT over %s is required",
			stmt.Kind, stmt.Table.Name)
		return
	}
	if len(root.Select) == 0 {
		c.addf(ClassDML, "%s locating query selects nothing; its first output must be %s's ROWID",
			stmt.Kind, stmt.Table.Name)
		return
	}
	col, ok := root.Select[0].Expr.(*qtree.Col)
	if !ok {
		c.addf(ClassDML, "%s locating query's first output is %T, not a ROWID column reference",
			stmt.Kind, root.Select[0].Expr)
		return
	}
	var from *qtree.FromItem
	for _, f := range root.From {
		if f != nil && f.ID == col.From {
			from = f
			break
		}
	}
	if from == nil {
		c.addf(ClassDML, "%s locating query's ROWID column references q%d, which is not a root from item",
			stmt.Kind, col.From)
		return
	}
	if from.Table == nil || from.Table.Name != stmt.Table.Name {
		c.addf(ClassDML, "%s locating query's first output comes from %q, not the target table %s",
			stmt.Kind, from.Alias, stmt.Table.Name)
		return
	}
	if col.Ord != stmt.Table.RowidOrdinal() {
		c.addf(ClassDML, "%s locating query's first output is %s ordinal %d, not the ROWID pseudo-column (ordinal %d)",
			stmt.Kind, stmt.Table.Name, col.Ord, stmt.Table.RowidOrdinal())
	}
}

// checkWrittenTypes verifies the read query's outputs (from the given
// offset) against the target columns' catalog types.
func (c *dmlChecker) checkWrittenTypes(readTypes []Type, offset int) {
	stmt := c.stmt
	meta := stmt.Table
	for i, ord := range stmt.TargetCols {
		ri := offset + i
		if ri >= len(readTypes) || ord < 0 || ord >= len(meta.Cols) {
			continue // arity / ordinal defects already reported
		}
		want := TypeOfKind(meta.Cols[ord].Type)
		if !comparable(want, readTypes[ri]) {
			c.addf(ClassTypeMismatch, "%s writes a %s value into column %s.%s, which holds %s",
				stmt.Kind, readTypes[ri], meta.Name, meta.Cols[ord].Name, want)
		}
	}
}

// checkParamCoverage verifies the statement's parameter list agrees with
// its read query's slot for slot: the server binds one parameter set
// against the statement, and the optimized read plan binds the same set by
// ordinal.
func (c *dmlChecker) checkParamCoverage() {
	stmt := c.stmt
	if stmt.Read == nil {
		return
	}
	if len(stmt.Params) != len(stmt.Read.Params) {
		c.addf(ClassParamOrdinal, "%s declares %d parameter slot(s) but its read query declares %d",
			stmt.Kind, len(stmt.Params), len(stmt.Read.Params))
		return
	}
	for i, name := range stmt.Params {
		if stmt.Read.Params[i] != name {
			c.addf(ClassParamOrdinal, "%s parameter slot %d is %s but the read query registers %s",
				stmt.Kind, i, name, stmt.Read.Params[i])
		}
	}
}
