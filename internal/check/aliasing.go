package check

import (
	"fmt"
	"hash/fnv"

	"repro/internal/qtree"
)

// Aliasing verifies the copy-on-write sharing discipline of a query tree
// (qtree.CloneCOW): every reachable block must be owned by the query or
// shared from its COW base (qtree.Query.CanHold), no block may occupy two
// tree positions, and the owned region must be upward-closed — a privately
// owned block reachable only through a shared block means a transformation
// mutated a subtree without materializing the path to it, so the same
// mutation is visible from the base and every sibling state. On a non-COW
// query it degenerates to the strict ownership check.
func Aliasing(q *qtree.Query) Violations {
	var vs Violations
	if q == nil || q.Root == nil {
		return vs
	}
	owned := func(b *qtree.Block) bool { return b.Query() == q }
	seen := map[*qtree.Block]bool{}
	var walk func(b *qtree.Block, underShared bool)
	walk = func(b *qtree.Block, underShared bool) {
		if b == nil {
			return
		}
		if seen[b] {
			vs = append(vs, &Violation{Class: ClassAliasing, Block: b.ID,
				Detail: "block appears in more than one tree position"})
			return
		}
		seen[b] = true
		if !q.CanHold(b) {
			vs = append(vs, &Violation{Class: ClassAliasing, Block: b.ID,
				Detail: "block is owned by neither this query nor its copy-on-write base"})
		}
		if underShared && owned(b) {
			vs = append(vs, &Violation{Class: ClassAliasing, Block: b.ID,
				Detail: "privately-owned block reachable through a shared block (the owned region must be upward-closed)"})
		}
		shared := q.IsCOW() && !owned(b)
		forEachChild(b, func(c *qtree.Block) { walk(c, shared || underShared) })
	}
	walk(q.Root, false)
	return vs
}

// TreeSnapshot captures a content fingerprint of a query tree so that later
// Verify calls can detect any mutation — the cross-state corruption a buggy
// copy-on-write transformation would inflict on the shared base while a
// sibling state still reads it.
type TreeSnapshot struct {
	q        *qtree.Query
	root     *qtree.Block
	order    []*qtree.Block
	sums     []uint64
	nextFrom qtree.FromID
	nextBlk  int
}

// Snapshot fingerprints q's tree: the pre-order block list (pointer
// identities), a structural hash per block, and the ID allocation counters.
func Snapshot(q *qtree.Query) *TreeSnapshot {
	s := &TreeSnapshot{q: q, root: q.Root}
	s.nextFrom, s.nextBlk = q.IDCounters()
	s.order = preorder(q.Root)
	idx := map[*qtree.Block]int{}
	for i, b := range s.order {
		idx[b] = i
	}
	for _, b := range s.order {
		s.sums = append(s.sums, fingerprintBlock(b, idx))
	}
	return s
}

// Verify re-fingerprints the snapshotted query and reports every deviation
// as an aliasing violation. A clean run returns nil.
func (s *TreeSnapshot) Verify() Violations {
	var vs Violations
	add := func(block int, format string, args ...any) {
		vs = append(vs, &Violation{Class: ClassAliasing, Block: block,
			Detail: fmt.Sprintf(format, args...)})
	}
	if s.q.Root != s.root {
		add(0, "query root block was replaced after the snapshot")
		return vs
	}
	if nf, nb := s.q.IDCounters(); nf != s.nextFrom || nb != s.nextBlk {
		add(0, "ID counters advanced on the snapshotted query (from %d/%d to %d/%d): a state allocated identities from the shared base",
			s.nextFrom, s.nextBlk, nf, nb)
	}
	order := preorder(s.q.Root)
	if len(order) != len(s.order) {
		add(0, "tree shape changed after the snapshot: %d blocks, was %d", len(order), len(s.order))
		return vs
	}
	idx := map[*qtree.Block]int{}
	for i, b := range order {
		idx[b] = i
	}
	for i, b := range order {
		if b != s.order[i] {
			add(b.ID, "block at pre-order position %d was replaced after the snapshot", i)
			continue
		}
		if fingerprintBlock(b, idx) != s.sums[i] {
			add(b.ID, "block content changed after the snapshot (mutation of a shared tree)")
		}
	}
	return vs
}

// forEachChild visits b's child blocks in deterministic order: set-operation
// branches, view bodies, then subquery blocks in expression order.
func forEachChild(b *qtree.Block, f func(*qtree.Block)) {
	if b.Set != nil {
		for _, c := range b.Set.Children {
			f(c)
		}
	}
	for _, fi := range b.From {
		if fi != nil && fi.View != nil {
			f(fi.View)
		}
	}
	b.VisitExprs(func(e qtree.Expr) {
		if sq, ok := e.(*qtree.Subq); ok && sq.Block != nil {
			f(sq.Block)
		}
	})
}

// preorder lists the blocks reachable from root in deterministic pre-order,
// guarding against aliased (cyclic) structures.
func preorder(root *qtree.Block) []*qtree.Block {
	var out []*qtree.Block
	seen := map[*qtree.Block]bool{}
	var walk func(b *qtree.Block)
	walk = func(b *qtree.Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		out = append(out, b)
		forEachChild(b, walk)
	}
	walk(root)
	return out
}

// fingerprintBlock hashes one block's content: scalar fields, rendered
// expressions, from-item metadata, and child-block identities by pre-order
// index (so re-pointing a link changes the hash even when the new target
// renders identically).
func fingerprintBlock(b *qtree.Block, idx map[*qtree.Block]int) uint64 {
	h := fnv.New64a()
	render := func(e qtree.Expr) string {
		if e == nil {
			return "<nil>"
		}
		return e.String()
	}
	fmt.Fprintf(h, "B%d d%v l%d", b.ID, b.Distinct, b.Limit)
	for _, it := range b.Select {
		fmt.Fprintf(h, "|s:%s:%s", it.Alias, render(it.Expr))
	}
	for _, e := range b.Where {
		fmt.Fprintf(h, "|w:%s", render(e))
	}
	for _, e := range b.GroupBy {
		fmt.Fprintf(h, "|g:%s", render(e))
	}
	for _, set := range b.GroupingSets {
		fmt.Fprintf(h, "|gs:%v", set)
	}
	for _, e := range b.Having {
		fmt.Fprintf(h, "|h:%s", render(e))
	}
	for _, o := range b.OrderBy {
		fmt.Fprintf(h, "|o:%s:%v", render(o.Expr), o.Desc)
	}
	for _, fi := range b.From {
		if fi == nil {
			fmt.Fprintf(h, "|f:<nil>")
			continue
		}
		fmt.Fprintf(h, "|f:%d:%s:k%d:lat%v", fi.ID, fi.Alias, int(fi.Kind), fi.Lateral)
		if fi.Table != nil {
			fmt.Fprintf(h, ":t%s", fi.Table.Name)
		}
		if fi.View != nil {
			fmt.Fprintf(h, ":v%d", idx[fi.View])
		}
		for _, c := range fi.Cond {
			fmt.Fprintf(h, ":c%s", render(c))
		}
	}
	if b.Set != nil {
		fmt.Fprintf(h, "|set:%d", int(b.Set.Kind))
		for _, c := range b.Set.Children {
			fmt.Fprintf(h, ":%d", idx[c])
		}
	}
	b.VisitExprs(func(e qtree.Expr) {
		if sq, ok := e.(*qtree.Subq); ok && sq.Block != nil {
			fmt.Fprintf(h, "|sq:%d", idx[sq.Block])
		}
	})
	return h.Sum64()
}
