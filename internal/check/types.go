package check

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/qtree"
)

// Type is the checker's static type lattice. It deliberately mirrors the
// executor's coercion rules (exec/expr.go, datum/arith.go) rather than
// strict SQL typing: Int and Float are inter-comparable and both widen to
// Num, NULL literals and bind parameters type as Any (compatible with
// everything), and predicates accept booleans and numerics (the executor's
// TriFromDatum treats non-zero numbers as TRUE).
type Type uint8

// The lattice, ordered so that more specific types are larger.
const (
	TAny   Type = iota // statically unknown: NULL, params, opaque sources
	TNum               // numeric, int-vs-float unknown (e.g. SUM over Any)
	TInt               // 64-bit integer
	TFloat             // float
	TStr               // string
	TBool              // boolean
)

var typeNames = [...]string{
	TAny: "ANY", TNum: "NUM", TInt: "INT", TFloat: "FLOAT",
	TStr: "STRING", TBool: "BOOL",
}

func (t Type) String() string { return typeNames[t] }

// numeric reports whether the type can hold a number (Any included).
func (t Type) numeric() bool { return t == TAny || t == TNum || t == TInt || t == TFloat }

// TypeOfKind maps a catalog/datum kind to a checker type.
func TypeOfKind(k datum.Kind) Type {
	switch k {
	case datum.KInt:
		return TInt
	case datum.KFloat:
		return TFloat
	case datum.KString:
		return TStr
	case datum.KBool:
		return TBool
	}
	return TAny // NULL literal
}

// comparable reports whether the executor can order values of the two
// types: numerics compare with each other, otherwise kinds must match
// (datum.Compare), and Any is compatible with everything.
func comparable(a, b Type) bool {
	if a == TAny || b == TAny {
		return true
	}
	if a.numeric() && b.numeric() {
		return true
	}
	return a == b
}

// merge joins the types of two expression branches (CASE arms, set-op
// columns): equal types keep themselves, distinct numerics widen to Num,
// anything else collapses to Any. merge never fails — branch compatibility
// is enforced by the caller with comparable.
func merge(a, b Type) Type {
	if a == b {
		return a
	}
	if a == TAny || b == TAny {
		return TAny
	}
	if a.numeric() && b.numeric() {
		return TNum
	}
	return TAny
}

// colTyper resolves the static type of a resolved column reference. The
// checker supplies it: resolution (which from item, which ordinal) has
// already been verified by the time typing runs.
type colTyper func(c *qtree.Col) Type

// typeExpr computes the type of e bottom-up, appending a type-mismatch
// violation for every ill-typed node it encounters. It keeps descending
// after a mismatch (reporting the most violations per pass) and types the
// broken node as Any so one defect does not cascade. blockID attributes
// the violations.
func (c *checker) typeExpr(e qtree.Expr, blockID int, colT colTyper) Type {
	if e == nil {
		c.add(&Violation{Class: ClassDanglingLink, Block: blockID, Detail: "nil expression"})
		return TAny
	}
	mismatch := func(format string, args ...any) Type {
		c.add(&Violation{Class: ClassTypeMismatch, Block: blockID, Detail: fmt.Sprintf(format, args...)})
		return TAny
	}
	switch v := e.(type) {
	case *qtree.Const:
		return TypeOfKind(v.Val.Kind())

	case *qtree.Param:
		c.checkParam(v, blockID)
		return TAny

	case *qtree.Col:
		return colT(v)

	case *qtree.Bin:
		lt := c.typeExpr(v.L, blockID, colT)
		rt := c.typeExpr(v.R, blockID, colT)
		switch v.Op {
		case qtree.OpAdd:
			// The executor's '+' concatenates two strings (datum.arith).
			if lt == TStr && rt == TStr {
				return TStr
			}
			fallthrough
		case qtree.OpSub, qtree.OpMul:
			if !lt.numeric() || !rt.numeric() {
				return mismatch("%s requires numeric operands, have %s and %s", v.Op, lt, rt)
			}
			if lt == TInt && rt == TInt {
				return TInt
			}
			if lt == TFloat || rt == TFloat {
				return TFloat
			}
			return TNum
		case qtree.OpDiv:
			if !lt.numeric() || !rt.numeric() {
				return mismatch("/ requires numeric operands, have %s and %s", lt, rt)
			}
			return TFloat
		case qtree.OpConcat:
			// The executor's || is strict (Datum.AsStr); the binder already
			// rejects statically non-string operands.
			if lt != TStr && lt != TAny {
				return mismatch("|| requires string operands, left is %s", lt)
			}
			if rt != TStr && rt != TAny {
				return mismatch("|| requires string operands, right is %s", rt)
			}
			return TStr
		case qtree.OpAnd, qtree.OpOr:
			c.requirePred(v.L, lt, blockID, string(binOpName(v.Op)))
			c.requirePred(v.R, rt, blockID, string(binOpName(v.Op)))
			return TBool
		case qtree.OpNullSafeEq:
			if !comparable(lt, rt) {
				return mismatch("<=> operands are incomparable: %s vs %s", lt, rt)
			}
			return TBool
		default: // comparisons
			if !v.Op.IsComparison() {
				return mismatch("unknown binary operator %d", int(v.Op))
			}
			if !comparable(lt, rt) {
				return mismatch("%s operands are incomparable: %s vs %s", v.Op, lt, rt)
			}
			return TBool
		}

	case *qtree.Not:
		t := c.typeExpr(v.E, blockID, colT)
		c.requirePred(v.E, t, blockID, "NOT")
		return TBool

	case *qtree.IsNull:
		c.typeExpr(v.E, blockID, colT)
		return TBool

	case *qtree.Like:
		et := c.typeExpr(v.E, blockID, colT)
		pt := c.typeExpr(v.Pattern, blockID, colT)
		if et != TStr && et != TAny {
			return mismatch("LIKE operand must be a string, have %s", et)
		}
		if pt != TStr && pt != TAny {
			return mismatch("LIKE pattern must be a string, have %s", pt)
		}
		return TBool

	case *qtree.InList:
		et := c.typeExpr(v.E, blockID, colT)
		for _, x := range v.Vals {
			xt := c.typeExpr(x, blockID, colT)
			if !comparable(et, xt) {
				mismatch("IN list value is incomparable with its subject: %s vs %s", et, xt)
			}
		}
		return TBool

	case *qtree.Func:
		if v.Def == nil {
			c.add(&Violation{Class: ClassDanglingLink, Block: blockID, Detail: "function call with nil definition"})
			return TAny
		}
		if len(v.Args) < v.Def.MinArgs || len(v.Args) > v.Def.MaxArgs {
			c.add(&Violation{Class: ClassArityMismatch, Block: blockID,
				Detail: fmt.Sprintf("%s takes %d..%d arguments, got %d", v.Def.Name, v.Def.MinArgs, v.Def.MaxArgs, len(v.Args))})
		}
		for _, a := range v.Args {
			c.typeExpr(a, blockID, colT)
		}
		return TAny // the function registry carries no result kinds

	case *qtree.LNNVL:
		t := c.typeExpr(v.E, blockID, colT)
		c.requirePred(v.E, t, blockID, "LNNVL")
		return TBool

	case *qtree.IsTrue:
		t := c.typeExpr(v.E, blockID, colT)
		c.requirePred(v.E, t, blockID, "IS TRUE")
		return TBool

	case *qtree.Agg:
		return c.typeAgg(v, blockID, colT)

	case *qtree.WinFunc:
		return c.typeWindow(v, blockID, colT)

	case *qtree.Subq:
		return c.typeSubq(v, blockID, colT)

	case *qtree.Case:
		out := TAny
		first := true
		for _, w := range v.Whens {
			ct := c.typeExpr(w.Cond, blockID, colT)
			c.requirePred(w.Cond, ct, blockID, "CASE WHEN")
			rt := c.typeExpr(w.Result, blockID, colT)
			if first {
				out, first = rt, false
			} else {
				if !comparable(out, rt) {
					mismatch("CASE branches have incompatible types: %s vs %s", out, rt)
				}
				out = merge(out, rt)
			}
		}
		if v.Else != nil {
			et := c.typeExpr(v.Else, blockID, colT)
			if !first && !comparable(out, et) {
				mismatch("CASE ELSE type %s is incompatible with branches (%s)", et, out)
			}
			out = merge(out, et)
		}
		return out
	}
	c.add(&Violation{Class: ClassDanglingLink, Block: blockID,
		Detail: fmt.Sprintf("unknown expression node %T", e)})
	return TAny
}

// requirePred flags expressions used in truth-value position whose type
// can never yield a truth value. The executor's TriFromDatum maps bools
// and numerics to truth values and everything else to UNKNOWN; a
// statically-known string predicate is therefore a constant-UNKNOWN filter
// and always a transformation bug.
func (c *checker) requirePred(e qtree.Expr, t Type, blockID int, where string) {
	if t == TStr {
		c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
			Detail: fmt.Sprintf("%s operand %s is a string; it can never be a truth value", where, e)})
	}
}

// typeAgg types an aggregate reference.
func (c *checker) typeAgg(v *qtree.Agg, blockID int, colT colTyper) Type {
	if v.Star {
		if v.Op != qtree.AggCount {
			c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
				Detail: fmt.Sprintf("%s(*) is not valid", v.Op)})
		}
		return TInt
	}
	if v.Arg == nil {
		if v.Op == qtree.AggCount {
			return TInt // COUNT(*) encoded with Star=false is still a count
		}
		c.add(&Violation{Class: ClassDanglingLink, Block: blockID,
			Detail: fmt.Sprintf("aggregate %s has a nil argument", v.Op)})
		return TAny
	}
	at := c.typeExpr(v.Arg, blockID, colT)
	switch v.Op {
	case qtree.AggCount:
		return TInt
	case qtree.AggSum:
		if !at.numeric() {
			c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
				Detail: fmt.Sprintf("SUM requires a numeric argument, have %s", at)})
			return TAny
		}
		return widenNum(at)
	case qtree.AggAvg:
		if !at.numeric() {
			c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
				Detail: fmt.Sprintf("AVG requires a numeric argument, have %s", at)})
			return TAny
		}
		return TFloat
	case qtree.AggMin, qtree.AggMax:
		return at // MIN/MAX preserve the argument type, any comparable kind
	}
	c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
		Detail: fmt.Sprintf("unknown aggregate op %d", int(v.Op))})
	return TAny
}

// typeWindow types a window-function reference.
func (c *checker) typeWindow(v *qtree.WinFunc, blockID int, colT colTyper) Type {
	for _, p := range v.PartitionBy {
		c.typeExpr(p, blockID, colT)
	}
	for _, o := range v.OrderBy {
		c.typeExpr(o.Expr, blockID, colT)
	}
	if v.Op == qtree.WinRowNumber {
		if v.Arg != nil || v.Star {
			c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
				Detail: "ROW_NUMBER takes no argument"})
		}
		if len(v.OrderBy) == 0 {
			c.add(&Violation{Class: ClassGrouping, Block: blockID,
				Detail: "ROW_NUMBER window requires ORDER BY"})
		}
		return TInt
	}
	if v.Star {
		if v.Op != qtree.WinCount {
			c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
				Detail: fmt.Sprintf("%s(*) window is not valid", v.Op)})
		}
		return TInt
	}
	if v.Arg == nil {
		c.add(&Violation{Class: ClassDanglingLink, Block: blockID,
			Detail: fmt.Sprintf("window %s has a nil argument", v.Op)})
		return TAny
	}
	at := c.typeExpr(v.Arg, blockID, colT)
	switch v.Op {
	case qtree.WinCount:
		return TInt
	case qtree.WinSum:
		if !at.numeric() {
			c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
				Detail: fmt.Sprintf("window SUM requires a numeric argument, have %s", at)})
			return TAny
		}
		return widenNum(at)
	case qtree.WinAvg:
		if !at.numeric() {
			c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
				Detail: fmt.Sprintf("window AVG requires a numeric argument, have %s", at)})
			return TAny
		}
		return TFloat
	case qtree.WinMin, qtree.WinMax:
		return at
	}
	c.add(&Violation{Class: ClassTypeMismatch, Block: blockID,
		Detail: fmt.Sprintf("unknown window op %d", int(v.Op))})
	return TAny
}

// widenNum maps Int to Num-preserving behavior of SUM: integer sums stay
// integers, float sums stay floats, unknown numerics stay Num.
func widenNum(t Type) Type {
	if t == TAny {
		return TNum
	}
	return t
}

func binOpName(op qtree.BinOp) string { return op.String() }
