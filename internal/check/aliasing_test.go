package check

import (
	"testing"

	"repro/internal/qtree"
)

// findView returns the first from item of b that is a view.
func findView(t *testing.T, b *qtree.Block) *qtree.FromItem {
	t.Helper()
	for _, f := range b.From {
		if f.View != nil {
			return f
		}
	}
	t.Fatal("query has no view from item")
	return nil
}

// TestNegativeAliasing hand-breaks the copy-on-write sharing discipline one
// invariant at a time and asserts the aliasing checker catches each.
func TestNegativeAliasing(t *testing.T) {
	const viewSQL = "SELECT e.EMP_ID, v.N FROM EMP e, (SELECT d.NAME AS N FROM DEPT d) v"

	t.Run("foreign-owned block", func(t *testing.T) {
		q := mustBind(t, viewSQL)
		c := q.CloneCOW()
		root := c.Mutable(c.Root)
		other := mustBind(t, "SELECT d.NAME AS N FROM DEPT d")
		findView(t, root).View = other.Root
		wantClass(t, Aliasing(c), ClassAliasing)
	})

	t.Run("owned block under a shared block", func(t *testing.T) {
		q := mustBind(t, viewSQL)
		c := q.CloneCOW()
		// Splice a clone-owned block under the still-shared root without
		// materializing the path — exactly the state a transformation that
		// skipped Mutable would leave behind.
		nb := c.NewBlock()
		nb.Select = append([]qtree.SelectItem(nil), findView(t, q.Root).View.Select...)
		nb.From = append([]*qtree.FromItem(nil), findView(t, q.Root).View.From...)
		findView(t, q.Root).View = nb
		wantClass(t, Aliasing(c), ClassAliasing)
	})

	t.Run("block in two tree positions", func(t *testing.T) {
		q := mustBind(t, "SELECT v.N, w.M FROM (SELECT d.NAME AS N FROM DEPT d) v, (SELECT d.NAME AS M FROM DEPT d) w")
		var views []*qtree.FromItem
		for _, f := range q.Root.From {
			if f.View != nil {
				views = append(views, f)
			}
		}
		views[1].View = views[0].View
		wantClass(t, Aliasing(q), ClassAliasing)
	})

	t.Run("base mutated after snapshot", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE e.DEPT_ID = 1")
		snap := Snapshot(q)
		q.Root.Where = nil
		wantClass(t, snap.Verify(), ClassAliasing)
	})

	t.Run("ID allocated from the snapshotted base", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e")
		snap := Snapshot(q)
		q.NewFromID()
		wantClass(t, snap.Verify(), ClassAliasing)
	})

	t.Run("child link re-pointed after snapshot", func(t *testing.T) {
		q := mustBind(t, viewSQL)
		snap := Snapshot(q)
		other := mustBind(t, "SELECT d.NAME AS N FROM DEPT d")
		findView(t, q.Root).View = other.Root
		wantClass(t, snap.Verify(), ClassAliasing)
	})
}

// TestAliasingClean asserts the checker accepts the legal sharing states:
// an untouched COW clone, a clone mutated through Mutable, and a base that
// stayed intact while its clone was rewritten.
func TestAliasingClean(t *testing.T) {
	const viewSQL = "SELECT e.EMP_ID, v.N FROM EMP e, (SELECT d.NAME AS N FROM DEPT d) v"

	t.Run("fresh clone", func(t *testing.T) {
		q := mustBind(t, viewSQL)
		c := q.CloneCOW()
		if vs := Aliasing(c); len(vs) > 0 {
			t.Fatalf("fresh COW clone reported violations: %v", vs)
		}
	})

	t.Run("mutated through Mutable", func(t *testing.T) {
		q := mustBind(t, viewSQL)
		snap := Snapshot(q)
		c := q.CloneCOW()
		v := c.Mutable(findView(t, q.Root).View)
		v.Distinct = true
		if vs := Aliasing(c); len(vs) > 0 {
			t.Fatalf("Mutable-materialized clone reported violations: %v", vs)
		}
		if vs := snap.Verify(); len(vs) > 0 {
			t.Fatalf("base changed under a legal COW mutation: %v", vs)
		}
		if vs := Query(c); len(vs) > 0 {
			t.Fatalf("semantic checker rejected the COW clone: %v", vs)
		}
	})

	t.Run("non-COW query", func(t *testing.T) {
		q := mustBind(t, viewSQL)
		if vs := Aliasing(q); len(vs) > 0 {
			t.Fatalf("plain query reported aliasing violations: %v", vs)
		}
	})
}
