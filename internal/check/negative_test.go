package check

import (
	"testing"

	"repro/internal/datum"
	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

// These tests hand-break well-formed trees one invariant at a time and
// assert the checker reports the right violation class. Every class in
// Classes() must have at least one failing case here (enforced by
// TestEveryClassHasNegativeCase), so a checker regression that silently
// stops detecting a defect family fails the suite.

// mustBind parses and binds SQL against the tiny demo schema.
func mustBind(t *testing.T, sql string) *qtree.Query {
	t.Helper()
	db := testkit.TinyDB()
	return qtree.MustBind(sql, db.Catalog)
}

// wantClass asserts vs contains cl and records the class as covered.
func wantClass(t *testing.T, vs Violations, cl Class) {
	t.Helper()
	coveredClasses[cl] = true
	if !vs.HasClass(cl) {
		t.Fatalf("violations %v\nwant class %q", vs, cl)
	}
}

// coveredClasses records which classes the negative tests exercised.
var coveredClasses = map[Class]bool{}

func TestNegativeUnresolvedColumn(t *testing.T) {
	t.Run("unknown from item", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e")
		q.Root.Select[0].Expr.(*qtree.Col).From = 99
		wantClass(t, Query(q), ClassUnresolvedColumn)
	})
	t.Run("ordinal out of range", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e")
		q.Root.Select[0].Expr.(*qtree.Col).Ord = 42
		wantClass(t, Query(q), ClassUnresolvedColumn)
	})
	t.Run("set-op sentinel outside set-op ORDER BY", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e")
		q.Root.Select[0].Expr.(*qtree.Col).From = 0
		wantClass(t, Query(q), ClassUnresolvedColumn)
	})
	t.Run("derived table sees a sibling", func(t *testing.T) {
		// A non-lateral view body referencing a sibling from item is the
		// exact defect join predicate pushdown guards with Lateral.
		q := mustBind(t, "SELECT e.EMP_ID, v.N FROM EMP e, (SELECT d.NAME AS N FROM DEPT d) v")
		var view *qtree.Block
		var emp qtree.FromID
		for _, f := range q.Root.From {
			if f.View != nil {
				view = f.View
			} else {
				emp = f.ID
			}
		}
		view.Where = append(view.Where, &qtree.Bin{
			Op: qtree.OpEq,
			L:  &qtree.Col{From: view.From[0].ID, Ord: 0, Name: "DEPT_ID"},
			R:  &qtree.Col{From: emp, Ord: 2, Name: "DEPT_ID"},
		})
		wantClass(t, Query(q), ClassUnresolvedColumn)
	})
}

func TestNegativeParamOrdinal(t *testing.T) {
	t.Run("ordinal out of range", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE e.DEPT_ID = :d")
		q.Root.Where[0].(*qtree.Bin).R.(*qtree.Param).Ord = 7
		wantClass(t, Query(q), ClassParamOrdinal)
	})
	t.Run("name disagrees with slot", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE e.DEPT_ID = :d")
		q.Root.Where[0].(*qtree.Bin).R.(*qtree.Param).Name = ":other"
		wantClass(t, Query(q), ClassParamOrdinal)
	})
}

func TestNegativeTypeMismatch(t *testing.T) {
	t.Run("string plus number", func(t *testing.T) {
		q := mustBind(t, "SELECT e.NAME FROM EMP e")
		q.Root.Select[0].Expr = &qtree.Bin{
			Op: qtree.OpAdd,
			L:  &qtree.Col{From: q.Root.From[0].ID, Ord: 1, Name: "NAME"},
			R:  &qtree.Col{From: q.Root.From[0].ID, Ord: 0, Name: "EMP_ID"},
		}
		wantClass(t, Query(q), ClassTypeMismatch)
	})
	t.Run("string constant as predicate", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e")
		q.Root.Where = append(q.Root.Where, &qtree.Const{Val: datum.NewString("x")})
		wantClass(t, Query(q), ClassTypeMismatch)
	})
	t.Run("incomparable IN subquery column", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE e.DEPT_ID IN (SELECT d.DEPT_ID FROM DEPT d)")
		var sq *qtree.Subq
		qtree.WalkExpr(q.Root.Where[0], func(x qtree.Expr) bool {
			if v, ok := x.(*qtree.Subq); ok {
				sq = v
			}
			return true
		})
		sq.Block.Select[0].Expr.(*qtree.Col).Ord = 1 // NAME: string vs int
		wantClass(t, Query(q), ClassTypeMismatch)
	})
}

func TestNegativeArityMismatch(t *testing.T) {
	t.Run("IN left list vs subquery output", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE e.DEPT_ID IN (SELECT d.DEPT_ID FROM DEPT d)")
		var sq *qtree.Subq
		qtree.WalkExpr(q.Root.Where[0], func(x qtree.Expr) bool {
			if v, ok := x.(*qtree.Subq); ok {
				sq = v
			}
			return true
		})
		sq.Block.Select = append(sq.Block.Select, qtree.SelectItem{
			Expr: &qtree.Col{From: sq.Block.From[0].ID, Ord: 1, Name: "NAME"},
		})
		wantClass(t, Query(q), ClassArityMismatch)
	})
	t.Run("set-operation branch arity", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e UNION ALL SELECT d.DEPT_ID FROM DEPT d")
		child := q.Root.Set.Children[1]
		child.Select = append(child.Select, qtree.SelectItem{
			Expr: &qtree.Col{From: child.From[0].ID, Ord: 1, Name: "NAME"},
		})
		wantClass(t, Query(q), ClassArityMismatch)
	})
	t.Run("one-branch set operation", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e UNION ALL SELECT d.DEPT_ID FROM DEPT d")
		q.Root.Set.Children = q.Root.Set.Children[:1]
		wantClass(t, Query(q), ClassArityMismatch)
	})
}

func TestNegativeDanglingLink(t *testing.T) {
	t.Run("nil query and root", func(t *testing.T) {
		wantClass(t, Query(nil), ClassDanglingLink)
		wantClass(t, Query(&qtree.Query{}), ClassDanglingLink)
	})
	t.Run("duplicate from identity", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e, DEPT d")
		q.Root.From[1].ID = q.Root.From[0].ID
		wantClass(t, Query(q), ClassDanglingLink)
	})
	t.Run("from item with no source", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e")
		q.Root.From[0].Table = nil
		wantClass(t, Query(q), ClassDanglingLink)
	})
	t.Run("nil subquery block", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d)")
		qtree.WalkExpr(q.Root.Where[0], func(x qtree.Expr) bool {
			if v, ok := x.(*qtree.Subq); ok {
				v.Block = nil
			}
			return true
		})
		wantClass(t, Query(q), ClassDanglingLink)
	})
	t.Run("view shared between two from items", func(t *testing.T) {
		q := mustBind(t, "SELECT v.N FROM (SELECT d.NAME AS N FROM DEPT d) v, EMP e")
		var view *qtree.Block
		for _, f := range q.Root.From {
			if f.View != nil {
				view = f.View
			}
		}
		for _, f := range q.Root.From {
			if f.View == nil {
				f.Table, f.View = nil, view
			}
		}
		wantClass(t, Query(q), ClassDanglingLink)
	})
}

func TestNegativeGrouping(t *testing.T) {
	t.Run("ungrouped select column", func(t *testing.T) {
		q := mustBind(t, "SELECT e.DEPT_ID FROM EMP e GROUP BY e.DEPT_ID")
		q.Root.Select[0].Expr.(*qtree.Col).Ord = 3 // SALARY: not a grouping key
		q.Root.Select[0].Expr.(*qtree.Col).Name = "SALARY"
		wantClass(t, Query(q), ClassGrouping)
	})
	t.Run("aggregate in WHERE", func(t *testing.T) {
		q := mustBind(t, "SELECT e.DEPT_ID FROM EMP e GROUP BY e.DEPT_ID")
		q.Root.Where = append(q.Root.Where, &qtree.Bin{
			Op: qtree.OpGt,
			L:  &qtree.Agg{Op: qtree.AggCount, Star: true},
			R:  &qtree.Const{Val: datum.NewInt(1)},
		})
		wantClass(t, Query(q), ClassGrouping)
	})
	t.Run("grouping-set index out of range", func(t *testing.T) {
		q := mustBind(t, "SELECT e.DEPT_ID FROM EMP e GROUP BY e.DEPT_ID")
		q.Root.GroupingSets = [][]int{{0}, {3}}
		wantClass(t, Query(q), ClassGrouping)
	})
	t.Run("nested aggregate", func(t *testing.T) {
		q := mustBind(t, "SELECT COUNT(e.EMP_ID) FROM EMP e")
		q.Root.Select[0].Expr.(*qtree.Agg).Arg = &qtree.Agg{
			Op: qtree.AggCount, Arg: &qtree.Col{From: q.Root.From[0].ID, Ord: 0},
		}
		wantClass(t, Query(q), ClassGrouping)
	})
}

func TestNegativeJoinOrder(t *testing.T) {
	t.Run("inner item with a join condition", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e, DEPT d")
		q.Root.From[1].Cond = []qtree.Expr{&qtree.Bin{
			Op: qtree.OpEq,
			L:  &qtree.Col{From: q.Root.From[0].ID, Ord: 2, Name: "DEPT_ID"},
			R:  &qtree.Col{From: q.Root.From[1].ID, Ord: 0, Name: "DEPT_ID"},
		}}
		wantClass(t, Query(q), ClassJoinOrder)
	})
	t.Run("no anchor item", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e, DEPT d")
		q.Root.From[0].Kind = qtree.JoinSemi
		q.Root.From[1].Kind = qtree.JoinAnti
		wantClass(t, Query(q), ClassJoinOrder)
	})
}

func TestNegativeContract(t *testing.T) {
	t.Run("arity change", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID, e.NAME FROM EMP e")
		pre := Summarize(q)
		q.Root.Select = q.Root.Select[:1]
		wantClass(t, CheckContract("subquery unnesting", pre, q), ClassContract)
	})
	t.Run("output type change", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e")
		pre := Summarize(q)
		q.Root.Select[0].Expr = &qtree.Col{From: q.Root.From[0].ID, Ord: 1, Name: "NAME"}
		wantClass(t, CheckContract("subquery unnesting", pre, q), ClassContract)
	})
	t.Run("dropped table", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE e.DEPT_ID IN (SELECT d.DEPT_ID FROM DEPT d)")
		pre := Summarize(q)
		qtree.WalkExpr(q.Root.Where[0], func(x qtree.Expr) bool {
			if v, ok := x.(*qtree.Subq); ok {
				v.Block.From = nil
			}
			return true
		})
		wantClass(t, CheckContract("subquery unnesting", pre, q), ClassContract)
	})
	t.Run("parameter list change", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE e.DEPT_ID = :d")
		pre := Summarize(q)
		q.Params = append(q.Params, ":GHOST")
		wantClass(t, CheckContract("subquery unnesting", pre, q), ClassContract)
	})
	t.Run("outer join lost", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e LEFT JOIN DEPT d ON e.DEPT_ID = d.DEPT_ID")
		pre := Summarize(q)
		for _, f := range q.Root.From {
			if f.Kind == qtree.JoinLeftOuter {
				f.Kind = qtree.JoinInner
				f.Cond = nil
			}
		}
		wantClass(t, CheckContract("subquery unnesting", pre, q), ClassContract)
	})
	t.Run("relaxed contract accepts its relaxation", func(t *testing.T) {
		q := mustBind(t, "SELECT e.EMP_ID FROM EMP e WHERE e.DEPT_ID IN (SELECT d.DEPT_ID FROM DEPT d)")
		pre := Summarize(q)
		qtree.WalkExpr(q.Root.Where[0], func(x qtree.Expr) bool {
			if v, ok := x.(*qtree.Subq); ok {
				v.Block.From = nil
			}
			return true
		})
		if vs := CheckContract("join factorization", pre, q); vs.HasClass(ClassContract) {
			t.Fatalf("MayRemoveTables contract rejected a removed table: %v", vs)
		}
	})
}

func TestNegativePlan(t *testing.T) {
	db := testkit.TinyDB()
	optimize := func(sql string) *optimizer.Plan {
		q := qtree.MustBind(sql, db.Catalog)
		p, err := optimizer.New(db.Catalog).Optimize(q)
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		return p
	}
	t.Run("nil plan and root", func(t *testing.T) {
		wantClass(t, Plan(nil), ClassPlan)
		wantClass(t, Plan(&optimizer.Plan{}), ClassPlan)
	})
	t.Run("unresolvable column", func(t *testing.T) {
		p := optimize("SELECT e.EMP_ID FROM EMP e WHERE e.SALARY > 10")
		broke := false
		var walk func(n optimizer.PlanNode)
		walk = func(n optimizer.PlanNode) {
			for _, e := range nodeExprs(n) {
				qtree.WalkExpr(e, func(x qtree.Expr) bool {
					if c, ok := x.(*qtree.Col); ok {
						c.From = 99
						broke = true
					}
					return true
				})
			}
			for _, ch := range n.Children() {
				walk(ch)
			}
		}
		walk(p.Root)
		if !broke {
			t.Fatal("plan carried no column expression to break")
		}
		wantClass(t, Plan(p), ClassPlan)
	})
	t.Run("join key arity", func(t *testing.T) {
		// The small demo schema is big enough that this join plans as a
		// hash join with equality key lists.
		small := testkit.NewDB(testkit.SmallSizes(), 7)
		q := qtree.MustBind("SELECT d.DEPT_ID FROM DEPARTMENTS d, LOCATIONS l WHERE d.LOC_ID = l.LOC_ID", small.Catalog)
		p, err := optimizer.New(small.Catalog).Optimize(q)
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		broke := false
		var walk func(n optimizer.PlanNode)
		walk = func(n optimizer.PlanNode) {
			if j, ok := n.(*optimizer.Join); ok && len(j.EqL) > 0 {
				j.EqR = j.EqR[:len(j.EqR)-1]
				broke = true
			}
			for _, ch := range n.Children() {
				walk(ch)
			}
		}
		walk(p.Root)
		if !broke {
			t.Skip("no hash/merge join in this plan shape")
		}
		wantClass(t, Plan(p), ClassPlan)
	})
	t.Run("missing subplan", func(t *testing.T) {
		p := optimize("SELECT e.EMP_ID FROM EMP e WHERE e.SALARY > (SELECT MAX(x.SALARY) FROM EMP x WHERE x.DEPT_ID = e.DEPT_ID)")
		if len(p.Subplans) == 0 {
			t.Skip("subquery was unnested; no residual subplan to drop")
		}
		for sq := range p.Subplans {
			delete(p.Subplans, sq)
		}
		wantClass(t, Plan(p), ClassPlan)
	})
	t.Run("invalid cost", func(t *testing.T) {
		p := optimize("SELECT e.EMP_ID FROM EMP e")
		p.Cost.Total = -1
		wantClass(t, Plan(p), ClassPlan)
	})
}

// nodeExprs extracts the expression slots the plan checker inspects, for
// the mutation helpers above.
func nodeExprs(n optimizer.PlanNode) []qtree.Expr {
	switch v := n.(type) {
	case *optimizer.SeqScan:
		return v.Filter
	case *optimizer.IndexScan:
		out := append([]qtree.Expr{}, v.EqKeys...)
		return append(out, v.Filter...)
	case *optimizer.Filter:
		return v.Preds
	case *optimizer.Join:
		out := append([]qtree.Expr{}, v.EqL...)
		out = append(out, v.EqR...)
		return append(out, v.On...)
	case *optimizer.Project:
		return v.Exprs
	case *optimizer.Sort:
		return v.Keys
	}
	return nil
}

// TestEveryClassHasNegativeCase re-runs every negative test above as a
// subtest and then asserts each class in Classes() was exercised, so adding
// a violation class without a failing negative test fails the suite.
func TestEveryClassHasNegativeCase(t *testing.T) {
	for cl := range coveredClasses {
		delete(coveredClasses, cl)
	}
	for name, fn := range map[string]func(*testing.T){
		"unresolved-column": TestNegativeUnresolvedColumn,
		"param-ordinal":     TestNegativeParamOrdinal,
		"type-mismatch":     TestNegativeTypeMismatch,
		"arity-mismatch":    TestNegativeArityMismatch,
		"dangling-link":     TestNegativeDanglingLink,
		"grouping":          TestNegativeGrouping,
		"join-order":        TestNegativeJoinOrder,
		"contract":          TestNegativeContract,
		"plan":              TestNegativePlan,
		"aliasing":          TestNegativeAliasing,
		"dml":               TestNegativeDML,
	} {
		t.Run(name, fn)
	}
	for _, cl := range Classes() {
		if !coveredClasses[cl] {
			t.Errorf("violation class %q has no failing negative test", cl)
		}
	}
}
