package check

import (
	"testing"

	"repro/internal/optimizer"
	"repro/internal/qtree"
	"repro/internal/testkit"
)

// TestPlanAcceptsCostStubs is the regression test for checked CBQT searches
// over a warm annotation cache: cost-only plans replace already-costed
// blocks with annotation stubs, and the plan checker must treat those as
// opaque leaves rather than unknown operators (which would quarantine every
// rule after its first state).
func TestPlanAcceptsCostStubs(t *testing.T) {
	db := testkit.NewDB(testkit.SmallSizes(), 7)
	q, err := qtree.BindSQL(
		`SELECT e.emp_id FROM employees e WHERE e.salary > 100`, db.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	p := optimizer.New(db.Catalog)
	p.Cache = optimizer.NewCostCache()
	p.CostOnly = true
	if _, err := p.Optimize(q); err != nil {
		t.Fatal(err)
	}
	// A structurally identical copy hits the cache, so its plan contains a
	// cost stub in place of the cached block.
	q2, _ := q.Clone()
	plan, err := p.Optimize(q2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Counters.CacheHits == 0 {
		t.Fatal("second optimization did not hit the annotation cache; the test no longer exercises stubs")
	}
	stubs := 0
	var walk func(n optimizer.PlanNode)
	walk = func(n optimizer.PlanNode) {
		if n == nil {
			return
		}
		if optimizer.IsCostStub(n) {
			stubs++
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(plan.Root)
	for _, sp := range plan.Subplans {
		if sp != nil {
			walk(sp.Root)
		}
	}
	if stubs == 0 {
		t.Fatal("cached cost-only plan contains no stubs; the test no longer exercises the opaque-leaf path")
	}
	if vs := Plan(plan); len(vs) != 0 {
		t.Fatalf("plan checker rejected a stub-bearing cost-only plan: %v", vs[0])
	}
}
